package veritas_test

// Tracing-plane coverage at the facade: the determinism pin (reports
// byte-identical with tracing on and off), the Campaign.Trace tail
// sample, the Chrome trace-event export, and the serving layer's
// /v1/trace endpoint.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"veritas"
)

// TestTracingNeverPerturbsReports is the load-bearing guarantee of the
// tracing plane: spans observe the computation but never feed back
// into it. The same campaign runs with the tracer on (default) and off
// (WithoutTracing); Report JSON and the served /v1/report body must be
// byte-identical.
func TestTracingNeverPerturbsReports(t *testing.T) {
	run := func(opts ...veritas.CampaignOption) ([]byte, []byte) {
		t.Helper()
		c, err := veritas.NewCampaign(append(quickOptions(), opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if _, err := c.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		rep, err := c.Report()
		if err != nil {
			t.Fatal(err)
		}
		repJSON, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		h, err := c.Handler()
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(h)
		defer srv.Close()
		resp, err := http.Get(srv.URL + "/v1/report")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return repJSON, body
	}

	onRep, onBody := run(veritas.WithStore(t.TempDir()))
	offRep, offBody := run(veritas.WithStore(t.TempDir()), veritas.WithoutTracing())
	if !bytes.Equal(onRep, offRep) {
		t.Error("Report JSON differs with tracing on vs off")
	}
	if !bytes.Equal(onBody, offBody) {
		t.Error("served /v1/report body differs with tracing on vs off")
	}
}

func TestCampaignTraceTailSample(t *testing.T) {
	c, err := veritas.NewCampaign(append(quickOptions(), veritas.WithStore(t.TempDir()))...)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	traces := c.Trace()
	if len(traces) == 0 {
		t.Fatal("campaign recorded no traces")
	}
	// Slowest-first ordering.
	for i := 1; i < len(traces); i++ {
		if traces[i-1].Err == "" && traces[i].Err == "" && traces[i-1].Dur < traces[i].Dur {
			t.Errorf("traces not sorted slowest-first: [%d]=%v < [%d]=%v",
				i-1, traces[i-1].Dur, i, traces[i].Dur)
		}
	}
	// Session traces carry the engine's stage spans.
	var session *veritas.CampaignTrace
	for i := range traces {
		if traces[i].Kind == "session" {
			session = &traces[i]
			break
		}
	}
	if session == nil {
		t.Fatalf("no session trace in %d traces", len(traces))
	}
	stages := make(map[string]bool)
	for _, sp := range session.Spans {
		stages[sp.Name] = true
	}
	for _, want := range []string{"simulate", "abduct", "replay"} {
		if !stages[want] {
			t.Errorf("session trace missing %q span (have %v)", want, stages)
		}
	}
	// The store's append path traces too (the campaign has a store).
	kinds := make(map[string]bool)
	for _, tr := range traces {
		kinds[tr.Kind] = true
	}
	if !kinds["append"] {
		t.Errorf("no append trace in tail sample (kinds %v)", kinds)
	}

	// With tracing off: no traces, no panic, and an empty (but valid)
	// export.
	off, err := veritas.NewCampaign(append(quickOptions(), veritas.WithoutTracing())...)
	if err != nil {
		t.Fatal(err)
	}
	defer off.Close()
	if _, err := off.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := off.Trace(); len(got) != 0 {
		t.Errorf("WithoutTracing recorded %d traces", len(got))
	}
	var buf bytes.Buffer
	if err := off.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(buf.String()); got != `{"traceEvents":[],"displayTimeUnit":"ms"}` {
		t.Errorf("empty trace export = %s", got)
	}
}

func TestCampaignWriteTraceIsChromeLoadable(t *testing.T) {
	c, err := veritas.NewCampaign(quickOptions()...)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("trace export is not valid JSON: %v", err)
	}
	if file.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", file.DisplayTimeUnit)
	}
	if len(file.TraceEvents) == 0 {
		t.Fatal("trace export has no events")
	}
	var meta, complete int
	for _, e := range file.TraceEvents {
		switch e.Ph {
		case "M":
			meta++
		case "X":
			complete++
		default:
			t.Errorf("unexpected event phase %q", e.Ph)
		}
	}
	if meta == 0 || complete == 0 {
		t.Errorf("export has %d metadata and %d complete events; want both", meta, complete)
	}
}

func TestServeTraceEndpoint(t *testing.T) {
	c, err := veritas.NewCampaign(append(quickOptions(), veritas.WithStore(t.TempDir()))...)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	h, err := c.Handler()
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/trace: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("/v1/trace content type = %q", ct)
	}
	var file struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&file); err != nil {
		t.Fatalf("/v1/trace body does not parse: %v", err)
	}
	if len(file.TraceEvents) == 0 {
		t.Error("/v1/trace served no events after a run")
	}

	// The endpoint serves the campaign-merged view, which includes the
	// serving layer's own request traces on a second scrape.
	resp2, err := http.Get(srv.URL + "/v1/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	body, err := io.ReadAll(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), `"request /v1/trace"`) {
		t.Error("second /v1/trace scrape does not carry the first request's trace")
	}
}

func TestTracingOptionValidation(t *testing.T) {
	if _, err := veritas.NewCampaign(veritas.WithTracing(0)); err == nil {
		t.Error("WithTracing(0) accepted")
	}
	if _, err := veritas.NewCampaign(veritas.WithTracing(8), veritas.WithoutTracing()); err == nil {
		t.Error("WithTracing + WithoutTracing accepted")
	}
	// WithTracing bounds the successful tail sample.
	c, err := veritas.NewCampaign(append(quickOptions(), veritas.WithTracing(2))...)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	var successful int
	for _, tr := range c.Trace() {
		if tr.Err == "" {
			successful++
		}
	}
	if successful == 0 || successful > 2 {
		t.Errorf("WithTracing(2) kept %d successful traces, want 1-2", successful)
	}
}
