package veritas

// The dispatch layer: one call that launches, babysits, and folds a
// whole multi-process sharded campaign. Where WithShard/FoldShards are
// the manual primitives (one process per machine, fold by hand),
// Campaign.Dispatch is the supervised local form:
//
//	c, _ := veritas.NewCampaign(
//		veritas.WithSessions(25),
//		veritas.WithMatrix([]string{"bba", "bola"}, []float64{5, 30}),
//		veritas.WithStore("campaign.store"),
//	)
//	res, _ := c.Dispatch(ctx, 4) // 4 worker processes -> folded store
//	_ = c.WriteReport(os.Stdout) // byte-identical to a 1-process run
//
// Dispatch spawns one worker process per shard (a re-exec of the
// worker binary, the current executable by default), streams their
// progress, restarts crashed shards with resume into their same store
// under a bounded, exponentially backed-off budget, and folds the
// shard stores into the campaign's store. The host binary must call
// DispatchWorkerMain at the top of main so the re-exec'd children run
// the worker instead of the host program.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"runtime"
	"sync"
	"syscall"
	"time"

	"veritas/internal/dispatch"
	"veritas/internal/serve"
)

// Dispatch event/result types re-exported for campaign callers.
type (
	// DispatchEvent is one entry of the supervisor's merged event
	// stream: worker starts, per-shard progress, forwarded output
	// lines, exits, restarts, and the final fold.
	DispatchEvent = dispatch.Event
	// DispatchResult summarizes a completed dispatch: shard store
	// directories, crash-restart count, folded session count.
	DispatchResult = dispatch.Result
)

// Dispatch event types, re-exported so WithDispatchEvents callbacks
// can switch on them.
const (
	DispatchStart    = dispatch.EventStart
	DispatchProgress = dispatch.EventProgress
	DispatchLine     = dispatch.EventLine
	DispatchExit     = dispatch.EventExit
	DispatchRestart  = dispatch.EventRestart
	DispatchFold     = dispatch.EventFold
	// DispatchTelemetry events carry a worker's metrics snapshot
	// (Event.Telemetry); the supervisor's status tracker merges the
	// latest per shard into the fleet view WithDispatchStatus serves.
	DispatchTelemetry = dispatch.EventTelemetry
	// DispatchTraces events carry a worker's latest notable-trace set
	// (Event.Traces); the status tracker keeps the latest per shard and
	// merges them into the fleet-wide /v1/trace view and Campaign.Trace.
	DispatchTraces = dispatch.EventTraces
)

// dispatchWorkerEnv carries the worker spec to a re-exec'd child; its
// presence is what turns DispatchWorkerMain into the worker.
const dispatchWorkerEnv = "VERITAS_DISPATCH_WORKER"

// WithDispatchBinary sets the worker binary Dispatch re-execs (default:
// the current executable). The binary must call DispatchWorkerMain at
// the top of its main, as cmd/fleet does.
func WithDispatchBinary(path string) CampaignOption {
	return func(o *campaignOptions) error {
		if path == "" {
			return errors.New("veritas: WithDispatchBinary needs a path")
		}
		o.dispatchBinary = path
		return nil
	}
}

// WithDispatchDir sets the parent directory the per-shard stores live
// under (default: the campaign store directory plus ".shards"). The
// shard stores persist after the fold, so a later Dispatch — or a
// manual FoldShards over the directory — can resume or refold them.
func WithDispatchDir(dir string) CampaignOption {
	return func(o *campaignOptions) error {
		if dir == "" {
			return errors.New("veritas: WithDispatchDir needs a directory")
		}
		o.dispatchDir = dir
		return nil
	}
}

// WithDispatchRestarts bounds the per-shard crash-restart budget: a
// shard may be relaunched at most n times after its first run (default
// 2). n = 0 disables restarts; a shard that fails n+1 times fails the
// dispatch and cancels its siblings (their stores remain resumable).
func WithDispatchRestarts(n int) CampaignOption {
	return func(o *campaignOptions) error {
		if n < 0 {
			return fmt.Errorf("veritas: dispatch restarts %d is negative (0 disables restarts)", n)
		}
		o.dispatchRestarts = n
		o.dispatchRestartsSet = true
		return nil
	}
}

// WithDispatchBackoff sets the delay before a crashed shard's first
// relaunch (default 500ms); it doubles per subsequent restart of the
// same shard, capped at 30s.
func WithDispatchBackoff(d time.Duration) CampaignOption {
	return func(o *campaignOptions) error {
		if d <= 0 {
			return fmt.Errorf("veritas: dispatch backoff %v must be positive", d)
		}
		o.dispatchBackoff = d
		return nil
	}
}

// WithDispatchEvents streams the supervisor's merged event stream —
// worker starts and exits with PIDs, per-shard progress counts,
// forwarded worker output lines, restarts, the fold — to fn. Calls are
// serialized; fn needs no locking.
func WithDispatchEvents(fn func(DispatchEvent)) CampaignOption {
	return func(o *campaignOptions) error {
		if fn == nil {
			return errors.New("veritas: WithDispatchEvents(nil)")
		}
		o.dispatchEvents = fn
		return nil
	}
}

// workerSpec is the wire format Dispatch hands a worker process via
// the environment: every result-shaping campaign option (zero values
// mean the campaign defaults, so the worker's fingerprint matches the
// parent's), the shard assignment, and the shard store directory.
type workerSpec struct {
	Scenarios []string  `json:"scenarios,omitempty"`
	Sessions  int       `json:"sessions,omitempty"`
	Chunks    int       `json:"chunks,omitempty"`
	Samples   int       `json:"samples,omitempty"`
	Seed      int64     `json:"seed,omitempty"`
	Buffer    float64   `json:"buffer,omitempty"`
	ABRs      []string  `json:"abrs,omitempty"`
	Buffers   []float64 `json:"buffers,omitempty"`
	Workers   int       `json:"workers,omitempty"`
	NoCache   bool      `json:"nocache,omitempty"`
	NoTelem   bool      `json:"notelemetry,omitempty"`
	NoTrace   bool      `json:"notracing,omitempty"`
	Shard     int       `json:"shard"`
	Of        int       `json:"of"`
	Store     string    `json:"store"`
}

// options maps the spec back onto campaign options. Only non-zero
// fields become options, so a defaulted parent campaign and its
// workers compute identical fingerprints.
func (s workerSpec) options() []CampaignOption {
	opts := []CampaignOption{
		WithStore(s.Store),
		WithResume(),
		WithShard(s.Shard, s.Of),
	}
	if len(s.Scenarios) > 0 {
		opts = append(opts, WithScenarios(s.Scenarios...))
	}
	if s.Sessions > 0 {
		opts = append(opts, WithSessions(s.Sessions))
	}
	if s.Chunks > 0 {
		opts = append(opts, WithChunks(s.Chunks))
	}
	if s.Samples > 0 {
		opts = append(opts, WithSamples(s.Samples))
	}
	if s.Seed != 0 {
		opts = append(opts, WithSeed(s.Seed))
	}
	if s.Buffer > 0 {
		opts = append(opts, WithDeployedBuffer(s.Buffer))
	}
	if len(s.ABRs) > 0 {
		opts = append(opts, WithMatrix(s.ABRs, s.Buffers))
	}
	if s.Workers > 0 {
		opts = append(opts, WithWorkers(s.Workers))
	}
	if s.NoCache {
		opts = append(opts, WithoutMemoization())
	}
	if s.NoTelem {
		opts = append(opts, WithoutTelemetry())
	}
	if s.NoTrace {
		opts = append(opts, WithoutTracing())
	}
	return opts
}

// Dispatch executes the campaign as n supervised local worker
// processes — the one-command replacement for launching one
// `fleet -shard i/n` per terminal and folding by hand. Each worker
// computes shard i of n into its own store under the dispatch
// directory; crashed workers are restarted with resume into their same
// store (bounded by WithDispatchRestarts, backed off per
// WithDispatchBackoff); when every shard completes, the shard stores
// are folded into the campaign's store, whose aggregate report — and
// served /v1/report body — is byte-identical to a single-process run
// of the same campaign. After Dispatch returns, Report, WriteReport,
// Serve and Handler answer from the folded store.
//
// Dispatch requires WithStore (the fold destination) and a campaign
// whose result-shaping options are serializable across processes: no
// WithCorpus, WithArms or WithDeployedABR (Go functions cannot cross a
// process boundary), no WithShard (Dispatch owns the partition), and
// no WithSink/WithProgress/WithProgressCounts (use WithDispatchEvents
// for the supervised event stream). Cancelling ctx terminates every
// worker gracefully; finished sessions are durable in the shard
// stores, so rerunning Dispatch resumes where the shards stopped.
//
// The worker binary (WithDispatchBinary, default the current
// executable) must call DispatchWorkerMain at the top of main.
func (c *Campaign) Dispatch(ctx context.Context, n int) (*DispatchResult, error) {
	if n < 1 {
		return nil, fmt.Errorf("veritas: dispatch shard count %d must be at least 1", n)
	}
	o := c.opt
	switch {
	case o.storeDir == "":
		return nil, errors.New("veritas: Dispatch needs WithStore: the folded corpus has to land somewhere")
	case o.readOnly:
		return nil, errors.New("veritas: campaign store is read-only (drop WithReadOnlyStore to dispatch)")
	case o.shardCount > 0:
		return nil, errors.New("veritas: WithShard and Dispatch are mutually exclusive: Dispatch owns the shard partition")
	case o.corpus != nil || o.armsSet || o.newDeployedABR != nil:
		return nil, errors.New("veritas: Dispatch cannot serialize WithCorpus/WithArms/WithDeployedABR across processes; run those campaigns in-process or shard them by hand")
	case len(o.sinks) > 0 || o.onResult != nil || o.onProgress != nil:
		return nil, errors.New("veritas: WithSink/WithProgress/WithProgressCounts do not cross the worker process boundary; use WithDispatchEvents")
	}
	if err := c.beginDispatch(); err != nil {
		return nil, err
	}
	defer c.end(nil)

	binary := o.dispatchBinary
	if binary == "" {
		exe, err := os.Executable()
		if err != nil {
			return nil, fmt.Errorf("veritas: resolving the worker binary: %w", err)
		}
		binary = exe
	}
	// Clean before deriving siblings: a trailing slash would nest the
	// shard directory (and the fold's temporary) inside the store.
	storeDir := filepath.Clean(o.storeDir)
	dir := o.dispatchDir
	if dir == "" {
		dir = storeDir + ".shards"
	}
	// One machine runs all n workers: with no explicit worker count,
	// split GOMAXPROCS across them instead of oversubscribing n-fold.
	// (Worker counts never change results, only speed.)
	workers := o.workers
	if workers == 0 {
		if workers = runtime.GOMAXPROCS(0) / n; workers < 1 {
			workers = 1
		}
	}
	restarts := dispatch.DefaultMaxRestarts
	if o.dispatchRestartsSet {
		restarts = o.dispatchRestarts
	}

	// The status tracker folds the event stream into the queryable
	// fleet view. It always runs (Handle is a few map updates) so
	// WithDispatchEvents consumers and the status listener see one
	// consistent picture; the listener itself is opt-in.
	tracker := dispatch.NewStatus(n, c.reg, c.trc)
	userEvents := o.dispatchEvents

	cfg := dispatch.Config{
		Shards: n,
		Dir:    dir,
		Tracer: c.trc,
		// The campaign's acceptable fingerprints make the fold-target
		// replaceability check decidable before any worker runs.
		FoldInto:     storeDir,
		Fingerprints: c.fingerprints(),
		MaxRestarts:  restarts,
		Backoff:      o.dispatchBackoff,
		OnEvent: func(e DispatchEvent) {
			tracker.Handle(e)
			if userEvents != nil {
				userEvents(e)
			}
		},
		Command: func(w dispatch.Worker) (*exec.Cmd, error) {
			spec := workerSpec{
				Scenarios: o.scenarios,
				Sessions:  o.sessionsPer,
				Chunks:    o.chunks,
				Samples:   o.samples,
				Seed:      o.seed,
				Buffer:    o.deployedBuffer,
				ABRs:      o.abrs,
				Buffers:   o.buffers,
				Workers:   workers,
				NoCache:   o.disableCache,
				NoTelem:   o.noTelemetry,
				NoTrace:   o.noTracing,
				Shard:     w.Shard,
				Of:        w.Shards,
				Store:     w.StoreDir,
			}
			b, err := json.Marshal(spec)
			if err != nil {
				return nil, err
			}
			cmd := exec.Command(binary)
			cmd.Env = append(os.Environ(), dispatchWorkerEnv+"="+string(b))
			return cmd, nil
		},
	}
	if o.dispatchStatus != "" {
		ln, err := net.Listen("tcp", o.dispatchStatus)
		if err != nil {
			return nil, fmt.Errorf("veritas: dispatch status listener: %w", err)
		}
		// The live query tier rides on the status listener: while the
		// workers are still appending, /v1/live/report (and cdf, series,
		// percentiles) serves the combined shard aggregates — the same
		// numbers the folded store will serve once the dispatch lands.
		live := serve.NewLive(dir, serve.WithWatchInterval(250*time.Millisecond))
		defer live.Close()
		mux := http.NewServeMux()
		mux.Handle("/", tracker.Handler())
		mux.Handle("GET /v1/live/", live)
		srv := &http.Server{Handler: mux}
		go srv.Serve(ln)
		defer srv.Close()
	}
	res, err := dispatch.Run(ctx, cfg)
	// Stash the workers' streamed trace sets (even on failure — partial
	// traces are exactly what a crash post-mortem wants) so Trace and
	// /v1/trace keep serving the fleet-wide view after the dispatch.
	c.mu.Lock()
	c.workerTraces = tracker.WorkerTraces()
	c.mu.Unlock()
	return res, err
}

// beginDispatch marks the campaign running and insists its store is
// not open in this process: the fold replaces the store directory on
// disk, which must not happen under a live handle.
func (c *Campaign) beginDispatch() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.running {
		return errors.New("veritas: campaign is already running")
	}
	if c.st != nil {
		return errors.New("veritas: the campaign store is open in this process; Close it before Dispatch (the fold replaces the store directory)")
	}
	c.running = true
	return nil
}

// DispatchWorkerMain is the worker entrypoint behind Campaign.Dispatch.
// Call it at the top of main in any binary used as a dispatch worker
// (cmd/fleet does): when the process was spawned by a dispatch
// supervisor it runs the assigned shard — building the campaign from
// the inherited spec, resuming into the shard store, streaming NDJSON
// progress on stdout, terminating gracefully on SIGINT/SIGTERM — and
// exits; otherwise it returns immediately and main proceeds normally.
func DispatchWorkerMain() {
	raw := os.Getenv(dispatchWorkerEnv)
	if raw == "" {
		return
	}
	os.Exit(dispatchWorker(raw, os.Stdout, os.Stderr))
}

// dispatchWorker runs one shard attempt; it is DispatchWorkerMain less
// the process concerns, returning the exit code.
func dispatchWorker(raw string, stdout, stderr *os.File) int {
	fail := func(err error) int {
		fmt.Fprintln(stderr, "dispatch worker:", err)
		return 1
	}
	var spec workerSpec
	if err := json.Unmarshal([]byte(raw), &spec); err != nil {
		return fail(fmt.Errorf("decoding %s: %w", dispatchWorkerEnv, err))
	}

	// Progress protocol: one JSON object per line on stdout. Counts are
	// rebased over the sessions already durable in the shard store, so
	// a restarted worker reports "4/6", not "1/3" — progress of the
	// shard, not of the attempt.
	var (
		mu   sync.Mutex
		base int
		enc  = json.NewEncoder(stdout)
	)
	progress := func(done, total int) {
		mu.Lock()
		defer mu.Unlock()
		enc.Encode(struct {
			Type  string `json:"type"`
			Shard int    `json:"shard"`
			Done  int    `json:"done"`
			Total int    `json:"total"`
		}{"progress", spec.Shard, base + done, base + total})
	}

	opts := append(spec.options(), WithProgressCounts(progress))
	c, err := NewCampaign(opts...)
	if err != nil {
		return fail(err)
	}
	defer c.Close()

	// Telemetry and trace protocol: the worker streams registry
	// snapshots — and its tail-sampled notable traces — up the same
	// NDJSON channel so the supervisor's status listener can serve a
	// merged fleet view of engine/store observability it could never
	// observe from outside the process. Both are cumulative; the
	// supervisor keeps the latest per shard.
	var emits []func()
	if !spec.NoTelem {
		emits = append(emits, func() {
			snap := c.Telemetry()
			mu.Lock()
			defer mu.Unlock()
			enc.Encode(struct {
				Type     string            `json:"type"`
				Shard    int               `json:"shard"`
				Snapshot TelemetrySnapshot `json:"snapshot"`
			}{"telemetry", spec.Shard, snap})
		})
	}
	if !spec.NoTrace {
		emits = append(emits, func() {
			traces := c.Trace()
			if len(traces) == 0 {
				return
			}
			// Stamp the shard so the merged fleet view (and its Perfetto
			// process lanes) attributes each trace to its worker.
			for i := range traces {
				traces[i].Shard = spec.Shard
			}
			mu.Lock()
			defer mu.Unlock()
			enc.Encode(struct {
				Type   string          `json:"type"`
				Shard  int             `json:"shard"`
				Traces []CampaignTrace `json:"traces"`
			}{"traces", spec.Shard, traces})
		})
	}
	if len(emits) > 0 {
		emitAll := func() {
			for _, emit := range emits {
				emit()
			}
		}
		stopTick := make(chan struct{})
		var tickWg sync.WaitGroup
		tickWg.Add(1)
		go func() {
			defer tickWg.Done()
			t := time.NewTicker(250 * time.Millisecond)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					emitAll()
				case <-stopTick:
					return
				}
			}
		}()
		// The final flush runs on every exit path, so even a shard that
		// finishes inside one tick reports its observability once.
		defer func() {
			close(stopTick)
			tickWg.Wait()
			emitAll()
		}()
	}

	st, err := c.Store()
	if err != nil {
		return fail(err)
	}
	base = st.Len()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if _, err := c.Run(ctx); err != nil {
		// Keep finished sessions durable for the supervisor's restart;
		// a sync failure means they may not have survived, which must
		// not pass silently as a clean crash.
		if serr := st.Sync(); serr != nil {
			fmt.Fprintln(stderr, "dispatch worker: store sync failed:", serr)
		}
		return fail(err)
	}
	return 0
}
