//go:build unix

package veritas_test

// The fleet acceptance pin: the same campaign computed two ways — one
// process, and a networked fleet of two veritasd-style agents where
// one agent (and its whole worker process group) is SIGKILLed mid-
// campaign, forcing the dispatcher to steal its leased shard and
// re-lease it to the survivor — must produce byte-identical
// engine.Report JSON and byte-identical /v1/report bodies. Work
// stealing changes which machine computes a shard, never what the
// campaign reports.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"veritas"
)

// fleetOptions is the fleet harness campaign: 2 scenarios x 3 sessions
// = 6 sessions over 3 shards (2 per shard). Sessions are heavy (3000
// chunks, ~200ms each) and serialized (one worker), so a shard spends
// a long stretch at done=1 of 2 — wide enough that the agent's
// ~100ms heartbeat relay reliably reports mid-shard progress, which is
// the harness's kill signal.
func fleetOptions() []veritas.CampaignOption {
	return []veritas.CampaignOption{
		veritas.WithScenarios("fcc", "lte"),
		veritas.WithSessions(3),
		veritas.WithChunks(3000),
		veritas.WithSeed(11),
		veritas.WithSamples(2),
		veritas.WithMatrix([]string{"bba"}, []float64{5}),
		veritas.WithWorkers(1),
	}
}

// spawnFleetAgent re-execs this test binary as a fleet agent (see
// TestMain) in its own process group, so killing the group takes the
// agent and every worker it spawned down together — a machine death,
// as far as the dispatcher can tell.
func spawnFleetAgent(t *testing.T, dispatcher, name, dir string, out *bytes.Buffer) *exec.Cmd {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := json.Marshal(veritas.FleetAgentConfig{
		Dispatcher: dispatcher,
		Name:       name,
		Dir:        dir,
		Backoff:    time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), "VERITAS_FLEET_AGENT="+string(cfg))
	cmd.Stdout = out
	cmd.Stderr = out
	cmd.SysProcAttr = &syscall.SysProcAttr{Setpgid: true}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	return cmd
}

func TestFleetCampaignEquivalenceUnderAgentDeath(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real agent and worker processes")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	// Way A: one process, one store.
	dirA := filepath.Join(t.TempDir(), "single.store")
	single, err := veritas.NewCampaign(append(fleetOptions(), veritas.WithStore(dirA))...)
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	if _, err := single.Run(ctx); err != nil {
		t.Fatal(err)
	}
	wantReport := reportJSON(t, single)
	wantBody := v1Report(t, single)

	// Way B: a fleet. The dispatcher leases 3 shards to two agents; the
	// moment agent-a reports mid-shard progress it is SIGKILLed — whole
	// process group, workers included — so its lease must expire and
	// the shard must be stolen by agent-b.
	var pidA atomic.Int64
	var killed atomic.Bool
	events := func(e veritas.DispatchEvent) {
		if e.Type == veritas.DispatchProgress && e.Agent == "agent-a" && e.Done > 0 && e.Done < e.Total {
			if pid := pidA.Load(); pid != 0 && killed.CompareAndSwap(false, true) {
				syscall.Kill(-int(pid), syscall.SIGKILL)
			}
		}
	}
	ready := make(chan string, 1)
	dst := filepath.Join(t.TempDir(), "fleet.store")
	c, err := veritas.NewCampaign(append(fleetOptions(),
		veritas.WithStore(dst),
		veritas.WithFleet("127.0.0.1:0"),
		veritas.WithFleetLease(300*time.Millisecond),
		veritas.WithFleetReady(func(addr string) { ready <- addr }),
		veritas.WithDispatchEvents(events),
	)...)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	type serveOut struct {
		res *veritas.FleetDispatchResult
		err error
	}
	serveCh := make(chan serveOut, 1)
	go func() {
		res, err := c.ServeFleet(ctx, 3)
		serveCh <- serveOut{res, err}
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(30 * time.Second):
		t.Fatal("fleet listener never came up")
	case out := <-serveCh:
		t.Fatalf("ServeFleet returned before serving: %+v, %v", out.res, out.err)
	}

	var outA, outB bytes.Buffer
	agentA := spawnFleetAgent(t, addr, "agent-a", filepath.Join(t.TempDir(), "agent-a"), &outA)
	pidA.Store(int64(agentA.Process.Pid))
	agentB := spawnFleetAgent(t, addr, "agent-b", filepath.Join(t.TempDir(), "agent-b"), &outB)
	defer func() {
		// Belt and braces: no agent process group outlives the test.
		syscall.Kill(-agentA.Process.Pid, syscall.SIGKILL)
		syscall.Kill(-agentB.Process.Pid, syscall.SIGKILL)
		agentA.Wait()
		agentB.Wait()
	}()

	out := <-serveCh
	if out.err != nil {
		t.Fatalf("ServeFleet: %v\nagent-a output:\n%s\nagent-b output:\n%s", out.err, outA.Bytes(), outB.Bytes())
	}
	res := out.res
	if !killed.Load() {
		t.Fatal("agent-a was never killed; the harness did not exercise work stealing")
	}
	if res.Steals < 1 {
		t.Fatalf("fleet completed with %d steals after an agent was SIGKILLed mid-lease", res.Steals)
	}
	corpus, err := c.Corpus()
	if err != nil {
		t.Fatal(err)
	}
	if res.Folded != len(corpus) {
		t.Errorf("folded %d sessions, want the whole %d-session corpus", res.Folded, len(corpus))
	}
	if len(res.Agents) != 2 || res.Agents[0] != "agent-a" || res.Agents[1] != "agent-b" {
		t.Errorf("registered agents = %v, want [agent-a agent-b]", res.Agents)
	}

	// The surviving agent sees "done" on its next lease request and
	// exits cleanly.
	if err := agentB.Wait(); err != nil {
		t.Errorf("agent-b exited with %v\noutput:\n%s", err, outB.Bytes())
	}

	// The dispatching campaign reports from the folded store,
	// byte-identically to the single-process run — through Report()
	// and through the serving layer.
	if got := reportJSON(t, c); !bytes.Equal(wantReport, got) {
		t.Fatalf("fleet report differs from the single-process run\nwant: %s\ngot:  %s", wantReport, got)
	}
	if got := v1Report(t, c); !bytes.Equal(wantBody, got) {
		t.Fatal("fleet /v1/report body differs from the single-process store's")
	}

	// And the shard stores the agents shipped remain foldable by hand.
	refold := filepath.Join(t.TempDir(), "refold.store")
	shardDirs := make([]string, 3)
	for i := range shardDirs {
		shardDirs[i] = filepath.Join(dst+".shards", fmt.Sprintf("shard-%d.store", i))
	}
	if _, err := veritas.FoldShards(refold, shardDirs...); err != nil {
		t.Fatal(err)
	}
	rc, err := veritas.NewCampaign(veritas.WithStore(refold), veritas.WithReadOnlyStore())
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if got := reportJSON(t, rc); !bytes.Equal(wantReport, got) {
		t.Fatal("refold of the shipped shard stores differs from the single-process run")
	}

	// The fleet trace view carries the agents' streamed session traces,
	// stamped with agent provenance.
	var agentStamped bool
	for _, tr := range c.Trace() {
		if tr.Kind == "session" && tr.Agent != "" {
			agentStamped = true
			break
		}
	}
	if !agentStamped {
		kinds := map[string]int{}
		for _, tr := range c.Trace() {
			kinds[fmt.Sprintf("%s@%s", tr.Kind, tr.Agent)]++
		}
		t.Errorf("no agent-stamped session trace in the fleet view (have %v)", kinds)
	}
}
