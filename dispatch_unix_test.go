//go:build unix

package veritas_test

// The dispatch acceptance pin: the same campaign computed two ways —
// one process, and three supervised worker processes where one worker
// is SIGKILLed mid-run (so the supervisor restarts it with resume into
// its same store) — must produce byte-identical engine.Report JSON and
// byte-identical /v1/report bodies. This is the contract that turns
// the manual shard runbook into one command: supervision, crashes and
// restarts change how the corpus is computed, never what.

import (
	"bytes"
	"context"
	"path/filepath"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"veritas"
)

func TestDispatchedCampaignEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real worker processes")
	}
	ctx := context.Background()
	const shards = 3

	// Way A: one process, one store.
	dirA := filepath.Join(t.TempDir(), "single.store")
	single, err := veritas.NewCampaign(append(dispatchOptions(), veritas.WithStore(dirA))...)
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	if _, err := single.Run(ctx); err != nil {
		t.Fatal(err)
	}
	wantReport := reportJSON(t, single)
	wantBody := v1Report(t, single)

	// Way B: dispatched across three worker processes (re-execs of this
	// test binary; see TestMain). Shard 1's first attempt is SIGKILLed
	// right after its first completed session, so the supervisor must
	// restart it with resume to finish the campaign.
	dst := filepath.Join(t.TempDir(), "dispatched.store")
	var killed atomic.Bool
	events := func(e veritas.DispatchEvent) {
		if e.Type == veritas.DispatchProgress && e.Shard == 1 && e.Attempt == 0 && e.Done > 0 {
			if killed.CompareAndSwap(false, true) {
				syscall.Kill(e.PID, syscall.SIGKILL)
			}
		}
	}
	c, err := veritas.NewCampaign(append(dispatchOptions(),
		veritas.WithStore(dst),
		veritas.WithDispatchRestarts(3),
		veritas.WithDispatchBackoff(time.Millisecond),
		veritas.WithDispatchEvents(events),
	)...)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := c.Dispatch(ctx, shards)
	if err != nil {
		t.Fatal(err)
	}
	if !killed.Load() {
		t.Fatal("no worker was killed; the harness did not exercise crash-restart")
	}
	if res.Restarts < 1 {
		t.Fatalf("supervisor counted %d restarts after a SIGKILLed worker", res.Restarts)
	}
	corpus, err := c.Corpus()
	if err != nil {
		t.Fatal(err)
	}
	if res.Folded != len(corpus) {
		t.Errorf("folded %d sessions, want the whole %d-session corpus", res.Folded, len(corpus))
	}

	// The dispatching campaign itself now reports from the folded
	// store, byte-identically to the single-process run — through
	// Report() and through the serving layer.
	if got := reportJSON(t, c); !bytes.Equal(wantReport, got) {
		t.Fatalf("dispatched report differs from the single-process run\nwant: %s\ngot:  %s", wantReport, got)
	}
	if got := v1Report(t, c); !bytes.Equal(wantBody, got) {
		t.Fatal("dispatched /v1/report body differs from the single-process store's")
	}

	// And the shard stores remain foldable by hand — FoldShards over
	// the dispatch parent directory reproduces the same corpus.
	refold := filepath.Join(t.TempDir(), "refold.store")
	if _, err := veritas.FoldShards(refold, dst+".shards"); err != nil {
		t.Fatal(err)
	}
	rc, err := veritas.NewCampaign(veritas.WithStore(refold), veritas.WithReadOnlyStore())
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if got := reportJSON(t, rc); !bytes.Equal(wantReport, got) {
		t.Fatal("parent-directory refold differs from the single-process run")
	}

	// The supervisor's Trace is the fleet-wide view: its own worker
	// lifecycle traces merged with the session traces the workers
	// streamed up the NDJSON protocol. The supervisor runs no sessions
	// itself, so any session trace proves the worker stream arrived.
	kinds := make(map[string]bool)
	for _, tr := range c.Trace() {
		kinds[tr.Kind] = true
	}
	for _, want := range []string{"worker", "session"} {
		if !kinds[want] {
			t.Errorf("fleet trace missing %q traces after dispatch (kinds %v)", want, kinds)
		}
	}
}
