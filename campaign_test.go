//lint:file-ignore SA1019 Equivalence tests here call the deprecated
// free-function surface on purpose, to pin it against the Campaign API.

package veritas_test

// Campaign API coverage: option validation, equivalence with the
// deprecated free-function surface (including the store-backed
// cmd/fleet report path, pinned byte-for-byte), resume, streaming
// results with bounded retention, and serving.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"veritas"
)

// quickOptions is a campaign small enough for unit tests but covering
// every scenario and a 2×2 matrix.
func quickOptions() []veritas.CampaignOption {
	return []veritas.CampaignOption{
		veritas.WithSessions(1),
		veritas.WithChunks(25),
		veritas.WithSeed(1),
		veritas.WithSamples(2),
		veritas.WithWorkers(2),
		veritas.WithMatrix([]string{"bba"}, []float64{5, 30}),
	}
}

func TestCampaignOptionValidation(t *testing.T) {
	cases := []struct {
		name string
		opts []veritas.CampaignOption
		want string
	}{
		{"unknown scenario", []veritas.CampaignOption{veritas.WithScenarios("dialup")}, "unknown scenario"},
		{"empty scenarios", []veritas.CampaignOption{veritas.WithScenarios()}, "at least one"},
		{"duplicate scenario", []veritas.CampaignOption{veritas.WithScenarios("lte", "lte")}, "listed twice"},
		{"zero sessions", []veritas.CampaignOption{veritas.WithSessions(0)}, "must be positive"},
		{"negative chunks", []veritas.CampaignOption{veritas.WithChunks(-1)}, "negative"},
		{"zero samples", []veritas.CampaignOption{veritas.WithSamples(0)}, "must be positive"},
		{"negative workers", []veritas.CampaignOption{veritas.WithWorkers(-2)}, "negative"},
		{"bad deployed buffer", []veritas.CampaignOption{veritas.WithDeployedBuffer(0)}, "positive seconds"},
		{"unknown abr", []veritas.CampaignOption{veritas.WithMatrix([]string{"vhs"}, []float64{5})}, `unknown ABR "vhs"`},
		{"duplicate abr", []veritas.CampaignOption{veritas.WithMatrix([]string{"bba", "bba"}, []float64{5})}, "listed twice"},
		{"empty matrix", []veritas.CampaignOption{veritas.WithMatrix(nil, []float64{5})}, "at least one"},
		{"negative matrix buffer", []veritas.CampaignOption{veritas.WithMatrix([]string{"bba"}, []float64{5, -1})}, "positive seconds"},
		{"duplicate matrix buffer", []veritas.CampaignOption{veritas.WithMatrix([]string{"bba"}, []float64{5, 5})}, "listed twice"},
		{"resume without store", []veritas.CampaignOption{veritas.WithResume()}, "WithResume needs WithStore"},
		{"read-only without store", []veritas.CampaignOption{veritas.WithReadOnlyStore()}, "needs WithStore"},
		{"arms and matrix", []veritas.CampaignOption{
			veritas.WithArms(), veritas.WithMatrix([]string{"bba"}, []float64{5}),
		}, "mutually exclusive"},
		{"corpus and scenario mix", []veritas.CampaignOption{
			veritas.WithCorpus(veritas.FleetSpec{Trace: veritas.ConstantTrace(5)}),
			veritas.WithScenarios("lte"),
		}, "WithCorpus replaces"},
		{"empty corpus", []veritas.CampaignOption{veritas.WithCorpus()}, "at least one"},
		{"nil sink", []veritas.CampaignOption{veritas.WithSink(nil)}, "WithSink(nil)"},
		{"empty store dir", []veritas.CampaignOption{veritas.WithStore("")}, "needs a directory"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := veritas.NewCampaign(tc.opts...)
			if err == nil {
				t.Fatal("bad options accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestCampaignMatchesDeprecatedSurface pins that the options-based path
// computes exactly what the old free functions do: same corpus, same
// arms, same aggregate report JSON.
func TestCampaignMatchesDeprecatedSurface(t *testing.T) {
	ccfg := veritas.CorpusConfig{SessionsPer: 1, NumChunks: 25, Seed: 1}
	corpus, err := veritas.BuildCorpus(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	arms, err := veritas.FleetMatrix(ccfg, []string{"bba"}, []float64{5, 30})
	if err != nil {
		t.Fatal(err)
	}
	oldRes, err := veritas.RunFleet(context.Background(),
		veritas.FleetConfig{Workers: 2, Samples: 2, Seed: 1}, corpus, arms)
	if err != nil {
		t.Fatal(err)
	}

	c, err := veritas.NewCampaign(quickOptions()...)
	if err != nil {
		t.Fatal(err)
	}
	gotCorpus, err := c.Corpus()
	if err != nil {
		t.Fatal(err)
	}
	if len(gotCorpus) != len(corpus) {
		t.Fatalf("campaign corpus has %d sessions, old path %d", len(gotCorpus), len(corpus))
	}
	gotArms, err := c.Arms()
	if err != nil {
		t.Fatal(err)
	}
	if len(gotArms) != len(arms) || gotArms[0].Name != arms[0].Name {
		t.Fatalf("campaign arms %v diverge from old path", len(gotArms))
	}
	newRes, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	oldJSON, err := json.Marshal(oldRes.Agg.Report())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Report()
	if err != nil {
		t.Fatal(err)
	}
	newJSON, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(oldJSON, newJSON) {
		t.Fatalf("campaign report != RunFleet report\nold %s\nnew %s", oldJSON, newJSON)
	}
	if newRes.Executed != oldRes.Executed {
		t.Errorf("executed %d sessions, old path %d", newRes.Executed, oldRes.Executed)
	}
}

// pr2StoreReport replicates, verbatim, what cmd/fleet printed for a
// -store campaign before the Campaign API existed: the campaign.json
// fingerprint, the streamed store, and the store-backed corpus report.
// The equivalence test holds the new path to these exact bytes.
func pr2StoreReport(t *testing.T, dir string) (meta, report []byte) {
	t.Helper()
	type campaignMeta struct {
		Scenarios   []string
		SessionsPer int
		Chunks      int
		Samples     int
		Seed        int64
		Buffer      float64
		ABRs        []string
		Buffers     []float64
	}
	metaBytes, err := json.MarshalIndent(campaignMeta{
		SessionsPer: 1,
		Chunks:      25,
		Samples:     2,
		Seed:        1,
		Buffer:      5, // cmd/fleet's -buffer flag default
		ABRs:        []string{"bba"},
		Buffers:     []float64{5, 30},
	}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "campaign.json"), metaBytes, 0o644); err != nil {
		t.Fatal(err)
	}

	ccfg := veritas.CorpusConfig{SessionsPer: 1, NumChunks: 25, Seed: 1}
	corpus, err := veritas.BuildCorpus(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	arms, err := veritas.FleetMatrix(ccfg, []string{"bba"}, []float64{5, 30})
	if err != nil {
		t.Fatal(err)
	}
	st, err := veritas.OpenStore(dir, veritas.FleetStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	fcfg := veritas.FleetConfig{Workers: 2, Samples: 2, Seed: 1, Sink: st}
	if _, err := veritas.RunFleet(context.Background(), fcfg, corpus, arms); err != nil {
		t.Fatal(err)
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	agg, err := st.Aggregate()
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	fmt.Fprintf(&out, "== corpus report: %d sessions stored in %s ==\n", st.Len(), dir)
	if err := agg.WriteAggregate(&out); err != nil {
		t.Fatal(err)
	}
	return metaBytes, out.Bytes()
}

// deterministicPrefix strips the engine-stats footer (wall-clock
// timings) so store reports can be compared byte-for-byte.
func deterministicPrefix(report []byte) []byte {
	if i := bytes.Index(report, []byte("\n-- engine --\n")); i >= 0 {
		return report[:i]
	}
	return report
}

// TestCampaignStoreOutputMatchesPR2 is the API-redesign equivalence
// gate: a stored campaign run through the new Campaign surface must
// write the exact campaign.json fingerprint and print the exact
// store-backed corpus report that the pre-Campaign cmd/fleet plumbing
// produced — stores written by old binaries stay resumable, scripts
// parsing fleet output keep working.
func TestCampaignStoreOutputMatchesPR2(t *testing.T) {
	oldDir := filepath.Join(t.TempDir(), "old.store")
	if err := os.MkdirAll(oldDir, 0o755); err != nil {
		t.Fatal(err)
	}
	wantMeta, wantReport := pr2StoreReport(t, oldDir)
	// The old header embeds the store path; rewrite it to the new dir
	// for comparison.
	newDir := filepath.Join(t.TempDir(), "new.store")
	wantReport = bytes.Replace(wantReport, []byte(oldDir), []byte(newDir), 1)

	c, err := veritas.NewCampaign(append(quickOptions(), veritas.WithStore(newDir))...)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	gotMeta, err := os.ReadFile(filepath.Join(newDir, "campaign.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantMeta, gotMeta) {
		t.Errorf("campaign.json diverged from the PR2 fingerprint\nwant %s\ngot  %s", wantMeta, gotMeta)
	}
	var got bytes.Buffer
	if err := c.WriteReport(&got); err != nil {
		t.Fatal(err)
	}
	if want, have := deterministicPrefix(wantReport), deterministicPrefix(got.Bytes()); !bytes.Equal(want, have) {
		t.Errorf("store report diverged from the PR2 output\nwant:\n%s\ngot:\n%s", want, have)
	}
	if !bytes.Contains(got.Bytes(), []byte("-- engine --")) {
		t.Error("campaign report lost the engine-stats footer")
	}

	// And a campaign re-opened over the PR2-written store accepts its
	// fingerprint: old stores resume under the new surface.
	c2, err := veritas.NewCampaign(append(quickOptions(), veritas.WithStore(oldDir), veritas.WithResume())...)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	res, err := c2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Executed != 0 {
		t.Errorf("resume over a complete PR2 store executed %d sessions, want 0", res.Executed)
	}
}

func TestCampaignFingerprintMismatchRefused(t *testing.T) {
	dir := t.TempDir()
	c, err := veritas.NewCampaign(append(quickOptions(), veritas.WithStore(dir))...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	c.Close()

	changed := []veritas.CampaignOption{
		veritas.WithSessions(1),
		veritas.WithChunks(50), // different -chunks equivalent
		veritas.WithSeed(1),
		veritas.WithSamples(2),
		veritas.WithMatrix([]string{"bba"}, []float64{5, 30}),
		veritas.WithStore(dir),
	}
	c2, err := veritas.NewCampaign(changed...)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := c2.Run(context.Background()); err == nil || !strings.Contains(err.Error(), "different settings") {
		t.Fatalf("campaign with changed chunks ran against the old store: err = %v", err)
	}
}

// TestCampaignFingerprintScope pins what the store fingerprint can and
// cannot vouch for: explicit-but-default scenario lists normalize to
// the default fingerprint (they compute the identical campaign), while
// caller-supplied pieces that cannot be serialized — a deployed-ABR
// factory, a custom corpus, explicit arms — suppress the fingerprint
// entirely rather than writing one that would vouch for settings it
// does not capture.
func TestCampaignFingerprintScope(t *testing.T) {
	// Default scenario mix writes "Scenarios": null; an explicit list
	// naming every scenario in default order is the same campaign and
	// must be accepted against that store.
	dir := t.TempDir()
	c, err := veritas.NewCampaign(append(quickOptions(), veritas.WithStore(dir))...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	c.Close()
	explicit, err := veritas.NewCampaign(append(quickOptions(),
		veritas.WithScenarios(veritas.Scenarios()...),
		veritas.WithStore(dir), veritas.WithResume())...)
	if err != nil {
		t.Fatal(err)
	}
	defer explicit.Close()
	res, err := explicit.Run(context.Background())
	if err != nil {
		t.Fatalf("explicit full scenario list refused against default-written store: %v", err)
	}
	if res.Executed != 0 {
		t.Errorf("resume executed %d sessions, want 0", res.Executed)
	}

	// The other direction: a store whose campaign.json spells out the
	// full list (as an old binary run with an explicit -scenarios flag
	// would have written it) must accept both the explicit-list and the
	// default-options campaign.
	explicitDir := t.TempDir()
	ce, err := veritas.NewCampaign(append(quickOptions(),
		veritas.WithScenarios(veritas.Scenarios()...),
		veritas.WithStore(explicitDir))...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ce.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	ce.Close()
	onDisk, err := os.ReadFile(filepath.Join(explicitDir, "campaign.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(onDisk), `"fcc"`) {
		t.Fatalf("explicit scenario list not written verbatim (PR2 compat):\n%s", onDisk)
	}
	cd, err := veritas.NewCampaign(append(quickOptions(),
		veritas.WithStore(explicitDir), veritas.WithResume())...)
	if err != nil {
		t.Fatal(err)
	}
	defer cd.Close()
	if res, err := cd.Run(context.Background()); err != nil {
		t.Fatalf("default options refused against explicit-list store: %v", err)
	} else if res.Executed != 0 {
		t.Errorf("resume executed %d sessions, want 0", res.Executed)
	}

	// A deployed-ABR factory cannot be fingerprinted: no campaign.json
	// is written, instead of one that would silently vouch for rows
	// computed under a different Setting A.
	abrDir := t.TempDir()
	ca, err := veritas.NewCampaign(append(quickOptions(),
		veritas.WithDeployedABR(veritas.NewBBA),
		veritas.WithStore(abrDir))...)
	if err != nil {
		t.Fatal(err)
	}
	defer ca.Close()
	if _, err := ca.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(abrDir, "campaign.json")); !os.IsNotExist(err) {
		t.Errorf("WithDeployedABR campaign wrote campaign.json (stat err = %v); a factory cannot be fingerprinted", err)
	}
}

// TestCampaignAbandonedStreamReleasesCampaign pins that an iterator
// dropped without Close or draining — only its context cancelled, the
// remediation the Results doc prescribes — still releases the campaign
// for later runs and Close.
func TestCampaignAbandonedStreamReleasesCampaign(t *testing.T) {
	c, err := veritas.NewCampaign(quickOptions()...)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	stream := c.Results(ctx)
	if !stream.Next() {
		t.Fatalf("no first row: %v", stream.Err())
	}
	cancel() // abandon: no further Next, no Close

	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := c.Run(context.Background()); err == nil {
			break
		} else if !strings.Contains(err.Error(), "already running") {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("campaign still wedged 10s after the abandoned stream's context was cancelled")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := c.Close(); err != nil {
		t.Errorf("Close after abandoned stream: %v", err)
	}
}

// TestCampaignCloseRefusesWhileRunning pins that Close cannot yank the
// store out from under in-flight workers.
func TestCampaignCloseRefusesWhileRunning(t *testing.T) {
	c, err := veritas.NewCampaign(append(quickOptions(), veritas.WithStore(t.TempDir()))...)
	if err != nil {
		t.Fatal(err)
	}
	stream := c.Results(context.Background())
	if !stream.Next() {
		t.Fatalf("no first row: %v", stream.Err())
	}
	if err := c.Close(); err == nil {
		t.Error("Close succeeded while the campaign was running")
	}
	stream.Close()
	if err := stream.Err(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Errorf("Close after draining: %v", err)
	}
}

// TestCampaignResume pins the resume contract through the new surface:
// a campaign finished in two halves aggregates byte-identically to one
// uninterrupted run.
func TestCampaignResume(t *testing.T) {
	uninterrupted := filepath.Join(t.TempDir(), "full.store")
	c, err := veritas.NewCampaign(append(quickOptions(), veritas.WithStore(uninterrupted))...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	wantRep, err := c.Report()
	if err != nil {
		t.Fatal(err)
	}
	c.Close()

	// Simulate a campaign killed halfway: persist only half the corpus
	// via the old plumbing, then hand the store to a resuming Campaign.
	corpus, err := veritas.BuildCorpus(veritas.CorpusConfig{SessionsPer: 1, NumChunks: 25, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	arms, err := veritas.FleetMatrix(veritas.CorpusConfig{SessionsPer: 1, NumChunks: 25, Seed: 1},
		[]string{"bba"}, []float64{5, 30})
	if err != nil {
		t.Fatal(err)
	}
	partial := filepath.Join(t.TempDir(), "partial.store")
	st, err := veritas.OpenStore(partial, veritas.FleetStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	skip := make(map[string]bool)
	for _, spec := range corpus[len(corpus)/2:] {
		skip[spec.ID] = true
	}
	if _, err := veritas.RunFleet(context.Background(),
		veritas.FleetConfig{Workers: 2, Samples: 2, Seed: 1, Sink: st, Skip: skip}, corpus, arms); err != nil {
		t.Fatal(err)
	}
	st.Close()

	c2, err := veritas.NewCampaign(append(quickOptions(), veritas.WithStore(partial))...)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	res, err := c2.Resume(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if want := len(corpus) - len(corpus)/2; res.Executed != want {
		t.Errorf("resume executed %d sessions, want %d", res.Executed, want)
	}
	gotRep, err := c2.Report()
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := json.Marshal(wantRep)
	gotJSON, _ := json.Marshal(gotRep)
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Fatalf("resumed report != uninterrupted report\nwant %s\ngot  %s", wantJSON, gotJSON)
	}
}

// TestCampaignResultsStreams pins the bounded-memory streaming path on
// a 200-session campaign: every row arrives exactly once, and nothing
// per-session — no logs, no posteriors, no result slice — is retained.
func TestCampaignResultsStreams(t *testing.T) {
	const sessions = 200
	specs := make([]veritas.FleetSpec, sessions)
	for i := range specs {
		specs[i] = veritas.FleetSpec{
			ID:           fmt.Sprintf("s-%03d", i),
			Trace:        veritas.ConstantTrace(4 + float64(i%5)),
			MaxChunks:    12,
			SimulateOnly: true,
		}
	}
	c, err := veritas.NewCampaign(veritas.WithCorpus(specs...), veritas.WithWorkers(4), veritas.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	stream := c.Results(context.Background())
	seen := make(map[string]bool, sessions)
	for stream.Next() {
		row := stream.Row()
		if seen[row.ID] {
			t.Errorf("row %s streamed twice", row.ID)
		}
		seen[row.ID] = true
	}
	if err := stream.Err(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != sessions {
		t.Fatalf("streamed %d rows, want %d", len(seen), sessions)
	}
	res := stream.Result()
	if res == nil {
		t.Fatal("no result after draining the stream")
	}
	if len(res.Sessions) != 0 {
		t.Errorf("streaming path retained %d per-session results, want 0", len(res.Sessions))
	}
	if res.Executed != sessions {
		t.Errorf("executed %d, want %d", res.Executed, sessions)
	}
	// The campaign can report (from the aggregator) after streaming.
	if _, err := c.Report(); err != nil {
		t.Fatal(err)
	}
}

func TestCampaignResultsCloseEarly(t *testing.T) {
	c, err := veritas.NewCampaign(quickOptions()...)
	if err != nil {
		t.Fatal(err)
	}
	stream := c.Results(context.Background())
	if !stream.Next() {
		t.Fatalf("no first row: %v", stream.Err())
	}
	stream.Close()
	if err := stream.Err(); err != nil {
		t.Errorf("deliberate Close surfaced error %v", err)
	}
	// The campaign is free again after an abandoned stream.
	if _, err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestCampaignServe(t *testing.T) {
	dir := t.TempDir()
	c, err := veritas.NewCampaign(append(quickOptions(), veritas.WithStore(dir), veritas.WithReadCache(16))...)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	h, err := c.Handler()
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/report")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/report: %d", resp.StatusCode)
	}
	if resp.Header.Get("ETag") == "" {
		t.Error("served report carries no ETag")
	}
	var served veritas.FleetReport
	if err := json.NewDecoder(resp.Body).Decode(&served); err != nil {
		t.Fatal(err)
	}
	rep, err := c.Report()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&served, rep) {
		t.Error("served report != Campaign.Report")
	}

	// A read-only campaign attaches to the same store and refuses to run.
	ro, err := veritas.NewCampaign(veritas.WithStore(dir), veritas.WithReadOnlyStore())
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	if _, err := ro.Run(context.Background()); err == nil {
		t.Error("read-only campaign ran")
	}
	roRep, err := ro.Report()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(roRep, rep) {
		t.Error("read-only report != writable report")
	}
}

// TestDefaultingParity is the facade-defaulting table: the old shims
// and the new options must fill identical defaults — video seed 1, 5 s
// buffer, DefaultNetwork — whichever door a query walks in through.
func TestDefaultingParity(t *testing.T) {
	defVideo := veritas.DefaultVideo(1)
	defNet := veritas.DefaultNetwork()

	newArm, err := veritas.NewArm("x", veritas.WhatIf{NewABR: veritas.NewBBA})
	if err != nil {
		t.Fatal(err)
	}
	oldArm, err := veritas.NewFleetArm("x", veritas.WhatIf{NewABR: veritas.NewBBA})
	if err != nil {
		t.Fatal(err)
	}

	c, err := veritas.NewCampaign(veritas.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	corpus, err := c.Corpus()
	if err != nil {
		t.Fatal(err)
	}
	oldCorpus, err := veritas.BuildCorpus(veritas.CorpusConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name      string
		bufferCap float64
		video     *veritas.Video
		net       veritas.NetworkConfig
		netSeeded bool // corpus specs re-seed jitter per session
	}{
		{"NewArm/WhatIf", newArm.Setting.BufferCap, newArm.Setting.Video, newArm.Setting.Net, false},
		{"NewFleetArm/WhatIf", oldArm.Setting.BufferCap, oldArm.Setting.Video, oldArm.Setting.Net, false},
		{"Campaign corpus spec", corpus[0].BufferCap, corpus[0].Video, *corpus[0].Net, true},
		{"BuildCorpus spec", oldCorpus[0].BufferCap, oldCorpus[0].Video, *oldCorpus[0].Net, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.bufferCap != 5 {
				t.Errorf("buffer defaulted to %g, want the paper's 5 s", tc.bufferCap)
			}
			if tc.video == nil {
				t.Fatal("video not defaulted")
			}
			if tc.video.NumChunks() != defVideo.NumChunks() ||
				tc.video.Quality(0).Mbps != defVideo.Quality(0).Mbps {
				t.Errorf("video defaulted to %d chunks / %g Mbps floor, want DefaultVideo(1)'s %d / %g",
					tc.video.NumChunks(), tc.video.Quality(0).Mbps, defVideo.NumChunks(), defVideo.Quality(0).Mbps)
			}
			net := tc.net
			if tc.netSeeded {
				// Corpus specs re-seed per-session jitter; everything
				// else must match the default path.
				net.Seed = defNet.Seed
			}
			if !reflect.DeepEqual(net, defNet) {
				t.Errorf("network defaulted to %+v, want DefaultNetwork %+v", net, defNet)
			}
		})
	}

	// RunSession and a campaign spec with the same explicit inputs and
	// defaulted video/net/buffer must compute identical sessions.
	gt := veritas.ConstantTrace(5)
	sess, err := veritas.RunSession(veritas.SessionConfig{Trace: gt, ABR: veritas.NewMPC(), MaxChunks: 20})
	if err != nil {
		t.Fatal(err)
	}
	cc, err := veritas.NewCampaign(veritas.WithCorpus(veritas.FleetSpec{
		ID: "one", Trace: gt, MaxChunks: 20, SimulateOnly: true,
	}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := cc.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Sessions[0].SettingA != sess.Metrics {
		t.Errorf("campaign spec defaults diverge from RunSession defaults:\n%+v\n%+v",
			res.Sessions[0].SettingA, sess.Metrics)
	}
}

// countGoroutines samples the live goroutine count after nudging the
// scheduler, so short-lived exiting goroutines settle first.
func countGoroutines() int {
	runtime.Gosched()
	return runtime.NumGoroutine()
}

// TestCampaignResultsEarlyCancelNoGoroutineLeak is the leak contract
// for the streaming path (which forces DiscardResults under the hood):
// a consumer that reads a little and then cancels — without draining
// or closing — must leave no engine workers, shard feeder, or joiner
// goroutine behind once the cancellation propagates.
func TestCampaignResultsEarlyCancelNoGoroutineLeak(t *testing.T) {
	before := countGoroutines()
	for i := 0; i < 3; i++ {
		c, err := veritas.NewCampaign(quickOptions()...)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		stream := c.Results(ctx)
		if !stream.Next() {
			t.Fatalf("no first row: %v", stream.Err())
		}
		cancel() // early consumer cancel: no drain, no Close
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if countGoroutines() <= before {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked by abandoned result streams: %d before, %d after\n%s",
				before, countGoroutines(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The explicit-Close path must settle identically.
	c, err := veritas.NewCampaign(quickOptions()...)
	if err != nil {
		t.Fatal(err)
	}
	stream := c.Results(context.Background())
	if !stream.Next() {
		t.Fatalf("no first row: %v", stream.Err())
	}
	stream.Close()
	deadline = time.Now().Add(10 * time.Second)
	for countGoroutines() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked by a Closed result stream: %d before, %d after",
				before, countGoroutines())
		}
		time.Sleep(20 * time.Millisecond)
	}
}
