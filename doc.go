// Package veritas is a from-scratch Go reproduction of "Veritas:
// Answering Causal Queries from Video Streaming Traces" (SIGCOMM 2023).
//
// Veritas answers what-if questions about adaptive-bitrate video
// sessions from passively collected logs. The central difficulty is
// that the network's ground-truth bandwidth (GTBW) is a latent,
// confounding time series: the deployed ABR algorithm reacts to it, so
// observed throughput both under-reports it and correlates with the
// algorithm's own decisions. Veritas inverts the observations back into
// a posterior over GTBW trajectories using an Embedded Hidden Markov
// Model whose emissions wrap a domain-specific TCP throughput estimator
// conditioned on the TCP state logged at each chunk start.
//
// The package exposes the full pipeline:
//
//   - Abduct turns a session log into K posterior GTBW traces.
//   - Counterfactual replays a changed design (different ABR, buffer
//     size, or quality ladder) over those traces and reports the range
//     of outcomes.
//   - PredictDownloadTime answers interventional queries about
//     hypothetical next chunks.
//   - Baseline and Oracle provide the comparison estimators the paper
//     evaluates against.
//   - NewCampaign batches all of the above over a corpus of sessions:
//     one options-built Campaign spans the concurrent fleet engine
//     (internal/engine: sharded workers, per-session emission
//     memoization, a streaming aggregator whose results are identical
//     for every worker count) and the persistent corpus store
//     (internal/store), with Run/Resume/Results/Report/Serve tying a
//     campaign's execution, durability, streaming iteration and HTTP
//     serving together. The older free functions (RunFleet,
//     BuildCorpus, FleetMatrix, ...) remain as deprecated shims.
//   - Campaign.Dispatch scales a campaign across worker processes:
//     a supervisor (internal/dispatch) launches one re-exec'd worker
//     per shard (see DispatchWorkerMain), streams their progress,
//     restarts crashed shards with resume into their same store, and
//     folds the shard stores into one corpus whose report is
//     byte-identical to a single-process run.
//
// Everything the pipeline needs is included: a bandwidth-trace
// substrate with an FCC-like generator, a TCP/network emulator standing
// in for the paper's Mahimahi testbed, a synthetic VBR video, a player,
// and the MPC/BBA/BOLA ABR algorithms. The internal/experiments package
// regenerates every figure of the paper's evaluation; see EXPERIMENTS.md.
//
// # Quick start
//
//	gt, _ := veritas.GenerateTrace(veritas.DefaultTraceConfig(1))
//	sess, _ := veritas.RunSession(veritas.SessionConfig{
//		Trace: gt, ABR: veritas.NewMPC(), BufferCap: 5,
//	})
//	abd, _ := veritas.Abduct(sess.Log, veritas.AbductionConfig{})
//	outcome, _ := veritas.Counterfactual(abd, veritas.WhatIf{
//		NewABR:    veritas.NewBBA,
//		BufferCap: 5,
//	})
//	fmt.Println(outcome.SSIMRange())
//
// And at fleet scale:
//
//	c, _ := veritas.NewCampaign(
//		veritas.WithSessions(25),
//		veritas.WithMatrix([]string{"bba", "bola"}, []float64{5, 30}),
//		veritas.WithStore("campaign.store"),
//	)
//	res, _ := c.Run(ctx)
//	rep, _ := c.Report()
//
// All randomness is seeded and every run is reproducible.
package veritas
