package veritas_test

// The sharded-dispatch equivalence suite: the same campaign computed
// three ways — one process, three shard processes folded, and three
// shards where one was killed mid-run and resumed — must produce
// byte-identical engine.Report JSON and byte-identical /v1/report
// bodies. This is the contract that makes multi-machine dispatch safe:
// sharding and crashes change how the corpus is computed, never what.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"veritas"
)

// reportJSON marshals a campaign's aggregate report.
func reportJSON(t *testing.T, c *veritas.Campaign) []byte {
	t.Helper()
	rep, err := c.Report()
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// v1Report fetches /v1/report from a campaign's HTTP handler.
func v1Report(t *testing.T, c *veritas.Campaign) []byte {
	t.Helper()
	h, err := c.Handler()
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/report", nil))
	if rec.Code != 200 {
		t.Fatalf("/v1/report: status %d: %s", rec.Code, rec.Body.String())
	}
	return rec.Body.Bytes()
}

// runShard executes one shard of the quickOptions campaign into dir.
func runShard(t *testing.T, ctx context.Context, shard, of int, dir string, extra ...veritas.CampaignOption) {
	t.Helper()
	opts := append(quickOptions(), veritas.WithShard(shard, of), veritas.WithStore(dir))
	opts = append(opts, extra...)
	c, err := veritas.NewCampaign(opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Run(ctx); err != nil {
		t.Fatalf("shard %d/%d: %v", shard, of, err)
	}
}

// TestShardedCampaignEquivalence is the acceptance pin for sharded
// dispatch: single-process, 3-shards-folded, and
// 3-shards-with-a-mid-run-kill-then-resume all report byte-identically,
// through Report() and through the serving layer.
func TestShardedCampaignEquivalence(t *testing.T) {
	ctx := context.Background()
	const shards = 3

	// Way A: one process, one store.
	dirA := filepath.Join(t.TempDir(), "single.store")
	single, err := veritas.NewCampaign(append(quickOptions(), veritas.WithStore(dirA))...)
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	if _, err := single.Run(ctx); err != nil {
		t.Fatal(err)
	}
	wantReport := reportJSON(t, single)
	wantBody := v1Report(t, single)

	// Way B: three shard processes, each into its own store, folded.
	dirsB := make([]string, shards)
	for i := 0; i < shards; i++ {
		dirsB[i] = filepath.Join(t.TempDir(), fmt.Sprintf("shard%d.store", i))
		runShard(t, ctx, i, shards, dirsB[i])
	}
	foldedB := filepath.Join(t.TempDir(), "foldedB.store")
	// Scrambled listing order: FoldShards must order by shard index.
	if _, err := veritas.FoldShards(foldedB, dirsB[2], dirsB[0], dirsB[1]); err != nil {
		t.Fatal(err)
	}
	cb, err := veritas.NewCampaign(veritas.WithStore(foldedB), veritas.WithReadOnlyStore())
	if err != nil {
		t.Fatal(err)
	}
	defer cb.Close()
	if got := reportJSON(t, cb); !bytes.Equal(wantReport, got) {
		t.Fatalf("3-shard folded report differs from the single-process run\nwant: %s\ngot:  %s", wantReport, got)
	}
	if got := v1Report(t, cb); !bytes.Equal(wantBody, got) {
		t.Fatalf("folded /v1/report body differs from the single-process store's")
	}

	// Way C: like B, but shard 0 is killed after its first completed
	// session (context cancellation — the finished session is already
	// durable in the shard store) and then resumed by a fresh process.
	dirsC := make([]string, shards)
	for i := range dirsC {
		dirsC[i] = filepath.Join(t.TempDir(), fmt.Sprintf("shardC%d.store", i))
	}
	killCtx, kill := context.WithCancel(ctx)
	killed, err := veritas.NewCampaign(append(quickOptions(),
		veritas.WithWorkers(1),
		veritas.WithShard(0, shards),
		veritas.WithStore(dirsC[0]),
		veritas.WithProgress(func(veritas.FleetSessionResult) { kill() }),
	)...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := killed.Run(killCtx); err == nil {
		t.Fatal("killed shard run reported success")
	}
	st, err := killed.Store()
	if err != nil {
		t.Fatal(err)
	}
	survived := st.Len()
	if survived == 0 {
		t.Fatal("mid-run kill persisted nothing; the test cannot exercise resume")
	}
	if err := killed.Close(); err != nil {
		t.Fatal(err)
	}
	kill()

	// Resume shard 0; the other shards run uninterrupted.
	resumed, err := veritas.NewCampaign(append(quickOptions(),
		veritas.WithShard(0, shards),
		veritas.WithStore(dirsC[0]),
		veritas.WithResume(),
	)...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := resumed.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Executed == 0 {
		t.Error("resume recomputed nothing; expected the remainder of the shard")
	}
	corpus, err := resumed.Corpus()
	if err != nil {
		t.Fatal(err)
	}
	inShard := 0
	for i := range corpus {
		if i%shards == 0 {
			inShard++
		}
	}
	if res.Executed != inShard-survived {
		t.Errorf("resumed shard executed %d sessions, want %d (shard of %d minus %d already stored)",
			res.Executed, inShard-survived, inShard, survived)
	}
	if err := resumed.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < shards; i++ {
		runShard(t, ctx, i, shards, dirsC[i])
	}
	foldedC := filepath.Join(t.TempDir(), "foldedC.store")
	if _, err := veritas.FoldShards(foldedC, dirsC[0], dirsC[1], dirsC[2]); err != nil {
		t.Fatal(err)
	}
	cc, err := veritas.NewCampaign(veritas.WithStore(foldedC), veritas.WithReadOnlyStore())
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	if got := reportJSON(t, cc); !bytes.Equal(wantReport, got) {
		t.Fatalf("kill-and-resume folded report differs from the single-process run\nwant: %s\ngot:  %s", wantReport, got)
	}
	if got := v1Report(t, cc); !bytes.Equal(wantBody, got) {
		t.Fatalf("kill-and-resume /v1/report body differs from the single-process store's")
	}
}

func TestWithShardValidation(t *testing.T) {
	for _, tc := range []struct {
		index, count int
		want         string
	}{
		{0, 0, "at least 1"},
		{0, -1, "at least 1"},
		{-1, 2, "out of range"},
		{2, 2, "out of range"},
	} {
		_, err := veritas.NewCampaign(veritas.WithShard(tc.index, tc.count))
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("WithShard(%d, %d): err = %v, want mention of %q", tc.index, tc.count, err, tc.want)
		}
	}
	if _, err := veritas.NewCampaign(veritas.WithShard(0, 1)); err != nil {
		t.Errorf("WithShard(0, 1) rejected: %v", err)
	}
}

// TestShardStoreDiscipline: a shard's store refuses writable opens
// under a different shard assignment — including an unsharded one —
// while read-only opens (inspecting or serving one shard) are allowed.
func TestShardStoreDiscipline(t *testing.T) {
	ctx := context.Background()
	dir := filepath.Join(t.TempDir(), "shard0.store")
	runShard(t, ctx, 0, 3, dir)

	for name, opts := range map[string][]veritas.CampaignOption{
		"different shard": append(quickOptions(), veritas.WithShard(1, 3), veritas.WithStore(dir)),
		"unsharded":       append(quickOptions(), veritas.WithStore(dir)),
	} {
		c, err := veritas.NewCampaign(opts...)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Store(); err == nil || !strings.Contains(err.Error(), "shard") {
			t.Errorf("%s open of a shard store: err = %v, want a shard mismatch", name, err)
		}
		c.Close()
	}

	ro, err := veritas.NewCampaign(veritas.WithStore(dir), veritas.WithReadOnlyStore())
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	if _, err := ro.Store(); err != nil {
		t.Errorf("read-only open of a shard store refused: %v", err)
	}

	// The converse: a non-empty unsharded store must not be rebranded
	// as a shard's — its full-campaign rows are not one shard's slice.
	unshardedDir := filepath.Join(t.TempDir(), "full.store")
	full, err := veritas.NewCampaign(append(quickOptions(), veritas.WithStore(unshardedDir))...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := full.Run(ctx); err != nil {
		t.Fatal(err)
	}
	if err := full.Close(); err != nil {
		t.Fatal(err)
	}
	asShard, err := veritas.NewCampaign(append(quickOptions(),
		veritas.WithShard(1, 3), veritas.WithStore(unshardedDir))...)
	if err != nil {
		t.Fatal(err)
	}
	defer asShard.Close()
	if _, err := asShard.Store(); err == nil || !strings.Contains(err.Error(), "unsharded campaign") {
		t.Errorf("sharded open rebranded a non-empty unsharded store: err = %v", err)
	}
}

func TestShardSessions(t *testing.T) {
	// 8 sessions over 3 shards: 3 + 3 + 2.
	sizes := 0
	for i, want := range []int{3, 3, 2} {
		if got := veritas.ShardSessions(8, i, 3); got != want {
			t.Errorf("ShardSessions(8, %d, 3) = %d, want %d", i, got, want)
		}
		sizes += veritas.ShardSessions(8, i, 3)
	}
	if sizes != 8 {
		t.Errorf("shard sizes sum to %d, want the whole corpus", sizes)
	}
	if got := veritas.ShardSessions(8, 0, 1); got != 8 {
		t.Errorf("ShardSessions(8, 0, 1) = %d, want 8 (unsharded)", got)
	}
}
