package veritas

// Backward-compatibility shims: the pre-Campaign fleet surface, kept
// compiling so downstream code and old examples keep working. Each
// entry is a thin veneer over the same core the Campaign API drives;
// none of them will be removed, but new code should use NewCampaign.

import (
	"context"
	"net/http"

	"veritas/internal/engine"
	"veritas/internal/store"
)

type (
	// FleetConfig sizes the engine: workers, shard size, posterior
	// samples, seed, memoization.
	//
	// Deprecated: build a Campaign instead; WithWorkers, WithSamples,
	// WithSeed, WithSink and WithoutMemoization cover these fields.
	FleetConfig = engine.Config
	// CorpusConfig describes a scenario-diverse synthetic corpus.
	//
	// Deprecated: build a Campaign instead; WithScenarios,
	// WithSessions, WithChunks, WithDeployedABR, WithDeployedBuffer
	// and WithSeed cover these fields.
	CorpusConfig = engine.CorpusConfig
)

// RunFleet executes batch causal queries: every corpus session is
// simulated (or taken from its log), inverted via Abduct, and replayed
// under every arm, fanned out across the engine's worker pool. Results
// are deterministic in the corpus and seeds, independent of the worker
// count.
//
// Deprecated: use NewCampaign(WithCorpus(corpus...), WithArms(arms...),
// ...).Run(ctx) — one object that also carries persistence, resume,
// streaming results and serving.
func RunFleet(ctx context.Context, cfg FleetConfig, corpus []FleetSpec, arms []FleetArm) (*FleetResult, error) {
	return engine.Run(ctx, cfg, corpus, arms)
}

// BuildCorpus materializes a scenario-diverse corpus (FCC-, LTE-,
// WiFi-like and square-wave bandwidth regimes) as fleet session specs.
//
// Deprecated: pass the scenario mix to NewCampaign (WithScenarios,
// WithSessions, WithChunks, WithSeed); Campaign.Corpus returns the
// materialized specs when they are needed directly.
func BuildCorpus(cfg CorpusConfig) ([]FleetSpec, error) { return engine.BuildCorpus(cfg) }

// FleetMatrix returns the ABR × buffer-size what-if matrix for a
// corpus, one arm per pair.
//
// Deprecated: use WithMatrix(abrs, buffers) on NewCampaign;
// Campaign.Arms returns the materialized arms when they are needed
// directly.
func FleetMatrix(cfg CorpusConfig, abrs []string, buffers []float64) ([]FleetArm, error) {
	return engine.BuildMatrix(cfg, abrs, buffers)
}

// FleetScenarios returns the corpus scenario names BuildCorpus accepts.
//
// Deprecated: use Scenarios.
func FleetScenarios() []string { return Scenarios() }

// FleetABRs returns the algorithm names FleetMatrix accepts.
//
// Deprecated: use ABRs.
func FleetABRs() []string { return ABRs() }

// NewFleetArm builds a fleet arm from a WhatIf, defaulting video,
// network and buffer the same way Counterfactual does.
//
// Deprecated: use NewArm.
func NewFleetArm(name string, w WhatIf) (FleetArm, error) { return NewArm(name, w) }

// NewStoreHandler returns the HTTP query API over an open store (list
// sessions and scenarios, fetch per-session what-if results, aggregate
// reports as JSON) with an in-process read cache of cacheEntries
// decoded sessions (0 picks the default, negative disables).
//
// Deprecated: use Campaign.Handler on a campaign built with WithStore
// and WithReadCache.
func NewStoreHandler(s *FleetStore, cacheEntries int) http.Handler {
	return store.NewHandler(s, store.ServeOptions{CacheEntries: cacheEntries})
}

// ServeStore serves the query API over an open store on addr until ctx
// is cancelled, then drains in-flight requests for up to five seconds.
//
// Deprecated: use Campaign.Serve on a campaign built with WithStore
// (and WithReadOnlyStore when another process owns the campaign).
func ServeStore(ctx context.Context, addr string, s *FleetStore, cacheEntries int) error {
	return serveHTTP(ctx, addr, NewStoreHandler(s, cacheEntries))
}
