// Command sessionrun simulates a video streaming session over a
// bandwidth trace and emits the session log as JSON — the observables a
// deployed system would record, ready for abduction.
//
// Usage:
//
//	sessionrun -trace trace.txt -abr mpc -buffer 5 > session.json
package main

import (
	"flag"
	"fmt"
	"os"

	"veritas/internal/abr"
	"veritas/internal/netem"
	"veritas/internal/player"
	"veritas/internal/trace"
	"veritas/internal/video"
)

func main() {
	var (
		tracePath = flag.String("trace", "", "bandwidth trace file (required)")
		abrName   = flag.String("abr", "mpc", "ABR algorithm: mpc, bba, bola, festive, random, fixed:<q>")
		buffer    = flag.Float64("buffer", 5, "player buffer capacity (seconds)")
		chunks    = flag.Int("chunks", 0, "limit session length in chunks (0 = full video)")
		ladder    = flag.String("ladder", "default", "quality ladder: default or higher")
		seed      = flag.Int64("seed", 1, "seed for video synthesis and network jitter")
		rtt       = flag.Float64("rtt", 0.160, "round-trip time (seconds)")
	)
	flag.Parse()

	if *tracePath == "" {
		fmt.Fprintln(os.Stderr, "sessionrun: -trace is required")
		os.Exit(2)
	}
	f, err := os.Open(*tracePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sessionrun:", err)
		os.Exit(1)
	}
	tr, err := trace.Decode(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "sessionrun: decode trace:", err)
		os.Exit(1)
	}

	vcfg := video.DefaultConfig(*seed)
	switch *ladder {
	case "default":
	case "higher":
		vcfg.Ladder = video.HigherLadder()
	default:
		fmt.Fprintf(os.Stderr, "sessionrun: unknown ladder %q\n", *ladder)
		os.Exit(2)
	}
	vid, err := video.Synthesize(vcfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sessionrun:", err)
		os.Exit(1)
	}

	alg, err := parseABR(*abrName, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sessionrun:", err)
		os.Exit(2)
	}

	net := netem.DefaultConfig()
	net.RTT = *rtt
	net.Seed = *seed
	log, m, err := player.Run(player.Config{
		Video:     vid,
		ABR:       alg,
		Trace:     tr,
		Net:       net,
		BufferCap: *buffer,
		MaxChunks: *chunks,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "sessionrun:", err)
		os.Exit(1)
	}
	if err := player.EncodeLog(os.Stdout, log); err != nil {
		fmt.Fprintln(os.Stderr, "sessionrun:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "session: %d chunks, SSIM %.4f, rebuffering %.2f%%, avg bitrate %.2f Mbps\n",
		m.NumChunks, m.AvgSSIM, m.RebufRatio*100, m.AvgBitrateMbps)
}

func parseABR(name string, seed int64) (abr.Algorithm, error) {
	switch name {
	case "mpc":
		return abr.NewMPC(), nil
	case "bba":
		return abr.NewBBA(), nil
	case "bola":
		return abr.NewBOLA(), nil
	case "festive":
		return abr.NewFestive(), nil
	case "random":
		return abr.NewRandom(seed), nil
	}
	var q int
	if n, _ := fmt.Sscanf(name, "fixed:%d", &q); n == 1 {
		return &abr.Fixed{Quality: q}, nil
	}
	return nil, fmt.Errorf("unknown ABR %q (want mpc, bba, bola, festive, random, fixed:<q>)", name)
}
