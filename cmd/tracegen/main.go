// Command tracegen generates synthetic FCC-like bandwidth traces in the
// textual "<time> <mbps>" format consumed by the other tools.
//
// Usage:
//
//	tracegen -n 100 -out traces/           # one file per trace
//	tracegen -seed 7 > trace.txt           # single trace to stdout
//	tracegen -min 0.5 -max 10 -horizon 900 # custom regime
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"veritas/internal/trace"
)

func main() {
	var (
		n       = flag.Int("n", 1, "number of traces to generate")
		out     = flag.String("out", "", "output directory (default: single trace to stdout)")
		seed    = flag.Int64("seed", 1, "base seed; trace i uses seed+i")
		min     = flag.Float64("min", 3, "minimum bandwidth (Mbps)")
		max     = flag.Float64("max", 8, "maximum bandwidth (Mbps)")
		horizon = flag.Float64("horizon", 720, "trace length (seconds)")
		step    = flag.Float64("step", 0.4, "max per-interval drift (Mbps)")
		jump    = flag.Float64("jump", 0.02, "regime-jump probability per interval")
		ival    = flag.Float64("interval", 5, "seconds per bandwidth step")
		format  = flag.String("format", "text", "output format: text or mahimahi (mm-link packet schedule)")
	)
	flag.Parse()
	if *format != "text" && *format != "mahimahi" {
		fmt.Fprintf(os.Stderr, "tracegen: unknown format %q\n", *format)
		os.Exit(2)
	}

	cfg := trace.GenConfig{
		MinMbps: *min, MaxMbps: *max, Interval: *ival,
		Horizon: *horizon, StepMbps: *step, JumpProb: *jump, Seed: *seed,
	}
	traces, err := trace.GenerateSet(cfg, *n)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}

	if *out == "" {
		if *n != 1 {
			fmt.Fprintln(os.Stderr, "tracegen: -n > 1 requires -out")
			os.Exit(2)
		}
		if err := encodeTrace(os.Stdout, traces[0], *format, *horizon); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		return
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	for i, tr := range traces {
		path := filepath.Join(*out, fmt.Sprintf("trace_%04d.txt", i))
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		if err := encodeTrace(f, tr, *format, *horizon); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
	}
	fmt.Printf("wrote %d traces to %s\n", len(traces), *out)
}

// encodeTrace writes a trace in the chosen format.
func encodeTrace(w io.Writer, tr *trace.Trace, format string, horizon float64) error {
	if format == "mahimahi" {
		return tr.EncodeMahimahi(w, horizon)
	}
	return tr.Encode(w)
}
