package main

import (
	"flag"
	"strconv"
	"strings"

	"veritas"
)

// campaignFlags collects the campaign-shaping flags of dispatcher
// mode; the dispatcher owns the campaign definition, agents learn it
// from the lease spec.
type campaignFlags struct {
	workers   int
	sessions  int
	scenarios string
	chunks    int
	samples   int
	seed      int64
	buffer    float64
	abrs      string
	buffers   string
	nocache   bool
	storeDir  string
}

func (o *campaignFlags) register(fs *flag.FlagSet) {
	fs.IntVar(&o.workers, "workers", 0, "dispatcher mode: worker pool size per agent worker process (0 = its GOMAXPROCS)")
	fs.IntVar(&o.sessions, "sessions", 8, "dispatcher mode: sessions per scenario")
	fs.StringVar(&o.scenarios, "scenarios", "", "dispatcher mode: comma-separated scenarios (default: all of "+strings.Join(veritas.Scenarios(), ",")+")")
	fs.IntVar(&o.chunks, "chunks", 120, "dispatcher mode: chunks per session (0 = full 10-min clip)")
	fs.IntVar(&o.samples, "samples", 5, "dispatcher mode: Veritas posterior samples K")
	fs.Int64Var(&o.seed, "seed", 1, "dispatcher mode: base seed for the whole campaign")
	fs.Float64Var(&o.buffer, "buffer", 5, "dispatcher mode: deployed (Setting A) buffer size, seconds")
	fs.StringVar(&o.abrs, "abrs", "bba,bola", "dispatcher mode: comma-separated what-if ABRs ("+strings.Join(veritas.ABRs(), ",")+")")
	fs.StringVar(&o.buffers, "buffers", "5,30", "dispatcher mode: comma-separated what-if buffer sizes, seconds")
	fs.BoolVar(&o.nocache, "nocache", false, "dispatcher mode: disable the emission memoization cache in workers")
	fs.StringVar(&o.storeDir, "store", "", "dispatcher mode: fold the fleet's shard stores into this corpus store directory")
}

// campaignOptions maps the flags onto the Campaign API; validation
// lives in veritas.NewCampaign.
func (o campaignFlags) campaignOptions() []veritas.CampaignOption {
	bufVals := parseFloatsLoose(o.buffers)
	opts := []veritas.CampaignOption{
		veritas.WithWorkers(o.workers),
		veritas.WithSessions(o.sessions),
		veritas.WithChunks(o.chunks),
		veritas.WithSamples(o.samples),
		veritas.WithSeed(o.seed),
		veritas.WithDeployedBuffer(o.buffer),
		veritas.WithMatrix(splitCSV(o.abrs), bufVals),
	}
	if sc := splitCSV(o.scenarios); len(sc) > 0 {
		opts = append(opts, veritas.WithScenarios(sc...))
	}
	if o.storeDir != "" {
		opts = append(opts, veritas.WithStore(o.storeDir))
	}
	if o.nocache {
		opts = append(opts, veritas.WithoutMemoization())
	}
	return opts
}

func splitCSV(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// parseFloatsLoose parses a comma-joined float list, passing malformed
// values through as NaN-free zero-length output so that the campaign's
// own WithMatrix validation produces the user-facing error.
func parseFloatsLoose(s string) []float64 {
	var out []float64
	for _, p := range splitCSV(s) {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil
		}
		out = append(out, v)
	}
	return out
}
