// Command veritasd is the networked fleet daemon: the same campaign
// cmd/fleet dispatches onto local worker processes, spread across
// machines. One process runs the dispatcher — the control plane that
// owns the campaign definition, leases shards, verifies and folds the
// uploaded shard stores — and any number of agent processes join it,
// lease shards, run them with re-exec'd workers, and ship the results
// back.
//
// Dispatcher (one machine; computes nothing itself):
//
//	veritasd -addr :9300 -shards 4 -store campaign.store -sessions 25
//
// Agents (each worker machine; -dir persists partial shards so a
// re-leased shard resumes instead of recomputing):
//
//	veritasd -join http://dispatcher:9300 -dir /var/tmp/veritasd
//
// Leases are TTL'd (-lease-ttl) and renewed by heartbeat. An agent
// that dies — or a straggler still holding a shard past -max-lease —
// loses the shard to the next agent that asks for work: work stealing.
// Because the corpus partition and every session seed are functions of
// the campaign alone, the folded report is byte-identical to a
// single-process run no matter how many agents ran, died, or were
// stolen from.
//
// While the campaign runs the dispatcher serves the fleet view on
// -addr: GET /v1/status (shard and agent rows), /metrics (per-agent
// labeled), /v1/trace. With -serve it keeps running after the fold and
// serves the folded corpus (GET /v1/report etc.) on the same address.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"veritas"
	"veritas/internal/cli"
)

// logger is the process-wide structured logger, rebuilt from -log and
// -log-level right after flag parsing; stdout stays reserved for the
// dispatcher's report.
var logger = slog.New(slog.NewTextHandler(os.Stderr, nil))

func main() {
	// Re-exec entrypoints, in inheritance order: an agent's worker
	// children inherit the agent env, so the worker trigger must be
	// checked first.
	veritas.DispatchWorkerMain()
	veritas.FleetAgentMain()

	join := flag.String("join", "", "agent mode: join the fleet dispatcher at this base URL (e.g. http://host:9300) and work leases")
	name := flag.String("name", "", "agent mode: requested agent id (default: dispatcher-assigned)")
	dir := flag.String("dir", "", "agent mode: parent directory for local shard stores (default: a fresh temp dir; reuse one to resume partial shards)")
	addr := flag.String("addr", "", "dispatcher mode: listen address for agents and the fleet status API (e.g. :9300)")
	shards := flag.Int("shards", 0, "dispatcher mode: number of shards to lease out")
	leaseTTL := flag.Duration("lease-ttl", 0, "dispatcher mode: lease TTL; an agent silent this long is stolen from (default 10s)")
	maxLease := flag.Duration("max-lease", 0, "dispatcher mode: hard per-lease deadline after which even a heartbeating straggler is stolen from (default: none)")
	serve := flag.Bool("serve", false, "dispatcher mode: keep serving the folded corpus on -addr after the campaign")
	restarts := flag.Int("restarts", 2, "per-lease local crash-restart budget (both modes: agents restart their own workers)")
	progress := flag.Bool("progress", false, "log every per-shard progress event instead of the rate-limited fleet summary")
	tracePath := flag.String("trace", "", "dispatcher mode: write the fleet-wide Chrome trace-event JSON to this file after the campaign")

	var o campaignFlags
	o.register(flag.CommandLine)

	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	logFormat := flag.String("log", "text", "structured log format on stderr: text or json")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
	quiet := flag.Bool("quiet", false, "skip the one-line JSON telemetry summary on clean shutdown")
	flag.Parse()

	log, err := cli.NewLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		fatal(err)
	}
	logger = log
	startPprof(*pprofAddr)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	switch {
	case *join != "" && *addr != "":
		fatal(errors.New("-join (agent) and -addr (dispatcher) are mutually exclusive: one process, one role"))
	case *join != "":
		// Dispatcher-shaping flags mean nothing to an agent; the lease
		// spec carries the campaign. Refuse rather than silently ignore.
		if stray := strayAgentFlags(flag.CommandLine); len(stray) > 0 {
			fatal(fmt.Errorf("-join takes only agent flags; the dispatcher's lease defines the campaign (drop %s)",
				strings.Join(stray, ", ")))
		}
		if err := agentMain(ctx, *join, *name, *dir, *restarts, *progress); err != nil {
			fatal(err)
		}
	case *addr != "":
		if *shards < 1 {
			fatal(fmt.Errorf("-shards %d: a dispatcher needs at least 1 shard to lease out", *shards))
		}
		if o.storeDir == "" {
			fatal(errors.New("-addr needs -store: the folded corpus has to land somewhere"))
		}
		if err := dispatcherMain(ctx, o, *addr, *shards, *leaseTTL, *maxLease, *tracePath, *serve, *progress, *quiet); err != nil {
			fatal(err)
		}
	default:
		fatal(errors.New("pick a role: -addr :9300 -shards n -store dir (dispatcher) or -join http://host:9300 (agent)"))
	}
}

// strayAgentFlags returns the explicitly-set flags that have no
// meaning in agent mode.
func strayAgentFlags(fs *flag.FlagSet) []string {
	agentOK := map[string]bool{
		"join": true, "name": true, "dir": true, "restarts": true,
		"progress": true, "pprof": true, "log": true, "log-level": true, "quiet": true,
	}
	var stray []string
	fs.Visit(func(f *flag.Flag) {
		if !agentOK[f.Name] {
			stray = append(stray, "-"+f.Name)
		}
	})
	return stray
}

// agentMain runs the agent role: join the dispatcher and work leases
// until the campaign completes or ctx is cancelled.
func agentMain(ctx context.Context, join, name, dir string, restarts int, verbose bool) error {
	if dir == "" {
		tmp, err := os.MkdirTemp("", "veritasd-agent-")
		if err != nil {
			return err
		}
		dir = tmp
		logger.Info("using a fresh store directory (pass -dir to make partial shards resumable across agent restarts)", "dir", dir)
	}
	cfg := veritas.FleetAgentConfig{
		Dispatcher: join,
		Name:       name,
		Dir:        dir,
		Restarts:   restarts,
		Logf: func(format string, args ...any) {
			logger.Info("agent: " + fmt.Sprintf(format, args...))
		},
	}
	if verbose {
		cfg.Events = func(e veritas.DispatchEvent) {
			if e.Type == veritas.DispatchProgress {
				logger.Info("shard progress", "shard", e.Shard, "done", e.Done, "total", e.Total)
			}
		}
	}
	res, err := veritas.RunFleetAgent(ctx, cfg)
	if res != nil {
		logger.Info("agent done", "agent", res.Agent, "leases", res.Leases,
			"completed", res.Completed, "lost", res.Lost, "released", res.Released, "restarts", res.Restarts)
	}
	if errors.Is(err, veritas.ErrFleetDispatcherGone) && res != nil && res.Completed > 0 {
		// The dispatcher folding and exiting out from under a finished
		// agent is the normal end of a campaign, not an agent failure.
		logger.Info("dispatcher gone; campaign presumably complete")
		return nil
	}
	return err
}

// fleetdPrinter renders the dispatcher's merged fleet event stream for
// the terminal: lease movements always print, per-shard progress folds
// into a rate-limited one-line summary unless -progress. ServeFleet
// serializes event callbacks, so no locking.
type fleetdPrinter struct {
	shards  int
	verbose bool
	done    []int
	total   []int
	steals  int
	lastSum time.Time
}

func newFleetdPrinter(shards int, verbose bool) *fleetdPrinter {
	return &fleetdPrinter{shards: shards, verbose: verbose, done: make([]int, shards), total: make([]int, shards)}
}

func (p *fleetdPrinter) handle(e veritas.DispatchEvent) {
	switch e.Type {
	case veritas.DispatchLease:
		logger.Info("shard leased", "shard", e.Shard, "agent", e.Agent, "epoch", e.Epoch)
	case veritas.DispatchSteal:
		p.steals++
		logger.Warn("lease stolen", "shard", e.Shard, "agent", e.Agent, "epoch", e.Epoch, "reason", e.Line)
	case veritas.DispatchUpload:
		logger.Info("shard store accepted", "shard", e.Shard, "agent", e.Agent, "sessions", e.Done)
	case veritas.DispatchProgress:
		if e.Shard >= 0 && e.Shard < p.shards {
			p.done[e.Shard], p.total[e.Shard] = e.Done, e.Total
		}
		if p.verbose {
			logger.Info("shard progress", "shard", e.Shard, "agent", e.Agent, "done", e.Done, "total", e.Total)
		} else {
			p.summary(false)
		}
	case veritas.DispatchExit:
		if e.Err != nil {
			logger.Error("agent reported worker failure", "shard", e.Shard, "agent", e.Agent, "error", e.Err)
		}
	case veritas.DispatchFold:
		p.summary(true)
		logger.Info("folded shard stores", "sessions", e.Done, "shards", p.shards, "steals", p.steals)
	}
}

func (p *fleetdPrinter) summary(force bool) {
	if !force && time.Since(p.lastSum) < 2*time.Second {
		return
	}
	p.lastSum = time.Now()
	done, total := 0, 0
	parts := make([]string, p.shards)
	for i := range p.done {
		done += p.done[i]
		total += p.total[i]
		parts[i] = fmt.Sprintf("%d:%d/%d", i, p.done[i], p.total[i])
	}
	logger.Info("fleet progress", "done", done, "total", total,
		"shards", strings.Join(parts, " "), "steals", p.steals)
}

// dispatcherMain runs the dispatcher role: serve the fleet, fold,
// report, and optionally keep serving the folded corpus.
func dispatcherMain(ctx context.Context, o campaignFlags, addr string, shards int, ttl, maxLease time.Duration, tracePath string, serve, progress, quiet bool) error {
	opts := append(o.campaignOptions(),
		veritas.WithFleet(addr),
		veritas.WithFleetReady(func(bound string) {
			logger.Info("fleet dispatcher up", "addr", bound, "shards", shards,
				"endpoints", "POST /v1/agents /v1/lease /v1/heartbeat /v1/upload; GET /v1/status /metrics /v1/trace")
		}),
		veritas.WithDispatchEvents(newFleetdPrinter(shards, progress).handle),
	)
	if ttl > 0 {
		opts = append(opts, veritas.WithFleetLease(ttl))
	}
	if maxLease > 0 {
		opts = append(opts, veritas.WithFleetMaxLease(maxLease))
	}
	c, err := veritas.NewCampaign(opts...)
	if err != nil {
		return err
	}
	defer c.Close()
	corpus, err := c.Corpus()
	if err != nil {
		return err
	}
	arms, err := c.Arms()
	if err != nil {
		return err
	}
	logger.Info("serving fleet campaign", "sessions", len(corpus), "arms", len(arms), "shards", shards)

	res, err := c.ServeFleet(ctx, shards)
	// Export whatever traces the run streamed up even when it failed:
	// they are the post-mortem.
	if terr := writeTrace(c, tracePath); terr != nil && err == nil {
		err = terr
	}
	if err != nil {
		return err
	}
	logger.Info("fleet campaign complete", "folded", res.Folded, "store", o.storeDir,
		"steals", res.Steals, "agents", len(res.Agents),
		"elapsed", res.Elapsed.Round(time.Millisecond).String())
	if err := c.WriteReport(os.Stdout); err != nil {
		return err
	}
	if serve {
		// ServeFleet released -addr when the campaign finished; rebind
		// it for plain corpus serving (agents polling for more work get
		// 404s now, which RunFleetAgent treats as "dispatcher gone").
		logger.Info("serving folded corpus", "addr", addr)
		// The fleet listener's close can race this bind when the
		// campaign folds instantly (all shards already shipped), so
		// give the address a moment to free up.
		err := c.Serve(ctx, addr)
		for i := 0; i < 20 && err != nil && strings.Contains(err.Error(), "address already in use"); i++ {
			time.Sleep(50 * time.Millisecond)
			err = c.Serve(ctx, addr)
		}
		if err != nil && err != http.ErrServerClosed {
			return err
		}
	}
	if !quiet {
		if err := cli.WriteTelemetrySummary(os.Stderr, c.Telemetry().Summary()); err != nil {
			logger.Error("telemetry summary", "error", err)
		}
	}
	return nil
}

// writeTrace exports the fleet-wide tail-sampled traces as Chrome
// trace-event JSON at path (no-op without -trace). Thread names carry
// the @agent suffix, so a Perfetto load shows which machine ran what.
func writeTrace(c *veritas.Campaign, path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := c.WriteTrace(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	logger.Info("trace written", "path", path, "traces", len(c.Trace()))
	return nil
}

// startPprof serves the net/http/pprof handlers on addr; opt-in only.
func startPprof(addr string) {
	if addr == "" {
		return
	}
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil {
			logger.Error("pprof listener failed", "error", err)
		}
	}()
}

func fatal(err error) {
	logger.Error("fatal", "error", err)
	os.Exit(1)
}
