// Command benchjson converts `go test -bench` output into a
// machine-readable benchmark summary — the artifact CI tracks so the
// repository's performance trajectory accumulates run over run.
//
// It accepts either plain `go test -bench` text or the `-json`
// (test2json) event stream on stdin, extracts every benchmark result
// line, and writes a deterministic JSON document (benchmarks sorted by
// package and name) with ns/op, B/op, allocs/op and MB/s per
// benchmark:
//
//	go test -run xxx -bench=. -benchtime=3x -benchmem -json ./... \
//	    | benchjson -out BENCH_5.json
//
// benchjson fails (non-zero exit) only on parse problems — a result
// line it cannot decode, no benchmarks at all, or a package-level test
// failure in the stream — never on the numbers themselves: regression
// gating is the -compare mode's job; this stage only guarantees the
// trajectory data exists and is well-formed.
//
// With -compare, benchjson is the gate instead: it reads two summaries
// it previously wrote and exits non-zero when the new run regressed
// beyond tolerance (see compare.go):
//
//	benchjson -compare BENCH_5.json BENCH_6.json -tolerance 0.20
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one benchmark's measured result.
type Benchmark struct {
	Package     string  `json:"package,omitempty"`
	Name        string  `json:"name"`
	Procs       int     `json:"procs,omitempty"`
	Runs        int     `json:"runs"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	MBPerS      float64 `json:"mb_per_s,omitempty"`
}

// Summary is the document benchjson emits.
type Summary struct {
	GoVersion  string      `json:"go_version"`
	GoOS       string      `json:"goos"`
	GoArch     string      `json:"goarch"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// event is the subset of a test2json record benchjson reads.
type event struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Output  string `json:"Output"`
}

// benchLine matches a benchmark result line:
//
//	BenchmarkFleet/cache=on-8   3   123456 ns/op   42 B/op   7 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-(\d+))?\s+(\d+)\s+([\d.]+) ns/op(.*)$`)

// metric matches one trailing "<value> <unit>" pair after ns/op.
var metric = regexp.MustCompile(`([\d.]+) (B/op|allocs/op|MB/s)`)

func parseLine(pkg, line string) (Benchmark, bool, error) {
	m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
	if m == nil {
		if strings.HasPrefix(line, "Benchmark") && strings.Contains(line, "ns/op") {
			return Benchmark{}, false, fmt.Errorf("unparseable benchmark line: %q", line)
		}
		return Benchmark{}, false, nil
	}
	b := Benchmark{Package: pkg, Name: m[1]}
	var err error
	if m[2] != "" {
		if b.Procs, err = strconv.Atoi(m[2]); err != nil {
			return Benchmark{}, false, fmt.Errorf("%q: procs: %w", line, err)
		}
	}
	if b.Runs, err = strconv.Atoi(m[3]); err != nil {
		return Benchmark{}, false, fmt.Errorf("%q: runs: %w", line, err)
	}
	if b.NsPerOp, err = strconv.ParseFloat(m[4], 64); err != nil {
		return Benchmark{}, false, fmt.Errorf("%q: ns/op: %w", line, err)
	}
	for _, mm := range metric.FindAllStringSubmatch(m[5], -1) {
		v, err := strconv.ParseFloat(mm[1], 64)
		if err != nil {
			return Benchmark{}, false, fmt.Errorf("%q: %s: %w", line, mm[2], err)
		}
		switch mm[2] {
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		case "MB/s":
			b.MBPerS = v
		}
	}
	return b, true, nil
}

// parse consumes bench output (plain or test2json) and returns the
// summary. A test2json "fail" action is an error: a bench run that
// failed must not produce a quietly truncated trajectory point.
//
// test2json splits a benchmark's line across output events (the name
// flushes when the benchmark starts, the timings when it finishes), so
// events are reassembled into whole lines per package before parsing.
func parse(r io.Reader) (*Summary, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	sum := &Summary{GoVersion: runtime.Version(), GoOS: runtime.GOOS, GoArch: runtime.GOARCH}
	var failed []string
	partial := make(map[string]string) // package -> unterminated output
	handle := func(pkg, line string) error {
		b, ok, err := parseLine(pkg, line)
		if err != nil {
			return err
		}
		if ok {
			sum.Benchmarks = append(sum.Benchmarks, b)
		}
		return nil
	}
	for sc.Scan() {
		raw := sc.Text()
		if !strings.HasPrefix(raw, "{") {
			// Plain-text mode: a package summary line ("FAIL\t<pkg>...",
			// or a bare "FAIL") marks the run failed, same as a test2json
			// fail action — the summary must not quietly truncate.
			if raw == "FAIL" || strings.HasPrefix(raw, "FAIL\t") || strings.HasPrefix(raw, "FAIL ") {
				pkg := strings.TrimSpace(strings.TrimPrefix(raw, "FAIL"))
				if i := strings.IndexAny(pkg, " \t"); i >= 0 {
					pkg = pkg[:i]
				}
				if pkg == "" {
					pkg = "(unknown)"
				}
				failed = append(failed, pkg)
			}
			if err := handle("", raw); err != nil {
				return nil, err
			}
			continue
		}
		var ev event
		if err := json.Unmarshal([]byte(raw), &ev); err != nil {
			return nil, fmt.Errorf("malformed test2json line: %q: %w", raw, err)
		}
		if ev.Action == "fail" && ev.Output == "" {
			failed = append(failed, ev.Package)
		}
		if ev.Action != "output" {
			continue
		}
		buf := partial[ev.Package] + ev.Output
		for {
			line, rest, found := strings.Cut(buf, "\n")
			if !found {
				break
			}
			buf = rest
			if err := handle(ev.Package, line); err != nil {
				return nil, err
			}
		}
		partial[ev.Package] = buf
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for pkg, rest := range partial {
		if err := handle(pkg, rest); err != nil {
			return nil, err
		}
	}
	if len(failed) > 0 {
		return nil, fmt.Errorf("bench run failed in package(s): %s", strings.Join(failed, ", "))
	}
	if len(sum.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark results found in the input")
	}
	sort.Slice(sum.Benchmarks, func(i, j int) bool {
		a, b := sum.Benchmarks[i], sum.Benchmarks[j]
		if a.Package != b.Package {
			return a.Package < b.Package
		}
		return a.Name < b.Name
	})
	return sum, nil
}

func main() {
	out := flag.String("out", "", "write the summary here (default stdout)")
	compare := flag.String("compare", "", "baseline summary JSON; gate the new summary (positional arg) against it")
	tol := flag.Float64("tolerance", 0.20, "ns/op regression tolerance as a fraction of baseline (0.20 = +20%)")
	allocTol := flag.Float64("alloc-tolerance", 0.0, "allocs/op regression tolerance as a fraction of baseline (+1 alloc absolute grace)")
	flag.Parse()
	args := flag.Args()
	// flag stops at the first positional, so the documented shape
	// `-compare old.json new.json -tolerance 0.20` leaves trailing flags
	// in Args; re-parse everything after the one expected positional.
	if len(args) > 1 {
		rest := args[1:]
		args = args[:1]
		flag.CommandLine.Parse(rest)
	}

	if *compare != "" {
		if len(args) != 1 {
			fatal(fmt.Errorf("usage: benchjson -compare OLD.json NEW.json [-tolerance F] [-alloc-tolerance F]"))
		}
		runCompare(*compare, args[0], *tol, *allocTol)
		return
	}
	if len(args) != 0 {
		fatal(fmt.Errorf("unexpected arguments %v (summaries are read from stdin; did you mean -compare?)", args))
	}

	sum, err := parse(os.Stdin)
	if err != nil {
		fatal(err)
	}
	b, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		fatal(err)
	}
	b = append(b, '\n')
	if *out == "" {
		os.Stdout.Write(b)
		return
	}
	if err := os.WriteFile(*out, b, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) -> %s\n", len(sum.Benchmarks), *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
