package main

import (
	"bytes"
	"strings"
	"testing"
)

func sum(benches ...Benchmark) *Summary {
	return &Summary{Benchmarks: benches}
}

func TestCompareWithinTolerancePasses(t *testing.T) {
	old := sum(
		Benchmark{Package: "veritas", Name: "BenchmarkFleet", NsPerOp: 1000, AllocsPerOp: 10},
		Benchmark{Package: "veritas", Name: "BenchmarkStore", NsPerOp: 500},
	)
	cur := sum(
		Benchmark{Package: "veritas", Name: "BenchmarkFleet", NsPerOp: 1150, AllocsPerOp: 11},
		Benchmark{Package: "veritas", Name: "BenchmarkStore", NsPerOp: 400},
	)
	if regs := compareSummaries(old, cur, 0.20, 0.0); len(regs) != 0 {
		t.Fatalf("expected clean comparison, got %v", regs)
	}
}

func TestCompareNsRegressionFails(t *testing.T) {
	old := sum(Benchmark{Name: "BenchmarkFleet", NsPerOp: 1000})
	cur := sum(Benchmark{Name: "BenchmarkFleet", NsPerOp: 1201})
	regs := compareSummaries(old, cur, 0.20, 0.0)
	if len(regs) != 1 || regs[0].Metric != "ns/op" {
		t.Fatalf("expected one ns/op regression, got %v", regs)
	}
	if regs[0].Limit != 1200 {
		t.Errorf("limit = %v, want 1200", regs[0].Limit)
	}
}

func TestCompareAllocGrace(t *testing.T) {
	// 0 -> 1 alloc is inside the +1 absolute grace.
	old := sum(Benchmark{Name: "BenchmarkTiny", NsPerOp: 10, AllocsPerOp: 0})
	cur := sum(Benchmark{Name: "BenchmarkTiny", NsPerOp: 10, AllocsPerOp: 1})
	if regs := compareSummaries(old, cur, 0.20, 0.0); len(regs) != 0 {
		t.Fatalf("+1 alloc on a zero baseline should pass, got %v", regs)
	}
	// 10 -> 12 with zero fractional tolerance exceeds the limit of 11.
	old = sum(Benchmark{Name: "BenchmarkBig", NsPerOp: 10, AllocsPerOp: 10})
	cur = sum(Benchmark{Name: "BenchmarkBig", NsPerOp: 10, AllocsPerOp: 12})
	regs := compareSummaries(old, cur, 0.20, 0.0)
	if len(regs) != 1 || regs[0].Metric != "allocs/op" {
		t.Fatalf("expected one allocs/op regression, got %v", regs)
	}
}

func TestCompareMissingBenchmarkFails(t *testing.T) {
	old := sum(
		Benchmark{Package: "veritas", Name: "BenchmarkFleet", NsPerOp: 1000},
		Benchmark{Package: "veritas", Name: "BenchmarkGone", NsPerOp: 1000},
	)
	cur := sum(Benchmark{Package: "veritas", Name: "BenchmarkFleet", NsPerOp: 1000})
	regs := compareSummaries(old, cur, 0.20, 0.0)
	if len(regs) != 1 || regs[0].Metric != "missing" || regs[0].Benchmark != "veritas.BenchmarkGone" {
		t.Fatalf("expected one missing-benchmark failure, got %v", regs)
	}
}

func TestCompareNewBenchmarkIgnored(t *testing.T) {
	old := sum(Benchmark{Name: "BenchmarkFleet", NsPerOp: 1000})
	cur := sum(
		Benchmark{Name: "BenchmarkFleet", NsPerOp: 1000},
		Benchmark{Name: "BenchmarkBrandNew", NsPerOp: 1e9, AllocsPerOp: 1e6},
	)
	if regs := compareSummaries(old, cur, 0.20, 0.0); len(regs) != 0 {
		t.Fatalf("new benchmarks have no baseline and must pass, got %v", regs)
	}
}

func TestCompareDeterministicOrder(t *testing.T) {
	old := sum(
		Benchmark{Name: "BenchmarkB", NsPerOp: 100, AllocsPerOp: 10},
		Benchmark{Name: "BenchmarkA", NsPerOp: 100},
	)
	cur := sum(
		Benchmark{Name: "BenchmarkB", NsPerOp: 1000, AllocsPerOp: 100},
		Benchmark{Name: "BenchmarkA", NsPerOp: 1000},
	)
	regs := compareSummaries(old, cur, 0.20, 0.0)
	if len(regs) != 3 {
		t.Fatalf("expected 3 regressions, got %v", regs)
	}
	if regs[0].Benchmark != "BenchmarkA" || regs[1].Metric != "allocs/op" || regs[2].Metric != "ns/op" {
		t.Errorf("regressions not sorted by benchmark then metric: %v", regs)
	}
}

func TestDeltaTablePrintsEveryBenchmark(t *testing.T) {
	old := sum(
		Benchmark{Package: "veritas", Name: "BenchmarkFleet", NsPerOp: 1000, AllocsPerOp: 10},
		Benchmark{Package: "veritas", Name: "BenchmarkGone", NsPerOp: 50, AllocsPerOp: 5},
	)
	cur := sum(
		Benchmark{Package: "veritas", Name: "BenchmarkFleet", NsPerOp: 1500, AllocsPerOp: 10},
		Benchmark{Package: "veritas", Name: "BenchmarkNew", NsPerOp: 20, AllocsPerOp: 2},
	)
	regs := compareSummaries(old, cur, 0.20, 0.0)
	var buf bytes.Buffer
	writeDeltaTable(&buf, old, cur, regs)
	out := buf.String()

	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header + 3 benchmarks
		t.Fatalf("delta table has %d lines, want 4:\n%s", len(lines), out)
	}
	for _, want := range []string{
		"old ns/op", "new ns/op", "old allocs/op", // header
		"veritas.BenchmarkFleet", "+50.0%", "REGRESSION",
		"veritas.BenchmarkGone", "missing",
		"veritas.BenchmarkNew", "new",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("delta table missing %q:\n%s", want, out)
		}
	}
	// Rows sort by name: Fleet, Gone, New after the header.
	if !(strings.Index(out, "BenchmarkFleet") < strings.Index(out, "BenchmarkGone") &&
		strings.Index(out, "BenchmarkGone") < strings.Index(out, "BenchmarkNew")) {
		t.Errorf("delta table rows not sorted:\n%s", out)
	}
}

func TestDeltaTableWithinTolerance(t *testing.T) {
	// The table prints even when nothing regressed, with every row "ok"
	// and real percentages.
	old := sum(Benchmark{Name: "BenchmarkSteady", NsPerOp: 1000, AllocsPerOp: 8})
	cur := sum(Benchmark{Name: "BenchmarkSteady", NsPerOp: 950, AllocsPerOp: 8})
	var buf bytes.Buffer
	writeDeltaTable(&buf, old, cur, nil)
	out := buf.String()
	for _, want := range []string{"BenchmarkSteady", "-5.0%", "+0.0%", "ok"} {
		if !strings.Contains(out, want) {
			t.Errorf("delta table missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "REGRESSION") {
		t.Errorf("clean comparison shows a REGRESSION row:\n%s", out)
	}
}
