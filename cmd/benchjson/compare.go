package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"text/tabwriter"
)

// Compare mode turns benchjson from a recorder into a gate: given the
// previous run's summary and the current one, it fails (exit 1) when a
// benchmark regressed beyond tolerance or disappeared entirely.
//
//	benchjson -compare BENCH_5.json -tolerance 0.20 BENCH_6.json
//
// Two metrics are gated. ns/op is wall-clock and noisy across
// machines, so its tolerance is a fraction of the baseline (default
// +20%). allocs/op is deterministic for a given toolchain, so its
// tolerance (-alloc-tolerance, default 0) is tighter, with a +1
// absolute grace so a 0→1 alloc change on a tiny benchmark does not
// read as an infinite ratio. Benchmarks new in the current run pass
// (there is nothing to compare against); benchmarks missing from the
// current run fail — a silently dropped benchmark is how a gate rots.

// regression is one gate violation.
type regression struct {
	Benchmark string  // package-qualified name
	Metric    string  // "ns/op", "allocs/op", or "missing"
	Old, New  float64 // measured values (0 for "missing")
	Limit     float64 // the threshold New had to stay under
}

func (r regression) String() string {
	if r.Metric == "missing" {
		return fmt.Sprintf("%s: present in baseline, missing from new run", r.Benchmark)
	}
	return fmt.Sprintf("%s: %s %.6g -> %.6g (limit %.6g, +%.1f%%)",
		r.Benchmark, r.Metric, r.Old, r.New, r.Limit, (r.New/r.Old-1)*100)
}

func benchKey(b Benchmark) string {
	if b.Package == "" {
		return b.Name
	}
	return b.Package + "." + b.Name
}

// compareSummaries gates newSum against oldSum and returns every
// violation, sorted by benchmark then metric for deterministic output.
func compareSummaries(oldSum, newSum *Summary, nsTol, allocTol float64) []regression {
	byKey := make(map[string]Benchmark, len(newSum.Benchmarks))
	for _, b := range newSum.Benchmarks {
		byKey[benchKey(b)] = b
	}
	var regs []regression
	for _, old := range oldSum.Benchmarks {
		key := benchKey(old)
		cur, ok := byKey[key]
		if !ok {
			regs = append(regs, regression{Benchmark: key, Metric: "missing"})
			continue
		}
		if old.NsPerOp > 0 {
			limit := old.NsPerOp * (1 + nsTol)
			if cur.NsPerOp > limit {
				regs = append(regs, regression{key, "ns/op", old.NsPerOp, cur.NsPerOp, limit})
			}
		}
		// allocs/op: fractional tolerance plus one whole allocation of
		// absolute grace (so tiny baselines aren't gated on ±1).
		allocLimit := old.AllocsPerOp*(1+allocTol) + 1
		if cur.AllocsPerOp > allocLimit {
			regs = append(regs, regression{key, "allocs/op", old.AllocsPerOp, cur.AllocsPerOp, allocLimit})
		}
	}
	sort.Slice(regs, func(i, j int) bool {
		if regs[i].Benchmark != regs[j].Benchmark {
			return regs[i].Benchmark < regs[j].Benchmark
		}
		return regs[i].Metric < regs[j].Metric
	})
	return regs
}

// writeDeltaTable renders the full per-benchmark comparison — every
// benchmark in either summary, not just the violations — so a CI log
// answers "how much did things move?" even when the gate passes.
// Columns: old/new ns/op with percent change, old/new allocs/op with
// percent change, and a status ("ok", "REGRESSION", "missing" for
// baseline benchmarks gone from the new run, "new" for benchmarks
// without a baseline). Rows sort by package-qualified name.
func writeDeltaTable(w io.Writer, oldSum, newSum *Summary, regs []regression) {
	oldBy := make(map[string]Benchmark, len(oldSum.Benchmarks))
	for _, b := range oldSum.Benchmarks {
		oldBy[benchKey(b)] = b
	}
	newBy := make(map[string]Benchmark, len(newSum.Benchmarks))
	for _, b := range newSum.Benchmarks {
		newBy[benchKey(b)] = b
	}
	keys := make([]string, 0, len(oldBy)+len(newBy))
	for k := range oldBy {
		keys = append(keys, k)
	}
	for k := range newBy {
		if _, dup := oldBy[k]; !dup {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)

	regressed := make(map[string]bool, len(regs))
	missing := make(map[string]bool)
	for _, r := range regs {
		if r.Metric == "missing" {
			missing[r.Benchmark] = true
		} else {
			regressed[r.Benchmark] = true
		}
	}
	pct := func(old, cur float64) string {
		if old == 0 {
			return "-"
		}
		return fmt.Sprintf("%+.1f%%", (cur/old-1)*100)
	}

	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "benchmark\told ns/op\tnew ns/op\tdelta\told allocs/op\tnew allocs/op\tdelta\tstatus")
	for _, k := range keys {
		old, haveOld := oldBy[k]
		cur, haveNew := newBy[k]
		switch {
		case !haveNew:
			fmt.Fprintf(tw, "%s\t%.6g\t-\t-\t%.6g\t-\t-\tmissing\n", k, old.NsPerOp, old.AllocsPerOp)
		case !haveOld:
			fmt.Fprintf(tw, "%s\t-\t%.6g\t-\t-\t%.6g\t-\tnew\n", k, cur.NsPerOp, cur.AllocsPerOp)
		default:
			status := "ok"
			if regressed[k] {
				status = "REGRESSION"
			}
			fmt.Fprintf(tw, "%s\t%.6g\t%.6g\t%s\t%.6g\t%.6g\t%s\t%s\n",
				k, old.NsPerOp, cur.NsPerOp, pct(old.NsPerOp, cur.NsPerOp),
				old.AllocsPerOp, cur.AllocsPerOp, pct(old.AllocsPerOp, cur.AllocsPerOp), status)
		}
	}
	tw.Flush()
}

func readSummary(path string) (*Summary, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var sum Summary
	if err := json.Unmarshal(b, &sum); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(sum.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks in summary", path)
	}
	return &sum, nil
}

// runCompare loads both summaries, prints every violation to stderr,
// and exits 1 if there are any.
func runCompare(oldPath, newPath string, nsTol, allocTol float64) {
	oldSum, err := readSummary(oldPath)
	if err != nil {
		fatal(err)
	}
	newSum, err := readSummary(newPath)
	if err != nil {
		fatal(err)
	}
	regs := compareSummaries(oldSum, newSum, nsTol, allocTol)
	// The full delta table prints either way: a passing gate should
	// still show how much every benchmark moved.
	writeDeltaTable(os.Stderr, oldSum, newSum, regs)
	if len(regs) > 0 {
		for _, r := range regs {
			fmt.Fprintln(os.Stderr, "benchjson: REGRESSION:", r)
		}
		fmt.Fprintf(os.Stderr, "benchjson: %d regression(s) against %s (tolerance ns/op +%.0f%%, allocs/op +%.0f%% +1)\n",
			len(regs), oldPath, nsTol*100, allocTol*100)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) within tolerance of %s\n",
		len(oldSum.Benchmarks), oldPath)
}
