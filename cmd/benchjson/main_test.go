package main

import (
	"strings"
	"testing"
)

func TestParsePlainBenchOutput(t *testing.T) {
	in := `goos: linux
goarch: amd64
pkg: veritas
BenchmarkFleet/cache=on-8         	       3	  41234567 ns/op	 1234567 B/op	    4567 allocs/op
BenchmarkFleet/cache=off-8        	       3	  81234567 ns/op
BenchmarkStoreWrite               	     100	     12345 ns/op	      12 MB/s	     456 B/op	       7 allocs/op
PASS
ok  	veritas	1.234s
`
	sum, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(sum.Benchmarks))
	}
	// Sorted by name: cache=off, cache=on, StoreWrite.
	b := sum.Benchmarks[1]
	if b.Name != "BenchmarkFleet/cache=on" || b.Procs != 8 || b.Runs != 3 ||
		b.NsPerOp != 41234567 || b.BytesPerOp != 1234567 || b.AllocsPerOp != 4567 {
		t.Errorf("cache=on parsed as %+v", b)
	}
	if sw := sum.Benchmarks[2]; sw.Name != "BenchmarkStoreWrite" || sw.Procs != 0 ||
		sw.MBPerS != 12 || sw.AllocsPerOp != 7 {
		t.Errorf("StoreWrite parsed as %+v", sw)
	}
	if sum.GoVersion == "" {
		t.Error("summary carries no Go version")
	}
}

func TestParseTest2JSONStream(t *testing.T) {
	in := `{"Action":"start","Package":"veritas"}
{"Action":"output","Package":"veritas","Output":"BenchmarkFleet-4   \t       2\t  5000 ns/op\t 100 B/op\t 2 allocs/op\n"}
{"Action":"output","Package":"veritas","Output":"PASS\n"}
{"Action":"pass","Package":"veritas"}
{"Action":"start","Package":"veritas/internal/store"}
{"Action":"output","Package":"veritas/internal/store","Output":"BenchmarkStoreQuery-4   \t      10\t  900.5 ns/op\n"}
{"Action":"pass","Package":"veritas/internal/store"}
`
	sum, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(sum.Benchmarks))
	}
	if b := sum.Benchmarks[0]; b.Package != "veritas" || b.Name != "BenchmarkFleet" || b.NsPerOp != 5000 {
		t.Errorf("benchmark 0 = %+v", b)
	}
	if b := sum.Benchmarks[1]; b.Package != "veritas/internal/store" || b.NsPerOp != 900.5 {
		t.Errorf("benchmark 1 = %+v", b)
	}
}

func TestParseFailures(t *testing.T) {
	for name, in := range map[string]string{
		"no benchmarks":           "PASS\nok veritas 0.1s\n",
		"mangled line":            "BenchmarkFleet-8 three 100 ns/op\n",
		"package fail":            `{"Action":"fail","Package":"veritas"}` + "\n" + `{"Action":"output","Package":"veritas","Output":"BenchmarkX 1 5 ns/op\n"}` + "\n",
		"malformed mid-run":       "BenchmarkOK 1 5 ns/op\nBenchmarkBroken-8 1 notanumber ns/op\n",
		"plain-text package fail": "BenchmarkOK-8 3 100 ns/op\n--- FAIL: TestX (0.00s)\nFAIL\nFAIL\tveritas/internal/engine\t0.5s\n",
	} {
		if _, err := parse(strings.NewReader(in)); err == nil {
			t.Errorf("%s: parse accepted", name)
		}
	}
}

// TestParseSplitBenchmarkLines: test2json flushes a benchmark's name
// when it starts and its timings when it ends — two output events, one
// logical line — and interleaves packages; the parser must reassemble
// per package.
func TestParseSplitBenchmarkLines(t *testing.T) {
	in := `{"Action":"output","Package":"a","Output":"BenchmarkSplit-8   "}
{"Action":"output","Package":"b","Output":"BenchmarkOther-8   "}
{"Action":"output","Package":"a","Output":"\t       3\t  1500 ns/op\t 10 B/op\t 1 allocs/op\n"}
{"Action":"output","Package":"b","Output":"\t       6\t  2500 ns/op\n"}
{"Action":"pass","Package":"a"}
{"Action":"pass","Package":"b"}
`
	sum, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %+v", len(sum.Benchmarks), sum.Benchmarks)
	}
	if b := sum.Benchmarks[0]; b.Package != "a" || b.Name != "BenchmarkSplit" || b.NsPerOp != 1500 || b.AllocsPerOp != 1 {
		t.Errorf("reassembled benchmark = %+v", b)
	}
	if b := sum.Benchmarks[1]; b.Package != "b" || b.NsPerOp != 2500 {
		t.Errorf("interleaved benchmark = %+v", b)
	}
}
