// Command serve exposes a fleet result store over HTTP: the first
// serving-layer brick. It attaches a read-only campaign to the store
// (a campaign may still be appending to it) and answers causal-query
// reads — no inference runs at request time, everything is served from
// the persisted corpus through an in-process read cache.
//
// Endpoints:
//
//	GET /healthz                  liveness, store size, cache counters
//	GET /v1/sessions[?scenario=]  list stored sessions
//	GET /v1/sessions/{id}         one session's what-if results
//	GET /v1/scenarios             scenario labels with session counts
//	GET /v1/report[?scenario=]    aggregate report JSON (identical to the
//	                              in-RAM aggregator's report for the corpus),
//	                              with a store-generation ETag; conditional
//	                              requests answer 304 Not Modified
//	GET /v1/status                store + telemetry snapshot as JSON
//	GET /metrics                  telemetry in Prometheus text format
//
// The store may be a live campaign's, a single shard's (fleet -shard),
// or a folded corpus (fleet -fold): a folded store serves the exact
// report a single-process campaign would have produced — /v1/report
// bodies are byte-identical — so the shard → fold → serve pipeline is
// transparent to clients.
//
// Usage:
//
//	serve -store campaign.store                 # serve on :8077
//	serve -store campaign.store -addr :9000 -cache 1024
//	serve -store folded.store                   # serve a fleet -fold corpus
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"

	"veritas"
)

func main() {
	var (
		dir   = flag.String("store", "", "store directory to serve (required)")
		addr  = flag.String("addr", ":8077", "listen address")
		cache = flag.Int("cache", 0, "read-cache entries (0 = default 256, negative disables)")
		pprof = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	)
	flag.Parse()
	startPprof(*pprof)
	if *dir == "" {
		fatal(fmt.Errorf("-store is required"))
	}

	c, err := veritas.NewCampaign(
		veritas.WithStore(*dir),
		veritas.WithReadOnlyStore(),
		veritas.WithReadCache(*cache),
	)
	if err != nil {
		fatal(err)
	}
	defer c.Close()
	st, err := c.Store()
	if err != nil {
		fatal(err)
	}
	if rec := st.Recovered(); rec > 0 {
		fmt.Fprintf(os.Stderr, "serve: skipped %d torn tail bytes (campaign crashed mid-append?)\n", rec)
	}
	fmt.Fprintf(os.Stderr, "serve: %d sessions from %s on %s\n", st.Len(), *dir, *addr)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := c.Serve(ctx, *addr); err != nil && err != http.ErrServerClosed {
		fatal(err)
	}
}

// startPprof serves the net/http/pprof handlers (registered on the
// default mux by the blank import) on addr. Opt-in: profiling
// endpoints must never listen unless asked for.
func startPprof(addr string) {
	if addr == "" {
		return
	}
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil {
			fmt.Fprintln(os.Stderr, "serve: pprof:", err)
		}
	}()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "serve:", err)
	os.Exit(1)
}
