// Command serve exposes a fleet result store over HTTP: the first
// serving-layer brick. It attaches a read-only campaign to the store
// (a campaign may still be appending to it) and answers causal-query
// reads — no inference runs at request time, everything is served from
// the persisted corpus through an in-process read cache.
//
// Endpoints:
//
//	GET /healthz                  liveness, store size, cache counters
//	GET /v1/sessions[?scenario=]  list stored sessions
//	GET /v1/sessions/{id}         one session's what-if results
//	GET /v1/scenarios             scenario labels with session counts
//	GET /v1/report[?scenario=]    aggregate report JSON (identical to the
//	                              in-RAM aggregator's report for the corpus),
//	                              with a store-generation ETag; conditional
//	                              requests answer 304 Not Modified
//	GET /v1/report/cdf            one arm/metric/estimator empirical CDF
//	GET /v1/report/series         the raw per-session value series
//	GET /v1/report/percentiles    percentile table (?p=50,95,99)
//	GET /v1/status                store + telemetry snapshot as JSON
//	GET /metrics                  telemetry in Prometheus text format
//	GET /v1/trace                 tail-sampled traces as Chrome trace-event
//	                              JSON (load in Perfetto or chrome://tracing)
//
// The store may be a live campaign's, a single shard's (fleet -shard),
// or a folded corpus (fleet -fold): a folded store serves the exact
// report a single-process campaign would have produced — /v1/report
// bodies are byte-identical — so the shard → fold → serve pipeline is
// transparent to clients.
//
// With -watch the server tails a store another process is still
// writing: each request (rate-limited by -watch-interval) picks up
// newly appended sessions, so /v1/report tracks a running campaign
// instead of the snapshot taken at open. The store directory may not
// even exist yet — watch mode serves an empty corpus until it appears.
//
// Usage:
//
//	serve -store campaign.store                 # serve on :8077
//	serve -store campaign.store -addr :9000 -cache 1024
//	serve -store folded.store                   # serve a fleet -fold corpus
//	serve -store campaign.store -watch          # tail a running campaign
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"veritas"
	"veritas/internal/cli"
)

// logger is the process-wide structured logger, built from -log and
// -log-level right after flag parsing.
var logger = slog.New(slog.NewTextHandler(os.Stderr, nil))

func main() {
	var (
		dir       = flag.String("store", "", "store directory to serve (required)")
		addr      = flag.String("addr", ":8077", "listen address")
		cache     = flag.Int("cache", 0, "read-cache entries (0 = default 256, negative disables)")
		pprof     = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
		logFormat = flag.String("log", "text", "structured log format on stderr: text or json")
		logLevel  = flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
		quiet     = flag.Bool("quiet", false, "skip the one-line JSON telemetry summary on clean shutdown")
		watch     = flag.Bool("watch", false, "tail a store another process is still writing")
		watchIvl  = flag.Duration("watch-interval", 250*time.Millisecond, "with -watch: at most one tail refresh per interval (0 = every request)")
	)
	flag.Parse()
	log, err := cli.NewLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		fatal(err)
	}
	logger = log
	startPprof(*pprof)
	if *dir == "" {
		fatal(fmt.Errorf("-store is required"))
	}

	opts := []veritas.CampaignOption{
		veritas.WithStore(*dir),
		veritas.WithReadCache(*cache),
	}
	if *watch {
		opts = append(opts, veritas.WithWatch(), veritas.WithWatchInterval(*watchIvl))
	} else {
		opts = append(opts, veritas.WithReadOnlyStore())
	}
	c, err := veritas.NewCampaign(opts...)
	if err != nil {
		fatal(err)
	}
	defer c.Close()
	st, err := c.Store()
	if err != nil {
		fatal(err)
	}
	if rec := st.Recovered(); rec > 0 {
		logger.Warn("skipped torn tail bytes (campaign crashed mid-append?)", "bytes", rec)
	}
	logger.Info("serving store", "sessions", st.Len(), "store", *dir, "addr", *addr, "watch", *watch)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveFn := c.Serve
	if *watch {
		serveFn = c.WatchServe
	}
	if err := serveFn(ctx, *addr); err != nil && err != http.ErrServerClosed {
		fatal(err)
	}
	// Clean shutdown: flush the one-line JSON telemetry digest (request
	// counters, cache traffic) so a scraped-nothing deployment still
	// leaves a machine-readable record. -quiet opts out.
	if !*quiet {
		if err := cli.WriteTelemetrySummary(os.Stderr, c.Telemetry().Summary()); err != nil {
			logger.Error("telemetry summary", "error", err)
		}
	}
}

// startPprof serves the net/http/pprof handlers (registered on the
// default mux by the blank import) on addr. Opt-in: profiling
// endpoints must never listen unless asked for.
func startPprof(addr string) {
	if addr == "" {
		return
	}
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil {
			logger.Error("pprof listener failed", "error", err)
		}
	}()
}

func fatal(err error) {
	logger.Error("fatal", "error", err)
	os.Exit(1)
}
