// Command whatif answers a counterfactual query end-to-end: given a
// session log from the deployed system, it abduces the latent bandwidth
// and reports the session quality the changed design would have
// achieved, alongside the Baseline estimate (and, when the true trace is
// supplied, the oracle).
//
// Usage:
//
//	whatif -log session.json -abr bba
//	whatif -log session.json -buffer 30 -truth trace.txt
//	whatif -log session.json -ladder higher
package main

import (
	"flag"
	"fmt"
	"os"

	"veritas/internal/abduction"
	"veritas/internal/abr"
	"veritas/internal/netem"
	"veritas/internal/player"
	"veritas/internal/trace"
	"veritas/internal/video"
)

func main() {
	var (
		logPath   = flag.String("log", "", "session log JSON (required)")
		abrName   = flag.String("abr", "mpc", "Setting B ABR: mpc, bba, bola, festive")
		buffer    = flag.Float64("buffer", 5, "Setting B buffer capacity (seconds)")
		ladder    = flag.String("ladder", "default", "Setting B ladder: default or higher")
		truthPath = flag.String("truth", "", "optional true GTBW trace for an oracle row")
		k         = flag.Int("k", 5, "number of posterior samples")
		seed      = flag.Int64("seed", 1, "sampling seed")
	)
	flag.Parse()

	if *logPath == "" {
		fmt.Fprintln(os.Stderr, "whatif: -log is required")
		os.Exit(2)
	}
	f, err := os.Open(*logPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "whatif:", err)
		os.Exit(1)
	}
	log, err := player.DecodeLog(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "whatif: decode log:", err)
		os.Exit(1)
	}

	vcfg := video.DefaultConfig(*seed)
	if *ladder == "higher" {
		vcfg.Ladder = video.HigherLadder()
	} else if *ladder != "default" {
		fmt.Fprintf(os.Stderr, "whatif: unknown ladder %q\n", *ladder)
		os.Exit(2)
	}
	vid, err := video.Synthesize(vcfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "whatif:", err)
		os.Exit(1)
	}

	newABR, err := abrFactory(*abrName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "whatif:", err)
		os.Exit(2)
	}
	setting := abduction.Setting{
		Video:     vid,
		NewABR:    newABR,
		BufferCap: *buffer,
		Net:       netem.DefaultConfig(),
	}

	abd, err := abduction.Abduct(log, abduction.Config{NumSamples: *k, Seed: *seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, "whatif: abduction:", err)
		os.Exit(1)
	}
	out, err := abd.Counterfactual(setting)
	if err != nil {
		fmt.Fprintln(os.Stderr, "whatif: replay:", err)
		os.Exit(1)
	}

	fmt.Printf("what-if: abr=%s buffer=%.0fs ladder=%s (K=%d samples)\n\n", *abrName, *buffer, *ladder, *k)
	fmt.Printf("%-16s %10s %10s %12s\n", "estimator", "SSIM", "rebuf %", "bitrate Mbps")
	row := func(name string, m player.Metrics) {
		fmt.Printf("%-16s %10.4f %10.2f %12.2f\n", name, m.AvgSSIM, m.RebufRatio*100, m.AvgBitrateMbps)
	}
	if *truthPath != "" {
		tf, err := os.Open(*truthPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "whatif:", err)
			os.Exit(1)
		}
		gt, err := trace.Decode(tf)
		tf.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "whatif: decode truth:", err)
			os.Exit(1)
		}
		truth, err := abduction.Replay(gt, setting)
		if err != nil {
			fmt.Fprintln(os.Stderr, "whatif: oracle replay:", err)
			os.Exit(1)
		}
		row("oracle (GTBW)", truth)
	}
	row("baseline", out.Baseline)
	ssimLo, ssimHi := abduction.VeritasRange(out.Samples, abduction.MetricSSIM)
	rebLo, rebHi := abduction.VeritasRange(out.Samples, abduction.MetricRebufRatio)
	brLo, brHi := abduction.VeritasRange(out.Samples, abduction.MetricAvgBitrate)
	fmt.Printf("%-16s %10.4f %10.2f %12.2f\n", "veritas (low)", ssimLo, rebLo*100, brLo)
	fmt.Printf("%-16s %10.4f %10.2f %12.2f\n", "veritas (high)", ssimHi, rebHi*100, brHi)
}

func abrFactory(name string) (func() abr.Algorithm, error) {
	switch name {
	case "mpc":
		return func() abr.Algorithm { return abr.NewMPC() }, nil
	case "bba":
		return func() abr.Algorithm { return abr.NewBBA() }, nil
	case "bola":
		return func() abr.Algorithm { return abr.NewBOLA() }, nil
	case "festive":
		return func() abr.Algorithm { return abr.NewFestive() }, nil
	}
	return nil, fmt.Errorf("unknown ABR %q (want mpc, bba, bola, festive)", name)
}
