// Command abduct runs Veritas's abduction on a session log: it infers
// the posterior over latent ground-truth bandwidth traces and writes the
// sampled traces (and optionally the Baseline estimate) as trace files.
//
// Usage:
//
//	abduct -log session.json -out inferred/ -k 5
//	abduct -log session.json -baseline > baseline.txt
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"veritas/internal/abduction"
	"veritas/internal/player"
	"veritas/internal/trace"
)

func main() {
	var (
		logPath  = flag.String("log", "", "session log JSON (required)")
		out      = flag.String("out", "", "output directory for sampled traces")
		k        = flag.Int("k", 5, "number of posterior samples")
		seed     = flag.Int64("seed", 1, "sampling seed")
		baseline = flag.Bool("baseline", false, "write the Baseline trace to stdout instead")
		viterbi  = flag.Bool("viterbi", false, "write the most-likely trace to stdout instead")
	)
	flag.Parse()

	if *logPath == "" {
		fmt.Fprintln(os.Stderr, "abduct: -log is required")
		os.Exit(2)
	}
	f, err := os.Open(*logPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "abduct:", err)
		os.Exit(1)
	}
	log, err := player.DecodeLog(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "abduct: decode log:", err)
		os.Exit(1)
	}

	if *baseline {
		tr, err := abduction.BaselineTrace(log, 1)
		if err != nil {
			fmt.Fprintln(os.Stderr, "abduct:", err)
			os.Exit(1)
		}
		if err := tr.Encode(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "abduct:", err)
			os.Exit(1)
		}
		return
	}

	abd, err := abduction.Abduct(log, abduction.Config{NumSamples: *k, Seed: *seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, "abduct:", err)
		os.Exit(1)
	}

	if *viterbi {
		if err := abd.MostLikelyTrace().Encode(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "abduct:", err)
			os.Exit(1)
		}
		return
	}

	if *out == "" {
		fmt.Fprintln(os.Stderr, "abduct: -out is required (or use -baseline/-viterbi)")
		os.Exit(2)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "abduct:", err)
		os.Exit(1)
	}
	for i, tr := range abd.SampleTraces() {
		if err := writeTrace(filepath.Join(*out, fmt.Sprintf("sample_%02d.txt", i)), tr); err != nil {
			fmt.Fprintln(os.Stderr, "abduct:", err)
			os.Exit(1)
		}
	}
	if err := writeTrace(filepath.Join(*out, "viterbi.txt"), abd.MostLikelyTrace()); err != nil {
		fmt.Fprintln(os.Stderr, "abduct:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d samples + viterbi to %s\n", *k, *out)
}

func writeTrace(path string, tr *trace.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
