// Command fleet runs a batch causal-query campaign: it generates a
// scenario-diverse corpus of streaming sessions (FCC-, LTE-, WiFi-like
// and square-wave bandwidth regimes), runs an ABR × buffer-size what-if
// matrix over every session on the concurrent fleet engine, and prints
// an aggregate report (per-arm metric summaries, truth coverage, cache
// and throughput statistics).
//
// Usage:
//
//	fleet                                   # default campaign: 4 scenarios x 8 sessions, bba/bola x 5s/30s
//	fleet -workers 8 -sessions 25           # 100 sessions on 8 workers
//	fleet -scenarios lte,wifi -abrs bba -buffers 5
//	fleet -chunks 300 -samples 5 -seed 7    # paper-scale sessions
//
// Interrupting with Ctrl-C cancels the fleet promptly.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"veritas"
)

func main() {
	var (
		workers   = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		sessions  = flag.Int("sessions", 8, "sessions per scenario")
		scenarios = flag.String("scenarios", "", "comma-separated scenarios (default: all of "+strings.Join(veritas.FleetScenarios(), ",")+")")
		chunks    = flag.Int("chunks", 120, "chunks per session (0 = full 10-min clip)")
		samples   = flag.Int("samples", 5, "Veritas posterior samples K")
		seed      = flag.Int64("seed", 1, "base seed for the whole campaign")
		buffer    = flag.Float64("buffer", 5, "deployed (Setting A) buffer size, seconds")
		abrs      = flag.String("abrs", "bba,bola", "comma-separated what-if ABRs ("+strings.Join(veritas.FleetABRs(), ",")+")")
		buffers   = flag.String("buffers", "5,30", "comma-separated what-if buffer sizes, seconds")
		nocache   = flag.Bool("nocache", false, "disable the emission memoization cache")
		progress  = flag.Bool("progress", false, "print per-session completions to stderr")
	)
	flag.Parse()

	ccfg := veritas.CorpusConfig{
		Scenarios:   splitCSV(*scenarios),
		SessionsPer: *sessions,
		NumChunks:   *chunks,
		BufferCap:   *buffer,
		Seed:        *seed,
	}
	corpus, err := veritas.BuildCorpus(ccfg)
	if err != nil {
		fatal(err)
	}
	bufVals, err := parseFloats(*buffers)
	if err != nil {
		fatal(fmt.Errorf("-buffers: %w", err))
	}
	arms, err := veritas.FleetMatrix(ccfg, splitCSV(*abrs), bufVals)
	if err != nil {
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fcfg := veritas.FleetConfig{
		Workers:      *workers,
		Samples:      *samples,
		Seed:         *seed,
		DisableCache: *nocache,
	}
	if *progress {
		total := len(corpus)
		fcfg.OnResult = func(r veritas.FleetSessionResult) {
			fmt.Fprintf(os.Stderr, "done %s (%d arms)   [corpus of %d]\n", r.ID, len(r.Arms), total)
		}
	}
	fmt.Fprintf(os.Stderr, "fleet: %d sessions x %d arms, %d posterior samples\n",
		len(corpus), len(arms), *samples)

	res, err := veritas.RunFleet(ctx, fcfg, corpus, arms)
	if err != nil {
		fatal(err)
	}
	if err := res.WriteReport(os.Stdout); err != nil {
		fatal(err)
	}
}

func splitCSV(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, p := range splitCSV(s) {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fleet:", err)
	os.Exit(1)
}
