// Command fleet runs a batch causal-query campaign: it generates a
// scenario-diverse corpus of streaming sessions (FCC-, LTE-, WiFi-like
// and square-wave bandwidth regimes), runs an ABR × buffer-size what-if
// matrix over every session on the concurrent fleet engine, and prints
// an aggregate report (per-arm metric summaries, truth coverage, cache
// and throughput statistics).
//
// With -store, per-session results stream to a persistent corpus store
// as workers finish them, and the report is rebuilt from the store —
// which makes campaigns resumable: a killed run restarted with -resume
// skips every session already on disk and computes only the remainder,
// producing the exact aggregate an uninterrupted run would have.
//
// The command is a thin flag veneer over veritas.NewCampaign: every
// flag maps onto one campaign option, and the campaign carries the
// corpus, matrix, store fingerprinting, resume and reporting.
//
// With -shard i/n, the process executes only its slice of the corpus
// (sessions whose corpus index is congruent to i mod n) into its own
// store — the multi-machine dispatch primitive. Because the partition
// is by corpus index, every session keeps the seed it has in the
// unsharded run, so folding the n shard stores with -fold yields a
// corpus whose aggregate report is byte-identical to a single-process
// run of the same campaign.
//
// Usage:
//
//	fleet                                   # default campaign: 4 scenarios x 8 sessions, bba/bola x 5s/30s
//	fleet -workers 8 -sessions 25           # 100 sessions on 8 workers
//	fleet -scenarios lte,wifi -abrs bba -buffers 5
//	fleet -chunks 300 -samples 5 -seed 7    # paper-scale sessions
//	fleet -store campaign.store             # persist results while running
//	fleet -store campaign.store -resume     # pick up where a killed run stopped
//
//	# one machine per shard, then fold:
//	fleet -shard 0/2 -store shard0.store    # machine A
//	fleet -shard 1/2 -store shard1.store    # machine B
//	fleet -fold shard0.store -fold shard1.store -store campaign.store
//
// With -dispatch n, the process becomes a supervisor instead: it
// spawns n shard worker processes (re-execs of this binary), streams
// their progress, restarts crashed shards with resume into their same
// store under a bounded backoff budget, folds the shard stores into
// -store, prints the folded report — byte-identical to a
// single-process run — and, with -serve, serves the folded corpus:
//
//	fleet -dispatch 4 -store campaign.store             # 4 supervised workers
//	fleet -dispatch 4 -store campaign.store -serve :8077
//	fleet -fold campaign.store.shards -store refold.store  # refold by hand later
//
// -fold may be repeated, and each value may be a shard store, a
// comma-joined list, or a parent directory holding shard stores (the
// layout -dispatch writes).
//
// Interrupting with Ctrl-C cancels the fleet promptly; with -store the
// finished sessions survive the interrupt, and under -dispatch the
// interrupt is forwarded to every worker, whose stores stay resumable.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"veritas"
)

// options collects the parsed flags so the flag→campaign mapping is
// testable apart from flag.Parse and os.Exit.
type options struct {
	workers    int
	sessions   int
	scenarios  []string
	chunks     int
	samples    int
	seed       int64
	buffer     float64
	abrs       []string
	buffers    []float64
	nocache    bool
	storeDir   string
	resume     bool
	shardIndex int
	shardCount int // 0 = unsharded (no -shard flag)
}

// campaignOptions maps the flags onto the Campaign API, one option per
// flag. Validation (unknown scenarios and ABRs, duplicates, sign
// errors, resume-without-store) lives in veritas.NewCampaign now, not
// here.
func (o options) campaignOptions() []veritas.CampaignOption {
	opts := []veritas.CampaignOption{
		veritas.WithWorkers(o.workers),
		veritas.WithSessions(o.sessions),
		veritas.WithChunks(o.chunks),
		veritas.WithSamples(o.samples),
		veritas.WithSeed(o.seed),
		veritas.WithDeployedBuffer(o.buffer),
		veritas.WithMatrix(o.abrs, o.buffers),
	}
	if len(o.scenarios) > 0 {
		opts = append(opts, veritas.WithScenarios(o.scenarios...))
	}
	if o.storeDir != "" {
		opts = append(opts, veritas.WithStore(o.storeDir))
	}
	if o.resume {
		opts = append(opts, veritas.WithResume())
	}
	if o.nocache {
		opts = append(opts, veritas.WithoutMemoization())
	}
	if o.shardCount > 0 {
		opts = append(opts, veritas.WithShard(o.shardIndex, o.shardCount))
	}
	return opts
}

// multiFlag collects a repeatable string flag; each occurrence may
// itself be a comma-joined list.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }

func (m *multiFlag) Set(v string) error {
	parts := splitCSV(v)
	if len(parts) == 0 {
		return fmt.Errorf("empty value")
	}
	*m = append(*m, parts...)
	return nil
}

// fleetPrinter renders supervisor events for the terminal. Lifecycle
// events always print. Per-session progress lines are verbose-only
// (-progress; a large campaign completes thousands of sessions) — but
// even without it, progress events fold into a one-line fleet summary
// (done/total per shard, restarts) reprinted at most every two
// seconds, so a long campaign is never silent between lifecycle
// events. The supervisor serializes event callbacks, so the printer
// needs no locking.
type fleetPrinter struct {
	shards     int
	verbose    bool
	done       []int
	total      []int
	restarts   int
	lastSum    time.Time
	summarized bool
}

func newFleetPrinter(shards int, verbose bool) *fleetPrinter {
	return &fleetPrinter{
		shards:  shards,
		verbose: verbose,
		done:    make([]int, shards),
		total:   make([]int, shards),
	}
}

func (p *fleetPrinter) handle(e veritas.DispatchEvent) {
	switch e.Type {
	case veritas.DispatchStart:
		fmt.Fprintf(os.Stderr, "fleet: shard %d/%d: worker started (pid %d, attempt %d)\n", e.Shard, p.shards, e.PID, e.Attempt+1)
	case veritas.DispatchProgress:
		if e.Shard >= 0 && e.Shard < p.shards {
			p.done[e.Shard], p.total[e.Shard] = e.Done, e.Total
		}
		if p.verbose {
			fmt.Fprintf(os.Stderr, "fleet: shard %d/%d: %d/%d sessions\n", e.Shard, p.shards, e.Done, e.Total)
		} else {
			p.summary(false)
		}
	case veritas.DispatchTelemetry:
		// Worker metrics snapshots feed the -status listener; nothing
		// to print.
	case veritas.DispatchLine:
		fmt.Fprintf(os.Stderr, "fleet: shard %d [%s] %s\n", e.Shard, e.Stream, e.Line)
	case veritas.DispatchExit:
		if e.Err != nil {
			fmt.Fprintf(os.Stderr, "fleet: shard %d/%d: worker failed: %v\n", e.Shard, p.shards, e.Err)
		}
	case veritas.DispatchRestart:
		p.restarts++
		fmt.Fprintf(os.Stderr, "fleet: shard %d/%d: restarting (attempt %d) in %v\n", e.Shard, p.shards, e.Attempt+1, e.Delay)
	case veritas.DispatchFold:
		if !p.verbose && p.summarized {
			p.summary(true) // close the progress story before the fold line
		}
		fmt.Fprintf(os.Stderr, "fleet: folded %d sessions from %d shard store(s)\n", e.Done, p.shards)
	}
}

// summary prints the one-line fleet overview, rate-limited unless
// forced.
func (p *fleetPrinter) summary(force bool) {
	if !force && time.Since(p.lastSum) < 2*time.Second {
		return
	}
	p.lastSum = time.Now()
	p.summarized = true
	done, total := 0, 0
	parts := make([]string, p.shards)
	for i := range p.done {
		done += p.done[i]
		total += p.total[i]
		parts[i] = fmt.Sprintf("%d:%d/%d", i, p.done[i], p.total[i])
	}
	fmt.Fprintf(os.Stderr, "fleet: %d/%d sessions [shard %s] restarts %d\n",
		done, total, strings.Join(parts, " "), p.restarts)
}

// dispatchRun runs the -dispatch path: supervise n workers, fold,
// report, and optionally serve the folded corpus.
func dispatchRun(ctx context.Context, o options, n, restarts int, serveAddr, statusAddr string, progress bool) error {
	opts := append(o.campaignOptions(),
		veritas.WithDispatchRestarts(restarts),
		veritas.WithDispatchEvents(newFleetPrinter(n, progress).handle))
	if statusAddr != "" {
		opts = append(opts, veritas.WithDispatchStatus(statusAddr))
	}
	c, err := veritas.NewCampaign(opts...)
	if err != nil {
		return err
	}
	defer c.Close()
	corpus, err := c.Corpus()
	if err != nil {
		return err
	}
	arms, err := c.Arms()
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "fleet: dispatching %d sessions x %d arms across %d shard workers\n",
		len(corpus), len(arms), n)
	if statusAddr != "" {
		fmt.Fprintf(os.Stderr, "fleet: status listener on %s (GET /v1/status, /metrics)\n", statusAddr)
	}
	res, err := c.Dispatch(ctx, n)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "fleet: dispatch complete: %d sessions folded into %s (%d restart(s), %v)\n",
		res.Folded, o.storeDir, res.Restarts, res.Elapsed.Round(time.Millisecond))
	if err := c.WriteReport(os.Stdout); err != nil {
		return err
	}
	if serveAddr != "" {
		fmt.Fprintf(os.Stderr, "fleet: serving the folded corpus on %s\n", serveAddr)
		if err := c.Serve(ctx, serveAddr); err != nil && err != http.ErrServerClosed {
			return err
		}
	}
	return nil
}

// parseShard parses a -shard value of the form "i/n" (e.g. "0/3").
// Range validation lives in veritas.WithShard, not here.
func parseShard(s string) (index, count int, err error) {
	lhs, rhs, ok := strings.Cut(s, "/")
	if !ok {
		return 0, 0, fmt.Errorf("shard %q is not of the form i/n (e.g. 0/3)", s)
	}
	if index, err = strconv.Atoi(strings.TrimSpace(lhs)); err != nil {
		return 0, 0, fmt.Errorf("shard index %q: %w", lhs, err)
	}
	if count, err = strconv.Atoi(strings.TrimSpace(rhs)); err != nil {
		return 0, 0, fmt.Errorf("shard count %q: %w", rhs, err)
	}
	return index, count, nil
}

// fold runs the -fold path: compact per-shard stores into one corpus at
// dst, then print the folded store's report.
func fold(dst string, srcs []string) error {
	n, err := veritas.FoldShards(dst, srcs...)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "fleet: folded %d sessions into %s\n", n, dst)
	c, err := veritas.NewCampaign(veritas.WithStore(dst), veritas.WithReadOnlyStore())
	if err != nil {
		return err
	}
	defer c.Close()
	return c.WriteReport(os.Stdout)
}

func main() {
	// When a dispatch supervisor re-exec'd this binary as a shard
	// worker, run the shard and exit; otherwise fall through to the
	// normal CLI.
	veritas.DispatchWorkerMain()

	var o options
	flag.IntVar(&o.workers, "workers", 0, "worker pool size (0 = GOMAXPROCS, split across workers under -dispatch)")
	flag.IntVar(&o.sessions, "sessions", 8, "sessions per scenario")
	scenarios := flag.String("scenarios", "", "comma-separated scenarios (default: all of "+strings.Join(veritas.Scenarios(), ",")+")")
	flag.IntVar(&o.chunks, "chunks", 120, "chunks per session (0 = full 10-min clip)")
	flag.IntVar(&o.samples, "samples", 5, "Veritas posterior samples K")
	flag.Int64Var(&o.seed, "seed", 1, "base seed for the whole campaign")
	flag.Float64Var(&o.buffer, "buffer", 5, "deployed (Setting A) buffer size, seconds")
	abrs := flag.String("abrs", "bba,bola", "comma-separated what-if ABRs ("+strings.Join(veritas.ABRs(), ",")+")")
	buffers := flag.String("buffers", "5,30", "comma-separated what-if buffer sizes, seconds")
	flag.BoolVar(&o.nocache, "nocache", false, "disable the emission memoization cache")
	progress := flag.Bool("progress", false, "print per-session completions to stderr")
	flag.StringVar(&o.storeDir, "store", "", "persist per-session results to this store directory")
	flag.BoolVar(&o.resume, "resume", false, "skip sessions already present in -store")
	shard := flag.String("shard", "", "execute only shard i/n of the corpus (e.g. 0/3); requires -store for later folding")
	var foldSrcs multiFlag
	flag.Var(&foldSrcs, "fold", "shard store(s) to fold into -store (repeatable; each value may be a store, a comma-joined list, or a parent directory of shard stores; no campaign runs)")
	dispatchN := flag.Int("dispatch", 0, "supervise n local shard worker processes, fold their stores into -store, and report")
	restarts := flag.Int("restarts", 2, "per-shard crash-restart budget under -dispatch")
	serveAddr := flag.String("serve", "", "with -dispatch: serve the folded corpus on this address after the campaign")
	statusAddr := flag.String("status", "", "with -dispatch: serve the live fleet status API (GET /v1/status, /metrics) on this address while the campaign runs")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	flag.Parse()
	startPprof(*pprofAddr)

	// The list-valued flags feed every run shape (normal, -shard,
	// -dispatch); parse them once. The -fold path rejects them by flag
	// presence before they are ever used.
	o.scenarios = splitCSV(*scenarios)
	o.abrs = splitCSV(*abrs)
	bufVals, err := parseFloats(*buffers)
	if err != nil {
		fatal(fmt.Errorf("-buffers: %w", err))
	}
	o.buffers = bufVals

	if *dispatchN < 1 {
		// An explicit but impossible shard count must not silently fall
		// through to a normal single-process run.
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "dispatch" {
				fatal(fmt.Errorf("-dispatch %d: shard count must be at least 1", *dispatchN))
			}
		})
	}
	if *dispatchN > 0 {
		// The supervisor owns sharding, resuming, and reporting; flags
		// that would contradict it must not be silently ignored.
		var stray []string
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "shard":
				stray = append(stray, "-shard (dispatch owns the partition)")
			case "fold":
				stray = append(stray, "-fold (dispatch folds for you)")
			case "resume":
				stray = append(stray, "-resume (dispatch workers always resume)")
			}
		})
		if len(stray) > 0 {
			fatal(fmt.Errorf("-dispatch conflicts with %s", strings.Join(stray, ", ")))
		}
		if o.storeDir == "" {
			fatal(fmt.Errorf("-dispatch needs -store: the folded corpus has to land somewhere"))
		}
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		if err := dispatchRun(ctx, o, *dispatchN, *restarts, *serveAddr, *statusAddr, *progress); err != nil {
			fatal(err)
		}
		return
	}
	if *serveAddr != "" {
		fatal(fmt.Errorf("-serve requires -dispatch (use cmd/serve for a standalone query server)"))
	}
	if *statusAddr != "" {
		fatal(fmt.Errorf("-status requires -dispatch (there is no supervisor to report on; cmd/serve exposes /v1/status for a store)"))
	}
	// -restarts configures the dispatch supervisor; without -dispatch it
	// would be silently ignored, which reads like it was honored.
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "restarts" {
			fatal(fmt.Errorf("-restarts requires -dispatch (there is no supervisor to restart workers)"))
		}
	})

	if len(foldSrcs) > 0 {
		if o.storeDir == "" {
			fatal(fmt.Errorf("-fold needs -store as the destination directory"))
		}
		// The fold is defined entirely by the shard stores (their
		// campaign.json IS the campaign); any other flag would be
		// silently ignored, which reads like it was honored. Refuse.
		var stray []string
		flag.Visit(func(f *flag.Flag) {
			// -pprof is pure observability; it cannot shape the fold.
			if f.Name != "fold" && f.Name != "store" && f.Name != "pprof" {
				stray = append(stray, "-"+f.Name)
			}
		})
		if len(stray) > 0 {
			fatal(fmt.Errorf("-fold takes only -store; the shard stores' campaign.json defines the campaign (drop %s)",
				strings.Join(stray, ", ")))
		}
		if err := fold(o.storeDir, foldSrcs); err != nil {
			fatal(err)
		}
		return
	}
	if *shard != "" {
		idx, cnt, err := parseShard(*shard)
		if err != nil {
			fatal(fmt.Errorf("-shard: %w", err))
		}
		if o.storeDir == "" {
			// A shard without a store would compute its slice, print a
			// partial report indistinguishable from a whole-campaign
			// one, and persist nothing to fold.
			fatal(fmt.Errorf("-shard needs -store: a shard's results exist to be folded"))
		}
		o.shardIndex, o.shardCount = idx, cnt
	}

	opts := o.campaignOptions()
	var total int
	if *progress {
		opts = append(opts, veritas.WithProgress(func(r veritas.FleetSessionResult) {
			fmt.Fprintf(os.Stderr, "done %s (%d arms)   [corpus of %d]\n", r.ID, len(r.Arms), total)
		}))
	}
	c, err := veritas.NewCampaign(opts...)
	if err != nil {
		fatal(err)
	}
	defer c.Close()

	if o.storeDir != "" {
		// Opening the store up front runs the campaign-fingerprint
		// check before any corpus is built or worker started.
		st, err := c.Store()
		if err != nil {
			fatal(err)
		}
		if rec := st.Recovered(); rec > 0 {
			fmt.Fprintf(os.Stderr, "fleet: store recovered: dropped %d torn tail bytes from the previous run\n", rec)
		}
		if o.resume {
			fmt.Fprintf(os.Stderr, "fleet: resume: %d sessions already stored\n", st.Len())
		} else if st.Len() > 0 {
			fmt.Fprintf(os.Stderr, "fleet: store already holds %d sessions (use -resume to skip them)\n", st.Len())
		}
	}

	corpus, err := c.Corpus()
	if err != nil {
		fatal(err)
	}
	total = len(corpus)
	arms, err := c.Arms()
	if err != nil {
		fatal(err)
	}
	if o.shardCount > 1 {
		mine := veritas.ShardSessions(len(corpus), o.shardIndex, o.shardCount)
		fmt.Fprintf(os.Stderr, "fleet: shard %d/%d: %d of %d sessions x %d arms, %d posterior samples\n",
			o.shardIndex, o.shardCount, mine, len(corpus), len(arms), o.samples)
	} else {
		fmt.Fprintf(os.Stderr, "fleet: %d sessions x %d arms, %d posterior samples\n",
			len(corpus), len(arms), o.samples)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if _, err := c.Run(ctx); err != nil {
		if o.storeDir != "" {
			// Keep finished sessions durable for -resume; a sync
			// failure here means they may NOT have survived, which the
			// user must hear about before trusting -resume.
			if st, serr := c.Store(); serr == nil {
				if serr := st.Sync(); serr != nil {
					fmt.Fprintf(os.Stderr, "fleet: WARNING: store sync failed (%v); stored sessions may be incomplete\n", serr)
				}
			}
		}
		fatal(err)
	}

	if err := c.WriteReport(os.Stdout); err != nil {
		fatal(err)
	}
}

func splitCSV(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, p := range splitCSV(s) {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// startPprof serves the net/http/pprof handlers (registered on the
// default mux by the blank import) on addr. Opt-in: profiling
// endpoints must never listen unless asked for.
func startPprof(addr string) {
	if addr == "" {
		return
	}
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil {
			fmt.Fprintln(os.Stderr, "fleet: pprof:", err)
		}
	}()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fleet:", err)
	os.Exit(1)
}
