// Command fleet runs a batch causal-query campaign: it generates a
// scenario-diverse corpus of streaming sessions (FCC-, LTE-, WiFi-like
// and square-wave bandwidth regimes), runs an ABR × buffer-size what-if
// matrix over every session on the concurrent fleet engine, and prints
// an aggregate report (per-arm metric summaries, truth coverage, cache
// and throughput statistics).
//
// With -store, per-session results stream to a persistent corpus store
// as workers finish them, and the report is rebuilt from the store —
// which makes campaigns resumable: a killed run restarted with -resume
// skips every session already on disk and computes only the remainder,
// producing the exact aggregate an uninterrupted run would have.
//
// The command is a thin flag veneer over veritas.NewCampaign: every
// flag maps onto one campaign option, and the campaign carries the
// corpus, matrix, store fingerprinting, resume and reporting.
//
// With -shard i/n, the process executes only its slice of the corpus
// (sessions whose corpus index is congruent to i mod n) into its own
// store — the multi-machine dispatch primitive. Because the partition
// is by corpus index, every session keeps the seed it has in the
// unsharded run, so folding the n shard stores with -fold yields a
// corpus whose aggregate report is byte-identical to a single-process
// run of the same campaign.
//
// Usage:
//
//	fleet                                   # default campaign: 4 scenarios x 8 sessions, bba/bola x 5s/30s
//	fleet -workers 8 -sessions 25           # 100 sessions on 8 workers
//	fleet -scenarios lte,wifi -abrs bba -buffers 5
//	fleet -chunks 300 -samples 5 -seed 7    # paper-scale sessions
//	fleet -store campaign.store             # persist results while running
//	fleet -store campaign.store -resume     # pick up where a killed run stopped
//
//	# one machine per shard, then fold:
//	fleet -shard 0/2 -store shard0.store    # machine A
//	fleet -shard 1/2 -store shard1.store    # machine B
//	fleet -fold shard0.store -fold shard1.store -store campaign.store
//
// With -dispatch n, the process becomes a supervisor instead: it
// spawns n shard worker processes (re-execs of this binary), streams
// their progress, restarts crashed shards with resume into their same
// store under a bounded backoff budget, folds the shard stores into
// -store, prints the folded report — byte-identical to a
// single-process run — and, with -serve, serves the folded corpus:
//
//	fleet -dispatch 4 -store campaign.store             # 4 supervised workers
//	fleet -dispatch 4 -store campaign.store -serve :8077
//	fleet -fold campaign.store.shards -store refold.store  # refold by hand later
//
// -fold may be repeated, and each value may be a shard store, a
// comma-joined list, or a parent directory holding shard stores (the
// layout -dispatch writes).
//
// Interrupting with Ctrl-C cancels the fleet promptly; with -store the
// finished sessions survive the interrupt, and under -dispatch the
// interrupt is forwarded to every worker, whose stores stay resumable.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"veritas"
	"veritas/internal/cli"
)

// logger is the process-wide structured logger, built from -log and
// -log-level right after flag parsing. Everything fleet says on stderr
// goes through it; stdout stays reserved for the report.
var logger = slog.New(slog.NewTextHandler(os.Stderr, nil))

// options collects the parsed flags so the flag→campaign mapping is
// testable apart from flag.Parse and os.Exit.
type options struct {
	workers    int
	sessions   int
	scenarios  []string
	chunks     int
	samples    int
	seed       int64
	buffer     float64
	abrs       []string
	buffers    []float64
	nocache    bool
	storeDir   string
	resume     bool
	shardIndex int
	shardCount int // 0 = unsharded (no -shard flag)
}

// campaignOptions maps the flags onto the Campaign API, one option per
// flag. Validation (unknown scenarios and ABRs, duplicates, sign
// errors, resume-without-store) lives in veritas.NewCampaign now, not
// here.
func (o options) campaignOptions() []veritas.CampaignOption {
	opts := []veritas.CampaignOption{
		veritas.WithWorkers(o.workers),
		veritas.WithSessions(o.sessions),
		veritas.WithChunks(o.chunks),
		veritas.WithSamples(o.samples),
		veritas.WithSeed(o.seed),
		veritas.WithDeployedBuffer(o.buffer),
		veritas.WithMatrix(o.abrs, o.buffers),
	}
	if len(o.scenarios) > 0 {
		opts = append(opts, veritas.WithScenarios(o.scenarios...))
	}
	if o.storeDir != "" {
		opts = append(opts, veritas.WithStore(o.storeDir))
	}
	if o.resume {
		opts = append(opts, veritas.WithResume())
	}
	if o.nocache {
		opts = append(opts, veritas.WithoutMemoization())
	}
	if o.shardCount > 0 {
		opts = append(opts, veritas.WithShard(o.shardIndex, o.shardCount))
	}
	return opts
}

// multiFlag collects a repeatable string flag; each occurrence may
// itself be a comma-joined list.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }

func (m *multiFlag) Set(v string) error {
	parts := splitCSV(v)
	if len(parts) == 0 {
		return fmt.Errorf("empty value")
	}
	*m = append(*m, parts...)
	return nil
}

// fleetPrinter renders supervisor events for the terminal. Lifecycle
// events always print. Per-session progress lines are verbose-only
// (-progress; a large campaign completes thousands of sessions) — but
// even without it, progress events fold into a one-line fleet summary
// (done/total per shard, restarts) reprinted at most every two
// seconds, so a long campaign is never silent between lifecycle
// events. The supervisor serializes event callbacks, so the printer
// needs no locking.
type fleetPrinter struct {
	shards     int
	verbose    bool
	done       []int
	total      []int
	restarts   int
	lastSum    time.Time
	summarized bool
}

func newFleetPrinter(shards int, verbose bool) *fleetPrinter {
	return &fleetPrinter{
		shards:  shards,
		verbose: verbose,
		done:    make([]int, shards),
		total:   make([]int, shards),
	}
}

func (p *fleetPrinter) handle(e veritas.DispatchEvent) {
	switch e.Type {
	case veritas.DispatchStart:
		logger.Info("worker started", "shard", e.Shard, "shards", p.shards, "pid", e.PID, "attempt", e.Attempt+1)
	case veritas.DispatchProgress:
		if e.Shard >= 0 && e.Shard < p.shards {
			p.done[e.Shard], p.total[e.Shard] = e.Done, e.Total
		}
		if p.verbose {
			logger.Info("shard progress", "shard", e.Shard, "done", e.Done, "total", e.Total)
		} else {
			p.summary(false)
		}
	case veritas.DispatchTelemetry, veritas.DispatchTraces:
		// Worker metrics snapshots and trace sets feed the -status
		// listener (and the final -trace export); nothing to print.
	case veritas.DispatchLine:
		logger.Info("worker output", "shard", e.Shard, "stream", e.Stream, "line", e.Line)
	case veritas.DispatchExit:
		if e.Err != nil {
			logger.Error("worker failed", "shard", e.Shard, "error", e.Err)
		}
	case veritas.DispatchRestart:
		p.restarts++
		logger.Warn("restarting shard", "shard", e.Shard, "attempt", e.Attempt+1, "backoff", e.Delay.String())
	case veritas.DispatchFold:
		if !p.verbose && p.summarized {
			p.summary(true) // close the progress story before the fold line
		}
		logger.Info("folded shard stores", "sessions", e.Done, "shards", p.shards)
	}
}

// summary logs the one-line fleet overview, rate-limited unless
// forced.
func (p *fleetPrinter) summary(force bool) {
	if !force && time.Since(p.lastSum) < 2*time.Second {
		return
	}
	p.lastSum = time.Now()
	p.summarized = true
	done, total := 0, 0
	parts := make([]string, p.shards)
	for i := range p.done {
		done += p.done[i]
		total += p.total[i]
		parts[i] = fmt.Sprintf("%d:%d/%d", i, p.done[i], p.total[i])
	}
	logger.Info("fleet progress", "done", done, "total", total,
		"shards", strings.Join(parts, " "), "restarts", p.restarts)
}

// dispatchRun runs the -dispatch path: supervise n workers, fold,
// report, and optionally serve the folded corpus.
func dispatchRun(ctx context.Context, o options, n, restarts int, serveAddr, statusAddr, tracePath string, progress, quiet bool) error {
	opts := append(o.campaignOptions(),
		veritas.WithDispatchRestarts(restarts),
		veritas.WithDispatchEvents(newFleetPrinter(n, progress).handle))
	if statusAddr != "" {
		opts = append(opts, veritas.WithDispatchStatus(statusAddr))
	}
	c, err := veritas.NewCampaign(opts...)
	if err != nil {
		return err
	}
	defer c.Close()
	corpus, err := c.Corpus()
	if err != nil {
		return err
	}
	arms, err := c.Arms()
	if err != nil {
		return err
	}
	logger.Info("dispatching campaign", "sessions", len(corpus), "arms", len(arms), "workers", n)
	if statusAddr != "" {
		logger.Info("status listener up", "addr", statusAddr, "endpoints", "/v1/status /metrics /v1/trace")
	}
	res, err := c.Dispatch(ctx, n)
	// The trace export covers failed dispatches too: the traces that
	// made it up the protocol are exactly what a post-mortem wants.
	if terr := writeTrace(c, tracePath); terr != nil && err == nil {
		err = terr
	}
	if err != nil {
		return err
	}
	logger.Info("dispatch complete", "folded", res.Folded, "store", o.storeDir,
		"restarts", res.Restarts, "elapsed", res.Elapsed.Round(time.Millisecond).String())
	if err := c.WriteReport(os.Stdout); err != nil {
		return err
	}
	if serveAddr != "" {
		logger.Info("serving folded corpus", "addr", serveAddr)
		if err := c.Serve(ctx, serveAddr); err != nil && err != http.ErrServerClosed {
			return err
		}
	}
	flushSummary(c, quiet)
	return nil
}

// writeTrace exports the campaign's tail-sampled traces as Chrome
// trace-event JSON at path (no-op when -trace was not given). Load the
// file in Perfetto (ui.perfetto.dev) or chrome://tracing.
func writeTrace(c *veritas.Campaign, path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := c.WriteTrace(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	logger.Info("trace written", "path", path, "traces", len(c.Trace()))
	return nil
}

// flushSummary writes the one-line JSON telemetry digest to stderr on
// clean shutdown; -quiet opts out.
func flushSummary(c *veritas.Campaign, quiet bool) {
	if quiet {
		return
	}
	if err := cli.WriteTelemetrySummary(os.Stderr, c.Telemetry().Summary()); err != nil {
		logger.Error("telemetry summary", "error", err)
	}
}

// flagConflicts rejects contradictory flag combinations up front, so
// no flag is ever silently ignored (which reads like it was honored)
// and no impossible value falls through to a run shape the user did
// not ask for. set holds the names of the flags explicitly passed on
// the command line (flag.Visit), dispatchN and storeDir their parsed
// values. Returns the first contradiction, or nil.
func flagConflicts(set map[string]bool, dispatchN int, storeDir string) error {
	if set["dispatch"] && dispatchN < 1 {
		// An explicit but impossible shard count must not silently fall
		// through to a normal single-process run.
		return fmt.Errorf("-dispatch %d: shard count must be at least 1", dispatchN)
	}
	if set["dispatch"] {
		// The supervisor owns sharding, resuming, and reporting; flags
		// that would contradict it must not be silently ignored.
		var stray []string
		for _, c := range []struct{ name, why string }{
			{"shard", "dispatch owns the partition"},
			{"fold", "dispatch folds for you"},
			{"resume", "dispatch workers always resume"},
		} {
			if set[c.name] {
				stray = append(stray, fmt.Sprintf("-%s (%s)", c.name, c.why))
			}
		}
		if len(stray) > 0 {
			return fmt.Errorf("-dispatch conflicts with %s", strings.Join(stray, ", "))
		}
		if storeDir == "" {
			return fmt.Errorf("-dispatch needs -store: the folded corpus has to land somewhere")
		}
		return nil
	}
	if set["serve"] {
		return fmt.Errorf("-serve requires -dispatch (use cmd/serve for a standalone query server)")
	}
	if set["status"] {
		return fmt.Errorf("-status requires -dispatch (there is no supervisor to report on; cmd/serve exposes /v1/status for a store)")
	}
	// -restarts configures the dispatch supervisor; without -dispatch it
	// would be silently ignored.
	if set["restarts"] {
		return fmt.Errorf("-restarts requires -dispatch (there is no supervisor to restart workers)")
	}
	if set["fold"] {
		if storeDir == "" {
			return fmt.Errorf("-fold needs -store as the destination directory")
		}
		// The fold is defined entirely by the shard stores (their
		// campaign.json IS the campaign); any other flag would be
		// silently ignored. -pprof, -log, -log-level and -quiet are pure
		// observability; they cannot shape the fold.
		allowed := map[string]bool{"fold": true, "store": true, "pprof": true, "log": true, "log-level": true, "quiet": true}
		var stray []string
		for name := range set {
			if !allowed[name] {
				stray = append(stray, "-"+name)
			}
		}
		if len(stray) > 0 {
			sort.Strings(stray)
			return fmt.Errorf("-fold takes only -store; the shard stores' campaign.json defines the campaign (drop %s)",
				strings.Join(stray, ", "))
		}
		return nil
	}
	if set["shard"] && storeDir == "" {
		// A shard without a store would compute its slice, print a
		// partial report indistinguishable from a whole-campaign one,
		// and persist nothing to fold.
		return fmt.Errorf("-shard needs -store: a shard's results exist to be folded")
	}
	return nil
}

// parseShard parses a -shard value of the form "i/n" (e.g. "0/3").
// Range validation lives in veritas.WithShard, not here.
func parseShard(s string) (index, count int, err error) {
	lhs, rhs, ok := strings.Cut(s, "/")
	if !ok {
		return 0, 0, fmt.Errorf("shard %q is not of the form i/n (e.g. 0/3)", s)
	}
	if index, err = strconv.Atoi(strings.TrimSpace(lhs)); err != nil {
		return 0, 0, fmt.Errorf("shard index %q: %w", lhs, err)
	}
	if count, err = strconv.Atoi(strings.TrimSpace(rhs)); err != nil {
		return 0, 0, fmt.Errorf("shard count %q: %w", rhs, err)
	}
	return index, count, nil
}

// fold runs the -fold path: compact per-shard stores into one corpus at
// dst, then print the folded store's report.
func fold(dst string, srcs []string, quiet bool) error {
	n, err := veritas.FoldShards(dst, srcs...)
	if err != nil {
		return err
	}
	logger.Info("folded shard stores", "sessions", n, "store", dst)
	c, err := veritas.NewCampaign(veritas.WithStore(dst), veritas.WithReadOnlyStore())
	if err != nil {
		return err
	}
	defer c.Close()
	if err := c.WriteReport(os.Stdout); err != nil {
		return err
	}
	flushSummary(c, quiet)
	return nil
}

func main() {
	// When a dispatch supervisor re-exec'd this binary as a shard
	// worker, run the shard and exit; otherwise fall through to the
	// normal CLI.
	veritas.DispatchWorkerMain()

	var o options
	flag.IntVar(&o.workers, "workers", 0, "worker pool size (0 = GOMAXPROCS, split across workers under -dispatch)")
	flag.IntVar(&o.sessions, "sessions", 8, "sessions per scenario")
	scenarios := flag.String("scenarios", "", "comma-separated scenarios (default: all of "+strings.Join(veritas.Scenarios(), ",")+")")
	flag.IntVar(&o.chunks, "chunks", 120, "chunks per session (0 = full 10-min clip)")
	flag.IntVar(&o.samples, "samples", 5, "Veritas posterior samples K")
	flag.Int64Var(&o.seed, "seed", 1, "base seed for the whole campaign")
	flag.Float64Var(&o.buffer, "buffer", 5, "deployed (Setting A) buffer size, seconds")
	abrs := flag.String("abrs", "bba,bola", "comma-separated what-if ABRs ("+strings.Join(veritas.ABRs(), ",")+")")
	buffers := flag.String("buffers", "5,30", "comma-separated what-if buffer sizes, seconds")
	flag.BoolVar(&o.nocache, "nocache", false, "disable the emission memoization cache")
	progress := flag.Bool("progress", false, "print per-session completions to stderr")
	flag.StringVar(&o.storeDir, "store", "", "persist per-session results to this store directory")
	flag.BoolVar(&o.resume, "resume", false, "skip sessions already present in -store")
	shard := flag.String("shard", "", "execute only shard i/n of the corpus (e.g. 0/3); requires -store for later folding")
	var foldSrcs multiFlag
	flag.Var(&foldSrcs, "fold", "shard store(s) to fold into -store (repeatable; each value may be a store, a comma-joined list, or a parent directory of shard stores; no campaign runs)")
	dispatchN := flag.Int("dispatch", 0, "supervise n local shard worker processes, fold their stores into -store, and report")
	restarts := flag.Int("restarts", 2, "per-shard crash-restart budget under -dispatch")
	serveAddr := flag.String("serve", "", "with -dispatch: serve the folded corpus on this address after the campaign")
	statusAddr := flag.String("status", "", "with -dispatch: serve the live fleet status API (GET /v1/status, /metrics, /v1/trace) on this address while the campaign runs")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	logFormat := flag.String("log", "text", "structured log format on stderr: text or json")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
	tracePath := flag.String("trace", "", "write the campaign's tail-sampled traces as Chrome trace-event JSON to this file (load in Perfetto)")
	quiet := flag.Bool("quiet", false, "skip the one-line JSON telemetry summary on clean shutdown")
	flag.Parse()
	log, err := cli.NewLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		fatal(err)
	}
	logger = log
	startPprof(*pprofAddr)

	// The list-valued flags feed every run shape (normal, -shard,
	// -dispatch); parse them once. The -fold path rejects them by flag
	// presence before they are ever used.
	o.scenarios = splitCSV(*scenarios)
	o.abrs = splitCSV(*abrs)
	bufVals, err := parseFloats(*buffers)
	if err != nil {
		fatal(fmt.Errorf("-buffers: %w", err))
	}
	o.buffers = bufVals

	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if err := flagConflicts(set, *dispatchN, o.storeDir); err != nil {
		fatal(err)
	}
	if *dispatchN > 0 {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		if err := dispatchRun(ctx, o, *dispatchN, *restarts, *serveAddr, *statusAddr, *tracePath, *progress, *quiet); err != nil {
			fatal(err)
		}
		return
	}
	if len(foldSrcs) > 0 {
		if err := fold(o.storeDir, foldSrcs, *quiet); err != nil {
			fatal(err)
		}
		return
	}
	if *shard != "" {
		idx, cnt, err := parseShard(*shard)
		if err != nil {
			fatal(fmt.Errorf("-shard: %w", err))
		}
		o.shardIndex, o.shardCount = idx, cnt
	}

	opts := o.campaignOptions()
	var total int
	if *progress {
		opts = append(opts, veritas.WithProgress(func(r veritas.FleetSessionResult) {
			logger.Info("session done", "id", r.ID, "arms", len(r.Arms), "corpus", total)
		}))
	}
	c, err := veritas.NewCampaign(opts...)
	if err != nil {
		fatal(err)
	}
	defer c.Close()

	if o.storeDir != "" {
		// Opening the store up front runs the campaign-fingerprint
		// check before any corpus is built or worker started.
		st, err := c.Store()
		if err != nil {
			fatal(err)
		}
		if rec := st.Recovered(); rec > 0 {
			logger.Warn("store recovered", "droppedTailBytes", rec)
		}
		if o.resume {
			logger.Info("resuming", "storedSessions", st.Len())
		} else if st.Len() > 0 {
			logger.Info("store already holds sessions (use -resume to skip them)", "storedSessions", st.Len())
		}
	}

	corpus, err := c.Corpus()
	if err != nil {
		fatal(err)
	}
	total = len(corpus)
	arms, err := c.Arms()
	if err != nil {
		fatal(err)
	}
	if o.shardCount > 1 {
		mine := veritas.ShardSessions(len(corpus), o.shardIndex, o.shardCount)
		logger.Info("running shard", "shard", o.shardIndex, "of", o.shardCount,
			"sessions", mine, "corpus", len(corpus), "arms", len(arms), "samples", o.samples)
	} else {
		logger.Info("running campaign", "sessions", len(corpus), "arms", len(arms), "samples", o.samples)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if _, err := c.Run(ctx); err != nil {
		if o.storeDir != "" {
			// Keep finished sessions durable for -resume; a sync
			// failure here means they may NOT have survived, which the
			// user must hear about before trusting -resume.
			if st, serr := c.Store(); serr == nil {
				if serr := st.Sync(); serr != nil {
					logger.Error("store sync failed; stored sessions may be incomplete", "error", serr)
				}
			}
		}
		// Export whatever traces the failed run recorded — they are the
		// post-mortem — before exiting nonzero.
		if terr := writeTrace(c, *tracePath); terr != nil {
			logger.Error("trace export failed", "error", terr)
		}
		fatal(err)
	}

	if err := writeTrace(c, *tracePath); err != nil {
		fatal(err)
	}
	if err := c.WriteReport(os.Stdout); err != nil {
		fatal(err)
	}
	flushSummary(c, *quiet)
}

func splitCSV(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, p := range splitCSV(s) {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// startPprof serves the net/http/pprof handlers (registered on the
// default mux by the blank import) on addr. Opt-in: profiling
// endpoints must never listen unless asked for.
func startPprof(addr string) {
	if addr == "" {
		return
	}
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil {
			logger.Error("pprof listener failed", "error", err)
		}
	}()
}

func fatal(err error) {
	logger.Error("fatal", "error", err)
	os.Exit(1)
}
