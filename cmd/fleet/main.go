// Command fleet runs a batch causal-query campaign: it generates a
// scenario-diverse corpus of streaming sessions (FCC-, LTE-, WiFi-like
// and square-wave bandwidth regimes), runs an ABR × buffer-size what-if
// matrix over every session on the concurrent fleet engine, and prints
// an aggregate report (per-arm metric summaries, truth coverage, cache
// and throughput statistics).
//
// With -store, per-session results stream to a persistent corpus store
// as workers finish them, and the report is rebuilt from the store —
// which makes campaigns resumable: a killed run restarted with -resume
// skips every session already on disk and computes only the remainder,
// producing the exact aggregate an uninterrupted run would have.
//
// Usage:
//
//	fleet                                   # default campaign: 4 scenarios x 8 sessions, bba/bola x 5s/30s
//	fleet -workers 8 -sessions 25           # 100 sessions on 8 workers
//	fleet -scenarios lte,wifi -abrs bba -buffers 5
//	fleet -chunks 300 -samples 5 -seed 7    # paper-scale sessions
//	fleet -store campaign.store             # persist results while running
//	fleet -store campaign.store -resume     # pick up where a killed run stopped
//
// Interrupting with Ctrl-C cancels the fleet promptly; with -store the
// finished sessions survive the interrupt.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"syscall"

	"veritas"
)

// options collects the parsed flags so validation is testable apart
// from flag.Parse and os.Exit.
type options struct {
	workers   int
	sessions  int
	scenarios []string
	chunks    int
	samples   int
	seed      int64
	buffer    float64
	abrs      []string
	buffers   []float64
	nocache   bool
	progress  bool
	storeDir  string
	resume    bool
}

// validate rejects bad flag combinations up front, before any corpus
// is built or worker started.
func (o options) validate() error {
	switch {
	case o.workers < 0:
		return fmt.Errorf("-workers %d is negative (0 means GOMAXPROCS)", o.workers)
	case o.sessions <= 0:
		return fmt.Errorf("-sessions %d must be positive", o.sessions)
	case o.chunks < 0:
		return fmt.Errorf("-chunks %d is negative (0 means the full clip)", o.chunks)
	case o.samples <= 0:
		return fmt.Errorf("-samples %d must be positive (the paper uses 5)", o.samples)
	case o.buffer <= 0:
		return fmt.Errorf("-buffer %g must be positive seconds", o.buffer)
	case len(o.abrs) == 0:
		return fmt.Errorf("-abrs must name at least one of %s", strings.Join(veritas.FleetABRs(), ","))
	case len(o.buffers) == 0:
		return fmt.Errorf("-buffers must list at least one size")
	case o.resume && o.storeDir == "":
		return fmt.Errorf("-resume needs -store: there is nowhere to resume from")
	}
	seenBuf := make(map[float64]bool)
	for _, b := range o.buffers {
		if b <= 0 {
			return fmt.Errorf("-buffers entry %g must be positive seconds", b)
		}
		if seenBuf[b] {
			// Duplicates collide on arm names ("bba-5s" twice) and
			// double-count every session in the aggregates.
			return fmt.Errorf("-buffers: %g listed twice", b)
		}
		seenBuf[b] = true
	}
	known := make(map[string]bool)
	for _, s := range veritas.FleetScenarios() {
		known[s] = true
	}
	seenScen := make(map[string]bool)
	for _, s := range o.scenarios {
		if !known[s] {
			return fmt.Errorf("-scenarios: unknown scenario %q (have %s)",
				s, strings.Join(veritas.FleetScenarios(), ","))
		}
		if seenScen[s] {
			// Duplicates would produce sessions with colliding IDs,
			// which a store silently collapses (last write wins).
			return fmt.Errorf("-scenarios: %q listed twice", s)
		}
		seenScen[s] = true
	}
	seenABR := make(map[string]bool)
	for _, a := range o.abrs {
		ok := false
		for _, k := range veritas.FleetABRs() {
			if a == k {
				ok = true
			}
		}
		if !ok {
			return fmt.Errorf("-abrs: unknown ABR %q (have %s)", a, strings.Join(veritas.FleetABRs(), ","))
		}
		if seenABR[a] {
			return fmt.Errorf("-abrs: %q listed twice", a)
		}
		seenABR[a] = true
	}
	return nil
}

// campaignMeta fingerprints every flag that shapes results. It is
// persisted as campaign.json inside the store directory so a later run
// against the same store can refuse to silently mix rows computed under
// different settings into one "coherent" aggregate.
type campaignMeta struct {
	Scenarios   []string
	SessionsPer int
	Chunks      int
	Samples     int
	Seed        int64
	Buffer      float64
	ABRs        []string
	Buffers     []float64
}

func (o options) meta() campaignMeta {
	return campaignMeta{
		Scenarios:   o.scenarios,
		SessionsPer: o.sessions,
		Chunks:      o.chunks,
		Samples:     o.samples,
		Seed:        o.seed,
		Buffer:      o.buffer,
		ABRs:        o.abrs,
		Buffers:     o.buffers,
	}
}

// checkCampaignMeta records this campaign's fingerprint in a fresh
// store and rejects a store written under different flags.
func checkCampaignMeta(dir string, o options) error {
	path := filepath.Join(dir, "campaign.json")
	want := o.meta()
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		b, err := json.MarshalIndent(want, "", "  ")
		if err != nil {
			return err
		}
		// Write-then-rename: a crash mid-write must not leave a torn
		// JSON file that would block every later -resume.
		tmp := path + ".tmp"
		if err := os.WriteFile(tmp, b, 0o644); err != nil {
			return err
		}
		return os.Rename(tmp, path)
	}
	if err != nil {
		return err
	}
	var have campaignMeta
	if err := json.Unmarshal(data, &have); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if !reflect.DeepEqual(have, want) {
		return fmt.Errorf("store %s holds a campaign run with different flags (see %s); repeat them exactly or use a fresh -store",
			dir, path)
	}
	return nil
}

func main() {
	var o options
	flag.IntVar(&o.workers, "workers", 0, "worker pool size (0 = GOMAXPROCS)")
	flag.IntVar(&o.sessions, "sessions", 8, "sessions per scenario")
	scenarios := flag.String("scenarios", "", "comma-separated scenarios (default: all of "+strings.Join(veritas.FleetScenarios(), ",")+")")
	flag.IntVar(&o.chunks, "chunks", 120, "chunks per session (0 = full 10-min clip)")
	flag.IntVar(&o.samples, "samples", 5, "Veritas posterior samples K")
	flag.Int64Var(&o.seed, "seed", 1, "base seed for the whole campaign")
	flag.Float64Var(&o.buffer, "buffer", 5, "deployed (Setting A) buffer size, seconds")
	abrs := flag.String("abrs", "bba,bola", "comma-separated what-if ABRs ("+strings.Join(veritas.FleetABRs(), ",")+")")
	buffers := flag.String("buffers", "5,30", "comma-separated what-if buffer sizes, seconds")
	flag.BoolVar(&o.nocache, "nocache", false, "disable the emission memoization cache")
	flag.BoolVar(&o.progress, "progress", false, "print per-session completions to stderr")
	flag.StringVar(&o.storeDir, "store", "", "persist per-session results to this store directory")
	flag.BoolVar(&o.resume, "resume", false, "skip sessions already present in -store")
	flag.Parse()

	o.scenarios = splitCSV(*scenarios)
	o.abrs = splitCSV(*abrs)
	bufVals, err := parseFloats(*buffers)
	if err != nil {
		fatal(fmt.Errorf("-buffers: %w", err))
	}
	o.buffers = bufVals
	if err := o.validate(); err != nil {
		fatal(err)
	}

	ccfg := veritas.CorpusConfig{
		Scenarios:   o.scenarios,
		SessionsPer: o.sessions,
		NumChunks:   o.chunks,
		BufferCap:   o.buffer,
		Seed:        o.seed,
	}
	corpus, err := veritas.BuildCorpus(ccfg)
	if err != nil {
		fatal(err)
	}
	arms, err := veritas.FleetMatrix(ccfg, o.abrs, o.buffers)
	if err != nil {
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fcfg := veritas.FleetConfig{
		Workers:      o.workers,
		Samples:      o.samples,
		Seed:         o.seed,
		DisableCache: o.nocache,
	}

	var st *veritas.FleetStore
	if o.storeDir != "" {
		st, err = veritas.OpenStore(o.storeDir, veritas.FleetStoreOptions{})
		if err != nil {
			fatal(err)
		}
		defer st.Close()
		if err := checkCampaignMeta(o.storeDir, o); err != nil {
			fatal(err)
		}
		if rec := st.Recovered(); rec > 0 {
			fmt.Fprintf(os.Stderr, "fleet: store recovered: dropped %d torn tail bytes from the previous run\n", rec)
		}
		fcfg.Sink = st
		if o.resume {
			skip := make(map[string]bool)
			for _, k := range st.Keys() {
				skip[k] = true
			}
			fcfg.Skip = skip
			fmt.Fprintf(os.Stderr, "fleet: resume: %d sessions already stored\n", len(skip))
		} else if st.Len() > 0 {
			fmt.Fprintf(os.Stderr, "fleet: store already holds %d sessions (use -resume to skip them)\n", st.Len())
		}
	}

	if o.progress {
		total := len(corpus)
		fcfg.OnResult = func(r veritas.FleetSessionResult) {
			fmt.Fprintf(os.Stderr, "done %s (%d arms)   [corpus of %d]\n", r.ID, len(r.Arms), total)
		}
	}
	fmt.Fprintf(os.Stderr, "fleet: %d sessions x %d arms, %d posterior samples\n",
		len(corpus), len(arms), o.samples)

	res, err := veritas.RunFleet(ctx, fcfg, corpus, arms)
	if err != nil {
		if st != nil {
			// Keep finished sessions durable for -resume; a sync
			// failure here means they may NOT have survived, which the
			// user must hear about before trusting -resume.
			if serr := st.Sync(); serr != nil {
				fmt.Fprintf(os.Stderr, "fleet: WARNING: store sync failed (%v); stored sessions may be incomplete\n", serr)
			}
		}
		fatal(err)
	}

	if st == nil {
		if err := res.WriteReport(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	// Store-backed report: aggregate by re-reading what was persisted,
	// so the report covers prior (resumed-over) runs too and is
	// byte-identical to what the in-RAM aggregator of an uninterrupted
	// campaign would print.
	if err := st.Sync(); err != nil {
		fatal(err)
	}
	agg, err := st.Aggregate()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("== corpus report: %d sessions stored in %s ==\n", st.Len(), o.storeDir)
	if err := agg.WriteAggregate(os.Stdout); err != nil {
		fatal(err)
	}
	if err := res.WriteEngineStats(os.Stdout); err != nil {
		fatal(err)
	}
}

func splitCSV(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, p := range splitCSV(s) {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fleet:", err)
	os.Exit(1)
}
