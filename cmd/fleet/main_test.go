package main

import (
	"strings"
	"testing"
)

// goodOptions mirrors the flag defaults.
func goodOptions() options {
	return options{
		sessions: 8,
		chunks:   120,
		samples:  5,
		seed:     1,
		buffer:   5,
		abrs:     []string{"bba", "bola"},
		buffers:  []float64{5, 30},
	}
}

func TestValidateAcceptsDefaults(t *testing.T) {
	if err := goodOptions().validate(); err != nil {
		t.Fatalf("default options rejected: %v", err)
	}
	o := goodOptions()
	o.storeDir = "campaign.store"
	o.resume = true
	o.scenarios = []string{"lte", "wifi"}
	if err := o.validate(); err != nil {
		t.Fatalf("valid store+resume options rejected: %v", err)
	}
}

func TestValidateRejectsBadCombinations(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*options)
		want   string
	}{
		{"resume without store", func(o *options) { o.resume = true }, "-resume needs -store"},
		{"negative workers", func(o *options) { o.workers = -2 }, "-workers"},
		{"zero sessions", func(o *options) { o.sessions = 0 }, "-sessions"},
		{"negative chunks", func(o *options) { o.chunks = -1 }, "-chunks"},
		{"zero samples", func(o *options) { o.samples = 0 }, "-samples"},
		{"nonpositive buffer", func(o *options) { o.buffer = 0 }, "-buffer"},
		{"no abrs", func(o *options) { o.abrs = nil }, "-abrs"},
		{"unknown abr", func(o *options) { o.abrs = []string{"vhs"} }, `unknown ABR "vhs"`},
		{"no buffers", func(o *options) { o.buffers = nil }, "-buffers"},
		{"negative what-if buffer", func(o *options) { o.buffers = []float64{5, -1} }, "-buffers entry"},
		{"unknown scenario", func(o *options) { o.scenarios = []string{"dialup"} }, `unknown scenario "dialup"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := goodOptions()
			tc.mutate(&o)
			err := o.validate()
			if err == nil {
				t.Fatal("bad options accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestCheckCampaignMeta(t *testing.T) {
	dir := t.TempDir()
	o := goodOptions()
	if err := checkCampaignMeta(dir, o); err != nil {
		t.Fatalf("fresh store: %v", err)
	}
	if err := checkCampaignMeta(dir, o); err != nil {
		t.Fatalf("identical flags rejected: %v", err)
	}
	changed := o
	changed.chunks = 300
	err := checkCampaignMeta(dir, changed)
	if err == nil {
		t.Fatal("changed -chunks accepted against an existing campaign store")
	}
	if !strings.Contains(err.Error(), "different flags") {
		t.Errorf("unhelpful mismatch error: %v", err)
	}
}

func TestValidateRejectsDuplicates(t *testing.T) {
	o := goodOptions()
	o.scenarios = []string{"lte", "lte"}
	if err := o.validate(); err == nil || !strings.Contains(err.Error(), "listed twice") {
		t.Errorf("duplicate scenarios: err = %v", err)
	}
	o = goodOptions()
	o.abrs = []string{"bba", "bba"}
	if err := o.validate(); err == nil || !strings.Contains(err.Error(), "listed twice") {
		t.Errorf("duplicate abrs: err = %v", err)
	}
}

func TestValidateRejectsDuplicateBuffers(t *testing.T) {
	o := goodOptions()
	o.buffers = []float64{5, 5}
	if err := o.validate(); err == nil || !strings.Contains(err.Error(), "listed twice") {
		t.Errorf("duplicate buffers: err = %v", err)
	}
}
