package main

import (
	"strings"
	"testing"

	"veritas"
)

// goodOptions mirrors the flag defaults.
func goodOptions() options {
	return options{
		sessions: 8,
		chunks:   120,
		samples:  5,
		seed:     1,
		buffer:   5,
		abrs:     []string{"bba", "bola"},
		buffers:  []float64{5, 30},
	}
}

// build maps flags onto the Campaign API, which owns validation now.
func build(o options) (*veritas.Campaign, error) {
	return veritas.NewCampaign(o.campaignOptions()...)
}

func TestFlagsMapOntoCampaign(t *testing.T) {
	c, err := build(goodOptions())
	if err != nil {
		t.Fatalf("default flags rejected: %v", err)
	}
	corpus, err := c.Corpus()
	if err != nil {
		t.Fatal(err)
	}
	if want := len(veritas.Scenarios()) * 8; len(corpus) != want {
		t.Errorf("default corpus has %d sessions, want %d", len(corpus), want)
	}
	arms, err := c.Arms()
	if err != nil {
		t.Fatal(err)
	}
	if len(arms) != 4 {
		t.Errorf("default matrix has %d arms, want bba/bola x 5s/30s = 4", len(arms))
	}

	o := goodOptions()
	o.storeDir = "campaign.store"
	o.resume = true
	o.scenarios = []string{"lte", "wifi"}
	if _, err := build(o); err != nil {
		t.Fatalf("valid store+resume flags rejected: %v", err)
	}
}

func TestBadFlagsRejectedByCampaign(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*options)
		want   string
	}{
		{"negative workers", func(o *options) { o.workers = -2 }, "negative"},
		{"zero sessions", func(o *options) { o.sessions = 0 }, "must be positive"},
		{"negative chunks", func(o *options) { o.chunks = -1 }, "negative"},
		{"zero samples", func(o *options) { o.samples = 0 }, "must be positive"},
		{"nonpositive buffer", func(o *options) { o.buffer = 0 }, "positive seconds"},
		{"no abrs", func(o *options) { o.abrs = nil }, "at least one"},
		{"unknown abr", func(o *options) { o.abrs = []string{"vhs"} }, `unknown ABR "vhs"`},
		{"no buffers", func(o *options) { o.buffers = nil }, "at least one"},
		{"negative what-if buffer", func(o *options) { o.buffers = []float64{5, -1} }, "positive seconds"},
		{"duplicate buffers", func(o *options) { o.buffers = []float64{5, 5} }, "listed twice"},
		{"unknown scenario", func(o *options) { o.scenarios = []string{"dialup"} }, `unknown scenario "dialup"`},
		{"duplicate scenarios", func(o *options) { o.scenarios = []string{"lte", "lte"} }, "listed twice"},
		{"duplicate abrs", func(o *options) { o.abrs = []string{"bba", "bba"} }, "listed twice"},
		{"resume without store", func(o *options) { o.resume = true }, "WithResume needs WithStore"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := goodOptions()
			tc.mutate(&o)
			_, err := build(o)
			if err == nil {
				t.Fatal("bad flags accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestFlagConflicts pins the contradictory-flag-combination table:
// every rejected pairing must fail fast with an error naming the
// offending flags, and every legitimate combination must pass.
func TestFlagConflicts(t *testing.T) {
	cases := []struct {
		name      string
		set       []string // flags explicitly passed
		dispatchN int
		storeDir  string
		want      string // "" = must be accepted
	}{
		{"no flags", nil, 0, "", ""},
		{"plain store run", []string{"store"}, 0, "x.store", ""},
		{"dispatch with store", []string{"dispatch", "store"}, 4, "x.store", ""},
		{"dispatch zero", []string{"dispatch"}, 0, "x.store", "at least 1"},
		{"dispatch negative", []string{"dispatch", "store"}, -2, "x.store", "at least 1"},
		{"dispatch without store", []string{"dispatch"}, 4, "", "-dispatch needs -store"},
		{"dispatch with shard", []string{"dispatch", "store", "shard"}, 4, "x.store", "-shard (dispatch owns the partition)"},
		{"dispatch with fold", []string{"dispatch", "store", "fold"}, 4, "x.store", "-fold (dispatch folds for you)"},
		{"dispatch with resume", []string{"dispatch", "store", "resume"}, 4, "x.store", "-resume (dispatch workers always resume)"},
		{"dispatch with shard and resume", []string{"dispatch", "store", "shard", "resume"}, 4, "x.store",
			"-shard (dispatch owns the partition), -resume (dispatch workers always resume)"},
		{"serve without dispatch", []string{"serve"}, 0, "", "-serve requires -dispatch"},
		{"status without dispatch", []string{"status"}, 0, "", "-status requires -dispatch"},
		{"restarts without dispatch", []string{"restarts"}, 0, "", "-restarts requires -dispatch"},
		{"fold with store", []string{"fold", "store"}, 0, "x.store", ""},
		{"fold with observability flags", []string{"fold", "store", "log", "log-level", "quiet", "pprof"}, 0, "x.store", ""},
		{"fold without store", []string{"fold"}, 0, "", "-fold needs -store"},
		{"fold with resume", []string{"fold", "store", "resume"}, 0, "x.store", "drop -resume"},
		{"fold with shard", []string{"fold", "store", "shard"}, 0, "x.store", "drop -shard"},
		{"fold with campaign flags", []string{"fold", "store", "sessions", "seed"}, 0, "x.store", "drop -seed, -sessions"},
		{"shard with store", []string{"shard", "store"}, 0, "x.store", ""},
		{"shard without store", []string{"shard"}, 0, "", "-shard needs -store"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			set := map[string]bool{}
			for _, f := range tc.set {
				set[f] = true
			}
			err := flagConflicts(set, tc.dispatchN, tc.storeDir)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("combination rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatal("contradictory combination accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestSplitCSVAndParseFloats(t *testing.T) {
	if got := splitCSV(" lte, wifi ,"); len(got) != 2 || got[0] != "lte" || got[1] != "wifi" {
		t.Errorf("splitCSV = %v", got)
	}
	if got := splitCSV("  "); got != nil {
		t.Errorf("splitCSV on blank = %v, want nil", got)
	}
	vals, err := parseFloats("5, 30")
	if err != nil || len(vals) != 2 || vals[1] != 30 {
		t.Errorf("parseFloats = %v, %v", vals, err)
	}
	if _, err := parseFloats("5,abc"); err == nil {
		t.Error("parseFloats accepted garbage")
	}
}

func TestParseShard(t *testing.T) {
	idx, cnt, err := parseShard("1/3")
	if err != nil || idx != 1 || cnt != 3 {
		t.Errorf("parseShard(1/3) = %d, %d, %v", idx, cnt, err)
	}
	if idx, cnt, err = parseShard(" 0 / 2 "); err != nil || idx != 0 || cnt != 2 {
		t.Errorf("parseShard with spaces = %d, %d, %v", idx, cnt, err)
	}
	for _, bad := range []string{"", "3", "a/b", "1/", "/3", "1-3"} {
		if _, _, err := parseShard(bad); err == nil {
			t.Errorf("parseShard(%q) accepted", bad)
		}
	}
}

func TestShardFlagMapsOntoCampaign(t *testing.T) {
	o := goodOptions()
	o.shardIndex, o.shardCount = 1, 3
	if _, err := build(o); err != nil {
		t.Fatalf("valid -shard rejected: %v", err)
	}
	// Range validation lives in the campaign, reached via the flags.
	o.shardIndex = 3
	if _, err := build(o); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("-shard 3/3: err = %v, want out-of-range", err)
	}
}

func TestMultiFlag(t *testing.T) {
	var m multiFlag
	for _, v := range []string{"a.store", "b.store,c.store", " d.store , "} {
		if err := m.Set(v); err != nil {
			t.Fatalf("Set(%q): %v", v, err)
		}
	}
	want := []string{"a.store", "b.store", "c.store", "d.store"}
	if len(m) != len(want) {
		t.Fatalf("multiFlag = %v, want %v", m, want)
	}
	for i := range want {
		if m[i] != want[i] {
			t.Errorf("multiFlag[%d] = %q, want %q", i, m[i], want[i])
		}
	}
	if err := m.Set(" , "); err == nil {
		t.Error("blank -fold value accepted")
	}
	if got := m.String(); got != "a.store,b.store,c.store,d.store" {
		t.Errorf("String() = %q", got)
	}
}

func TestDispatchFlagsMapOntoCampaign(t *testing.T) {
	// The dispatch path builds its campaign from the same flag->option
	// mapping as a normal run plus the dispatch knobs; a bad restart
	// budget must be rejected by the option, not discovered mid-run.
	o := goodOptions()
	opts := append(o.campaignOptions(), veritas.WithDispatchRestarts(2))
	if _, err := veritas.NewCampaign(opts...); err != nil {
		t.Fatalf("dispatch options rejected: %v", err)
	}
	opts = append(o.campaignOptions(), veritas.WithDispatchRestarts(-1))
	if _, err := veritas.NewCampaign(opts...); err == nil {
		t.Error("negative restart budget accepted")
	}
}
