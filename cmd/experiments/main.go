// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -run fig9              # one figure at paper scale
//	experiments -run all -scale quick  # everything, reduced scale
//	experiments -run fig9 -workers 8   # batch figures on 8 engine workers
//	experiments -run fig9 -scenario lte # LTE-like counterfactual traces
//	experiments -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"veritas"
	"veritas/internal/experiments"
)

func main() {
	var (
		run      = flag.String("run", "all", "experiment id (fig2a, fig5, fig7, ... or 'all')")
		scale    = flag.String("scale", "paper", "'paper' (full size) or 'quick'")
		format   = flag.String("format", "text", "output format: text, csv or json")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		workers  = flag.Int("workers", 0, "fleet-engine worker pool size (0 = GOMAXPROCS)")
		scenario = flag.String("scenario", "", "bandwidth regime for the counterfactual trace set: "+strings.Join(veritas.TraceRegimes(), ", ")+" (default fcc)")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			e, _ := experiments.Get(id)
			fmt.Printf("%-8s %s\n", id, e.Title)
		}
		return
	}

	var s experiments.Scale
	switch *scale {
	case "paper":
		s = experiments.PaperScale()
	case "quick":
		s = experiments.QuickScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want 'paper' or 'quick')\n", *scale)
		os.Exit(2)
	}
	s.Workers = *workers
	s.Scenario = *scenario
	if err := s.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	ids := []string{*run}
	if *run == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		start := time.Now()
		table, err := experiments.Run(id, s)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		if err := table.RenderAs(os.Stdout, *format); err != nil {
			fmt.Fprintf(os.Stderr, "render %s: %v\n", id, err)
			os.Exit(1)
		}
		if *format == "text" {
			fmt.Printf("(%s in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
		}
	}
}
