package main

// The testable core: config validation, target discovery, the worker
// loop, and result aggregation. main.go is flag parsing over this.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"veritas/internal/stats"
)

// defaultMix weights the endpoints the way a dashboard fleet does:
// mostly aggregate reads, a trickle of listings.
const defaultMix = "report=4,percentiles=2,cdf=1,series=1,sessions=1,scenarios=1"

// endpoints are the request kinds loadgen knows how to issue.
var endpoints = map[string]bool{
	"report":      true,
	"cdf":         true,
	"series":      true,
	"percentiles": true,
	"sessions":    true,
	"scenarios":   true,
}

var reportMetricKeys = []string{"ssim", "rebuf", "bitrate"}

var reportEstimators = []string{"veritas-mid", "veritas-low", "veritas-high", "baseline", "truth"}

type mixEntry struct {
	endpoint string
	weight   int
}

// parseMix decodes "report=4,cdf=1,..." keeping the caller's order
// (bench lines come out in mix order, so the order is part of the
// artifact's stability).
func parseMix(s string) ([]mixEntry, error) {
	var out []mixEntry
	seen := map[string]bool{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, w, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("mix entry %q: want endpoint=weight", part)
		}
		if !endpoints[name] {
			return nil, fmt.Errorf("mix entry %q: unknown endpoint (have report, cdf, series, percentiles, sessions, scenarios)", part)
		}
		if seen[name] {
			return nil, fmt.Errorf("mix entry %q: endpoint repeated", part)
		}
		seen[name] = true
		n, err := strconv.Atoi(w)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("mix entry %q: weight must be a non-negative integer", part)
		}
		if n > 0 {
			out = append(out, mixEntry{endpoint: name, weight: n})
		}
	}
	if len(out) == 0 {
		return nil, errors.New("mix selects no endpoints")
	}
	return out, nil
}

type config struct {
	base        string
	duration    time.Duration
	concurrency int
	zipfS       float64
	zipfV       float64
	seed        int64
	mix         []mixEntry
	wait        time.Duration
	client      *http.Client // nil = http.DefaultClient
}

func (c config) validate() error {
	switch {
	case c.duration <= 0:
		return errors.New("-duration must be positive")
	case c.concurrency < 1:
		return errors.New("-concurrency must be at least 1")
	case c.zipfS <= 1:
		return errors.New("-zipf-s must be > 1")
	case c.zipfV < 1:
		return errors.New("-zipf-v must be >= 1")
	case len(c.mix) == 0:
		return errors.New("empty endpoint mix")
	}
	return nil
}

func (c config) httpClient() *http.Client {
	if c.client != nil {
		return c.client
	}
	return http.DefaultClient
}

// corpus is what discovery learned about the target: the names load is
// skewed over. Both lists may be empty against a store with no
// sessions yet; the mix then degrades to unfiltered requests.
type corpus struct {
	scenarios []string
	arms      []string
}

// discover asks the server for its scenario and arm lists — the same
// reads a dashboard's first paint issues.
func discover(cfg config) (corpus, error) {
	var c corpus
	var scens struct {
		Scenarios []struct {
			Scenario string
			Sessions int
		} `json:"scenarios"`
	}
	if err := getJSON(cfg, "/v1/scenarios", &scens); err != nil {
		return c, fmt.Errorf("discovering scenarios: %w", err)
	}
	for _, s := range scens.Scenarios {
		c.scenarios = append(c.scenarios, s.Scenario)
	}
	var rep struct {
		Sessions int
		Arms     []struct{ Arm string }
	}
	if err := getJSON(cfg, "/v1/report", &rep); err != nil {
		return c, fmt.Errorf("discovering arms: %w", err)
	}
	for _, a := range rep.Arms {
		c.arms = append(c.arms, a.Arm)
	}
	return c, nil
}

// discoverWithWait polls discovery until the corpus is non-empty (some
// scenario and some arm exist), up to cfg.wait — so a smoke run can
// start loadgen and the campaign simultaneously and let loadgen catch
// the store as soon as the first sessions land.
func discoverWithWait(cfg config) (corpus, error) {
	deadline := time.Now().Add(cfg.wait)
	for {
		c, err := discover(cfg)
		if err == nil && len(c.scenarios) > 0 && len(c.arms) > 0 {
			return c, nil
		}
		if time.Now().After(deadline) {
			if err != nil {
				return c, err
			}
			return c, nil // run against what we have, even if empty
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func getJSON(cfg config, path string, into any) error {
	resp, err := cfg.httpClient().Get(cfg.base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: HTTP %d", path, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(into)
}

// epStats accumulates one endpoint's outcomes in one worker (merged
// across workers after the run; no locks on the hot path).
type epStats struct {
	count  int
	errors int
	lat    []float64 // nanoseconds
}

type runResult struct {
	mix        []mixEntry
	byEndpoint map[string]*epStats
	total      int
	errors     int
	elapsed    time.Duration
}

// run drives the configured load and aggregates outcomes. It always
// returns (individual request failures are data, not errors).
func run(cfg config, c corpus) runResult {
	var wg sync.WaitGroup
	perWorker := make([]map[string]*epStats, cfg.concurrency)
	start := time.Now()
	deadline := start.Add(cfg.duration)
	for w := 0; w < cfg.concurrency; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			perWorker[id] = worker(cfg, c, id, deadline)
		}(w)
	}
	wg.Wait()
	res := runResult{
		mix:        cfg.mix,
		byEndpoint: make(map[string]*epStats),
		elapsed:    time.Since(start),
	}
	for _, m := range perWorker {
		for name, s := range m {
			dst := res.byEndpoint[name]
			if dst == nil {
				dst = &epStats{}
				res.byEndpoint[name] = dst
			}
			dst.count += s.count
			dst.errors += s.errors
			dst.lat = append(dst.lat, s.lat...)
			res.total += s.count
			res.errors += s.errors
		}
	}
	return res
}

// worker issues requests until deadline with its own RNG and Zipf
// samplers (derived deterministically from the base seed, so two runs
// with the same seed issue the same request sequence per worker).
func worker(cfg config, c corpus, id int, deadline time.Time) map[string]*epStats {
	r := rand.New(rand.NewSource(cfg.seed + int64(id)*9973))
	var zScen, zArm *rand.Zipf
	if len(c.scenarios) > 0 {
		zScen = rand.NewZipf(r, cfg.zipfS, cfg.zipfV, uint64(len(c.scenarios)-1))
	}
	if len(c.arms) > 0 {
		zArm = rand.NewZipf(r, cfg.zipfS, cfg.zipfV, uint64(len(c.arms)-1))
	}
	var totalWeight int
	for _, m := range cfg.mix {
		totalWeight += m.weight
	}
	out := make(map[string]*epStats, len(cfg.mix))
	client := cfg.httpClient()
	for time.Now().Before(deadline) {
		pick := r.Intn(totalWeight)
		var ep string
		for _, m := range cfg.mix {
			if pick < m.weight {
				ep = m.endpoint
				break
			}
			pick -= m.weight
		}
		path := buildPath(ep, c, r, zScen, zArm)
		t0 := time.Now()
		ok := get(client, cfg.base+path)
		lat := float64(time.Since(t0).Nanoseconds())
		s := out[ep]
		if s == nil {
			s = &epStats{}
			out[ep] = s
		}
		s.count++
		s.lat = append(s.lat, lat)
		if !ok {
			s.errors++
		}
	}
	return out
}

// buildPath picks concrete query parameters for one request: Zipf-hot
// scenarios and arms, rotating metrics and estimators uniformly.
func buildPath(ep string, c corpus, r *rand.Rand, zScen, zArm *rand.Zipf) string {
	q := url.Values{}
	// Half the aggregate reads filter by a (Zipf-hot) scenario, like
	// per-scenario dashboard panels; the rest take the whole corpus.
	if zScen != nil && r.Intn(2) == 0 {
		q.Set("scenario", c.scenarios[zScen.Uint64()])
	}
	arm := ""
	if zArm != nil {
		arm = c.arms[zArm.Uint64()]
	}
	switch ep {
	case "scenarios":
		return "/v1/scenarios"
	case "sessions":
		return withQuery("/v1/sessions", q)
	case "report":
		return withQuery("/v1/report", q)
	case "cdf", "series", "percentiles":
		if arm == "" {
			return withQuery("/v1/report", q) // nothing to filter by yet
		}
		q.Set("arm", arm)
		q.Set("metric", reportMetricKeys[r.Intn(len(reportMetricKeys))])
		q.Set("estimator", reportEstimators[r.Intn(len(reportEstimators))])
		if ep == "percentiles" && r.Intn(2) == 0 {
			q.Set("percentiles", "50,95,99")
		}
		return withQuery("/v1/report/"+ep, q)
	}
	return "/v1/report"
}

func withQuery(path string, q url.Values) string {
	if len(q) == 0 {
		return path
	}
	return path + "?" + q.Encode()
}

func get(client *http.Client, u string) bool {
	resp, err := client.Get(u)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode == http.StatusOK
}

// endpointOrder lists the measured endpoints in mix order (then any
// stragglers alphabetically, defensively).
func (r runResult) endpointOrder() []string {
	var order []string
	seen := map[string]bool{}
	for _, m := range r.mix {
		if r.byEndpoint[m.endpoint] != nil {
			order = append(order, m.endpoint)
			seen[m.endpoint] = true
		}
	}
	var rest []string
	for name := range r.byEndpoint {
		if !seen[name] {
			rest = append(rest, name)
		}
	}
	sort.Strings(rest)
	return append(order, rest...)
}

// writeSummary prints the human-readable table.
func (r runResult) writeSummary(w io.Writer) {
	secs := r.elapsed.Seconds()
	if secs <= 0 {
		secs = 1e-9
	}
	fmt.Fprintf(w, "loadgen: %d requests in %v (%.0f req/s), %d errors\n",
		r.total, r.elapsed.Round(time.Millisecond), float64(r.total)/secs, r.errors)
	for _, name := range r.endpointOrder() {
		s := r.byEndpoint[name]
		ps := stats.Percentiles(s.lat, []float64{50, 99})
		if ps == nil {
			continue
		}
		fmt.Fprintf(w, "  %-12s %6d reqs  p50 %8s  p99 %8s  errors %d\n",
			name, s.count,
			time.Duration(ps[0]).Round(time.Microsecond),
			time.Duration(ps[1]).Round(time.Microsecond),
			s.errors)
	}
}

// writeBench prints `go test -bench` style result lines (parsed by
// cmd/benchjson): per-endpoint p50/p99 latency and overall mean
// time-per-request as throughput, all in ns/op so the compare gate's
// lower-is-better convention holds.
func (r runResult) writeBench(w io.Writer) {
	for _, name := range r.endpointOrder() {
		s := r.byEndpoint[name]
		ps := stats.Percentiles(s.lat, []float64{50, 99})
		if ps == nil {
			continue
		}
		fmt.Fprintf(w, "BenchmarkLoadgen/%s/p50 %d %.0f ns/op\n", name, s.count, ps[0])
		fmt.Fprintf(w, "BenchmarkLoadgen/%s/p99 %d %.0f ns/op\n", name, s.count, ps[1])
	}
	if r.total > 0 {
		fmt.Fprintf(w, "BenchmarkLoadgen/throughput %d %.0f ns/op\n",
			r.total, float64(r.elapsed.Nanoseconds())/float64(r.total))
	}
}
