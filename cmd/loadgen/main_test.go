package main

import (
	"bytes"
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"veritas"
)

// serveTinyCampaign runs a small campaign into a store and serves its
// query handler from an httptest server.
func serveTinyCampaign(t *testing.T) *httptest.Server {
	t.Helper()
	dir := t.TempDir() + "/campaign.store"
	c, err := veritas.NewCampaign(
		veritas.WithScenarios("lte", "wifi"),
		veritas.WithSessions(2),
		veritas.WithChunks(24),
		veritas.WithSamples(2),
		veritas.WithMatrix([]string{"bba"}, []float64{5, 30}),
		veritas.WithStore(dir),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	h, err := c.Handler()
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	t.Cleanup(func() { c.Close() })
	return srv
}

func testConfig(srv *httptest.Server) config {
	mix, err := parseMix(defaultMix)
	if err != nil {
		panic(err)
	}
	return config{
		base:        srv.URL,
		duration:    300 * time.Millisecond,
		concurrency: 2,
		zipfS:       1.2,
		zipfV:       1.0,
		seed:        1,
		mix:         mix,
		client:      srv.Client(),
	}
}

func TestRunAgainstServedStore(t *testing.T) {
	srv := serveTinyCampaign(t)
	cfg := testConfig(srv)
	c, err := discoverWithWait(cfg)
	if err != nil {
		t.Fatalf("discover: %v", err)
	}
	if len(c.scenarios) != 2 {
		t.Fatalf("discovered scenarios %v, want 2", c.scenarios)
	}
	if len(c.arms) != 2 {
		t.Fatalf("discovered arms %v, want 2 (bba-5s, bba-30s)", c.arms)
	}
	res := run(cfg, c)
	if res.total == 0 {
		t.Fatal("no requests completed")
	}
	// Every request targets a discovered scenario/arm against a
	// complete store: nothing may fail.
	if res.errors != 0 {
		t.Fatalf("%d/%d requests failed", res.errors, res.total)
	}
	for _, m := range cfg.mix {
		if s := res.byEndpoint[m.endpoint]; s == nil && res.total > 50 {
			t.Errorf("endpoint %s never exercised in %d requests", m.endpoint, res.total)
		}
	}
}

func TestBenchOutputParsesAsBenchLines(t *testing.T) {
	srv := serveTinyCampaign(t)
	cfg := testConfig(srv)
	cfg.duration = 150 * time.Millisecond
	c, err := discoverWithWait(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := run(cfg, c)
	var buf bytes.Buffer
	res.writeBench(&buf)
	out := buf.String()
	if !strings.Contains(out, "BenchmarkLoadgen/throughput ") {
		t.Fatalf("bench output missing throughput line:\n%s", out)
	}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		fields := strings.Fields(line)
		if len(fields) != 4 || !strings.HasPrefix(fields[0], "BenchmarkLoadgen/") || fields[3] != "ns/op" {
			t.Errorf("malformed bench line: %q", line)
		}
	}
	var human bytes.Buffer
	res.writeSummary(&human)
	if !strings.Contains(human.String(), "req/s") {
		t.Errorf("summary missing throughput: %q", human.String())
	}
}

func TestParseMix(t *testing.T) {
	if _, err := parseMix("report=4,cdf=1"); err != nil {
		t.Errorf("valid mix rejected: %v", err)
	}
	for _, bad := range []string{"", "bogus=1", "report", "report=-1", "report=1,report=2", "report=0"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("mix %q accepted, want error", bad)
		}
	}
	mix, err := parseMix("cdf=2, report=1")
	if err != nil {
		t.Fatal(err)
	}
	if len(mix) != 2 || mix[0].endpoint != "cdf" || mix[1].endpoint != "report" {
		t.Errorf("mix order not preserved: %+v", mix)
	}
}

func TestConfigValidate(t *testing.T) {
	mix, _ := parseMix(defaultMix)
	good := config{duration: time.Second, concurrency: 1, zipfS: 1.2, zipfV: 1, mix: mix}
	if err := good.validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := good
	bad.zipfS = 1
	if err := bad.validate(); err == nil {
		t.Error("zipf-s=1 accepted")
	}
	bad = good
	bad.concurrency = 0
	if err := bad.validate(); err == nil {
		t.Error("concurrency=0 accepted")
	}
}
