// Command loadgen drives a serving Veritas query tier with a
// Zipf-skewed synthetic read load and reports per-endpoint latency
// percentiles and overall throughput — the serving-layer counterpart
// of the compute benchmarks, and the harness CI's serve-smoke job runs
// against a watch-mode server mid-campaign.
//
// The load models a dashboard fleet: most requests hit the aggregate
// report family, a popular few scenarios and arms soak up most of the
// traffic (Zipf over the discovered scenario and arm lists), and a
// trickle lists sessions and scenarios. The endpoint mix is
// configurable; scenario and arm names are discovered from the target
// server, never hard-coded.
//
// With -bench the results are additionally printed as `go test -bench`
// style lines —
//
//	BenchmarkLoadgen/report/p99  412  1834219 ns/op
//	BenchmarkLoadgen/throughput  2048  48812 ns/op
//
// — which `benchjson` folds into the repository's benchmark trajectory
// (BENCH_N.json) so serving regressions gate CI like compute
// regressions do.
//
// Usage:
//
//	loadgen -base http://localhost:8077 -duration 10s -concurrency 8
//	loadgen -base http://localhost:8077 -wait 30s -bench >> bench.txt
package main

import (
	"flag"
	"fmt"
	"os"
	"time"
)

func main() {
	var (
		base        = flag.String("base", "", "base URL of the serving tier (required), e.g. http://localhost:8077")
		duration    = flag.Duration("duration", 10*time.Second, "how long to drive load")
		concurrency = flag.Int("concurrency", 8, "concurrent client goroutines")
		zipfS       = flag.Float64("zipf-s", 1.2, "Zipf skew exponent over scenarios and arms (must be > 1)")
		zipfV       = flag.Float64("zipf-v", 1.0, "Zipf value parameter (must be >= 1)")
		seed        = flag.Int64("seed", 1, "base RNG seed (each worker derives its own)")
		mixFlag     = flag.String("mix", defaultMix, "endpoint weights, e.g. report=4,percentiles=2,cdf=1,series=1,sessions=1,scenarios=1")
		wait        = flag.Duration("wait", 0, "poll until the server reports a non-empty corpus, up to this long (0 = no wait)")
		bench       = flag.Bool("bench", false, "also print go-test-bench result lines on stdout")
	)
	flag.Parse()
	if *base == "" {
		fmt.Fprintln(os.Stderr, "loadgen: -base is required")
		os.Exit(2)
	}
	mix, err := parseMix(*mixFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(2)
	}
	cfg := config{
		base:        *base,
		duration:    *duration,
		concurrency: *concurrency,
		zipfS:       *zipfS,
		zipfV:       *zipfV,
		seed:        *seed,
		mix:         mix,
		wait:        *wait,
	}
	if err := cfg.validate(); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(2)
	}
	corpus, err := discoverWithWait(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	res := run(cfg, corpus)
	res.writeSummary(os.Stderr)
	if *bench {
		res.writeBench(os.Stdout)
	}
	// A smoke run must fail loudly when the server misbehaved: any
	// error rate above 1% (or no completed requests at all) is a
	// serving failure, not load-generator noise.
	if res.total == 0 {
		fmt.Fprintln(os.Stderr, "loadgen: no requests completed")
		os.Exit(1)
	}
	if res.errors*100 > res.total {
		fmt.Fprintf(os.Stderr, "loadgen: %d/%d requests failed\n", res.errors, res.total)
		os.Exit(1)
	}
}
