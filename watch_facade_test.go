package veritas_test

// Facade coverage for watch mode: option validation, tailing a store
// that does not exist yet, and the run-refusal contract.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"veritas"
)

func TestWatchOptionValidation(t *testing.T) {
	cases := []struct {
		name string
		opts []veritas.CampaignOption
		want string
	}{
		{"watch without store", []veritas.CampaignOption{veritas.WithWatch()}, "needs WithStore"},
		{"interval without watch", []veritas.CampaignOption{
			veritas.WithStore(t.TempDir()), veritas.WithWatchInterval(time.Second),
		}, "needs WithWatch"},
		{"negative interval", []veritas.CampaignOption{
			veritas.WithStore(t.TempDir()), veritas.WithWatch(), veritas.WithWatchInterval(-time.Second),
		}, "negative"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := veritas.NewCampaign(tc.opts...)
			if err == nil {
				t.Fatal("bad options accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestWatchCampaignTailsAnotherCampaignsStore(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "campaign.store")

	// The watcher attaches before the store exists: a dashboard can
	// come up before the campaign it watches.
	w, err := veritas.NewCampaign(veritas.WithStore(dir), veritas.WithWatch())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	h, err := w.Handler()
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h)
	defer srv.Close()

	get := func() (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + "/v1/report")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf [1 << 16]byte
		n, _ := resp.Body.Read(buf[:])
		return resp.StatusCode, string(buf[:n])
	}
	if code, body := get(); code != http.StatusOK || !strings.Contains(body, `"Sessions":0`) {
		t.Fatalf("watch over missing store: %d %s", code, body)
	}

	// A writer campaign fills the store; the same watch handler now
	// serves the grown corpus.
	c, err := veritas.NewCampaign(append(quickOptions(), veritas.WithStore(dir))...)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	code, body := get()
	if code != http.StatusOK {
		t.Fatalf("watch after run: %d", code)
	}
	if strings.Contains(body, `"Sessions":0`) {
		t.Fatalf("watch handler never saw the campaign's rows: %s", body)
	}

	// A watch campaign must refuse to run, with a watch-specific hint.
	if _, err := w.Run(context.Background()); err == nil || !strings.Contains(err.Error(), "WithWatch") {
		t.Errorf("watch campaign Run error = %v, want a WithWatch mention", err)
	}
	// WatchServe on a non-watch campaign fails loudly.
	if err := c.WatchServe(context.Background(), "127.0.0.1:0"); err == nil || !strings.Contains(err.Error(), "WithWatch") {
		t.Errorf("WatchServe without WithWatch = %v, want error", err)
	}
}
