package veritas_test

// Observability coverage: the determinism pin (reports byte-identical
// with telemetry on and off), the Campaign.Telemetry snapshot, and the
// serving layer's /metrics and /v1/status endpoints.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"veritas"
)

// TestTelemetryNeverPerturbsReports is the load-bearing guarantee of
// the telemetry plane: instrumentation observes the computation but
// never feeds back into it. The same campaign runs with the registry
// on (default) and off (WithoutTelemetry); Report JSON and the served
// /v1/report body must be byte-identical.
func TestTelemetryNeverPerturbsReports(t *testing.T) {
	run := func(opts ...veritas.CampaignOption) ([]byte, []byte) {
		t.Helper()
		c, err := veritas.NewCampaign(append(quickOptions(), opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if _, err := c.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		rep, err := c.Report()
		if err != nil {
			t.Fatal(err)
		}
		repJSON, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		h, err := c.Handler()
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(h)
		defer srv.Close()
		resp, err := http.Get(srv.URL + "/v1/report")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return repJSON, body
	}

	onRep, onBody := run(veritas.WithStore(t.TempDir()))
	offRep, offBody := run(veritas.WithStore(t.TempDir()), veritas.WithoutTelemetry())
	if !bytes.Equal(onRep, offRep) {
		t.Error("Report JSON differs with telemetry on vs off")
	}
	if !bytes.Equal(onBody, offBody) {
		t.Error("served /v1/report body differs with telemetry on vs off")
	}
}

func TestCampaignTelemetrySnapshot(t *testing.T) {
	c, err := veritas.NewCampaign(append(quickOptions(), veritas.WithStore(t.TempDir()))...)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	snap := c.Telemetry()

	sessions := snap.Counters["veritas_engine_sessions_completed_total"]
	if sessions == 0 {
		t.Fatal("no sessions counted")
	}
	if appends := snap.Counters["veritas_store_appends_total"]; appends != sessions {
		t.Errorf("store appends = %d, sessions = %d; want equal", appends, sessions)
	}
	if got := snap.Gauges["veritas_store_sessions"]; got != float64(sessions) {
		t.Errorf("store sessions gauge = %v, want %d", got, sessions)
	}
	for _, stage := range []string{"simulate", "abduct", "replay"} {
		h, ok := snap.Histograms[`veritas_engine_stage_seconds{stage="`+stage+`"}`]
		if !ok || h.Count == 0 {
			t.Errorf("stage %q histogram empty (ok=%v count=%d)", stage, ok, h.Count)
		}
	}
	if h := snap.Histograms["veritas_engine_session_seconds"]; h.Count != sessions {
		t.Errorf("session histogram count = %d, want %d", h.Count, sessions)
	}

	// With telemetry off the snapshot is empty, not a panic.
	off, err := veritas.NewCampaign(append(quickOptions(), veritas.WithoutTelemetry())...)
	if err != nil {
		t.Fatal(err)
	}
	defer off.Close()
	if _, err := off.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if s := off.Telemetry(); len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Errorf("WithoutTelemetry snapshot not empty: %+v", s)
	}
}

func TestServeMetricsAndStatus(t *testing.T) {
	c, err := veritas.NewCampaign(append(quickOptions(), veritas.WithStore(t.TempDir()))...)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	h, err := c.Handler()
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h)
	defer srv.Close()

	// Generate some request traffic so per-endpoint metrics are live.
	if _, err := http.Get(srv.URL + "/v1/report"); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(srv.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/status: %d", resp.StatusCode)
	}
	var status struct {
		Sessions  int `json:"sessions"`
		Scenarios int `json:"scenarios"`
		Telemetry struct {
			Counters map[string]uint64 `json:"counters"`
		} `json:"telemetry"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	if status.Sessions == 0 || status.Scenarios == 0 {
		t.Errorf("status = %+v, want non-zero sessions and scenarios", status)
	}
	if status.Telemetry.Counters["veritas_engine_sessions_completed_total"] == 0 {
		t.Error("status telemetry missing engine counters")
	}

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if ct := mresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics content type = %q", ct)
	}
	body, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE veritas_engine_stage_seconds histogram",
		"veritas_store_appends_total",
		"veritas_store_sessions",
		`veritas_serve_requests_total{path="/v1/report"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
