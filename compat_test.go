//lint:file-ignore SA1019 This file deliberately exercises the deprecated
// compat surface to pin that it keeps compiling and behaving.

package veritas_test

// The backward-compatibility gate: every exported identifier of the
// pre-Campaign facade must keep compiling for a caller that imports
// only the old names. This file references each of them; it fails to
// build — and the API redesign fails its contract — if any is renamed,
// removed, or changes signature.

import (
	"context"
	"net/http"
	"testing"

	"veritas"
)

// Old type names, one variable each.
var (
	_ *veritas.Trace             = nil
	_ veritas.TraceConfig        = veritas.TraceConfig{}
	_ *veritas.SessionLog        = nil
	_ veritas.ChunkRecord        = veritas.ChunkRecord{}
	_ veritas.Metrics            = veritas.Metrics{}
	_ veritas.ABR                = nil
	_ *veritas.Video             = nil
	_ veritas.Quality            = veritas.Quality{}
	_ veritas.NetworkConfig      = veritas.NetworkConfig{}
	_ veritas.TCPState           = veritas.TCPState{}
	_ veritas.AbductionConfig    = veritas.AbductionConfig{}
	_ *veritas.Abduction         = nil
	_ veritas.SessionConfig      = veritas.SessionConfig{}
	_ *veritas.Session           = nil
	_ veritas.WhatIf             = veritas.WhatIf{}
	_ *veritas.Outcome           = nil
	_ veritas.QoEWeights         = veritas.QoEWeights{}
	_ veritas.FleetConfig        = veritas.FleetConfig{}
	_ veritas.FleetSpec          = veritas.FleetSpec{}
	_ veritas.FleetArm           = veritas.FleetArm{}
	_ *veritas.FleetResult       = nil
	_ veritas.FleetSessionResult = veritas.FleetSessionResult{}
	_ veritas.FleetCacheStats    = veritas.FleetCacheStats{}
	_ veritas.CorpusConfig       = veritas.CorpusConfig{}
	_ *veritas.FleetStore        = nil
	_ veritas.FleetStoreOptions  = veritas.FleetStoreOptions{}
	_ veritas.FleetRow           = veritas.FleetRow{}
	_ veritas.FleetArmOutcome    = veritas.FleetArmOutcome{}
	_ veritas.FleetSink          = nil
	_ veritas.FleetReport        = veritas.FleetReport{}
)

// Old function names, pinned at their original signatures.
var (
	_ func(int64) veritas.TraceConfig                                                                                   = veritas.DefaultTraceConfig
	_ func(veritas.TraceConfig) (*veritas.Trace, error)                                                                 = veritas.GenerateTrace
	_ func(veritas.TraceConfig, int) ([]*veritas.Trace, error)                                                          = veritas.GenerateTraceSet
	_ func(float64) *veritas.Trace                                                                                      = veritas.ConstantTrace
	_ func() veritas.ABR                                                                                                = veritas.NewMPC
	_ func() veritas.ABR                                                                                                = veritas.NewBBA
	_ func() veritas.ABR                                                                                                = veritas.NewBOLA
	_ func() veritas.ABR                                                                                                = veritas.NewFestive
	_ func(int64) veritas.ABR                                                                                           = veritas.NewRandomABR
	_ func(int) veritas.ABR                                                                                             = veritas.NewFixedABR
	_ func(int64) *veritas.Video                                                                                        = veritas.DefaultVideo
	_ func(int64) *veritas.Video                                                                                        = veritas.HigherQualityVideo
	_ func() veritas.NetworkConfig                                                                                      = veritas.DefaultNetwork
	_ func(veritas.SessionConfig) (*veritas.Session, error)                                                             = veritas.RunSession
	_ func(*veritas.SessionLog, veritas.AbductionConfig) (*veritas.Abduction, error)                                    = veritas.Abduct
	_ func(*veritas.SessionLog) (*veritas.Trace, error)                                                                 = veritas.Baseline
	_ func(*veritas.Abduction, veritas.WhatIf) (*veritas.Outcome, error)                                                = veritas.Counterfactual
	_ func(*veritas.Trace, veritas.WhatIf) (veritas.Metrics, error)                                                     = veritas.Oracle
	_ func(*veritas.Abduction, float64, veritas.TCPState, float64) float64                                              = veritas.PredictDownloadTime
	_ func() veritas.QoEWeights                                                                                         = veritas.DefaultQoEWeights
	_ func(*veritas.SessionLog, veritas.QoEWeights) float64                                                             = veritas.QoE
	_ func(*veritas.Abduction, float64, float64) float64                                                                = veritas.PredictNextChunkTime
	_ func(context.Context, veritas.FleetConfig, []veritas.FleetSpec, []veritas.FleetArm) (*veritas.FleetResult, error) = veritas.RunFleet
	_ func(veritas.CorpusConfig) ([]veritas.FleetSpec, error)                                                           = veritas.BuildCorpus
	_ func(veritas.CorpusConfig, []string, []float64) ([]veritas.FleetArm, error)                                       = veritas.FleetMatrix
	_ func() []string                                                                                                   = veritas.FleetScenarios
	_ func() []string                                                                                                   = veritas.FleetABRs
	_ func(string, veritas.WhatIf) (veritas.FleetArm, error)                                                            = veritas.NewFleetArm
	_ func(string, veritas.FleetStoreOptions) (*veritas.FleetStore, error)                                              = veritas.OpenStore
	_ func(string, ...string) (int, error)                                                                              = veritas.MergeStores
	_ func(*veritas.FleetStore, int) http.Handler                                                                       = veritas.NewStoreHandler
	_ func(context.Context, string, *veritas.FleetStore, int) error                                                     = veritas.ServeStore
)

// Old methods, pinned as method values.
func TestCompatMethodSet(t *testing.T) {
	var o veritas.Outcome
	for name, fn := range map[string]func() (float64, float64){
		"SSIMRange":    o.SSIMRange,
		"RebufRange":   o.RebufRange,
		"BitrateRange": o.BitrateRange,
	} {
		if fn == nil {
			t.Errorf("Outcome.%s lost", name)
		}
	}
}

// TestCompatShimsAnswerLikeTheCore spot-checks that a shim does not
// just compile but routes to the same core as the new surface.
func TestCompatShimsAnswerLikeTheCore(t *testing.T) {
	if got, want := veritas.FleetScenarios(), veritas.Scenarios(); len(got) != len(want) {
		t.Errorf("FleetScenarios %v != Scenarios %v", got, want)
	}
	if got, want := veritas.FleetABRs(), veritas.ABRs(); len(got) != len(want) {
		t.Errorf("FleetABRs %v != ABRs %v", got, want)
	}
	oldArm, err := veritas.NewFleetArm("a", veritas.WhatIf{NewABR: veritas.NewBBA})
	if err != nil {
		t.Fatal(err)
	}
	newArm, err := veritas.NewArm("a", veritas.WhatIf{NewABR: veritas.NewBBA})
	if err != nil {
		t.Fatal(err)
	}
	if oldArm.Name != newArm.Name || oldArm.Setting.BufferCap != newArm.Setting.BufferCap {
		t.Error("NewFleetArm diverges from NewArm")
	}
}
