package veritas

// The session layer: simulate one streaming session, invert its log
// into a posterior over latent bandwidth, and answer counterfactual and
// interventional queries about it. Batch work over corpora of sessions
// lives in campaign.go.

import (
	"errors"
	"math"

	"veritas/internal/abduction"
	"veritas/internal/abr"
	"veritas/internal/netem"
	"veritas/internal/player"
	"veritas/internal/tcp"
	"veritas/internal/trace"
	"veritas/internal/video"
)

// Core types re-exported from the implementation packages. The aliases
// are intentional: values flow freely between the facade and the
// internal packages used by cmd tools and experiments.
type (
	// Trace is a piecewise-constant bandwidth time series in Mbps.
	Trace = trace.Trace
	// TraceConfig parameterizes the synthetic FCC-like trace generator.
	TraceConfig = trace.GenConfig
	// SessionLog is what a deployed system records for one session.
	SessionLog = player.SessionLog
	// ChunkRecord is one chunk's log line (size, times, TCP state, ...).
	ChunkRecord = player.ChunkRecord
	// Metrics summarizes session quality (SSIM, rebuffering, bitrate).
	Metrics = player.Metrics
	// ABR chooses the next chunk's quality.
	ABR = abr.Algorithm
	// Video holds per-chunk, per-quality sizes and SSIMs.
	Video = video.Video
	// Quality is one rung of an encoding ladder.
	Quality = video.Quality
	// NetworkConfig describes the emulated path.
	NetworkConfig = netem.Config
	// TCPState is the transport control state logged at chunk starts.
	TCPState = tcp.State
	// AbductionConfig parameterizes GTBW inference.
	AbductionConfig = abduction.Config
	// Abduction is the inferred posterior over GTBW traces.
	Abduction = abduction.Abduction
)

// DefaultTraceConfig returns the paper's counterfactual-evaluation
// bandwidth regime: 3–8 Mbps FCC-like traces with 5 s steps.
func DefaultTraceConfig(seed int64) TraceConfig { return trace.DefaultFCC(seed) }

// GenerateTrace produces one synthetic bandwidth trace.
func GenerateTrace(cfg TraceConfig) (*Trace, error) { return trace.Generate(cfg) }

// GenerateTraceSet produces n traces with consecutive seeds.
func GenerateTraceSet(cfg TraceConfig, n int) ([]*Trace, error) {
	return trace.GenerateSet(cfg, n)
}

// ConstantTrace returns a trace holding mbps forever.
func ConstantTrace(mbps float64) *Trace { return trace.Constant(mbps) }

// TraceRegimes returns the names of the synthetic bandwidth regimes the
// trace generator knows ("fcc", "lte", "wifi"). Campaign scenarios (see
// Scenarios) are these plus the square-wave process.
func TraceRegimes() []string { return trace.Regimes() }

// NewMPC returns the RobustMPC algorithm (the paper's deployed ABR).
func NewMPC() ABR { return abr.NewMPC() }

// NewBBA returns the buffer-based algorithm.
func NewBBA() ABR { return abr.NewBBA() }

// NewBOLA returns BOLA Basic.
func NewBOLA() ABR { return abr.NewBOLA() }

// NewFestive returns the FESTIVE rate-based algorithm with gradual
// switching.
func NewFestive() ABR { return abr.NewFestive() }

// NewRandomABR returns an algorithm choosing qualities uniformly at
// random (used to build off-policy evaluation sets).
func NewRandomABR(seed int64) ABR { return abr.NewRandom(seed) }

// NewFixedABR always picks the given ladder rung.
func NewFixedABR(quality int) ABR { return &abr.Fixed{Quality: quality} }

// DefaultVideo synthesizes the 10-minute clip used across the paper's
// experiments (ladder 0.1–4 Mbps, SSIM anchors 0.908/0.986).
func DefaultVideo(seed int64) *Video {
	return video.MustSynthesize(video.DefaultConfig(seed))
}

// HigherQualityVideo synthesizes the same content on the Figure 11
// "higher qualities" ladder (2.7–8 Mbps).
func HigherQualityVideo(seed int64) *Video {
	cfg := video.DefaultConfig(seed)
	cfg.Ladder = video.HigherLadder()
	return video.MustSynthesize(cfg)
}

// DefaultNetwork returns the emulated testbed path: 160 ms RTT,
// slow-start restart, droptail loss, mild jitter.
func DefaultNetwork() NetworkConfig { return netem.DefaultConfig() }

// SessionConfig describes a streaming session to simulate. Video and
// Net default to DefaultVideo(1) and DefaultNetwork; BufferCap defaults
// to the paper's 5 s.
type SessionConfig struct {
	Trace     *Trace
	ABR       ABR
	Video     *Video
	Net       *NetworkConfig
	BufferCap float64
	MaxChunks int
}

// Session is a finished simulated session.
type Session struct {
	Log     *SessionLog
	Metrics Metrics
}

// RunSession simulates one video session over the trace and returns its
// log (the observables a deployed system would record) and metrics.
func RunSession(cfg SessionConfig) (*Session, error) {
	if cfg.Trace == nil {
		return nil, errors.New("veritas: SessionConfig.Trace is required")
	}
	if cfg.ABR == nil {
		return nil, errors.New("veritas: SessionConfig.ABR is required")
	}
	if cfg.Video == nil {
		cfg.Video = DefaultVideo(1)
	}
	net := netem.DefaultConfig()
	if cfg.Net != nil {
		net = *cfg.Net
	}
	if cfg.BufferCap == 0 {
		cfg.BufferCap = 5
	}
	log, m, err := player.Run(player.Config{
		Video:     cfg.Video,
		ABR:       cfg.ABR,
		Trace:     cfg.Trace,
		Net:       net,
		BufferCap: cfg.BufferCap,
		MaxChunks: cfg.MaxChunks,
	})
	if err != nil {
		return nil, err
	}
	return &Session{Log: log, Metrics: m}, nil
}

// Abduct inverts a session log into a posterior over latent GTBW
// traces: the Veritas abduction step. A zero AbductionConfig uses the
// paper's hyperparameters (δ=5 s, ε=0.5 Mbps, σ=0.5, K=5 samples).
func Abduct(log *SessionLog, cfg AbductionConfig) (*Abduction, error) {
	return abduction.Abduct(log, cfg)
}

// Baseline builds the comparison estimator the paper evaluates against:
// observed per-chunk throughput held over each download and linearly
// interpolated across off-periods.
func Baseline(log *SessionLog) (*Trace, error) {
	return abduction.BaselineTrace(log, 1)
}

// WhatIf describes a counterfactual "Setting B". NewABR is a factory
// because algorithms carry per-session state. Video defaults to
// DefaultVideo(1), Net to DefaultNetwork, BufferCap to 5 s.
type WhatIf struct {
	NewABR    func() ABR
	Video     *Video
	Net       *NetworkConfig
	BufferCap float64
}

func (w WhatIf) setting() (abduction.Setting, error) {
	if w.NewABR == nil {
		return abduction.Setting{}, errors.New("veritas: WhatIf.NewABR is required")
	}
	v := w.Video
	if v == nil {
		v = DefaultVideo(1)
	}
	net := netem.DefaultConfig()
	if w.Net != nil {
		net = *w.Net
	}
	buf := w.BufferCap
	if buf == 0 {
		buf = 5
	}
	return abduction.Setting{
		Video:     v,
		NewABR:    w.NewABR,
		BufferCap: buf,
		Net:       net,
	}, nil
}

// Outcome is the answer to a counterfactual query: the metrics the
// changed design achieves under the Baseline estimate and under each of
// Veritas's posterior GTBW samples.
type Outcome struct {
	Baseline Metrics
	Samples  []Metrics
}

// SSIMRange returns the Veritas (Low, High) range for average SSIM —
// the second-lowest and second-highest sample outcomes, as the paper
// reports.
func (o *Outcome) SSIMRange() (low, high float64) {
	return abduction.VeritasRange(o.Samples, abduction.MetricSSIM)
}

// RebufRange returns the Veritas (Low, High) range for the rebuffering
// ratio.
func (o *Outcome) RebufRange() (low, high float64) {
	return abduction.VeritasRange(o.Samples, abduction.MetricRebufRatio)
}

// BitrateRange returns the Veritas (Low, High) range for average
// bitrate in Mbps.
func (o *Outcome) BitrateRange() (low, high float64) {
	return abduction.VeritasRange(o.Samples, abduction.MetricAvgBitrate)
}

// Counterfactual answers "what would this session's quality have been
// under the changed design?" by replaying the what-if setting over the
// Baseline trace and every Veritas posterior sample.
func Counterfactual(abd *Abduction, w WhatIf) (*Outcome, error) {
	setting, err := w.setting()
	if err != nil {
		return nil, err
	}
	out, err := abd.Counterfactual(setting)
	if err != nil {
		return nil, err
	}
	return &Outcome{Baseline: out.Baseline, Samples: out.Samples}, nil
}

// Oracle replays the what-if setting over the true GTBW trace — the
// ideal benchmark available only in emulation, where the ground truth
// is known.
func Oracle(gt *Trace, w WhatIf) (Metrics, error) {
	setting, err := w.setting()
	if err != nil {
		return Metrics{}, err
	}
	return abduction.Replay(gt, setting)
}

// PredictDownloadTime answers the interventional query of the paper's
// §4.4: the expected download time of a hypothetical chunk of sizeBytes
// requested at startSecs with TCP state st, given everything the
// abduction learned from the session so far.
func PredictDownloadTime(abd *Abduction, startSecs float64, st TCPState, sizeBytes float64) float64 {
	return abd.PredictDownloadTime(startSecs, st, sizeBytes)
}

// QoEWeights parameterizes the linear QoE score; see
// DefaultQoEWeights.
type QoEWeights = player.QoEWeights

// DefaultQoEWeights returns the MPC paper's QoE-lin coefficients.
func DefaultQoEWeights() QoEWeights { return player.DefaultQoEWeights() }

// QoE computes the per-chunk-average linear quality-of-experience score
// of a session log (bitrate minus rebuffering and switching penalties).
func QoE(log *SessionLog, w QoEWeights) float64 { return player.QoE(log, w) }

// PredictNextChunkTime is a convenience wrapper predicting the download
// time of a chunk requested gapSecs after the last logged chunk ended,
// on the same connection. It returns NaN when the abduction carries no
// session log or the log has no records: there is no "last chunk" to
// anchor the prediction to.
func PredictNextChunkTime(abd *Abduction, gapSecs, sizeBytes float64) float64 {
	log := abd.Log()
	if log == nil || len(log.Records) == 0 {
		return math.NaN()
	}
	recs := log.Records
	last := recs[len(recs)-1]
	st := last.TCP
	st.LastSendGap = gapSecs
	return abd.PredictDownloadTime(last.End+gapSecs, st, sizeBytes)
}
