package veritas

// The persistence primitives under the campaign layer: direct access
// to the segmented corpus store for callers that need more than
// Campaign offers (compaction across campaigns, custom serving
// stacks). Most code should go through NewCampaign with WithStore.

import (
	"context"
	"net/http"
	"time"

	"veritas/internal/store"
)

type (
	// FleetStore is a segmented, append-only, checksummed store of
	// per-session fleet results. It implements the engine's Sink, so
	// a campaign streams to disk as workers finish sessions.
	FleetStore = store.Store
	// FleetStoreOptions configures segment rotation and read-only mode.
	FleetStoreOptions = store.Options
)

// OpenStore opens (or creates) a fleet result store directory,
// recovering automatically from a torn tail segment left by a crashed
// campaign. Campaign-managed stores (WithStore) are opened for you;
// OpenStore is the escape hatch for custom pipelines.
func OpenStore(dir string, opt FleetStoreOptions) (*FleetStore, error) {
	return store.Open(dir, opt)
}

// MergeStores compacts one or more campaign stores into a fresh store
// at dst: sessions are deduplicated by ID last-write-wins in srcs
// order (the source listed later wins) and superseded records dropped.
// The caller's ordering is the precedence; to fold the per-shard
// stores of a sharded campaign, use FoldShards, which orders by shard
// index instead of trusting however the directories were enumerated.
func MergeStores(dst string, srcs ...string) (int, error) {
	return store.Merge(dst, store.Options{}, srcs...)
}

// FoldShards compacts the per-shard stores of a sharded campaign (see
// WithShard) into one queryable corpus at dst. Sources carrying shard
// metadata are ordered by shard index — so duplicate session keys
// resolve last-write-wins by shard index, deterministically, however
// the shard directories were listed — and the campaign fingerprint is
// propagated into dst when the shards agree on it (conflicting
// fingerprints refuse to fold). The folded store's aggregate report is
// byte-identical to the report of a single unsharded run of the same
// campaign.
func FoldShards(dst string, srcs ...string) (int, error) {
	return store.Fold(dst, store.Options{}, srcs...)
}

// serveHTTP is the serving loop behind Campaign.Serve and the
// deprecated ServeStore: listen on addr until ctx is cancelled, then
// drain in-flight requests for up to five seconds. Request contexts
// deliberately do not derive from ctx: cancelling ctx triggers the
// graceful shutdown, which must be able to drain in-flight requests
// rather than abort them.
func serveHTTP(ctx context.Context, addr string, h http.Handler) error {
	srv := &http.Server{Addr: addr, Handler: h}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return srv.Shutdown(shutdownCtx)
	}
}
