package veritas_test

// The dispatched-campaign harness. TestMain makes the test binary a
// valid dispatch worker (exactly as cmd/fleet's main does), so
// Campaign.Dispatch can re-exec this binary as its shard workers —
// no go-build of cmd/fleet needed. The equivalence pin (one worker
// SIGKILLed mid-run, folded output byte-identical to a single-process
// run) lives in dispatch_unix_test.go.

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"veritas"
)

func TestMain(m *testing.M) {
	// When a dispatch supervisor under test re-execs this binary as a
	// shard worker (or the fleet harness re-execs it as an agent), run
	// that role and exit instead of the test suite. Worker first: agent
	// processes spawn workers that inherit the agent environment.
	veritas.DispatchWorkerMain()
	veritas.FleetAgentMain()
	os.Exit(m.Run())
}

// dispatchOptions is the campaign the dispatch harness runs: big
// enough that a shard survives long enough to be killed mid-run (3
// sessions per shard at 3 shards), small enough for a unit test.
func dispatchOptions() []veritas.CampaignOption {
	return []veritas.CampaignOption{
		veritas.WithScenarios("fcc", "lte"),
		veritas.WithSessions(3),
		veritas.WithChunks(25),
		veritas.WithSeed(3),
		veritas.WithSamples(2),
		veritas.WithMatrix([]string{"bba"}, []float64{5}),
	}
}

func TestDispatchValidation(t *testing.T) {
	ctx := context.Background()
	store := filepath.Join(t.TempDir(), "c.store")
	cases := []struct {
		name string
		opts []veritas.CampaignOption
		n    int
		want string
	}{
		{"no store", dispatchOptions(), 2, "needs WithStore"},
		{"zero shards", append(dispatchOptions(), veritas.WithStore(store)), 0, "at least 1"},
		{"read-only", append(dispatchOptions(), veritas.WithStore(store), veritas.WithReadOnlyStore()), 2, "read-only"},
		{"with shard", append(dispatchOptions(), veritas.WithStore(store), veritas.WithShard(0, 2)), 2, "mutually exclusive"},
		{"with corpus", []veritas.CampaignOption{
			veritas.WithCorpus(veritas.FleetSpec{ID: "x"}), veritas.WithStore(store)}, 2, "serialize"},
		{"with sink", append(dispatchOptions(), veritas.WithStore(store),
			veritas.WithSink(nopSink{})), 2, "WithDispatchEvents"},
		{"with progress", append(dispatchOptions(), veritas.WithStore(store),
			veritas.WithProgress(func(veritas.FleetSessionResult) {})), 2, "WithDispatchEvents"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, err := veritas.NewCampaign(tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			if _, err := c.Dispatch(ctx, tc.n); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Dispatch: err = %v, want mention of %q", err, tc.want)
			}
		})
	}
}

func TestDispatchOptionValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		opt  veritas.CampaignOption
		want string
	}{
		{"empty binary", veritas.WithDispatchBinary(""), "needs a path"},
		{"empty dir", veritas.WithDispatchDir(""), "needs a directory"},
		{"negative restarts", veritas.WithDispatchRestarts(-1), "negative"},
		{"zero backoff", veritas.WithDispatchBackoff(0), "must be positive"},
		{"nil events", veritas.WithDispatchEvents(nil), "nil"},
		{"nil progress counts", veritas.WithProgressCounts(nil), "nil"},
	} {
		if _, err := veritas.NewCampaign(tc.opt); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

// TestDispatchRefusesOpenStore: the fold replaces the store directory
// on disk, which must not happen under a live handle in this process.
func TestDispatchRefusesOpenStore(t *testing.T) {
	c, err := veritas.NewCampaign(append(dispatchOptions(),
		veritas.WithStore(filepath.Join(t.TempDir(), "c.store")))...)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Store(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Dispatch(context.Background(), 2); err == nil ||
		!strings.Contains(err.Error(), "Close it before Dispatch") {
		t.Errorf("Dispatch with an open store handle: err = %v", err)
	}
}

type nopSink struct{}

func (nopSink) Put(veritas.FleetSessionResult) error { return nil }

// TestWithProgressCounts pins the in-process progress hook the worker
// protocol is built on: every completed session reports, the final
// count equals the executed total, and the totals account for resume
// skips and shard partitions.
func TestWithProgressCounts(t *testing.T) {
	var (
		calls  []int
		totals = map[int]bool{}
	)
	c, err := veritas.NewCampaign(append(quickOptions(),
		veritas.WithProgressCounts(func(done, total int) {
			calls = append(calls, done)
			totals[total] = true
		}),
		veritas.WithWorkers(1), // serialize so the slice needs no lock
	)...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != res.Executed {
		t.Errorf("progress called %d times, want %d", len(calls), res.Executed)
	}
	if len(totals) != 1 || !totals[res.Executed] {
		t.Errorf("progress totals = %v, want exactly {%d}", totals, res.Executed)
	}
	highest := 0
	for _, d := range calls {
		if d > highest {
			highest = d
		}
	}
	if highest != res.Executed {
		t.Errorf("final progress count %d, want %d", highest, res.Executed)
	}
}
