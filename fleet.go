package veritas

// The networked fleet layer: Campaign.ServeFleet is Campaign.Dispatch
// with the worker pool spread across machines. The dispatching process
// becomes a control plane — it computes nothing itself — and any number
// of veritasd agents (or any binary calling FleetAgentMain) join over
// HTTP, lease shards, run them with the exact same re-exec'd
// DispatchWorkerMain machinery a local dispatch uses, and ship their
// shard stores back for verification and folding:
//
//	// the dispatcher machine
//	c, _ := veritas.NewCampaign(
//		veritas.WithSessions(25),
//		veritas.WithMatrix([]string{"bba", "bola"}, []float64{5, 30}),
//		veritas.WithStore("campaign.store"),
//		veritas.WithFleet("0.0.0.0:9300"),
//	)
//	res, _ := c.ServeFleet(ctx, 8) // 8 shards, leased to whoever joins
//	_ = c.WriteReport(os.Stdout)   // byte-identical to a 1-process run
//
//	// each worker machine
//	veritasd -join http://dispatcher:9300 -dir /tmp/agent
//
// Leases are TTL'd and renewed by heartbeat; an agent that dies (or a
// straggler past WithFleetMaxLease) has its shard re-leased to another
// agent — work stealing. Shard determinism plus resume/fold semantics
// guarantee the folded report is byte-identical no matter how leases
// moved.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"veritas/internal/dispatch"
	"veritas/internal/fleetd"
)

// FleetDispatchResult summarizes a completed networked dispatch: the
// accepted shard store directories, the steal count (leases revoked
// from dead or straggling agents), the folded session count, and every
// agent that registered. (FleetResult, the per-session result row, is
// unrelated legacy naming from the pre-Campaign API.)
type FleetDispatchResult = fleetd.Result

// Fleet lifecycle event types, re-exported so WithDispatchEvents
// callbacks can switch on them alongside the local dispatch events.
const (
	// DispatchLease: a shard was leased to an agent (Agent/Epoch set).
	DispatchLease = dispatch.EventLease
	// DispatchSteal: a lease expired (missed heartbeats or straggler
	// deadline) and its shard went back to the pending queue.
	DispatchSteal = dispatch.EventSteal
	// DispatchUpload: an agent's shard store was verified and accepted.
	DispatchUpload = dispatch.EventUpload
)

// fleetAgentEnv carries an agent config to a process started as a
// fleet agent; its presence is what turns FleetAgentMain into the
// agent. (Distinct from dispatchWorkerEnv: an agent *spawns* workers,
// with dispatchWorkerEnv set, which is why DispatchWorkerMain must be
// called before FleetAgentMain in main.)
const fleetAgentEnv = "VERITAS_FLEET_AGENT"

// WithFleet makes the campaign dispatchable over the network: ServeFleet
// listens on addr (host:port; port 0 picks a free port, see
// WithFleetReady) for veritasd agents to join.
func WithFleet(addr string) CampaignOption {
	return func(o *campaignOptions) error {
		if addr == "" {
			return errors.New("veritas: WithFleet needs a listen address")
		}
		o.fleetAddr = addr
		return nil
	}
}

// WithFleetLease sets the lease TTL (default 10s): an agent that goes
// this long without a heartbeat loses its shard to the next agent that
// asks. Shorter TTLs steal faster but tolerate less network jitter;
// heartbeats are sent at TTL/3.
func WithFleetLease(ttl time.Duration) CampaignOption {
	return func(o *campaignOptions) error {
		if ttl <= 0 {
			return fmt.Errorf("veritas: fleet lease TTL %v must be positive", ttl)
		}
		o.fleetTTL = ttl
		return nil
	}
}

// WithFleetMaxLease sets a hard per-lease deadline: a shard still
// unfinished this long after it was leased is re-leased even if its
// agent heartbeats on time, so one straggling machine cannot hold the
// campaign's tail hostage. Zero (the default) disables the deadline.
// Size it generously — a stolen straggler's partial work is not lost
// (the re-leased worker resumes from whatever the store holds if the
// same agent reacquires it), but bouncing a healthy slow shard between
// agents burns its lease budget.
func WithFleetMaxLease(d time.Duration) CampaignOption {
	return func(o *campaignOptions) error {
		if d <= 0 {
			return fmt.Errorf("veritas: fleet max lease %v must be positive (omit the option for no deadline)", d)
		}
		o.fleetMaxLease = d
		return nil
	}
}

// WithFleetReady registers fn to be called once ServeFleet's listener
// is bound, with the concrete address — the way to learn the port when
// WithFleet was given ":0", and the hook tests and CLIs use to know
// when agents may join.
func WithFleetReady(fn func(addr string)) CampaignOption {
	return func(o *campaignOptions) error {
		if fn == nil {
			return errors.New("veritas: WithFleetReady(nil)")
		}
		o.fleetReady = fn
		return nil
	}
}

// ServeFleet executes the campaign as a networked fleet: it binds the
// WithFleet address, leases the n shards to whatever agents join, and
// supervises the campaign to completion — relaying each agent's
// progress, per-agent-labeled telemetry and traces into the fleet
// status view (/v1/status, /metrics, /v1/trace on the fleet listener),
// verifying every uploaded shard store (CRC framing, shard assignment,
// campaign fingerprint, segment integrity) before acceptance, and
// re-leasing shards away from agents that miss heartbeats
// (WithFleetLease) or straggle past WithFleetMaxLease. When every
// shard's store is accepted they are folded into the campaign store;
// the folded report — Report, WriteReport, Serve, /v1/report — is
// byte-identical to a single-process run of the same campaign, no
// matter how many agents ran, died, or had their work stolen.
//
// The constraints of Dispatch apply (WithStore required; no
// WithCorpus/WithArms/WithDeployedABR/WithSink/WithProgress/WithShard).
// Cancelling ctx aborts the dispatch; accepted shard stores persist
// under the dispatch directory, so rerunning resumes — already
// accepted shards are adopted, not recomputed.
func (c *Campaign) ServeFleet(ctx context.Context, n int) (*FleetDispatchResult, error) {
	if n < 1 {
		return nil, fmt.Errorf("veritas: fleet shard count %d must be at least 1", n)
	}
	o := c.opt
	switch {
	case o.fleetAddr == "":
		return nil, errors.New("veritas: ServeFleet needs WithFleet(addr): agents have to reach the dispatcher somewhere")
	case o.storeDir == "":
		return nil, errors.New("veritas: ServeFleet needs WithStore: the folded corpus has to land somewhere")
	case o.readOnly:
		return nil, errors.New("veritas: campaign store is read-only (drop WithReadOnlyStore to dispatch)")
	case o.shardCount > 0:
		return nil, errors.New("veritas: WithShard and ServeFleet are mutually exclusive: the fleet dispatcher owns the shard partition")
	case o.corpus != nil || o.armsSet || o.newDeployedABR != nil:
		return nil, errors.New("veritas: ServeFleet cannot serialize WithCorpus/WithArms/WithDeployedABR across processes; run those campaigns in-process or shard them by hand")
	case len(o.sinks) > 0 || o.onResult != nil || o.onProgress != nil:
		return nil, errors.New("veritas: WithSink/WithProgress/WithProgressCounts do not cross the worker process boundary; use WithDispatchEvents")
	}
	if err := c.beginDispatch(); err != nil {
		return nil, err
	}
	defer c.end(nil)

	storeDir := filepath.Clean(o.storeDir)
	dir := o.dispatchDir
	if dir == "" {
		dir = storeDir + ".shards"
	}
	// The lease's worker spec: every result-shaping option, no shard
	// assignment (the agent fills shard/of/store per lease). Unlike a
	// local dispatch, the worker count is not split across shards —
	// each agent machine runs one worker at a time and should use its
	// own capacity (or the explicit WithWorkers).
	spec, err := json.Marshal(workerSpec{
		Scenarios: o.scenarios,
		Sessions:  o.sessionsPer,
		Chunks:    o.chunks,
		Samples:   o.samples,
		Seed:      o.seed,
		Buffer:    o.deployedBuffer,
		ABRs:      o.abrs,
		Buffers:   o.buffers,
		Workers:   o.workers,
		NoCache:   o.disableCache,
		NoTelem:   o.noTelemetry,
		NoTrace:   o.noTracing,
	})
	if err != nil {
		return nil, err
	}

	userEvents := o.dispatchEvents
	d, err := fleetd.New(fleetd.Config{
		Shards:       n,
		Dir:          dir,
		FoldInto:     storeDir,
		Fingerprints: c.fingerprints(),
		Spec:         spec,
		LeaseTTL:     o.fleetTTL,
		MaxLease:     o.fleetMaxLease,
		OnEvent:      userEvents,
		Telemetry:    c.reg,
		Tracer:       c.trc,
	})
	if err != nil {
		return nil, err
	}
	defer d.Close()

	ln, err := net.Listen("tcp", o.fleetAddr)
	if err != nil {
		return nil, fmt.Errorf("veritas: fleet listener: %w", err)
	}
	srv := &http.Server{Handler: d.Handler()}
	go srv.Serve(ln)
	defer srv.Close()
	if o.fleetReady != nil {
		o.fleetReady(ln.Addr().String())
	}

	res, err := d.Wait(ctx)
	// Stash the agents' streamed trace sets (even on failure — partial
	// traces are a crash post-mortem) so Trace and /v1/trace keep
	// serving the fleet-wide view after the dispatch.
	c.mu.Lock()
	c.workerTraces = d.WorkerTraces()
	c.mu.Unlock()
	return res, err
}

// FleetAgentConfig parameterizes RunFleetAgent: one machine's worth of
// fleet capacity.
type FleetAgentConfig struct {
	// Dispatcher is the fleet dispatcher's base URL, e.g.
	// "http://dispatcher:9300" (bare host:port works too). Required.
	Dispatcher string
	// Name is the agent's requested id (the dispatcher de-duplicates);
	// empty means dispatcher-assigned. Agent ids label everything the
	// agent streams into the fleet view: status rows, telemetry
	// (agent="..."), traces.
	Name string
	// Dir is the parent directory for the agent's local shard stores.
	// Reusing it across runs lets a re-leased shard resume from
	// whatever this agent already computed. Required.
	Dir string
	// Binary is the worker binary to re-exec per leased shard; it must
	// call DispatchWorkerMain at the top of main. Empty means the
	// current executable.
	Binary string
	// Restarts is the local crash-restart budget per lease (default
	// 2); when exhausted the lease is released back to the dispatcher.
	Restarts int
	// Backoff is the local restart backoff (default 500ms).
	Backoff time.Duration
	// Events, when set, receives the agent's local worker lifecycle
	// event stream.
	Events func(DispatchEvent) `json:"-"`
	// Logf, when set, receives one line per agent decision (leases,
	// uploads, steals observed).
	Logf func(format string, args ...any) `json:"-"`
}

// RunFleetAgent joins a fleet dispatcher and works shard leases until
// the campaign completes, ctx is cancelled, or the dispatcher goes
// away. It is the agent side of Campaign.ServeFleet; cmd/veritasd
// wraps it in a daemon.
//
// The result is non-nil whenever registration succeeded, even
// alongside an error. ErrFleetDispatcherGone (possibly wrapped) means
// the dispatcher stopped answering — for an agent outliving a
// completed campaign that is a normal way to exit.
func RunFleetAgent(ctx context.Context, cfg FleetAgentConfig) (*FleetAgentResult, error) {
	binary := cfg.Binary
	if binary == "" {
		exe, err := os.Executable()
		if err != nil {
			return nil, fmt.Errorf("veritas: resolving the worker binary: %w", err)
		}
		binary = exe
	}
	restarts := cfg.Restarts
	if restarts == 0 {
		restarts = dispatch.DefaultMaxRestarts
	} else if restarts < 0 {
		restarts = 0
	}
	return fleetd.RunAgent(ctx, fleetd.AgentConfig{
		Dispatcher:  cfg.Dispatcher,
		Name:        cfg.Name,
		Dir:         cfg.Dir,
		MaxRestarts: restarts,
		Backoff:     cfg.Backoff,
		OnEvent:     cfg.Events,
		Logf:        cfg.Logf,
		Command: func(raw json.RawMessage, shard, of int, storeDir string) (*exec.Cmd, error) {
			// The lease carries the dispatcher campaign's result-shaping
			// spec; the agent adds the shard assignment and its local
			// store, and hands the whole thing to the worker the same
			// way a local dispatch does.
			var spec workerSpec
			if len(raw) > 0 {
				if err := json.Unmarshal(raw, &spec); err != nil {
					return nil, fmt.Errorf("veritas: decoding lease spec: %w", err)
				}
			}
			spec.Shard = shard
			spec.Of = of
			spec.Store = storeDir
			b, err := json.Marshal(spec)
			if err != nil {
				return nil, err
			}
			cmd := exec.Command(binary)
			// Strip this agent's own trigger from the child env: the
			// worker must run DispatchWorkerMain, and must not become
			// another agent under a main that orders the entrypoints
			// differently.
			env := os.Environ()
			kept := env[:0]
			for _, kv := range env {
				if !strings.HasPrefix(kv, fleetAgentEnv+"=") {
					kept = append(kept, kv)
				}
			}
			cmd.Env = append(kept, dispatchWorkerEnv+"="+string(b))
			return cmd, nil
		},
	})
}

// FleetAgentResult summarizes an agent's run: leases worked, uploads
// accepted, leases lost to stealing, leases released after local
// failure, local worker restarts.
type FleetAgentResult = fleetd.AgentResult

// ErrFleetDispatcherGone is returned (possibly wrapped) by
// RunFleetAgent when the dispatcher stops answering.
var ErrFleetDispatcherGone = fleetd.ErrDispatcherGone

// FleetAgentMain is the agent entrypoint for re-exec'd processes: when
// the VERITAS_FLEET_AGENT environment variable holds a JSON
// FleetAgentConfig, the process runs that agent until the campaign
// completes (exit 0) or fails (exit 1), handling SIGINT/SIGTERM
// gracefully; otherwise it returns immediately and main proceeds.
//
// Call it after DispatchWorkerMain — an agent's worker children
// inherit its environment, and the worker trigger must win.
func FleetAgentMain() {
	raw := os.Getenv(fleetAgentEnv)
	if raw == "" {
		return
	}
	var cfg FleetAgentConfig
	if err := json.Unmarshal([]byte(raw), &cfg); err != nil {
		fmt.Fprintln(os.Stderr, "fleet agent:", err)
		os.Exit(1)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if _, err := RunFleetAgent(ctx, cfg); err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "fleet agent:", err)
		os.Exit(1)
	}
	os.Exit(0)
}
