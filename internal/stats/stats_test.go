package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v, want 2.5", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); got != 4 {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); got != 2 {
		t.Errorf("StdDev = %v, want 2", got)
	}
}

func TestPercentileEndpoints(t *testing.T) {
	xs := []float64{5, 1, 3}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("P0 = %v, want 1", got)
	}
	if got := Percentile(xs, 100); got != 5 {
		t.Errorf("P100 = %v, want 5", got)
	}
	if got := Percentile(xs, 50); got != 3 {
		t.Errorf("P50 = %v, want 3", got)
	}
}

func TestPercentileInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	if got := Percentile(xs, 25); got != 2.5 {
		t.Errorf("P25 = %v, want 2.5", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Percentile mutated input: %v", xs)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Errorf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
}

func TestBoxOrdering(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, math.Mod(v, 1e6))
			}
		}
		if len(xs) == 0 {
			return true
		}
		b := Box(xs)
		return b.Min <= b.Q1 && b.Q1 <= b.Median && b.Median <= b.Q3 && b.Q3 <= b.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCDFMonotone(t *testing.T) {
	pts := CDF([]float64{4, 1, 3, 2})
	if len(pts) != 4 {
		t.Fatalf("CDF has %d points, want 4", len(pts))
	}
	if !sort.SliceIsSorted(pts, func(i, j int) bool { return pts[i].X < pts[j].X }) {
		t.Error("CDF points not sorted by X")
	}
	if pts[len(pts)-1].P != 1 {
		t.Errorf("CDF final P = %v, want 1", pts[len(pts)-1].P)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].P < pts[i-1].P {
			t.Error("CDF not monotone in P")
		}
	}
}

func TestCDFAt(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := CDFAt(xs, 2.5); got != 0.5 {
		t.Errorf("CDFAt(2.5) = %v, want 0.5", got)
	}
	if got := CDFAt(xs, 0); got != 0 {
		t.Errorf("CDFAt(0) = %v, want 0", got)
	}
	if got := CDFAt(xs, 10); got != 1 {
		t.Errorf("CDFAt(10) = %v, want 1", got)
	}
}

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	if got := Pearson(xs, ys); math.Abs(got-1) > 1e-12 {
		t.Errorf("Pearson = %v, want 1", got)
	}
	neg := []float64{8, 6, 4, 2}
	if got := Pearson(xs, neg); math.Abs(got+1) > 1e-12 {
		t.Errorf("Pearson = %v, want -1", got)
	}
}

func TestPearsonConstantIsNaN(t *testing.T) {
	if !math.IsNaN(Pearson([]float64{1, 1}, []float64{2, 3})) {
		t.Error("Pearson with constant input should be NaN")
	}
}

func TestRMSEAndMAE(t *testing.T) {
	pred := []float64{1, 2, 3}
	truth := []float64{1, 2, 7}
	wantRMSE := math.Sqrt(16.0 / 3)
	if got := RMSE(pred, truth); math.Abs(got-wantRMSE) > 1e-12 {
		t.Errorf("RMSE = %v, want %v", got, wantRMSE)
	}
	if got := MAE(pred, truth); math.Abs(got-4.0/3) > 1e-12 {
		t.Errorf("MAE = %v, want %v", got, 4.0/3)
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0.1, 0.2, 0.9, -5, 99}
	h := Histogram(xs, 0, 1, 2)
	if h[0] != 3 || h[1] != 2 {
		t.Errorf("Histogram = %v, want [3 2] (outliers clamped)", h)
	}
	if Histogram(xs, 0, 1, 0) != nil {
		t.Error("Histogram with 0 bins should be nil")
	}
}
