// Package stats provides the summary statistics the Veritas experiment
// harness reports: means, percentiles, empirical CDFs and box-plot
// five-number summaries.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs, or NaN for empty input.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Percentile returns the p-th percentile (p in [0, 100]) using linear
// interpolation between order statistics. NaN for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

func percentileSorted(sorted []float64, p float64) float64 {
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Percentiles returns the percentile of xs at every rank in ps (each in
// [0, 100]), sorting once however many ranks are asked for. Nil for
// empty xs.
func Percentiles(xs []float64, ps []float64) []float64 {
	if len(xs) == 0 || len(ps) == 0 {
		return nil
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	out := make([]float64, len(ps))
	for i, p := range ps {
		out[i] = percentileSorted(sorted, p)
	}
	return out
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Min returns the minimum of xs, or NaN for empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or NaN for empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// BoxStats is a five-number summary plus the mean, the shape reported for
// each box in the paper's box plots (Figure 2a).
type BoxStats struct {
	Min, Q1, Median, Q3, Max, Mean float64
	N                              int
}

// Box computes the five-number summary of xs.
func Box(xs []float64) BoxStats {
	if len(xs) == 0 {
		nan := math.NaN()
		return BoxStats{Min: nan, Q1: nan, Median: nan, Q3: nan, Max: nan, Mean: nan}
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return BoxStats{
		Min:    sorted[0],
		Q1:     percentileSorted(sorted, 25),
		Median: percentileSorted(sorted, 50),
		Q3:     percentileSorted(sorted, 75),
		Max:    sorted[len(sorted)-1],
		Mean:   Mean(xs),
		N:      len(xs),
	}
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	X float64 // value
	P float64 // fraction of samples <= X
}

// CDF returns the empirical CDF of xs evaluated at every sample point.
func CDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	out := make([]CDFPoint, len(sorted))
	n := float64(len(sorted))
	for i, x := range sorted {
		out[i] = CDFPoint{X: x, P: float64(i+1) / n}
	}
	return out
}

// CDFAt returns the empirical CDF of xs evaluated at x (fraction <= x).
func CDFAt(xs []float64, x float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var c int
	for _, v := range xs {
		if v <= x {
			c++
		}
	}
	return float64(c) / float64(len(xs))
}

// Pearson returns the Pearson correlation of paired samples. NaN when
// either side is constant or the inputs are empty/unequal length.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) == 0 {
		return math.NaN()
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// RMSE returns the root mean squared error between predictions and truth.
func RMSE(pred, truth []float64) float64 {
	if len(pred) != len(truth) || len(pred) == 0 {
		return math.NaN()
	}
	var s float64
	for i := range pred {
		d := pred[i] - truth[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(pred)))
}

// MAE returns the mean absolute error between predictions and truth.
func MAE(pred, truth []float64) float64 {
	if len(pred) != len(truth) || len(pred) == 0 {
		return math.NaN()
	}
	var s float64
	for i := range pred {
		s += math.Abs(pred[i] - truth[i])
	}
	return s / float64(len(pred))
}

// Histogram counts xs into nbins equal-width bins over [lo, hi]. Samples
// outside the range are clamped into the first/last bin.
func Histogram(xs []float64, lo, hi float64, nbins int) []int {
	if nbins <= 0 || hi <= lo {
		return nil
	}
	counts := make([]int, nbins)
	w := (hi - lo) / float64(nbins)
	for _, x := range xs {
		i := int((x - lo) / w)
		if i < 0 {
			i = 0
		}
		if i >= nbins {
			i = nbins - 1
		}
		counts[i]++
	}
	return counts
}
