package experiments

import (
	"context"
	"fmt"

	"veritas/internal/abduction"
	"veritas/internal/abr"
	"veritas/internal/engine"
	"veritas/internal/fugu"
	"veritas/internal/stats"
)

func init() {
	register("fig12", "Interventional download-time prediction: FuguNN vs Veritas", fig12)
}

// fig12 reproduces §4.4: FuguNN is trained on MPC sessions over traces
// spanning 0.5–10 Mbps, then both FuguNN and Veritas predict chunk
// download times on sessions where bitrates were chosen at random —
// chunk sequences the deployed ABR would never produce. FuguNN's
// associational model underestimates; Veritas abduces the GTBW from the
// session prefix and stays near the diagonal.
func fig12(s Scale) (*Table, error) {
	trainTraces, err := wideTraces(s.Seed+20_000, s.FuguTraces)
	if err != nil {
		return nil, err
	}
	vid := testVideo(s)
	logs, err := batchSessions(s, vid, trainTraces,
		func(int) func() abr.Algorithm { return func() abr.Algorithm { return abr.NewMPC() } },
		func(i int) int64 { return s.Seed + int64(i) })
	if err != nil {
		return nil, err
	}
	ds := fugu.BuildDataset(logs, fugu.DefaultK)
	pred, err := fugu.TrainPredictor(ds, fugu.PredictorConfig{
		Seed:  s.Seed,
		Train: fugu.TrainConfig{Epochs: 40, Seed: s.Seed + 1},
	})
	if err != nil {
		return nil, err
	}

	testTraces, err := wideTraces(s.Seed+30_000, s.TestTraces)
	if err != nil {
		return nil, err
	}
	testLogs, err := batchSessions(s, vid, testTraces,
		func(i int) func() abr.Algorithm {
			return func() abr.Algorithm { return abr.NewRandom(s.Seed + int64(i)*7) }
		},
		func(i int) int64 { return s.Seed + int64(1000+i) })
	if err != nil {
		return nil, err
	}

	// Every sampled prefix becomes one engine session: a pre-recorded
	// log to invert plus a single interventional query — the per-prefix
	// abductions were the serial bottleneck of this figure.
	type point struct{ actual, fuguP, veritasP float64 }
	var pts []point
	var specs []engine.SessionSpec
	for _, log := range testLogs {
		step := len(log.Records) / 10
		if step < 1 {
			step = 1
		}
		for n := fugu.DefaultK; n < len(log.Records); n += step {
			rec := log.Records[n]
			hist, err := fugu.HistoryFromLog(log, n, fugu.DefaultK)
			if err != nil {
				return nil, err
			}
			fp, err := pred.Predict(hist, rec.SizeBytes)
			if err != nil {
				return nil, err
			}
			pts = append(pts, point{actual: rec.DownloadSeconds(), fuguP: fp})
			specs = append(specs, engine.SessionSpec{
				ID:      fmt.Sprintf("prefix-%03d", len(specs)),
				Log:     log.Prefix(n),
				Abduct:  abduction.Config{NumSamples: 1, Seed: s.Seed + int64(n)},
				Predict: []engine.PredictQuery{{StartSecs: rec.Start, TCP: rec.TCP, SizeBytes: rec.SizeBytes}},
			})
		}
	}
	res, err := engine.Run(context.Background(), engineConfig(s), specs, nil)
	if err != nil {
		return nil, err
	}
	for i, sr := range res.Sessions {
		pts[i].veritasP = sr.Predictions[0]
	}

	t := &Table{
		ID:     "fig12",
		Title:  "Predicted vs true download time on random-bitrate sessions",
		Header: []string{"true DL time bucket (s)", "n", "mean true", "mean Fugu", "mean Veritas"},
	}
	buckets := []struct {
		label  string
		lo, hi float64
	}{
		{"0-0.5", 0, 0.5}, {"0.5-1", 0.5, 1}, {"1-2", 1, 2},
		{"2-5", 2, 5}, {"5-10", 5, 10}, {">10", 10, 1e18},
	}
	for _, b := range buckets {
		var act, fp, vp []float64
		for _, p := range pts {
			if p.actual >= b.lo && p.actual < b.hi {
				act = append(act, p.actual)
				fp = append(fp, p.fuguP)
				vp = append(vp, p.veritasP)
			}
		}
		if len(act) == 0 {
			continue
		}
		t.AddRow(b.label, len(act), stats.Mean(act), stats.Mean(fp), stats.Mean(vp))
	}

	var fuguUnder, veritasErr, fuguErr []float64
	for _, p := range pts {
		fuguUnder = append(fuguUnder, p.actual-p.fuguP) // positive = underestimate
		fuguErr = append(fuguErr, abs(p.fuguP-p.actual))
		veritasErr = append(veritasErr, abs(p.veritasP-p.actual))
	}
	p90Under := stats.Percentile(fuguUnder, 90)
	worstUnder := stats.Max(fuguUnder)
	t.AddRow("MAE", len(pts), "", stats.Mean(fuguErr), stats.Mean(veritasErr))
	t.AddRow("Fugu underestimate P90 / max", "", "", p90Under, worstUnder)
	t.Notes = append(t.Notes, fmt.Sprintf(
		"Fugu underestimates 10%% of chunks by ≥ %.2g s (paper: 5.8 s), worst case %.2g s (paper: 35 s)",
		p90Under, worstUnder))
	if stats.Mean(veritasErr) < stats.Mean(fuguErr) && p90Under > 0 {
		t.Notes = append(t.Notes,
			"SHAPE OK: Veritas tracks the diagonal while FuguNN systematically underestimates long downloads (paper Fig 12)")
	} else {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"SHAPE CHECK: MAE fugu %.3g vs veritas %.3g", stats.Mean(fuguErr), stats.Mean(veritasErr)))
	}
	return t, nil
}
