package experiments

import (
	"encoding/json"
	"strings"
	"testing"
)

func demoTable() *Table {
	t := &Table{
		ID:     "demo",
		Title:  "demo table",
		Header: []string{"name", "value"},
		Notes:  []string{"a note"},
	}
	t.AddRow("x", 1.25)
	t.AddRow("comma,cell", 2)
	return t
}

func TestRenderCSV(t *testing.T) {
	var sb strings.Builder
	if err := demoTable().RenderCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"# demo: demo table", "name,value", "x,1.25", `"comma,cell",2`, "# note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("CSV missing %q:\n%s", want, out)
		}
	}
}

func TestRenderJSON(t *testing.T) {
	var sb strings.Builder
	if err := demoTable().RenderJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var back Table
	if err := json.Unmarshal([]byte(sb.String()), &back); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if back.ID != "demo" || len(back.Rows) != 2 || back.Rows[0][1] != "1.25" {
		t.Errorf("JSON round trip lost data: %+v", back)
	}
}

func TestRenderAs(t *testing.T) {
	for _, f := range []string{FormatText, FormatCSV, FormatJSON, ""} {
		var sb strings.Builder
		if err := demoTable().RenderAs(&sb, f); err != nil {
			t.Errorf("format %q: %v", f, err)
		}
		if sb.Len() == 0 {
			t.Errorf("format %q produced no output", f)
		}
	}
	var sb strings.Builder
	if err := demoTable().RenderAs(&sb, "xml"); err == nil {
		t.Error("unknown format should error")
	}
}
