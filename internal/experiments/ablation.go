package experiments

import (
	"context"
	"fmt"
	"math"

	"veritas/internal/abduction"
	"veritas/internal/abr"
	"veritas/internal/engine"
	"veritas/internal/hmm"
	"veritas/internal/stats"
	"veritas/internal/trace"
)

// The ablations go beyond the paper's figures: they quantify the
// contribution of each design choice DESIGN.md calls out — the TCP-state
// control variables, the tridiagonal stability prior, the emission noise
// σ, and the number of posterior samples K.
func init() {
	register("abl-tcpstate", "Ablation: abduction without the TCP-state control variables", ablTCPState)
	register("abl-prior", "Ablation: transition prior (tridiagonal stay-prob sweep vs uniform)", ablPrior)
	register("abl-sigma", "Ablation: emission noise σ sweep", ablSigma)
	register("abl-em", "Ablation: fixed tridiagonal prior vs Baum-Welch-learned transitions", ablEM)
}

// inferRMSE abduces with the given config and returns the most-likely
// trace's RMSE against the ground truth, averaged across the scale's
// traces. The per-trace sessions run batched on the fleet engine with
// retained abductions; only one posterior sample is drawn since the
// Viterbi trace is sample-independent.
func inferRMSE(s Scale, cfg abduction.Config) (meanRMSE float64, err error) {
	traces, err := regimeTraces(s)
	if err != nil {
		return 0, err
	}
	vid := testVideo(s)
	corpus := make([]engine.SessionSpec, len(traces))
	for i, gt := range traces {
		c := cfg
		c.Seed = s.Seed + int64(i)
		c.NumSamples = 1
		net := testbedNet(s.Seed + int64(i))
		corpus[i] = engine.SessionSpec{
			ID:        fmt.Sprintf("abl-%03d", i),
			Trace:     gt,
			Video:     vid,
			NewABR:    func() abr.Algorithm { return abr.NewMPC() },
			BufferCap: settingABuffer,
			Net:       &net,
			Abduct:    c,
		}
	}
	ecfg := engineConfig(s)
	ecfg.KeepAbductions = true
	res, err := engine.Run(context.Background(), ecfg, corpus, nil)
	if err != nil {
		return 0, err
	}
	var sum float64
	for i, sr := range res.Sessions {
		recs := sr.Log.Records
		horizon := recs[len(recs)-1].End
		sum += traceRMSE(sr.Abd.MostLikelyTrace(), traces[i], horizon)
	}
	return sum / float64(len(res.Sessions)), nil
}

// traceRMSE samples both traces at 1 s over [0, horizon].
func traceRMSE(est, truth *trace.Trace, horizon float64) float64 {
	var sum float64
	var n int
	for t := 0.0; t < horizon; t++ {
		d := est.At(t) - truth.At(t)
		sum += d * d
		n++
	}
	return math.Sqrt(sum / float64(n))
}

func ablTCPState(s Scale) (*Table, error) {
	full, err := inferRMSE(s, abduction.Config{})
	if err != nil {
		return nil, err
	}
	ablated, err := inferRMSE(s, abduction.Config{IgnoreTCPState: true})
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "abl-tcpstate",
		Title:  "GTBW recovery with and without the TCP-state control variables",
		Header: []string{"variant", "mean RMSE vs GTBW (Mbps)"},
	}
	t.AddRow("Veritas (with W_sn)", full)
	t.AddRow("no TCP state (warm-connection assumption)", ablated)
	if full < ablated {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"SHAPE OK: conditioning on W_sn improves recovery by %.0f%% — the paper's control variables carry real information",
			(1-full/ablated)*100))
	} else {
		t.Notes = append(t.Notes, "SHAPE MISS: removing the TCP state did not hurt recovery")
	}
	return t, nil
}

func ablPrior(s Scale) (*Table, error) {
	t := &Table{
		ID:     "abl-prior",
		Title:  "GTBW recovery under different transition priors",
		Header: []string{"prior", "mean RMSE vs GTBW (Mbps)"},
	}
	type variant struct {
		label string
		cfg   hmm.Config
	}
	base := hmm.DefaultConfig(12)
	variants := []variant{}
	for _, stay := range []float64{0.5, 0.8, 0.95} {
		c := base
		c.StayProb = stay
		variants = append(variants, variant{fmt.Sprintf("tridiagonal stay=%.2f", stay), c})
	}
	{
		c := base
		c.Prior = "uniform"
		variants = append(variants, variant{"uniform (no structure)", c})
	}
	var rmses []float64
	for _, v := range variants {
		r, err := inferRMSE(s, abduction.Config{HMM: v.cfg})
		if err != nil {
			return nil, err
		}
		rmses = append(rmses, r)
		t.AddRow(v.label, r)
	}
	uniform := rmses[len(rmses)-1]
	bestTri := stats.Min(rmses[:len(rmses)-1])
	if bestTri < uniform {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"SHAPE OK: the stability prior beats the uniform prior (%.3g vs %.3g) — the Markov structure constrains uncertain regions (paper §4.2)",
			bestTri, uniform))
	} else {
		t.Notes = append(t.Notes, "SHAPE MISS: uniform prior matched the tridiagonal prior")
	}
	return t, nil
}

func ablSigma(s Scale) (*Table, error) {
	t := &Table{
		ID:     "abl-sigma",
		Title:  "GTBW recovery under different emission noise settings",
		Header: []string{"sigma (Mbps)", "mean RMSE vs GTBW (Mbps)"},
	}
	best, bestSigma := math.Inf(1), 0.0
	for _, sigma := range []float64{0.1, 0.25, 0.5, 1.0, 2.0} {
		cfg := hmm.DefaultConfig(12)
		cfg.Sigma = sigma
		r, err := inferRMSE(s, abduction.Config{HMM: cfg})
		if err != nil {
			return nil, err
		}
		t.AddRow(sigma, r)
		if r < best {
			best, bestSigma = r, sigma
		}
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"best σ = %.2g (paper uses 0.5); too small over-trusts the estimator f, too large ignores the evidence",
		bestSigma))
	return t, nil
}

func ablEM(s Scale) (*Table, error) {
	fixed, err := inferRMSE(s, abduction.Config{})
	if err != nil {
		return nil, err
	}
	learned, err := inferRMSE(s, abduction.Config{FitTransitions: 3})
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "abl-em",
		Title:  "Fixed tridiagonal prior vs per-session Baum-Welch-learned transitions",
		Header: []string{"transitions", "mean RMSE vs GTBW (Mbps)"},
	}
	t.AddRow("fixed tridiagonal (paper)", fixed)
	t.AddRow("learned (3 EM iterations)", learned)
	t.Notes = append(t.Notes, fmt.Sprintf(
		"learning transitions from a single session changes RMSE by %+.3g Mbps; the paper's fixed prior is a strong default",
		learned-fixed))
	return t, nil
}
