package experiments

import (
	"context"
	"fmt"

	"veritas/internal/abduction"
	"veritas/internal/abr"
	"veritas/internal/engine"
	"veritas/internal/stats"
	"veritas/internal/trace"
)

func init() {
	register("ext-square", "Extension: recovery on square-wave bandwidth (the NetAI'20 restricted setting)", extSquare)
}

// extSquare evaluates Veritas on the square-wave bandwidth processes
// that the workshop paper the related-work section discusses ([39],
// Sruthi et al.) was *restricted* to. Veritas handles them as an
// ordinary special case: the tridiagonal prior ramps across each edge
// while the Baseline inherits the full observation bias. Reported per
// half-period: mean inferred level on the high and low plateaus.
func extSquare(s Scale) (*Table, error) {
	t := &Table{
		ID:     "ext-square",
		Title:  "GTBW recovery on square waves alternating between lo and hi every 60 s",
		Header: []string{"lo/hi (Mbps)", "Baseline RMSE", "Veritas RMSE", "Veritas hi-plateau mean", "Veritas lo-plateau mean"},
	}
	vid := testVideo(s)
	type band struct{ lo, hi float64 }
	var wins int
	bands := []band{{2, 6}, {3, 8}, {4, 5}}

	// One engine session per band, abductions retained for trace access.
	corpus := make([]engine.SessionSpec, len(bands))
	for bi, b := range bands {
		sq, err := trace.SquareWave(b.lo, b.hi, 60, 720)
		if err != nil {
			return nil, err
		}
		net := testbedNet(s.Seed + int64(bi))
		corpus[bi] = engine.SessionSpec{
			ID:        fmt.Sprintf("square-%d", bi),
			Trace:     sq,
			Video:     vid,
			NewABR:    func() abr.Algorithm { return abr.NewMPC() },
			BufferCap: settingABuffer,
			Net:       &net,
			Abduct:    abduction.Config{NumSamples: 1, Seed: s.Seed + int64(bi)},
		}
	}
	ecfg := engineConfig(s)
	ecfg.KeepAbductions = true
	res, err := engine.Run(context.Background(), ecfg, corpus, nil)
	if err != nil {
		return nil, err
	}
	for bi, b := range bands {
		sr := res.Sessions[bi]
		sq := corpus[bi].Trace
		log := sr.Log
		base, err := abduction.BaselineTrace(log, 1)
		if err != nil {
			return nil, err
		}
		ml := sr.Abd.MostLikelyTrace()
		horizon := log.Records[len(log.Records)-1].End

		vRMSE := traceRMSE(ml, sq, horizon)
		bRMSE := traceRMSE(base, sq, horizon)
		if vRMSE < bRMSE {
			wins++
		}
		// Plateau means, excluding 15 s around each edge where the
		// tridiagonal prior is still ramping.
		var hiVals, loVals []float64
		for tt := 0.0; tt < horizon; tt++ {
			phase := tt - 60*float64(int(tt/60))
			if phase < 15 || phase > 45 {
				continue
			}
			if sq.At(tt) == b.hi {
				hiVals = append(hiVals, ml.At(tt))
			} else {
				loVals = append(loVals, ml.At(tt))
			}
		}
		t.AddRow(fmt.Sprintf("%g/%g", b.lo, b.hi), bRMSE, vRMSE,
			stats.Mean(hiVals), stats.Mean(loVals))
	}
	if wins == len(bands) {
		t.Notes = append(t.Notes,
			"SHAPE OK: Veritas beats Baseline on every square wave — the restricted setting of [39] is an easy special case")
	} else {
		t.Notes = append(t.Notes, fmt.Sprintf("SHAPE CHECK: Veritas won %d/%d bands", wins, len(bands)))
	}
	return t, nil
}
