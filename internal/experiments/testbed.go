package experiments

import (
	"context"
	"fmt"

	"veritas/internal/abr"
	"veritas/internal/engine"
	"veritas/internal/netem"
	"veritas/internal/player"
	"veritas/internal/trace"
	"veritas/internal/video"
)

// testbedNet returns the emulated path used across the evaluation: the
// paper's Mahimahi shell with an 80 ms end-to-end delay each way
// (160 ms RTT), slow-start restart on, mild queueing jitter. The seed
// offsets keep independent sessions on independent jitter streams.
func testbedNet(seed int64) netem.Config {
	cfg := netem.DefaultConfig()
	cfg.Seed = seed
	return cfg
}

// testVideo builds the default 10-minute clip truncated to the scale's
// chunk count.
func testVideo(s Scale) *video.Video {
	cfg := video.DefaultConfig(1)
	cfg.NumChunks = s.NumChunks
	return video.MustSynthesize(cfg)
}

// higherVideo is the same content on the Figure 11 "higher qualities"
// ladder.
func higherVideo(s Scale) *video.Video {
	cfg := video.DefaultConfig(1)
	cfg.NumChunks = s.NumChunks
	cfg.Ladder = video.HigherLadder()
	return video.MustSynthesize(cfg)
}

// regimeTraces generates the counterfactual trace set in the scale's
// scenario regime (default: the paper's 3–8 Mbps FCC-like process).
func regimeTraces(s Scale) ([]*trace.Trace, error) {
	cfg, err := trace.RegimeConfig(s.Scenario, s.Seed)
	if err != nil {
		return nil, err
	}
	return trace.GenerateSet(cfg, s.NumTraces)
}

// engineConfig maps a Scale onto the fleet engine's knobs. Seed stays
// zero: every spec the experiments build carries explicit abduction
// seeds, so nothing falls through to the engine's derivation.
func engineConfig(s Scale) engine.Config {
	return engine.Config{Workers: s.Workers, Samples: s.Samples}
}

// wideTraces generates the interventional-range set (0.5–10 Mbps), used
// to train Fugu for Figure 12.
func wideTraces(seed int64, n int) ([]*trace.Trace, error) {
	cfg := trace.GenConfig{
		MinMbps:  0.5,
		MaxMbps:  10,
		Interval: 5,
		Horizon:  900,
		StepMbps: 0.4,
		JumpProb: 0.02,
		Seed:     seed,
	}
	return trace.GenerateSet(cfg, n)
}

// poorGoodTraces builds the Figure 2(a/b) training mix: half the traces
// with poor conditions (0.05–0.3 Mbps) and half good (9–10 Mbps).
func poorGoodTraces(seed int64, n int) ([]*trace.Trace, error) {
	half := n / 2
	if half == 0 {
		half = 1
	}
	poor, err := trace.GenerateSet(trace.GenConfig{
		MinMbps: 0.05, MaxMbps: 0.3, Interval: 5, Horizon: 3600,
		StepMbps: 0.05, JumpProb: 0.02, Seed: seed,
	}, half)
	if err != nil {
		return nil, err
	}
	good, err := trace.GenerateSet(trace.GenConfig{
		MinMbps: 9, MaxMbps: 10, Interval: 5, Horizon: 900,
		StepMbps: 0.2, JumpProb: 0.02, Seed: seed + 10_000,
	}, half)
	if err != nil {
		return nil, err
	}
	return append(poor, good...), nil
}

// batchSessions simulates one session per trace on the fleet engine
// (simulate-only: no abduction) and returns the logs in trace order.
// newABR and netSeed are indexed by trace so callers control the exact
// per-session seeding.
func batchSessions(s Scale, v *video.Video, traces []*trace.Trace, newABR func(i int) func() abr.Algorithm, netSeed func(i int) int64) ([]*player.SessionLog, error) {
	corpus := make([]engine.SessionSpec, len(traces))
	for i, gt := range traces {
		net := testbedNet(netSeed(i))
		corpus[i] = engine.SessionSpec{
			ID:           fmt.Sprintf("sim-%03d", i),
			Trace:        gt,
			Video:        v,
			NewABR:       newABR(i),
			BufferCap:    settingABuffer,
			Net:          &net,
			SimulateOnly: true,
		}
	}
	res, err := engine.Run(context.Background(), engineConfig(s), corpus, nil)
	if err != nil {
		return nil, err
	}
	logs := make([]*player.SessionLog, len(res.Sessions))
	for i, sr := range res.Sessions {
		logs[i] = sr.Log
	}
	return logs, nil
}

// session runs one streaming session and returns its log and metrics.
func session(v *video.Video, alg abr.Algorithm, tr *trace.Trace, bufferCap float64, seed int64) (*player.SessionLog, player.Metrics, error) {
	log, m, err := player.Run(player.Config{
		Video:     v,
		ABR:       alg,
		Trace:     tr,
		Net:       testbedNet(seed),
		BufferCap: bufferCap,
	})
	if err != nil {
		return nil, player.Metrics{}, fmt.Errorf("session (abr=%s): %w", alg.Name(), err)
	}
	return log, m, nil
}
