package experiments

import (
	"context"
	"fmt"

	"veritas/internal/abduction"
	"veritas/internal/abr"
	"veritas/internal/engine"
	"veritas/internal/player"
	"veritas/internal/stats"
)

func init() {
	register("fig8", "True impact of changing the ABR from MPC to BBA", fig8)
	register("fig9", "Predicted impact of MPC→BBA: Baseline vs Veritas vs ground truth", fig9)
	register("fig10", "Predicted impact of increasing the buffer from 5 s to 30 s", fig10)
	register("fig11", "Predicted impact of switching to a higher quality ladder", fig11)
	register("fig13", "Predicted impact of MPC→BOLA (appendix)", fig13)
	register("fig14", "Average bitrate across all counterfactual queries (appendix)", fig14)
}

// settingA is the deployed system of the paper's evaluation: MPC with a
// 5 s buffer on the default ladder.
const settingABuffer = 5.0

// cfScenario is one counterfactual query: the Setting B to replay.
type cfScenario struct {
	Name    string
	Setting func(s Scale) abduction.Setting
}

func bbaScenario() cfScenario {
	return cfScenario{
		Name: "MPC->BBA",
		Setting: func(s Scale) abduction.Setting {
			return abduction.Setting{
				Video:     testVideo(s),
				NewABR:    func() abr.Algorithm { return abr.NewBBA() },
				BufferCap: settingABuffer,
				Net:       testbedNet(2),
			}
		},
	}
}

func bolaScenario() cfScenario {
	return cfScenario{
		Name: "MPC->BOLA",
		Setting: func(s Scale) abduction.Setting {
			return abduction.Setting{
				Video:     testVideo(s),
				NewABR:    func() abr.Algorithm { return abr.NewBOLA() },
				BufferCap: settingABuffer,
				Net:       testbedNet(2),
			}
		},
	}
}

func bufferScenario() cfScenario {
	return cfScenario{
		Name: "buffer 5s->30s",
		Setting: func(s Scale) abduction.Setting {
			return abduction.Setting{
				Video:     testVideo(s),
				NewABR:    func() abr.Algorithm { return abr.NewMPC() },
				BufferCap: 30,
				Net:       testbedNet(2),
			}
		},
	}
}

func ladderScenario() cfScenario {
	return cfScenario{
		Name: "higher qualities",
		Setting: func(s Scale) abduction.Setting {
			return abduction.Setting{
				Video:     higherVideo(s),
				NewABR:    func() abr.Algorithm { return abr.NewMPC() },
				BufferCap: settingABuffer,
				Net:       testbedNet(2),
			}
		},
	}
}

// cfResult holds one trace's outcomes under a what-if setting.
type cfResult struct {
	SettingA player.Metrics   // deployed system (MPC) on the true GTBW
	Truth    player.Metrics   // Setting B on the true GTBW (the oracle)
	Baseline player.Metrics   // Setting B on the Baseline trace
	Samples  []player.Metrics // Setting B on each Veritas sample
}

// runCounterfactualMatrix executes the full Figure-6 pipeline over the
// scale's trace set, batched on the fleet engine: every trace becomes
// one corpus session, every scenario one what-if arm, and the engine
// fans the Abduct + replay work across the worker pool (with the
// per-session emission memoization the serial path never had). Each
// session is simulated and abduced once however many arms replay over
// it — fig14's four panels share one inversion. Per-trace seeds match
// the original serial implementation, so tables are unchanged and
// identical for every worker count. Results are keyed by scenario name.
func runCounterfactualMatrix(s Scale, scs []cfScenario) (map[string][]cfResult, error) {
	traces, err := regimeTraces(s)
	if err != nil {
		return nil, err
	}
	vid := testVideo(s)
	corpus := make([]engine.SessionSpec, len(traces))
	for i, gt := range traces {
		net := testbedNet(s.Seed + int64(i))
		corpus[i] = engine.SessionSpec{
			ID:        fmt.Sprintf("trace-%03d", i),
			Trace:     gt,
			Video:     vid,
			NewABR:    func() abr.Algorithm { return abr.NewMPC() },
			BufferCap: settingABuffer,
			Net:       &net,
			Abduct: abduction.Config{
				NumSamples: s.Samples,
				Seed:       s.Seed + int64(i)*101,
			},
		}
	}
	arms := make([]engine.Arm, len(scs))
	for i, sc := range scs {
		arms[i] = engine.Arm{Name: sc.Name, Setting: sc.Setting(s)}
	}
	res, err := engine.Run(context.Background(), engineConfig(s), corpus, arms)
	if err != nil {
		return nil, err
	}
	out := make(map[string][]cfResult, len(scs))
	for _, sr := range res.Sessions {
		for _, oc := range sr.Arms {
			out[oc.Name] = append(out[oc.Name],
				cfResult{SettingA: sr.SettingA, Truth: oc.Truth, Baseline: oc.Baseline, Samples: oc.Samples})
		}
	}
	return out, nil
}

// runCounterfactual runs a single scenario.
func runCounterfactual(s Scale, sc cfScenario) ([]cfResult, error) {
	m, err := runCounterfactualMatrix(s, []cfScenario{sc})
	if err != nil {
		return nil, err
	}
	return m[sc.Name], nil
}

// metricSeries extracts the per-trace values of one metric for each
// estimator.
type metricSeries struct {
	Truth, Baseline, VLow, VHigh []float64
}

func collect(results []cfResult, f abduction.MetricFn) metricSeries {
	var ms metricSeries
	for _, r := range results {
		ms.Truth = append(ms.Truth, f(r.Truth))
		ms.Baseline = append(ms.Baseline, f(r.Baseline))
		lo, hi := abduction.VeritasRange(r.Samples, f)
		ms.VLow = append(ms.VLow, lo)
		ms.VHigh = append(ms.VHigh, hi)
	}
	return ms
}

// coverage returns the fraction of traces where the truth lies within
// [VLow - slack, VHigh + slack].
func (ms metricSeries) coverage(slack float64) float64 {
	if len(ms.Truth) == 0 {
		return 0
	}
	var n int
	for i := range ms.Truth {
		if ms.Truth[i] >= ms.VLow[i]-slack && ms.Truth[i] <= ms.VHigh[i]+slack {
			n++
		}
	}
	return float64(n) / float64(len(ms.Truth))
}

// addMetricRows appends percentile rows for a metric across estimators.
func addMetricRows(t *Table, label string, ms metricSeries, scalePct bool) {
	k := 1.0
	if scalePct {
		k = 100
	}
	for _, p := range []float64{10, 25, 50, 75, 90} {
		t.AddRow(
			fmt.Sprintf("%s P%g", label, p),
			stats.Percentile(ms.Truth, p)*k,
			stats.Percentile(ms.Baseline, p)*k,
			stats.Percentile(ms.VLow, p)*k,
			stats.Percentile(ms.VHigh, p)*k,
		)
	}
}

// absErrMedians returns median |estimate − truth| for Baseline and for
// the Veritas mid-range ((low+high)/2).
func (ms metricSeries) absErrMedians() (base, veritas float64) {
	var be, ve []float64
	for i := range ms.Truth {
		be = append(be, abs(ms.Baseline[i]-ms.Truth[i]))
		ve = append(ve, abs((ms.VLow[i]+ms.VHigh[i])/2-ms.Truth[i]))
	}
	return stats.Median(be), stats.Median(ve)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// predictionTable renders a fig9/10/11/13-style table for one scenario.
func predictionTable(id, title string, results []cfResult) *Table {
	t := &Table{
		ID:     id,
		Title:  title,
		Header: []string{"metric", "truth (GTBW)", "Baseline", "Veritas(Low)", "Veritas(High)"},
	}
	ssim := collect(results, abduction.MetricSSIM)
	rebuf := collect(results, abduction.MetricRebufRatio)
	addMetricRows(t, "SSIM", ssim, false)
	addMetricRows(t, "rebuf %", rebuf, true)

	bSSIM, vSSIM := ssim.absErrMedians()
	bReb, vReb := rebuf.absErrMedians()
	t.AddRow("median |err| SSIM", "", bSSIM, vSSIM, "")
	t.AddRow("median |err| rebuf %", "", bReb*100, vReb*100, "")
	t.Notes = append(t.Notes, fmt.Sprintf(
		"Veritas range covers truth (±0.002 SSIM) on %.0f%% of traces; rebuf coverage (±0.5%%) %.0f%%",
		ssim.coverage(0.002)*100, rebuf.coverage(0.005)*100))
	if vSSIM < bSSIM && vReb <= bReb {
		t.Notes = append(t.Notes, "SHAPE OK: Veritas predictions are closer to ground truth than Baseline on both metrics")
	} else {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"SHAPE CHECK: |err| medians — SSIM base %.4g vs veritas %.4g, rebuf base %.4g vs veritas %.4g",
			bSSIM, vSSIM, bReb, vReb))
	}
	return t
}

func fig8(s Scale) (*Table, error) {
	results, err := runCounterfactual(s, bbaScenario())
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig8",
		Title:  "True impact of MPC→BBA on the same GTBW traces",
		Header: []string{"metric", "MPC (Setting A)", "BBA (Setting B)"},
	}
	var ssimA, ssimB, rebA, rebB []float64
	for _, r := range results {
		ssimA = append(ssimA, r.SettingA.AvgSSIM)
		ssimB = append(ssimB, r.Truth.AvgSSIM)
		rebA = append(rebA, r.SettingA.RebufRatio)
		rebB = append(rebB, r.Truth.RebufRatio)
	}
	for _, p := range []float64{10, 25, 50, 75, 90} {
		t.AddRow(fmt.Sprintf("SSIM P%g", p), stats.Percentile(ssimA, p), stats.Percentile(ssimB, p))
	}
	for _, p := range []float64{10, 25, 50, 75, 90} {
		t.AddRow(fmt.Sprintf("rebuf %% P%g", p), stats.Percentile(rebA, p)*100, stats.Percentile(rebB, p)*100)
	}
	if stats.Median(ssimB) > stats.Median(ssimA) && stats.Mean(rebB) > stats.Mean(rebA) {
		t.Notes = append(t.Notes,
			"SHAPE OK: BBA is more aggressive — higher SSIM and more rebuffering than MPC (paper Fig 8)")
	} else {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"SHAPE CHECK: median SSIM %.4g->%.4g, mean rebuf %.4g%%->%.4g%%",
			stats.Median(ssimA), stats.Median(ssimB), stats.Mean(rebA)*100, stats.Mean(rebB)*100))
	}
	return t, nil
}

func fig9(s Scale) (*Table, error) {
	results, err := runCounterfactual(s, bbaScenario())
	if err != nil {
		return nil, err
	}
	return predictionTable("fig9", "Predicted performance if MPC were replaced by BBA", results), nil
}

func fig10(s Scale) (*Table, error) {
	results, err := runCounterfactual(s, bufferScenario())
	if err != nil {
		return nil, err
	}
	return predictionTable("fig10", "Predicted performance if the buffer were 30 s instead of 5 s", results), nil
}

func fig11(s Scale) (*Table, error) {
	results, err := runCounterfactual(s, ladderScenario())
	if err != nil {
		return nil, err
	}
	t := predictionTable("fig11", "Predicted performance with a higher quality ladder", results)
	rebuf := collect(results, abduction.MetricRebufRatio)
	baseMed := stats.Median(rebuf.Baseline) * 100
	truthMed := stats.Median(rebuf.Truth) * 100
	vHighMed := stats.Median(rebuf.VHigh) * 100
	t.Notes = append(t.Notes, fmt.Sprintf(
		"headline: median rebuffering — truth %.2f%%, Veritas(High) %.2f%%, Baseline %.2f%% (paper: truth/Veritas ≈ 0, Baseline ≈ 6.7%%)",
		truthMed, vHighMed, baseMed))
	if baseMed > vHighMed+1 && truthMed < 1 {
		t.Notes = append(t.Notes, "SHAPE OK: Baseline grossly over-predicts rebuffering for the higher ladder; Veritas stays near the (≈0) truth")
	}
	return t, nil
}

func fig13(s Scale) (*Table, error) {
	results, err := runCounterfactual(s, bolaScenario())
	if err != nil {
		return nil, err
	}
	return predictionTable("fig13", "Predicted performance if MPC were replaced by BOLA", results), nil
}

func fig14(s Scale) (*Table, error) {
	t := &Table{
		ID:     "fig14",
		Title:  "Average bitrate (Mbps) for every counterfactual query",
		Header: []string{"panel", "truth (GTBW)", "Baseline", "Veritas(Low)", "Veritas(High)"},
	}
	panels := []struct {
		label string
		sc    cfScenario
	}{
		{"(b) MPC->BBA", bbaScenario()},
		{"(c) MPC->BOLA", bolaScenario()},
		{"(d) buffer 30s", bufferScenario()},
		{"(e) higher ladder", ladderScenario()},
	}
	scs := make([]cfScenario, len(panels))
	for i, p := range panels {
		scs[i] = p.sc
	}
	// One engine run: the corpus is simulated and abduced once, all
	// four panels replay as arms over the shared posteriors.
	byName, err := runCounterfactualMatrix(s, scs)
	if err != nil {
		return nil, err
	}
	var okCount int
	for _, p := range panels {
		results := byName[p.sc.Name]
		br := collect(results, abduction.MetricAvgBitrate)
		t.AddRow(p.label+" median", stats.Median(br.Truth), stats.Median(br.Baseline),
			stats.Median(br.VLow), stats.Median(br.VHigh))
		if p.label == "(b) MPC->BBA" {
			// Panel (a) of the paper compares Setting A and B truths.
			var a, b []float64
			for _, r := range results {
				a = append(a, r.SettingA.AvgBitrateMbps)
				b = append(b, r.Truth.AvgBitrateMbps)
			}
			t.AddRow("(a) MPC / BBA truth median", stats.Median(a), stats.Median(b), "", "")
		}
		if stats.Median(br.Baseline) < stats.Median(br.Truth) {
			okCount++
		}
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"Baseline's median avg-bitrate fell below truth on %d/%d panels (paper: Baseline underestimates, e.g. 3.1 vs 3.5 Mbps for BBA)",
		okCount, len(panels)))
	return t, nil
}
