package experiments

import (
	"fmt"
	"math"

	"veritas/internal/abduction"
	"veritas/internal/abr"
	"veritas/internal/stats"
	"veritas/internal/trace"
)

func init() {
	register("fig7", "Inferred GTBW time series: Baseline vs Veritas samples vs truth", fig7)
}

// fig7 reproduces the example-trace figure: one FCC-like trace is
// streamed with MPC, then the Baseline estimate and five Veritas samples
// are compared against the true GTBW over time.
func fig7(s Scale) (*Table, error) {
	gcfg, err := trace.RegimeConfig(s.Scenario, s.Seed+7)
	if err != nil {
		return nil, err
	}
	gt, err := trace.Generate(gcfg)
	if err != nil {
		return nil, err
	}
	vid := testVideo(s)
	log, _, err := session(vid, abr.NewMPC(), gt, settingABuffer, s.Seed+7)
	if err != nil {
		return nil, err
	}
	abd, err := abduction.Abduct(log, abduction.Config{NumSamples: s.Samples, Seed: s.Seed + 7})
	if err != nil {
		return nil, err
	}
	base, err := abduction.BaselineTrace(log, 1)
	if err != nil {
		return nil, err
	}
	samples := abd.SampleTraces()
	horizon := log.Records[len(log.Records)-1].End

	t := &Table{
		ID:     "fig7",
		Title:  "GTBW (Mbps) over time for one example trace",
		Header: []string{"t (s)", "GTBW", "Baseline", "Veritas min", "Veritas max", "Viterbi"},
	}
	ml := abd.MostLikelyTrace()
	step := horizon / 24
	if step < 1 {
		step = 1
	}
	for tt := 0.0; tt <= horizon; tt += step {
		lo, hi := samples[0].At(tt), samples[0].At(tt)
		for _, sm := range samples[1:] {
			v := sm.At(tt)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		t.AddRow(tt, gt.At(tt), base.At(tt), lo, hi, ml.At(tt))
	}

	// Per-second RMSE of each estimate against the truth.
	rmse := func(est *trace.Trace) float64 {
		var errs []float64
		for tt := 0.0; tt < horizon; tt++ {
			errs = append(errs, est.At(tt)-gt.At(tt))
		}
		sq := make([]float64, len(errs))
		for i, e := range errs {
			sq[i] = e * e
		}
		return math.Sqrt(stats.Mean(sq))
	}
	baseRMSE := rmse(base)
	var sampleRMSEs []float64
	for _, sm := range samples {
		sampleRMSEs = append(sampleRMSEs, rmse(sm))
	}
	t.AddRow("RMSE", 0.0, baseRMSE, stats.Min(sampleRMSEs), stats.Max(sampleRMSEs), rmse(ml))
	if stats.Max(sampleRMSEs) < baseRMSE {
		t.Notes = append(t.Notes,
			"SHAPE OK: every Veritas sample is closer to GTBW than Baseline (paper Fig 7)")
	} else {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"SHAPE CHECK: Baseline RMSE %.3g, Veritas sample RMSEs %.3g-%.3g",
			baseRMSE, stats.Min(sampleRMSEs), stats.Max(sampleRMSEs)))
	}
	return t, nil
}
