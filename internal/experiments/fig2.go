package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"veritas/internal/abr"
	"veritas/internal/fugu"
	"veritas/internal/netem"
	"veritas/internal/player"
	"veritas/internal/stats"
	"veritas/internal/trace"
)

func init() {
	register("fig2a", "Download time vs chunk size under an adaptive ABR (non-monotonic)", fig2a)
	register("fig2b", "Fugu's prediction error on causal (forced-quality) queries", fig2b)
	register("fig2c", "Observed throughput vs payload size on a constant 18 Mbps link", fig2c)
}

// fig2aBuckets are the paper's chunk-size groups in MB.
var fig2aBuckets = []struct {
	Label  string
	Lo, Hi float64 // MB
}{
	{"<0.02", 0, 0.02},
	{"0.02-0.04", 0.02, 0.04},
	{"0.04-0.10", 0.04, 0.10},
	{"0.10-1.0", 0.10, 1.0},
	{"1.0-2.0", 1.0, 2.0},
	{"2.0-4.2", 2.0, 4.2},
}

// fig2aSessions runs MPC over the poor+good trace mix and returns the
// per-chunk logs, shared by fig2a and fig2b. The sessions are
// independent, so they batch on the fleet engine.
func fig2aSessions(s Scale) ([]*player.SessionLog, error) {
	traces, err := poorGoodTraces(s.Seed+500, s.FuguTraces)
	if err != nil {
		return nil, err
	}
	return batchSessions(s, testVideo(s), traces,
		func(int) func() abr.Algorithm { return func() abr.Algorithm { return abr.NewMPC() } },
		func(i int) int64 { return s.Seed + int64(i) })
}

func fig2a(s Scale) (*Table, error) {
	logs, err := fig2aSessions(s)
	if err != nil {
		return nil, err
	}
	byBucket := make([][]float64, len(fig2aBuckets))
	for _, log := range logs {
		for _, r := range log.Records {
			mb := r.SizeBytes / 1e6
			for bi, b := range fig2aBuckets {
				if mb >= b.Lo && mb < b.Hi {
					byBucket[bi] = append(byBucket[bi], r.DownloadSeconds())
					break
				}
			}
		}
	}
	t := &Table{
		ID: "fig2a",
		Title: fmt.Sprintf(
			"Download time (s) by chunk size bucket, MPC on %d poor + %d good traces",
			max(1, s.FuguTraces/2), max(1, s.FuguTraces/2)),
		Header: []string{"size (MB)", "n", "min", "q1", "median", "q3", "max", "mean"},
	}
	var medians []float64
	for bi, b := range fig2aBuckets {
		box := stats.Box(byBucket[bi])
		t.AddRow(b.Label, box.N, box.Min, box.Q1, box.Median, box.Q3, box.Max, box.Mean)
		medians = append(medians, box.Median)
	}
	// Shape check: with a linear size→time relationship medians would
	// rise monotonically; the adaptive ABR breaks that because small
	// chunks are chosen exactly when the network is poor.
	nonMono := false
	prev := math.Inf(-1)
	for _, m := range medians {
		if math.IsNaN(m) {
			continue
		}
		if m < prev {
			nonMono = true
		}
		prev = m
	}
	if nonMono {
		t.Notes = append(t.Notes, "SHAPE OK: download-time medians are non-monotonic in chunk size (paper Fig 2a)")
	} else {
		t.Notes = append(t.Notes, "SHAPE MISS: medians grew monotonically with size")
	}
	return t, nil
}

func fig2b(s Scale) (*Table, error) {
	logs, err := fig2aSessions(s)
	if err != nil {
		return nil, err
	}
	ds := fugu.BuildDataset(logs, fugu.DefaultK)
	pred, err := fugu.TrainPredictor(ds, fugu.PredictorConfig{
		Seed:  s.Seed,
		Train: fugu.TrainConfig{Epochs: 40, Seed: s.Seed + 1},
	})
	if err != nil {
		return nil, err
	}

	// Fresh poor trace: the ABR has been picking low qualities, so the
	// history is all small chunks. Ask the causal question for a forced
	// low- and a forced high-quality next chunk.
	poorSet, err := trace.GenerateSet(trace.GenConfig{
		MinMbps: 0.05, MaxMbps: 0.3, Interval: 5, Horizon: 3600,
		StepMbps: 0.05, JumpProb: 0.02, Seed: s.Seed + 77_000,
	}, 1)
	if err != nil {
		return nil, err
	}
	poor := poorSet[0]
	vid := testVideo(s)
	log, _, err := session(vid, abr.NewMPC(), poor, 5, s.Seed+9)
	if err != nil {
		return nil, err
	}

	type agg struct{ actual, predicted []float64 }
	var low, high agg
	evalEvery := len(log.Records) / 8
	if evalEvery < 1 {
		evalEvery = 1
	}
	for n := fugu.DefaultK; n < len(log.Records); n += evalEvery {
		hist, err := fugu.HistoryFromLog(log, n, fugu.DefaultK)
		if err != nil {
			return nil, err
		}
		rec := log.Records[n]
		for _, q := range []struct {
			agg  *agg
			size float64
		}{
			{&low, vid.Size(rec.Index, 0)},
			{&high, vid.Size(rec.Index, vid.NumQualities()-1)},
		} {
			p, err := pred.Predict(hist, q.size)
			if err != nil {
				return nil, err
			}
			actual, err := forkedDownloadTime(rec, q.size, poor)
			if err != nil {
				return nil, err
			}
			q.agg.predicted = append(q.agg.predicted, p)
			q.agg.actual = append(q.agg.actual, actual)
		}
	}

	t := &Table{
		ID:     "fig2b",
		Title:  "Fugu on forced next-chunk qualities (poor network, low-quality history)",
		Header: []string{"next chunk", "actual mean (s)", "predicted mean (s)", "mean error (s)"},
	}
	lowErr := stats.Mean(low.predicted) - stats.Mean(low.actual)
	highErr := stats.Mean(high.predicted) - stats.Mean(high.actual)
	t.AddRow("Low quality", stats.Mean(low.actual), stats.Mean(low.predicted), lowErr)
	t.AddRow("High quality", stats.Mean(high.actual), stats.Mean(high.predicted), highErr)
	if math.Abs(lowErr) < math.Abs(highErr) && highErr < 0 {
		t.Notes = append(t.Notes,
			"SHAPE OK: Fugu is accurate for the low-quality chunk but underestimates the forced high-quality download (paper Fig 2b)")
	} else {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"SHAPE MISS: low err %.3g, high err %.3g (expected small low error, large negative high error)", lowErr, highErr))
	}
	return t, nil
}

// forkedDownloadTime measures what downloading sizeBytes instead of the
// logged chunk would actually have taken, by restoring the logged TCP
// state at the chunk's start time.
func forkedDownloadTime(rec player.ChunkRecord, sizeBytes float64, gt *trace.Trace) (float64, error) {
	conn, err := netem.NewConn(testbedNet(1))
	if err != nil {
		return 0, err
	}
	conn.Restore(rec.TCP, rec.Start)
	end, err := conn.Download(rec.Start, sizeBytes, gt)
	if err != nil {
		return 0, err
	}
	return end - rec.Start, nil
}

func fig2c(s Scale) (*Table, error) {
	const gtbwMbps = 18
	gt := trace.Constant(gtbwMbps)
	// This is the paper's separate client–server experiment, not the
	// video testbed: a short path, so the 0.12–8 s send gaps straddle
	// the RTO and slow-start restart fires only sometimes — the source
	// of the mid-size variance the figure highlights.
	cfg := testbedNet(s.Seed)
	cfg.RTT = 0.030
	conn, err := netem.NewConn(cfg)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(s.Seed + 31))

	// Payloads of 2^1..2^12 KB with random 0.12–8 s inter-send gaps, as
	// in the paper's controlled experiment.
	perSize := 4 * s.TestTraces
	byLog2 := map[int][]float64{}
	now := 0.0
	for rep := 0; rep < perSize; rep++ {
		for l2 := 1; l2 <= 12; l2++ {
			size := math.Exp2(float64(l2)) * 1e3
			now += 0.12 + rng.Float64()*(8-0.12)
			end, mbps, err := conn.DownloadThroughput(now, size, gt)
			if err != nil {
				return nil, err
			}
			now = end
			byLog2[l2] = append(byLog2[l2], mbps)
		}
	}

	t := &Table{
		ID:     "fig2c",
		Title:  "Throughput (Mbps) by payload size on a constant 18 Mbps link",
		Header: []string{"log2 size (KB)", "n", "min", "median", "max", "mean", "stddev"},
	}
	var smallMed, bigMed, maxStd float64
	for l2 := 1; l2 <= 12; l2++ {
		xs := byLog2[l2]
		box := stats.Box(xs)
		sd := stats.StdDev(xs)
		if sd > maxStd {
			maxStd = sd
		}
		if l2 == 2 {
			smallMed = box.Median
		}
		if l2 == 12 {
			bigMed = box.Median
		}
		t.AddRow(l2, box.N, box.Min, box.Median, box.Max, box.Mean, sd)
	}
	if smallMed < gtbwMbps/3 && bigMed > gtbwMbps*0.8 {
		t.Notes = append(t.Notes,
			"SHAPE OK: small payloads observe far below GTBW, large payloads approach it (paper Fig 2c)")
	} else {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"SHAPE MISS: median at 4 KB %.3g, at 4 MB %.3g (GTBW %v)", smallMed, bigMed, gtbwMbps))
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"max per-size stddev %.3g Mbps (paper: high variance at intermediate sizes from slow-start restart)", maxStd))
	return t, nil
}
