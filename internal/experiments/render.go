package experiments

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
)

// RenderCSV writes the table as CSV: a header row then data rows. The
// title and notes are emitted as comment records prefixed with '#'.
func (t *Table) RenderCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s: %s\n", t.ID, t.Title); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "# note: %s\n", n); err != nil {
			return err
		}
	}
	return nil
}

// RenderJSON writes the table as a single indented JSON object.
func (t *Table) RenderJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// Format names accepted by RenderAs.
const (
	FormatText = "text"
	FormatCSV  = "csv"
	FormatJSON = "json"
)

// RenderAs dispatches on the format name.
func (t *Table) RenderAs(w io.Writer, format string) error {
	switch format {
	case FormatText, "":
		return t.Render(w)
	case FormatCSV:
		return t.RenderCSV(w)
	case FormatJSON:
		return t.RenderJSON(w)
	default:
		return fmt.Errorf("experiments: unknown format %q (want text, csv or json)", format)
	}
}
