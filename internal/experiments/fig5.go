package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"veritas/internal/netem"
	"veritas/internal/stats"
	"veritas/internal/tcp"
	"veritas/internal/trace"
)

func init() {
	register("fig5", "CDF of the throughput estimator f's error", fig5)
}

// fig5 validates the estimator f exactly as §3.2 does: payloads of
// 2 KB–4 MB with random 0.12–8 s gaps, GTBW swept 0.5–10 Mbps and
// one-way delay 5–40 ms, constant per experiment. For every payload we
// compare the throughput f predicts from the pre-download TCP state with
// the throughput the emulator actually delivered.
func fig5(s Scale) (*Table, error) {
	rng := rand.New(rand.NewSource(s.Seed + 51))
	var errorsMbps []float64

	payloadsPer := 6 * s.TestTraces
	for _, delayMs := range []float64{5, 10, 20, 40} {
		for gtbw := 0.5; gtbw <= 10; gtbw += 0.5 {
			gt := trace.Constant(gtbw)
			cfg := testbedNet(s.Seed)
			cfg.RTT = 2 * delayMs / 1000
			conn, err := netem.NewConn(cfg)
			if err != nil {
				return nil, err
			}
			now := 0.0
			for p := 0; p < payloadsPer; p++ {
				// Log-uniform size in [2 KB, 4 MB].
				l2 := 1 + rng.Float64()*11
				size := math.Exp2(l2) * 1e3
				now += 0.12 + rng.Float64()*(8-0.12)
				st := conn.State(now)
				est := tcp.EstimateThroughput(gtbw, st, size)
				end, actual, err := conn.DownloadThroughput(now, size, gt)
				if err != nil {
					return nil, err
				}
				now = end
				errorsMbps = append(errorsMbps, est-actual)
			}
		}
	}

	t := &Table{
		ID:     "fig5",
		Title:  "Estimator f error (predicted - actual throughput, Mbps), CDF",
		Header: []string{"percentile", "error (Mbps)"},
	}
	for _, p := range []float64{1, 5, 10, 25, 50, 75, 90, 95, 99} {
		t.AddRow(fmt.Sprintf("P%g", p), stats.Percentile(errorsMbps, p))
	}
	var within float64
	for _, e := range errorsMbps {
		if math.Abs(e) <= 1 {
			within++
		}
	}
	within /= float64(len(errorsMbps))
	t.AddRow("frac |err|<=1 Mbps", within)
	if within > 0.85 {
		t.Notes = append(t.Notes,
			"SHAPE OK: the bulk of f's predictions fall within 1 Mbps of the observed throughput (paper Fig 5)")
	} else {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"SHAPE MISS: only %.0f%% of errors within 1 Mbps", within*100))
	}
	return t, nil
}
