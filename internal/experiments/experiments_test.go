package experiments

import (
	"strings"
	"testing"

	"veritas/internal/abduction"
	"veritas/internal/player"
)

// tinyScale keeps unit-test runtime low while still exercising every
// code path of the generators.
func tinyScale() Scale {
	return Scale{NumTraces: 3, NumChunks: 40, FuguTraces: 4, TestTraces: 2, Samples: 3, Seed: 1}
}

func TestScaleValidate(t *testing.T) {
	if err := PaperScale().Validate(); err != nil {
		t.Errorf("PaperScale invalid: %v", err)
	}
	if err := QuickScale().Validate(); err != nil {
		t.Errorf("QuickScale invalid: %v", err)
	}
	bad := []func(*Scale){
		func(s *Scale) { s.NumTraces = 0 },
		func(s *Scale) { s.NumChunks = 10 },
		func(s *Scale) { s.FuguTraces = 0 },
		func(s *Scale) { s.TestTraces = 0 },
		func(s *Scale) { s.Samples = 0 },
		func(s *Scale) { s.Workers = -1 },
		func(s *Scale) { s.Scenario = "dialup" },
	}
	for i, mut := range bad {
		s := QuickScale()
		mut(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("mutation %d not caught", i)
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"abl-em", "abl-prior", "abl-sigma", "abl-tcpstate",
		"ext-square",
		"fig10", "fig11", "fig12", "fig13", "fig14",
		"fig2a", "fig2b", "fig2c", "fig5", "fig7", "fig8", "fig9"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("registry has %d experiments, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("IDs()[%d] = %s, want %s", i, got[i], want[i])
		}
	}
	for _, id := range got {
		e, ok := Get(id)
		if !ok || e.Title == "" || e.Run == nil {
			t.Errorf("experiment %s incompletely registered", id)
		}
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("fig99", QuickScale()); err == nil {
		t.Error("unknown id should error")
	}
	if _, err := Run("fig7", Scale{}); err == nil {
		t.Error("invalid scale should error")
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{
		ID:     "t",
		Title:  "demo",
		Header: []string{"a", "longheader"},
		Notes:  []string{"a note"},
	}
	tab.AddRow("x", 1.5)
	tab.AddRow(12, "y")
	var sb strings.Builder
	if err := tab.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"== t: demo ==", "longheader", "note: a note", "1.5"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestAddRowFormatting(t *testing.T) {
	tab := &Table{Header: []string{"a", "b", "c"}}
	tab.AddRow(0.123456789, 42, "s")
	if tab.Rows[0][0] != "0.1235" {
		t.Errorf("float formatting = %q", tab.Rows[0][0])
	}
	if tab.Rows[0][1] != "42" || tab.Rows[0][2] != "s" {
		t.Errorf("int/string formatting = %v", tab.Rows[0])
	}
}

// TestEveryExperimentRuns executes all twelve generators at tiny scale
// and sanity-checks the output tables.
func TestEveryExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s := tinyScale()
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			tab, err := Run(id, s)
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if tab.ID != id {
				t.Errorf("table id %q", tab.ID)
			}
			if len(tab.Rows) == 0 {
				t.Error("no rows")
			}
			if len(tab.Header) == 0 {
				t.Error("no header")
			}
			for ri, row := range tab.Rows {
				if len(row) != len(tab.Header) {
					t.Errorf("row %d has %d cells, header has %d", ri, len(row), len(tab.Header))
				}
			}
			var sb strings.Builder
			if err := tab.Render(&sb); err != nil {
				t.Errorf("render: %v", err)
			}
		})
	}
}

// TestExperimentsDeterministic re-runs a representative experiment and
// demands byte-identical tables.
func TestExperimentsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s := tinyScale()
	for _, id := range []string{"fig7", "fig9"} {
		a, err := Run(id, s)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(id, s)
		if err != nil {
			t.Fatal(err)
		}
		var sa, sb strings.Builder
		if err := a.Render(&sa); err != nil {
			t.Fatal(err)
		}
		if err := b.Render(&sb); err != nil {
			t.Fatal(err)
		}
		if sa.String() != sb.String() {
			t.Errorf("%s not deterministic", id)
		}
	}
}

// TestFig9ShapeHolds asserts the core qualitative claim at a small but
// meaningful scale: Veritas's counterfactual predictions beat Baseline.
func TestFig9ShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s := QuickScale()
	s.NumTraces = 6
	s.NumChunks = 80
	results, err := runCounterfactual(s, bbaScenario())
	if err != nil {
		t.Fatal(err)
	}
	ssim := collect(results, abduction.MetricSSIM)
	bErr, vErr := ssim.absErrMedians()
	if vErr >= bErr {
		t.Errorf("Veritas SSIM error %v should beat Baseline %v", vErr, bErr)
	}
}

func TestCoverageHelper(t *testing.T) {
	ms := metricSeries{
		Truth:    []float64{1, 5, 10},
		Baseline: []float64{0, 0, 0},
		VLow:     []float64{0.5, 6, 9},
		VHigh:    []float64{1.5, 7, 11},
	}
	// Truth inside range for traces 0 and 2; trace 1 (5 vs [6,7]) only
	// covered with slack >= 1.
	if got := ms.coverage(0); got != 2.0/3 {
		t.Errorf("coverage(0) = %v", got)
	}
	if got := ms.coverage(1); got != 1.0 {
		t.Errorf("coverage(1) = %v", got)
	}
}

// TestScenarioAndWorkersPlumb runs a counterfactual figure on the LTE
// regime with an explicit worker count, covering the engine-backed
// batch path end to end.
func TestScenarioAndWorkersPlumb(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s := tinyScale()
	s.Workers = 2
	s.Scenario = "lte"
	results, err := runCounterfactual(s, bbaScenario())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != s.NumTraces {
		t.Fatalf("got %d results, want %d", len(results), s.NumTraces)
	}
	for i, r := range results {
		if r.Truth == (player.Metrics{}) {
			t.Errorf("result %d has an empty oracle outcome", i)
		}
		if len(r.Samples) != s.Samples {
			t.Errorf("result %d has %d samples, want %d", i, len(r.Samples), s.Samples)
		}
	}
}

func TestPoorGoodTraces(t *testing.T) {
	traces, err := poorGoodTraces(1, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 6 {
		t.Fatalf("got %d traces", len(traces))
	}
	// First half poor, second half good.
	for i := 0; i < 3; i++ {
		if _, max := traces[i].MinMax(); max > 0.3+1e-9 {
			t.Errorf("poor trace %d max %v", i, max)
		}
		if min, _ := traces[i+3].MinMax(); min < 9-1e-9 {
			t.Errorf("good trace %d min %v", i, min)
		}
	}
}
