// Package experiments regenerates every table and figure in the paper's
// evaluation (§2.2 Figure 2, §3.2 Figure 5, §4 Figures 7–12, appendix
// Figures 13–14). Each experiment is a pure function of a Scale (how
// many traces/chunks to run) returning a Table: the same rows/series the
// paper plots, plus notes stating the qualitative shape the paper
// reports so the reader can check it held.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"veritas/internal/trace"
)

// Table is one regenerated figure: a titled grid of rows plus notes
// recording the paper's expected shape and our measured summary.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row; values are rendered with %v for
// strings and %.4g for floats.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case int:
			row[i] = fmt.Sprintf("%d", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, wd := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", wd))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Scale controls experiment size so the full paper-scale run and quick
// bench/test runs share one code path.
type Scale struct {
	NumTraces  int   // traces per counterfactual set (paper: 100)
	NumChunks  int   // chunks per session (paper: 300 ≙ 10 min)
	FuguTraces int   // training traces for Fugu experiments (paper: 100)
	TestTraces int   // random-ABR test traces for fig12 (paper: 30)
	Samples    int   // Veritas posterior samples K (paper: 5)
	Seed       int64 // base seed; every derived seed is offset from it
	// Workers sizes the fleet-engine worker pool the batch experiments
	// run on; 0 means GOMAXPROCS. Results are identical for every
	// worker count.
	Workers int
	// Scenario selects the bandwidth regime of the counterfactual trace
	// set: one of trace.Regimes() ("fcc", "lte", "wifi"); empty means
	// the paper's FCC-like regime.
	Scenario string
}

// PaperScale is the full evaluation size of the paper.
func PaperScale() Scale {
	return Scale{NumTraces: 100, NumChunks: 300, FuguTraces: 100, TestTraces: 30, Samples: 5, Seed: 1}
}

// QuickScale is a reduced size for benchmarks and CI: same code path,
// minutes instead of tens of minutes.
func QuickScale() Scale {
	return Scale{NumTraces: 12, NumChunks: 90, FuguTraces: 10, TestTraces: 4, Samples: 5, Seed: 1}
}

// Validate reports the first invalid field, if any.
func (s Scale) Validate() error {
	switch {
	case s.NumTraces <= 0:
		return fmt.Errorf("experiments: NumTraces %d <= 0", s.NumTraces)
	case s.NumChunks < 20:
		return fmt.Errorf("experiments: NumChunks %d < 20", s.NumChunks)
	case s.FuguTraces <= 0:
		return fmt.Errorf("experiments: FuguTraces %d <= 0", s.FuguTraces)
	case s.TestTraces <= 0:
		return fmt.Errorf("experiments: TestTraces %d <= 0", s.TestTraces)
	case s.Samples <= 0:
		return fmt.Errorf("experiments: Samples %d <= 0", s.Samples)
	case s.Workers < 0:
		return fmt.Errorf("experiments: Workers %d < 0", s.Workers)
	}
	if _, err := trace.RegimeConfig(s.Scenario, s.Seed); err != nil {
		return fmt.Errorf("experiments: %w", err)
	}
	return nil
}

// Experiment is a registered figure generator.
type Experiment struct {
	ID    string
	Title string
	Run   func(Scale) (*Table, error)
}

var registry = map[string]Experiment{}

func register(id, title string, run func(Scale) (*Table, error)) {
	registry[id] = Experiment{ID: id, Title: title, Run: run}
}

// IDs returns the registered experiment ids in order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Get returns the experiment with the given id.
func Get(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// Run executes one experiment by id.
func Run(id string, s Scale) (*Table, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (have %v)", id, IDs())
	}
	return e.Run(s)
}

// RunAll executes every registered experiment in id order.
func RunAll(s Scale) ([]*Table, error) {
	var out []*Table
	for _, id := range IDs() {
		t, err := Run(id, s)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", id, err)
		}
		out = append(out, t)
	}
	return out, nil
}
