//lint:file-ignore SA1019 serve.New is the replacement for the deprecated
// store.NewHandler and is the one place allowed to call through to it.

// Package serve builds the HTTP query tier over a result store with the
// same options-built construction style as the veritas Campaign facade:
//
//	h := serve.New(st,
//		serve.WithCacheEntries(512),
//		serve.WithTelemetry(reg),
//		serve.WithWatchInterval(250*time.Millisecond))
//
// It replaces the ad-hoc store.ServeOptions + store.NewHandler pair
// (both still compile as a deprecated shim, pinned by compat tests);
// the handler behind both constructors is identical.
package serve

import (
	"net/http"
	"time"

	"veritas/internal/store"
	"veritas/internal/telemetry"
	"veritas/internal/tracing"
)

// Option configures a query handler.
type Option func(*store.ServeOptions)

// WithCacheEntries bounds the in-process read cache of decoded session
// rows (default 256; negative disables caching).
func WithCacheEntries(n int) Option {
	return func(o *store.ServeOptions) { o.CacheEntries = n }
}

// WithTelemetry routes the handler's request counters — and the
// /metrics and /v1/status endpoints — through reg, so serving metrics
// appear alongside whatever else the registry carries.
func WithTelemetry(reg *telemetry.Registry) Option {
	return func(o *store.ServeOptions) { o.Telemetry = reg }
}

// WithTracer records a tail-sampled trace per served request and feeds
// GET /v1/trace.
func WithTracer(trc *tracing.Tracer) Option {
	return func(o *store.ServeOptions) { o.Tracer = trc }
}

// WithTraceSource overrides the trace set /v1/trace exports — the
// Campaign facade uses it to serve the fleet-merged view.
func WithTraceSource(fn func() []tracing.Trace) Option {
	return func(o *store.ServeOptions) { o.TraceSource = fn }
}

// WithWatchInterval rate-limits the tail refresh a handler over a
// watch-mode store runs before answering: at most one refresh per
// interval, 0 (the default) meaning every request re-checks. Ignored
// for ordinary stores.
func WithWatchInterval(d time.Duration) Option {
	return func(o *store.ServeOptions) { o.WatchInterval = d }
}

// New builds the query handler over an open store: the /v1 query
// surface (sessions, scenarios, the report family), /healthz, /v1/trace
// and /metrics. See the handler documentation in the store package for
// the full route table.
func New(st *store.Store, opts ...Option) http.Handler {
	var o store.ServeOptions
	for _, opt := range opts {
		opt(&o)
	}
	return store.NewHandler(st, o)
}

// NewLive builds the live query tier over a still-dispatching
// campaign's shard directory: /v1/live/report (plus cdf, series,
// percentiles) and /v1/live/status, combining every shard store's
// partial aggregates on demand. parent may not exist yet; the handler
// serves an empty corpus until shards appear.
func NewLive(parent string, opts ...Option) *store.LiveHandler {
	var o store.ServeOptions
	for _, opt := range opts {
		opt(&o)
	}
	return store.NewLiveHandler(parent, o)
}
