package player

import "math"

// QoEWeights parameterizes the linear quality-of-experience score the
// MPC paper (and much of the ABR literature) optimizes:
//
//	QoE = Σ bitrate_n − Rebuf·stall_n − Smooth·|bitrate_n − bitrate_{n−1}|
//
// normalized per chunk. It complements the SSIM/rebuffering metrics the
// paper reports, and lets what-if answers be compared on the objective
// the deployed algorithm actually optimized.
type QoEWeights struct {
	// Rebuf is the penalty per second of stall, in Mbps-equivalent
	// units (MPC's QoE-lin uses 4.3).
	Rebuf float64
	// Smooth scales the |Δbitrate| switching penalty (MPC uses 1).
	Smooth float64
}

// DefaultQoEWeights returns the MPC paper's QoE-lin coefficients.
func DefaultQoEWeights() QoEWeights { return QoEWeights{Rebuf: 4.3, Smooth: 1} }

// QoE computes the per-chunk-average linear QoE of a session log.
// Returns 0 for an empty log.
func QoE(log *SessionLog, w QoEWeights) float64 {
	if log == nil || len(log.Records) == 0 {
		return 0
	}
	var total float64
	prev := -1.0
	for _, r := range log.Records {
		total += r.BitrateMbps
		total -= w.Rebuf * r.RebufSeconds
		if prev >= 0 {
			total -= w.Smooth * math.Abs(r.BitrateMbps-prev)
		}
		prev = r.BitrateMbps
	}
	return total / float64(len(log.Records))
}
