package player

import (
	"bytes"
	"math"
	"testing"

	"veritas/internal/abr"
	"veritas/internal/netem"
	"veritas/internal/trace"
	"veritas/internal/video"
)

func testConfig(t *testing.T, mbps float64, alg abr.Algorithm) Config {
	t.Helper()
	return Config{
		Video:     video.MustSynthesize(video.DefaultConfig(1)),
		ABR:       alg,
		Trace:     trace.Constant(mbps),
		Net:       netem.Config{RTT: 0.080, SlowStartRestart: true},
		BufferCap: 5,
	}
}

func TestRunValidation(t *testing.T) {
	good := testConfig(t, 5, abr.NewMPC())
	bad := []func(*Config){
		func(c *Config) { c.Video = nil },
		func(c *Config) { c.ABR = nil },
		func(c *Config) { c.Trace = nil },
		func(c *Config) { c.BufferCap = 1 }, // below one chunk duration
		func(c *Config) { c.MaxChunks = -1 },
		func(c *Config) { c.Net.RTT = 0 },
	}
	for i, mut := range bad {
		cfg := good
		mut(&cfg)
		if _, _, err := Run(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestSessionCompletes(t *testing.T) {
	cfg := testConfig(t, 5, abr.NewMPC())
	log, m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Records) != cfg.Video.NumChunks() {
		t.Fatalf("logged %d chunks, want %d", len(log.Records), cfg.Video.NumChunks())
	}
	if m.NumChunks != cfg.Video.NumChunks() {
		t.Errorf("metrics chunk count %d", m.NumChunks)
	}
	if m.AvgSSIM <= 0.9 || m.AvgSSIM > 1 {
		t.Errorf("implausible SSIM %v", m.AvgSSIM)
	}
	if m.AvgBitrateMbps <= 0 {
		t.Errorf("non-positive bitrate %v", m.AvgBitrateMbps)
	}
}

func TestRecordsAreConsistent(t *testing.T) {
	log, _, err := Run(testConfig(t, 5, abr.NewMPC()))
	if err != nil {
		t.Fatal(err)
	}
	prevEnd := 0.0
	for i, r := range log.Records {
		if r.Index != i {
			t.Fatalf("record %d has index %d", i, r.Index)
		}
		if r.Start < prevEnd {
			t.Fatalf("chunk %d starts (%v) before previous end (%v)", i, r.Start, prevEnd)
		}
		if r.End <= r.Start {
			t.Fatalf("chunk %d has non-positive download time", i)
		}
		wantTput := r.SizeBytes * 8 / 1e6 / r.DownloadSeconds()
		if math.Abs(r.ThroughputMbps-wantTput) > 1e-9 {
			t.Fatalf("chunk %d throughput inconsistent", i)
		}
		if err := r.TCP.Validate(); i > 0 && err != nil {
			t.Fatalf("chunk %d TCP state invalid: %v", i, err)
		}
		prevEnd = r.End
	}
}

func TestBufferCapCreatesIdleGaps(t *testing.T) {
	// On a fast link the player must wait for buffer room, so gaps
	// between chunk downloads should exceed the RTO, triggering SSR —
	// the paper's central observation mechanism.
	log, _, err := Run(testConfig(t, 20, abr.NewMPC()))
	if err != nil {
		t.Fatal(err)
	}
	gaps := 0
	for _, r := range log.Records[5:] {
		if r.TCP.LastSendGap > r.TCP.RTO {
			gaps++
		}
	}
	if gaps < len(log.Records)/3 {
		t.Errorf("only %d/%d chunks saw idle gaps > RTO; buffer-cap waiting seems broken",
			gaps, len(log.Records)-5)
	}
}

func TestFastLinkNoRebuffering(t *testing.T) {
	_, m, err := Run(testConfig(t, 50, abr.NewMPC()))
	if err != nil {
		t.Fatal(err)
	}
	if m.RebufRatio > 0.001 {
		t.Errorf("50 Mbps link rebuffered %.3f%%", m.RebufRatio*100)
	}
}

func TestSlowLinkRebuffersAtHighFixedQuality(t *testing.T) {
	// Forcing the top quality on a link slower than its bitrate must
	// rebuffer heavily.
	cfg := testConfig(t, 1, &abr.Fixed{Quality: 7}) // ~4 Mbps on 1 Mbps link
	_, m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.RebufRatio < 0.3 {
		t.Errorf("forced 4 Mbps on 1 Mbps link rebuffered only %.1f%%", m.RebufRatio*100)
	}
}

func TestABRAdaptsToSlowLink(t *testing.T) {
	_, fixed, err := Run(testConfig(t, 1, &abr.Fixed{Quality: 7}))
	if err != nil {
		t.Fatal(err)
	}
	_, mpc, err := Run(testConfig(t, 1, abr.NewMPC()))
	if err != nil {
		t.Fatal(err)
	}
	if mpc.RebufRatio >= fixed.RebufRatio {
		t.Errorf("MPC (%.2f%%) should rebuffer less than forced top quality (%.2f%%)",
			mpc.RebufRatio*100, fixed.RebufRatio*100)
	}
	if mpc.AvgBitrateMbps > 1.5 {
		t.Errorf("MPC on a 1 Mbps link picked %v Mbps average", mpc.AvgBitrateMbps)
	}
}

func TestHigherBandwidthHigherQuality(t *testing.T) {
	_, slow, err := Run(testConfig(t, 1.5, abr.NewMPC()))
	if err != nil {
		t.Fatal(err)
	}
	_, fast, err := Run(testConfig(t, 8, abr.NewMPC()))
	if err != nil {
		t.Fatal(err)
	}
	if fast.AvgBitrateMbps <= slow.AvgBitrateMbps {
		t.Errorf("bitrate should rise with bandwidth: %v (8 Mbps) vs %v (1.5 Mbps)",
			fast.AvgBitrateMbps, slow.AvgBitrateMbps)
	}
	if fast.AvgSSIM <= slow.AvgSSIM {
		t.Errorf("SSIM should rise with bandwidth")
	}
}

func TestMaxChunksPrefix(t *testing.T) {
	cfg := testConfig(t, 5, abr.NewMPC())
	cfg.MaxChunks = 25
	log, m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Records) != 25 || m.NumChunks != 25 {
		t.Errorf("MaxChunks=25 produced %d records", len(log.Records))
	}
}

func TestPrefixView(t *testing.T) {
	log, _, err := Run(testConfig(t, 5, abr.NewMPC()))
	if err != nil {
		t.Fatal(err)
	}
	p := log.Prefix(10)
	if len(p.Records) != 10 {
		t.Fatalf("Prefix(10) has %d records", len(p.Records))
	}
	if p.BufferCap != log.BufferCap || p.ABRName != log.ABRName {
		t.Error("Prefix lost metadata")
	}
	big := log.Prefix(1 << 20)
	if len(big.Records) != len(log.Records) {
		t.Error("Prefix beyond length should return all records")
	}
}

func TestRebufferRatioDefinition(t *testing.T) {
	_, m, err := Run(testConfig(t, 1, &abr.Fixed{Quality: 7}))
	if err != nil {
		t.Fatal(err)
	}
	want := m.RebufSeconds / (m.PlaybackSeconds + m.RebufSeconds)
	if math.Abs(m.RebufRatio-want) > 1e-12 {
		t.Errorf("RebufRatio = %v, want %v", m.RebufRatio, want)
	}
}

func TestDeterministicRuns(t *testing.T) {
	a, am, err := Run(testConfig(t, 4, abr.NewMPC()))
	if err != nil {
		t.Fatal(err)
	}
	b, bm, err := Run(testConfig(t, 4, abr.NewMPC()))
	if err != nil {
		t.Fatal(err)
	}
	if am != bm {
		t.Error("identical configs gave different metrics")
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("identical configs diverge at record %d", i)
		}
	}
}

func TestLogCodecRoundTrip(t *testing.T) {
	log, _, err := Run(testConfig(t, 5, abr.NewBBA()))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeLog(&buf, log); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != len(log.Records) || got.ABRName != log.ABRName {
		t.Fatal("round trip lost data")
	}
	r0, g0 := log.Records[42], got.Records[42]
	if r0.SizeBytes != g0.SizeBytes || r0.TCP.CWND != g0.TCP.CWND {
		t.Error("record fields changed in round trip")
	}
}

func TestDecodeLogRejectsEmpty(t *testing.T) {
	if _, err := DecodeLog(bytes.NewBufferString(`{"Records":[]}`)); err == nil {
		t.Error("empty record list should fail")
	}
	if _, err := DecodeLog(bytes.NewBufferString(`not json`)); err == nil {
		t.Error("bad JSON should fail")
	}
}

func TestThroughputsHelper(t *testing.T) {
	log, _, err := Run(testConfig(t, 5, abr.NewMPC()))
	if err != nil {
		t.Fatal(err)
	}
	ts := log.Throughputs()
	if len(ts) != len(log.Records) {
		t.Fatal("length mismatch")
	}
	for i := range ts {
		if ts[i] != log.Records[i].ThroughputMbps {
			t.Fatal("value mismatch")
		}
	}
}

func TestQoE(t *testing.T) {
	log := &SessionLog{
		ChunkSeconds: 2,
		Records: []ChunkRecord{
			{BitrateMbps: 2, RebufSeconds: 0},
			{BitrateMbps: 4, RebufSeconds: 1},
			{BitrateMbps: 4, RebufSeconds: 0},
		},
	}
	w := QoEWeights{Rebuf: 4, Smooth: 1}
	// bitrate sum 10, rebuf penalty 4, smoothness |4-2|+|4-4| = 2.
	want := (10.0 - 4 - 2) / 3
	if got := QoE(log, w); math.Abs(got-want) > 1e-12 {
		t.Errorf("QoE = %v, want %v", got, want)
	}
	if QoE(nil, w) != 0 {
		t.Error("nil log should give 0")
	}
	if QoE(&SessionLog{}, w) != 0 {
		t.Error("empty log should give 0")
	}
}

func TestQoEOrdersAlgorithmsSanely(t *testing.T) {
	// On a fast link, MPC's QoE should beat a forced-lowest-quality
	// session (higher bitrate, no stalls either way).
	logMPC, _, err := Run(testConfig(t, 20, abr.NewMPC()))
	if err != nil {
		t.Fatal(err)
	}
	logLow, _, err := Run(testConfig(t, 20, &abr.Fixed{Quality: 0}))
	if err != nil {
		t.Fatal(err)
	}
	w := DefaultQoEWeights()
	if QoE(logMPC, w) <= QoE(logLow, w) {
		t.Errorf("MPC QoE %v should beat lowest-quality QoE %v on a fast link",
			QoE(logMPC, w), QoE(logLow, w))
	}
}
