package player

import (
	"testing"
	"testing/quick"

	"veritas/internal/abr"
	"veritas/internal/netem"
	"veritas/internal/trace"
	"veritas/internal/video"
)

// TestQuickSessionInvariants drives short sessions across random
// bandwidths, buffer caps and ABR algorithms and checks the invariants
// every session must satisfy regardless of configuration.
func TestQuickSessionInvariants(t *testing.T) {
	vid := video.MustSynthesize(func() video.Config {
		c := video.DefaultConfig(1)
		c.NumChunks = 30
		return c
	}())

	f := func(bwRaw, bufRaw, algRaw, seedRaw uint8) bool {
		bw := 0.5 + float64(bwRaw%80)*0.1 // 0.5 .. 8.4 Mbps
		buf := 4 + float64(bufRaw%26)     // 4 .. 29 s
		var alg abr.Algorithm
		switch algRaw % 4 {
		case 0:
			alg = abr.NewMPC()
		case 1:
			alg = abr.NewBBA()
		case 2:
			alg = abr.NewBOLA()
		default:
			alg = abr.NewRandom(int64(seedRaw))
		}
		log, m, err := Run(Config{
			Video:     vid,
			ABR:       alg,
			Trace:     trace.Constant(bw),
			Net:       netem.Config{RTT: 0.160, SlowStartRestart: true, JitterStd: 0.05, Seed: int64(seedRaw)},
			BufferCap: buf,
		})
		if err != nil {
			return false
		}
		// Invariant: all chunks downloaded, in causal order.
		if len(log.Records) != vid.NumChunks() {
			return false
		}
		prevEnd := 0.0
		for _, r := range log.Records {
			if r.Start < prevEnd || r.End <= r.Start {
				return false
			}
			prevEnd = r.End
		}
		// Invariant: metrics in their domains.
		if m.RebufRatio < 0 || m.RebufRatio >= 1 {
			return false
		}
		if m.AvgSSIM <= 0 || m.AvgSSIM > 1 {
			return false
		}
		if m.AvgBitrateMbps <= 0 {
			return false
		}
		// Invariant: session wall-clock covers at least the total
		// download time.
		if m.SessionSeconds <= 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestSessionStalledBandwidthSurfacesError injects a trace that dies
// mid-session and checks the failure is reported, not swallowed.
func TestSessionStalledBandwidthSurfacesError(t *testing.T) {
	tr, err := trace.New([]trace.Point{{T: 0, Mbps: 5}, {T: 30, Mbps: 0}})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = Run(Config{
		Video:     video.MustSynthesize(video.DefaultConfig(1)),
		ABR:       abr.NewMPC(),
		Trace:     tr,
		Net:       netem.Config{RTT: 0.160, SlowStartRestart: true},
		BufferCap: 5,
	})
	if err == nil {
		t.Fatal("session over a dying link should fail")
	}
}

// TestQuickRebufferAccounting checks that rebuffer seconds equal the
// sum of per-chunk stalls for arbitrary fixed-quality sessions.
func TestQuickRebufferAccounting(t *testing.T) {
	vid := video.MustSynthesize(func() video.Config {
		c := video.DefaultConfig(2)
		c.NumChunks = 25
		return c
	}())
	f := func(qRaw, bwRaw uint8) bool {
		q := int(qRaw) % vid.NumQualities()
		bw := 0.3 + float64(bwRaw%50)*0.1
		log, m, err := Run(Config{
			Video:     vid,
			ABR:       &abr.Fixed{Quality: q},
			Trace:     trace.Constant(bw),
			Net:       netem.Config{RTT: 0.160, SlowStartRestart: true},
			BufferCap: 5,
		})
		if err != nil {
			return false
		}
		var sum float64
		for _, r := range log.Records {
			if r.RebufSeconds < 0 {
				return false
			}
			sum += r.RebufSeconds
		}
		return almostEqual(sum, m.RebufSeconds, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func almostEqual(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}
