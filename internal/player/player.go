// Package player simulates a video streaming session: the client-side
// loop that asks an ABR algorithm for the next quality, downloads the
// chunk over an emulated connection, maintains the playback buffer, and
// logs exactly the observations the paper says a deployed system records
// (chunk size, start/end times, and the TCP state at each chunk start).
//
// The buffer-cap wait between downloads is load-bearing: it creates the
// idle gaps that trigger TCP slow-start restart, which is why observed
// throughput under-reports ground-truth bandwidth and why Veritas's
// abduction is needed at all.
package player

import (
	"errors"
	"fmt"
	"math"

	"veritas/internal/abr"
	"veritas/internal/netem"
	"veritas/internal/tcp"
	"veritas/internal/trace"
	"veritas/internal/video"
)

// Config describes one session.
type Config struct {
	Video     *video.Video
	ABR       abr.Algorithm
	Trace     *trace.Trace // ground-truth bandwidth driving the emulator
	Net       netem.Config
	BufferCap float64 // seconds of video the player may buffer (paper default: 5 s)
	// MaxChunks limits the session length (0 = whole video). Used by
	// interventional experiments that need session prefixes.
	MaxChunks int
}

// Validate reports the first problem with the config, if any.
func (c Config) Validate() error {
	switch {
	case c.Video == nil:
		return errors.New("player: nil video")
	case c.ABR == nil:
		return errors.New("player: nil ABR algorithm")
	case c.Trace == nil:
		return errors.New("player: nil trace")
	case c.BufferCap <= c.Video.ChunkSeconds():
		return fmt.Errorf("player: buffer cap %v must exceed one chunk duration %v",
			c.BufferCap, c.Video.ChunkSeconds())
	case c.MaxChunks < 0:
		return fmt.Errorf("player: MaxChunks %d < 0", c.MaxChunks)
	}
	return c.Net.Validate()
}

// ChunkRecord is the per-chunk log line of a session — the observed
// variables of the paper's causal DAG (S_n, D_n, s_n, e_n, W_sn, Y_n).
type ChunkRecord struct {
	Index          int       // chunk index n
	Quality        int       // chosen ladder rung
	SizeBytes      float64   // S_n
	Start          float64   // s_n, seconds
	End            float64   // e_n, seconds
	TCP            tcp.State // W_sn, logged at download start
	ThroughputMbps float64   // Y_n = S_n / (e_n - s_n)
	RebufSeconds   float64   // stall time charged to this chunk
	SSIM           float64   // quality metric of the chunk shown
	BitrateMbps    float64   // actual encoded bitrate of the chunk
}

// DownloadSeconds returns D_n.
func (r ChunkRecord) DownloadSeconds() float64 { return r.End - r.Start }

// SessionLog is everything a deployed system would log for one session.
// It intentionally excludes the ground-truth bandwidth trace: that is
// the latent confounder Veritas must abduce.
type SessionLog struct {
	Records      []ChunkRecord
	BufferCap    float64
	RTT          float64
	ChunkSeconds float64
	ABRName      string
}

// Throughputs returns the observed per-chunk throughput series.
func (l *SessionLog) Throughputs() []float64 {
	out := make([]float64, len(l.Records))
	for i, r := range l.Records {
		out[i] = r.ThroughputMbps
	}
	return out
}

// Prefix returns a log containing only the first n chunk records (a view
// sharing backing storage).
func (l *SessionLog) Prefix(n int) *SessionLog {
	if n > len(l.Records) {
		n = len(l.Records)
	}
	cp := *l
	cp.Records = l.Records[:n]
	return &cp
}

// Metrics summarizes session quality the way the paper reports it.
type Metrics struct {
	AvgSSIM         float64 // mean SSIM over chunks shown
	RebufRatio      float64 // rebuffer seconds / (playback + rebuffer), fraction
	AvgBitrateMbps  float64 // mean encoded bitrate of chunks shown
	RebufSeconds    float64
	PlaybackSeconds float64
	SessionSeconds  float64 // wall-clock time from first request to last download
	NumChunks       int
	QualitySwitches int
}

// Run simulates the session and returns its log and metrics.
func Run(cfg Config) (*SessionLog, Metrics, error) {
	if err := cfg.Validate(); err != nil {
		return nil, Metrics{}, err
	}
	conn, err := netem.NewConn(cfg.Net)
	if err != nil {
		return nil, Metrics{}, err
	}
	v := cfg.Video
	n := v.NumChunks()
	if cfg.MaxChunks > 0 && cfg.MaxChunks < n {
		n = cfg.MaxChunks
	}

	log := &SessionLog{
		Records:      make([]ChunkRecord, 0, n),
		BufferCap:    cfg.BufferCap,
		RTT:          cfg.Net.RTT,
		ChunkSeconds: v.ChunkSeconds(),
		ABRName:      cfg.ABR.Name(),
	}

	var (
		t         float64 // wall clock
		buffer    float64 // seconds of video buffered
		rebuf     float64
		lastQ     = -1
		switches  int
		pastTputs []float64
	)

	for i := 0; i < n; i++ {
		q := cfg.ABR.Choose(abr.Context{
			ChunkIndex:         i,
			BufferSeconds:      buffer,
			BufferCap:          cfg.BufferCap,
			LastQuality:        lastQ,
			PastThroughputMbps: pastTputs,
			Video:              v,
		})
		if q < 0 || q >= v.NumQualities() {
			return nil, Metrics{}, fmt.Errorf("player: ABR %s chose invalid quality %d", cfg.ABR.Name(), q)
		}
		size := v.Size(i, q)
		st := conn.State(t)
		end, err := conn.Download(t, size, cfg.Trace)
		if err != nil {
			return nil, Metrics{}, fmt.Errorf("player: chunk %d: %w", i, err)
		}
		dl := end - t
		var stall float64
		if i == 0 {
			// Startup: playback begins once the first chunk arrives;
			// startup delay is not charged as rebuffering, matching the
			// rebuffering-ratio definition used by the paper's testbed.
			buffer = v.ChunkSeconds()
		} else {
			if dl > buffer {
				stall = dl - buffer
				buffer = 0
			} else {
				buffer -= dl
			}
			buffer += v.ChunkSeconds()
		}
		rebuf += stall
		tput := tcp.Mbps(size, dl)
		log.Records = append(log.Records, ChunkRecord{
			Index:          i,
			Quality:        q,
			SizeBytes:      size,
			Start:          t,
			End:            end,
			TCP:            st,
			ThroughputMbps: tput,
			RebufSeconds:   stall,
			SSIM:           v.SSIM(i, q),
			BitrateMbps:    v.Bitrate(i, q),
		})
		pastTputs = append(pastTputs, tput)
		if lastQ >= 0 && q != lastQ {
			switches++
		}
		lastQ = q
		t = end

		// Buffer cap: pause requesting until there is room for the next
		// chunk. Playback continues during the pause. These off-periods
		// are where TCP slow-start restart bites.
		if i < n-1 {
			wait := buffer - (cfg.BufferCap - v.ChunkSeconds())
			if wait > 0 {
				t += wait
				buffer -= wait
			}
		}
	}

	m := summarize(log, rebuf, switches)
	return log, m, nil
}

func summarize(log *SessionLog, rebuf float64, switches int) Metrics {
	var ssim, bitrate float64
	for _, r := range log.Records {
		ssim += r.SSIM
		bitrate += r.BitrateMbps
	}
	nc := len(log.Records)
	playback := float64(nc) * log.ChunkSeconds
	m := Metrics{
		RebufSeconds:    rebuf,
		PlaybackSeconds: playback,
		NumChunks:       nc,
		QualitySwitches: switches,
	}
	if nc > 0 {
		m.AvgSSIM = ssim / float64(nc)
		m.AvgBitrateMbps = bitrate / float64(nc)
		m.SessionSeconds = log.Records[nc-1].End - log.Records[0].Start
	}
	if playback+rebuf > 0 {
		m.RebufRatio = rebuf / (playback + rebuf)
	}
	if math.IsNaN(m.RebufRatio) {
		m.RebufRatio = 0
	}
	return m
}
