package player

import (
	"encoding/json"
	"errors"
	"io"
)

// EncodeLog writes the session log as indented JSON, the interchange
// format of the cmd tools (sessionrun → abduct → whatif).
func EncodeLog(w io.Writer, log *SessionLog) error {
	if log == nil {
		return errors.New("player: nil session log")
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// DecodeLog parses a session log written by EncodeLog.
func DecodeLog(r io.Reader) (*SessionLog, error) {
	var log SessionLog
	dec := json.NewDecoder(r)
	if err := dec.Decode(&log); err != nil {
		return nil, err
	}
	if len(log.Records) == 0 {
		return nil, errors.New("player: decoded log has no chunk records")
	}
	if log.ChunkSeconds <= 0 {
		return nil, errors.New("player: decoded log has non-positive chunk duration")
	}
	return &log, nil
}
