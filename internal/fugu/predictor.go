package fugu

import (
	"errors"
	"fmt"
	"math"

	"veritas/internal/player"
)

// HistoryEntry is one past chunk's observation: the inputs FuguNN sees.
type HistoryEntry struct {
	SizeBytes       float64
	DownloadSeconds float64
}

// Sample is one training or evaluation example: the previous K chunks,
// the candidate next chunk size, and the true download time.
type Sample struct {
	History         []HistoryEntry
	NextSizeBytes   float64
	DownloadSeconds float64
}

// DefaultK is the history length the predictor conditions on.
const DefaultK = 8

// BuildDataset slides a window over each session log and emits one
// sample per chunk that has a full K-chunk history. This is exactly the
// on-policy data a deployed system would collect — which is what makes
// the resulting model associational.
func BuildDataset(logs []*player.SessionLog, k int) []Sample {
	if k <= 0 {
		k = DefaultK
	}
	var out []Sample
	for _, log := range logs {
		recs := log.Records
		for n := k; n < len(recs); n++ {
			h := make([]HistoryEntry, k)
			for j := 0; j < k; j++ {
				r := recs[n-k+j]
				h[j] = HistoryEntry{SizeBytes: r.SizeBytes, DownloadSeconds: r.DownloadSeconds()}
			}
			out = append(out, Sample{
				History:         h,
				NextSizeBytes:   recs[n].SizeBytes,
				DownloadSeconds: recs[n].DownloadSeconds(),
			})
		}
	}
	return out
}

// Predictor is a trained FuguNN: an MLP over standardized features.
type Predictor struct {
	net     *Net
	k       int
	inMean  []float64
	inStd   []float64
	outMean float64
	outStd  float64
}

// PredictorConfig controls training.
type PredictorConfig struct {
	K      int   // history length (default DefaultK)
	Hidden []int // hidden layer sizes (default [64, 64])
	Train  TrainConfig
	Seed   int64
}

func (c PredictorConfig) withDefaults() PredictorConfig {
	if c.K == 0 {
		c.K = DefaultK
	}
	if len(c.Hidden) == 0 {
		c.Hidden = []int{64, 64}
	}
	if c.Train.Seed == 0 {
		c.Train.Seed = c.Seed + 1
	}
	return c
}

// features flattens a (history, next size) pair into the network input:
// sizes in MB, download times in seconds.
func features(h []HistoryEntry, nextSizeBytes float64) []float64 {
	x := make([]float64, 0, 2*len(h)+1)
	for _, e := range h {
		x = append(x, e.SizeBytes/1e6, e.DownloadSeconds)
	}
	return append(x, nextSizeBytes/1e6)
}

// TrainPredictor fits FuguNN on the samples.
func TrainPredictor(samples []Sample, cfg PredictorConfig) (*Predictor, error) {
	cfg = cfg.withDefaults()
	if len(samples) == 0 {
		return nil, errors.New("fugu: empty training set")
	}
	dim := 2*cfg.K + 1
	X := make([][]float64, len(samples))
	Y := make([][]float64, len(samples))
	for i, s := range samples {
		if len(s.History) != cfg.K {
			return nil, fmt.Errorf("fugu: sample %d has history %d, want %d", i, len(s.History), cfg.K)
		}
		X[i] = features(s.History, s.NextSizeBytes)
		Y[i] = []float64{s.DownloadSeconds}
	}

	p := &Predictor{k: cfg.K, inMean: make([]float64, dim), inStd: make([]float64, dim)}
	for j := 0; j < dim; j++ {
		var m float64
		for i := range X {
			m += X[i][j]
		}
		m /= float64(len(X))
		var v float64
		for i := range X {
			d := X[i][j] - m
			v += d * d
		}
		sd := math.Sqrt(v / float64(len(X)))
		if sd < 1e-9 {
			sd = 1
		}
		p.inMean[j], p.inStd[j] = m, sd
	}
	var om, ov float64
	for i := range Y {
		om += Y[i][0]
	}
	om /= float64(len(Y))
	for i := range Y {
		d := Y[i][0] - om
		ov += d * d
	}
	osd := math.Sqrt(ov / float64(len(Y)))
	if osd < 1e-9 {
		osd = 1
	}
	p.outMean, p.outStd = om, osd

	for i := range X {
		for j := 0; j < dim; j++ {
			X[i][j] = (X[i][j] - p.inMean[j]) / p.inStd[j]
		}
		Y[i][0] = (Y[i][0] - p.outMean) / p.outStd
	}

	layers := append([]int{dim}, cfg.Hidden...)
	layers = append(layers, 1)
	net, err := NewNet(layers, cfg.Seed)
	if err != nil {
		return nil, err
	}
	if _, err := net.Train(X, Y, cfg.Train); err != nil {
		return nil, err
	}
	p.net = net
	return p, nil
}

// K returns the history length the predictor expects.
func (p *Predictor) K() int { return p.k }

// Predict returns the predicted download time in seconds for the next
// chunk of the given size after the given history. Predictions are
// clamped at zero (a download cannot take negative time).
func (p *Predictor) Predict(history []HistoryEntry, nextSizeBytes float64) (float64, error) {
	if len(history) != p.k {
		return 0, fmt.Errorf("fugu: history length %d, want %d", len(history), p.k)
	}
	x := features(history, nextSizeBytes)
	for j := range x {
		x[j] = (x[j] - p.inMean[j]) / p.inStd[j]
	}
	y := p.net.Forward(x)[0]*p.outStd + p.outMean
	if y < 0 {
		y = 0
	}
	return y, nil
}

// HistoryFromLog extracts the most recent K-entry history ending at
// chunk index end (exclusive) from a session log.
func HistoryFromLog(log *player.SessionLog, end, k int) ([]HistoryEntry, error) {
	if end < k {
		return nil, fmt.Errorf("fugu: need %d chunks of history, have %d", k, end)
	}
	h := make([]HistoryEntry, k)
	for j := 0; j < k; j++ {
		r := log.Records[end-k+j]
		h[j] = HistoryEntry{SizeBytes: r.SizeBytes, DownloadSeconds: r.DownloadSeconds()}
	}
	return h, nil
}
