// Package fugu reimplements the associational download-time predictor
// the paper compares against (FuguNN, from "Learning in situ", NSDI 20):
// a small fully-connected neural network that predicts the download time
// of a chunk from its size and the sizes and download times of the
// previous K chunks. Trained on logs of a deployed ABR, it answers the
// associational query Q1 well but — as the paper's Figures 2(b) and 12
// show — is biased for the causal query Q2. Reproducing that bias is the
// point of this package.
package fugu

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Net is a plain multilayer perceptron with ReLU hidden activations and
// a linear output, trained by Adam on mean squared error. float64
// throughout; no external dependencies.
type Net struct {
	sizes   []int
	weights [][]float64 // layer l: sizes[l+1] × sizes[l], row-major
	biases  [][]float64

	// Adam state.
	mW, vW [][]float64
	mB, vB [][]float64
	step   int
}

// NewNet builds a network with the given layer sizes (input, hidden...,
// output) and He-initialized weights.
func NewNet(sizes []int, seed int64) (*Net, error) {
	if len(sizes) < 2 {
		return nil, errors.New("fugu: need at least input and output layers")
	}
	for i, s := range sizes {
		if s <= 0 {
			return nil, fmt.Errorf("fugu: layer %d has non-positive size %d", i, s)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	n := &Net{sizes: append([]int(nil), sizes...)}
	for l := 0; l+1 < len(sizes); l++ {
		in, out := sizes[l], sizes[l+1]
		w := make([]float64, in*out)
		scale := math.Sqrt(2 / float64(in))
		for i := range w {
			w[i] = rng.NormFloat64() * scale
		}
		n.weights = append(n.weights, w)
		n.biases = append(n.biases, make([]float64, out))
		n.mW = append(n.mW, make([]float64, in*out))
		n.vW = append(n.vW, make([]float64, in*out))
		n.mB = append(n.mB, make([]float64, out))
		n.vB = append(n.vB, make([]float64, out))
	}
	return n, nil
}

// NumLayers returns the number of weight layers.
func (n *Net) NumLayers() int { return len(n.weights) }

// InputSize returns the expected input dimension.
func (n *Net) InputSize() int { return n.sizes[0] }

// OutputSize returns the output dimension.
func (n *Net) OutputSize() int { return n.sizes[len(n.sizes)-1] }

// Forward runs inference, returning the output activations.
func (n *Net) Forward(x []float64) []float64 {
	if len(x) != n.sizes[0] {
		panic(fmt.Sprintf("fugu: input size %d, want %d", len(x), n.sizes[0]))
	}
	act := append([]float64(nil), x...)
	for l := 0; l < len(n.weights); l++ {
		act = n.layerForward(l, act, l < len(n.weights)-1)
	}
	return act
}

func (n *Net) layerForward(l int, in []float64, relu bool) []float64 {
	inSize, outSize := n.sizes[l], n.sizes[l+1]
	out := make([]float64, outSize)
	w := n.weights[l]
	for o := 0; o < outSize; o++ {
		s := n.biases[l][o]
		row := w[o*inSize : (o+1)*inSize]
		for i, xi := range in {
			s += row[i] * xi
		}
		if relu && s < 0 {
			s = 0
		}
		out[o] = s
	}
	return out
}

// TrainConfig controls optimization.
type TrainConfig struct {
	Epochs    int     // full passes over the data (default 60)
	BatchSize int     // minibatch size (default 32)
	LR        float64 // Adam learning rate (default 1e-3)
	Seed      int64   // shuffling seed
}

func (c TrainConfig) withDefaults() TrainConfig {
	if c.Epochs == 0 {
		c.Epochs = 60
	}
	if c.BatchSize == 0 {
		c.BatchSize = 32
	}
	if c.LR == 0 {
		c.LR = 1e-3
	}
	return c
}

// Train fits the network to (X, Y) with Adam + MSE and returns the final
// epoch's mean loss.
func (n *Net) Train(X, Y [][]float64, cfg TrainConfig) (float64, error) {
	if len(X) == 0 || len(X) != len(Y) {
		return 0, fmt.Errorf("fugu: bad dataset: %d inputs, %d targets", len(X), len(Y))
	}
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	idx := make([]int, len(X))
	for i := range idx {
		idx[i] = i
	}
	var lastLoss float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		var epochLoss float64
		for start := 0; start < len(idx); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			epochLoss += n.trainBatch(X, Y, idx[start:end], cfg.LR)
		}
		lastLoss = epochLoss / float64(len(idx))
	}
	return lastLoss, nil
}

// trainBatch accumulates gradients over the batch and applies one Adam
// step; returns the summed loss.
func (n *Net) trainBatch(X, Y [][]float64, batch []int, lr float64) float64 {
	L := len(n.weights)
	gradW := make([][]float64, L)
	gradB := make([][]float64, L)
	for l := 0; l < L; l++ {
		gradW[l] = make([]float64, len(n.weights[l]))
		gradB[l] = make([]float64, len(n.biases[l]))
	}

	var loss float64
	for _, s := range batch {
		x, y := X[s], Y[s]
		// Forward pass, keeping activations.
		acts := make([][]float64, L+1)
		acts[0] = x
		for l := 0; l < L; l++ {
			acts[l+1] = n.layerForward(l, acts[l], l < L-1)
		}
		out := acts[L]
		// MSE gradient at the output.
		delta := make([]float64, len(out))
		for o := range out {
			d := out[o] - y[o]
			loss += 0.5 * d * d
			delta[o] = d
		}
		// Backward pass.
		for l := L - 1; l >= 0; l-- {
			inSize, outSize := n.sizes[l], n.sizes[l+1]
			in := acts[l]
			w := n.weights[l]
			for o := 0; o < outSize; o++ {
				d := delta[o]
				if d == 0 {
					continue
				}
				gradB[l][o] += d
				grow := gradW[l][o*inSize : (o+1)*inSize]
				for i, xi := range in {
					grow[i] += d * xi
				}
			}
			if l > 0 {
				prev := make([]float64, inSize)
				for o := 0; o < outSize; o++ {
					d := delta[o]
					if d == 0 {
						continue
					}
					row := w[o*inSize : (o+1)*inSize]
					for i := range prev {
						prev[i] += d * row[i]
					}
				}
				// ReLU derivative of the hidden activation.
				for i := range prev {
					if acts[l][i] <= 0 {
						prev[i] = 0
					}
				}
				delta = prev
			}
		}
	}

	inv := 1 / float64(len(batch))
	n.step++
	const beta1, beta2, eps = 0.9, 0.999, 1e-8
	bc1 := 1 - math.Pow(beta1, float64(n.step))
	bc2 := 1 - math.Pow(beta2, float64(n.step))
	for l := 0; l < L; l++ {
		adam(n.weights[l], gradW[l], n.mW[l], n.vW[l], lr, inv, beta1, beta2, eps, bc1, bc2)
		adam(n.biases[l], gradB[l], n.mB[l], n.vB[l], lr, inv, beta1, beta2, eps, bc1, bc2)
	}
	return loss
}

func adam(param, grad, m, v []float64, lr, inv, beta1, beta2, eps, bc1, bc2 float64) {
	for i := range param {
		g := grad[i] * inv
		m[i] = beta1*m[i] + (1-beta1)*g
		v[i] = beta2*v[i] + (1-beta2)*g*g
		mhat := m[i] / bc1
		vhat := v[i] / bc2
		param[i] -= lr * mhat / (math.Sqrt(vhat) + eps)
	}
}
