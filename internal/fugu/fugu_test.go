package fugu

import (
	"math"
	"testing"

	"veritas/internal/abr"
	"veritas/internal/netem"
	"veritas/internal/player"
	"veritas/internal/trace"
	"veritas/internal/video"
)

func TestNewNetValidation(t *testing.T) {
	if _, err := NewNet([]int{3}, 1); err == nil {
		t.Error("single layer should fail")
	}
	if _, err := NewNet([]int{3, 0, 1}, 1); err == nil {
		t.Error("zero-size layer should fail")
	}
	n, err := NewNet([]int{4, 8, 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if n.NumLayers() != 2 || n.InputSize() != 4 || n.OutputSize() != 1 {
		t.Error("layer accessors wrong")
	}
}

func TestForwardDeterministic(t *testing.T) {
	a, _ := NewNet([]int{2, 4, 1}, 5)
	b, _ := NewNet([]int{2, 4, 1}, 5)
	x := []float64{0.3, -0.7}
	ya, yb := a.Forward(x), b.Forward(x)
	if ya[0] != yb[0] {
		t.Error("same seed nets differ")
	}
	c, _ := NewNet([]int{2, 4, 1}, 6)
	if c.Forward(x)[0] == ya[0] {
		t.Log("note: different seeds coincided (unlikely)")
	}
}

func TestForwardPanicsOnBadInput(t *testing.T) {
	n, _ := NewNet([]int{2, 3, 1}, 1)
	defer func() {
		if recover() == nil {
			t.Error("wrong input size should panic")
		}
	}()
	n.Forward([]float64{1})
}

func TestTrainLearnsLinearFunction(t *testing.T) {
	// y = 2a - b + 0.5 should be learnable to high accuracy.
	n, _ := NewNet([]int{2, 16, 1}, 3)
	var X, Y [][]float64
	for i := 0; i < 200; i++ {
		a := float64(i%20)/10 - 1
		b := float64((i*7)%20)/10 - 1
		X = append(X, []float64{a, b})
		Y = append(Y, []float64{2*a - b + 0.5})
	}
	loss, err := n.Train(X, Y, TrainConfig{Epochs: 300, BatchSize: 16, LR: 5e-3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if loss > 0.005 {
		t.Errorf("final loss %v, want < 0.005", loss)
	}
	got := n.Forward([]float64{0.5, -0.5})[0]
	want := 2*0.5 + 0.5 + 0.5
	if math.Abs(got-want) > 0.2 {
		t.Errorf("prediction %v, want %v", got, want)
	}
}

func TestTrainLearnsNonlinearFunction(t *testing.T) {
	// y = a² needs the hidden nonlinearity.
	n, _ := NewNet([]int{1, 32, 32, 1}, 4)
	var X, Y [][]float64
	for i := 0; i <= 100; i++ {
		a := float64(i)/50 - 1
		X = append(X, []float64{a})
		Y = append(Y, []float64{a * a})
	}
	if _, err := n.Train(X, Y, TrainConfig{Epochs: 500, BatchSize: 16, LR: 3e-3, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	for _, a := range []float64{-0.8, -0.3, 0, 0.4, 0.9} {
		got := n.Forward([]float64{a})[0]
		if math.Abs(got-a*a) > 0.1 {
			t.Errorf("f(%v) = %v, want %v", a, got, a*a)
		}
	}
}

func TestTrainRejectsBadData(t *testing.T) {
	n, _ := NewNet([]int{1, 4, 1}, 1)
	if _, err := n.Train(nil, nil, TrainConfig{}); err == nil {
		t.Error("empty dataset should fail")
	}
	if _, err := n.Train([][]float64{{1}}, nil, TrainConfig{}); err == nil {
		t.Error("mismatched dataset should fail")
	}
}

func sessionLogs(t *testing.T, n int) []*player.SessionLog {
	t.Helper()
	logs := make([]*player.SessionLog, n)
	for i := 0; i < n; i++ {
		gt, err := trace.Generate(trace.GenConfig{
			MinMbps: 1, MaxMbps: 8, Interval: 5, Horizon: 720,
			StepMbps: 0.4, JumpProb: 0.02, Seed: int64(100 + i),
		})
		if err != nil {
			t.Fatal(err)
		}
		cfg := video.DefaultConfig(1)
		cfg.NumChunks = 60
		log, _, err := player.Run(player.Config{
			Video:     video.MustSynthesize(cfg),
			ABR:       abr.NewMPC(),
			Trace:     gt,
			Net:       netem.Config{RTT: 0.160, SlowStartRestart: true},
			BufferCap: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		logs[i] = log
	}
	return logs
}

func TestBuildDataset(t *testing.T) {
	logs := sessionLogs(t, 2)
	ds := BuildDataset(logs, 8)
	want := 2 * (60 - 8)
	if len(ds) != want {
		t.Fatalf("dataset size %d, want %d", len(ds), want)
	}
	for i, s := range ds {
		if len(s.History) != 8 {
			t.Fatalf("sample %d history %d", i, len(s.History))
		}
		if s.NextSizeBytes <= 0 || s.DownloadSeconds <= 0 {
			t.Fatalf("sample %d has non-positive fields", i)
		}
	}
}

func TestBuildDatasetDefaultK(t *testing.T) {
	logs := sessionLogs(t, 1)
	ds := BuildDataset(logs, 0)
	if len(ds) != 60-DefaultK {
		t.Errorf("default K dataset size %d", len(ds))
	}
}

func TestPredictorOnPolicyAccuracy(t *testing.T) {
	// Trained and evaluated on the same ABR's data distribution, Fugu
	// should predict download times well — the associational query Q1.
	logs := sessionLogs(t, 6)
	ds := BuildDataset(logs, 8)
	trainDS, testDS := ds[:len(ds)*4/5], ds[len(ds)*4/5:]
	p, err := TrainPredictor(trainDS, PredictorConfig{
		Seed:  1,
		Train: TrainConfig{Epochs: 80, Seed: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	var mae, mean float64
	for _, s := range testDS {
		got, err := p.Predict(s.History, s.NextSizeBytes)
		if err != nil {
			t.Fatal(err)
		}
		mae += math.Abs(got - s.DownloadSeconds)
		mean += s.DownloadSeconds
	}
	mae /= float64(len(testDS))
	mean /= float64(len(testDS))
	if mae > mean {
		t.Errorf("on-policy MAE %v exceeds mean download time %v", mae, mean)
	}
}

func TestPredictValidation(t *testing.T) {
	logs := sessionLogs(t, 1)
	ds := BuildDataset(logs, 4)
	p, err := TrainPredictor(ds, PredictorConfig{K: 4, Train: TrainConfig{Epochs: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Predict(make([]HistoryEntry, 3), 1e6); err == nil {
		t.Error("wrong history length should fail")
	}
	if p.K() != 4 {
		t.Errorf("K() = %d", p.K())
	}
}

func TestPredictNonNegative(t *testing.T) {
	logs := sessionLogs(t, 2)
	ds := BuildDataset(logs, 8)
	p, err := TrainPredictor(ds, PredictorConfig{Train: TrainConfig{Epochs: 10}})
	if err != nil {
		t.Fatal(err)
	}
	// Extreme out-of-distribution input must still give a non-negative time.
	h := make([]HistoryEntry, 8)
	for i := range h {
		h[i] = HistoryEntry{SizeBytes: 10, DownloadSeconds: 0.001}
	}
	got, err := p.Predict(h, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got < 0 {
		t.Errorf("negative prediction %v", got)
	}
}

func TestTrainPredictorValidation(t *testing.T) {
	if _, err := TrainPredictor(nil, PredictorConfig{}); err == nil {
		t.Error("empty training set should fail")
	}
	bad := []Sample{{History: make([]HistoryEntry, 3), NextSizeBytes: 1, DownloadSeconds: 1}}
	if _, err := TrainPredictor(bad, PredictorConfig{K: 8}); err == nil {
		t.Error("history/K mismatch should fail")
	}
}

func TestHistoryFromLog(t *testing.T) {
	logs := sessionLogs(t, 1)
	h, err := HistoryFromLog(logs[0], 20, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(h) != 8 {
		t.Fatalf("history length %d", len(h))
	}
	if h[7].SizeBytes != logs[0].Records[19].SizeBytes {
		t.Error("history misaligned")
	}
	if _, err := HistoryFromLog(logs[0], 5, 8); err == nil {
		t.Error("insufficient history should fail")
	}
}
