package hmm

import (
	"math"
	"testing"
)

func TestIntervalForwardBackwardShapes(t *testing.T) {
	m := testModel(t, 10)
	var obs []Observation
	for i := 0; i < 10; i++ {
		obs = append(obs, obsFor(5, 2e6, i*3)) // gaps: intervals 0,3,6,...
	}
	post, err := m.IntervalForwardBackward(obs)
	if err != nil {
		t.Fatal(err)
	}
	wantT := obs[len(obs)-1].StartInterval + 1
	if post.T != wantT {
		t.Fatalf("T = %d, want %d", post.T, wantT)
	}
	for tt := 0; tt < post.T; tt++ {
		g := post.Gamma(tt)
		var s float64
		for _, v := range g {
			if v < -1e-12 {
				t.Fatalf("negative posterior at interval %d", tt)
			}
			s += v
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("Gamma[%d] sums to %v", tt, s)
		}
	}
}

func TestIntervalPosteriorMatchesChunkPosterior(t *testing.T) {
	// At chunk-start intervals, the interval-chain marginals must agree
	// with the embedded (A^Δ) chain's marginals: they are two
	// factorizations of the same joint.
	m := testModel(t, 10)
	var obs []Observation
	caps := []float64{4, 4, 4.5, 5, 5, 5.5, 6, 6, 6, 6}
	for i, c := range caps {
		obs = append(obs, obsFor(c, 3e6, i*2))
	}
	chunkPost, err := m.ForwardBackward(obs)
	if err != nil {
		t.Fatal(err)
	}
	intPost, err := m.IntervalForwardBackward(obs)
	if err != nil {
		t.Fatal(err)
	}
	for n, o := range obs {
		for i := 0; i < m.NumStates(); i++ {
			a := chunkPost.Gamma(n)[i]
			b := intPost.Gamma(o.StartInterval)[i]
			if math.Abs(a-b) > 1e-6 {
				t.Fatalf("chunk %d state %d: embedded %v vs interval %v", n, i, a, b)
			}
		}
	}
	if math.Abs(chunkPost.LogLikelihood-intPost.LogLikelihood) > 1e-6 {
		t.Errorf("log-likelihoods differ: %v vs %v",
			chunkPost.LogLikelihood, intPost.LogLikelihood)
	}
}

func TestIntervalMultipleChunksPerInterval(t *testing.T) {
	// Two chunks in the same interval multiply their emissions; the
	// posterior should concentrate harder than with one chunk.
	m := testModel(t, 10)
	one := []Observation{obsFor(5, 1e6, 0), obsFor(5, 1e6, 1)}
	two := []Observation{obsFor(5, 1e6, 0), obsFor(5, 1e6, 0), obsFor(5, 1e6, 1), obsFor(5, 1e6, 1)}
	p1, err := m.IntervalForwardBackward(one)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := m.IntervalForwardBackward(two)
	if err != nil {
		t.Fatal(err)
	}
	ent := func(g []float64) float64 {
		var h float64
		for _, v := range g {
			if v > 1e-15 {
				h -= v * math.Log(v)
			}
		}
		return h
	}
	if ent(p2.Gamma(0)) > ent(p1.Gamma(0)) {
		t.Errorf("doubled evidence should not widen the posterior: %v vs %v",
			ent(p2.Gamma(0)), ent(p1.Gamma(0)))
	}
}

func TestIntervalErrors(t *testing.T) {
	m := testModel(t, 10)
	if _, err := m.IntervalForwardBackward(nil); err != ErrNoObservations {
		t.Errorf("want ErrNoObservations, got %v", err)
	}
	bad := []Observation{obsFor(5, 1e6, 3), obsFor(5, 1e6, 1)}
	if _, err := m.IntervalForwardBackward(bad); err == nil {
		t.Error("out-of-order intervals should error")
	}
}

func TestFitTransitionsImprovesLikelihood(t *testing.T) {
	// Observations from a volatile process: EM should raise the
	// likelihood monotonically over the fixed tridiagonal prior.
	m := testModel(t, 10)
	var obs []Observation
	caps := []float64{3, 3, 7, 7, 3, 3, 7, 7, 3, 3, 7, 7, 3, 3, 7, 7}
	for i, c := range caps {
		obs = append(obs, obsFor(c, 4e6, i))
	}
	fit, err := m.FitTransitions(obs, 5, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(fit.LogLikelihoods) != 5 {
		t.Fatalf("recorded %d lls", len(fit.LogLikelihoods))
	}
	for i := 1; i < len(fit.LogLikelihoods); i++ {
		if fit.LogLikelihoods[i] < fit.LogLikelihoods[i-1]-1e-6 {
			t.Errorf("EM decreased likelihood at iter %d: %v -> %v",
				i, fit.LogLikelihoods[i-1], fit.LogLikelihoods[i])
		}
	}
	// The learned matrix must be a valid stochastic matrix.
	if !fit.Model.trans.IsRowStochastic(1e-6) {
		t.Error("learned transition matrix not row-stochastic")
	}
	// And inference with it must still work.
	if _, _, err := fit.Model.Viterbi(obs); err != nil {
		t.Errorf("Viterbi on fitted model: %v", err)
	}
}

func TestFitTransitionsValidation(t *testing.T) {
	m := testModel(t, 10)
	obs := []Observation{obsFor(5, 1e6, 0), obsFor(5, 1e6, 1)}
	if _, err := m.FitTransitions(obs, 0, 0.1); err == nil {
		t.Error("iters=0 should error")
	}
	if _, err := m.FitTransitions(obs, 1, -1); err == nil {
		t.Error("negative smoothing should error")
	}
	if _, err := m.FitTransitions(nil, 1, 0.1); err == nil {
		t.Error("empty observations should error")
	}
	single := []Observation{obsFor(5, 1e6, 0)}
	if _, err := m.FitTransitions(single, 1, 0.1); err == nil {
		t.Error("single interval should error")
	}
}

func TestFitTransitionsDoesNotMutateOriginal(t *testing.T) {
	m := testModel(t, 10)
	before := m.trans.Clone()
	var obs []Observation
	for i := 0; i < 8; i++ {
		obs = append(obs, obsFor(5, 2e6, i))
	}
	if _, err := m.FitTransitions(obs, 3, 0.1); err != nil {
		t.Fatal(err)
	}
	for i := range before.Data {
		if m.trans.Data[i] != before.Data[i] {
			t.Fatal("FitTransitions mutated the original model")
		}
	}
}
