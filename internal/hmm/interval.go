package hmm

import (
	"errors"
	"fmt"
	"math"

	"veritas/internal/mathx"
)

// This file implements the interval-level view of the EHMM: instead of
// embedding transitions between chunk start times (A^Δn), the hidden
// chain runs over every δ-interval 0..T−1 with single-step transitions
// A, and each interval emits the product of the emissions of the chunks
// that start in it (zero, one, or more — exactly the "embedded
// observations" structure of paper §3.2, Figure 4).
//
// The two views agree on the chunk-start marginals; the interval view
// additionally supports exact Baum–Welch re-estimation of the
// transition matrix, offered here as an extension beyond the paper's
// fixed tridiagonal prior.

// IntervalPosterior holds per-interval smoothed distributions. The
// marginals are stored as a T×S row-major slab (carved from the model's
// scratch arena when one is attached); access them through Gamma.
type IntervalPosterior struct {
	gamma []float64 // gamma[t*S+i] = P(C_t = iε | all observations)
	ns    int
	// LogLikelihood is log P(Y_1:N | W, S) under the interval chain.
	LogLikelihood float64
	// T is the number of intervals covered.
	T int
}

// Gamma returns the marginal posterior over states for interval t:
// Gamma(t)[i] = P(C_t = iε | all observations), t = 0..T-1.
func (p *IntervalPosterior) Gamma(t int) []float64 {
	return p.gamma[t*p.ns : (t+1)*p.ns]
}

// States returns the size S of the capacity grid.
func (p *IntervalPosterior) States() int { return p.ns }

// intervalEmissionsInto groups the per-chunk log emissions by start
// interval into the T×S slab sc.intLogE:
// logE[t*S+i] = Σ_{n: s_n ∈ interval t} log P(Y_n | W, S, C=iε).
// Intervals with no chunks contribute zeros (emission probability 1).
// It sizes sc's interval slabs as a side effect and returns T.
func (m *Model) intervalEmissionsInto(sc *Scratch, obs []Observation) (int, error) {
	if len(obs) == 0 {
		return 0, ErrNoObservations
	}
	sc.gaps = growI(sc.gaps, len(obs))
	if err := gapsInto(sc.gaps, obs); err != nil {
		return 0, err
	}
	T := obs[len(obs)-1].StartInterval + 1
	ns := len(m.states)
	sc.intervalSlabs(T, ns)
	logE := sc.intLogE
	for i := range logE {
		logE[i] = 0
	}
	for _, o := range obs {
		row := logE[o.StartInterval*ns : (o.StartInterval+1)*ns]
		for i := 0; i < ns; i++ {
			row[i] += m.EmissionLogProb(o, i)
		}
	}
	return T, nil
}

// IntervalForwardBackward runs scaled forward–backward over the full
// interval chain. With a scratch arena attached the returned posterior
// points into the arena (see the Scratch lifetime contract).
func (m *Model) IntervalForwardBackward(obs []Observation) (*IntervalPosterior, error) {
	sc := m.scratch()
	T, err := m.intervalEmissionsInto(sc, obs)
	if err != nil {
		return nil, err
	}
	if err := m.intervalPasses(sc, T, m.trans); err != nil {
		return nil, err
	}
	ns := len(m.states)
	post := &IntervalPosterior{gamma: sc.intGamma[:T*ns], ns: ns, T: T}
	for t := 0; t < T; t++ {
		g := post.Gamma(t)
		at := sc.intAlpha[t*ns : (t+1)*ns]
		bt := sc.intBeta[t*ns : (t+1)*ns]
		for i := 0; i < ns; i++ {
			g[i] = at[i] * bt[i]
		}
		mathx.Normalize(g)
	}
	var ll float64
	for t := 0; t < T; t++ {
		if sc.intScale[t] > 0 {
			ll += math.Log(sc.intScale[t])
		} else {
			ll = mathx.NegInf
		}
		ll += sc.intShift[t]
	}
	post.LogLikelihood = ll
	return post, nil
}

// intervalPasses runs the scaled alpha/beta recursions over T intervals
// with transition matrix a, reading the log-emission slab sc.intLogE
// and filling sc.intEmit/intAlpha/intBeta/intScale/intShift. The float
// operations match the original allocating implementation exactly.
func (m *Model) intervalPasses(sc *Scratch, T int, a *mathx.Matrix) error {
	ns := len(m.states)
	for t := 0; t < T; t++ {
		logRow := sc.intLogE[t*ns : (t+1)*ns]
		maxLog := mathx.NegInf
		for _, v := range logRow {
			if v > maxLog {
				maxLog = v
			}
		}
		if math.IsInf(maxLog, -1) {
			// No chunk in this interval and somehow -Inf rows: treat as
			// uninformative.
			maxLog = 0
		}
		sc.intShift[t] = maxLog
		row := sc.intEmit[t*ns : (t+1)*ns]
		for i, v := range logRow {
			row[i] = math.Exp(v - maxLog)
		}
	}

	alphaRow := func(t int) []float64 { return sc.intAlpha[t*ns : (t+1)*ns] }
	betaRow := func(t int) []float64 { return sc.intBeta[t*ns : (t+1)*ns] }
	emitRow := func(t int) []float64 { return sc.intEmit[t*ns : (t+1)*ns] }

	a0, e0 := alphaRow(0), emitRow(0)
	for i := 0; i < ns; i++ {
		a0[i] = m.initDist[i] * e0[i]
	}
	sc.intScale[0] = mathx.Normalize(a0)
	for t := 1; t < T; t++ {
		pred := alphaRow(t)
		a.VecMulInto(pred, alphaRow(t-1))
		et := emitRow(t)
		for j := 0; j < ns; j++ {
			pred[j] *= et[j]
		}
		sc.intScale[t] = mathx.Normalize(pred)
		if sc.intScale[t] == 0 {
			return fmt.Errorf("hmm: interval chain died at t=%d (no state has support)", t)
		}
	}

	bLast := betaRow(T - 1)
	for i := range bLast {
		bLast[i] = 1
	}
	for t := T - 2; t >= 0; t-- {
		row := betaRow(t)
		weighted := sc.weighted
		eNext, bNext := emitRow(t+1), betaRow(t+1)
		for j := 0; j < ns; j++ {
			weighted[j] = eNext[j] * bNext[j]
		}
		for i := 0; i < ns; i++ {
			var s float64
			arow := a.Row(i)
			for j := 0; j < ns; j++ {
				s += arow[j] * weighted[j]
			}
			row[i] = s / sc.intScale[t+1]
		}
	}
	return nil
}

// FitResult reports one Baum–Welch fit.
type FitResult struct {
	// Model is a new model with the learned transition matrix (the
	// original model is unchanged).
	Model *Model
	// LogLikelihoods[i] is the interval-chain log-likelihood before
	// iteration i (so the slice is non-decreasing for a correct EM).
	LogLikelihoods []float64
}

// FitTransitions learns the transition matrix from observations by
// Baum–Welch EM on the interval chain. This goes beyond the paper,
// which fixes a tridiagonal prior; the experiments' ablations use it to
// quantify what a learned prior buys. Rows are smoothed by adding
// `smoothing` pseudo-count mass spread uniformly so unvisited states
// keep valid distributions.
func (m *Model) FitTransitions(obs []Observation, iters int, smoothing float64) (*FitResult, error) {
	if iters <= 0 {
		return nil, errors.New("hmm: FitTransitions requires iters > 0")
	}
	if smoothing < 0 {
		return nil, errors.New("hmm: smoothing must be non-negative")
	}
	sc := m.scratch()
	T, err := m.intervalEmissionsInto(sc, obs)
	if err != nil {
		return nil, err
	}
	if T < 2 {
		return nil, errors.New("hmm: need at least two intervals to fit transitions")
	}
	ns := len(m.states)
	logE := sc.intLogE
	a := m.trans.Clone()
	var lls []float64

	for iter := 0; iter < iters; iter++ {
		if err := m.intervalPasses(sc, T, a); err != nil {
			return nil, err
		}
		var ll float64
		for t := 0; t < T; t++ {
			ll += math.Log(sc.intScale[t]) + sc.intShift[t]
		}
		lls = append(lls, ll)

		// E step: expected transition counts xi and state visits. The
		// xi accumulator is freshly allocated because it becomes the
		// next iteration's transition matrix (and, on the last
		// iteration, the fitted model's — it must not live in scratch).
		num := mathx.NewMatrix(ns, ns)
		den := sc.emDen
		for i := range den {
			den[i] = 0
		}
		emitNext := sc.emitNext
		for t := 0; t < T-1; t++ {
			// Reconstruct scaled emissions for interval t+1.
			logNext := logE[(t+1)*ns : (t+2)*ns]
			maxLog := mathx.NegInf
			for _, v := range logNext {
				if v > maxLog {
					maxLog = v
				}
			}
			if math.IsInf(maxLog, -1) {
				maxLog = 0
			}
			for j := 0; j < ns; j++ {
				emitNext[j] = math.Exp(logNext[j] - maxLog)
			}
			alphaT := sc.intAlpha[t*ns : (t+1)*ns]
			betaNext := sc.intBeta[(t+1)*ns : (t+2)*ns]
			// Two passes: first the normalizer, then accumulation.
			var total float64
			for i := 0; i < ns; i++ {
				ai := alphaT[i]
				if ai == 0 {
					continue
				}
				arow := a.Row(i)
				for j := 0; j < ns; j++ {
					total += ai * arow[j] * emitNext[j] * betaNext[j]
				}
			}
			if total <= 0 {
				continue
			}
			for i := 0; i < ns; i++ {
				ai := alphaT[i]
				if ai == 0 {
					continue
				}
				arow := a.Row(i)
				for j := 0; j < ns; j++ {
					xi := ai * arow[j] * emitNext[j] * betaNext[j] / total
					num.Data[i*ns+j] += xi
					den[i] += xi
				}
			}
		}

		// M step with smoothing.
		for i := 0; i < ns; i++ {
			row := num.Row(i)
			for j := 0; j < ns; j++ {
				row[j] += smoothing / float64(ns)
			}
			d := den[i] + smoothing
			if d <= 0 {
				// State never visited: keep the prior row.
				copy(row, a.Row(i))
				continue
			}
			for j := 0; j < ns; j++ {
				row[j] /= d
			}
		}
		num.NormalizeRows()
		a = num
	}

	cfg := m.cfg
	fitted, err := New(cfg)
	if err != nil {
		return nil, err
	}
	fitted.trans = a
	fitted.powCache = mathx.NewPowerCache(a)
	fitted.sc = m.sc
	return &FitResult{Model: fitted, LogLikelihoods: lls}, nil
}
