package hmm

import (
	"errors"
	"fmt"
	"math"

	"veritas/internal/mathx"
)

// This file implements the interval-level view of the EHMM: instead of
// embedding transitions between chunk start times (A^Δn), the hidden
// chain runs over every δ-interval 0..T−1 with single-step transitions
// A, and each interval emits the product of the emissions of the chunks
// that start in it (zero, one, or more — exactly the "embedded
// observations" structure of paper §3.2, Figure 4).
//
// The two views agree on the chunk-start marginals; the interval view
// additionally supports exact Baum–Welch re-estimation of the
// transition matrix, offered here as an extension beyond the paper's
// fixed tridiagonal prior.

// IntervalPosterior holds per-interval smoothed distributions.
type IntervalPosterior struct {
	// Gamma[t][i] = P(C_t = iε | all observations), t = 0..T-1.
	Gamma [][]float64
	// LogLikelihood is log P(Y_1:N | W, S) under the interval chain.
	LogLikelihood float64
	// T is the number of intervals covered.
	T int
}

// intervalEmissions groups the per-chunk log emissions by start
// interval: logE[t][i] = Σ_{n: s_n ∈ interval t} log P(Y_n | W, S, C=iε).
// Intervals with no chunks contribute zeros (emission probability 1).
func (m *Model) intervalEmissions(obs []Observation) ([][]float64, int, error) {
	if len(obs) == 0 {
		return nil, 0, ErrNoObservations
	}
	if _, err := gaps(obs); err != nil {
		return nil, 0, err
	}
	T := obs[len(obs)-1].StartInterval + 1
	ns := len(m.states)
	logE := make([][]float64, T)
	for t := range logE {
		logE[t] = make([]float64, ns)
	}
	for _, o := range obs {
		for i := 0; i < ns; i++ {
			logE[o.StartInterval][i] += m.EmissionLogProb(o, i)
		}
	}
	return logE, T, nil
}

// IntervalForwardBackward runs scaled forward–backward over the full
// interval chain.
func (m *Model) IntervalForwardBackward(obs []Observation) (*IntervalPosterior, error) {
	logE, T, err := m.intervalEmissions(obs)
	if err != nil {
		return nil, err
	}
	alpha, beta, scale, shift, err := m.intervalPasses(logE, T, m.trans)
	if err != nil {
		return nil, err
	}
	ns := len(m.states)
	post := &IntervalPosterior{Gamma: make([][]float64, T), T: T}
	for t := 0; t < T; t++ {
		g := make([]float64, ns)
		for i := 0; i < ns; i++ {
			g[i] = alpha[t][i] * beta[t][i]
		}
		mathx.Normalize(g)
		post.Gamma[t] = g
	}
	var ll float64
	for t := 0; t < T; t++ {
		if scale[t] > 0 {
			ll += math.Log(scale[t])
		} else {
			ll = mathx.NegInf
		}
		ll += shift[t]
	}
	post.LogLikelihood = ll
	return post, nil
}

// intervalPasses runs the scaled alpha/beta recursions over T intervals
// with transition matrix a, returning the per-interval emission shifts
// so callers can reconstruct the true log-likelihood.
func (m *Model) intervalPasses(logE [][]float64, T int, a *mathx.Matrix) (alpha, beta [][]float64, scale, shift []float64, err error) {
	ns := len(m.states)
	emit := make([][]float64, T)
	shift = make([]float64, T)
	for t := 0; t < T; t++ {
		maxLog := mathx.NegInf
		for _, v := range logE[t] {
			if v > maxLog {
				maxLog = v
			}
		}
		if math.IsInf(maxLog, -1) {
			// No chunk in this interval and somehow -Inf rows: treat as
			// uninformative.
			maxLog = 0
		}
		shift[t] = maxLog
		row := make([]float64, ns)
		for i, v := range logE[t] {
			row[i] = math.Exp(v - maxLog)
		}
		emit[t] = row
	}

	alpha = make([][]float64, T)
	scale = make([]float64, T)
	cur := make([]float64, ns)
	for i := 0; i < ns; i++ {
		cur[i] = m.initDist[i] * emit[0][i]
	}
	scale[0] = mathx.Normalize(cur)
	alpha[0] = append([]float64(nil), cur...)
	for t := 1; t < T; t++ {
		pred := a.VecMul(alpha[t-1])
		for j := 0; j < ns; j++ {
			pred[j] *= emit[t][j]
		}
		scale[t] = mathx.Normalize(pred)
		if scale[t] == 0 {
			return nil, nil, nil, nil, fmt.Errorf("hmm: interval chain died at t=%d (no state has support)", t)
		}
		alpha[t] = pred
	}

	beta = make([][]float64, T)
	beta[T-1] = make([]float64, ns)
	for i := range beta[T-1] {
		beta[T-1][i] = 1
	}
	for t := T - 2; t >= 0; t-- {
		row := make([]float64, ns)
		weighted := make([]float64, ns)
		for j := 0; j < ns; j++ {
			weighted[j] = emit[t+1][j] * beta[t+1][j]
		}
		for i := 0; i < ns; i++ {
			var s float64
			arow := a.Row(i)
			for j := 0; j < ns; j++ {
				s += arow[j] * weighted[j]
			}
			row[i] = s / scale[t+1]
		}
		beta[t] = row
	}
	return alpha, beta, scale, shift, nil
}

// FitResult reports one Baum–Welch fit.
type FitResult struct {
	// Model is a new model with the learned transition matrix (the
	// original model is unchanged).
	Model *Model
	// LogLikelihoods[i] is the interval-chain log-likelihood before
	// iteration i (so the slice is non-decreasing for a correct EM).
	LogLikelihoods []float64
}

// FitTransitions learns the transition matrix from observations by
// Baum–Welch EM on the interval chain. This goes beyond the paper,
// which fixes a tridiagonal prior; the experiments' ablations use it to
// quantify what a learned prior buys. Rows are smoothed by adding
// `smoothing` pseudo-count mass spread uniformly so unvisited states
// keep valid distributions.
func (m *Model) FitTransitions(obs []Observation, iters int, smoothing float64) (*FitResult, error) {
	if iters <= 0 {
		return nil, errors.New("hmm: FitTransitions requires iters > 0")
	}
	if smoothing < 0 {
		return nil, errors.New("hmm: smoothing must be non-negative")
	}
	logE, T, err := m.intervalEmissions(obs)
	if err != nil {
		return nil, err
	}
	if T < 2 {
		return nil, errors.New("hmm: need at least two intervals to fit transitions")
	}
	ns := len(m.states)
	a := m.trans.Clone()
	var lls []float64

	for iter := 0; iter < iters; iter++ {
		alpha, beta, scale, shift, err := m.intervalPasses(logE, T, a)
		if err != nil {
			return nil, err
		}
		var ll float64
		for t := 0; t < T; t++ {
			ll += math.Log(scale[t]) + shift[t]
		}
		lls = append(lls, ll)

		// E step: expected transition counts xi and state visits.
		num := mathx.NewMatrix(ns, ns)
		den := make([]float64, ns)
		emitNext := make([]float64, ns)
		for t := 0; t < T-1; t++ {
			// Reconstruct scaled emissions for interval t+1.
			maxLog := mathx.NegInf
			for _, v := range logE[t+1] {
				if v > maxLog {
					maxLog = v
				}
			}
			if math.IsInf(maxLog, -1) {
				maxLog = 0
			}
			for j := 0; j < ns; j++ {
				emitNext[j] = math.Exp(logE[t+1][j] - maxLog)
			}
			// Two passes: first the normalizer, then accumulation.
			var total float64
			for i := 0; i < ns; i++ {
				ai := alpha[t][i]
				if ai == 0 {
					continue
				}
				arow := a.Row(i)
				for j := 0; j < ns; j++ {
					total += ai * arow[j] * emitNext[j] * beta[t+1][j]
				}
			}
			if total <= 0 {
				continue
			}
			for i := 0; i < ns; i++ {
				ai := alpha[t][i]
				if ai == 0 {
					continue
				}
				arow := a.Row(i)
				for j := 0; j < ns; j++ {
					xi := ai * arow[j] * emitNext[j] * beta[t+1][j] / total
					num.Data[i*ns+j] += xi
					den[i] += xi
				}
			}
		}

		// M step with smoothing.
		for i := 0; i < ns; i++ {
			row := num.Row(i)
			for j := 0; j < ns; j++ {
				row[j] += smoothing / float64(ns)
			}
			d := den[i] + smoothing
			if d <= 0 {
				// State never visited: keep the prior row.
				copy(row, a.Row(i))
				continue
			}
			for j := 0; j < ns; j++ {
				row[j] /= d
			}
		}
		num.NormalizeRows()
		a = num
	}

	cfg := m.cfg
	fitted, err := New(cfg)
	if err != nil {
		return nil, err
	}
	fitted.trans = a
	fitted.powCache = mathx.NewPowerCache(a)
	fitted.logPow = nil
	return &FitResult{Model: fitted, LogLikelihoods: lls}, nil
}
