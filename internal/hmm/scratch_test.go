package hmm

import (
	"sync"
	"testing"
)

// sessionObs fabricates one session's observation sequence. Mixing
// chunk sizes keeps the posterior partly ambiguous so the sampler's
// weight paths are exercised, and the gap pattern varies the Δn set.
func sessionObs(n int, gtbw float64, sizes []float64) []Observation {
	obs := make([]Observation, n)
	interval := 0
	for i := 0; i < n; i++ {
		obs[i] = obsFor(gtbw, sizes[i%len(sizes)], interval)
		interval += 1 + i%3
	}
	return obs
}

// inferFresh runs Infer on a model with no arena attached — the
// reference every arena run is compared against bit for bit.
func inferFresh(t *testing.T, obs []Observation, k int, seed int64) *Inference {
	t.Helper()
	m := testModel(t, 10)
	inf, err := m.Infer(obs, k, seed)
	if err != nil {
		t.Fatal(err)
	}
	return inf
}

// requireEqualInference asserts two inferences are bit-identical:
// paths, scores, posterior slabs and samples.
func requireEqualInference(t *testing.T, label string, got, want *Inference) {
	t.Helper()
	if got.PathLogProb != want.PathLogProb {
		t.Errorf("%s: PathLogProb %v, want %v", label, got.PathLogProb, want.PathLogProb)
	}
	if len(got.Path) != len(want.Path) {
		t.Fatalf("%s: path length %d, want %d", label, len(got.Path), len(want.Path))
	}
	for i := range got.Path {
		if got.Path[i] != want.Path[i] {
			t.Fatalf("%s: Viterbi path differs at chunk %d", label, i)
		}
	}
	if got.Post.LogLikelihood != want.Post.LogLikelihood {
		t.Errorf("%s: log-likelihood %v, want %v", label, got.Post.LogLikelihood, want.Post.LogLikelihood)
	}
	for n := 0; n < want.Post.Len(); n++ {
		g, w := got.Post.Gamma(n), want.Post.Gamma(n)
		for i := range w {
			if g[i] != w[i] {
				t.Fatalf("%s: Gamma[%d][%d] = %v, want %v", label, n, i, g[i], w[i])
			}
		}
	}
	for n := 0; n < want.Post.Len()-1; n++ {
		g, w := got.Post.Pair(n), want.Post.Pair(n)
		for i := range w {
			if g[i] != w[i] {
				t.Fatalf("%s: Pair[%d] differs at %d", label, n, i)
			}
		}
	}
	if len(got.Samples) != len(want.Samples) {
		t.Fatalf("%s: %d samples, want %d", label, len(got.Samples), len(want.Samples))
	}
	for s := range want.Samples {
		for i := range want.Samples[s] {
			if got.Samples[s][i] != want.Samples[s][i] {
				t.Fatalf("%s: sample %d differs at chunk %d", label, s, i)
			}
		}
	}
}

// TestScratchNoCrossSessionBleed recycles one arena through sessions of
// shrinking, growing and degenerate shapes and checks every result is
// bit-identical to a fresh-arena run. After the large first session the
// slabs are full of stale values; any cell read before being written
// would show up here.
func TestScratchNoCrossSessionBleed(t *testing.T) {
	sizes := []float64{5e6, 40e3, 2e6, 80e3}
	sessions := []struct {
		name string
		obs  []Observation
	}{
		{"large", sessionObs(60, 6.5, sizes)},
		{"small-after-large", sessionObs(5, 3.0, sizes)},
		{"single-chunk", sessionObs(1, 8.0, sizes)},
		{"regrow", sessionObs(45, 4.5, sizes)},
		{"two-chunks", sessionObs(2, 7.0, sizes)},
	}

	m := testModel(t, 10)
	sc := NewScratch()
	m.SetScratch(sc)
	for i, s := range sessions {
		seed := int64(100 + i)
		got, err := m.Infer(s.obs, 4, seed)
		if err != nil {
			t.Fatalf("%s: %v", s.name, err)
		}
		requireEqualInference(t, s.name, got, inferFresh(t, s.obs, 4, seed))
	}
}

// TestScratchAllocationFlat pins the arena's whole point: once the
// slabs are warm, repeat inference through the same Scratch allocates
// only the constant-size result headers (Inference, Posterior, the
// seeded RNG), independent of session shape.
func TestScratchAllocationFlat(t *testing.T) {
	obs := sessionObs(40, 5.5, []float64{4e6, 60e3})
	m := testModel(t, 10)
	m.SetScratch(NewScratch())
	if _, err := m.Infer(obs, 3, 1); err != nil { // warm the slabs
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := m.Infer(obs, 3, 1); err != nil {
			t.Fatal(err)
		}
	})
	// Inference + Posterior + rand.Source + rand.Rand — anything growing
	// with N or S would push this far past the bound.
	if allocs > 8 {
		t.Errorf("warm-arena Infer allocates %v objects per run, want <= 8", allocs)
	}
}

// TestScratchFitTransitionsMatchesFresh runs the EM interval chain and
// the follow-on inference through a shared arena (the FitTransitions
// pipeline coexists with the chunk view inside one Scratch) and checks
// bit-identity against the no-arena path.
func TestScratchFitTransitionsMatchesFresh(t *testing.T) {
	obs := sessionObs(30, 5.0, []float64{3e6, 50e3, 1e6})

	run := func(sc *Scratch) *Inference {
		m := testModel(t, 10)
		m.SetScratch(sc)
		fit, err := m.FitTransitions(obs, 3, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		inf, err := fit.Model.Infer(obs, 3, 42)
		if err != nil {
			t.Fatal(err)
		}
		return inf
	}

	sc := NewScratch()
	// Dirty the arena with an unrelated large session first.
	m := testModel(t, 10)
	m.SetScratch(sc)
	if _, err := m.Infer(sessionObs(50, 7.5, []float64{5e6}), 2, 9); err != nil {
		t.Fatal(err)
	}
	requireEqualInference(t, "fit-transitions", run(sc), run(nil))
}

// TestScratchConcurrentPerGoroutine is the -race companion to the
// lifetime contract: one Scratch per goroutine is safe even when the
// models share the process-wide transition-power registry. The race
// detector sees any accidental cross-goroutine state; the checksum
// against a serial reference sees any value corruption.
func TestScratchConcurrentPerGoroutine(t *testing.T) {
	obs := sessionObs(25, 6.0, []float64{4e6, 70e3})
	cfg := DefaultConfig(10)
	cfg.SharePowers = true
	want := inferFresh(t, obs, 3, 7)

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m, err := New(cfg)
			if err != nil {
				t.Error(err)
				return
			}
			m.SetScratch(NewScratch())
			for rep := 0; rep < 5; rep++ {
				inf, err := m.Infer(obs, 3, 7)
				if err != nil {
					t.Error(err)
					return
				}
				if inf.PathLogProb != want.PathLogProb ||
					inf.Post.LogLikelihood != want.Post.LogLikelihood {
					t.Errorf("concurrent arena run diverged from serial reference")
					return
				}
			}
		}()
	}
	wg.Wait()
}
