package hmm

// Scratch is a reusable inference arena: every buffer the EHMM's hot
// path needs — the log-emission table, the scaled forward/backward
// matrices, the Viterbi score and back-pointer ladders, the posterior
// slabs and the sampler's weight vector — carved from a handful of
// grow-only strided slabs sized by the session shape (chunks × states,
// plus intervals × states for the EM chain). A fleet worker allocates
// one Scratch and recycles it across its whole corpus slice: after the
// first (largest-shaped) session, per-session inference is
// allocation-flat.
//
// Lifetime contract: results produced through a Scratch — Posterior and
// IntervalPosterior slabs, Viterbi paths, sampled paths, observation
// slices — point INTO the arena and are valid only until the next
// inference that uses the same Scratch. Callers that retain results
// across sessions (engine KeepAbductions, ad-hoc API use without a
// scratch) get freshly allocated buffers instead: every entry point
// treats a nil Scratch as "allocate a private one for this call", which
// the result then owns outright.
//
// A Scratch is not safe for concurrent use; give each goroutine its
// own. Reuse is safe across sessions of any shapes because every slab
// cell an algorithm reads is written earlier in the same inference —
// nothing is carried over, so no state can bleed between sessions (see
// TestScratchNoCrossSessionBleed).
type Scratch struct {
	// chunk-shaped slabs (N × S, row-major)
	emitLog []float64 // log P(Y_n | C = iε) table
	emit    []float64 // per-chunk max-rescaled emissions
	alpha   []float64 // scaled forward variables
	beta    []float64 // scaled backward variables
	gamma   []float64 // posterior marginals (escapes into Posterior)
	back    []int     // Viterbi back-pointers

	// pairwise posterior slab ((N-1) × S × S, escapes into Posterior)
	pair []float64

	// chunk-shaped vectors (N)
	shift []float64 // per-chunk emission rescale factors
	scale []float64 // forward normalizers
	gaps  []int     // Δn between consecutive chunk starts
	path  []int     // Viterbi path (escapes into Inference)

	// state-shaped vectors (S)
	cur, next []float64 // Viterbi score ping-pong
	weighted  []float64 // backward-pass emit×beta products
	weights   []float64 // sampler's categorical weights

	// sample slab (K × N ints, escapes into Inference)
	sampleSlab []int
	sampleHdr  [][]int

	// observation buffer (escapes into Abduction via ObservationsInto)
	obs []Observation

	// interval-chain slabs (T × S) for the EM / interval view; separate
	// from the chunk slabs because the two views coexist inside one
	// FitTransitions+Infer pipeline.
	intLogE  []float64
	intEmit  []float64
	intAlpha []float64
	intBeta  []float64
	intGamma []float64
	intShift []float64
	intScale []float64
	emitNext []float64 // S, EM xi-accumulation emissions
	emDen    []float64 // S, EM visit mass
}

// NewScratch returns an empty arena; slabs grow on first use and are
// recycled afterwards.
func NewScratch() *Scratch { return &Scratch{} }

// growF resizes a float slab to n cells, reusing capacity when it can.
// Contents are unspecified — every algorithm writes before it reads.
func growF(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growI(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// chunkSlabs sizes the chunk-view buffers for an N-chunk, S-state
// session.
func (sc *Scratch) chunkSlabs(n, s int) {
	sc.emitLog = growF(sc.emitLog, n*s)
	sc.emit = growF(sc.emit, n*s)
	sc.alpha = growF(sc.alpha, n*s)
	sc.beta = growF(sc.beta, n*s)
	sc.gamma = growF(sc.gamma, n*s)
	sc.back = growI(sc.back, n*s)
	if n > 0 {
		sc.pair = growF(sc.pair, (n-1)*s*s)
	}
	sc.shift = growF(sc.shift, n)
	sc.scale = growF(sc.scale, n)
	sc.gaps = growI(sc.gaps, n)
	sc.path = growI(sc.path, n)
	sc.cur = growF(sc.cur, s)
	sc.next = growF(sc.next, s)
	sc.weighted = growF(sc.weighted, s)
	sc.weights = growF(sc.weights, s)
}

// intervalSlabs sizes the interval-view buffers for a T-interval,
// S-state chain.
func (sc *Scratch) intervalSlabs(t, s int) {
	sc.intLogE = growF(sc.intLogE, t*s)
	sc.intEmit = growF(sc.intEmit, t*s)
	sc.intAlpha = growF(sc.intAlpha, t*s)
	sc.intBeta = growF(sc.intBeta, t*s)
	sc.intGamma = growF(sc.intGamma, t*s)
	sc.intShift = growF(sc.intShift, t)
	sc.intScale = growF(sc.intScale, t)
	sc.weighted = growF(sc.weighted, s)
	sc.emitNext = growF(sc.emitNext, s)
	sc.emDen = growF(sc.emDen, s)
}

// samples sizes the K × N sample slab and returns per-sample row views.
func (sc *Scratch) samples(k, n int) [][]int {
	sc.sampleSlab = growI(sc.sampleSlab, k*n)
	if cap(sc.sampleHdr) < k {
		sc.sampleHdr = make([][]int, k)
	}
	sc.sampleHdr = sc.sampleHdr[:k]
	for i := 0; i < k; i++ {
		sc.sampleHdr[i] = sc.sampleSlab[i*n : (i+1)*n : (i+1)*n]
	}
	return sc.sampleHdr
}

// Observations returns the arena's reusable observation buffer resized
// to n entries (contents unspecified). The abduction layer fills it per
// session instead of allocating a fresh slice; the same lifetime
// contract applies.
func (sc *Scratch) Observations(n int) []Observation {
	if cap(sc.obs) < n {
		sc.obs = make([]Observation, n)
	}
	sc.obs = sc.obs[:n]
	return sc.obs
}

// scratch returns the model's attached arena, or a fresh private one
// when none is attached — the allocate-per-call behavior pre-arena
// callers expect.
func (m *Model) scratch() *Scratch {
	if m.sc != nil {
		return m.sc
	}
	return &Scratch{}
}

// SetScratch attaches a reusable inference arena to the model. All
// subsequent inference calls carve their buffers — including returned
// posteriors and paths — from it; see the Scratch lifetime contract.
// A nil scratch restores per-call allocation.
func (m *Model) SetScratch(sc *Scratch) { m.sc = sc }
