package hmm

import (
	"math"

	"veritas/internal/mathx"
)

// Posterior holds the smoothed distributions produced by the
// forward–backward variant (paper Algorithm 2). The marginal and
// pairwise tables are stored as row-major slabs — Gamma as N×S, Pair as
// (N-1)×S×S — carved from the model's scratch arena when one is
// attached; access them through Gamma/Pair/PairAt.
type Posterior struct {
	gamma []float64 // gamma[n*S+i] = P(C_sn = iε | Y_1:N, W_s1:N, S_1:N)
	pair  []float64 // pair[(n*S+i)*S+j] = Γ_{i,j,n} (paper Equation (6))
	n, ns int
	// LogLikelihood is log P(Y_1:N | W, S) under the model.
	LogLikelihood float64
}

// Len returns the number of chunks N the posterior covers.
func (p *Posterior) Len() int { return p.n }

// States returns the size S of the capacity grid.
func (p *Posterior) States() int { return p.ns }

// Gamma returns the marginal posterior over states for chunk n:
// Gamma(n)[i] = P(C_sn = iε | all observations).
func (p *Posterior) Gamma(n int) []float64 {
	return p.gamma[n*p.ns : (n+1)*p.ns]
}

// Pair returns the S×S row-major pairwise posterior slab for the
// (n, n+1) chunk pair, n = 0..N-2: Pair(n)[i*S+j] = Γ_{i,j,n}.
func (p *Posterior) Pair(n int) []float64 {
	return p.pair[n*p.ns*p.ns : (n+1)*p.ns*p.ns]
}

// PairAt returns Γ_{i,j,n} = P(C_sn = iε, C_sn+1 = jε | …).
func (p *Posterior) PairAt(n, i, j int) float64 {
	return p.pair[(n*p.ns+i)*p.ns+j]
}

// ForwardBackward runs the scaled forward–backward recursion with the
// embedded transitions A^Δn and the f-based emissions, returning the
// marginal and pairwise posteriors the capacity sampler needs. With a
// scratch arena attached the returned posterior points into the arena
// (see the Scratch lifetime contract).
func (m *Model) ForwardBackward(obs []Observation) (*Posterior, error) {
	if len(obs) == 0 {
		return nil, ErrNoObservations
	}
	sc := m.scratch()
	sc.chunkSlabs(len(obs), len(m.states))
	if err := gapsInto(sc.gaps, obs); err != nil {
		return nil, err
	}
	m.emissionTableInto(sc.emitLog, obs)
	return m.forwardBackwardInto(sc, len(obs)), nil
}

// forwardBackwardInto is the recursion body. It expects sc.chunkSlabs
// sized for (N, S) and sc.gaps/sc.emitLog filled, and performs exactly
// the float operations of the original allocating implementation, in
// the same order — only the buffers' homes changed — so results are
// bit-identical.
func (m *Model) forwardBackwardInto(sc *Scratch, N int) *Posterior {
	ns := len(m.states)
	d := sc.gaps

	// Rescale emissions per chunk so exp() cannot underflow even when
	// every state is a poor fit: only ratios matter once alpha/beta are
	// normalized, and the discarded max factors are re-added to the
	// log-likelihood.
	for n := 0; n < N; n++ {
		logRow := sc.emitLog[n*ns : (n+1)*ns]
		maxLog := mathx.NegInf
		for _, v := range logRow {
			if v > maxLog {
				maxLog = v
			}
		}
		sc.shift[n] = maxLog
		row := sc.emit[n*ns : (n+1)*ns]
		for i, v := range logRow {
			row[i] = math.Exp(v - maxLog)
		}
	}

	alphaRow := func(n int) []float64 { return sc.alpha[n*ns : (n+1)*ns] }
	betaRow := func(n int) []float64 { return sc.beta[n*ns : (n+1)*ns] }
	emitRow := func(n int) []float64 { return sc.emit[n*ns : (n+1)*ns] }

	a0 := alphaRow(0)
	e0 := emitRow(0)
	for i := 0; i < ns; i++ {
		a0[i] = m.initDist[i] * e0[i]
	}
	sc.scale[0] = mathx.Normalize(a0)

	for n := 1; n < N; n++ {
		a := m.powCache.Pow(d[n])
		pred := alphaRow(n)
		a.VecMulInto(pred, alphaRow(n-1)) // Σ_i alpha[n-1][i] A^Δ[i][j]
		en := emitRow(n)
		for j := 0; j < ns; j++ {
			pred[j] *= en[j]
		}
		sc.scale[n] = mathx.Normalize(pred)
	}

	bLast := betaRow(N - 1)
	for i := range bLast {
		bLast[i] = 1
	}
	for n := N - 2; n >= 0; n-- {
		a := m.powCache.Pow(d[n+1])
		row := betaRow(n)
		// row[i] = Σ_j A^Δ[i][j] emit[n+1][j] beta[n+1][j] / scale[n+1]
		weighted := sc.weighted
		eNext, bNext := emitRow(n+1), betaRow(n+1)
		for j := 0; j < ns; j++ {
			weighted[j] = eNext[j] * bNext[j]
		}
		for i := 0; i < ns; i++ {
			var s float64
			arow := a.Row(i)
			for j := 0; j < ns; j++ {
				s += arow[j] * weighted[j]
			}
			if sc.scale[n+1] > 0 {
				s /= sc.scale[n+1]
			}
			row[i] = s
		}
	}

	post := &Posterior{
		gamma: sc.gamma[:N*ns],
		pair:  sc.pair[:(N-1)*ns*ns],
		n:     N,
		ns:    ns,
	}
	for n := 0; n < N; n++ {
		g := post.Gamma(n)
		an, bn := alphaRow(n), betaRow(n)
		for i := 0; i < ns; i++ {
			g[i] = an[i] * bn[i]
		}
		mathx.Normalize(g)
	}
	for n := 0; n < N-1; n++ {
		a := m.powCache.Pow(d[n+1])
		pair := post.Pair(n)
		an, eNext, bNext := alphaRow(n), emitRow(n+1), betaRow(n+1)
		var total float64
		for i := 0; i < ns; i++ {
			row := pair[i*ns : (i+1)*ns]
			arow := a.Row(i)
			for j := 0; j < ns; j++ {
				v := an[i] * arow[j] * eNext[j] * bNext[j]
				row[j] = v
				total += v
			}
		}
		if total > 0 {
			for i := 0; i < ns; i++ {
				row := pair[i*ns : (i+1)*ns]
				for j := 0; j < ns; j++ {
					row[j] /= total
				}
			}
		}
	}

	var ll float64
	for n := 0; n < N; n++ {
		if sc.scale[n] > 0 {
			ll += math.Log(sc.scale[n])
		} else {
			ll = mathx.NegInf
		}
		ll += sc.shift[n]
	}
	post.LogLikelihood = ll
	return post
}
