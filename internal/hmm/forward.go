package hmm

import (
	"math"

	"veritas/internal/mathx"
)

// Posterior holds the smoothed distributions produced by the
// forward–backward variant (paper Algorithm 2).
type Posterior struct {
	// Gamma[n][i] = P(C_sn = iε | Y_1:N, W_s1:N, S_1:N).
	Gamma [][]float64
	// Pair[n][i][j] = Γ_{i,j,n} = P(C_sn = iε, C_sn+1 = jε | …) for
	// n = 0..N-2 (paper Equation (6)).
	Pair [][][]float64
	// LogLikelihood is log P(Y_1:N | W, S) under the model.
	LogLikelihood float64
}

// ForwardBackward runs the scaled forward–backward recursion with the
// embedded transitions A^Δn and the f-based emissions, returning the
// marginal and pairwise posteriors the capacity sampler needs.
func (m *Model) ForwardBackward(obs []Observation) (*Posterior, error) {
	if len(obs) == 0 {
		return nil, ErrNoObservations
	}
	d, err := gaps(obs)
	if err != nil {
		return nil, err
	}
	logEmit := m.emissionTable(obs)
	ns := len(m.states)
	N := len(obs)

	// Rescale emissions per chunk so exp() cannot underflow even when
	// every state is a poor fit: only ratios matter once alpha/beta are
	// normalized, and the discarded max factors are re-added to the
	// log-likelihood.
	emit := make([][]float64, N)
	emitShift := make([]float64, N)
	for n := range logEmit {
		maxLog := mathx.NegInf
		for _, v := range logEmit[n] {
			if v > maxLog {
				maxLog = v
			}
		}
		emitShift[n] = maxLog
		row := make([]float64, ns)
		for i, v := range logEmit[n] {
			row[i] = math.Exp(v - maxLog)
		}
		emit[n] = row
	}

	alpha := make([][]float64, N)
	scale := make([]float64, N)

	cur := make([]float64, ns)
	for i := 0; i < ns; i++ {
		cur[i] = m.initDist[i] * emit[0][i]
	}
	scale[0] = mathx.Normalize(cur)
	alpha[0] = append([]float64(nil), cur...)

	for n := 1; n < N; n++ {
		a := m.powCache.Pow(d[n])
		pred := a.VecMul(alpha[n-1]) // Σ_i alpha[n-1][i] A^Δ[i][j]
		for j := 0; j < ns; j++ {
			pred[j] *= emit[n][j]
		}
		scale[n] = mathx.Normalize(pred)
		alpha[n] = pred
	}

	beta := make([][]float64, N)
	beta[N-1] = make([]float64, ns)
	for i := range beta[N-1] {
		beta[N-1][i] = 1
	}
	for n := N - 2; n >= 0; n-- {
		a := m.powCache.Pow(d[n+1])
		row := make([]float64, ns)
		// row[i] = Σ_j A^Δ[i][j] emit[n+1][j] beta[n+1][j] / scale[n+1]
		weighted := make([]float64, ns)
		for j := 0; j < ns; j++ {
			weighted[j] = emit[n+1][j] * beta[n+1][j]
		}
		for i := 0; i < ns; i++ {
			var s float64
			arow := a.Row(i)
			for j := 0; j < ns; j++ {
				s += arow[j] * weighted[j]
			}
			if scale[n+1] > 0 {
				s /= scale[n+1]
			}
			row[i] = s
		}
		beta[n] = row
	}

	post := &Posterior{
		Gamma: make([][]float64, N),
		Pair:  make([][][]float64, N-1),
	}
	for n := 0; n < N; n++ {
		g := make([]float64, ns)
		for i := 0; i < ns; i++ {
			g[i] = alpha[n][i] * beta[n][i]
		}
		mathx.Normalize(g)
		post.Gamma[n] = g
	}
	for n := 0; n < N-1; n++ {
		a := m.powCache.Pow(d[n+1])
		pair := make([][]float64, ns)
		var total float64
		for i := 0; i < ns; i++ {
			row := make([]float64, ns)
			arow := a.Row(i)
			for j := 0; j < ns; j++ {
				v := alpha[n][i] * arow[j] * emit[n+1][j] * beta[n+1][j]
				row[j] = v
				total += v
			}
			pair[i] = row
		}
		if total > 0 {
			for i := 0; i < ns; i++ {
				for j := 0; j < ns; j++ {
					pair[i][j] /= total
				}
			}
		}
		post.Pair[n] = pair
	}

	var ll float64
	for n := 0; n < N; n++ {
		if scale[n] > 0 {
			ll += math.Log(scale[n])
		} else {
			ll = mathx.NegInf
		}
		ll += emitShift[n]
	}
	post.LogLikelihood = ll
	return post, nil
}
