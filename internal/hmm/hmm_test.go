package hmm

import (
	"math"
	"math/rand"
	"testing"

	"veritas/internal/tcp"
)

func testModel(t *testing.T, maxMbps float64) *Model {
	t.Helper()
	m, err := New(DefaultConfig(maxMbps))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m
}

// hotState returns a TCP state warm enough that the estimator f reports
// ~GTBW for large chunks, making emissions informative about capacity.
func hotState() tcp.State {
	s := tcp.Fresh(0.080)
	s.CWND = 2000
	s.SSThresh = 2000
	return s
}

// obsFor fabricates the observation a chunk of the given size would
// produce if the true capacity were gtbw (no noise).
func obsFor(gtbw float64, sizeBytes float64, interval int) Observation {
	st := hotState()
	return Observation{
		ThroughputMbps: tcp.EstimateThroughput(gtbw, st, sizeBytes),
		TCP:            st,
		SizeBytes:      sizeBytes,
		StartInterval:  interval,
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{EpsMbps: 0, MaxMbps: 10, DeltaSecs: 5, Sigma: 0.5, StayProb: 0.8},
		{EpsMbps: 0.5, MaxMbps: 0.1, DeltaSecs: 5, Sigma: 0.5, StayProb: 0.8},
		{EpsMbps: 0.5, MaxMbps: 10, DeltaSecs: 0, Sigma: 0.5, StayProb: 0.8},
		{EpsMbps: 0.5, MaxMbps: 10, DeltaSecs: 5, Sigma: 0, StayProb: 0.8},
		{EpsMbps: 0.5, MaxMbps: 10, DeltaSecs: 5, Sigma: 0.5, StayProb: 1},
		{EpsMbps: 0.5, MaxMbps: 10, DeltaSecs: 5, Sigma: 0.5, StayProb: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d should be invalid", i)
		}
	}
}

func TestStateGrid(t *testing.T) {
	m := testModel(t, 10)
	if m.NumStates() != 21 {
		t.Fatalf("10 Mbps / 0.5 grid should have 21 states, got %d", m.NumStates())
	}
	if m.Capacity(0) != 0 || m.Capacity(20) != 10 {
		t.Errorf("grid endpoints wrong: %v, %v", m.Capacity(0), m.Capacity(20))
	}
	if got := m.StateFor(3.2); got != 6 {
		t.Errorf("StateFor(3.2) = %d, want 6", got)
	}
	if got := m.StateFor(-5); got != 0 {
		t.Errorf("StateFor(-5) = %d, want 0", got)
	}
	if got := m.StateFor(99); got != 20 {
		t.Errorf("StateFor(99) = %d, want 20", got)
	}
}

func TestTridiagonalStochastic(t *testing.T) {
	for _, n := range []int{1, 2, 5, 21} {
		a := Tridiagonal(n, 0.8)
		if !a.IsRowStochastic(1e-12) {
			t.Errorf("Tridiagonal(%d) not row-stochastic", n)
		}
	}
	a := Tridiagonal(5, 0.8)
	approx := func(got, want float64) bool { return math.Abs(got-want) < 1e-12 }
	if !approx(a.At(2, 2), 0.8) || !approx(a.At(2, 1), 0.1) || !approx(a.At(2, 3), 0.1) {
		t.Error("interior row wrong")
	}
	if !approx(a.At(0, 0), 0.8) || !approx(a.At(0, 1), 0.2) {
		t.Error("edge row wrong")
	}
	if a.At(2, 0) != 0 {
		t.Error("non-adjacent transition should be zero")
	}
}

func TestTransitionPowerSpreads(t *testing.T) {
	m := testModel(t, 10)
	one := m.TransitionPower(1)
	ten := m.TransitionPower(10)
	// After more steps, mass further from the diagonal.
	if ten.At(10, 10) >= one.At(10, 10) {
		t.Error("self-transition probability should decay with steps")
	}
	if ten.At(10, 5) <= one.At(10, 5) {
		t.Error("distant transitions should gain probability with steps")
	}
	if !ten.IsRowStochastic(1e-9) {
		t.Error("A^10 not stochastic")
	}
}

func TestEmissionPeaksAtTrueCapacity(t *testing.T) {
	m := testModel(t, 10)
	// A large chunk on a hot connection observes ~GTBW, so the emission
	// should peak at the true state.
	obs := obsFor(4.0, 5e6, 0)
	best, bestLP := -1, math.Inf(-1)
	for i := 0; i < m.NumStates(); i++ {
		lp := m.EmissionLogProb(obs, i)
		if lp > bestLP {
			best, bestLP = i, lp
		}
	}
	if m.Capacity(best) != 4.0 {
		t.Errorf("emission peak at %v Mbps, want 4.0", m.Capacity(best))
	}
}

func TestViterbiEmptyInput(t *testing.T) {
	m := testModel(t, 10)
	if _, _, err := m.Viterbi(nil); err != ErrNoObservations {
		t.Errorf("want ErrNoObservations, got %v", err)
	}
}

func TestViterbiOutOfOrder(t *testing.T) {
	m := testModel(t, 10)
	obs := []Observation{obsFor(4, 5e6, 3), obsFor(4, 5e6, 1)}
	if _, _, err := m.Viterbi(obs); err == nil {
		t.Error("out-of-order intervals should error")
	}
}

func TestViterbiRecoversConstantCapacity(t *testing.T) {
	m := testModel(t, 10)
	var obs []Observation
	for i := 0; i < 20; i++ {
		obs = append(obs, obsFor(6.0, 4e6, i))
	}
	path, ll, err := m.Viterbi(obs)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(ll, -1) {
		t.Fatal("log-likelihood is -Inf")
	}
	for n, s := range path {
		if m.Capacity(s) != 6.0 {
			t.Errorf("chunk %d: Viterbi says %v Mbps, want 6.0", n, m.Capacity(s))
		}
	}
}

func TestViterbiRecoversStepChange(t *testing.T) {
	// The tridiagonal prior caps the trackable slope at ±ε per
	// δ-interval, so after a step change the Viterbi path ramps. With a
	// 2.5 Mbps step (5 grid cells) and one observation per interval the
	// ramp completes within 5 chunks of the change.
	m := testModel(t, 10)
	var obs []Observation
	for i := 0; i < 10; i++ {
		obs = append(obs, obsFor(3.0, 4e6, i))
	}
	for i := 10; i < 22; i++ {
		obs = append(obs, obsFor(5.5, 4e6, i))
	}
	path, _, err := m.Viterbi(obs)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 7; n++ {
		if math.Abs(m.Capacity(path[n])-3.0) > 0.51 {
			t.Errorf("chunk %d: %v Mbps, want ~3.0", n, m.Capacity(path[n]))
		}
	}
	for n := 16; n < 22; n++ {
		if math.Abs(m.Capacity(path[n])-5.5) > 0.51 {
			t.Errorf("chunk %d: %v Mbps, want ~5.5", n, m.Capacity(path[n]))
		}
	}
	// The ramp itself must be monotone non-decreasing through the change.
	for n := 8; n < 16; n++ {
		if path[n+1] < path[n]-1 {
			t.Errorf("ramp not monotone near change: state %d then %d", path[n], path[n+1])
		}
	}
}

func TestViterbiZeroGapChunksShareState(t *testing.T) {
	// Δ=0 between chunks in the same interval: A^0 = I forces equal
	// states even under conflicting evidence.
	m := testModel(t, 10)
	obs := []Observation{obsFor(3, 4e6, 5), obsFor(8, 4e6, 5)}
	path, _, err := m.Viterbi(obs)
	if err != nil {
		t.Fatal(err)
	}
	if path[0] != path[1] {
		t.Errorf("zero-gap chunks got different states %d, %d", path[0], path[1])
	}
}

func TestForwardBackwardGammaNormalized(t *testing.T) {
	m := testModel(t, 10)
	var obs []Observation
	for i := 0; i < 15; i++ {
		obs = append(obs, obsFor(5, 3e6, i*2))
	}
	post, err := m.ForwardBackward(obs)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < post.Len(); n++ {
		var s float64
		for _, v := range post.Gamma(n) {
			if v < -1e-12 {
				t.Fatalf("negative posterior at chunk %d", n)
			}
			s += v
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("Gamma[%d] sums to %v", n, s)
		}
	}
	for n := 0; n < post.Len()-1; n++ {
		var s float64
		for _, v := range post.Pair(n) {
			s += v
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("Pair[%d] sums to %v", n, s)
		}
	}
}

func TestPairMarginalsMatchGamma(t *testing.T) {
	m := testModel(t, 10)
	var obs []Observation
	for i := 0; i < 12; i++ {
		cap := 4.0
		if i >= 6 {
			cap = 7.0
		}
		obs = append(obs, obsFor(cap, 3e6, i))
	}
	post, err := m.ForwardBackward(obs)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < post.Len()-1; n++ {
		for i := 0; i < m.NumStates(); i++ {
			var rowSum float64
			for j := 0; j < m.NumStates(); j++ {
				rowSum += post.PairAt(n, i, j)
			}
			if math.Abs(rowSum-post.Gamma(n)[i]) > 1e-6 {
				t.Fatalf("Σ_j Pair[%d][%d][j] = %v != Gamma[%d][%d] = %v",
					n, i, rowSum, n, i, post.Gamma(n)[i])
			}
		}
		for j := 0; j < m.NumStates(); j++ {
			var colSum float64
			for i := 0; i < m.NumStates(); i++ {
				colSum += post.PairAt(n, i, j)
			}
			if math.Abs(colSum-post.Gamma(n + 1)[j]) > 1e-6 {
				t.Fatalf("Σ_i Pair[%d][i][%d] = %v != Gamma[%d][%d] = %v",
					n, j, colSum, n+1, j, post.Gamma(n + 1)[j])
			}
		}
	}
}

func TestGammaPeaksNearTruth(t *testing.T) {
	m := testModel(t, 10)
	var obs []Observation
	for i := 0; i < 20; i++ {
		obs = append(obs, obsFor(6.5, 4e6, i))
	}
	post, err := m.ForwardBackward(obs)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < post.Len(); n++ {
		g := post.Gamma(n)
		bi := 0
		for i, v := range g {
			if v > g[bi] {
				bi = i
			}
		}
		if math.Abs(m.Capacity(bi)-6.5) > 0.51 {
			t.Errorf("chunk %d posterior mode %v Mbps, want ~6.5", n, m.Capacity(bi))
		}
	}
}

func TestSampleMatchesViterbiOnSharpPosterior(t *testing.T) {
	m := testModel(t, 10)
	var obs []Observation
	for i := 0; i < 15; i++ {
		obs = append(obs, obsFor(5, 5e6, i))
	}
	viterbi, _, err := m.Viterbi(obs)
	if err != nil {
		t.Fatal(err)
	}
	post, err := m.ForwardBackward(obs)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	seq, err := m.Sample(rng, post, viterbi)
	if err != nil {
		t.Fatal(err)
	}
	// With noiseless synthetic observations, the posterior is sharp and
	// samples should equal the Viterbi path everywhere.
	for n := range seq {
		if seq[n] != viterbi[n] {
			t.Errorf("chunk %d sampled %d, viterbi %d", n, seq[n], viterbi[n])
		}
	}
}

func TestSampleKDeterministicSeed(t *testing.T) {
	m := testModel(t, 10)
	var obs []Observation
	for i := 0; i < 10; i++ {
		// Small chunks leave capacity ambiguous, so samples vary.
		obs = append(obs, obsFor(5, 50e3, i))
	}
	a, err := m.SampleK(obs, 4, 77)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.SampleK(obs, 4, 77)
	if err != nil {
		t.Fatal(err)
	}
	for s := range a {
		for n := range a[s] {
			if a[s][n] != b[s][n] {
				t.Fatal("same seed produced different samples")
			}
		}
	}
}

func TestSampleKValidation(t *testing.T) {
	m := testModel(t, 10)
	if _, err := m.SampleK(nil, 3, 1); err == nil {
		t.Error("empty observations should error")
	}
	obs := []Observation{obsFor(5, 1e6, 0)}
	if _, err := m.SampleK(obs, 0, 1); err == nil {
		t.Error("k=0 should error")
	}
}

func TestExpectedCapacityAfter(t *testing.T) {
	m := testModel(t, 10)
	st := m.StateFor(5)
	// Gap 0: expectation is the state itself.
	if got := m.ExpectedCapacityAfter(st, 0); got != 5 {
		t.Errorf("gap-0 expectation = %v, want 5", got)
	}
	// Interior states: expectation stays near the state for small gaps
	// (symmetric random walk).
	if got := m.ExpectedCapacityAfter(st, 3); math.Abs(got-5) > 0.2 {
		t.Errorf("gap-3 expectation = %v, want ~5", got)
	}
	// Edge state at 0: expectation must drift upward.
	if got := m.ExpectedCapacityAfter(0, 10); got <= 0 {
		t.Errorf("expectation from edge state should rise, got %v", got)
	}
	// Negative gap clamps to 0.
	if got := m.ExpectedCapacityAfter(st, -5); got != 5 {
		t.Errorf("negative gap = %v, want 5", got)
	}
}

func TestAmbiguousSmallChunksHaveWiderPosterior(t *testing.T) {
	m := testModel(t, 10)
	entropy := func(size float64) float64 {
		var obs []Observation
		for i := 0; i < 10; i++ {
			obs = append(obs, obsFor(6, size, i))
		}
		post, err := m.ForwardBackward(obs)
		if err != nil {
			t.Fatal(err)
		}
		var h float64
		for _, v := range post.Gamma(5) {
			if v > 1e-12 {
				h -= v * math.Log(v)
			}
		}
		return h
	}
	// Chunks below the BDP tell us little about capacity; the posterior
	// should be strictly more uncertain than with large chunks. This is
	// the uncertainty mechanism behind Figure 7's spread.
	hSmall := entropy(30e3)
	hLarge := entropy(5e6)
	if hSmall <= hLarge {
		t.Errorf("posterior entropy: small-chunk %v <= large-chunk %v", hSmall, hLarge)
	}
}

func TestCustomEstimatorHook(t *testing.T) {
	// An oracle estimator (emission mean = the candidate capacity
	// itself, as if throughput always equaled GTBW) changes inference:
	// the Viterbi path should then track the raw observations instead
	// of inverting the TCP model.
	cfg := DefaultConfig(10)
	cfg.Estimator = func(gtbw float64, _ tcp.State, _ float64) float64 { return gtbw }
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Observation with a cold TCP state whose observed throughput is 3
	// although the true capacity generating it (via f) would be higher.
	cold := tcp.Fresh(0.160)
	cold.SSThresh = 40
	cold.LastSendGap = 5
	var obs []Observation
	for i := 0; i < 10; i++ {
		obs = append(obs, Observation{ThroughputMbps: 3, TCP: cold, SizeBytes: 4e5, StartInterval: i})
	}
	path, _, err := m.Viterbi(obs)
	if err != nil {
		t.Fatal(err)
	}
	for n, s := range path {
		if m.Capacity(s) != 3 {
			t.Fatalf("chunk %d: identity estimator should infer 3 Mbps, got %v", n, m.Capacity(s))
		}
	}
	// The default model must infer a higher capacity for the same
	// observations (it knows the cold connection under-reports).
	md := testModel(t, 10)
	pathDefault, _, err := md.Viterbi(obs)
	if err != nil {
		t.Fatal(err)
	}
	if md.Capacity(pathDefault[5]) <= 3 {
		t.Errorf("default estimator inferred %v, want > 3 (inversion of the cold state)",
			md.Capacity(pathDefault[5]))
	}
}

// TestSharePowersDoesNotChangeInference pins that the process-wide
// transition-power cache is purely a performance optimization: Viterbi
// paths, posteriors and samples are identical with and without it.
func TestSharePowersDoesNotChangeInference(t *testing.T) {
	obs := []Observation{
		obsFor(4, 4e6, 0), obsFor(4, 4e6, 2), obsFor(5, 2e6, 3),
		obsFor(6, 4e6, 7), obsFor(6, 4e6, 8), obsFor(5, 1e6, 12),
	}
	private := testModel(t, 10)
	cfg := DefaultConfig(10)
	cfg.SharePowers = true
	shared, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Run the shared-cache model first so the second model observes a
	// pre-warmed cache (the worst case for determinism).
	shared2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	vp, vs, err := private.Viterbi(obs)
	if err != nil {
		t.Fatal(err)
	}
	for name, m := range map[string]*Model{"cold": shared, "warm": shared2} {
		p, s, err := m.Viterbi(obs)
		if err != nil {
			t.Fatal(err)
		}
		if s != vs {
			t.Errorf("%s shared model: Viterbi score %v, want %v", name, s, vs)
		}
		for i := range p {
			if p[i] != vp[i] {
				t.Fatalf("%s shared model: Viterbi path differs at %d", name, i)
			}
		}
		post, err := m.ForwardBackward(obs)
		if err != nil {
			t.Fatal(err)
		}
		wantPost, err := private.ForwardBackward(obs)
		if err != nil {
			t.Fatal(err)
		}
		if post.LogLikelihood != wantPost.LogLikelihood {
			t.Errorf("%s shared model: log-likelihood %v, want %v", name, post.LogLikelihood, wantPost.LogLikelihood)
		}
		paths, err := m.SampleK(obs, 3, 7)
		if err != nil {
			t.Fatal(err)
		}
		wantPaths, err := private.SampleK(obs, 3, 7)
		if err != nil {
			t.Fatal(err)
		}
		for k := range paths {
			for i := range paths[k] {
				if paths[k][i] != wantPaths[k][i] {
					t.Fatalf("%s shared model: sample %d differs at %d", name, k, i)
				}
			}
		}
	}
}
