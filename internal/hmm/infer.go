package hmm

import (
	"errors"
	"math/rand"
)

// Inference bundles everything one abduction needs from the model: the
// Viterbi path (Algorithm 3), the forward–backward posterior
// (Algorithm 2), and K posterior capacity samples (Algorithm 1).
type Inference struct {
	Path        []int
	PathLogProb float64
	Post        *Posterior
	Samples     [][]int
}

// Infer runs all three algorithms over one observation sequence,
// computing the inter-chunk gaps and the log-emission table once and
// sharing them — where calling Viterbi, ForwardBackward and SampleK
// separately evaluates the emission table (the hot path's dominant
// throughput-estimator work) four times. All three are pure functions
// of (obs, k, seed), so the combined result is bit-identical to the
// separate calls.
//
// k may be zero (no samples drawn). With a scratch arena attached via
// SetScratch, the whole result — path, posterior slabs, samples —
// points into the arena and obeys the Scratch lifetime contract;
// without one, the call allocates a private arena the result owns.
func (m *Model) Infer(obs []Observation, k int, seed int64) (*Inference, error) {
	if len(obs) == 0 {
		return nil, ErrNoObservations
	}
	if k < 0 {
		return nil, errors.New("hmm: Infer requires k >= 0")
	}
	sc := m.scratch()
	N := len(obs)
	sc.chunkSlabs(N, len(m.states))
	if err := gapsInto(sc.gaps, obs); err != nil {
		return nil, err
	}
	m.emissionTableInto(sc.emitLog, obs)

	path, best := m.viterbiInto(sc, N)
	post := m.forwardBackwardInto(sc, N)

	inf := &Inference{Path: path, PathLogProb: best, Post: post}
	if k > 0 {
		samples := sc.samples(k, N)
		rng := rand.New(rand.NewSource(seed))
		for s := 0; s < k; s++ {
			if err := m.sampleInto(samples[s], sc.weights, rng, post, path); err != nil {
				return nil, err
			}
		}
		inf.Samples = samples
	}
	return inf, nil
}
