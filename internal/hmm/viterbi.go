package hmm

import (
	"math"

	"veritas/internal/mathx"
)

// Viterbi returns the maximum-likelihood GTBW state index for every
// chunk, along with the log-likelihood of that assignment — the paper's
// Algorithm 3. It differs from textbook Viterbi in one way: the
// transition between chunks n-1 and n uses A^Δn, the Δn-step power of
// the per-interval transition matrix, because chunk starts are embedded
// in wall-clock δ-intervals (Figure 4 of the paper). With a scratch
// arena attached the returned path points into the arena (see the
// Scratch lifetime contract).
func (m *Model) Viterbi(obs []Observation) ([]int, float64, error) {
	if len(obs) == 0 {
		return nil, 0, ErrNoObservations
	}
	sc := m.scratch()
	sc.chunkSlabs(len(obs), len(m.states))
	if err := gapsInto(sc.gaps, obs); err != nil {
		return nil, 0, err
	}
	m.emissionTableInto(sc.emitLog, obs)
	path, best := m.viterbiInto(sc, len(obs))
	return path, best, nil
}

// viterbiInto is the dynamic program body. It expects sc.chunkSlabs
// sized for (N, S) and sc.gaps/sc.emitLog filled; back-pointers live in
// sc.back (N×S row-major) and the returned path in sc.path. The float
// operations match the original allocating implementation exactly.
func (m *Model) viterbiInto(sc *Scratch, N int) ([]int, float64) {
	ns := len(m.states)
	d := sc.gaps

	// score[i] = best log-prob of any path ending in state i at chunk n.
	score, next := sc.cur, sc.next
	for i := 0; i < ns; i++ {
		score[i] = math.Log(m.initDist[i]) + sc.emitLog[i]
	}
	for n := 1; n < N; n++ {
		back := sc.back[n*ns : (n+1)*ns] // back[j] = predecessor of j at chunk n
		emitN := sc.emitLog[n*ns : (n+1)*ns]
		logA := m.powCache.PowLog(d[n])
		for j := 0; j < ns; j++ {
			bestI, bestV := 0, mathx.NegInf
			for i := 0; i < ns; i++ {
				la := logA.At(i, j)
				if math.IsInf(la, -1) {
					continue
				}
				v := score[i] + la
				if v > bestV {
					bestI, bestV = i, v
				}
			}
			next[j] = bestV + emitN[j]
			back[j] = bestI
		}
		score, next = next, score
	}

	bestI, bestV := mathx.ArgMax(score)
	path := sc.path[:N]
	path[N-1] = bestI
	for n := N - 1; n > 0; n-- {
		path[n-1] = sc.back[n*ns+path[n]]
	}
	return path, bestV
}
