package hmm

import (
	"math"

	"veritas/internal/mathx"
)

// Viterbi returns the maximum-likelihood GTBW state index for every
// chunk, along with the log-likelihood of that assignment — the paper's
// Algorithm 3. It differs from textbook Viterbi in one way: the
// transition between chunks n-1 and n uses A^Δn, the Δn-step power of
// the per-interval transition matrix, because chunk starts are embedded
// in wall-clock δ-intervals (Figure 4 of the paper).
func (m *Model) Viterbi(obs []Observation) ([]int, float64, error) {
	if len(obs) == 0 {
		return nil, 0, ErrNoObservations
	}
	d, err := gaps(obs)
	if err != nil {
		return nil, 0, err
	}
	emit := m.emissionTable(obs)
	ns := len(m.states)
	N := len(obs)

	// score[i] = best log-prob of any path ending in state i at chunk n.
	score := make([]float64, ns)
	for i := 0; i < ns; i++ {
		score[i] = math.Log(m.initDist[i]) + emit[0][i]
	}
	back := make([][]int, N) // back[n][i] = predecessor of i at chunk n
	next := make([]float64, ns)
	for n := 1; n < N; n++ {
		back[n] = make([]int, ns)
		logA := m.logTransPower(d[n])
		for j := 0; j < ns; j++ {
			bestI, bestV := 0, mathx.NegInf
			for i := 0; i < ns; i++ {
				la := logA.At(i, j)
				if math.IsInf(la, -1) {
					continue
				}
				v := score[i] + la
				if v > bestV {
					bestI, bestV = i, v
				}
			}
			next[j] = bestV + emit[n][j]
			back[n][j] = bestI
		}
		score, next = next, score
	}

	bestI, bestV := mathx.ArgMax(score)
	path := make([]int, N)
	path[N-1] = bestI
	for n := N - 1; n > 0; n-- {
		path[n-1] = back[n][path[n]]
	}
	return path, bestV, nil
}

// logTransPower returns element-wise log of A^k. Powers are cached by
// the model's PowerCache; the log view is cheap enough to materialize
// per call for the small grids Veritas uses, but we memoize it anyway
// because sessions reuse a handful of Δ values thousands of times.
func (m *Model) logTransPower(k int) *mathx.Matrix {
	if m.logPow == nil {
		m.logPow = make(map[int]*mathx.Matrix)
	}
	if lm, ok := m.logPow[k]; ok {
		return lm
	}
	a := m.powCache.Pow(k)
	lm := mathx.NewMatrix(a.Rows, a.Cols)
	for idx, v := range a.Data {
		if v <= 0 {
			lm.Data[idx] = mathx.NegInf
		} else {
			lm.Data[idx] = math.Log(v)
		}
	}
	m.logPow[k] = lm
	return lm
}
