package hmm

import (
	"errors"
	"math/rand"

	"veritas/internal/mathx"
)

// Sample draws one GTBW state sequence from the posterior — the paper's
// Algorithm 1 (Capacity Sampler). The last chunk's state is pinned to
// the Viterbi maximum-likelihood state; every earlier chunk n is then
// sampled backward from the pairwise posterior conditioned on the
// already-sampled state of chunk n+1:
//
//	π_n(i) ∝ Γ_{i, C_{s_{n+1}}, n}.
func (m *Model) Sample(rng *rand.Rand, post *Posterior, viterbi []int) ([]int, error) {
	if post == nil || post.Len() == 0 {
		return nil, errors.New("hmm: Sample requires a posterior")
	}
	out := make([]int, post.Len())
	weights := make([]float64, len(m.states))
	if err := m.sampleInto(out, weights, rng, post, viterbi); err != nil {
		return nil, err
	}
	return out, nil
}

// sampleInto draws one sequence into out (length post.Len()) using the
// caller-supplied weights buffer (length NumStates). Identical sampling
// logic and RNG consumption to the original Sample.
func (m *Model) sampleInto(out []int, weights []float64, rng *rand.Rand, post *Posterior, viterbi []int) error {
	N := post.Len()
	if len(viterbi) != N {
		return errors.New("hmm: viterbi path length mismatch")
	}
	ns := len(m.states)
	out[N-1] = viterbi[N-1]
	for n := N - 2; n >= 0; n-- {
		nextState := out[n+1]
		pair := post.Pair(n)
		var total float64
		for i := 0; i < ns; i++ {
			weights[i] = pair[i*ns+nextState]
			total += weights[i]
		}
		if total <= 0 {
			// The conditioned column is numerically empty (the sampled
			// next state was reachable only via Viterbi ties); fall back
			// to the marginal, which is always populated.
			copy(weights, post.Gamma(n))
		}
		out[n] = mathx.SampleCategorical(rng, weights)
	}
	return nil
}

// SampleK draws k independent state sequences with a deterministic seed,
// running Viterbi and forward–backward once and reusing them.
func (m *Model) SampleK(obs []Observation, k int, seed int64) ([][]int, error) {
	if k <= 0 {
		return nil, errors.New("hmm: SampleK requires k > 0")
	}
	inf, err := m.Infer(obs, k, seed)
	if err != nil {
		return nil, err
	}
	return inf.Samples, nil
}

// ExpectedCapacityAfter returns E[C_{t+gap} | C_t = state]: the mean of
// the capacity grid under the gap-step transition distribution from the
// given state. Veritas's interventional download-time predictor uses
// this with the Viterbi state of the most recent chunk (paper §4.4).
func (m *Model) ExpectedCapacityAfter(state, gap int) float64 {
	if gap < 0 {
		gap = 0
	}
	a := m.powCache.Pow(gap)
	row := a.Row(state)
	var e float64
	for j, p := range row {
		e += p * m.states[j]
	}
	return e
}
