package hmm

import (
	"errors"
	"math/rand"

	"veritas/internal/mathx"
)

// Sample draws one GTBW state sequence from the posterior — the paper's
// Algorithm 1 (Capacity Sampler). The last chunk's state is pinned to
// the Viterbi maximum-likelihood state; every earlier chunk n is then
// sampled backward from the pairwise posterior conditioned on the
// already-sampled state of chunk n+1:
//
//	π_n(i) ∝ Γ_{i, C_{s_{n+1}}, n}.
func (m *Model) Sample(rng *rand.Rand, post *Posterior, viterbi []int) ([]int, error) {
	if post == nil || len(post.Gamma) == 0 {
		return nil, errors.New("hmm: Sample requires a posterior")
	}
	N := len(post.Gamma)
	if len(viterbi) != N {
		return nil, errors.New("hmm: viterbi path length mismatch")
	}
	if len(post.Pair) != N-1 {
		return nil, errors.New("hmm: pairwise posterior length mismatch")
	}
	ns := len(m.states)
	out := make([]int, N)
	out[N-1] = viterbi[N-1]
	weights := make([]float64, ns)
	for n := N - 2; n >= 0; n-- {
		nextState := out[n+1]
		var total float64
		for i := 0; i < ns; i++ {
			weights[i] = post.Pair[n][i][nextState]
			total += weights[i]
		}
		if total <= 0 {
			// The conditioned column is numerically empty (the sampled
			// next state was reachable only via Viterbi ties); fall back
			// to the marginal, which is always populated.
			copy(weights, post.Gamma[n])
		}
		out[n] = mathx.SampleCategorical(rng, weights)
	}
	return out, nil
}

// SampleK draws k independent state sequences with a deterministic seed,
// running Viterbi and forward–backward once and reusing them.
func (m *Model) SampleK(obs []Observation, k int, seed int64) ([][]int, error) {
	if k <= 0 {
		return nil, errors.New("hmm: SampleK requires k > 0")
	}
	viterbi, _, err := m.Viterbi(obs)
	if err != nil {
		return nil, err
	}
	post, err := m.ForwardBackward(obs)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([][]int, k)
	for s := 0; s < k; s++ {
		seq, err := m.Sample(rng, post, viterbi)
		if err != nil {
			return nil, err
		}
		out[s] = seq
	}
	return out, nil
}

// ExpectedCapacityAfter returns E[C_{t+gap} | C_t = state]: the mean of
// the capacity grid under the gap-step transition distribution from the
// given state. Veritas's interventional download-time predictor uses
// this with the Viterbi state of the most recent chunk (paper §4.4).
func (m *Model) ExpectedCapacityAfter(state, gap int) float64 {
	if gap < 0 {
		gap = 0
	}
	a := m.powCache.Pow(gap)
	row := a.Row(state)
	var e float64
	for j, p := range row {
		e += p * m.states[j]
	}
	return e
}
