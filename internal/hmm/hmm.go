// Package hmm implements the Embedded Hidden Markov Model at the heart
// of Veritas (paper §3.2): a Markov chain over quantized ground-truth
// bandwidth (GTBW) states whose transitions between consecutive chunks
// use A^Δn (Δn = number of δ-length wall-clock intervals between the
// chunks' start times) and whose emissions embed the domain-specific TCP
// throughput estimator f:
//
//	P(Y_n | W_sn, S_n, C_sn = c) = Normal(f(c, W_sn, S_n), σ²).
//
// The package provides the paper's three algorithms: the Viterbi variant
// (Algorithm 3), the scaled forward–backward variant (Algorithm 2)
// producing the pairwise posterior Γ, and the posterior capacity sampler
// (Algorithm 1).
package hmm

import (
	"errors"
	"fmt"
	"math"

	"veritas/internal/mathx"
	"veritas/internal/tcp"
)

// Observation is the per-chunk evidence the EHMM conditions on: the
// observed throughput Y_n, the TCP control state W_sn, the chunk size
// S_n, and the δ-interval index of the chunk's start time s_n.
type Observation struct {
	ThroughputMbps float64
	TCP            tcp.State
	SizeBytes      float64
	StartInterval  int // floor(s_n / δ)
}

// Config parameterizes the model. The paper's evaluation uses δ = 5 s,
// ε = 0.5 Mbps, σ = 0.5 Mbps, a tridiagonal transition matrix and a
// uniform initial distribution.
type Config struct {
	EpsMbps   float64 // ε: capacity quantization step
	MaxMbps   float64 // top of the capacity grid (inclusive)
	DeltaSecs float64 // δ: wall-clock seconds per GTBW interval
	Sigma     float64 // σ: emission noise standard deviation, Mbps
	// StayProb is the tridiagonal self-transition probability; the
	// remainder splits evenly between the two neighbours (edge states
	// give the whole remainder to their single neighbour).
	StayProb float64
	// Prior selects the transition structure: "" or "tridiagonal" for
	// the paper's stability prior, "uniform" for an uninformative prior
	// (used by the ablation experiments to show what the Markov
	// structure contributes).
	Prior string
	// Estimator overrides the throughput model embedded in the
	// emissions. Nil means the paper's estimator f
	// (tcp.EstimateThroughput). The paper notes that "more detailed
	// models that capture intricate details of specific TCP versions
	// can be easily incorporated" — this is that hook: supply a model
	// of, e.g., BBR, and the rest of the inference machinery is reused
	// unchanged.
	Estimator func(gtbwMbps float64, st tcp.State, sizeBytes float64) float64
	// SharePowers serves transition powers A^k from a process-wide
	// cache keyed by the transition matrix's fingerprint
	// (mathx.SharedPowers), so fleets of sessions with identical
	// capacity grids compute each power once instead of once per
	// session. Inference results are unchanged: shared and private
	// caches build powers by the same sequential walk.
	SharePowers bool
}

// DefaultConfig mirrors the paper's hyperparameters for a grid reaching
// maxMbps.
func DefaultConfig(maxMbps float64) Config {
	return Config{
		EpsMbps:   0.5,
		MaxMbps:   maxMbps,
		DeltaSecs: 5,
		Sigma:     0.5,
		StayProb:  0.8,
	}
}

// Validate reports the first problem with the config, if any.
func (c Config) Validate() error {
	switch {
	case c.EpsMbps <= 0:
		return fmt.Errorf("hmm: EpsMbps %v <= 0", c.EpsMbps)
	case c.MaxMbps < c.EpsMbps:
		return fmt.Errorf("hmm: MaxMbps %v < EpsMbps %v", c.MaxMbps, c.EpsMbps)
	case c.DeltaSecs <= 0:
		return fmt.Errorf("hmm: DeltaSecs %v <= 0", c.DeltaSecs)
	case c.Sigma <= 0:
		return fmt.Errorf("hmm: Sigma %v <= 0", c.Sigma)
	case c.StayProb <= 0 || c.StayProb >= 1:
		return fmt.Errorf("hmm: StayProb %v outside (0, 1)", c.StayProb)
	case c.Prior != "" && c.Prior != "tridiagonal" && c.Prior != "uniform":
		return fmt.Errorf("hmm: unknown prior %q (want tridiagonal or uniform)", c.Prior)
	}
	return nil
}

// Model is an immutable EHMM ready for inference (the optional scratch
// arena attached via SetScratch is the one piece of mutable state, and
// it never influences results). Construct with New.
type Model struct {
	cfg      Config
	states   []float64 // states[i] = i*ε Mbps
	initDist []float64 // uniform u
	trans    *mathx.Matrix
	powCache *mathx.PowerCache
	sc       *Scratch // optional reusable inference arena
}

// New builds the model: a capacity grid {0, ε, 2ε, …, ⌊Max/ε⌋·ε}, a
// tridiagonal transition matrix and a uniform initial distribution.
func New(cfg Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := int(math.Floor(cfg.MaxMbps/cfg.EpsMbps)) + 1
	states := make([]float64, n)
	for i := range states {
		states[i] = float64(i) * cfg.EpsMbps
	}
	var trans *mathx.Matrix
	if cfg.Prior == "uniform" {
		trans = mathx.NewMatrix(n, n)
		for i := range trans.Data {
			trans.Data[i] = 1 / float64(n)
		}
	} else {
		trans = Tridiagonal(n, cfg.StayProb)
	}
	init := make([]float64, n)
	for i := range init {
		init[i] = 1 / float64(n)
	}
	var powCache *mathx.PowerCache
	if cfg.SharePowers {
		powCache = mathx.SharedPowers(trans)
	} else {
		powCache = mathx.NewPowerCache(trans)
	}
	return &Model{
		cfg:      cfg,
		states:   states,
		initDist: init,
		trans:    trans,
		powCache: powCache,
	}, nil
}

// Tridiagonal returns the paper's prior transition matrix: each state
// stays with probability stay and otherwise moves to an adjacent
// capacity, encoding that GTBW is stable but may drift.
func Tridiagonal(n int, stay float64) *mathx.Matrix {
	m := mathx.NewMatrix(n, n)
	if n == 1 {
		m.Set(0, 0, 1)
		return m
	}
	move := 1 - stay
	for i := 0; i < n; i++ {
		switch i {
		case 0:
			m.Set(0, 0, stay)
			m.Set(0, 1, move)
		case n - 1:
			m.Set(n-1, n-1, stay)
			m.Set(n-1, n-2, move)
		default:
			m.Set(i, i, stay)
			m.Set(i, i-1, move/2)
			m.Set(i, i+1, move/2)
		}
	}
	return m
}

// Config returns the model's configuration.
func (m *Model) Config() Config { return m.cfg }

// NumStates returns the size of the capacity grid.
func (m *Model) NumStates() int { return len(m.states) }

// Capacity returns the GTBW in Mbps of state index i.
func (m *Model) Capacity(i int) float64 { return m.states[i] }

// StateFor returns the grid index nearest to mbps, clamped to the grid.
func (m *Model) StateFor(mbps float64) int {
	i := int(math.Round(mbps / m.cfg.EpsMbps))
	if i < 0 {
		return 0
	}
	if i >= len(m.states) {
		return len(m.states) - 1
	}
	return i
}

// TransitionPower returns A^k from the model's power cache.
func (m *Model) TransitionPower(k int) *mathx.Matrix { return m.powCache.Pow(k) }

// EmissionLogProb returns log P(Y | W, S, C = state i) per Equation (3):
// a Gaussian around the embedded throughput estimator's prediction.
func (m *Model) EmissionLogProb(obs Observation, i int) float64 {
	est := m.cfg.Estimator
	if est == nil {
		est = tcp.EstimateThroughput
	}
	pred := est(m.states[i], obs.TCP, obs.SizeBytes)
	return mathx.NormalLogPDF(obs.ThroughputMbps, pred, m.cfg.Sigma)
}

// gapsInto fills d (length len(obs)) with Δn for n = 1..N-1 (d[0] is
// unused, kept for alignment) and validates ordering.
func gapsInto(d []int, obs []Observation) error {
	if len(obs) > 0 {
		d[0] = 0
	}
	for n := 1; n < len(obs); n++ {
		g := obs[n].StartInterval - obs[n-1].StartInterval
		if g < 0 {
			return fmt.Errorf("hmm: observations out of order at %d (interval %d < %d)",
				n, obs[n].StartInterval, obs[n-1].StartInterval)
		}
		d[n] = g
	}
	return nil
}

// emissionTableInto fills the N×S row-major slab tab with log-emissions
// tab[n*S+i] = log P(Y_n | W, S, C = iε); shared by Viterbi and
// forward–backward, computed once per inference.
func (m *Model) emissionTableInto(tab []float64, obs []Observation) {
	ns := len(m.states)
	est := m.cfg.Estimator
	if est == nil {
		est = tcp.EstimateThroughput
	}
	for n, o := range obs {
		row := tab[n*ns : (n+1)*ns]
		for i := range m.states {
			pred := est(m.states[i], o.TCP, o.SizeBytes)
			row[i] = mathx.NormalLogPDF(o.ThroughputMbps, pred, m.cfg.Sigma)
		}
	}
}

// ErrNoObservations is returned by inference entry points on empty input.
var ErrNoObservations = errors.New("hmm: no observations")
