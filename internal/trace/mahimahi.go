package trace

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Mahimahi trace support. The paper's testbed replays bandwidth through
// Mahimahi's mm-link, whose trace format is one integer per line: the
// millisecond timestamp of a delivery opportunity for one MTU-sized
// (1500-byte) packet. This file converts between that format and the
// piecewise-constant Mbps representation used everywhere else, so logs
// and traces can round-trip with the original toolchain.

// MahimahiPacketBytes is the payload each delivery opportunity carries.
const MahimahiPacketBytes = 1500

// EncodeMahimahi writes the trace as an mm-link packet-delivery
// schedule covering [0, horizon) seconds. Within each constant-rate
// span, opportunities are spaced uniformly at rate/packet intervals.
func (tr *Trace) EncodeMahimahi(w io.Writer, horizon float64) error {
	if horizon <= 0 {
		return errors.New("trace: EncodeMahimahi requires horizon > 0")
	}
	bw := bufio.NewWriter(w)
	const bitsPerPacket = MahimahiPacketBytes * 8
	t := 0.0
	// Credit-based emission: accumulate fractional packets so slow
	// spans still emit at the right long-run rate.
	credit := 0.0
	lastMs := -1
	for t < horizon {
		next := math.Min(tr.NextChange(t), horizon)
		rate := tr.At(t) // Mbps
		if rate <= 0 {
			t = next
			continue
		}
		pktPerSec := rate * 1e6 / bitsPerPacket
		span := next - t
		credit += span * pktPerSec
		n := int(credit)
		credit -= float64(n)
		for i := 0; i < n; i++ {
			ts := t + (float64(i)+0.5)*span/float64(n)
			ms := int(ts * 1000)
			// Timestamps must be non-decreasing; rates above one packet
			// per millisecond legitimately repeat a timestamp, exactly
			// as real mm-link traces do.
			if ms < lastMs {
				ms = lastMs
			}
			lastMs = ms
			if _, err := fmt.Fprintf(bw, "%d\n", ms); err != nil {
				return err
			}
		}
		t = next
	}
	return bw.Flush()
}

// DecodeMahimahi parses an mm-link schedule and reconstructs a
// piecewise-constant Mbps trace by counting delivery opportunities per
// bucketSecs-wide bucket. The last partial bucket is dropped (its rate
// would be biased low).
func DecodeMahimahi(r io.Reader, bucketSecs float64) (*Trace, error) {
	if bucketSecs <= 0 {
		return nil, errors.New("trace: DecodeMahimahi requires bucketSecs > 0")
	}
	sc := bufio.NewScanner(r)
	var stamps []int
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		ms, err := strconv.Atoi(line)
		if err != nil {
			return nil, fmt.Errorf("trace: mahimahi line %d: %w", lineNo, err)
		}
		if ms < 0 {
			return nil, fmt.Errorf("trace: mahimahi line %d: negative timestamp", lineNo)
		}
		stamps = append(stamps, ms)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(stamps) == 0 {
		return nil, errors.New("trace: empty mahimahi trace")
	}
	if !sort.IntsAreSorted(stamps) {
		sort.Ints(stamps)
	}

	horizon := float64(stamps[len(stamps)-1]+1) / 1000
	// Round to the nearest bucket boundary: a bucket covered by more
	// than half its width is kept, a short tail is dropped (its rate
	// estimate would be biased).
	nBuckets := int(math.Round(horizon / bucketSecs))
	if nBuckets == 0 {
		return nil, fmt.Errorf("trace: mahimahi trace shorter than half a %v s bucket", bucketSecs)
	}
	counts := make([]int, nBuckets)
	for _, ms := range stamps {
		b := int(float64(ms) / 1000 / bucketSecs)
		if b < nBuckets {
			counts[b]++
		}
	}
	vals := make([]float64, nBuckets)
	for i, c := range counts {
		vals[i] = float64(c) * MahimahiPacketBytes * 8 / 1e6 / bucketSecs
	}
	return FromSteps(bucketSecs, vals)
}
