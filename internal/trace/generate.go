package trace

import (
	"fmt"
	"math"
	"math/rand"
)

// GenConfig describes a synthetic FCC-like bandwidth process. The paper
// emulates FCC broadband traces (piecewise-constant bandwidth over 5 s
// intervals); we substitute a seeded Markov-modulated random walk with
// the same structure: the bandwidth holds for Interval seconds, then
// takes a bounded random step, with occasional larger regime jumps.
type GenConfig struct {
	MinMbps  float64 // inclusive floor of the process
	MaxMbps  float64 // inclusive ceiling of the process
	Interval float64 // seconds each value holds (paper: 5 s)
	Horizon  float64 // total trace length in seconds
	StepMbps float64 // max magnitude of a regular step (uniform)
	JumpProb float64 // probability an interval is a regime jump
	Seed     int64

	// Deep-fade extension for WiFi-like regimes: with probability
	// FadeProb an interval begins a fade, during which the bandwidth
	// drops to FadeMbps for FadeIntervals intervals before resuming the
	// pre-fade level. All three zero values disable fading, leaving the
	// FCC-like process byte-identical to the original generator.
	FadeProb      float64 // probability an interval starts a fade
	FadeMbps      float64 // bandwidth during a fade
	FadeIntervals int     // fade length in intervals (min 1 when fading)
}

// Validate reports the first problem with the config, if any.
func (c GenConfig) Validate() error {
	switch {
	case c.MinMbps < 0:
		return fmt.Errorf("trace: MinMbps %v < 0", c.MinMbps)
	case c.MaxMbps <= c.MinMbps:
		return fmt.Errorf("trace: MaxMbps %v <= MinMbps %v", c.MaxMbps, c.MinMbps)
	case c.Interval <= 0:
		return fmt.Errorf("trace: Interval %v <= 0", c.Interval)
	case c.Horizon < c.Interval:
		return fmt.Errorf("trace: Horizon %v < Interval %v", c.Horizon, c.Interval)
	case c.StepMbps < 0:
		return fmt.Errorf("trace: StepMbps %v < 0", c.StepMbps)
	case c.JumpProb < 0 || c.JumpProb > 1:
		return fmt.Errorf("trace: JumpProb %v outside [0,1]", c.JumpProb)
	case c.FadeProb < 0 || c.FadeProb > 1:
		return fmt.Errorf("trace: FadeProb %v outside [0,1]", c.FadeProb)
	case c.FadeMbps < 0:
		return fmt.Errorf("trace: FadeMbps %v < 0", c.FadeMbps)
	case c.FadeIntervals < 0:
		return fmt.Errorf("trace: FadeIntervals %d < 0", c.FadeIntervals)
	}
	return nil
}

// DefaultFCC returns the generator settings used for the paper's
// counterfactual experiments: GTBW varying within 3-8 Mbps over 5 s
// intervals for a 10-minute session. Step sizes mirror the stability of
// real FCC broadband traces, which drift slowly with occasional regime
// shifts.
func DefaultFCC(seed int64) GenConfig {
	return GenConfig{
		MinMbps:  3,
		MaxMbps:  8,
		Interval: 5,
		Horizon:  720, // a 10-min video plus rebuffering slack
		StepMbps: 0.4,
		JumpProb: 0.02,
		Seed:     seed,
	}
}

// DefaultLTE returns a cellular-like regime: wider dynamic range than
// the FCC broadband process (1–20 Mbps), second-granularity variation
// and frequent regime jumps from handovers and scheduler churn.
func DefaultLTE(seed int64) GenConfig {
	return GenConfig{
		MinMbps:  1,
		MaxMbps:  20,
		Interval: 1,
		Horizon:  720,
		StepMbps: 1.5,
		JumpProb: 0.08,
		Seed:     seed,
	}
}

// DefaultWiFi returns a WLAN-like regime: a fast 2–25 Mbps random walk
// punctuated by deep fades (interference / contention bursts) during
// which the link collapses to ~0.5 Mbps for a few seconds.
func DefaultWiFi(seed int64) GenConfig {
	return GenConfig{
		MinMbps:       2,
		MaxMbps:       25,
		Interval:      2,
		Horizon:       720,
		StepMbps:      1.0,
		JumpProb:      0.04,
		FadeProb:      0.05,
		FadeMbps:      0.5,
		FadeIntervals: 3,
		Seed:          seed,
	}
}

// Regimes returns the names of the built-in generator regimes, in the
// order RegimeConfig accepts them.
func Regimes() []string { return []string{"fcc", "lte", "wifi"} }

// RegimeConfig returns the named built-in regime's generator config.
func RegimeConfig(name string, seed int64) (GenConfig, error) {
	switch name {
	case "fcc", "":
		return DefaultFCC(seed), nil
	case "lte":
		return DefaultLTE(seed), nil
	case "wifi":
		return DefaultWiFi(seed), nil
	}
	return GenConfig{}, fmt.Errorf("trace: unknown regime %q (have %v)", name, Regimes())
}

// Generate produces one synthetic trace from the config.
func Generate(cfg GenConfig) (*Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := int(math.Ceil(cfg.Horizon / cfg.Interval))
	vals := make([]float64, n)
	span := cfg.MaxMbps - cfg.MinMbps
	cur := cfg.MinMbps + rng.Float64()*span
	fadeLeft := 0
	for i := 0; i < n; i++ {
		if fadeLeft > 0 {
			vals[i] = cfg.FadeMbps
			fadeLeft--
			continue
		}
		vals[i] = cur
		if cfg.FadeProb > 0 && rng.Float64() < cfg.FadeProb {
			fadeLeft = cfg.FadeIntervals
			if fadeLeft < 1 {
				fadeLeft = 1
			}
			continue // the pre-fade level resumes after the fade
		}
		if rng.Float64() < cfg.JumpProb {
			// Regime jump: re-draw anywhere in the range. This gives the
			// occasional sharp shift real broadband traces show.
			cur = cfg.MinMbps + rng.Float64()*span
			continue
		}
		step := (rng.Float64()*2 - 1) * cfg.StepMbps
		cur += step
		if cur < cfg.MinMbps {
			cur = cfg.MinMbps + (cfg.MinMbps - cur) // reflect at floor
		}
		if cur > cfg.MaxMbps {
			cur = cfg.MaxMbps - (cur - cfg.MaxMbps) // reflect at ceiling
		}
		// A reflection can overshoot when the step exceeds the span.
		if cur < cfg.MinMbps {
			cur = cfg.MinMbps
		}
		if cur > cfg.MaxMbps {
			cur = cfg.MaxMbps
		}
	}
	return FromSteps(cfg.Interval, vals)
}

// GenerateSet produces n traces with seeds cfg.Seed, cfg.Seed+1, ...
// so sets are reproducible and individually addressable.
func GenerateSet(cfg GenConfig, n int) ([]*Trace, error) {
	if n <= 0 {
		return nil, fmt.Errorf("trace: GenerateSet needs n > 0, got %d", n)
	}
	out := make([]*Trace, n)
	for i := range out {
		c := cfg
		c.Seed = cfg.Seed + int64(i)
		tr, err := Generate(c)
		if err != nil {
			return nil, err
		}
		out[i] = tr
	}
	return out, nil
}

// SquareWave returns a trace alternating between lo and hi every
// halfPeriod seconds for the given horizon, starting at hi. Used by unit
// tests and the workshop-paper comparison (square-wave bandwidth).
func SquareWave(lo, hi, halfPeriod, horizon float64) (*Trace, error) {
	if halfPeriod <= 0 || horizon <= 0 {
		return nil, fmt.Errorf("trace: SquareWave requires positive halfPeriod and horizon")
	}
	n := int(math.Ceil(horizon / halfPeriod))
	vals := make([]float64, n)
	for i := range vals {
		if i%2 == 0 {
			vals[i] = hi
		} else {
			vals[i] = lo
		}
	}
	return FromSteps(halfPeriod, vals)
}
