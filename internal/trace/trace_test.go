package trace

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func mustFromSteps(t *testing.T, interval float64, vals []float64) *Trace {
	t.Helper()
	tr, err := FromSteps(interval, vals)
	if err != nil {
		t.Fatalf("FromSteps: %v", err)
	}
	return tr
}

func TestAtLookup(t *testing.T) {
	tr := mustFromSteps(t, 5, []float64{1, 2, 3})
	cases := []struct{ t, want float64 }{
		{-1, 1}, {0, 1}, {4.99, 1}, {5, 2}, {9.99, 2}, {10, 3}, {100, 3},
	}
	for _, c := range cases {
		if got := tr.At(c.t); got != c.want {
			t.Errorf("At(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestNewRejectsBad(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("New(nil) should fail")
	}
	if _, err := New([]Point{{0, -1}}); err == nil {
		t.Error("negative bandwidth should fail")
	}
	if _, err := New([]Point{{0, 1}, {0, 2}}); err == nil {
		t.Error("duplicate time should fail")
	}
	if _, err := New([]Point{{0, math.NaN()}}); err == nil {
		t.Error("NaN bandwidth should fail")
	}
}

func TestNewSortsPoints(t *testing.T) {
	tr, err := New([]Point{{10, 2}, {0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if tr.At(5) != 1 || tr.At(15) != 2 {
		t.Error("points not sorted by time")
	}
}

func TestNextChange(t *testing.T) {
	tr := mustFromSteps(t, 5, []float64{1, 2})
	if got := tr.NextChange(0); got != 5 {
		t.Errorf("NextChange(0) = %v, want 5", got)
	}
	if got := tr.NextChange(5); !math.IsInf(got, 1) {
		t.Errorf("NextChange(5) = %v, want +Inf", got)
	}
	if got := tr.NextChange(2.5); got != 5 {
		t.Errorf("NextChange(2.5) = %v, want 5", got)
	}
}

func TestConstant(t *testing.T) {
	tr := Constant(7)
	if tr.At(0) != 7 || tr.At(1e9) != 7 {
		t.Error("Constant trace should hold its value forever")
	}
}

func TestMeanTimeWeighted(t *testing.T) {
	tr := mustFromSteps(t, 5, []float64{2, 4})
	// Over [0,10): 5s at 2 and 5s at 4.
	if got := tr.Mean(10); got != 3 {
		t.Errorf("Mean(10) = %v, want 3", got)
	}
	// Over [0,5): only the first step.
	if got := tr.Mean(5); got != 2 {
		t.Errorf("Mean(5) = %v, want 2", got)
	}
	// Beyond the end the final value holds.
	if got := tr.Mean(20); got != 3.5 {
		t.Errorf("Mean(20) = %v, want 3.5", got)
	}
}

func TestMinMaxValues(t *testing.T) {
	tr := mustFromSteps(t, 1, []float64{3, 1, 5})
	min, max := tr.MinMax()
	if min != 1 || max != 5 {
		t.Errorf("MinMax = %v, %v", min, max)
	}
}

func TestQuantize(t *testing.T) {
	tr := mustFromSteps(t, 1, []float64{1.26, 1.24, 0.1})
	q := tr.Quantize(0.5)
	want := []float64{1.5, 1.0, 0}
	for i, p := range q.Points() {
		if p.Mbps != want[i] {
			t.Errorf("Quantize step %d = %v, want %v", i, p.Mbps, want[i])
		}
	}
	// Original untouched.
	if tr.Points()[0].Mbps != 1.26 {
		t.Error("Quantize mutated original")
	}
}

func TestResample(t *testing.T) {
	tr := mustFromSteps(t, 5, []float64{1, 2})
	rs, err := tr.Resample(2.5, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 1, 2, 2}
	pts := rs.Points()
	if len(pts) != 4 {
		t.Fatalf("Resample produced %d steps, want 4", len(pts))
	}
	for i, p := range pts {
		if p.Mbps != want[i] {
			t.Errorf("Resample step %d = %v, want %v", i, p.Mbps, want[i])
		}
	}
}

func TestScale(t *testing.T) {
	tr := mustFromSteps(t, 1, []float64{1, 2})
	s, err := tr.Scale(2)
	if err != nil {
		t.Fatal(err)
	}
	if s.At(0) != 2 || s.At(1) != 4 {
		t.Error("Scale wrong")
	}
	if _, err := tr.Scale(-1); err == nil {
		t.Error("negative scale should fail")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tr := mustFromSteps(t, 5, []float64{1.5, 2.25, 0})
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() {
		t.Fatalf("round trip changed length: %d vs %d", got.Len(), tr.Len())
	}
	for i, p := range got.Points() {
		if p != tr.Points()[i] {
			t.Errorf("round trip point %d: %v vs %v", i, p, tr.Points()[i])
		}
	}
}

func TestDecodeComments(t *testing.T) {
	in := "# comment\n\n0 1.5\n5 2\n"
	tr, err := Decode(bytes.NewBufferString(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2 || tr.At(6) != 2 {
		t.Error("Decode with comments wrong")
	}
}

func TestDecodeErrors(t *testing.T) {
	for _, in := range []string{"0\n", "a b\n", "0 x\n", ""} {
		if _, err := Decode(bytes.NewBufferString(in)); err == nil {
			t.Errorf("Decode(%q) should fail", in)
		}
	}
}

func TestGenerateBounds(t *testing.T) {
	cfg := DefaultFCC(3)
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	min, max := tr.MinMax()
	if min < cfg.MinMbps-1e-9 || max > cfg.MaxMbps+1e-9 {
		t.Errorf("generated trace out of bounds: [%v, %v] not within [%v, %v]",
			min, max, cfg.MinMbps, cfg.MaxMbps)
	}
	wantSteps := int(math.Ceil(cfg.Horizon / cfg.Interval))
	if tr.Len() != wantSteps {
		t.Errorf("generated %d steps, want %d", tr.Len(), wantSteps)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(DefaultFCC(9))
	b, _ := Generate(DefaultFCC(9))
	for i, p := range a.Points() {
		if p != b.Points()[i] {
			t.Fatal("same seed produced different traces")
		}
	}
	c, _ := Generate(DefaultFCC(10))
	same := true
	for i, p := range a.Points() {
		if p != c.Points()[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestGenerateSetSeeds(t *testing.T) {
	set, err := GenerateSet(DefaultFCC(100), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 3 {
		t.Fatalf("GenerateSet returned %d traces", len(set))
	}
	single, _ := Generate(DefaultFCC(101))
	for i, p := range set[1].Points() {
		if p != single.Points()[i] {
			t.Fatal("GenerateSet seed indexing broken: set[1] != Generate(seed+1)")
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := DefaultFCC(1)
	bad.MaxMbps = bad.MinMbps
	if _, err := Generate(bad); err == nil {
		t.Error("Max <= Min should fail")
	}
	bad2 := DefaultFCC(1)
	bad2.Interval = 0
	if _, err := Generate(bad2); err == nil {
		t.Error("zero interval should fail")
	}
}

func TestSquareWave(t *testing.T) {
	tr, err := SquareWave(1, 5, 10, 40)
	if err != nil {
		t.Fatal(err)
	}
	if tr.At(0) != 5 || tr.At(10) != 1 || tr.At(20) != 5 || tr.At(30) != 1 {
		t.Error("square wave values wrong")
	}
}

func TestQuickGeneratedTracesInBounds(t *testing.T) {
	f := func(seed int64) bool {
		cfg := GenConfig{MinMbps: 1, MaxMbps: 4, Interval: 5, Horizon: 100,
			StepMbps: 2, JumpProb: 0.2, Seed: seed}
		tr, err := Generate(cfg)
		if err != nil {
			return false
		}
		min, max := tr.MinMax()
		return min >= 1-1e-9 && max <= 4+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
