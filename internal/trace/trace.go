// Package trace models ground-truth bandwidth (GTBW) time series: the
// piecewise-constant bandwidth processes that drive the emulated network
// and that Veritas's abduction tries to recover.
//
// A Trace is a sorted sequence of (start-time, Mbps) steps; the bandwidth
// holds its value from one step until the next. This matches the paper's
// model of GTBW as constant within each δ-length interval, and is also
// the format of Mahimahi-style replay traces the paper's testbed used.
package trace

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Point is a single bandwidth step: the link runs at Mbps from time T
// until the time of the next point.
type Point struct {
	T    float64 // seconds from session start
	Mbps float64 // bandwidth during [T, next.T)
}

// Trace is a piecewise-constant bandwidth series. The zero value is not
// usable; construct with New, FromSteps or a generator.
type Trace struct {
	points []Point
}

// New builds a trace from points, sorting them by time and validating
// that times are distinct and bandwidths non-negative.
func New(points []Point) (*Trace, error) {
	if len(points) == 0 {
		return nil, errors.New("trace: need at least one point")
	}
	ps := make([]Point, len(points))
	copy(ps, points)
	sort.Slice(ps, func(i, j int) bool { return ps[i].T < ps[j].T })
	for i, p := range ps {
		if p.Mbps < 0 || math.IsNaN(p.Mbps) || math.IsInf(p.Mbps, 0) {
			return nil, fmt.Errorf("trace: invalid bandwidth %v at t=%v", p.Mbps, p.T)
		}
		if i > 0 && ps[i-1].T == p.T {
			return nil, fmt.Errorf("trace: duplicate time %v", p.T)
		}
	}
	return &Trace{points: ps}, nil
}

// FromSteps builds a trace whose i-th value holds during
// [i*interval, (i+1)*interval). interval must be positive.
func FromSteps(interval float64, mbps []float64) (*Trace, error) {
	if interval <= 0 {
		return nil, errors.New("trace: interval must be positive")
	}
	if len(mbps) == 0 {
		return nil, errors.New("trace: need at least one step")
	}
	pts := make([]Point, len(mbps))
	for i, v := range mbps {
		pts[i] = Point{T: float64(i) * interval, Mbps: v}
	}
	return New(pts)
}

// Constant returns a trace holding mbps forever.
func Constant(mbps float64) *Trace {
	t, err := New([]Point{{T: 0, Mbps: mbps}})
	if err != nil {
		panic(err) // only reachable for invalid mbps
	}
	return t
}

// At returns the bandwidth in Mbps at time t. Times before the first
// point return the first bandwidth; times after the last hold the last.
func (tr *Trace) At(t float64) float64 {
	ps := tr.points
	if t <= ps[0].T {
		return ps[0].Mbps
	}
	// Binary search for the last point with T <= t.
	i := sort.Search(len(ps), func(i int) bool { return ps[i].T > t }) - 1
	return ps[i].Mbps
}

// NextChange returns the time of the first step strictly after t, or
// +Inf if the trace has no further steps. Emulators use this to integrate
// piecewise: the bandwidth is guaranteed constant on [t, NextChange(t)).
func (tr *Trace) NextChange(t float64) float64 {
	ps := tr.points
	i := sort.Search(len(ps), func(i int) bool { return ps[i].T > t })
	if i == len(ps) {
		return math.Inf(1)
	}
	return ps[i].T
}

// Points returns a copy of the underlying steps.
func (tr *Trace) Points() []Point {
	out := make([]Point, len(tr.points))
	copy(out, tr.points)
	return out
}

// Len returns the number of steps.
func (tr *Trace) Len() int { return len(tr.points) }

// Duration returns the time of the last step (the trace holds its final
// value beyond this point).
func (tr *Trace) Duration() float64 { return tr.points[len(tr.points)-1].T }

// Mean returns the time-weighted mean bandwidth over [0, horizon].
func (tr *Trace) Mean(horizon float64) float64 {
	if horizon <= 0 {
		return tr.points[0].Mbps
	}
	var area, t float64
	for t < horizon {
		next := tr.NextChange(t)
		if next > horizon {
			next = horizon
		}
		area += tr.At(t) * (next - t)
		if math.IsInf(next, 1) {
			break
		}
		t = next
	}
	return area / horizon
}

// MinMax returns the smallest and largest step values.
func (tr *Trace) MinMax() (min, max float64) {
	min, max = tr.points[0].Mbps, tr.points[0].Mbps
	for _, p := range tr.points[1:] {
		if p.Mbps < min {
			min = p.Mbps
		}
		if p.Mbps > max {
			max = p.Mbps
		}
	}
	return min, max
}

// Quantize returns a copy of the trace with every value rounded to the
// nearest multiple of eps, Veritas's GTBW grid.
func (tr *Trace) Quantize(eps float64) *Trace {
	if eps <= 0 {
		panic("trace: Quantize requires eps > 0")
	}
	pts := tr.Points()
	for i := range pts {
		pts[i].Mbps = math.Round(pts[i].Mbps/eps) * eps
	}
	out, err := New(pts)
	if err != nil {
		panic(err) // quantizing a valid trace cannot make it invalid
	}
	return out
}

// Resample returns the trace re-expressed on a uniform grid of the given
// interval covering [0, horizon), taking the value at each grid start.
func (tr *Trace) Resample(interval, horizon float64) (*Trace, error) {
	if interval <= 0 || horizon <= 0 {
		return nil, errors.New("trace: Resample requires positive interval and horizon")
	}
	n := int(math.Ceil(horizon / interval))
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = tr.At(float64(i) * interval)
	}
	return FromSteps(interval, vals)
}

// Scale returns a copy with every bandwidth multiplied by factor.
func (tr *Trace) Scale(factor float64) (*Trace, error) {
	if factor < 0 {
		return nil, errors.New("trace: Scale requires factor >= 0")
	}
	pts := tr.Points()
	for i := range pts {
		pts[i].Mbps *= factor
	}
	return New(pts)
}

// Encode writes the trace as lines of "<time> <mbps>\n", the textual
// format used by the cmd tools. It is stable for round-tripping.
func (tr *Trace) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, p := range tr.points {
		if _, err := fmt.Fprintf(bw, "%g %g\n", p.T, p.Mbps); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Decode parses the format written by Encode. Blank lines and lines
// starting with '#' are ignored.
func Decode(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	var pts []Point
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("trace: line %d: want 2 fields, got %d", lineNo, len(fields))
		}
		t, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad time: %w", lineNo, err)
		}
		m, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad bandwidth: %w", lineNo, err)
		}
		pts = append(pts, Point{T: t, Mbps: m})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return New(pts)
}
