package trace

import "testing"

func TestRegimeConfigLookup(t *testing.T) {
	for _, name := range Regimes() {
		cfg, err := RegimeConfig(name, 7)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if cfg.Seed != 7 {
			t.Errorf("%s: seed %d, want 7", name, cfg.Seed)
		}
		tr, err := Generate(cfg)
		if err != nil {
			t.Fatalf("%s: generate: %v", name, err)
		}
		if tr.Len() == 0 {
			t.Errorf("%s: empty trace", name)
		}
	}
	if cfg, err := RegimeConfig("", 3); err != nil || cfg.MinMbps != DefaultFCC(3).MinMbps {
		t.Errorf("empty regime should default to fcc, got %+v, %v", cfg, err)
	}
	if _, err := RegimeConfig("dialup", 1); err == nil {
		t.Error("unknown regime should error")
	}
}

func TestWiFiFades(t *testing.T) {
	tr, err := Generate(DefaultWiFi(1))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultWiFi(1)
	var fades int
	for _, p := range tr.Points() {
		if p.Mbps == cfg.FadeMbps {
			fades++
		}
	}
	if fades == 0 {
		t.Error("WiFi regime produced no fade intervals")
	}
	// Non-fade values stay inside the configured band.
	for _, p := range tr.Points() {
		if p.Mbps != cfg.FadeMbps && (p.Mbps < cfg.MinMbps-1e-9 || p.Mbps > cfg.MaxMbps+1e-9) {
			t.Errorf("value %v outside [%v, %v]", p.Mbps, cfg.MinMbps, cfg.MaxMbps)
		}
	}
}

// TestFadeDisabledUnchanged pins the FCC process against golden values
// captured before the fade extension landed: with fading disabled the
// generator must not consume any extra RNG draws, or every FCC trace —
// and every paper figure — would silently shift.
func TestFadeDisabledUnchanged(t *testing.T) {
	tr, err := Generate(DefaultFCC(42))
	if err != nil {
		t.Fatal(err)
	}
	pts := tr.Points()
	if len(pts) != 144 {
		t.Fatalf("DefaultFCC(42) has %d points, want 144", len(pts))
	}
	golden := []Point{
		{0, 4.865141805233163},
		{5, 4.948416886480077},
		{10, 4.5834716533595765},
		{15, 4.8337733620990795},
		{20, 4.7402090845388525},
		{25, 4.928712538402108},
	}
	for i, want := range golden {
		if pts[i] != want {
			t.Fatalf("point %d = %v, want %v (FCC RNG stream perturbed)", i, pts[i], want)
		}
	}
}

func TestFadeValidation(t *testing.T) {
	bad := []func(*GenConfig){
		func(c *GenConfig) { c.FadeProb = -0.1 },
		func(c *GenConfig) { c.FadeProb = 1.5 },
		func(c *GenConfig) { c.FadeMbps = -1 },
		func(c *GenConfig) { c.FadeIntervals = -1 },
	}
	for i, mut := range bad {
		cfg := DefaultWiFi(1)
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d not caught", i)
		}
	}
}
