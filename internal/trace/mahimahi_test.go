package trace

import (
	"bytes"
	"math"
	"strconv"
	"strings"
	"testing"
	"testing/quick"
)

func TestMahimahiRoundTripConstant(t *testing.T) {
	tr := Constant(6)
	var buf bytes.Buffer
	if err := tr.EncodeMahimahi(&buf, 60); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeMahimahi(&buf, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Every full bucket should reconstruct ~6 Mbps.
	for _, p := range got.Points() {
		if math.Abs(p.Mbps-6) > 0.1 {
			t.Errorf("bucket at %v reconstructed %v Mbps, want ~6", p.T, p.Mbps)
		}
	}
}

func TestMahimahiRoundTripSteps(t *testing.T) {
	tr, err := FromSteps(10, []float64{2, 8, 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.EncodeMahimahi(&buf, 30); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeMahimahi(&buf, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 8, 4}
	pts := got.Points()
	if len(pts) != 3 {
		t.Fatalf("reconstructed %d buckets, want 3", len(pts))
	}
	for i, p := range pts {
		if math.Abs(p.Mbps-want[i]) > 0.15 {
			t.Errorf("bucket %d: %v Mbps, want ~%v", i, p.Mbps, want[i])
		}
	}
}

func TestMahimahiTimestampsMonotone(t *testing.T) {
	tr, _ := FromSteps(5, []float64{1, 20, 0.3, 20})
	var buf bytes.Buffer
	if err := tr.EncodeMahimahi(&buf, 20); err != nil {
		t.Fatal(err)
	}
	lines := strings.Fields(buf.String())
	if len(lines) == 0 {
		t.Fatal("no delivery opportunities emitted")
	}
	prev := -1
	for _, l := range lines {
		ms, err := strconv.Atoi(l)
		if err != nil {
			t.Fatalf("bad line %q", l)
		}
		if ms < prev {
			t.Fatalf("timestamps decreased: %d after %d", ms, prev)
		}
		prev = ms
	}
}

func TestMahimahiZeroBandwidthSpans(t *testing.T) {
	tr, _ := FromSteps(10, []float64{0, 5})
	var buf bytes.Buffer
	if err := tr.EncodeMahimahi(&buf, 20); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeMahimahi(&buf, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got.At(5) > 0.2 {
		t.Errorf("zero span reconstructed as %v Mbps", got.At(5))
	}
	if math.Abs(got.At(15)-5) > 0.2 {
		t.Errorf("5 Mbps span reconstructed as %v", got.At(15))
	}
}

func TestMahimahiDecodeErrors(t *testing.T) {
	if _, err := DecodeMahimahi(bytes.NewBufferString(""), 5); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := DecodeMahimahi(bytes.NewBufferString("abc\n"), 5); err == nil {
		t.Error("non-numeric input should fail")
	}
	if _, err := DecodeMahimahi(bytes.NewBufferString("-5\n"), 5); err == nil {
		t.Error("negative timestamp should fail")
	}
	if _, err := DecodeMahimahi(bytes.NewBufferString("100\n"), 5); err == nil {
		t.Error("sub-bucket trace should fail")
	}
	if _, err := DecodeMahimahi(bytes.NewBufferString("100\n"), 0); err == nil {
		t.Error("zero bucket should fail")
	}
}

func TestMahimahiEncodeValidation(t *testing.T) {
	tr := Constant(5)
	var buf bytes.Buffer
	if err := tr.EncodeMahimahi(&buf, 0); err == nil {
		t.Error("zero horizon should fail")
	}
}

func TestQuickMahimahiRateRecovery(t *testing.T) {
	// Property: encoding a constant rate and decoding recovers the rate
	// within quantization error for any rate in a sane range.
	f := func(raw uint8) bool {
		rate := 0.5 + float64(raw%64)*0.25 // 0.5 .. 16.25 Mbps
		var buf bytes.Buffer
		if err := Constant(rate).EncodeMahimahi(&buf, 40); err != nil {
			return false
		}
		got, err := DecodeMahimahi(&buf, 10)
		if err != nil {
			return false
		}
		for _, p := range got.Points() {
			if math.Abs(p.Mbps-rate) > 0.15 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
