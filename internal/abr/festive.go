package abr

// Festive implements the rate-based core of FESTIVE (Jiang et al.,
// CoNEXT 2012), one of the ABR families the paper's related work
// covers: a harmonic-mean throughput target with gradual switching —
// step up one rung only after the target has held for a few chunks,
// step down immediately. It complements MPC/BBA/BOLA in the replay
// engine and gives what-if queries a fourth algorithm family.
type Festive struct {
	// Safety scales the predicted throughput (default 0.85).
	Safety float64
	// Window is the harmonic-mean window (default 5).
	Window int
	// UpDelay is how many consecutive chunks the target must exceed the
	// current rung before stepping up (default 3).
	UpDelay int

	current int
	upCount int
	started bool
}

// NewFestive returns Festive with the standard parameters.
func NewFestive() *Festive { return &Festive{Safety: 0.85, Window: 5, UpDelay: 3} }

// Name implements Algorithm.
func (f *Festive) Name() string { return "Festive" }

func (f *Festive) params() (safety float64, window, upDelay int) {
	safety = f.Safety
	if safety == 0 {
		safety = 0.85
	}
	window = f.Window
	if window == 0 {
		window = 5
	}
	upDelay = f.UpDelay
	if upDelay == 0 {
		upDelay = 3
	}
	return safety, window, upDelay
}

// Choose implements Algorithm.
func (f *Festive) Choose(ctx Context) int {
	safety, window, upDelay := f.params()
	if !f.started {
		f.started = true
		f.current = 0
		return 0
	}
	pred := HarmonicMean(ctx.PastThroughputMbps, window) * safety
	// The reference rung: highest bitrate sustainable at the predicted
	// throughput.
	ref := 0
	for q := 0; q < ctx.Video.NumQualities(); q++ {
		if ctx.Video.Quality(q).Mbps <= pred {
			ref = q
		}
	}
	switch {
	case ref > f.current:
		f.upCount++
		if f.upCount >= upDelay {
			f.current++
			f.upCount = 0
		}
	case ref < f.current:
		// Step down immediately, one rung per chunk (gradual switching).
		f.current--
		f.upCount = 0
	default:
		f.upCount = 0
	}
	f.current = clampQuality(f.current, ctx.Video)
	return f.current
}
