package abr

import "math/rand"

// Random picks qualities uniformly at random. The paper uses random
// bitrate selection to build the interventional test set of Figure 12:
// chunk-size sequences a deployed ABR would never produce, exactly where
// associational predictors like Fugu are biased.
type Random struct {
	rng *rand.Rand
}

// NewRandom returns a seeded Random algorithm.
func NewRandom(seed int64) *Random {
	return &Random{rng: rand.New(rand.NewSource(seed))}
}

// Name implements Algorithm.
func (r *Random) Name() string { return "Random" }

// Choose implements Algorithm.
func (r *Random) Choose(ctx Context) int {
	return r.rng.Intn(ctx.Video.NumQualities())
}
