package abr

import "math"

// BOLA implements BOLA Basic (Spiteri et al., INFOCOM 2016) in the
// "BOLA-BASIC v1" form the Puffer project describes and the paper's
// appendix uses for Figure 13: each decision maximizes
//
//	(V·(v_q + γp) − Q) / S_q
//
// over qualities q, where Q is the buffer level in chunks, S_q the chunk
// size, v_q = ln(S_q / S_min) the utility, and V, γp are derived from the
// buffer capacity so the top quality is reachable just below the cap.
type BOLA struct {
	// GammaP is the γp hyperparameter trading utility against
	// rebuffering avoidance (default 5, as in the BOLA paper's
	// recommended setting).
	GammaP float64
}

// NewBOLA returns BOLA Basic with the default γp.
func NewBOLA() *BOLA { return &BOLA{GammaP: 5} }

// Name implements Algorithm.
func (b *BOLA) Name() string { return "BOLA" }

// Choose implements Algorithm.
func (b *BOLA) Choose(ctx Context) int {
	gp := b.GammaP
	if gp == 0 {
		gp = 5
	}
	v := ctx.Video
	nq := v.NumQualities()
	chunk := ctx.ChunkIndex
	minSize := v.Size(chunk, 0)
	if minSize <= 0 {
		return 0
	}
	// Utilities v_q = ln(S_q/S_min); v_0 = 0.
	utils := make([]float64, nq)
	for q := 0; q < nq; q++ {
		utils[q] = math.Log(v.Size(chunk, q) / minSize)
	}
	bufMaxChunks := ctx.BufferCap / v.ChunkSeconds()
	vMax := utils[nq-1]
	// V chosen so the score of the top quality crosses zero just below
	// the buffer cap (the standard BOLA derivation).
	V := math.Max(0.1, (bufMaxChunks-1)/(vMax+gp))
	Q := ctx.BufferSeconds / v.ChunkSeconds()

	bestQ := 0
	bestScore := math.Inf(-1)
	anyPositive := false
	for q := 0; q < nq; q++ {
		score := (V*(utils[q]+gp) - Q) / v.Size(chunk, q)
		if score > 0 {
			anyPositive = true
		}
		if score > bestScore {
			bestScore = score
			bestQ = q
		}
	}
	if !anyPositive {
		// Buffer is effectively full; BOLA idles at the top quality
		// rather than downloading a negative-score chunk. The player has
		// no idling hook, so stream the top rung (the standard BOLA-E
		// resolution).
		return nq - 1
	}
	return clampQuality(bestQ, ctx.Video)
}
