package abr

import "math"

// MPC is the model-predictive-control algorithm of Yin et al. (the
// paper's default deployed ABR). At each step it predicts throughput
// with a robust (error-discounted) harmonic mean, then exhaustively
// searches quality sequences over a short horizon, simulating buffer
// evolution, and picks the first quality of the sequence maximizing a
// linear QoE: Σ bitrate − RebufPenalty·rebuffer − SmoothPenalty·|Δbitrate|.
type MPC struct {
	// Horizon is the lookahead depth in chunks (default 4).
	Horizon int
	// Window is the harmonic-mean window (default 5).
	Window int
	// RebufPenalty is QoE lost per second of rebuffering, in Mbps-equivalent
	// units (default 8).
	RebufPenalty float64
	// SmoothPenalty scales the |Δbitrate| switching term (default 1).
	SmoothPenalty float64
	// Robust enables the RobustMPC error discount (default true via NewMPC).
	Robust bool

	maxErr float64 // running max relative prediction error (robust mode)
}

// NewMPC returns RobustMPC with the defaults used across the
// reproduction's experiments.
func NewMPC() *MPC {
	return &MPC{Horizon: 4, Window: 5, RebufPenalty: 8, SmoothPenalty: 1, Robust: true}
}

// Name implements Algorithm.
func (m *MPC) Name() string { return "MPC" }

func (m *MPC) horizon() int {
	if m.Horizon <= 0 {
		return 4
	}
	return m.Horizon
}

func (m *MPC) window() int {
	if m.Window <= 0 {
		return 5
	}
	return m.Window
}

func (m *MPC) rebufPenalty() float64 {
	if m.RebufPenalty == 0 {
		return 8
	}
	return m.RebufPenalty
}

// predict returns the robust throughput estimate in Mbps.
func (m *MPC) predict(past []float64) float64 {
	hm := HarmonicMean(past, m.window())
	if hm <= 0 {
		return 0
	}
	if !m.Robust {
		return hm
	}
	// RobustMPC: track the max relative error of the harmonic-mean
	// predictor on past observations and discount by it.
	if len(past) >= 2 {
		prev := HarmonicMean(past[:len(past)-1], m.window())
		actual := past[len(past)-1]
		if prev > 0 && actual > 0 {
			err := math.Abs(prev-actual) / actual
			if err > m.maxErr {
				m.maxErr = err
			}
			// Decay so one outlier does not depress the session forever.
			m.maxErr *= 0.99
		}
	}
	return hm / (1 + m.maxErr)
}

// Choose implements Algorithm.
func (m *MPC) Choose(ctx Context) int {
	v := ctx.Video
	pred := m.predict(ctx.PastThroughputMbps)
	if pred <= 0 {
		// No observations yet: start from the bottom like the deployed
		// systems the paper logs.
		return 0
	}
	horizon := m.horizon()
	remaining := v.NumChunks() - ctx.ChunkIndex
	if horizon > remaining {
		horizon = remaining
	}
	if horizon <= 0 {
		return 0
	}

	nq := v.NumQualities()
	bestQ, bestScore := 0, math.Inf(-1)
	seq := make([]int, horizon)

	var search func(depth int, buffer float64, lastQ int, score float64)
	search = func(depth int, buffer float64, lastQ int, score float64) {
		if depth == horizon {
			if score > bestScore {
				bestScore = score
				bestQ = seq[0]
			}
			return
		}
		// Prune: even a perfect completion cannot add more than
		// maxBitrate per remaining step.
		maxRate := v.Quality(nq - 1).Mbps
		if score+float64(horizon-depth)*maxRate <= bestScore {
			return
		}
		chunk := ctx.ChunkIndex + depth
		for q := 0; q < nq; q++ {
			size := v.Size(chunk, q)
			dl := size * 8 / 1e6 / pred // predicted download seconds
			rebuf := math.Max(0, dl-buffer)
			nb := math.Max(0, buffer-dl) + v.ChunkSeconds()
			if nb > ctx.BufferCap {
				nb = ctx.BufferCap
			}
			rate := v.Quality(q).Mbps
			step := rate - m.rebufPenalty()*rebuf
			if lastQ >= 0 {
				step -= m.SmoothPenalty * math.Abs(rate-v.Quality(lastQ).Mbps)
			}
			seq[depth] = q
			search(depth+1, nb, q, score+step)
		}
	}
	search(0, ctx.BufferSeconds, ctx.LastQuality, 0)
	return clampQuality(bestQ, v)
}
