// Package abr implements the adaptive-bitrate algorithms the paper's
// experiments deploy and compare: MPC (the default deployed algorithm),
// BBA and BOLA Basic (the counterfactual alternatives), plus Random
// (used to build the interventional test set of Figure 12) and Fixed.
//
// Algorithm instances may carry per-session state (Random's RNG, MPC's
// error history); create one instance per session and do not share
// across goroutines.
package abr

import (
	"fmt"

	"veritas/internal/video"
)

// Context is everything an ABR algorithm may observe when choosing the
// quality of the next chunk. All observations are from the client's
// viewpoint — network ground truth is never visible here, which is the
// root of the causal confounding the paper studies.
type Context struct {
	// ChunkIndex is the index of the chunk about to be requested.
	ChunkIndex int
	// BufferSeconds is the current playback buffer level.
	BufferSeconds float64
	// BufferCap is the maximum buffer the player may hold.
	BufferCap float64
	// LastQuality is the quality of the previous chunk, or -1 for the
	// first chunk.
	LastQuality int
	// PastThroughputMbps holds the observed throughput of each finished
	// chunk download, oldest first.
	PastThroughputMbps []float64
	// Video exposes chunk sizes and qualities.
	Video *video.Video
}

// Algorithm chooses the next chunk's quality index.
type Algorithm interface {
	// Name identifies the algorithm in logs and reports.
	Name() string
	// Choose returns a quality index in [0, ctx.Video.NumQualities()).
	Choose(ctx Context) int
}

// clampQuality keeps q valid for the video in ctx.
func clampQuality(q int, v *video.Video) int {
	if q < 0 {
		return 0
	}
	if q >= v.NumQualities() {
		return v.NumQualities() - 1
	}
	return q
}

// HarmonicMean returns the harmonic mean of the last k samples of xs
// (all of xs if it has fewer). Zero/negative samples are skipped; the
// result is 0 when no usable samples exist.
func HarmonicMean(xs []float64, k int) float64 {
	if k <= 0 || len(xs) == 0 {
		return 0
	}
	if len(xs) > k {
		xs = xs[len(xs)-k:]
	}
	var inv float64
	var n int
	for _, x := range xs {
		if x > 0 {
			inv += 1 / x
			n++
		}
	}
	if n == 0 || inv == 0 {
		return 0
	}
	return float64(n) / inv
}

// Fixed always picks the same quality. Useful as a control and in unit
// tests.
type Fixed struct{ Quality int }

// Name implements Algorithm.
func (f *Fixed) Name() string { return fmt.Sprintf("Fixed(%d)", f.Quality) }

// Choose implements Algorithm.
func (f *Fixed) Choose(ctx Context) int { return clampQuality(f.Quality, ctx.Video) }

// ThroughputRule is the classic rate-based rule: pick the highest
// quality whose nominal bitrate fits under a safety fraction of the
// predicted throughput. It serves as a simple reference algorithm.
type ThroughputRule struct {
	// Safety scales the predicted throughput (default 0.9).
	Safety float64
	// Window is the harmonic-mean window (default 5).
	Window int
}

// Name implements Algorithm.
func (t *ThroughputRule) Name() string { return "ThroughputRule" }

// Choose implements Algorithm.
func (t *ThroughputRule) Choose(ctx Context) int {
	safety := t.Safety
	if safety == 0 {
		safety = 0.9
	}
	window := t.Window
	if window == 0 {
		window = 5
	}
	pred := HarmonicMean(ctx.PastThroughputMbps, window) * safety
	if pred <= 0 {
		return 0
	}
	best := 0
	for q := 0; q < ctx.Video.NumQualities(); q++ {
		if ctx.Video.Quality(q).Mbps <= pred {
			best = q
		}
	}
	return best
}
