package abr

// BBA is the buffer-based algorithm of Huang et al. (SIGCOMM 2014): the
// quality is a piecewise-linear function of the buffer level alone. Below
// the reservoir it streams the lowest quality; above the cushion it
// streams the highest; in between it maps buffer linearly onto the
// ladder. BBA is deliberately more aggressive than MPC at high buffer,
// which is why the paper's Figure 8 shows it earning both higher SSIM
// and more rebuffering.
type BBA struct {
	// ReservoirFrac is the fraction of the buffer cap treated as the
	// reservoir (default 0.2).
	ReservoirFrac float64
	// CushionFrac is the fraction of the buffer cap at which the top
	// quality is reached (default 0.6). With the small live-style
	// buffers of the paper's testbed the steady-state buffer at request
	// time sits near cap minus one chunk, so the cushion must end below
	// that for BBA to show its characteristic aggressiveness (higher
	// SSIM and more rebuffering than MPC, paper Fig 8).
	CushionFrac float64
}

// NewBBA returns BBA with the reservoir/cushion placement used by the
// paper's testbed-scale buffers.
func NewBBA() *BBA { return &BBA{ReservoirFrac: 0.2, CushionFrac: 0.6} }

// Name implements Algorithm.
func (b *BBA) Name() string { return "BBA" }

// Choose implements Algorithm.
func (b *BBA) Choose(ctx Context) int {
	rf := b.ReservoirFrac
	if rf == 0 {
		rf = 0.2
	}
	cf := b.CushionFrac
	if cf == 0 {
		cf = 0.6
	}
	reservoir := rf * ctx.BufferCap
	cushion := cf * ctx.BufferCap
	nq := ctx.Video.NumQualities()
	switch {
	case ctx.BufferSeconds <= reservoir:
		return 0
	case ctx.BufferSeconds >= cushion:
		return nq - 1
	default:
		frac := (ctx.BufferSeconds - reservoir) / (cushion - reservoir)
		q := int(frac * float64(nq-1))
		// The linear region rounds up once past the midpoint of a rung,
		// matching the original algorithm's rate map granularity.
		if frac*float64(nq-1)-float64(q) > 0.5 {
			q++
		}
		return clampQuality(q, ctx.Video)
	}
}
