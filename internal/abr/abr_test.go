package abr

import (
	"math"
	"testing"

	"veritas/internal/video"
)

func testVideo(t *testing.T) *video.Video {
	t.Helper()
	return video.MustSynthesize(video.DefaultConfig(1))
}

func ctxWith(v *video.Video, buffer float64, tputs []float64) Context {
	return Context{
		ChunkIndex:         10,
		BufferSeconds:      buffer,
		BufferCap:          5,
		LastQuality:        2,
		PastThroughputMbps: tputs,
		Video:              v,
	}
}

func TestHarmonicMean(t *testing.T) {
	got := HarmonicMean([]float64{1, 2}, 5)
	want := 2 / (1.0 + 0.5)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("HarmonicMean = %v, want %v", got, want)
	}
	if HarmonicMean(nil, 5) != 0 {
		t.Error("empty input should be 0")
	}
	if HarmonicMean([]float64{0, 0}, 5) != 0 {
		t.Error("all-zero input should be 0")
	}
	// Window limits to the last k.
	got = HarmonicMean([]float64{100, 4, 4}, 2)
	if got != 4 {
		t.Errorf("windowed harmonic mean = %v, want 4", got)
	}
}

func TestFixedClamps(t *testing.T) {
	v := testVideo(t)
	f := &Fixed{Quality: 99}
	if got := f.Choose(ctxWith(v, 3, nil)); got != v.NumQualities()-1 {
		t.Errorf("Fixed(99) = %d, want top rung", got)
	}
	f2 := &Fixed{Quality: -3}
	if got := f2.Choose(ctxWith(v, 3, nil)); got != 0 {
		t.Errorf("Fixed(-3) = %d, want 0", got)
	}
}

func TestThroughputRule(t *testing.T) {
	v := testVideo(t)
	tr := &ThroughputRule{}
	// High throughput: top rung.
	if got := tr.Choose(ctxWith(v, 3, []float64{50, 50, 50})); got != v.NumQualities()-1 {
		t.Errorf("high throughput chose %d", got)
	}
	// No history: lowest.
	if got := tr.Choose(ctxWith(v, 3, nil)); got != 0 {
		t.Errorf("no history chose %d", got)
	}
	// ~1 Mbps: should pick a rung with bitrate <= 0.9.
	got := tr.Choose(ctxWith(v, 3, []float64{1, 1, 1}))
	if v.Quality(got).Mbps > 0.9 {
		t.Errorf("1 Mbps chose rung with bitrate %v", v.Quality(got).Mbps)
	}
}

func TestMPCStartsLow(t *testing.T) {
	v := testVideo(t)
	m := NewMPC()
	ctx := ctxWith(v, 0, nil)
	ctx.ChunkIndex = 0
	ctx.LastQuality = -1
	if got := m.Choose(ctx); got != 0 {
		t.Errorf("MPC with no history chose %d, want 0", got)
	}
}

func TestMPCHighBandwidthHighQuality(t *testing.T) {
	v := testVideo(t)
	m := NewMPC()
	ctx := ctxWith(v, 4.5, []float64{50, 50, 50, 50, 50})
	ctx.LastQuality = v.NumQualities() - 1
	got := m.Choose(ctx)
	if got < v.NumQualities()-2 {
		t.Errorf("MPC with 50 Mbps and full buffer chose %d", got)
	}
}

func TestMPCLowBandwidthLowQuality(t *testing.T) {
	v := testVideo(t)
	m := NewMPC()
	ctx := ctxWith(v, 0.5, []float64{0.2, 0.2, 0.2, 0.2, 0.2})
	ctx.LastQuality = 0
	got := m.Choose(ctx)
	if got > 1 {
		t.Errorf("MPC with 0.2 Mbps and near-empty buffer chose %d", got)
	}
}

func TestMPCMonotoneInBandwidth(t *testing.T) {
	v := testVideo(t)
	prev := -1
	for _, bw := range []float64{0.3, 1, 2, 4, 8, 16} {
		m := NewMPC()
		ctx := ctxWith(v, 4, []float64{bw, bw, bw, bw, bw})
		ctx.LastQuality = -1
		got := m.Choose(ctx)
		if got < prev {
			t.Errorf("MPC quality decreased with bandwidth: %d after %d at %v Mbps", got, prev, bw)
		}
		prev = got
	}
}

func TestBBARegions(t *testing.T) {
	v := testVideo(t)
	b := NewBBA()
	// Below reservoir (20% of cap 5 = 1).
	if got := b.Choose(ctxWith(v, 0.5, nil)); got != 0 {
		t.Errorf("below reservoir chose %d", got)
	}
	// Above cushion (90% of cap 5 = 4.5).
	if got := b.Choose(ctxWith(v, 4.8, nil)); got != v.NumQualities()-1 {
		t.Errorf("above cushion chose %d", got)
	}
	// Middle: strictly between extremes and monotone in buffer.
	prev := 0
	for _, buf := range []float64{1.5, 2.0, 2.5, 3.0, 3.5, 4.0} {
		got := b.Choose(ctxWith(v, buf, nil))
		if got < prev {
			t.Errorf("BBA quality decreased with buffer: %d after %d at %v s", got, prev, buf)
		}
		prev = got
	}
}

func TestBBAIgnoresThroughput(t *testing.T) {
	v := testVideo(t)
	b := NewBBA()
	a := b.Choose(ctxWith(v, 3, []float64{0.1}))
	c := b.Choose(ctxWith(v, 3, []float64{100}))
	if a != c {
		t.Error("BBA should depend only on buffer")
	}
}

func TestBOLABufferMonotone(t *testing.T) {
	v := testVideo(t)
	b := NewBOLA()
	prev := -1
	for _, buf := range []float64{0, 1, 2, 3, 4} {
		got := b.Choose(ctxWith(v, buf, nil))
		if got < prev {
			t.Errorf("BOLA quality decreased with buffer: %d after %d at %v s", got, prev, buf)
		}
		prev = got
	}
}

func TestBOLAEmptyBufferPicksLow(t *testing.T) {
	v := testVideo(t)
	b := NewBOLA()
	if got := b.Choose(ctxWith(v, 0, nil)); got > 1 {
		t.Errorf("BOLA with empty buffer chose %d", got)
	}
}

func TestRandomCoversLadderAndIsSeeded(t *testing.T) {
	v := testVideo(t)
	r1 := NewRandom(7)
	r2 := NewRandom(7)
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		a := r1.Choose(ctxWith(v, 2, nil))
		b := r2.Choose(ctxWith(v, 2, nil))
		if a != b {
			t.Fatal("same seed gave different choices")
		}
		if a < 0 || a >= v.NumQualities() {
			t.Fatalf("choice %d out of range", a)
		}
		seen[a] = true
	}
	if len(seen) < v.NumQualities()-1 {
		t.Errorf("random only covered %d rungs of %d", len(seen), v.NumQualities())
	}
}

func TestNames(t *testing.T) {
	for _, a := range []Algorithm{NewMPC(), NewBBA(), NewBOLA(), NewRandom(1), &Fixed{}, &ThroughputRule{}} {
		if a.Name() == "" {
			t.Errorf("%T has empty name", a)
		}
	}
}
