package abr

import "testing"

func TestFestiveStartsLow(t *testing.T) {
	v := testVideo(t)
	f := NewFestive()
	ctx := ctxWith(v, 0, nil)
	ctx.ChunkIndex = 0
	if got := f.Choose(ctx); got != 0 {
		t.Errorf("first chunk quality %d, want 0", got)
	}
}

func TestFestiveGradualUp(t *testing.T) {
	v := testVideo(t)
	f := NewFestive()
	high := []float64{50, 50, 50, 50, 50}
	ctx := ctxWith(v, 3, high)
	ctx.ChunkIndex = 0
	f.Choose(ctx) // startup chunk

	// Each step up needs UpDelay consecutive confirmations, and rungs
	// rise one at a time.
	prev := 0
	for i := 1; i < 40; i++ {
		c := ctxWith(v, 3, high)
		c.ChunkIndex = i
		got := f.Choose(c)
		if got > prev+1 {
			t.Fatalf("chunk %d jumped %d -> %d; Festive must step one rung", i, prev, got)
		}
		if got < prev {
			t.Fatalf("chunk %d stepped down on a fast link", i)
		}
		prev = got
	}
	if prev != v.NumQualities()-1 {
		t.Errorf("after 40 fast chunks Festive reached rung %d, want top", prev)
	}
}

func TestFestiveStepsDownImmediately(t *testing.T) {
	v := testVideo(t)
	f := NewFestive()
	ctx := ctxWith(v, 3, []float64{50, 50, 50, 50, 50})
	ctx.ChunkIndex = 0
	f.Choose(ctx)
	for i := 1; i < 40; i++ {
		c := ctxWith(v, 3, []float64{50, 50, 50, 50, 50})
		c.ChunkIndex = i
		f.Choose(c)
	}
	// Throughput collapses: quality must fall on the very next chunk.
	before := f.current
	c := ctxWith(v, 3, []float64{0.2, 0.2, 0.2, 0.2, 0.2})
	c.ChunkIndex = 41
	got := f.Choose(c)
	if got != before-1 {
		t.Errorf("after collapse chose %d, want immediate one-rung drop from %d", got, before)
	}
}

func TestFestiveUpDelayResetsOnStall(t *testing.T) {
	v := testVideo(t)
	f := NewFestive()
	ctx := ctxWith(v, 3, nil)
	ctx.ChunkIndex = 0
	f.Choose(ctx)
	// Two confirmations, then a chunk where ref == current: counter
	// must reset, so two more confirmations do not trigger a switch.
	high := []float64{50, 50, 50, 50, 50}
	low := []float64{0.05, 0.05, 0.05, 0.05, 0.05}
	seq := [][]float64{high, high, low, high, high}
	prev := f.current
	for i, tputs := range seq {
		c := ctxWith(v, 3, tputs)
		c.ChunkIndex = i + 1
		got := f.Choose(c)
		if got > prev {
			t.Fatalf("step %d switched up without %d consecutive confirmations", i, f.UpDelay)
		}
		prev = got
	}
}
