// Package netem emulates a video client's TCP connection over a
// time-varying bottleneck link — the role Mahimahi plays in the paper's
// testbed. It is the ground truth every experiment runs against: the
// emulator tracks congestion-window state across chunk downloads,
// applies slow-start restart after idle gaps, and integrates the
// piecewise-constant ground-truth bandwidth (GTBW) trace round by round.
//
// The model deliberately shares its mechanics with the paper's estimator
// f (internal/tcp): transmission proceeds in RTT-sized rounds carrying
// min(cwnd, BDP) segments. The emulator is richer than f in exactly the
// ways the paper describes: the GTBW may change during a download, the
// congestion window persists across chunks, and optional jitter models
// queueing/cross-traffic noise. The residual gap between the emulator
// and f is what Figure 5 of the paper measures.
package netem

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"veritas/internal/tcp"
	"veritas/internal/trace"
)

// Config describes the emulated path.
type Config struct {
	// RTT is the base round-trip time in seconds (the paper's testbed
	// uses an 80 ms end-to-end delay).
	RTT float64
	// InitCWND is the initial congestion window in segments; 0 means the
	// Linux default.
	InitCWND float64
	// MaxCWND caps the congestion window in segments (standing in for
	// the receive window); 0 means a generous default.
	MaxCWND float64
	// SlowStartRestart enables RFC 2861 congestion-window validation
	// after idle periods. The paper's testbed has it on.
	SlowStartRestart bool
	// JitterStd is the relative standard deviation of per-round
	// bandwidth noise (queueing, cross traffic). 0 disables noise and
	// makes the emulator deterministic.
	JitterStd float64
	// QueueFactor sizes the bottleneck's droptail queue as a fraction of
	// the BDP. When the congestion window exceeds BDP·(1+QueueFactor)
	// the sender experiences a loss: ssthresh and cwnd collapse to
	// Beta·cwnd. This keeps ssthresh near the BDP — without it a
	// lossless emulation lets cwnd grow without bound and slow-start
	// restart recovers unrealistically fast. Negative disables loss;
	// 0 means the default 0.25.
	QueueFactor float64
	// Beta is the multiplicative-decrease factor applied on a
	// congestion event (0 means the CUBIC-like default 0.7).
	Beta float64
	// Seed seeds the jitter generator.
	Seed int64
}

// DefaultConfig returns the testbed settings used throughout the
// reproduction: 160 ms RTT (the paper's Mahimahi shell adds an 80 ms
// end-to-end delay in each direction), SSR on, mild jitter.
func DefaultConfig() Config {
	return Config{
		RTT:              0.160,
		SlowStartRestart: true,
		JitterStd:        0.10,
		Seed:             1,
	}
}

func (c Config) withDefaults() Config {
	if c.InitCWND == 0 {
		c.InitCWND = tcp.InitCWND
	}
	if c.MaxCWND == 0 {
		c.MaxCWND = 20000
	}
	if c.QueueFactor == 0 {
		c.QueueFactor = 0.25
	}
	if c.Beta == 0 {
		c.Beta = 0.7
	}
	return c
}

// Validate reports the first invalid field, if any.
func (c Config) Validate() error {
	switch {
	case c.RTT <= 0:
		return fmt.Errorf("netem: RTT %v <= 0", c.RTT)
	case c.InitCWND < 0:
		return fmt.Errorf("netem: InitCWND %v < 0", c.InitCWND)
	case c.MaxCWND < 0:
		return fmt.Errorf("netem: MaxCWND %v < 0", c.MaxCWND)
	case c.JitterStd < 0 || c.JitterStd > 0.5:
		return fmt.Errorf("netem: JitterStd %v outside [0, 0.5]", c.JitterStd)
	case c.Beta < 0 || c.Beta >= 1:
		return fmt.Errorf("netem: Beta %v outside [0, 1)", c.Beta)
	}
	return nil
}

// Conn is a persistent emulated TCP connection. It is not safe for
// concurrent use; a video session owns exactly one.
type Conn struct {
	cfg       Config
	cwnd      float64
	ssthresh  float64
	lastSend  float64
	hasSent   bool
	rng       *rand.Rand
	rngDraws  int // jitter draws so far; lets Clone realign its stream
	downloads int
}

// ErrStalled is returned when a download can never finish because the
// trace bandwidth is zero for the rest of time.
var ErrStalled = errors.New("netem: download stalled on zero bandwidth")

// NeverSentGap is the LastSendGap reported before any data has been
// sent: large enough to trigger slow-start restart, finite so session
// logs stay JSON-encodable.
const NeverSentGap = 1e9

// NewConn returns a fresh connection over the configured path.
func NewConn(cfg Config) (*Conn, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	return &Conn{
		cfg:      cfg,
		cwnd:     cfg.InitCWND,
		ssthresh: tcp.DefaultSSThresh,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
	}, nil
}

// State returns the TCP control state at time now — the snapshot the
// player logs at the start of each chunk download (the paper's W_sn,
// collected via tcp_info / ss on the real testbed).
func (c *Conn) State(now float64) tcp.State {
	gap := float64(NeverSentGap)
	if c.hasSent {
		gap = now - c.lastSend
		if gap < 0 {
			gap = 0
		}
	}
	return tcp.State{
		CWND:        c.cwnd,
		SSThresh:    c.ssthresh,
		MinRTT:      c.cfg.RTT,
		RTT:         c.cfg.RTT,
		RTO:         tcp.RTOFor(c.cfg.RTT),
		LastSendGap: gap,
	}
}

// Downloads returns how many downloads completed on this connection.
func (c *Conn) Downloads() int { return c.downloads }

// Restore forces the connection's congestion state to st as of time
// now. Experiments use this to rebuild the connection a logged chunk
// saw, then measure hypothetical downloads from that exact state.
func (c *Conn) Restore(st tcp.State, now float64) {
	c.cwnd = st.CWND
	c.ssthresh = st.SSThresh
	c.hasSent = st.LastSendGap < NeverSentGap
	if c.hasSent {
		c.lastSend = now - st.LastSendGap
	}
}

// Clone returns an independent copy of the connection, including its
// congestion state and jitter stream. Experiments use clones to measure
// what the same connection would have done under a different next
// request — the forked-future measurement behind Figure 2(b).
func (c *Conn) Clone() *Conn {
	cp := *c
	// math/rand has no state copy; re-derive a generator from the seed
	// and burn the same number of draws so the streams stay aligned.
	cp.rng = rand.New(rand.NewSource(c.cfg.Seed))
	for i := 0; i < c.rngDraws; i++ {
		cp.rng.NormFloat64()
	}
	return &cp
}

// Download transfers sizeBytes over the trace starting at start and
// returns the completion time. The connection's congestion state is
// updated in place (including slow-start restart for the idle gap before
// start).
func (c *Conn) Download(start, sizeBytes float64, tr *trace.Trace) (end float64, err error) {
	if sizeBytes <= 0 {
		return start, nil
	}
	if tr == nil {
		return 0, errors.New("netem: nil trace")
	}
	if c.cfg.SlowStartRestart && c.hasSent {
		st := c.State(start)
		st = tcp.ApplySlowStartRestart(st)
		c.cwnd = st.CWND
		c.ssthresh = st.SSThresh
	}

	t := start
	remaining := float64(tcp.Segments(sizeBytes))
	for remaining > 0 {
		gtbw := tr.At(t)
		if gtbw <= 0 {
			next := tr.NextChange(t)
			if math.IsInf(next, 1) {
				return 0, ErrStalled
			}
			t = next
			continue
		}
		rate := gtbw
		if c.cfg.JitterStd > 0 {
			noise := 1 + c.rng.NormFloat64()*c.cfg.JitterStd
			c.rngDraws++
			rate = gtbw * math.Max(0.5, math.Min(1.5, noise))
		}
		bdp := float64(tcp.BDPSegments(rate, c.cfg.RTT))
		flight := math.Min(c.cwnd, bdp)
		if flight > remaining {
			flight = remaining
		}
		if flight < 1 {
			flight = 1
		}
		// A round takes one RTT unless the link is so slow that
		// serializing the flight dominates (sub-MSS bandwidth-delay
		// products).
		serialization := flight * tcp.MSS * 8 / (rate * 1e6)
		roundTime := math.Max(c.cfg.RTT, serialization)
		t += roundTime
		remaining -= flight
		if c.cwnd < c.ssthresh {
			c.cwnd *= 2
		} else {
			c.cwnd++
		}
		// Droptail loss at the bottleneck: multiplicative decrease once
		// the window overruns the pipe plus queue.
		if c.cfg.QueueFactor >= 0 && c.cwnd > bdp*(1+c.cfg.QueueFactor) {
			dec := c.cfg.Beta * c.cwnd
			if dec < 2 {
				dec = 2
			}
			c.ssthresh = dec
			c.cwnd = dec
		}
		if c.cwnd > c.cfg.MaxCWND {
			c.cwnd = c.cfg.MaxCWND
		}
	}
	c.lastSend = t
	c.hasSent = true
	c.downloads++
	return t, nil
}

// DownloadThroughput is a convenience wrapper returning the observed
// throughput Y = S/D in Mbps for a download starting at start.
func (c *Conn) DownloadThroughput(start, sizeBytes float64, tr *trace.Trace) (end, mbps float64, err error) {
	end, err = c.Download(start, sizeBytes, tr)
	if err != nil {
		return 0, 0, err
	}
	return end, tcp.Mbps(sizeBytes, end-start), nil
}
