package netem

import (
	"math"
	"testing"

	"veritas/internal/trace"
)

func newTestConn(t *testing.T, cfg Config) *Conn {
	t.Helper()
	c, err := NewConn(cfg)
	if err != nil {
		t.Fatalf("NewConn: %v", err)
	}
	return c
}

// deterministic returns a config without jitter so assertions are exact.
func deterministic() Config {
	return Config{RTT: 0.080, SlowStartRestart: true, JitterStd: 0}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{RTT: 0},
		{RTT: -1},
		{RTT: 0.08, JitterStd: -0.1},
		{RTT: 0.08, JitterStd: 0.9},
		{RTT: 0.08, InitCWND: -1},
		{RTT: 0.08, MaxCWND: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d should be invalid", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("DefaultConfig invalid: %v", err)
	}
}

func TestDownloadZeroBytes(t *testing.T) {
	c := newTestConn(t, deterministic())
	end, err := c.Download(3, 0, trace.Constant(5))
	if err != nil || end != 3 {
		t.Errorf("zero-byte download = (%v, %v), want (3, nil)", end, err)
	}
}

func TestDownloadNilTrace(t *testing.T) {
	c := newTestConn(t, deterministic())
	if _, err := c.Download(0, 1000, nil); err == nil {
		t.Error("nil trace should error")
	}
}

func TestDownloadStalledOnZeroBandwidth(t *testing.T) {
	c := newTestConn(t, deterministic())
	if _, err := c.Download(0, 1e6, trace.Constant(0)); err != ErrStalled {
		t.Errorf("expected ErrStalled, got %v", err)
	}
}

func TestDownloadResumesAfterZeroPeriod(t *testing.T) {
	// Bandwidth zero for 10 s, then 10 Mbps.
	tr, err := trace.FromSteps(10, []float64{0, 10})
	if err != nil {
		t.Fatal(err)
	}
	c := newTestConn(t, deterministic())
	end, err := c.Download(0, 100e3, tr)
	if err != nil {
		t.Fatalf("Download: %v", err)
	}
	if end <= 10 {
		t.Errorf("download finished at %v, cannot beat the zero period ending at 10", end)
	}
}

func TestLargeDownloadObservesLinkRate(t *testing.T) {
	// A large transfer on a warm connection should observe close to the
	// link rate.
	c := newTestConn(t, deterministic())
	tr := trace.Constant(10)
	// Warm up.
	if _, err := c.Download(0, 20e6, tr); err != nil {
		t.Fatal(err)
	}
	start := 100.0
	end, mbps, err := c.DownloadThroughput(start, 20e6, tr)
	if err != nil {
		t.Fatal(err)
	}
	if end <= start {
		t.Fatal("download took no time")
	}
	if mbps < 8.5 || mbps > 10.01 {
		t.Errorf("large transfer throughput = %v, want close to 10", mbps)
	}
}

func TestSmallDownloadBelowLinkRate(t *testing.T) {
	// A tiny payload takes ~1 RTT: observed throughput far below GTBW.
	c := newTestConn(t, deterministic())
	_, mbps, err := c.DownloadThroughput(0, 2e3, trace.Constant(18))
	if err != nil {
		t.Fatal(err)
	}
	want := 2e3 * 8 / 1e6 / 0.080 // one RTT
	if math.Abs(mbps-want) > 0.01 {
		t.Errorf("tiny payload throughput = %v, want %v", mbps, want)
	}
}

func TestSlowStartRestartAfterIdle(t *testing.T) {
	cfgSSR := deterministic()
	cSSR := newTestConn(t, cfgSSR)
	cfgNoSSR := deterministic()
	cfgNoSSR.SlowStartRestart = false
	cNoSSR := newTestConn(t, cfgNoSSR)

	tr := trace.Constant(18)
	// Warm both connections equally.
	for _, c := range []*Conn{cSSR, cNoSSR} {
		if _, err := c.Download(0, 10e6, tr); err != nil {
			t.Fatal(err)
		}
	}
	// Long idle period, then a mid-size payload.
	start := 1000.0
	endSSR, err := cSSR.Download(start, 400e3, tr)
	if err != nil {
		t.Fatal(err)
	}
	endNoSSR, err := cNoSSR.Download(start, 400e3, tr)
	if err != nil {
		t.Fatal(err)
	}
	if endSSR <= endNoSSR {
		t.Errorf("SSR should slow the post-idle download: SSR %v <= no-SSR %v",
			endSSR-start, endNoSSR-start)
	}
}

func TestCwndPersistsAcrossDownloads(t *testing.T) {
	cfg := deterministic()
	cfg.SlowStartRestart = false
	c := newTestConn(t, cfg)
	tr := trace.Constant(10)
	st0 := c.State(0)
	if _, err := c.Download(0, 5e6, tr); err != nil {
		t.Fatal(err)
	}
	st1 := c.State(100)
	if st1.CWND <= st0.CWND {
		t.Errorf("cwnd did not grow across download: %v -> %v", st0.CWND, st1.CWND)
	}
}

func TestStateLastSendGap(t *testing.T) {
	c := newTestConn(t, deterministic())
	if gap := c.State(5).LastSendGap; gap != NeverSentGap {
		t.Errorf("gap before any send = %v, want NeverSentGap", gap)
	}
	end, err := c.Download(0, 1e5, trace.Constant(10))
	if err != nil {
		t.Fatal(err)
	}
	gap := c.State(end + 3).LastSendGap
	if math.Abs(gap-3) > 1e-9 {
		t.Errorf("gap = %v, want 3", gap)
	}
}

func TestDownloadCountIncrements(t *testing.T) {
	c := newTestConn(t, deterministic())
	for i := 0; i < 3; i++ {
		if _, err := c.Download(float64(i*10), 1e4, trace.Constant(5)); err != nil {
			t.Fatal(err)
		}
	}
	if c.Downloads() != 3 {
		t.Errorf("Downloads = %d, want 3", c.Downloads())
	}
}

func TestThroughputTracksTimeVaryingTrace(t *testing.T) {
	// First 100 s at 2 Mbps, then 8 Mbps: a long download spanning the
	// boundary must observe an intermediate average rate.
	tr, err := trace.FromSteps(100, []float64{2, 8})
	if err != nil {
		t.Fatal(err)
	}
	c := newTestConn(t, deterministic())
	// Warm up within the slow period.
	if _, err := c.Download(0, 2e6, tr); err != nil {
		t.Fatal(err)
	}
	// Download ~50 MB starting at t=80: takes well past t=100.
	start := 80.0
	end, mbps, err := c.DownloadThroughput(start, 50e6, tr)
	if err != nil {
		t.Fatal(err)
	}
	if end < 100 {
		t.Fatalf("download should span the rate change, ended %v", end)
	}
	if mbps <= 2.5 || mbps >= 8 {
		t.Errorf("throughput across rate change = %v, want between 2.5 and 8", mbps)
	}
}

func TestJitterIsSeededAndBounded(t *testing.T) {
	cfg := DefaultConfig()
	cfg.JitterStd = 0.05
	a := newTestConn(t, cfg)
	b := newTestConn(t, cfg)
	tr := trace.Constant(10)
	endA, _ := a.Download(0, 5e6, tr)
	endB, _ := b.Download(0, 5e6, tr)
	if endA != endB {
		t.Errorf("same seed should give identical downloads: %v vs %v", endA, endB)
	}
	cfg2 := cfg
	cfg2.Seed = 999
	c := newTestConn(t, cfg2)
	endC, _ := c.Download(0, 5e6, tr)
	if endC == endA {
		t.Log("note: different jitter seed produced identical download (possible but unlikely)")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	cfg := DefaultConfig()
	c := newTestConn(t, cfg)
	tr := trace.Constant(8)
	if _, err := c.Download(0, 2e6, tr); err != nil {
		t.Fatal(err)
	}
	cp := c.Clone()
	// Same next download on both: identical results (aligned jitter).
	e1, err := c.Download(100, 3e6, tr)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := cp.Download(100, 3e6, tr)
	if err != nil {
		t.Fatal(err)
	}
	if e1 != e2 {
		t.Errorf("clone diverged on identical download: %v vs %v", e1, e2)
	}
	// Downloading on the clone must not disturb the original.
	before := c.State(200)
	if _, err := cp.Download(200, 5e6, tr); err != nil {
		t.Fatal(err)
	}
	after := c.State(200)
	if before != after {
		t.Error("clone download mutated the original connection")
	}
}
