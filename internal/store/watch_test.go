package store

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"veritas/internal/engine"
)

// frameFor builds the on-disk frame for one row, byte-identical to
// what Append writes — the torn-tail tests feed it in pieces.
func frameFor(t *testing.T, row engine.SessionRow) []byte {
	t.Helper()
	payload, err := json.Marshal(row)
	if err != nil {
		t.Fatal(err)
	}
	frame := make([]byte, frameHdrLen+len(row.ID)+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(row.ID)))
	binary.LittleEndian.PutUint32(frame[4:8], uint32(len(payload)))
	copy(frame[frameHdrLen:], row.ID)
	copy(frame[frameHdrLen+len(row.ID):], payload)
	binary.LittleEndian.PutUint32(frame[8:12], crc32.ChecksumIEEE(frame[frameHdrLen:]))
	return frame
}

func reportBytes(t *testing.T, s *Store) []byte {
	t.Helper()
	agg, err := s.Aggregate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(agg.Report())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestWatchTailsLiveWriter is the watch-mode core contract: a watch
// store over a directory another Store is appending to converges to
// the writer's content on Refresh, row by row, and its generation
// moves exactly once per tailed row.
func TestWatchTailsLiveWriter(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	ws, err := OpenWatch(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ws.Close()
	if !ws.IsWatch() {
		t.Fatal("OpenWatch store does not report IsWatch")
	}
	if ws.Len() != 0 {
		t.Fatalf("fresh watch store has %d rows", ws.Len())
	}

	for i := 0; i < 8; i++ {
		if err := w.Append(testRow(i, "fcc")); err != nil {
			t.Fatal(err)
		}
		before := ws.Generation()
		added, err := ws.Refresh()
		if err != nil {
			t.Fatalf("refresh after row %d: %v", i, err)
		}
		if added != 1 {
			t.Fatalf("refresh after row %d tailed %d rows, want 1", i, added)
		}
		if got := ws.Generation(); got != before+1 {
			t.Fatalf("generation moved %d -> %d for one row, want exactly one bump", before, got)
		}
		if ws.Len() != i+1 {
			t.Fatalf("watch store has %d rows after %d appends", ws.Len(), i+1)
		}
	}
	// No new rows: Refresh is a no-op and the generation holds still.
	gen := ws.Generation()
	if added, err := ws.Refresh(); err != nil || added != 0 {
		t.Fatalf("idle refresh: added=%d err=%v", added, err)
	}
	if ws.Generation() != gen {
		t.Fatal("idle refresh moved the generation")
	}
	if got, want := reportBytes(t, ws), reportBytes(t, w); !bytes.Equal(got, want) {
		t.Fatalf("watch report differs from writer report\nwant: %s\ngot:  %s", want, got)
	}
}

// TestWatchMissingDirAndRotation: the watched directory may not exist
// yet, and once the writer rotates segments the sidecar fast path must
// ingest sealed segments without a frame scan.
func TestWatchMissingDirAndRotation(t *testing.T) {
	parent := t.TempDir()
	dir := filepath.Join(parent, "campaign.store")
	ws, err := OpenWatch(dir, Options{})
	if err != nil {
		t.Fatalf("OpenWatch on a missing dir: %v", err)
	}
	defer ws.Close()
	if added, err := ws.Refresh(); err != nil || added != 0 {
		t.Fatalf("refresh on missing dir: added=%d err=%v", added, err)
	}

	// Tiny segments force rotations (and sidecars on seal).
	w, err := Create(dir, Options{SegmentBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for i := 0; i < 20; i++ {
		if err := w.Append(testRow(i, "wifi")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ws.Refresh(); err != nil {
		t.Fatal(err)
	}
	if ws.Len() != 20 {
		t.Fatalf("watch store has %d rows, want 20", ws.Len())
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.vseg"))
	if len(segs) < 2 {
		t.Fatalf("segment size never forced a rotation (%d segments); the sidecar path went untested", len(segs))
	}
	if got, want := reportBytes(t, ws), reportBytes(t, w); !bytes.Equal(got, want) {
		t.Fatal("watch report differs from writer report across rotations")
	}
}

// TestWatchTornTailStopsAndRetries: a half-written frame at the tail
// must not error, must not ingest, and must be picked up whole once
// the rest of the bytes land.
func TestWatchTornTailStopsAndRetries(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, segName(0))
	frame := frameFor(t, testRow(1, "fcc"))
	cut := frameHdrLen + 3 // header plus a sliver of the key
	if err := os.WriteFile(seg, append([]byte(segMagic), frame[:cut]...), 0o644); err != nil {
		t.Fatal(err)
	}

	ws, err := OpenWatch(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ws.Close()
	if ws.Len() != 0 {
		t.Fatalf("torn tail ingested %d rows", ws.Len())
	}
	if added, err := ws.Refresh(); err != nil || added != 0 {
		t.Fatalf("refresh over torn tail: added=%d err=%v", added, err)
	}

	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(frame[cut:]); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if added, err := ws.Refresh(); err != nil || added != 1 {
		t.Fatalf("refresh after completing the frame: added=%d err=%v", added, err)
	}
	if _, ok, err := ws.Get("fcc-001"); err != nil || !ok {
		t.Fatalf("completed row not served: ok=%v err=%v", ok, err)
	}
}

// TestWatchResetOnReplace: a store directory replaced wholesale (the
// dispatch fold does exactly this) must reset the watch view to the
// new content and keep the generation moving forward.
func TestWatchResetOnReplace(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fillStore(t, w, 5, "fcc")
	w.Close()

	ws, err := OpenWatch(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ws.Close()
	if ws.Len() != 5 {
		t.Fatalf("watch sees %d rows, want 5", ws.Len())
	}
	genBefore := ws.Generation()

	// Replace the directory with a smaller store: segment zero shrinks,
	// which only a reset can explain.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	w2, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fillStore(t, w2, 2, "lte")
	defer w2.Close()

	if _, err := ws.Refresh(); err != nil {
		t.Fatal(err)
	}
	if ws.Len() != 2 {
		t.Fatalf("after replace watch sees %d rows, want 2", ws.Len())
	}
	if ws.Generation() <= genBefore {
		t.Fatalf("generation did not advance across the reset: %d -> %d", genBefore, ws.Generation())
	}
	if got, want := reportBytes(t, ws), reportBytes(t, w2); !bytes.Equal(got, want) {
		t.Fatal("post-replace watch report differs from the new store's")
	}
}

// TestWatchServeETagPerGeneration is the satellite-4 pin: served over
// HTTP, a watch store's /v1/report ETag changes exactly once per
// appended row (one generation bump), conditional requests answer 304
// while the store is quiet, and a stale validator answers 200 again.
func TestWatchServeETagPerGeneration(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	fillStore(t, w, 2, "fcc")

	ws, err := OpenWatch(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ws.Close()
	h := NewHandler(ws, ServeOptions{}) // WatchInterval 0: refresh every request

	etagOf := func() string {
		t.Helper()
		rec := doGet(t, h, "/v1/report", "")
		if rec.Code != http.StatusOK {
			t.Fatalf("/v1/report: %d %s", rec.Code, rec.Body.Bytes())
		}
		tag := rec.Header().Get("ETag")
		if !strings.HasPrefix(tag, `"report-`) {
			t.Fatalf("ETag %q is not generation-keyed", tag)
		}
		return tag
	}

	e1 := etagOf()
	if again := etagOf(); again != e1 {
		t.Fatalf("ETag moved with no writes: %q -> %q", e1, again)
	}
	if rec := doGet(t, h, "/v1/report", e1); rec.Code != http.StatusNotModified {
		t.Fatalf("conditional GET with current ETag: %d, want 304", rec.Code)
	}

	// One append = one generation = one ETag step, observed through a
	// watch-triggered incremental reopen, not a fresh handler.
	if err := w.Append(testRow(7, "fcc")); err != nil {
		t.Fatal(err)
	}
	e2 := etagOf()
	if e2 == e1 {
		t.Fatal("ETag did not move after an append")
	}
	if again := etagOf(); again != e2 {
		t.Fatalf("ETag moved twice for one append: %q -> %q", e2, again)
	}
	if rec := doGet(t, h, "/v1/report", e1); rec.Code != http.StatusOK {
		t.Fatalf("conditional GET with stale ETag: %d, want 200", rec.Code)
	}
	if rec := doGet(t, h, "/v1/report", e2); rec.Code != http.StatusNotModified {
		t.Fatalf("conditional GET with fresh ETag: %d, want 304", rec.Code)
	}
}
