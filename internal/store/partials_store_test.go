package store

// Tests for the store-level partial-aggregate layer: lazy build,
// incremental fold on append, snapshot persistence, and snapshot
// mistrust (corruption, layout drift).

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"veritas/internal/engine"
	"veritas/internal/telemetry"
)

func partialsReportBytes(t *testing.T, s *Store, scenario string) []byte {
	t.Helper()
	p, err := s.Partials()
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(p.Report(scenario))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func scanReportBytes(t *testing.T, s *Store, scenario string) []byte {
	t.Helper()
	agg, err := s.AggregateScenario(scenario)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(agg.Report())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestStorePartialsMatchFullScanAtEveryGeneration is the tentpole
// acceptance pin: the incrementally folded report is byte-identical to
// the full-recompute (Scan + Aggregator) report at every single
// generation, unfiltered and per scenario.
func TestStorePartialsMatchFullScanAtEveryGeneration(t *testing.T) {
	s, err := Create(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	scenarios := []string{"fcc", "lte", "wifi"}
	for i := 0; i < 15; i++ {
		if err := s.Append(testRow(i, scenarios[i%3])); err != nil {
			t.Fatal(err)
		}
		for _, scen := range []string{"", "fcc", "lte", "wifi"} {
			if i < 2 && scen != "" && !s.hasScenarioNow(scen) {
				continue
			}
			got := partialsReportBytes(t, s, scen)
			want := scanReportBytes(t, s, scen)
			if !bytes.Equal(got, want) {
				t.Fatalf("gen %d scenario %q: incremental report diverged\nwant: %s\ngot:  %s", i, scen, want, got)
			}
		}
	}
	// Overwrites must supersede, not duplicate.
	if err := s.Append(testRow(3, "fcc")); err != nil {
		t.Fatal(err)
	}
	if got, want := partialsReportBytes(t, s, ""), scanReportBytes(t, s, ""); !bytes.Equal(got, want) {
		t.Fatal("incremental report diverged after overwrite")
	}
}

// hasScenarioNow reports whether any stored row carries the scenario
// (test helper; Scenarios() is the public path).
func (s *Store) hasScenarioNow(scen string) bool {
	for _, si := range s.Scenarios() {
		if si.Scenario == scen {
			return true
		}
	}
	return false
}

// TestPartialsSnapshotRoundTripOnDisk: Close saves partials.vagg, a
// reopen restores it (no full rescan), and a delta of rows appended
// after the snapshot folds in on top.
func TestPartialsSnapshotRoundTripOnDisk(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fillStore(t, s, 10, "fcc")
	if _, err := s.Partials(); err != nil { // force the build so Close persists it
		t.Fatal(err)
	}
	want := scanReportBytes(t, s, "")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, partialsName)); err != nil {
		t.Fatalf("Close did not persist %s: %v", partialsName, err)
	}

	ro, err := Open(dir, Options{ReadOnly: true, Telemetry: telemetry.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	if got := partialsReportBytes(t, ro, ""); !bytes.Equal(got, want) {
		t.Fatal("report from restored snapshot differs")
	}
	if loads := ro.met.partialSnapLoads.Value(); loads != 1 {
		t.Errorf("snapshot loads = %d, want 1 (restore did not use the snapshot)", loads)
	}
	ro.Close()

	// Append past the snapshot: restore must cover the prefix and the
	// delta must fold from the frames.
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for i := 10; i < 14; i++ {
		if err := w.Append(testRow(i, "lte")); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := partialsReportBytes(t, w, ""), scanReportBytes(t, w, ""); !bytes.Equal(got, want) {
		t.Fatal("snapshot + delta report diverged from full scan")
	}
}

// TestPartialsCorruptSnapshotRebuilds: a corrupt or stale partials.vagg
// must be ignored (full rebuild), never trusted, never fatal.
func TestPartialsCorruptSnapshotRebuilds(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fillStore(t, s, 6, "wifi")
	if _, err := s.Partials(); err != nil {
		t.Fatal(err)
	}
	want := scanReportBytes(t, s, "")
	s.Close()

	path := filepath.Join(dir, partialsName)
	for name, corrupt := range map[string]func([]byte) []byte{
		"flipped byte": func(b []byte) []byte {
			b[len(b)/2] ^= 0xff
			return b
		},
		"truncated": func(b []byte) []byte { return b[:len(b)/2] },
		"garbage":   func([]byte) []byte { return []byte("not a snapshot") },
	} {
		good, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, corrupt(append([]byte(nil), good...)), 0o644); err != nil {
			t.Fatal(err)
		}
		ro, err := Open(dir, Options{ReadOnly: true, Telemetry: telemetry.NewRegistry()})
		if err != nil {
			t.Fatalf("%s: open: %v", name, err)
		}
		if got := partialsReportBytes(t, ro, ""); !bytes.Equal(got, want) {
			t.Fatalf("%s: report over corrupt snapshot differs from full scan", name)
		}
		if loads := ro.met.partialSnapLoads.Value(); loads != 0 {
			t.Errorf("%s: corrupt snapshot was trusted (loads=%d)", name, loads)
		}
		ro.Close()
		if err := os.WriteFile(path, good, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestPartialsSeriesEndpointHelpers: the store-level Partials expose
// the series the query tier serves, matching a straight engine
// aggregation of the same rows.
func TestPartialsSeriesMatchesAggregate(t *testing.T) {
	s, err := Create(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rows := fillStore(t, s, 8, "fcc")
	p, err := s.Partials()
	if err != nil {
		t.Fatal(err)
	}
	agg := engine.NewAggregator(len(rows))
	for _, r := range rows {
		agg.AddRow(r)
	}
	wantRep, _ := json.Marshal(agg.Report())
	gotRep, _ := json.Marshal(p.Report(""))
	if !bytes.Equal(gotRep, wantRep) {
		t.Fatal("partials report != aggregator report")
	}
	series := p.Series("", "bba-5s", engine.EstTruth, 0)
	if len(series) != len(rows) {
		t.Fatalf("truth series has %d values, want %d", len(series), len(rows))
	}
}
