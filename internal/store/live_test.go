package store

// Tests for the live query tier over a dispatching campaign's shard
// directory.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"veritas/internal/engine"
)

// shardFixture lays out parent/shard-N.store directories with shard
// metadata and the given row slices.
func shardFixture(t *testing.T, parent string, shards [][]engine.SessionRow) []*Store {
	t.Helper()
	out := make([]*Store, len(shards))
	for i, rows := range shards {
		dir := filepath.Join(parent, fmt.Sprintf("shard-%d.store", i))
		st, err := Create(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			if err := st.Append(r); err != nil {
				t.Fatal(err)
			}
		}
		if err := WriteShardMeta(dir, ShardMeta{Index: i, Count: len(shards)}); err != nil {
			t.Fatal(err)
		}
		out[i] = st
		t.Cleanup(func() { st.Close() })
	}
	return out
}

func TestLiveHandlerCombinesShards(t *testing.T) {
	parent := t.TempDir()
	rowsA := []engine.SessionRow{testRow(0, "fcc"), testRow(1, "lte")}
	rowsB := []engine.SessionRow{testRow(2, "fcc"), testRow(3, "wifi")}
	writers := shardFixture(t, parent, [][]engine.SessionRow{rowsA, rowsB})

	h := NewLiveHandler(parent, ServeOptions{})
	defer h.Close()

	rec := doGet(t, h, "/v1/live/report", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("/v1/live/report: %d %s", rec.Code, rec.Body.Bytes())
	}
	// The live report must equal the report of one store holding every
	// shard's rows (same rows -> same sorted view -> same bytes).
	all, err := Create(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer all.Close()
	for _, r := range append(append([]engine.SessionRow(nil), rowsA...), rowsB...) {
		if err := all.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	agg, err := all.Aggregate()
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(agg.Report())
	if !bytes.Equal(rec.Body.Bytes(), want) {
		t.Fatalf("live report differs from combined store report\nwant: %s\ngot:  %s", want, rec.Body.Bytes())
	}

	// Status reflects the discovered shards.
	rec = doGet(t, h, "/v1/live/status", "")
	var status struct {
		Shards   int `json:"shards"`
		Sessions int `json:"sessions"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &status); err != nil {
		t.Fatal(err)
	}
	if status.Shards != 2 || status.Sessions != 4 {
		t.Errorf("live status %+v, want 2 shards / 4 sessions", status)
	}

	// New rows on a shard move the live view and its ETag.
	etag1 := doGet(t, h, "/v1/live/report", "").Header().Get("ETag")
	if err := writers[0].Append(testRow(9, "fcc")); err != nil {
		t.Fatal(err)
	}
	rec = doGet(t, h, "/v1/live/report", "")
	if rec.Code != http.StatusOK {
		t.Fatal(rec.Code)
	}
	var rep engine.Report
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Sessions != 5 {
		t.Errorf("live report covers %d sessions after append, want 5", rep.Sessions)
	}
	if etag2 := rec.Header().Get("ETag"); etag2 == etag1 {
		t.Error("live ETag did not move after a shard append")
	} else if rec := doGet(t, h, "/v1/live/report", etag2); rec.Code != http.StatusNotModified {
		t.Errorf("conditional live report: %d, want 304", rec.Code)
	}
}

func TestLiveHandlerEmptyParentAndLateShards(t *testing.T) {
	parent := filepath.Join(t.TempDir(), "not-yet")
	h := NewLiveHandler(parent, ServeOptions{})
	defer h.Close()

	rec := doGet(t, h, "/v1/live/report", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("live report over missing parent: %d", rec.Code)
	}
	var rep engine.Report
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Sessions != 0 {
		t.Errorf("empty live report covers %d sessions", rep.Sessions)
	}

	// Shards appearing later are picked up; staging directories
	// (.incoming) are ignored.
	if err := os.MkdirAll(parent, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(parent, "shard-1.store.incoming-e1"), 0o755); err != nil {
		t.Fatal(err)
	}
	shardFixture(t, parent, [][]engine.SessionRow{{testRow(0, "fcc")}})
	rec = doGet(t, h, "/v1/live/report", "")
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Sessions != 1 {
		t.Errorf("live report covers %d sessions after shard appeared, want 1", rep.Sessions)
	}

	// The query grammar and envelope hold on the live surface too.
	rec = doGet(t, h, "/v1/live/report?scenario=nosuch", "")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("live unknown scenario: %d", rec.Code)
	}
	envelope(t, rec.Body.Bytes())
	rec = doGet(t, h, "/v1/live/report/percentiles?arm=bba-5s", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("live percentiles: %d %s", rec.Code, rec.Body.Bytes())
	}
}
