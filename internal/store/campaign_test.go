package store

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"veritas/internal/engine"
)

func TestOpenCampaignFingerprint(t *testing.T) {
	dir := t.TempDir()
	fp := []byte(`{"Seed":1,"Chunks":120}`)

	st, err := OpenCampaign(dir, Options{}, fp)
	if err != nil {
		t.Fatalf("fresh campaign: %v", err)
	}
	if err := st.Append(engine.SessionRow{ID: "a"}); err != nil {
		t.Fatal(err)
	}
	st.Close()
	if _, err := os.Stat(filepath.Join(dir, CampaignMetaFile)); err != nil {
		t.Fatalf("fingerprint not recorded: %v", err)
	}

	// Same fingerprint, even reformatted: accepted.
	st, err = OpenCampaign(dir, Options{}, []byte(`{ "Chunks": 120, "Seed": 1 }`))
	if err != nil {
		t.Fatalf("matching fingerprint rejected: %v", err)
	}
	st.Close()

	// Different fingerprint: refused with the sentinel error.
	if _, err := OpenCampaign(dir, Options{}, []byte(`{"Seed":2,"Chunks":120}`)); !errors.Is(err, ErrCampaignMismatch) {
		t.Fatalf("mismatched fingerprint: err = %v, want ErrCampaignMismatch", err)
	}
}

func TestOpenCampaignNilFingerprintIsPlainOpen(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenCampaign(dir, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	if _, err := os.Stat(filepath.Join(dir, CampaignMetaFile)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("nil fingerprint wrote %s: %v", CampaignMetaFile, err)
	}
}

func TestOpenCampaignRejectsInvalidFingerprint(t *testing.T) {
	if _, err := OpenCampaign(t.TempDir(), Options{}, []byte(`{broken`)); err == nil {
		t.Fatal("invalid JSON fingerprint accepted")
	}
}

func TestOpenCampaignReadOnlyNeverWrites(t *testing.T) {
	dir := t.TempDir()
	st, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append(engine.SessionRow{ID: "a"}); err != nil {
		t.Fatal(err)
	}
	st.Close()
	// A read-only campaign open of a store without a fingerprint must
	// fail rather than create one.
	if _, err := OpenCampaign(dir, Options{ReadOnly: true}, []byte(`{}`)); err == nil {
		t.Fatal("read-only open of a fingerprint-less store accepted")
	}
	if _, err := os.Stat(filepath.Join(dir, CampaignMetaFile)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("read-only open wrote %s", CampaignMetaFile)
	}
}
