//go:build unix

package store

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// acquireLock takes an exclusive, non-blocking flock on dir/LOCK. The
// kernel releases the lock when the holding process exits — however it
// died — so a crashed campaign never needs manual lock cleanup before
// -resume.
func (s *Store) acquireLock() error {
	f, err := os.OpenFile(filepath.Join(s.dir, "LOCK"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return fmt.Errorf("store: %s is locked by another writer", s.dir)
	}
	s.lock = f
	return nil
}

func (s *Store) releaseLock() {
	if s.lock != nil {
		s.lock.Close() // closing the descriptor drops the flock
		s.lock = nil
	}
}
