//go:build !unix

package store

// Non-unix platforms have no flock; writable stores fall back to no
// inter-process lock (single-writer discipline is then on the caller).
func (s *Store) acquireLock() error { return nil }

func (s *Store) releaseLock() {}
