package store

// Incremental per-arm aggregates over a store. The first Partials()
// call builds the engine.Partials state for the current corpus — from
// the persisted snapshot plus a delta fold when one verifies, by a full
// reduce of every row otherwise — and installs it on the store. From
// then on every Append (and every row a watch refresh tails in) folds
// into it, so /v1/report and the series endpoints answer in O(arms)
// instead of rescanning the corpus per query.
//
// Snapshot file. dir/partials.vagg persists the reduced digests with
// the segment layout they cover:
//
//	8-byte magic "VPART1\n\x00"
//	u32 CRC-32 (IEEE) over the payload
//	u32 payload length
//	payload: JSON {Layout:[{Seg,Size}], Sessions:[engine.PartialSession]}
//
// Like sidecars, the snapshot is an optimization, never a source of
// truth: it is trusted only if its checksum verifies and its recorded
// layout is an exact prefix of the segments on disk (sealed segments
// byte-identical, the last one no longer than the file is now). Any
// doubt falls back to the full rebuild, so stores written before
// snapshots existed — or whose snapshot was lost — serve unchanged.

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"veritas/internal/engine"
)

const (
	partialsMagic  = "VPART1\n\x00"
	partialsName   = "partials.vagg"
	partialsHdrLen = 8 // CRC + payload length, after the magic
)

// packSeq encodes a frame's location as a fold sequence number:
// watch epoch, segment, then byte offset — so "later on disk" always
// means "higher seq", and records tailed after a watch reset outrank
// everything folded before it.
func packSeq(epoch uint64, seg int, off int64) uint64 {
	return epoch<<56 | uint64(seg)<<36 | uint64(off)
}

// partialsLayoutSeg is one segment's extent in a snapshot's layout.
type partialsLayoutSeg struct {
	Seg  int
	Size int64
}

// partialsFile is the JSON payload of a partials snapshot.
type partialsFile struct {
	Layout   []partialsLayoutSeg
	Sessions []engine.PartialSession
}

// Partials returns the store's incremental aggregate state, building it
// on first call. Concurrent callers share one build; appends that land
// during the build are folded live and reconciled by sequence number.
func (s *Store) Partials() (*engine.Partials, error) {
	for {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return nil, ErrClosed
		}
		if s.partials != nil {
			p, ready := s.partials, s.partialsReady
			s.mu.Unlock()
			<-ready
			// The build may have failed (uninstalled) or a watch reset
			// may have discarded this state; either way retry.
			s.mu.Lock()
			ok := s.partials == p
			s.mu.Unlock()
			if ok {
				return p, nil
			}
			continue
		}

		// We are the builder. Install the (empty) partials and the ready
		// latch under mu, capture the work list, then reduce outside the
		// lock so appends keep flowing: they fold into p directly, and
		// the location-packed sequence numbers make the interleaving
		// converge on the newest record per session.
		p := engine.NewPartials()
		ready := make(chan struct{})
		s.partials = p
		s.partialsReady = ready
		epoch := s.watchEpoch
		s.mergeIndex()
		todo := make([]entry, len(s.entries))
		copy(todo, s.entries)
		s.mu.Unlock()

		coverSeg, coverOff, restored := s.restorePartialsSnapshot(p)
		if restored {
			s.met.partialSnapLoads.Inc()
		} else {
			s.met.partialRebuilds.Inc()
		}
		var err error
		for _, e := range todo {
			if e.seg < coverSeg || (e.seg == coverSeg && e.off < coverOff) {
				continue // the snapshot already holds this record's digest
			}
			row, rerr := s.readRow(e)
			if rerr != nil {
				err = rerr
				break
			}
			p.FoldRow(row, packSeq(epoch, e.seg, e.off))
			s.met.partialFolds.Inc()
		}

		s.mu.Lock()
		if err != nil && s.partials == p {
			s.partials, s.partialsReady = nil, nil
		}
		s.mu.Unlock()
		close(ready)
		if err != nil {
			return nil, err
		}
		return p, nil
	}
}

// restorePartialsSnapshot folds a verified snapshot's digests into p
// and returns the (segment, offset) frontier it covers. restored=false
// (frontier 0,0 — cover nothing) on any doubt.
func (s *Store) restorePartialsSnapshot(p *engine.Partials) (coverSeg int, coverOff int64, restored bool) {
	raw, err := os.ReadFile(filepath.Join(s.dir, partialsName))
	if err != nil {
		return 0, 0, false
	}
	if len(raw) < len(partialsMagic)+partialsHdrLen || string(raw[:len(partialsMagic)]) != partialsMagic {
		return 0, 0, false
	}
	sum := binary.LittleEndian.Uint32(raw[len(partialsMagic):])
	plen := binary.LittleEndian.Uint32(raw[len(partialsMagic)+4:])
	payload := raw[len(partialsMagic)+partialsHdrLen:]
	if int(plen) != len(payload) || crc32.ChecksumIEEE(payload) != sum {
		return 0, 0, false
	}
	var pf partialsFile
	if json.Unmarshal(payload, &pf) != nil {
		return 0, 0, false
	}
	if len(pf.Layout) == 0 {
		return 0, 0, false
	}
	// The recorded layout must be an exact prefix of the store: every
	// recorded segment present, sealed ones byte-identical in size, the
	// last no longer than the file is now. Segments are append-only, so
	// any mismatch means truncation, replacement, or a foreign store —
	// rebuild from frames.
	for i, ls := range pf.Layout {
		if ls.Seg != i {
			return 0, 0, false // segment numbering is dense from 0
		}
		fi, err := os.Stat(filepath.Join(s.dir, segName(ls.Seg)))
		if err != nil {
			return 0, 0, false
		}
		last := i == len(pf.Layout)-1
		if (!last && fi.Size() != ls.Size) || fi.Size() < ls.Size {
			return 0, 0, false
		}
	}
	for _, ps := range pf.Sessions {
		// Neutralize persisted sequence numbers: they were packed under
		// the writing store's epochs and must lose to anything this
		// store folds live.
		ps.Seq = 0
		p.FoldPartial(ps)
	}
	lastL := pf.Layout[len(pf.Layout)-1]
	return lastL.Seg, lastL.Size, true
}

// SavePartials persists the current partial aggregates next to the
// segments. It is a no-op (nil) when the partials were never built or
// the initial build is still in flight. Close calls this automatically
// for writable stores.
func (s *Store) SavePartials() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.savePartialsLocked()
}

func (s *Store) savePartialsLocked() error {
	if s.partials == nil {
		return nil
	}
	select {
	case <-s.partialsReady:
	default:
		return nil // initial build still running; its digests are incomplete
	}
	nums, err := s.segmentNumbers()
	if err != nil {
		return err
	}
	layout := make([]partialsLayoutSeg, 0, len(nums))
	for _, n := range nums {
		size := int64(0)
		if n == s.activeNum && s.active != nil {
			size = s.activeLen
		} else if fi, err := os.Stat(filepath.Join(s.dir, segName(n))); err == nil {
			size = fi.Size()
		} else {
			return fmt.Errorf("store: partials: %w", err)
		}
		layout = append(layout, partialsLayoutSeg{Seg: n, Size: size})
	}
	pf := partialsFile{Layout: layout, Sessions: s.partials.Snapshot()}
	payload, err := json.Marshal(pf)
	if err != nil {
		return fmt.Errorf("store: partials: %w", err)
	}
	buf := make([]byte, len(partialsMagic)+partialsHdrLen+len(payload))
	copy(buf, partialsMagic)
	binary.LittleEndian.PutUint32(buf[len(partialsMagic):], crc32.ChecksumIEEE(payload))
	binary.LittleEndian.PutUint32(buf[len(partialsMagic)+4:], uint32(len(payload)))
	copy(buf[len(partialsMagic)+partialsHdrLen:], payload)
	if err := writeFileAtomic(filepath.Join(s.dir, partialsName), buf); err != nil {
		return fmt.Errorf("store: partials: %w", err)
	}
	s.met.partialSnapWrites.Inc()
	return nil
}
