package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// shipShard builds a closed shard store with rows, shard metadata and
// a campaign.json, ready to ship.
func shipShard(t *testing.T, index, count int, rows []int, campaign string) string {
	t.Helper()
	dir := shardStore(t, ShardMeta{Index: index, Count: count}, rows, "fcc")
	if err := os.WriteFile(filepath.Join(dir, CampaignMetaFile), []byte(campaign), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestShipReceiveRoundTrip(t *testing.T) {
	src := shipShard(t, 0, 2, []int{0, 2, 4}, `{"seed": 1, "sessions": 6}`)
	// Host-local and stray files must not travel.
	for _, junk := range []string{"LOCK", "notes.txt"} {
		if err := os.WriteFile(filepath.Join(src, junk), []byte("local"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	var buf bytes.Buffer
	shipped, err := Ship(&buf, src)
	if err != nil {
		t.Fatal(err)
	}
	dst := filepath.Join(t.TempDir(), "received")
	received, err := Receive(bytes.NewReader(buf.Bytes()), dst)
	if err != nil {
		t.Fatal(err)
	}
	if received != shipped {
		t.Errorf("received %d files, shipped %d", received, shipped)
	}
	for _, junk := range []string{"LOCK", "notes.txt"} {
		if _, err := os.Stat(filepath.Join(dst, junk)); !os.IsNotExist(err) {
			t.Errorf("%s travelled with the store", junk)
		}
	}

	// The received directory verifies as the shard it claims to be —
	// against a structurally-equal fingerprint, not a byte-equal one
	// (whitespace differs here).
	n, err := VerifyShard(dst, 0, 2, [][]byte{[]byte(`{"sessions":6,"seed":1}`)})
	if err != nil {
		t.Fatalf("received store fails verification: %v", err)
	}
	if n != 3 {
		t.Errorf("verified store has %d sessions, want 3", n)
	}
	// And carries the same rows.
	st, err := Open(dst, Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for _, key := range []string{"fcc-000", "fcc-002", "fcc-004"} {
		if !st.Has(key) {
			t.Errorf("received store lost %s", key)
		}
	}
}

func TestReceiveRejectsCorruption(t *testing.T) {
	src := shipShard(t, 0, 1, []int{0, 1}, `{"seed":1}`)
	var buf bytes.Buffer
	if _, err := Ship(&buf, src); err != nil {
		t.Fatal(err)
	}
	stream := buf.Bytes()

	cases := []struct {
		name   string
		mangle func([]byte) []byte
	}{
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b }},
		{"flipped content byte", func(b []byte) []byte { b[len(b)/2] ^= 0x01; return b }},
		{"truncated stream", func(b []byte) []byte { return b[:len(b)-12] }},
		{"wrong trailer count", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[len(b)-4:], 99)
			return b
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dst := filepath.Join(t.TempDir(), "received")
			mangled := tc.mangle(append([]byte(nil), stream...))
			if _, err := Receive(bytes.NewReader(mangled), dst); !errors.Is(err, ErrShipCorrupt) {
				t.Fatalf("corrupt stream accepted (err = %v)", err)
			}
			// A refused upload must leave no debris that could later be
			// mistaken for a shard store.
			if _, err := os.Stat(dst); !os.IsNotExist(err) {
				t.Errorf("partial receive left %s behind", dst)
			}
		})
	}
}

// TestReceiveRejectsUnsafeNames pins the path-traversal guard: a
// hostile frame naming a file outside the target directory (or one
// that is not part of a store at all) is refused.
func TestReceiveRejectsUnsafeNames(t *testing.T) {
	frame := func(name string) []byte {
		var buf bytes.Buffer
		buf.WriteString(shipMagic)
		content := []byte("x")
		var hdr [16]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(name)))
		binary.LittleEndian.PutUint64(hdr[4:12], uint64(len(content)))
		binary.LittleEndian.PutUint32(hdr[12:16], crc32.ChecksumIEEE(content))
		buf.Write(hdr[:])
		buf.WriteString(name)
		buf.Write(content)
		var trailer [8]byte
		binary.LittleEndian.PutUint32(trailer[4:8], 1)
		buf.Write(trailer[:])
		return buf.Bytes()
	}
	for _, name := range []string{"../evil", "a/b.vseg", `a\b.vseg`, "..", "LOCK", "random.bin"} {
		dst := filepath.Join(t.TempDir(), "received")
		_, err := Receive(bytes.NewReader(frame(name)), dst)
		if !errors.Is(err, ErrShipCorrupt) {
			t.Errorf("frame named %q accepted (err = %v)", name, err)
		}
		if _, serr := os.Stat(dst); !os.IsNotExist(serr) {
			t.Errorf("refused frame %q left %s behind", name, dst)
		}
	}
}

func TestReceiveRefusesNonEmptyDir(t *testing.T) {
	src := shipShard(t, 0, 1, []int{0}, `{"seed":1}`)
	var buf bytes.Buffer
	if _, err := Ship(&buf, src); err != nil {
		t.Fatal(err)
	}
	dst := t.TempDir()
	if err := os.WriteFile(filepath.Join(dst, "resident"), []byte("here first"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Receive(&buf, dst); err == nil || !strings.Contains(err.Error(), "not empty") {
		t.Fatalf("receive into a non-empty directory: err = %v", err)
	}
	// The refusal must not destroy what was already there: cleanup is
	// only for directories Receive populated from scratch.
	if _, err := os.Stat(filepath.Join(dst, "resident")); err != nil {
		t.Errorf("refusal destroyed pre-existing contents: %v", err)
	}
}

func TestVerifyShardRejections(t *testing.T) {
	dir := shipShard(t, 1, 3, []int{1, 4}, `{"seed":1}`)
	if _, err := VerifyShard(dir, 1, 3, nil); err != nil {
		t.Fatalf("valid shard store rejected: %v", err)
	}
	if _, err := VerifyShard(dir, 0, 3, nil); err == nil || !strings.Contains(err.Error(), "records shard") {
		t.Errorf("wrong shard index accepted: %v", err)
	}
	if _, err := VerifyShard(dir, 1, 4, nil); err == nil || !strings.Contains(err.Error(), "records shard") {
		t.Errorf("wrong shard count accepted: %v", err)
	}
	if _, err := VerifyShard(dir, 1, 3, [][]byte{[]byte(`{"seed":2}`)}); !errors.Is(err, ErrCampaignMismatch) {
		t.Errorf("campaign fingerprint mismatch accepted: %v", err)
	}
	// A store directory with no shard.json is not a shard store.
	plain := t.TempDir()
	s, err := Create(plain, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := VerifyShard(plain, 0, 1, nil); err == nil || !strings.Contains(err.Error(), "not a shard store") {
		t.Errorf("unstamped store accepted as a shard: %v", err)
	}
}
