package store

// Watch mode: tail a store another process is still writing.
//
// A read-only Open wants a finished corpus — it scans once, treats a
// torn tail as recovered loss, and never looks at the directory again.
// OpenWatch instead keeps per-segment scan positions and re-checks the
// directory on every Refresh: new bytes in the newest segment are
// framed and folded in, a freshly sealed segment is picked up through
// its sidecar without a re-scan, and a brand-new segment starts a new
// tail. An incomplete frame at a tail is never an error here — it is a
// write in flight, so the refresh stops before it and the next refresh
// retries from the same position.
//
// The one thing a watcher cannot incrementally survive is the store
// moving backwards — a segment shrinking or vanishing means the
// directory was truncated, compacted, or replaced wholesale. Refresh
// then resets: it drops the index, readers, scan positions, and partial
// aggregates, bumps the watch epoch (so stale folds lose by sequence
// number) and the generation (so every ETag built on it changes), and
// rescans from scratch.
//
// Appends, truncation, and locking are all absent: a watch store is
// ReadOnly, takes no writer lock, and never mutates the directory —
// exactly what the serving layer needs to sit next to a live campaign.

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"veritas/internal/engine"
	"veritas/internal/telemetry"
)

// OpenWatch opens dir for tailing: read-only, tolerant of the directory
// not existing yet (the campaign may not have created it), and
// refreshable. The initial Refresh runs before OpenWatch returns, so a
// store that already holds rows serves them immediately.
func OpenWatch(dir string, opt Options) (*Store, error) {
	opt.ReadOnly = true
	if fi, err := os.Stat(dir); err == nil && !fi.IsDir() {
		return nil, fmt.Errorf("store: %s is not a directory", dir)
	}
	s := &Store{
		dir:      dir,
		opt:      opt,
		readers:  make(map[int]*os.File),
		watch:    true,
		watchPos: make(map[int]int64),
		met:      newStoreMetrics(opt.Telemetry),
	}
	if _, err := s.Refresh(); err != nil {
		return nil, err
	}
	if reg := opt.Telemetry; reg != nil {
		reg.RegisterFunc("veritas_store_sessions", telemetry.GaugeFunc, func() float64 { return float64(s.Len()) })
		reg.RegisterFunc("veritas_store_generation", telemetry.GaugeFunc, func() float64 { return float64(s.Generation()) })
	}
	return s, nil
}

// IsWatch reports whether the store was opened with OpenWatch.
func (s *Store) IsWatch() bool { return s.watch }

// Refresh re-checks the directory for rows appended since the last
// refresh (or open), folding them into the index — and into the partial
// aggregates, when built. It returns the number of rows picked up.
// Generation moves by exactly one per new row, so ETags keyed on it
// change iff a refresh found data; a reset also bumps it.
func (s *Store) Refresh() (added int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.watch {
		return 0, errors.New("store: Refresh needs a store opened with OpenWatch")
	}
	if s.closed {
		return 0, ErrClosed
	}
	s.met.watchRefreshes.Inc()
	nums, err := s.segmentNumbers()
	if err != nil {
		return 0, err
	}
	present := make(map[int]int64, len(nums)) // segment -> current size
	for _, n := range nums {
		fi, err := os.Stat(filepath.Join(s.dir, segName(n)))
		if err != nil {
			// Vanished between glob and stat — mid-replacement. Skip this
			// round; the next refresh sees the settled state.
			return 0, nil
		}
		present[n] = fi.Size()
	}
	for n, pos := range s.watchPos {
		if size, ok := present[n]; !ok || size < pos {
			s.watchResetLocked()
			break
		}
	}
	newest := -1
	if len(nums) > 0 {
		newest = nums[len(nums)-1]
	}
	for _, n := range nums {
		a, err := s.tailSegmentLocked(n, present[n], n == newest)
		added += a
		if err != nil {
			return added, err
		}
	}
	s.met.watchRows.Add(uint64(added))
	return added, nil
}

// watchResetLocked discards everything derived from the directory: the
// next tail pass rebuilds from scratch. Caller holds mu.
func (s *Store) watchResetLocked() {
	s.entries = nil
	s.staged = nil
	s.watchPos = make(map[int]int64)
	for _, f := range s.readers {
		f.Close()
	}
	s.readers = make(map[int]*os.File)
	// Drop the partials rather than rewinding them; the next Partials()
	// call rebuilds. The epoch bump makes any in-flight build of the old
	// state lose every sequence-number race against post-reset folds.
	s.partials, s.partialsReady = nil, nil
	s.watchEpoch++
	s.gen++ // the corpus changed shape: every generation-keyed cache must miss
	s.met.watchResets.Inc()
}

// tailSegmentLocked folds segment n's frames from the last scanned
// position up to size. Caller holds mu.
func (s *Store) tailSegmentLocked(n int, size int64, newest bool) (added int, err error) {
	pos := s.watchPos[n]
	if pos >= size {
		return 0, nil
	}
	if pos == 0 && !newest {
		// First sight of an already-sealed segment (the writer rotated
		// past it, or the watcher started on an existing store): its
		// sidecar replays the frame list without a scan.
		if entries, ok := s.tryLoadSidecar(n); ok {
			s.sidecarLoads++
			s.met.scLoads.Inc()
			for _, e := range entries {
				if err := s.ingestWatchEntry(e); err != nil {
					return added, err
				}
				added++
			}
			s.watchPos[n] = size
			return added, nil
		}
		s.sidecarScans++
		s.met.scScans.Inc()
	}
	f, err := s.readerLocked(n)
	if err != nil {
		return 0, nil // unreadable right now; retry next refresh
	}
	if pos == 0 {
		magic := make([]byte, len(segMagic))
		if _, err := f.ReadAt(magic, 0); err != nil || string(magic) != segMagic {
			return 0, nil // header write in flight
		}
		pos = int64(len(segMagic))
		s.watchPos[n] = pos
	}
	hdr := make([]byte, frameHdrLen)
	var buf []byte
	for pos+frameHdrLen <= size {
		if _, err := f.ReadAt(hdr, pos); err != nil {
			break
		}
		keyLen, payloadLen, sum, ok := parseFrameHeader(hdr)
		if !ok {
			break // torn or in-flight frame: stop here, retry next refresh
		}
		fn := int64(keyLen + payloadLen)
		if pos+frameHdrLen+fn > size {
			break // frame body still being written
		}
		if int64(cap(buf)) < fn {
			buf = make([]byte, fn)
		}
		buf = buf[:fn]
		if _, err := f.ReadAt(buf, pos+frameHdrLen); err != nil {
			break
		}
		if crc32.ChecksumIEEE(buf) != sum {
			break
		}
		e := entry{key: string(buf[:keyLen]), seg: n, off: pos}
		e.scenario, e.index = peekRow(buf[keyLen:])
		if err := s.ingestWatchEntryFromPayload(e, buf[keyLen:]); err != nil {
			return added, err
		}
		added++
		pos += frameHdrLen + fn
		s.watchPos[n] = pos
	}
	return added, nil
}

// ingestWatchEntry stages one tailed entry and folds its row into the
// partials, reading the row back when needed. Caller holds mu.
func (s *Store) ingestWatchEntry(e entry) error {
	s.staged = append(s.staged, e)
	s.gen++
	if s.partials == nil {
		return nil
	}
	f, err := s.readerLocked(e.seg)
	if err != nil {
		return err
	}
	row, err := s.readRowFrom(f, e)
	if err != nil {
		return err
	}
	s.partials.FoldRow(row, packSeq(s.watchEpoch, e.seg, e.off))
	s.met.partialFolds.Inc()
	return nil
}

// ingestWatchEntryFromPayload is ingestWatchEntry when the scan already
// holds the verified payload bytes. Caller holds mu.
func (s *Store) ingestWatchEntryFromPayload(e entry, payload []byte) error {
	s.staged = append(s.staged, e)
	s.gen++
	if s.partials == nil {
		return nil
	}
	var row engine.SessionRow
	if err := json.Unmarshal(payload, &row); err != nil {
		return err
	}
	s.partials.FoldRow(row, packSeq(s.watchEpoch, e.seg, e.off))
	s.met.partialFolds.Inc()
	return nil
}
