package store

// The live query tier over a dispatching campaign. While shards are
// still being written by workers, the campaign's folded store does not
// exist yet — but the per-shard stores do, and each is tailable with
// OpenWatch. LiveHandler watches the shard directory, tails every shard
// store, and serves the report family over their combined partial
// aggregates — the same bodies the folded store will serve, available
// mid-dispatch.
//
// Shards are combined by folding each store's partial digests in shard
// order (the same precedence Fold gives duplicate session keys), so a
// session re-run on a later shard supersedes the earlier record exactly
// as the fold will resolve it.
//
// The handler mounts under /v1/live/* rather than /v1/* because the
// dispatch status listener already promises "/v1/report returns the
// folded corpus or 503" — a contract the smoke tests poll against; the
// live tier is additive, never a reinterpretation of an existing route.

import (
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"veritas/internal/engine"
)

// LiveHandler serves the report family over the shard stores of a
// still-running dispatch. Create with NewLiveHandler; it implements
// http.Handler with routes:
//
//	GET /v1/live/report[ /cdf | /series | /percentiles ]
//	GET /v1/live/status
//
// using the same query grammar, error envelope, ETag discipline, and
// response bodies as the store-backed /v1/report family. Before any
// shard exists the live report is an empty corpus, never an error — a
// dashboard pointed at a campaign that has not started yet just shows
// zero sessions.
type LiveHandler struct {
	parent string
	every  time.Duration
	mux    *http.ServeMux

	mu          sync.Mutex
	stores      map[string]*Store // shard dir -> watch store
	order       []string          // shard dirs in shard order, as last discovered
	lastRefresh time.Time
	lastFp      string
	combined    *engine.Partials
	combGen     uint64
	rounds      uint64 // combined-view rebuilds, folded into the ETag

	reports reportCache
}

// NewLiveHandler tails the shard stores under parent (the dispatcher's
// shard directory, which may not exist yet) and serves live aggregates.
// opt.WatchInterval rate-limits directory rediscovery and shard
// refresh (0 = every request). The tailed shard stores are deliberately
// left un-instrumented: dozens of them registering the per-store gauges
// against one registry would just overwrite each other.
func NewLiveHandler(parent string, opt ServeOptions) *LiveHandler {
	h := &LiveHandler{
		parent: parent,
		every:  opt.WatchInterval,
		stores: make(map[string]*Store),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/live/report", h.report)
	mux.HandleFunc("GET /v1/live/report/cdf", h.reportCDF)
	mux.HandleFunc("GET /v1/live/report/series", h.reportSeries)
	mux.HandleFunc("GET /v1/live/report/percentiles", h.reportPercentiles)
	mux.HandleFunc("GET /v1/live/status", h.status)
	h.mux = mux
	return h
}

func (h *LiveHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) { h.mux.ServeHTTP(w, r) }

func liveETag(gen uint64) string { return fmt.Sprintf("\"live-%d\"", gen) }

// refresh rediscovers shards and tails each one, rebuilding the
// combined partials when anything moved. All failures are soft: a shard
// directory mid-upload, a vanished store, an unreadable shard.json —
// each means "no update this round", and the last good view keeps
// serving.
func (h *LiveHandler) refresh() (*engine.Partials, uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.combined != nil && h.every > 0 && time.Since(h.lastRefresh) < h.every {
		return h.combined, h.combGen
	}
	h.lastRefresh = time.Now()
	dirs, err := DiscoverShards(h.parent)
	if err != nil {
		// Parent missing, or a shard.json unreadable mid-write.
		return h.lastGoodLocked()
	}
	keep := make(map[string]bool, len(dirs))
	order := make([]string, 0, len(dirs))
	for _, dir := range dirs {
		if strings.Contains(dir, ".incoming") {
			continue // a fleetd upload still being staged
		}
		if _, ok := h.stores[dir]; !ok {
			st, err := OpenWatch(dir, Options{})
			if err != nil {
				continue // not a readable store yet; next round
			}
			h.stores[dir] = st
		}
		keep[dir] = true
		order = append(order, dir)
	}
	for dir, st := range h.stores {
		if !keep[dir] {
			st.Close()
			delete(h.stores, dir)
		}
	}
	h.order = order
	// Fingerprint the view: per-shard generations in shard order. Any
	// row tailed anywhere bumps its shard's generation, so an unchanged
	// fingerprint proves the combined partials are still current.
	var fp strings.Builder
	var sum uint64
	for _, dir := range order {
		st := h.stores[dir]
		_, _ = st.Refresh() // on error, keep this shard's last tailed view
		g := st.Generation()
		sum += g
		fmt.Fprintf(&fp, "%s=%d;", dir, g)
	}
	if h.combined != nil && fp.String() == h.lastFp {
		return h.combined, h.combGen
	}
	combined := engine.NewPartials()
	for _, dir := range order {
		p, err := h.stores[dir].Partials()
		if err != nil {
			return h.lastGoodLocked()
		}
		for _, ps := range p.Snapshot() {
			// Shard order is fold order: a later shard's record for the
			// same session wins, matching Fold's precedence.
			combined.FoldPartial(ps)
		}
	}
	h.rounds++
	h.combined = combined
	h.lastFp = fp.String()
	// Row-count generations alone could collide across rebuilds (a shard
	// vanishing while another grows); folding the rebuild count in keeps
	// the ETag moving whenever the combined view was rebuilt.
	h.combGen = sum + h.rounds<<44
	h.reports.reset()
	return h.combined, h.combGen
}

// lastGoodLocked returns the last good combined view, or an empty one.
// Caller holds mu.
func (h *LiveHandler) lastGoodLocked() (*engine.Partials, uint64) {
	if h.combined == nil {
		h.combined = engine.NewPartials()
	}
	return h.combined, h.combGen
}

func (h *LiveHandler) status(w http.ResponseWriter, r *http.Request) {
	p, gen := h.refresh()
	h.mu.Lock()
	shards := len(h.order)
	h.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"shards":     shards,
		"sessions":   p.Sessions(),
		"generation": gen,
	})
}

// reportFamily binds serveReportFamily to the shard-combined view.
func (h *LiveHandler) reportFamily(w http.ResponseWriter, r *http.Request, endpoint string, needArm bool,
	build func(q *reportQuery, p *engine.Partials) any) {
	q, aerr := parseReportQuery(r.URL.Query())
	if aerr != nil {
		writeAPIError(w, aerr)
		return
	}
	p, gen := h.refresh()
	serveReportFamily(w, r, q, endpoint, needArm, &h.reports, gen, liveETag(gen),
		func() (*engine.Partials, error) { return p, nil }, build)
}

func (h *LiveHandler) report(w http.ResponseWriter, r *http.Request) {
	h.reportFamily(w, r, "report", false, buildReport)
}

func (h *LiveHandler) reportCDF(w http.ResponseWriter, r *http.Request) {
	h.reportFamily(w, r, "cdf", true, buildCDF)
}

func (h *LiveHandler) reportSeries(w http.ResponseWriter, r *http.Request) {
	h.reportFamily(w, r, "series", true, buildSeries)
}

func (h *LiveHandler) reportPercentiles(w http.ResponseWriter, r *http.Request) {
	h.reportFamily(w, r, "percentiles", true, buildPercentiles)
}

// Close releases every tailed shard store.
func (h *LiveHandler) Close() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	var first error
	for dir, st := range h.stores {
		if err := st.Close(); err != nil && first == nil {
			first = err
		}
		delete(h.stores, dir)
	}
	return first
}
