package store

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"veritas/internal/engine"
)

// serveFixture runs a small real campaign into a store and returns the
// handler plus the in-RAM run for comparison.
func serveFixture(t *testing.T) (http.Handler, *engine.Result, *Store) {
	t.Helper()
	corpus, arms := fleetCorpus(t)
	dir := t.TempDir()
	st, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Run(context.Background(), engine.Config{Workers: 2, Samples: 2, Seed: 1, Sink: st}, corpus, arms)
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	ro, err := Open(dir, Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ro.Close() })
	return NewHandler(ro, ServeOptions{CacheEntries: 8}), res, ro
}

func get(t *testing.T, h http.Handler, path string) (int, []byte) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	body, _ := io.ReadAll(rec.Result().Body)
	return rec.Code, body
}

func TestServeSessionsAndScenarios(t *testing.T) {
	h, res, _ := serveFixture(t)

	code, body := get(t, h, "/v1/sessions")
	if code != http.StatusOK {
		t.Fatalf("/v1/sessions: %d %s", code, body)
	}
	var list struct {
		Count    int
		Sessions []SessionInfo
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if list.Count != len(res.Sessions) {
		t.Errorf("listed %d sessions, want %d", list.Count, len(res.Sessions))
	}

	code, body = get(t, h, "/v1/sessions?scenario=lte")
	var lte struct{ Sessions []SessionInfo }
	if err := json.Unmarshal(body, &lte); err != nil {
		t.Fatal(err)
	}
	if code != http.StatusOK || len(lte.Sessions) != 1 || lte.Sessions[0].Scenario != "lte" {
		t.Errorf("scenario filter: code %d sessions %+v", code, lte.Sessions)
	}

	code, body = get(t, h, "/v1/scenarios")
	var sc struct{ Scenarios []ScenarioInfo }
	if err := json.Unmarshal(body, &sc); err != nil {
		t.Fatal(err)
	}
	if code != http.StatusOK || len(sc.Scenarios) != len(engine.Scenarios()) {
		t.Errorf("/v1/scenarios: code %d got %+v", code, sc.Scenarios)
	}
}

func TestServeSessionFetchAndCache(t *testing.T) {
	h, res, _ := serveFixture(t)
	id := res.Sessions[0].ID

	code, body := get(t, h, "/v1/sessions/"+id)
	if code != http.StatusOK {
		t.Fatalf("session fetch: %d %s", code, body)
	}
	var row engine.SessionRow
	if err := json.Unmarshal(body, &row); err != nil {
		t.Fatal(err)
	}
	if row.ID != id || len(row.Arms) == 0 {
		t.Errorf("served row %+v missing results", row)
	}

	// Second fetch must be served from the read cache.
	_, again := get(t, h, "/v1/sessions/"+id)
	if !bytes.Equal(body, again) {
		t.Error("cached fetch returned different bytes")
	}
	_, health := get(t, h, "/healthz")
	var hz struct {
		CacheHits   uint64
		CacheMisses uint64
	}
	if err := json.Unmarshal(health, &hz); err != nil {
		t.Fatal(err)
	}
	if hz.CacheHits == 0 {
		t.Errorf("healthz reports no cache hits after repeat fetch: %s", health)
	}

	if code, _ := get(t, h, "/v1/sessions/unknown-999"); code != http.StatusNotFound {
		t.Errorf("unknown session: code %d, want 404", code)
	}
}

// TestServeReportMatchesInRAM is the serving-layer acceptance check:
// the JSON the server returns equals the in-RAM aggregator's report for
// the same corpus, byte for byte.
func TestServeReportMatchesInRAM(t *testing.T) {
	h, res, _ := serveFixture(t)
	want, err := json.Marshal(res.Agg.Report())
	if err != nil {
		t.Fatal(err)
	}
	code, got := get(t, h, "/v1/report")
	if code != http.StatusOK {
		t.Fatalf("/v1/report: %d %s", code, got)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("served report differs from in-RAM report\nwant: %s\ngot:  %s", want, got)
	}
	// Cached second read returns the same bytes.
	if _, again := get(t, h, "/v1/report"); !bytes.Equal(got, again) {
		t.Error("cached report differs")
	}
	// Scenario-filtered report covers only that scenario's sessions.
	_, flt := get(t, h, "/v1/report?scenario=wifi")
	var rep engine.Report
	if err := json.Unmarshal(flt, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Sessions != 1 {
		t.Errorf("filtered report covers %d sessions, want 1", rep.Sessions)
	}
}

func TestServeUnknownScenarioIs404(t *testing.T) {
	h, _, _ := serveFixture(t)
	if code, _ := get(t, h, "/v1/report?scenario=dialup"); code != http.StatusNotFound {
		t.Errorf("unknown scenario report: code %d, want 404", code)
	}
	if code, _ := get(t, h, "/v1/report?scenario=lte"); code != http.StatusOK {
		t.Errorf("known scenario report: code %d, want 200", code)
	}
}

// TestServeSeesOverwritesThroughWritableStore pins the cache-coherence
// contract for a handler sharing a writable store with a campaign:
// overwriting a session must invalidate both the row cache and the
// report cache, while untouched rows keep hitting.
func TestServeSeesOverwritesThroughWritableStore(t *testing.T) {
	st, err := Create(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	fillStore(t, st, 3, "fcc")
	h := NewHandler(st, ServeOptions{CacheEntries: 8})

	_, before := get(t, h, "/v1/sessions/fcc-001")
	_, reportBefore := get(t, h, "/v1/report")

	// Re-run the session with a different outcome.
	rerun := testRow(1, "fcc")
	rerun.SettingA.AvgSSIM = 0.42
	rerun.Arms[0].Baseline.AvgSSIM = 0.42
	if err := st.Append(rerun); err != nil {
		t.Fatal(err)
	}

	code, after := get(t, h, "/v1/sessions/fcc-001")
	if code != http.StatusOK || bytes.Equal(before, after) {
		t.Errorf("overwritten session still served stale bytes (code %d)", code)
	}
	var row engine.SessionRow
	if err := json.Unmarshal(after, &row); err != nil {
		t.Fatal(err)
	}
	if row.SettingA.AvgSSIM != 0.42 {
		t.Errorf("served SSIM %v, want the overwritten 0.42", row.SettingA.AvgSSIM)
	}
	if _, reportAfter := get(t, h, "/v1/report"); bytes.Equal(reportBefore, reportAfter) {
		t.Error("report cache survived an overwrite of an existing session")
	}

	// An untouched session cached before the overwrite still hits.
	get(t, h, "/v1/sessions/fcc-002")
	h0, _ := hitsOf(t, h)
	get(t, h, "/v1/sessions/fcc-002")
	h1, _ := hitsOf(t, h)
	if h1 != h0+1 {
		t.Errorf("untouched session did not hit the row cache (%d -> %d)", h0, h1)
	}
}

func hitsOf(t *testing.T, h http.Handler) (uint64, uint64) {
	t.Helper()
	_, body := get(t, h, "/healthz")
	var hz struct {
		CacheHits   uint64
		CacheMisses uint64
	}
	if err := json.Unmarshal(body, &hz); err != nil {
		t.Fatal(err)
	}
	return hz.CacheHits, hz.CacheMisses
}

func TestServeReportETag(t *testing.T) {
	h, _, _ := serveFixture(t)

	req := httptest.NewRequest(http.MethodGet, "/v1/report", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("/v1/report: %d", rec.Code)
	}
	etag := rec.Header().Get("ETag")
	if etag == "" {
		t.Fatal("report response carries no ETag")
	}

	// A conditional request with the current tag is 304 with no body —
	// on both the cached and (fresh handler) uncached paths.
	for name, handler := range map[string]http.Handler{"cached": h} {
		req := httptest.NewRequest(http.MethodGet, "/v1/report", nil)
		req.Header.Set("If-None-Match", etag)
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		if rec.Code != http.StatusNotModified {
			t.Errorf("%s: conditional report = %d, want 304", name, rec.Code)
		}
		if rec.Body.Len() != 0 {
			t.Errorf("%s: 304 carried a %d-byte body", name, rec.Body.Len())
		}
		if got := rec.Header().Get("ETag"); got != etag {
			t.Errorf("%s: 304 ETag %q != %q", name, got, etag)
		}
	}

	// A stale tag still gets the full report.
	req = httptest.NewRequest(http.MethodGet, "/v1/report", nil)
	req.Header.Set("If-None-Match", `"report-424242"`)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK || rec.Body.Len() == 0 {
		t.Fatalf("stale conditional report = %d (%d bytes), want 200 with body", rec.Code, rec.Body.Len())
	}
}

func TestServeReportETagColdPathAndInvalidScenario(t *testing.T) {
	_, _, ro := serveFixture(t)
	// Fresh handler: no cached report body yet, the 304 must still work.
	cold := NewHandler(ro, ServeOptions{CacheEntries: 8})
	req := httptest.NewRequest(http.MethodGet, "/v1/report", nil)
	req.Header.Set("If-None-Match", "*")
	rec := httptest.NewRecorder()
	cold.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotModified {
		t.Fatalf("cold conditional report = %d, want 304", rec.Code)
	}
	// A conditional request must not turn an unknown scenario into 304.
	req = httptest.NewRequest(http.MethodGet, "/v1/report?scenario=dialup", nil)
	req.Header.Set("If-None-Match", "*")
	rec = httptest.NewRecorder()
	cold.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("conditional unknown scenario = %d, want 404", rec.Code)
	}
}

func TestServeReportETagMovesWithGeneration(t *testing.T) {
	corpus, arms := fleetCorpus(t)
	dir := t.TempDir()
	st, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := engine.Run(context.Background(), engine.Config{Workers: 2, Samples: 1, Seed: 1, Sink: st}, corpus, arms); err != nil {
		t.Fatal(err)
	}
	h := NewHandler(st, ServeOptions{CacheEntries: 8})

	req := httptest.NewRequest(http.MethodGet, "/v1/report", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	etag := rec.Header().Get("ETag")

	// Overwrite one session: the generation bumps, the old tag goes
	// stale, and the conditional request gets a fresh 200.
	row, ok, err := st.Get(corpus[0].ID)
	if err != nil || !ok {
		t.Fatalf("get %s: %v %v", corpus[0].ID, ok, err)
	}
	if err := st.Append(row); err != nil {
		t.Fatal(err)
	}
	req = httptest.NewRequest(http.MethodGet, "/v1/report", nil)
	req.Header.Set("If-None-Match", etag)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("post-append conditional report = %d, want 200", rec.Code)
	}
	if got := rec.Header().Get("ETag"); got == etag {
		t.Errorf("ETag %q did not move with the store generation", got)
	}
}
