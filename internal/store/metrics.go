package store

import "veritas/internal/telemetry"

// storeMetrics holds the store's resolved metric handles. With no
// registry every handle is nil and every record call is a no-op (the
// telemetry package's nil-metric contract), so the append path carries
// no "is telemetry on?" branches beyond gating its clock reads.
type storeMetrics struct {
	appends     *telemetry.Counter
	appendBytes *telemetry.Counter
	appendSec   *telemetry.Histogram
	fsyncs      *telemetry.Counter
	fsyncSec    *telemetry.Histogram
	rotations   *telemetry.Counter
	reads       *telemetry.Counter
	segments    *telemetry.Gauge
	recoveries  *telemetry.Counter
	recoveredB  *telemetry.Counter
	scLoads     *telemetry.Counter
	scScans     *telemetry.Counter

	// Live query tier: incremental-aggregate and watch-mode health.
	partialFolds      *telemetry.Counter // rows folded incrementally (append or tail)
	partialRebuilds   *telemetry.Counter // full partial rebuilds (no usable snapshot)
	partialSnapLoads  *telemetry.Counter // partials restored from a snapshot file
	partialSnapWrites *telemetry.Counter // partials snapshot files written
	watchRefreshes    *telemetry.Counter // watch Refresh passes
	watchRows         *telemetry.Counter // rows picked up by watch refreshes
	watchResets       *telemetry.Counter // full watch resets (store shrank or vanished)
}

func newStoreMetrics(reg *telemetry.Registry) storeMetrics {
	if reg == nil {
		return storeMetrics{}
	}
	return storeMetrics{
		appends:     reg.Counter("veritas_store_appends_total"),
		appendBytes: reg.Counter("veritas_store_append_bytes_total"),
		appendSec:   reg.Histogram("veritas_store_append_seconds"),
		fsyncs:      reg.Counter("veritas_store_fsyncs_total"),
		fsyncSec:    reg.Histogram("veritas_store_fsync_seconds"),
		rotations:   reg.Counter("veritas_store_segment_rotations_total"),
		reads:       reg.Counter("veritas_store_reads_total"),
		segments:    reg.Gauge("veritas_store_segments"),
		recoveries:  reg.Counter("veritas_store_recoveries_total"),
		recoveredB:  reg.Counter("veritas_store_recovered_bytes_total"),
		scLoads:     reg.Counter("veritas_store_sidecar_loads_total"),
		scScans:     reg.Counter("veritas_store_sidecar_scans_total"),

		partialFolds:      reg.Counter("veritas_store_partial_folds_total"),
		partialRebuilds:   reg.Counter("veritas_store_partial_rebuilds_total"),
		partialSnapLoads:  reg.Counter("veritas_store_partial_snapshot_loads_total"),
		partialSnapWrites: reg.Counter("veritas_store_partial_snapshot_writes_total"),
		watchRefreshes:    reg.Counter("veritas_store_watch_refreshes_total"),
		watchRows:         reg.Counter("veritas_store_watch_rows_total"),
		watchResets:       reg.Counter("veritas_store_watch_resets_total"),
	}
}
