package store

import "veritas/internal/telemetry"

// storeMetrics holds the store's resolved metric handles. With no
// registry every handle is nil and every record call is a no-op (the
// telemetry package's nil-metric contract), so the append path carries
// no "is telemetry on?" branches beyond gating its clock reads.
type storeMetrics struct {
	appends     *telemetry.Counter
	appendBytes *telemetry.Counter
	appendSec   *telemetry.Histogram
	fsyncs      *telemetry.Counter
	fsyncSec    *telemetry.Histogram
	rotations   *telemetry.Counter
	reads       *telemetry.Counter
	segments    *telemetry.Gauge
	recoveries  *telemetry.Counter
	recoveredB  *telemetry.Counter
	scLoads     *telemetry.Counter
	scScans     *telemetry.Counter
}

func newStoreMetrics(reg *telemetry.Registry) storeMetrics {
	if reg == nil {
		return storeMetrics{}
	}
	return storeMetrics{
		appends:     reg.Counter("veritas_store_appends_total"),
		appendBytes: reg.Counter("veritas_store_append_bytes_total"),
		appendSec:   reg.Histogram("veritas_store_append_seconds"),
		fsyncs:      reg.Counter("veritas_store_fsyncs_total"),
		fsyncSec:    reg.Histogram("veritas_store_fsync_seconds"),
		rotations:   reg.Counter("veritas_store_segment_rotations_total"),
		reads:       reg.Counter("veritas_store_reads_total"),
		segments:    reg.Gauge("veritas_store_segments"),
		recoveries:  reg.Counter("veritas_store_recoveries_total"),
		recoveredB:  reg.Counter("veritas_store_recovered_bytes_total"),
		scLoads:     reg.Counter("veritas_store_sidecar_loads_total"),
		scScans:     reg.Counter("veritas_store_sidecar_scans_total"),
	}
}
