package store

// Segment sidecar indexes. Reopening a store used to mean re-scanning
// every frame of every segment to rebuild the resident key index —
// O(total bytes), painful for a folded million-session corpus. A
// sidecar ("seg-00000.vidx" next to "seg-00000.vseg") persists one
// sealed segment's slice of the index, so Open rebuilds the index in
// O(segments): read each sidecar, spot-check the final frame, done.
//
// Sidecars are strictly an optimization, never a source of truth:
//
//   - A sidecar is trusted only if its own checksum verifies, its
//     recorded segment size matches the file on disk, and the final
//     frame it points at parses and passes the frame CRC. Anything
//     else — missing, truncated, bit-flipped, stale — falls back to
//     the full frame scan of that segment, which is exactly the PR 2
//     open path, so stores written before sidecars existed (or whose
//     sidecars were lost) open unchanged.
//   - Frame CRCs are still verified on every read, so a sidecar can
//     misdirect a lookup at worst into a loud checksum error, never
//     into silently wrong data.
//
// Sidecars are written when a segment seals (append rotation), when
// the store closes (covering the active segment), and re-written to
// heal after a scan fallback of a sealed segment. All writes are
// write-then-rename and best-effort: a failed sidecar write degrades
// the next Open to a scan, it never fails the append path.
//
// On-disk format:
//
//	8-byte magic "VSIDX1\n\x00"
//	u32 CRC-32 (IEEE) over the payload
//	u32 payload length
//	payload: JSON {SegmentSize, Entries:[{Key,Scenario,Index,Off}]}
//
// Entries are in frame (append) order, so folding them into the key
// index reproduces the scan's last-write-wins semantics exactly.

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

const (
	sidecarMagic  = "VSIDX1\n\x00"
	sidecarSuffix = ".vidx"
	sidecarHdrLen = 8 // CRC + payload length, after the magic
)

func sidecarName(n int) string { return fmt.Sprintf("%s%05d%s", segPrefix, n, sidecarSuffix) }

// sidecarEntry is one frame's slot in a serialized sidecar.
type sidecarEntry struct {
	Key      string
	Scenario string
	Index    int
	Off      int64
}

// sidecarFile is the JSON payload of a sidecar.
type sidecarFile struct {
	// SegmentSize is the segment's byte size when the sidecar was
	// written; a mismatch on disk marks the sidecar stale.
	SegmentSize int64
	Entries     []sidecarEntry
}

// writeSidecar persists the index slice for segment num. Errors are
// returned for tests but callers treat them as best-effort.
func (s *Store) writeSidecar(num int, segSize int64, entries []entry) error {
	sf := sidecarFile{SegmentSize: segSize, Entries: make([]sidecarEntry, len(entries))}
	for i, e := range entries {
		sf.Entries[i] = sidecarEntry{Key: e.key, Scenario: e.scenario, Index: e.index, Off: e.off}
	}
	payload, err := json.Marshal(sf)
	if err != nil {
		return fmt.Errorf("store: sidecar: %w", err)
	}
	buf := make([]byte, len(sidecarMagic)+sidecarHdrLen+len(payload))
	copy(buf, sidecarMagic)
	binary.LittleEndian.PutUint32(buf[len(sidecarMagic):], crc32.ChecksumIEEE(payload))
	binary.LittleEndian.PutUint32(buf[len(sidecarMagic)+4:], uint32(len(payload)))
	copy(buf[len(sidecarMagic)+sidecarHdrLen:], payload)

	if err := writeFileAtomic(filepath.Join(s.dir, sidecarName(num)), buf); err != nil {
		return fmt.Errorf("store: sidecar: %w", err)
	}
	return nil
}

// tryLoadSidecar loads segment num's index slice from its sidecar,
// returning ok=false (fall back to a frame scan) on any doubt: missing
// or unreadable file, bad magic, bad checksum, a recorded size that no
// longer matches the segment, or a final frame that does not verify.
func (s *Store) tryLoadSidecar(num int) ([]entry, bool) {
	segPath := filepath.Join(s.dir, segName(num))
	fi, err := os.Stat(segPath)
	if err != nil {
		return nil, false
	}
	raw, err := os.ReadFile(filepath.Join(s.dir, sidecarName(num)))
	if err != nil {
		return nil, false
	}
	if len(raw) < len(sidecarMagic)+sidecarHdrLen || string(raw[:len(sidecarMagic)]) != sidecarMagic {
		return nil, false
	}
	sum := binary.LittleEndian.Uint32(raw[len(sidecarMagic):])
	plen := binary.LittleEndian.Uint32(raw[len(sidecarMagic)+4:])
	payload := raw[len(sidecarMagic)+sidecarHdrLen:]
	if int(plen) != len(payload) || crc32.ChecksumIEEE(payload) != sum {
		return nil, false
	}
	var sf sidecarFile
	if json.Unmarshal(payload, &sf) != nil {
		return nil, false
	}
	if sf.SegmentSize != fi.Size() {
		return nil, false // stale: the segment grew or was truncated since
	}
	if len(sf.Entries) == 0 {
		// An empty segment is exactly its magic header.
		if sf.SegmentSize != int64(len(segMagic)) {
			return nil, false
		}
		return nil, true
	}
	// Spot-check the tail: the final frame must parse, end exactly at
	// the recorded segment size, and pass its CRC. This catches the
	// crash-model corruptions (torn or flipped segment tails) without
	// rescanning the whole segment.
	last := sf.Entries[len(sf.Entries)-1]
	if !verifyFrameAt(segPath, last.Off, sf.SegmentSize) {
		return nil, false
	}
	entries := make([]entry, len(sf.Entries))
	for i, e := range sf.Entries {
		if e.Key == "" || e.Off < int64(len(segMagic)) || e.Off >= sf.SegmentSize {
			return nil, false
		}
		entries[i] = entry{key: e.Key, scenario: e.Scenario, index: e.Index, seg: num, off: e.Off}
	}
	return entries, true
}

// verifyFrameAt reports whether an intact frame starts at off and ends
// exactly at size.
func verifyFrameAt(segPath string, off, size int64) bool {
	f, err := os.Open(segPath)
	if err != nil {
		return false
	}
	defer f.Close()
	hdr := make([]byte, frameHdrLen)
	if _, err := f.ReadAt(hdr, off); err != nil {
		return false
	}
	keyLen, payloadLen, sum, ok := parseFrameHeader(hdr)
	if !ok {
		return false
	}
	n := int64(keyLen) + int64(payloadLen)
	if off+frameHdrLen+n != size {
		return false
	}
	buf := make([]byte, n)
	if _, err := f.ReadAt(buf, off+frameHdrLen); err != nil {
		return false
	}
	return crc32.ChecksumIEEE(buf) == sum
}
