package store

import (
	"container/list"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"

	"veritas/internal/engine"
)

// ServeOptions configures the HTTP query handler.
type ServeOptions struct {
	// CacheEntries bounds the in-process read cache of decoded session
	// rows (default 256; negative disables caching).
	CacheEntries int
}

func (o ServeOptions) cacheEntries() int {
	if o.CacheEntries == 0 {
		return 256
	}
	if o.CacheEntries < 0 {
		return 0
	}
	return o.CacheEntries
}

// NewHandler returns the HTTP query API over a store — the first brick
// of the serving layer: results persisted by campaigns are queryable
// without re-running any inference.
//
//	GET /healthz                  liveness + store and cache counters
//	GET /v1/sessions[?scenario=]  list stored sessions (index only, no payload reads)
//	GET /v1/sessions/{id}         one session's full what-if results
//	GET /v1/scenarios             scenario labels with session counts
//	GET /v1/report[?scenario=]    aggregate report (same JSON as the in-RAM aggregator);
//	                              carries a store-generation ETag and honors
//	                              If-None-Match with 304 Not Modified
//
// Hot sessions are served from a bounded LRU of decoded rows, and
// aggregate reports are cached per scenario filter. The report cache is
// keyed to the store's session count, so a handler over a still-growing
// writable store (a campaign appending through the same *Store handle)
// recomputes when sessions land. A read-only store is a snapshot: its
// index is fixed at Open, so the handler serves the corpus as of that
// moment — restart (or reopen) to pick up a live campaign's progress.
type handler struct {
	s    *Store
	mux  *http.ServeMux
	rows *rowCache

	mu      sync.Mutex
	reports map[string]cachedReport
}

type cachedReport struct {
	gen  uint64
	body []byte
}

// NewHandler builds the query handler over an open store.
func NewHandler(s *Store, opt ServeOptions) http.Handler {
	h := &handler{
		s:       s,
		rows:    newRowCache(opt.cacheEntries()),
		reports: make(map[string]cachedReport),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", h.health)
	mux.HandleFunc("GET /v1/sessions", h.sessions)
	mux.HandleFunc("GET /v1/sessions/{id}", h.session)
	mux.HandleFunc("GET /v1/scenarios", h.scenarios)
	mux.HandleFunc("GET /v1/report", h.report)
	h.mux = mux
	return h
}

func (h *handler) ServeHTTP(w http.ResponseWriter, r *http.Request) { h.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

func (h *handler) health(w http.ResponseWriter, r *http.Request) {
	hits, misses := h.rows.stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"sessions":       h.s.Len(),
		"recoveredBytes": h.s.Recovered(),
		"cacheHits":      hits,
		"cacheMisses":    misses,
	})
}

func (h *handler) sessions(w http.ResponseWriter, r *http.Request) {
	infos := h.s.Sessions(r.URL.Query().Get("scenario"))
	if infos == nil {
		infos = []SessionInfo{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"count": len(infos), "sessions": infos})
}

func (h *handler) session(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	// The record's version (its on-disk location) gates the cache:
	// overwriting a session moves it, so the stale row misses, while
	// untouched hot sessions keep hitting however much the rest of the
	// store grows.
	ver, ok := h.s.Version(id)
	if !ok {
		http.Error(w, "unknown session "+id, http.StatusNotFound)
		return
	}
	if row, ok := h.rows.get(id, ver); ok {
		writeJSON(w, http.StatusOK, row)
		return
	}
	row, ok, err := h.s.Get(id)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if !ok {
		http.Error(w, "unknown session "+id, http.StatusNotFound)
		return
	}
	h.rows.put(id, ver, row)
	writeJSON(w, http.StatusOK, row)
}

func (h *handler) scenarios(w http.ResponseWriter, r *http.Request) {
	scens := h.s.Scenarios()
	if scens == nil {
		scens = []ScenarioInfo{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"scenarios": scens})
}

// reportETag derives the report's validator from the store generation:
// the generation moves on every append (including same-key overwrites),
// so an unchanged tag proves the aggregate is still current for any
// scenario filter.
func reportETag(gen uint64) string { return fmt.Sprintf("\"report-%d\"", gen) }

// etagMatches implements the If-None-Match comparison for the strong
// validators this handler emits: a wildcard or any listed tag equal to
// the current one.
func etagMatches(header, etag string) bool {
	for _, candidate := range strings.Split(header, ",") {
		candidate = strings.TrimSpace(candidate)
		// Weak-comparison prefix: a cache may legitimately send back
		// W/"..." for a tag it received strong.
		candidate = strings.TrimPrefix(candidate, "W/")
		if candidate == "*" || candidate == etag {
			return true
		}
	}
	return false
}

func (h *handler) report(w http.ResponseWriter, r *http.Request) {
	scenario := r.URL.Query().Get("scenario")
	// Cache first: a cached body at the current generation proves the
	// scenario was valid when it was built and nothing changed since,
	// so the hot path skips the O(sessions) validation scan entirely.
	gen := h.s.Generation()
	etag := reportETag(gen)
	h.mu.Lock()
	if c, ok := h.reports[scenario]; ok && c.gen == gen {
		h.mu.Unlock()
		w.Header().Set("ETag", etag)
		if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatches(inm, etag) {
			w.WriteHeader(http.StatusNotModified)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(c.body)
		return
	}
	h.mu.Unlock()
	if scenario != "" {
		// Reject unknown scenarios: an empty 200 report would mask
		// typos, and caching per arbitrary query value would let
		// clients grow the report cache without bound.
		known := false
		for _, sc := range h.s.Scenarios() {
			if sc.Scenario == scenario {
				known = true
				break
			}
		}
		if !known {
			http.Error(w, "unknown scenario "+scenario, http.StatusNotFound)
			return
		}
	}
	// The tag is generation-keyed, so a match makes recomputing the
	// aggregate pointless even when no body is cached — but it must
	// come after scenario validation, or a conditional request could
	// turn a 404 into a 304.
	if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatches(inm, etag) {
		w.Header().Set("ETag", etag)
		w.WriteHeader(http.StatusNotModified)
		return
	}

	agg, err := h.s.AggregateScenario(scenario)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	body, err := json.Marshal(agg.Report())
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	h.mu.Lock()
	h.reports[scenario] = cachedReport{gen: gen, body: body}
	h.mu.Unlock()
	w.Header().Set("ETag", etag)
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

// rowCache is a small mutex-guarded LRU of decoded session rows.
type rowCache struct {
	mu           sync.Mutex
	cap          int
	ll           *list.List // front = most recent
	items        map[string]*list.Element
	hits, misses uint64
}

type rowItem struct {
	key string
	ver string
	row engine.SessionRow
}

func newRowCache(capacity int) *rowCache {
	return &rowCache{cap: capacity, ll: list.New(), items: make(map[string]*list.Element)}
}

// get returns the cached row for key only if it was cached at the same
// record version; a stale entry counts as a miss (and is replaced on
// the following put).
func (c *rowCache) get(key, ver string) (engine.SessionRow, bool) {
	if c.cap == 0 {
		return engine.SessionRow{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok && el.Value.(rowItem).ver == ver {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(rowItem).row, true
	}
	c.misses++
	return engine.SessionRow{}, false
}

func (c *rowCache) put(key, ver string, row engine.SessionRow) {
	if c.cap == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value = rowItem{key: key, ver: ver, row: row}
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(rowItem{key: key, ver: ver, row: row})
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(rowItem).key)
	}
}

func (c *rowCache) stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
