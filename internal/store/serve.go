package store

import (
	"container/list"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"veritas/internal/engine"
	"veritas/internal/stats"
	"veritas/internal/telemetry"
	"veritas/internal/tracing"
)

// ServeOptions configures the HTTP query handler.
//
// Deprecated uses of this struct via NewHandler keep working; new code
// should build handlers through veritas/internal/serve, whose options
// compile down to exactly this struct.
type ServeOptions struct {
	// CacheEntries bounds the in-process read cache of decoded session
	// rows (default 256; negative disables caching).
	CacheEntries int
	// Telemetry is the registry /metrics and /v1/status expose —
	// usually the campaign's, so engine and store metrics appear
	// alongside the serving layer's own request counters and row-cache
	// fold-ins. Nil gets a private registry: the endpoints then carry
	// serve-side metrics only.
	Telemetry *telemetry.Registry
	// Tracer, when set, records a tail-sampled trace per served request
	// (5xx responses count as errored) and is what GET /v1/trace exports
	// as Chrome trace-event JSON. Nil disables request tracing; the
	// endpoint then serves an empty (but valid) trace file.
	Tracer *tracing.Tracer
	// TraceSource, when set, overrides the trace set /v1/trace exports —
	// the facade uses it to serve a fleet-merged view (the campaign's own
	// traces plus what dispatch workers streamed up) instead of just the
	// local tracer's.
	TraceSource func() []tracing.Trace
	// WatchInterval rate-limits the store refresh a handler over a
	// watch-mode store (OpenWatch) runs before answering: at most one
	// refresh per interval, 0 meaning every request re-checks. Ignored
	// for ordinary stores, which never change shape under a reader.
	WatchInterval time.Duration
}

func (o ServeOptions) cacheEntries() int {
	if o.CacheEntries == 0 {
		return 256
	}
	if o.CacheEntries < 0 {
		return 0
	}
	return o.CacheEntries
}

// reportCacheCap bounds the per-query response cache. The key space is
// per (endpoint, filter) combination, so a scan of percentile spellings
// could otherwise grow it without bound; at the cap the whole map is
// dropped (every entry dies together at the next generation anyway).
const reportCacheCap = 256

// handler is the HTTP query API over a store — the serving layer brick
// that makes results persisted by campaigns queryable without re-running
// any inference.
//
//	GET /healthz                    liveness + store and cache counters
//	GET /v1/sessions[?scenario=]    list stored sessions (index only, no payload reads)
//	GET /v1/sessions/{id}           one session's full what-if results
//	GET /v1/scenarios               scenario labels with session counts
//	GET /v1/report                  aggregate report (same JSON as the in-RAM
//	                                aggregator), served from incremental partials
//	GET /v1/report/cdf              empirical CDF of one (arm, metric, estimator)
//	GET /v1/report/series           the raw per-session series behind the CDF
//	GET /v1/report/percentiles      chosen percentiles of the same series
//	GET /v1/status                  store + telemetry snapshot as JSON
//	GET /metrics                    the telemetry registry in Prometheus text format
//
// The report family shares one filter grammar (see query.go) and one
// JSON error envelope, carries a store-generation ETag, and honors
// If-None-Match with 304 Not Modified. Bodies are cached per query and
// invalidated by generation; the aggregates behind them are incremental
// (engine.Partials folded per append), so a report is O(arms) however
// large the corpus has grown.
//
// Hot sessions are served from a bounded LRU of decoded rows. A handler
// over a writable store picks up appends through the shared *Store
// handle; over a watch store (OpenWatch) each request first refreshes
// the tail — rate-limited by ServeOptions.WatchInterval — so a server
// started mid-campaign tracks the campaign live. A plain read-only
// store is a snapshot: restart (or reopen) to see later progress.
type handler struct {
	s      *Store
	mux    *http.ServeMux
	rows   *rowCache
	reg    *telemetry.Registry
	trc    *tracing.Tracer
	traces func() []tracing.Trace

	watchEvery  time.Duration // -1: not a watch store
	refreshErrs *telemetry.Counter
	watchMu     sync.Mutex
	lastRefresh time.Time

	reports reportCache
}

type cachedReport struct {
	gen  uint64
	body []byte
}

// reportCache is the generation-keyed response cache the report family
// shares: bodies live until the generation moves or the cap evicts
// everything (every entry dies together at the next generation anyway).
type reportCache struct {
	mu sync.Mutex
	m  map[string]cachedReport
}

func (c *reportCache) get(key string, gen uint64) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.m[key]; ok && e.gen == gen {
		return e.body, true
	}
	return nil, false
}

func (c *reportCache) put(key string, gen uint64, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.m == nil || len(c.m) >= reportCacheCap {
		c.m = make(map[string]cachedReport)
	}
	c.m[key] = cachedReport{gen: gen, body: body}
}

func (c *reportCache) reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m = nil
}

// NewHandler builds the query handler over an open store.
//
// Deprecated: use veritas/internal/serve.New, which builds the same
// handler from functional options. NewHandler remains as a
// compatibility shim and compiles against the same implementation.
func NewHandler(s *Store, opt ServeOptions) http.Handler { return newHandler(s, opt) }

func newHandler(s *Store, opt ServeOptions) http.Handler {
	reg := opt.Telemetry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	h := &handler{
		s:          s,
		rows:       newRowCache(opt.cacheEntries()),
		reg:        reg,
		trc:        opt.Tracer,
		traces:     opt.TraceSource,
		watchEvery: -1,
	}
	if s.IsWatch() {
		h.watchEvery = opt.WatchInterval
		h.refreshErrs = reg.Counter("veritas_serve_watch_refresh_errors_total")
	}
	if h.traces == nil {
		h.traces = opt.Tracer.Traces
	}
	// The row cache keeps its own counters (they predate telemetry);
	// fold them in as callback metrics rather than double-counting.
	reg.RegisterFunc("veritas_serve_row_cache_hits_total", telemetry.CounterFunc, func() float64 {
		hits, _ := h.rows.stats()
		return float64(hits)
	})
	reg.RegisterFunc("veritas_serve_row_cache_misses_total", telemetry.CounterFunc, func() float64 {
		_, misses := h.rows.stats()
		return float64(misses)
	})
	mux := http.NewServeMux()
	h.route(mux, "GET /healthz", "/healthz", h.health)
	h.route(mux, "GET /v1/sessions", "/v1/sessions", h.sessions)
	h.route(mux, "GET /v1/sessions/{id}", "/v1/sessions/{id}", h.session)
	h.route(mux, "GET /v1/scenarios", "/v1/scenarios", h.scenarios)
	h.route(mux, "GET /v1/report", "/v1/report", h.report)
	h.route(mux, "GET /v1/report/cdf", "/v1/report/cdf", h.reportCDF)
	h.route(mux, "GET /v1/report/series", "/v1/report/series", h.reportSeries)
	h.route(mux, "GET /v1/report/percentiles", "/v1/report/percentiles", h.reportPercentiles)
	h.route(mux, "GET /v1/status", "/v1/status", h.status)
	h.route(mux, "GET /v1/trace", "/v1/trace", h.trace)
	mux.HandleFunc("GET /metrics", h.metrics)
	h.mux = mux
	return h
}

// maybeRefresh tails the watch store before a request is answered, at
// most once per WatchInterval. Refresh errors keep the last good view
// serving (a campaign mid-rotation is not an outage) and are counted.
func (h *handler) maybeRefresh() {
	if h.watchEvery < 0 {
		return
	}
	if h.watchEvery > 0 {
		h.watchMu.Lock()
		if time.Since(h.lastRefresh) < h.watchEvery {
			h.watchMu.Unlock()
			return
		}
		h.lastRefresh = time.Now()
		h.watchMu.Unlock()
	}
	if _, err := h.s.Refresh(); err != nil {
		h.refreshErrs.Inc()
	}
}

// route registers fn on the mux with a per-endpoint request counter and
// latency histogram spliced in front. path is the label value (the mux
// pattern minus its method). With a tracer present each request also
// becomes a tail-sampled trace (5xx = errored); without one the
// response writer is passed through untouched.
func (h *handler) route(mux *http.ServeMux, pattern, path string, fn http.HandlerFunc) {
	reqs := h.reg.Counter(fmt.Sprintf("veritas_serve_requests_total{path=%q}", path))
	lat := h.reg.Histogram(fmt.Sprintf("veritas_serve_request_seconds{path=%q}", path))
	mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		reqs.Inc()
		h.maybeRefresh()
		if h.trc == nil {
			fn(w, r)
			lat.Since(t0)
			return
		}
		tb := h.trc.Start("request", path)
		sw := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		fn(sw, r)
		tb.SetAttr("status", sw.code)
		var err error
		if sw.code >= 500 {
			err = fmt.Errorf("HTTP %d", sw.code)
		}
		tb.Finish(err)
		lat.Since(t0)
	})
}

// statusRecorder captures the response code for request traces.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (s *statusRecorder) WriteHeader(code int) {
	s.code = code
	s.ResponseWriter.WriteHeader(code)
}

// trace exports the notable-trace set as Chrome trace-event JSON,
// loadable in Perfetto or chrome://tracing.
func (h *handler) trace(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := tracing.WriteChrome(w, h.traces()); err != nil {
		writeAPIError(w, errInternal(err))
	}
}

func (h *handler) metrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	h.reg.WritePrometheus(w)
}

func (h *handler) status(w http.ResponseWriter, r *http.Request) {
	hits, misses := h.rows.stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"sessions":       h.s.Len(),
		"scenarios":      len(h.s.Scenarios()),
		"generation":     h.s.Generation(),
		"recoveredBytes": h.s.Recovered(),
		"cache":          map[string]uint64{"hits": hits, "misses": misses},
		"telemetry":      h.reg.Snapshot(),
	})
}

func (h *handler) ServeHTTP(w http.ResponseWriter, r *http.Request) { h.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

func (h *handler) health(w http.ResponseWriter, r *http.Request) {
	hits, misses := h.rows.stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"sessions":       h.s.Len(),
		"recoveredBytes": h.s.Recovered(),
		"cacheHits":      hits,
		"cacheMisses":    misses,
	})
}

func (h *handler) sessions(w http.ResponseWriter, r *http.Request) {
	infos := h.s.Sessions(r.URL.Query().Get("scenario"))
	if infos == nil {
		infos = []SessionInfo{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"count": len(infos), "sessions": infos})
}

func (h *handler) session(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	// The record's version (its on-disk location) gates the cache:
	// overwriting a session moves it, so the stale row misses, while
	// untouched hot sessions keep hitting however much the rest of the
	// store grows.
	ver, ok := h.s.Version(id)
	if !ok {
		writeAPIError(w, errNotFound("", "unknown session %q", id))
		return
	}
	if row, ok := h.rows.get(id, ver); ok {
		writeJSON(w, http.StatusOK, row)
		return
	}
	row, ok, err := h.s.Get(id)
	if err != nil {
		writeAPIError(w, errInternal(err))
		return
	}
	if !ok {
		writeAPIError(w, errNotFound("", "unknown session %q", id))
		return
	}
	h.rows.put(id, ver, row)
	writeJSON(w, http.StatusOK, row)
}

func (h *handler) scenarios(w http.ResponseWriter, r *http.Request) {
	scens := h.s.Scenarios()
	if scens == nil {
		scens = []ScenarioInfo{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"scenarios": scens})
}

// reportETag derives the report's validator from the store generation:
// the generation moves on every append (including same-key overwrites),
// so an unchanged tag proves the aggregate is still current for any
// scenario filter.
func reportETag(gen uint64) string { return fmt.Sprintf("\"report-%d\"", gen) }

// etagMatches implements the If-None-Match comparison for the strong
// validators this handler emits: a wildcard or any listed tag equal to
// the current one.
func etagMatches(header, etag string) bool {
	for _, candidate := range strings.Split(header, ",") {
		candidate = strings.TrimSpace(candidate)
		// Weak-comparison prefix: a cache may legitimately send back
		// W/"..." for a tag it received strong.
		candidate = strings.TrimPrefix(candidate, "W/")
		if candidate == "*" || candidate == etag {
			return true
		}
	}
	return false
}

// validateQuery runs the store-backed half of query validation: do the
// scenario, ABR prefix, and arm the filters name actually exist in the
// (scenario-restricted) corpus? needArm marks the series endpoints,
// which aggregate one arm and cannot default it.
func validateQuery(q *reportQuery, p *engine.Partials, needArm bool) *apiError {
	if q.scenarioSet && q.scenario == "" {
		// `?scenario=` used to fall through as "no filter" and serve the
		// whole corpus — an empty 200 for what is really a malformed
		// filter. An empty label is not a scenario: reject it.
		return errNotFound("scenario", "unknown scenario %q", q.scenario)
	}
	if q.scenario != "" && !p.HasScenario(q.scenario) {
		return errNotFound("scenario", "unknown scenario %q", q.scenario)
	}
	arms := p.ArmUnion(q.scenario)
	if armOK := q.armOK(); armOK != nil {
		matched := false
		for _, a := range arms {
			if armOK(a) {
				matched = true
				break
			}
		}
		if !matched {
			return errNotFound("abr", "no arm matches ABR %q", q.abr)
		}
	}
	if needArm {
		if q.arm == "" {
			return errBadParam("arm", "arm parameter required (one of: %s)", strings.Join(arms, ", "))
		}
		known := false
		for _, a := range arms {
			if a == q.arm {
				known = true
				break
			}
		}
		if !known {
			return errNotFound("arm", "unknown arm %q (have: %s)", q.arm, strings.Join(arms, ", "))
		}
	}
	return nil
}

// serveReportFamily is the shared skeleton of every report endpoint —
// the store-backed /v1/report family here and the shard-combined
// /v1/live family in live.go: consult the generation-keyed response
// cache, validate against the partials, honor If-None-Match, then build
// and cache the body.
//
// Two ordering rules carry over from the original report handler and
// are pinned by tests: a cached body at the current generation skips
// validation entirely (it proves the query was valid when built and
// nothing changed since), and the 304 check runs only after validation,
// so a conditional request can never turn a 404 into a 304.
func serveReportFamily(w http.ResponseWriter, r *http.Request, q *reportQuery, endpoint string, needArm bool,
	cache *reportCache, gen uint64, etag string,
	partials func() (*engine.Partials, error),
	build func(q *reportQuery, p *engine.Partials) any) {
	key := q.cacheKey(endpoint)
	if body, ok := cache.get(key, gen); ok {
		w.Header().Set("ETag", etag)
		if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatches(inm, etag) {
			w.WriteHeader(http.StatusNotModified)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(body)
		return
	}
	p, err := partials()
	if err != nil {
		writeAPIError(w, errInternal(err))
		return
	}
	if aerr := validateQuery(q, p, needArm); aerr != nil {
		writeAPIError(w, aerr)
		return
	}
	// The tag is generation-keyed, so a match makes building the body
	// pointless even when none is cached — but it must come after
	// validation, or a conditional request could turn a 404 into a 304.
	if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatches(inm, etag) {
		w.Header().Set("ETag", etag)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	body, err := json.Marshal(build(q, p))
	if err != nil {
		writeAPIError(w, errInternal(err))
		return
	}
	cache.put(key, gen, body)
	w.Header().Set("ETag", etag)
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

// reportFamily binds serveReportFamily to this handler's store: the
// store generation keys the cache and the ETag, and the store's lazily
// built partials answer the query.
func (h *handler) reportFamily(w http.ResponseWriter, r *http.Request, endpoint string, needArm bool,
	build func(q *reportQuery, p *engine.Partials) any) {
	q, aerr := parseReportQuery(r.URL.Query())
	if aerr != nil {
		writeAPIError(w, aerr)
		return
	}
	gen := h.s.Generation()
	serveReportFamily(w, r, q, endpoint, needArm, &h.reports, gen, reportETag(gen), h.s.Partials, build)
}

func (h *handler) report(w http.ResponseWriter, r *http.Request) {
	h.reportFamily(w, r, "report", false, buildReport)
}

func (h *handler) reportCDF(w http.ResponseWriter, r *http.Request) {
	h.reportFamily(w, r, "cdf", true, buildCDF)
}

func (h *handler) reportSeries(w http.ResponseWriter, r *http.Request) {
	h.reportFamily(w, r, "series", true, buildSeries)
}

func (h *handler) reportPercentiles(w http.ResponseWriter, r *http.Request) {
	h.reportFamily(w, r, "percentiles", true, buildPercentiles)
}

// seriesMeta is the header block every series-shaped response carries,
// echoing the resolved filters so a client never has to re-derive what
// defaults applied.
type seriesMeta struct {
	Scenario  string `json:"scenario,omitempty"`
	Arm       string `json:"arm"`
	Metric    string `json:"metric"`
	Estimator string `json:"estimator"`
	N         int    `json:"n"`
}

func metaFor(q *reportQuery, n int) seriesMeta {
	return seriesMeta{
		Scenario:  q.scenario,
		Arm:       q.arm,
		Metric:    q.metricKey,
		Estimator: string(q.estimator),
		N:         n,
	}
}

type cdfResponse struct {
	seriesMeta
	Points []stats.CDFPoint `json:"points"`
}

type seriesResponse struct {
	seriesMeta
	Values []float64 `json:"values"`
}

type percentileValue struct {
	P     float64 `json:"p"`
	Value float64 `json:"value"`
}

type percentilesResponse struct {
	seriesMeta
	Percentiles []percentileValue `json:"percentiles"`
}

func buildReport(q *reportQuery, p *engine.Partials) any {
	return p.ReportFiltered(q.scenario, q.armOK())
}

func buildCDF(q *reportQuery, p *engine.Partials) any {
	series := p.Series(q.scenario, q.arm, q.estimator, q.metricIdx)
	points := stats.CDF(series)
	if points == nil {
		points = []stats.CDFPoint{}
	}
	return cdfResponse{seriesMeta: metaFor(q, len(series)), Points: points}
}

func buildSeries(q *reportQuery, p *engine.Partials) any {
	series := p.Series(q.scenario, q.arm, q.estimator, q.metricIdx)
	if series == nil {
		series = []float64{}
	}
	return seriesResponse{seriesMeta: metaFor(q, len(series)), Values: series}
}

func buildPercentiles(q *reportQuery, p *engine.Partials) any {
	series := p.Series(q.scenario, q.arm, q.estimator, q.metricIdx)
	vals := stats.Percentiles(series, q.percentiles)
	out := make([]percentileValue, len(vals)) // empty series: empty list, never NaN
	for i, v := range vals {
		out[i] = percentileValue{P: q.percentiles[i], Value: v}
	}
	return percentilesResponse{seriesMeta: metaFor(q, len(series)), Percentiles: out}
}

// rowCache is a small mutex-guarded LRU of decoded session rows.
type rowCache struct {
	mu           sync.Mutex
	cap          int
	ll           *list.List // front = most recent
	items        map[string]*list.Element
	hits, misses uint64
}

type rowItem struct {
	key string
	ver string
	row engine.SessionRow
}

func newRowCache(capacity int) *rowCache {
	return &rowCache{cap: capacity, ll: list.New(), items: make(map[string]*list.Element)}
}

// get returns the cached row for key only if it was cached at the same
// record version; a stale entry counts as a miss (and is replaced on
// the following put).
func (c *rowCache) get(key, ver string) (engine.SessionRow, bool) {
	if c.cap == 0 {
		return engine.SessionRow{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok && el.Value.(rowItem).ver == ver {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(rowItem).row, true
	}
	c.misses++
	return engine.SessionRow{}, false
}

func (c *rowCache) put(key, ver string, row engine.SessionRow) {
	if c.cap == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value = rowItem{key: key, ver: ver, row: row}
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(rowItem{key: key, ver: ver, row: row})
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(rowItem).key)
	}
}

func (c *rowCache) stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
