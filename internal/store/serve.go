package store

import (
	"container/list"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"veritas/internal/engine"
	"veritas/internal/telemetry"
	"veritas/internal/tracing"
)

// ServeOptions configures the HTTP query handler.
type ServeOptions struct {
	// CacheEntries bounds the in-process read cache of decoded session
	// rows (default 256; negative disables caching).
	CacheEntries int
	// Telemetry is the registry /metrics and /v1/status expose —
	// usually the campaign's, so engine and store metrics appear
	// alongside the serving layer's own request counters and row-cache
	// fold-ins. Nil gets a private registry: the endpoints then carry
	// serve-side metrics only.
	Telemetry *telemetry.Registry
	// Tracer, when set, records a tail-sampled trace per served request
	// (5xx responses count as errored) and is what GET /v1/trace exports
	// as Chrome trace-event JSON. Nil disables request tracing; the
	// endpoint then serves an empty (but valid) trace file.
	Tracer *tracing.Tracer
	// TraceSource, when set, overrides the trace set /v1/trace exports —
	// the facade uses it to serve a fleet-merged view (the campaign's own
	// traces plus what dispatch workers streamed up) instead of just the
	// local tracer's.
	TraceSource func() []tracing.Trace
}

func (o ServeOptions) cacheEntries() int {
	if o.CacheEntries == 0 {
		return 256
	}
	if o.CacheEntries < 0 {
		return 0
	}
	return o.CacheEntries
}

// NewHandler returns the HTTP query API over a store — the first brick
// of the serving layer: results persisted by campaigns are queryable
// without re-running any inference.
//
//	GET /healthz                  liveness + store and cache counters
//	GET /v1/sessions[?scenario=]  list stored sessions (index only, no payload reads)
//	GET /v1/sessions/{id}         one session's full what-if results
//	GET /v1/scenarios             scenario labels with session counts
//	GET /v1/report[?scenario=]    aggregate report (same JSON as the in-RAM aggregator);
//	                              carries a store-generation ETag and honors
//	                              If-None-Match with 304 Not Modified
//	GET /v1/status                store + telemetry snapshot as JSON
//	GET /metrics                  the telemetry registry in Prometheus text format
//
// Hot sessions are served from a bounded LRU of decoded rows, and
// aggregate reports are cached per scenario filter. The report cache is
// keyed to the store's session count, so a handler over a still-growing
// writable store (a campaign appending through the same *Store handle)
// recomputes when sessions land. A read-only store is a snapshot: its
// index is fixed at Open, so the handler serves the corpus as of that
// moment — restart (or reopen) to pick up a live campaign's progress.
type handler struct {
	s      *Store
	mux    *http.ServeMux
	rows   *rowCache
	reg    *telemetry.Registry
	trc    *tracing.Tracer
	traces func() []tracing.Trace

	mu      sync.Mutex
	reports map[string]cachedReport
}

type cachedReport struct {
	gen  uint64
	body []byte
}

// NewHandler builds the query handler over an open store.
func NewHandler(s *Store, opt ServeOptions) http.Handler {
	reg := opt.Telemetry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	h := &handler{
		s:       s,
		rows:    newRowCache(opt.cacheEntries()),
		reg:     reg,
		trc:     opt.Tracer,
		traces:  opt.TraceSource,
		reports: make(map[string]cachedReport),
	}
	if h.traces == nil {
		h.traces = opt.Tracer.Traces
	}
	// The row cache keeps its own counters (they predate telemetry);
	// fold them in as callback metrics rather than double-counting.
	reg.RegisterFunc("veritas_serve_row_cache_hits_total", telemetry.CounterFunc, func() float64 {
		hits, _ := h.rows.stats()
		return float64(hits)
	})
	reg.RegisterFunc("veritas_serve_row_cache_misses_total", telemetry.CounterFunc, func() float64 {
		_, misses := h.rows.stats()
		return float64(misses)
	})
	mux := http.NewServeMux()
	h.route(mux, "GET /healthz", "/healthz", h.health)
	h.route(mux, "GET /v1/sessions", "/v1/sessions", h.sessions)
	h.route(mux, "GET /v1/sessions/{id}", "/v1/sessions/{id}", h.session)
	h.route(mux, "GET /v1/scenarios", "/v1/scenarios", h.scenarios)
	h.route(mux, "GET /v1/report", "/v1/report", h.report)
	h.route(mux, "GET /v1/status", "/v1/status", h.status)
	h.route(mux, "GET /v1/trace", "/v1/trace", h.trace)
	mux.HandleFunc("GET /metrics", h.metrics)
	h.mux = mux
	return h
}

// route registers fn on the mux with a per-endpoint request counter and
// latency histogram spliced in front. path is the label value (the mux
// pattern minus its method). With a tracer present each request also
// becomes a tail-sampled trace (5xx = errored); without one the
// response writer is passed through untouched.
func (h *handler) route(mux *http.ServeMux, pattern, path string, fn http.HandlerFunc) {
	reqs := h.reg.Counter(fmt.Sprintf("veritas_serve_requests_total{path=%q}", path))
	lat := h.reg.Histogram(fmt.Sprintf("veritas_serve_request_seconds{path=%q}", path))
	mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		reqs.Inc()
		if h.trc == nil {
			fn(w, r)
			lat.Since(t0)
			return
		}
		tb := h.trc.Start("request", path)
		sw := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		fn(sw, r)
		tb.SetAttr("status", sw.code)
		var err error
		if sw.code >= 500 {
			err = fmt.Errorf("HTTP %d", sw.code)
		}
		tb.Finish(err)
		lat.Since(t0)
	})
}

// statusRecorder captures the response code for request traces.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (s *statusRecorder) WriteHeader(code int) {
	s.code = code
	s.ResponseWriter.WriteHeader(code)
}

// trace exports the notable-trace set as Chrome trace-event JSON,
// loadable in Perfetto or chrome://tracing.
func (h *handler) trace(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := tracing.WriteChrome(w, h.traces()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (h *handler) metrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	h.reg.WritePrometheus(w)
}

func (h *handler) status(w http.ResponseWriter, r *http.Request) {
	hits, misses := h.rows.stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"sessions":       h.s.Len(),
		"scenarios":      len(h.s.Scenarios()),
		"generation":     h.s.Generation(),
		"recoveredBytes": h.s.Recovered(),
		"cache":          map[string]uint64{"hits": hits, "misses": misses},
		"telemetry":      h.reg.Snapshot(),
	})
}

func (h *handler) ServeHTTP(w http.ResponseWriter, r *http.Request) { h.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

func (h *handler) health(w http.ResponseWriter, r *http.Request) {
	hits, misses := h.rows.stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"sessions":       h.s.Len(),
		"recoveredBytes": h.s.Recovered(),
		"cacheHits":      hits,
		"cacheMisses":    misses,
	})
}

func (h *handler) sessions(w http.ResponseWriter, r *http.Request) {
	infos := h.s.Sessions(r.URL.Query().Get("scenario"))
	if infos == nil {
		infos = []SessionInfo{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"count": len(infos), "sessions": infos})
}

func (h *handler) session(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	// The record's version (its on-disk location) gates the cache:
	// overwriting a session moves it, so the stale row misses, while
	// untouched hot sessions keep hitting however much the rest of the
	// store grows.
	ver, ok := h.s.Version(id)
	if !ok {
		http.Error(w, "unknown session "+id, http.StatusNotFound)
		return
	}
	if row, ok := h.rows.get(id, ver); ok {
		writeJSON(w, http.StatusOK, row)
		return
	}
	row, ok, err := h.s.Get(id)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if !ok {
		http.Error(w, "unknown session "+id, http.StatusNotFound)
		return
	}
	h.rows.put(id, ver, row)
	writeJSON(w, http.StatusOK, row)
}

func (h *handler) scenarios(w http.ResponseWriter, r *http.Request) {
	scens := h.s.Scenarios()
	if scens == nil {
		scens = []ScenarioInfo{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"scenarios": scens})
}

// reportETag derives the report's validator from the store generation:
// the generation moves on every append (including same-key overwrites),
// so an unchanged tag proves the aggregate is still current for any
// scenario filter.
func reportETag(gen uint64) string { return fmt.Sprintf("\"report-%d\"", gen) }

// etagMatches implements the If-None-Match comparison for the strong
// validators this handler emits: a wildcard or any listed tag equal to
// the current one.
func etagMatches(header, etag string) bool {
	for _, candidate := range strings.Split(header, ",") {
		candidate = strings.TrimSpace(candidate)
		// Weak-comparison prefix: a cache may legitimately send back
		// W/"..." for a tag it received strong.
		candidate = strings.TrimPrefix(candidate, "W/")
		if candidate == "*" || candidate == etag {
			return true
		}
	}
	return false
}

func (h *handler) report(w http.ResponseWriter, r *http.Request) {
	scenario := r.URL.Query().Get("scenario")
	// Cache first: a cached body at the current generation proves the
	// scenario was valid when it was built and nothing changed since,
	// so the hot path skips the O(sessions) validation scan entirely.
	gen := h.s.Generation()
	etag := reportETag(gen)
	h.mu.Lock()
	if c, ok := h.reports[scenario]; ok && c.gen == gen {
		h.mu.Unlock()
		w.Header().Set("ETag", etag)
		if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatches(inm, etag) {
			w.WriteHeader(http.StatusNotModified)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(c.body)
		return
	}
	h.mu.Unlock()
	if scenario != "" {
		// Reject unknown scenarios: an empty 200 report would mask
		// typos, and caching per arbitrary query value would let
		// clients grow the report cache without bound.
		known := false
		for _, sc := range h.s.Scenarios() {
			if sc.Scenario == scenario {
				known = true
				break
			}
		}
		if !known {
			http.Error(w, "unknown scenario "+scenario, http.StatusNotFound)
			return
		}
	}
	// The tag is generation-keyed, so a match makes recomputing the
	// aggregate pointless even when no body is cached — but it must
	// come after scenario validation, or a conditional request could
	// turn a 404 into a 304.
	if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatches(inm, etag) {
		w.Header().Set("ETag", etag)
		w.WriteHeader(http.StatusNotModified)
		return
	}

	agg, err := h.s.AggregateScenario(scenario)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	body, err := json.Marshal(agg.Report())
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	h.mu.Lock()
	h.reports[scenario] = cachedReport{gen: gen, body: body}
	h.mu.Unlock()
	w.Header().Set("ETag", etag)
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

// rowCache is a small mutex-guarded LRU of decoded session rows.
type rowCache struct {
	mu           sync.Mutex
	cap          int
	ll           *list.List // front = most recent
	items        map[string]*list.Element
	hits, misses uint64
}

type rowItem struct {
	key string
	ver string
	row engine.SessionRow
}

func newRowCache(capacity int) *rowCache {
	return &rowCache{cap: capacity, ll: list.New(), items: make(map[string]*list.Element)}
}

// get returns the cached row for key only if it was cached at the same
// record version; a stale entry counts as a miss (and is replaced on
// the following put).
func (c *rowCache) get(key, ver string) (engine.SessionRow, bool) {
	if c.cap == 0 {
		return engine.SessionRow{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok && el.Value.(rowItem).ver == ver {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(rowItem).row, true
	}
	c.misses++
	return engine.SessionRow{}, false
}

func (c *rowCache) put(key, ver string, row engine.SessionRow) {
	if c.cap == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value = rowItem{key: key, ver: ver, row: row}
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(rowItem{key: key, ver: ver, row: row})
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(rowItem).key)
	}
}

func (c *rowCache) stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
