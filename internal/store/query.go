package store

// The /v1 query surface's shared request grammar. Every report-family
// endpoint accepts the same filter parameters, parsed in one place:
//
//	scenario=<label>     restrict to one scenario (absent = whole corpus;
//	                     present-but-empty is an unknown scenario, 404)
//	abr=<prefix>         restrict the report to arms named <prefix> or
//	                     <prefix>-*  (arm names are "<abr>" or "<abr>-variant")
//	arm=<name>           one arm exactly (the series endpoints require it)
//	metric=<key>         report metric: ssim | rebuf | bitrate (default ssim)
//	estimator=<name>     truth | baseline | veritas-low | veritas-high |
//	                     veritas-mid (default veritas-mid)
//	percentiles=a,b,c    percentile ranks in [0,100] (default
//	                     10,25,50,75,90,95,99; at most 32)
//
// Parsing is purely syntactic — 400s come from here; whether a
// scenario or arm actually exists is the handler's store-backed
// validation, which 404s. Errors from both wear one JSON envelope:
//
//	{"error": {"status": 404, "message": "...", "param": "scenario"}}
//
// so clients branch on one shape whatever went wrong, and the param
// field says which query parameter to fix.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"veritas/internal/engine"
)

// maxPercentiles bounds one request's percentile list.
const maxPercentiles = 32

// defaultPercentiles is served when the parameter is absent.
var defaultPercentiles = []float64{10, 25, 50, 75, 90, 95, 99}

// apiError is one /v1 error, rendered inside the shared envelope.
type apiError struct {
	Status  int    `json:"status"`
	Message string `json:"message"`
	// Param names the query parameter at fault, when one is.
	Param string `json:"param,omitempty"`
}

// writeAPIError renders err in the uniform /v1 envelope.
func writeAPIError(w http.ResponseWriter, err *apiError) {
	body, merr := json.Marshal(map[string]*apiError{"error": err})
	if merr != nil {
		http.Error(w, err.Message, err.Status)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(err.Status)
	w.Write(body)
}

func errBadParam(param, format string, args ...any) *apiError {
	return &apiError{Status: http.StatusBadRequest, Message: fmt.Sprintf(format, args...), Param: param}
}

func errNotFound(param, format string, args ...any) *apiError {
	return &apiError{Status: http.StatusNotFound, Message: fmt.Sprintf(format, args...), Param: param}
}

func errInternal(err error) *apiError {
	return &apiError{Status: http.StatusInternalServerError, Message: err.Error()}
}

// reportQuery is one parsed report-family request.
type reportQuery struct {
	scenario    string
	scenarioSet bool // the parameter was present (even if empty)
	abr         string
	arm         string
	metricKey   string // canonical key, e.g. "ssim"
	metricIdx   int    // index into engine.ReportMetrics
	estimator   engine.ArmEstimator
	percentiles []float64
	rawPcts     string // verbatim parameter, for cache keys
}

// cacheKey is the canonical identity of the query for response caches.
// Raw parameter spellings that parse to the same query share a key
// through the canonical fields; percentiles keep their raw spelling
// (the list is order-sensitive in the response).
func (q *reportQuery) cacheKey(endpoint string) string {
	scen := q.scenario
	if q.scenarioSet {
		scen = "=" + scen
	}
	return strings.Join([]string{endpoint, scen, q.abr, q.arm, q.metricKey, string(q.estimator), q.rawPcts}, "\x00")
}

// armOK returns the ABR-prefix arm filter, nil when unfiltered. Arm
// names are "<abr>" or "<abr>-<variant>", so the filter accepts exact
// matches and the "-" extension, never bare prefixes ("bba" must not
// catch "bbasic").
func (q *reportQuery) armOK() func(string) bool {
	if q.abr == "" {
		return nil
	}
	abr := q.abr
	return func(name string) bool {
		return name == abr || strings.HasPrefix(name, abr+"-")
	}
}

// parseReportQuery parses the shared filter grammar; nil apiError on
// success. Syntactic only — existence checks live with the store.
func parseReportQuery(vals url.Values) (*reportQuery, *apiError) {
	q := &reportQuery{
		scenario:    vals.Get("scenario"),
		scenarioSet: vals.Has("scenario"),
		abr:         vals.Get("abr"),
		arm:         vals.Get("arm"),
		estimator:   engine.EstVeritasMid,
		metricKey:   engine.ReportMetrics()[0].Key,
		rawPcts:     vals.Get("percentiles"),
	}
	if m := vals.Get("metric"); m != "" {
		idx, ok := engine.MetricIndex(m)
		if !ok {
			return nil, errBadParam("metric", "unknown metric %q (want one of %s)", m, metricKeys())
		}
		q.metricIdx = idx
		q.metricKey = engine.ReportMetrics()[idx].Key
	}
	if e := vals.Get("estimator"); e != "" {
		est, ok := engine.ParseEstimator(e)
		if !ok {
			return nil, errBadParam("estimator", "unknown estimator %q (want one of %s)", e, estimatorNames())
		}
		q.estimator = est
	}
	if q.rawPcts == "" {
		q.percentiles = defaultPercentiles
		return q, nil
	}
	parts := strings.Split(q.rawPcts, ",")
	if len(parts) > maxPercentiles {
		return nil, errBadParam("percentiles", "at most %d percentiles per request (got %d)", maxPercentiles, len(parts))
	}
	for _, part := range parts {
		p, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, errBadParam("percentiles", "percentile %q is not a number", strings.TrimSpace(part))
		}
		if p < 0 || p > 100 {
			return nil, errBadParam("percentiles", "percentile %g outside [0, 100]", p)
		}
		q.percentiles = append(q.percentiles, p)
	}
	return q, nil
}

func metricKeys() string {
	var keys []string
	for _, m := range engine.ReportMetrics() {
		keys = append(keys, m.Key)
	}
	return strings.Join(keys, ", ")
}

func estimatorNames() string {
	var names []string
	for _, est := range engine.Estimators() {
		names = append(names, string(est))
	}
	return strings.Join(names, ", ")
}
