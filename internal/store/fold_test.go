package store

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// shardStore creates a store carrying shard metadata and the given
// rows, closed and ready to fold.
func shardStore(t *testing.T, meta ShardMeta, rows []int, scenario string) string {
	t.Helper()
	dir := t.TempDir()
	s, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range rows {
		if err := s.Append(testRow(i, scenario)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := WriteShardMeta(dir, meta); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestFoldOrdersByShardIndex pins the determinism fix for duplicate
// keys across shards: last-write-wins resolves by recorded shard
// index, not by the order the caller happened to list the
// directories, so every enumeration order folds byte-identically.
func TestFoldOrdersByShardIndex(t *testing.T) {
	// Both shards hold fcc-002; shard 1 computed a different outcome.
	dir0 := shardStore(t, ShardMeta{Index: 0, Count: 2}, []int{0, 1, 2}, "fcc")
	dir1 := t.TempDir()
	s, err := Create(dir1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dup := testRow(2, "fcc")
	dup.SettingA.AvgSSIM = 0.5
	for _, row := range []int{3, 4} {
		if err := s.Append(testRow(row, "fcc")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Append(dup); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := WriteShardMeta(dir1, ShardMeta{Index: 1, Count: 2}); err != nil {
		t.Fatal(err)
	}

	fold := func(srcs ...string) (string, []byte) {
		t.Helper()
		dst := filepath.Join(t.TempDir(), "folded")
		n, err := Fold(dst, Options{}, srcs...)
		if err != nil {
			t.Fatal(err)
		}
		if n != 5 {
			t.Fatalf("Fold kept %d sessions, want 5", n)
		}
		ro, err := Open(dst, Options{ReadOnly: true})
		if err != nil {
			t.Fatal(err)
		}
		defer ro.Close()
		got, ok, err := ro.Get("fcc-002")
		if err != nil || !ok {
			t.Fatalf("folded store lost fcc-002: ok=%v err=%v", ok, err)
		}
		if got.SettingA.AvgSSIM != 0.5 {
			t.Errorf("duplicate key resolved to shard 0's record (SSIM %v), want shard 1's", got.SettingA.AvgSSIM)
		}
		agg, err := ro.Aggregate()
		if err != nil {
			t.Fatal(err)
		}
		rep, err := json.Marshal(agg.Report())
		if err != nil {
			t.Fatal(err)
		}
		return dst, rep
	}

	_, repA := fold(dir0, dir1)
	_, repB := fold(dir1, dir0) // reversed listing: same fold
	if !bytes.Equal(repA, repB) {
		t.Fatalf("fold order changed the folded report\nA: %s\nB: %s", repA, repB)
	}
}

func TestFoldRefusesDuplicateShards(t *testing.T) {
	dirA := shardStore(t, ShardMeta{Index: 0, Count: 2}, []int{0}, "fcc")
	dirB := shardStore(t, ShardMeta{Index: 0, Count: 2}, []int{1}, "fcc")
	if _, err := Fold(filepath.Join(t.TempDir(), "out"), Options{}, dirA, dirB); err == nil ||
		!strings.Contains(err.Error(), "both claim shard") {
		t.Errorf("duplicate shard indices folded: err = %v", err)
	}
	dirC := shardStore(t, ShardMeta{Index: 1, Count: 3}, []int{2}, "fcc")
	if _, err := Fold(filepath.Join(t.TempDir(), "out"), Options{}, dirA, dirC); err == nil ||
		!strings.Contains(err.Error(), "disagree on shard count") {
		t.Errorf("mismatched shard counts folded: err = %v", err)
	}
}

// TestFoldRefusesMixedSources: one metadata-less source must not
// silently disable the shard validation for every other source.
func TestFoldRefusesMixedSources(t *testing.T) {
	dir0 := shardStore(t, ShardMeta{Index: 0, Count: 2}, []int{0}, "fcc")
	dir1 := shardStore(t, ShardMeta{Index: 1, Count: 2}, []int{1}, "fcc")
	plain := t.TempDir()
	s, err := Create(plain, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(testRow(2, "fcc")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := Fold(filepath.Join(t.TempDir(), "out"), Options{}, dir0, dir1, plain); err == nil ||
		!strings.Contains(err.Error(), "mixes shard stores") {
		t.Errorf("mixed shard and plain sources folded: err = %v", err)
	}
}

// TestFoldRefusesMissingShard: folding 2 of 3 shards must fail loudly
// — a partial fold under the full campaign fingerprint would serve an
// incomplete corpus as if it were the whole campaign.
func TestFoldRefusesMissingShard(t *testing.T) {
	dir0 := shardStore(t, ShardMeta{Index: 0, Count: 3}, []int{0}, "fcc")
	dir2 := shardStore(t, ShardMeta{Index: 2, Count: 3}, []int{2}, "fcc")
	if _, err := Fold(filepath.Join(t.TempDir(), "out"), Options{}, dir0, dir2); err == nil ||
		!strings.Contains(err.Error(), "missing shard(s) [1]") {
		t.Errorf("incomplete shard set folded: err = %v", err)
	}
}

// TestFoldPropagatesCampaignFingerprint: the folded store carries the
// shards' campaign.json (so it opens as the whole campaign), never
// their shard.json, and conflicting fingerprints refuse to fold.
func TestFoldPropagatesCampaignFingerprint(t *testing.T) {
	fp := []byte(`{"Seed": 7}`)
	dirs := make([]string, 2)
	for i := range dirs {
		dirs[i] = shardStore(t, ShardMeta{Index: i, Count: 2}, []int{i}, "fcc")
		if err := os.WriteFile(filepath.Join(dirs[i], CampaignMetaFile), fp, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	dst := filepath.Join(t.TempDir(), "folded")
	if _, err := Fold(dst, Options{}, dirs...); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(dst, CampaignMetaFile))
	if err != nil || !bytes.Equal(got, fp) {
		t.Errorf("folded campaign.json = %q, %v; want the shards' fingerprint", got, err)
	}
	if _, ok, _ := ReadShardMeta(dst); ok {
		t.Error("folded store still carries shard.json")
	}
	// The folded store must open under the same fingerprint.
	s, err := OpenCampaign(dst, Options{}, fp)
	if err != nil {
		t.Fatalf("folded store refused its own fingerprint: %v", err)
	}
	s.Close()

	// Conflicting fingerprints refuse to fold.
	if err := os.WriteFile(filepath.Join(dirs[1], CampaignMetaFile), []byte(`{"Seed": 8}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Fold(filepath.Join(t.TempDir(), "bad"), Options{}, dirs...); err == nil {
		t.Error("conflicting campaign fingerprints folded silently")
	}
}

func TestFoldWithoutShardMetaKeepsCallerOrder(t *testing.T) {
	// Pre-shard stores: no shard.json anywhere, so Fold degrades to
	// Merge semantics — the later-listed source wins.
	mk := func(ssim float64) string {
		dir := t.TempDir()
		s, err := Create(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		row := testRow(0, "fcc")
		row.SettingA.AvgSSIM = ssim
		if err := s.Append(row); err != nil {
			t.Fatal(err)
		}
		s.Close()
		return dir
	}
	dirA, dirB := mk(0.1), mk(0.2)
	dst := filepath.Join(t.TempDir(), "folded")
	if _, err := Fold(dst, Options{}, dirA, dirB); err != nil {
		t.Fatal(err)
	}
	ro, err := Open(dst, Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	got, _, err := ro.Get("fcc-000")
	if err != nil {
		t.Fatal(err)
	}
	if got.SettingA.AvgSSIM != 0.2 {
		t.Errorf("caller-order fold kept SSIM %v, want the later source's 0.2", got.SettingA.AvgSSIM)
	}
}

func TestShardMetaRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if _, ok, err := ReadShardMeta(dir); ok || err != nil {
		t.Fatalf("empty dir: ok=%v err=%v", ok, err)
	}
	if err := WriteShardMeta(dir, ShardMeta{Index: 3, Count: 1}); err == nil {
		t.Error("invalid shard meta accepted")
	}
	want := ShardMeta{Index: 2, Count: 5}
	if err := WriteShardMeta(dir, want); err != nil {
		t.Fatal(err)
	}
	got, ok, err := ReadShardMeta(dir)
	if err != nil || !ok || got != want {
		t.Fatalf("ReadShardMeta = %+v, %v, %v; want %+v", got, ok, err, want)
	}
	// An impossible on-disk assignment (hand-edited or corrupt) must
	// read as an error, not slip past Fold's completeness accounting.
	if err := os.WriteFile(filepath.Join(dir, ShardMetaFile), []byte(`{"Index":5,"Count":2}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadShardMeta(dir); err == nil || !strings.Contains(err.Error(), "impossible shard") {
		t.Errorf("impossible shard.json read back: err = %v", err)
	}
}

// TestFoldRefusesImpossibleShardMeta: a source whose shard.json claims
// an out-of-range index must fail the fold loudly — counting it toward
// completeness would let a real shard go silently missing.
func TestFoldRefusesImpossibleShardMeta(t *testing.T) {
	dir0 := shardStore(t, ShardMeta{Index: 0, Count: 2}, []int{0}, "fcc")
	dirBad := shardStore(t, ShardMeta{Index: 1, Count: 2}, []int{1}, "fcc")
	if err := os.WriteFile(filepath.Join(dirBad, ShardMetaFile), []byte(`{"Index":5,"Count":2}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Fold(filepath.Join(t.TempDir(), "out"), Options{}, dir0, dirBad); err == nil ||
		!strings.Contains(err.Error(), "impossible shard") {
		t.Errorf("fold accepted an impossible shard.json: err = %v", err)
	}
}
