package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// shardStore creates a store carrying shard metadata and the given
// rows, closed and ready to fold.
func shardStore(t *testing.T, meta ShardMeta, rows []int, scenario string) string {
	t.Helper()
	dir := t.TempDir()
	s, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range rows {
		if err := s.Append(testRow(i, scenario)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := WriteShardMeta(dir, meta); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestFoldOrdersByShardIndex pins the determinism fix for duplicate
// keys across shards: last-write-wins resolves by recorded shard
// index, not by the order the caller happened to list the
// directories, so every enumeration order folds byte-identically.
func TestFoldOrdersByShardIndex(t *testing.T) {
	// Both shards hold fcc-002; shard 1 computed a different outcome.
	dir0 := shardStore(t, ShardMeta{Index: 0, Count: 2}, []int{0, 1, 2}, "fcc")
	dir1 := t.TempDir()
	s, err := Create(dir1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dup := testRow(2, "fcc")
	dup.SettingA.AvgSSIM = 0.5
	for _, row := range []int{3, 4} {
		if err := s.Append(testRow(row, "fcc")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Append(dup); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := WriteShardMeta(dir1, ShardMeta{Index: 1, Count: 2}); err != nil {
		t.Fatal(err)
	}

	fold := func(srcs ...string) (string, []byte) {
		t.Helper()
		dst := filepath.Join(t.TempDir(), "folded")
		n, err := Fold(dst, Options{}, srcs...)
		if err != nil {
			t.Fatal(err)
		}
		if n != 5 {
			t.Fatalf("Fold kept %d sessions, want 5", n)
		}
		ro, err := Open(dst, Options{ReadOnly: true})
		if err != nil {
			t.Fatal(err)
		}
		defer ro.Close()
		got, ok, err := ro.Get("fcc-002")
		if err != nil || !ok {
			t.Fatalf("folded store lost fcc-002: ok=%v err=%v", ok, err)
		}
		if got.SettingA.AvgSSIM != 0.5 {
			t.Errorf("duplicate key resolved to shard 0's record (SSIM %v), want shard 1's", got.SettingA.AvgSSIM)
		}
		agg, err := ro.Aggregate()
		if err != nil {
			t.Fatal(err)
		}
		rep, err := json.Marshal(agg.Report())
		if err != nil {
			t.Fatal(err)
		}
		return dst, rep
	}

	_, repA := fold(dir0, dir1)
	_, repB := fold(dir1, dir0) // reversed listing: same fold
	if !bytes.Equal(repA, repB) {
		t.Fatalf("fold order changed the folded report\nA: %s\nB: %s", repA, repB)
	}
}

func TestFoldRefusesDuplicateShards(t *testing.T) {
	dirA := shardStore(t, ShardMeta{Index: 0, Count: 2}, []int{0}, "fcc")
	dirB := shardStore(t, ShardMeta{Index: 0, Count: 2}, []int{1}, "fcc")
	if _, err := Fold(filepath.Join(t.TempDir(), "out"), Options{}, dirA, dirB); err == nil ||
		!strings.Contains(err.Error(), "both claim shard") {
		t.Errorf("duplicate shard indices folded: err = %v", err)
	}
	dirC := shardStore(t, ShardMeta{Index: 1, Count: 3}, []int{2}, "fcc")
	if _, err := Fold(filepath.Join(t.TempDir(), "out"), Options{}, dirA, dirC); err == nil ||
		!strings.Contains(err.Error(), "disagree on shard count") {
		t.Errorf("mismatched shard counts folded: err = %v", err)
	}
}

// TestFoldRefusesMixedSources: one metadata-less source must not
// silently disable the shard validation for every other source.
func TestFoldRefusesMixedSources(t *testing.T) {
	dir0 := shardStore(t, ShardMeta{Index: 0, Count: 2}, []int{0}, "fcc")
	dir1 := shardStore(t, ShardMeta{Index: 1, Count: 2}, []int{1}, "fcc")
	plain := t.TempDir()
	s, err := Create(plain, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(testRow(2, "fcc")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := Fold(filepath.Join(t.TempDir(), "out"), Options{}, dir0, dir1, plain); err == nil ||
		!strings.Contains(err.Error(), "mixes shard stores") {
		t.Errorf("mixed shard and plain sources folded: err = %v", err)
	}
}

// TestFoldRefusesMissingShard: folding 2 of 3 shards must fail loudly
// — a partial fold under the full campaign fingerprint would serve an
// incomplete corpus as if it were the whole campaign.
func TestFoldRefusesMissingShard(t *testing.T) {
	dir0 := shardStore(t, ShardMeta{Index: 0, Count: 3}, []int{0}, "fcc")
	dir2 := shardStore(t, ShardMeta{Index: 2, Count: 3}, []int{2}, "fcc")
	if _, err := Fold(filepath.Join(t.TempDir(), "out"), Options{}, dir0, dir2); err == nil ||
		!strings.Contains(err.Error(), "missing shard(s) [1]") {
		t.Errorf("incomplete shard set folded: err = %v", err)
	}
}

// TestFoldPropagatesCampaignFingerprint: the folded store carries the
// shards' campaign.json (so it opens as the whole campaign), never
// their shard.json, and conflicting fingerprints refuse to fold.
func TestFoldPropagatesCampaignFingerprint(t *testing.T) {
	fp := []byte(`{"Seed": 7}`)
	dirs := make([]string, 2)
	for i := range dirs {
		dirs[i] = shardStore(t, ShardMeta{Index: i, Count: 2}, []int{i}, "fcc")
		if err := os.WriteFile(filepath.Join(dirs[i], CampaignMetaFile), fp, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	dst := filepath.Join(t.TempDir(), "folded")
	if _, err := Fold(dst, Options{}, dirs...); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(dst, CampaignMetaFile))
	if err != nil || !bytes.Equal(got, fp) {
		t.Errorf("folded campaign.json = %q, %v; want the shards' fingerprint", got, err)
	}
	if _, ok, _ := ReadShardMeta(dst); ok {
		t.Error("folded store still carries shard.json")
	}
	// The folded store must open under the same fingerprint.
	s, err := OpenCampaign(dst, Options{}, fp)
	if err != nil {
		t.Fatalf("folded store refused its own fingerprint: %v", err)
	}
	s.Close()

	// Conflicting fingerprints refuse to fold.
	if err := os.WriteFile(filepath.Join(dirs[1], CampaignMetaFile), []byte(`{"Seed": 8}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Fold(filepath.Join(t.TempDir(), "bad"), Options{}, dirs...); err == nil {
		t.Error("conflicting campaign fingerprints folded silently")
	}
}

func TestFoldWithoutShardMetaKeepsCallerOrder(t *testing.T) {
	// Pre-shard stores: no shard.json anywhere, so Fold degrades to
	// Merge semantics — the later-listed source wins.
	mk := func(ssim float64) string {
		dir := t.TempDir()
		s, err := Create(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		row := testRow(0, "fcc")
		row.SettingA.AvgSSIM = ssim
		if err := s.Append(row); err != nil {
			t.Fatal(err)
		}
		s.Close()
		return dir
	}
	dirA, dirB := mk(0.1), mk(0.2)
	dst := filepath.Join(t.TempDir(), "folded")
	if _, err := Fold(dst, Options{}, dirA, dirB); err != nil {
		t.Fatal(err)
	}
	ro, err := Open(dst, Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	got, _, err := ro.Get("fcc-000")
	if err != nil {
		t.Fatal(err)
	}
	if got.SettingA.AvgSSIM != 0.2 {
		t.Errorf("caller-order fold kept SSIM %v, want the later source's 0.2", got.SettingA.AvgSSIM)
	}
}

func TestShardMetaRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if _, ok, err := ReadShardMeta(dir); ok || err != nil {
		t.Fatalf("empty dir: ok=%v err=%v", ok, err)
	}
	if err := WriteShardMeta(dir, ShardMeta{Index: 3, Count: 1}); err == nil {
		t.Error("invalid shard meta accepted")
	}
	want := ShardMeta{Index: 2, Count: 5}
	if err := WriteShardMeta(dir, want); err != nil {
		t.Fatal(err)
	}
	got, ok, err := ReadShardMeta(dir)
	if err != nil || !ok || got != want {
		t.Fatalf("ReadShardMeta = %+v, %v, %v; want %+v", got, ok, err, want)
	}
	// An impossible on-disk assignment (hand-edited or corrupt) must
	// read as an error, not slip past Fold's completeness accounting.
	if err := os.WriteFile(filepath.Join(dir, ShardMetaFile), []byte(`{"Index":5,"Count":2}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadShardMeta(dir); err == nil || !strings.Contains(err.Error(), "impossible shard") {
		t.Errorf("impossible shard.json read back: err = %v", err)
	}
}

// TestFoldRefusesImpossibleShardMeta: a source whose shard.json claims
// an out-of-range index must fail the fold loudly — counting it toward
// completeness would let a real shard go silently missing.
func TestFoldRefusesImpossibleShardMeta(t *testing.T) {
	dir0 := shardStore(t, ShardMeta{Index: 0, Count: 2}, []int{0}, "fcc")
	dirBad := shardStore(t, ShardMeta{Index: 1, Count: 2}, []int{1}, "fcc")
	if err := os.WriteFile(filepath.Join(dirBad, ShardMetaFile), []byte(`{"Index":5,"Count":2}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Fold(filepath.Join(t.TempDir(), "out"), Options{}, dir0, dirBad); err == nil ||
		!strings.Contains(err.Error(), "impossible shard") {
		t.Errorf("fold accepted an impossible shard.json: err = %v", err)
	}
}

// TestDiscoverShards: parent-directory enumeration finds exactly the
// subdirectories carrying shard.json, ordered by shard index, and
// refuses to skip a child whose shard.json is broken.
func TestDiscoverShards(t *testing.T) {
	parent := t.TempDir()
	// Shard stores laid out under names that do NOT sort by index.
	for name, meta := range map[string]ShardMeta{
		"z-first.store": {Index: 0, Count: 3},
		"a-last.store":  {Index: 2, Count: 3},
		"m-mid.store":   {Index: 1, Count: 3},
	} {
		dir := filepath.Join(parent, name)
		s, err := Create(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		s.Close()
		if err := WriteShardMeta(dir, meta); err != nil {
			t.Fatal(err)
		}
	}
	// Noise that must not be discovered: a plain subdirectory and a file.
	if err := os.MkdirAll(filepath.Join(parent, "notes"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(parent, "README"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	got, err := DiscoverShards(parent)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		filepath.Join(parent, "z-first.store"),
		filepath.Join(parent, "m-mid.store"),
		filepath.Join(parent, "a-last.store"),
	}
	if len(got) != len(want) {
		t.Fatalf("DiscoverShards = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("DiscoverShards[%d] = %s, want %s (index order)", i, got[i], want[i])
		}
	}

	// A broken child must fail discovery, not silently vanish from it.
	if err := os.WriteFile(filepath.Join(parent, "m-mid.store", ShardMetaFile), []byte(`{"Index":9,"Count":3}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := DiscoverShards(parent); err == nil || !strings.Contains(err.Error(), "impossible shard") {
		t.Errorf("broken child discovered without error: err = %v", err)
	}

	// An empty parent discovers nothing, without error.
	if kids, err := DiscoverShards(t.TempDir()); err != nil || len(kids) != 0 {
		t.Errorf("empty parent: kids=%v err=%v", kids, err)
	}
}

// TestFoldExpandsParentDirectory: Fold accepts the parent directory a
// dispatcher laid its shard stores in, equivalently to listing every
// shard store by hand.
func TestFoldExpandsParentDirectory(t *testing.T) {
	parent := t.TempDir()
	dirs := make([]string, 2)
	for i := range dirs {
		dirs[i] = filepath.Join(parent, fmt.Sprintf("shard-%d.store", i))
		s, err := Create(dirs[i], Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Append(testRow(i, "fcc")); err != nil {
			t.Fatal(err)
		}
		s.Close()
		if err := WriteShardMeta(dirs[i], ShardMeta{Index: i, Count: 2}); err != nil {
			t.Fatal(err)
		}
	}

	byHand := filepath.Join(t.TempDir(), "byhand")
	nHand, err := Fold(byHand, Options{}, dirs[0], dirs[1])
	if err != nil {
		t.Fatal(err)
	}
	byParent := filepath.Join(t.TempDir(), "byparent")
	nParent, err := Fold(byParent, Options{}, parent)
	if err != nil {
		t.Fatalf("Fold over the parent directory: %v", err)
	}
	if nHand != 2 || nParent != 2 {
		t.Fatalf("folded %d / %d sessions, want 2 / 2", nHand, nParent)
	}
	a, err := Open(byHand, Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Open(byParent, Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	ka, kb := a.Keys(), b.Keys()
	if len(ka) != len(kb) {
		t.Fatalf("key counts differ: %d vs %d", len(ka), len(kb))
	}
	for i := range ka {
		if ka[i] != kb[i] {
			t.Errorf("key %d differs: %s vs %s", i, ka[i], kb[i])
		}
	}

	// Expansion still validates completeness: removing one shard store
	// from the parent must refuse the fold, not fold the remainder.
	if err := os.RemoveAll(dirs[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := Fold(filepath.Join(t.TempDir(), "partial"), Options{}, parent); err == nil ||
		!strings.Contains(err.Error(), "missing shard") {
		t.Errorf("partial parent folded: err = %v", err)
	}
}
