package store

// Store shipping: the wire format a fleet agent uses to send a
// completed shard store to its dispatcher, and the verification the
// dispatcher runs before accepting it.
//
// A shipped store is a single stream:
//
//	8 bytes  magic "VSHIP1\n\x00"
//	per file (sorted by name, so the stream is deterministic):
//	  u32 nameLen | u64 size | u32 crc32(IEEE, content) | name | content
//	trailer:
//	  u32 0 (end of files) | u32 fileCount
//
// Only the files that *are* the store travel: campaign.json,
// shard.json, segments (seg-*.vseg) and their sidecar indexes
// (seg-*.vidx). The LOCK file is host-local state and never ships;
// stray temporaries are skipped. Receive verifies every frame's CRC
// and refuses path separators in names (an archive must not write
// outside its target directory), and VerifyShard then proves the
// received directory really is shard i of n of the expected campaign
// before the dispatcher accepts it into the fold set.

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
)

const (
	shipMagic = "VSHIP1\n\x00"
	// shipMaxFileSize bounds one shipped file (segments rotate at
	// Options.SegmentBytes, default 1MB, so 1GB is three orders of
	// magnitude of headroom — anything larger is a corrupt length
	// field, not a real segment).
	shipMaxFileSize = 1 << 30
	// shipMaxFiles bounds the archive's file count against corrupt or
	// hostile trailers.
	shipMaxFiles = 1 << 20
)

// ErrShipCorrupt reports a structurally invalid or CRC-failing
// shipped-store stream.
var ErrShipCorrupt = errors.New("store: shipped store corrupt")

// shippable says whether name is part of the store proper. The LOCK
// file is the local writer flock (meaningless on another host);
// anything else unexpected (editor droppings, .tmp leftovers) is
// skipped rather than shipped.
func shippable(name string) bool {
	switch name {
	case CampaignMetaFile, ShardMetaFile:
		return true
	}
	return strings.HasPrefix(name, segPrefix) &&
		(strings.HasSuffix(name, segSuffix) || strings.HasSuffix(name, sidecarSuffix))
}

// Ship writes dir's store files to w in the shipped-store format,
// returning the number of files written. The store must not be open
// for writing elsewhere mid-Ship (agents ship only after their worker
// exited and synced).
func Ship(w io.Writer, dir string) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, fmt.Errorf("store: ship: %w", err)
	}
	var names []string
	for _, e := range entries {
		if e.Type().IsRegular() && shippable(e.Name()) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if _, err := io.WriteString(w, shipMagic); err != nil {
		return 0, fmt.Errorf("store: ship: %w", err)
	}
	var hdr [16]byte
	for _, name := range names {
		content, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return 0, fmt.Errorf("store: ship: %w", err)
		}
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(name)))
		binary.LittleEndian.PutUint64(hdr[4:12], uint64(len(content)))
		binary.LittleEndian.PutUint32(hdr[12:16], crc32.ChecksumIEEE(content))
		if _, err := w.Write(hdr[:]); err != nil {
			return 0, fmt.Errorf("store: ship: %w", err)
		}
		if _, err := io.WriteString(w, name); err != nil {
			return 0, fmt.Errorf("store: ship: %w", err)
		}
		if _, err := w.Write(content); err != nil {
			return 0, fmt.Errorf("store: ship: %w", err)
		}
	}
	var trailer [8]byte
	binary.LittleEndian.PutUint32(trailer[4:8], uint32(len(names)))
	if _, err := w.Write(trailer[:]); err != nil {
		return 0, fmt.Errorf("store: ship: %w", err)
	}
	return len(names), nil
}

// Receive reads a shipped-store stream into dir (created; must not
// already contain files), verifying each file's CRC as it lands and
// the trailer's file count at the end. On any error the partially
// received directory is removed, so a truncated or corrupt upload
// never leaves debris that could later be mistaken for a shard store.
func Receive(r io.Reader, dir string) (n int, err error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, fmt.Errorf("store: receive: %w", err)
	}
	if entries, err := os.ReadDir(dir); err != nil {
		return 0, fmt.Errorf("store: receive: %w", err)
	} else if len(entries) > 0 {
		return 0, fmt.Errorf("store: receive: %s is not empty", dir)
	}
	defer func() {
		if err != nil {
			os.RemoveAll(dir)
		}
	}()
	var magic [len(shipMagic)]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return 0, fmt.Errorf("%w: short magic: %v", ErrShipCorrupt, err)
	}
	if string(magic[:]) != shipMagic {
		return 0, fmt.Errorf("%w: bad magic %q", ErrShipCorrupt, magic)
	}
	count := 0
	var hdr [16]byte
	for {
		if _, err := io.ReadFull(r, hdr[0:4]); err != nil {
			return 0, fmt.Errorf("%w: short frame header: %v", ErrShipCorrupt, err)
		}
		nameLen := binary.LittleEndian.Uint32(hdr[0:4])
		if nameLen == 0 {
			break // trailer
		}
		if nameLen > 4096 {
			return 0, fmt.Errorf("%w: name length %d", ErrShipCorrupt, nameLen)
		}
		if count >= shipMaxFiles {
			return 0, fmt.Errorf("%w: more than %d files", ErrShipCorrupt, shipMaxFiles)
		}
		if _, err := io.ReadFull(r, hdr[4:16]); err != nil {
			return 0, fmt.Errorf("%w: short frame header: %v", ErrShipCorrupt, err)
		}
		size := binary.LittleEndian.Uint64(hdr[4:12])
		sum := binary.LittleEndian.Uint32(hdr[12:16])
		if size > shipMaxFileSize {
			return 0, fmt.Errorf("%w: file size %d exceeds %d", ErrShipCorrupt, size, shipMaxFileSize)
		}
		nameBuf := make([]byte, nameLen)
		if _, err := io.ReadFull(r, nameBuf); err != nil {
			return 0, fmt.Errorf("%w: short name: %v", ErrShipCorrupt, err)
		}
		name := string(nameBuf)
		if name != filepath.Base(name) || strings.ContainsAny(name, `/\`) || name == "." || name == ".." {
			return 0, fmt.Errorf("%w: unsafe file name %q", ErrShipCorrupt, name)
		}
		if !shippable(name) {
			return 0, fmt.Errorf("%w: unexpected file %q in shipped store", ErrShipCorrupt, name)
		}
		content := make([]byte, size)
		if _, err := io.ReadFull(r, content); err != nil {
			return 0, fmt.Errorf("%w: short content for %q: %v", ErrShipCorrupt, name, err)
		}
		if got := crc32.ChecksumIEEE(content); got != sum {
			return 0, fmt.Errorf("%w: %q CRC mismatch (frame %08x, content %08x)", ErrShipCorrupt, name, sum, got)
		}
		if err := writeFileAtomic(filepath.Join(dir, name), content); err != nil {
			return 0, fmt.Errorf("store: receive: %w", err)
		}
		count++
	}
	if _, err := io.ReadFull(r, hdr[0:4]); err != nil {
		return 0, fmt.Errorf("%w: short trailer: %v", ErrShipCorrupt, err)
	}
	if want := binary.LittleEndian.Uint32(hdr[0:4]); int(want) != count {
		return 0, fmt.Errorf("%w: trailer says %d files, received %d", ErrShipCorrupt, want, count)
	}
	return count, nil
}

// VerifyShard proves dir holds shard index of count of an acceptable
// campaign: shard.json must record exactly that assignment,
// campaign.json must structurally equal one of the acceptable
// fingerprint forms (when fps is non-empty), and the store itself must
// open read-only — which walks every segment frame, so a corrupt or
// torn upload is caught here, before acceptance, not at fold time.
// Returns the store's session count.
func VerifyShard(dir string, index, count int, fps [][]byte) (int, error) {
	meta, ok, err := ReadShardMeta(dir)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, fmt.Errorf("store: %s carries no %s; not a shard store", dir, ShardMetaFile)
	}
	if meta.Index != index || meta.Count != count {
		return 0, fmt.Errorf("store: %s records shard %d/%d, want %d/%d", dir, meta.Index, meta.Count, index, count)
	}
	if len(fps) > 0 {
		raw, err := os.ReadFile(filepath.Join(dir, CampaignMetaFile))
		if err != nil {
			return 0, fmt.Errorf("store: %s: %w", dir, err)
		}
		var got any
		if err := json.Unmarshal(raw, &got); err != nil {
			return 0, fmt.Errorf("store: %s: %s: %w", dir, CampaignMetaFile, err)
		}
		matched := false
		for _, fp := range fps {
			var want any
			if json.Unmarshal(fp, &want) == nil && reflect.DeepEqual(got, want) {
				matched = true
				break
			}
		}
		if !matched {
			return 0, fmt.Errorf("store: %s: %w", dir, ErrCampaignMismatch)
		}
	}
	st, err := Open(dir, Options{ReadOnly: true})
	if err != nil {
		return 0, err
	}
	defer st.Close()
	if st.Recovered() > 0 {
		// A read-only open skips a torn tail in memory; an upload with
		// one lost frames in transit (the agent synced before shipping).
		return 0, fmt.Errorf("store: %s: shipped store has a torn tail (%d bytes); refusing it", dir, st.Recovered())
	}
	return st.Len(), nil
}
