package store

// Tests for the redesigned /v1 query surface: the shared error
// envelope, the report-family endpoints (cdf, series, percentiles),
// and the unknown-scenario regression fix.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"veritas/internal/engine"
	"veritas/internal/stats"
)

// doGet issues a GET with an optional If-None-Match validator.
func doGet(t *testing.T, h http.Handler, path, etag string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	if etag != "" {
		req.Header.Set("If-None-Match", etag)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// envelope decodes the uniform error body and fails on any other shape.
func envelope(t *testing.T, body []byte) (message, param string) {
	t.Helper()
	var e struct {
		Error struct {
			Message string `json:"message"`
			Param   string `json:"param"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatalf("error body is not the JSON envelope: %q (%v)", body, err)
	}
	if e.Error.Message == "" {
		t.Fatalf("error envelope has no message: %q", body)
	}
	return e.Error.Message, e.Error.Param
}

func TestServeErrorEnvelope(t *testing.T) {
	h, _, _ := serveFixture(t)
	cases := []struct {
		name      string
		path      string
		code      int
		wantParam string
	}{
		{"unknown scenario", "/v1/report?scenario=dialup", 404, "scenario"},
		{"present-but-empty scenario", "/v1/report?scenario=", 404, "scenario"},
		{"unknown metric", "/v1/report/cdf?arm=bba-5s&metric=bogus", 400, "metric"},
		{"unknown estimator", "/v1/report/series?arm=bba-5s&estimator=bogus", 400, "estimator"},
		{"missing arm", "/v1/report/cdf", 400, "arm"},
		{"unknown arm", "/v1/report/percentiles?arm=nosuch", 404, "arm"},
		{"bad percentile", "/v1/report/percentiles?arm=bba-5s&percentiles=101", 400, "percentiles"},
		{"unknown abr", "/v1/report?abr=nosuch", 404, "abr"},
		{"unknown session", "/v1/sessions/nosuch-999", 404, ""},
	}
	for _, tc := range cases {
		rec := doGet(t, h, tc.path, "")
		if rec.Code != tc.code {
			t.Errorf("%s: HTTP %d, want %d (%s)", tc.name, rec.Code, tc.code, rec.Body.Bytes())
			continue
		}
		if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s: Content-Type %q, want application/json", tc.name, ct)
		}
		_, param := envelope(t, rec.Body.Bytes())
		if param != tc.wantParam {
			t.Errorf("%s: envelope param %q, want %q", tc.name, param, tc.wantParam)
		}
	}
}

// TestServeEmptyScenarioRegression pins the fix: `?scenario=` with an
// empty value must 404 (it cannot name any scenario), while the
// parameter being absent serves the whole corpus — the two spellings
// used to collapse into one silently-empty 200 report.
func TestServeEmptyScenarioRegression(t *testing.T) {
	h, res, _ := serveFixture(t)
	rec := doGet(t, h, "/v1/report?scenario=", "")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("?scenario= (empty): HTTP %d, want 404", rec.Code)
	}
	envelope(t, rec.Body.Bytes())

	rec = doGet(t, h, "/v1/report", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("unfiltered report: HTTP %d", rec.Code)
	}
	var rep engine.Report
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Sessions != len(res.Sessions) {
		t.Errorf("unfiltered report covers %d sessions, want %d", rep.Sessions, len(res.Sessions))
	}
	// A conditional request must not turn the empty-scenario 404 into
	// a 304 either.
	if rec := doGet(t, h, "/v1/report?scenario=", "*"); rec.Code != http.StatusNotFound {
		t.Errorf("conditional ?scenario= : HTTP %d, want 404", rec.Code)
	}
}

// seriesFromStore recomputes the expected raw series straight from the
// store's partials (themselves pinned byte-identical to the aggregator
// elsewhere), so endpoint bodies are checked against an independent
// computation of the same numbers.
func seriesFromStore(t *testing.T, st *Store, arm, metric, estimator string) []float64 {
	t.Helper()
	p, err := st.Partials()
	if err != nil {
		t.Fatal(err)
	}
	mi, ok := engine.MetricIndex(metric)
	if !ok {
		t.Fatalf("metric %q", metric)
	}
	est, ok := engine.ParseEstimator(estimator)
	if !ok {
		t.Fatalf("estimator %q", estimator)
	}
	return p.Series("", arm, est, mi)
}

func TestServeReportSeriesAndCDF(t *testing.T) {
	h, _, st := serveFixture(t)
	want := seriesFromStore(t, st, "bba-5s", "ssim", "truth")
	if len(want) == 0 {
		t.Fatal("fixture produced no truth series")
	}

	rec := doGet(t, h, "/v1/report/series?arm=bba-5s&metric=ssim&estimator=truth", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("series: HTTP %d %s", rec.Code, rec.Body.Bytes())
	}
	var ser struct {
		Arm       string
		Metric    string
		Estimator string
		N         int
		Values    []float64
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &ser); err != nil {
		t.Fatal(err)
	}
	if ser.Arm != "bba-5s" || ser.Metric != "ssim" || ser.Estimator != "truth" {
		t.Errorf("series meta %+v", ser)
	}
	if ser.N != len(want) || len(ser.Values) != len(want) {
		t.Fatalf("series N=%d len=%d, want %d", ser.N, len(ser.Values), len(want))
	}
	for i := range want {
		if ser.Values[i] != want[i] {
			t.Fatalf("series[%d] = %v, want %v", i, ser.Values[i], want[i])
		}
	}

	rec = doGet(t, h, "/v1/report/cdf?arm=bba-5s&metric=ssim&estimator=truth", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("cdf: HTTP %d %s", rec.Code, rec.Body.Bytes())
	}
	var cdf struct {
		N      int
		Points []stats.CDFPoint
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &cdf); err != nil {
		t.Fatal(err)
	}
	wantCDF := stats.CDF(want)
	if cdf.N != len(want) || len(cdf.Points) != len(wantCDF) {
		t.Fatalf("cdf N=%d points=%d, want %d", cdf.N, len(cdf.Points), len(wantCDF))
	}
	for i, p := range wantCDF {
		if cdf.Points[i] != p {
			t.Fatalf("cdf[%d] = %+v, want %+v", i, cdf.Points[i], p)
		}
	}
}

func TestServeReportPercentiles(t *testing.T) {
	h, _, st := serveFixture(t)
	want := seriesFromStore(t, st, "bba-5s", "ssim", "veritas-mid")

	rec := doGet(t, h, "/v1/report/percentiles?arm=bba-5s&percentiles=50,95,99", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("percentiles: HTTP %d %s", rec.Code, rec.Body.Bytes())
	}
	var got struct {
		Estimator   string
		N           int
		Percentiles []struct {
			P     float64 `json:"p"`
			Value float64 `json:"value"`
		}
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.Estimator != "veritas-mid" {
		t.Errorf("default estimator %q, want veritas-mid", got.Estimator)
	}
	ranks := []float64{50, 95, 99}
	vals := stats.Percentiles(want, ranks)
	if len(got.Percentiles) != len(ranks) {
		t.Fatalf("%d percentiles returned, want %d", len(got.Percentiles), len(ranks))
	}
	for i, pv := range got.Percentiles {
		if pv.P != ranks[i] || pv.Value != vals[i] {
			t.Errorf("percentile %v = %v, want p%v = %v", pv.P, pv.Value, ranks[i], vals[i])
		}
	}

	// Default rank list applies when ?percentiles= is absent.
	rec = doGet(t, h, "/v1/report/percentiles?arm=bba-5s", "")
	if rec.Code != http.StatusOK {
		t.Fatal(rec.Code)
	}
	var def struct {
		Percentiles []struct{ P float64 }
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &def); err != nil {
		t.Fatal(err)
	}
	if len(def.Percentiles) != len(defaultPercentiles) {
		t.Errorf("default rank list has %d entries, want %d", len(def.Percentiles), len(defaultPercentiles))
	}
}

// TestServeABRFilter: ?abr= narrows the report to that ABR's arms
// (name or name-prefix arms), and filtered reports cache and validate
// like unfiltered ones.
func TestServeABRFilter(t *testing.T) {
	h, _, _ := serveFixture(t)
	rec := doGet(t, h, "/v1/report?abr=bba", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("abr filter: HTTP %d %s", rec.Code, rec.Body.Bytes())
	}
	var rep engine.Report
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Arms) == 0 {
		t.Fatal("abr filter dropped every arm")
	}
	for _, a := range rep.Arms {
		if a.Arm != "bba" && a.Arm[:4] != "bba-" {
			t.Errorf("arm %q leaked through abr=bba", a.Arm)
		}
	}
}

// TestServeReportFamilyMatchesPartialsAtEveryGeneration is the
// acceptance pin at the serving layer: as rows append one by one, the
// served /v1/report body equals the full-recompute aggregator's JSON
// at every generation.
func TestServeReportMatchesRecomputeAtEveryGeneration(t *testing.T) {
	st, err := Create(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	h := NewHandler(st, ServeOptions{})
	for i := 0; i < 12; i++ {
		scen := []string{"fcc", "lte", "wifi"}[i%3]
		if err := st.Append(testRow(i, scen)); err != nil {
			t.Fatal(err)
		}
		rec := doGet(t, h, "/v1/report", "")
		if rec.Code != http.StatusOK {
			t.Fatalf("gen %d: HTTP %d", i, rec.Code)
		}
		agg, err := st.Aggregate()
		if err != nil {
			t.Fatal(err)
		}
		want, err := json.Marshal(agg.Report())
		if err != nil {
			t.Fatal(err)
		}
		if got := rec.Body.String(); got != string(want) {
			t.Fatalf("gen %d: served report diverged from full recompute\nwant: %s\ngot:  %s", i, want, got)
		}
	}
}
