package store

// The crash harness: sidecar-index behavior under clean and torn
// shutdowns, and a seeded fuzz loop that randomly truncates or
// bit-flips segment tails and sidecar files, then proves reopen
// recovers exactly the committed frame prefix — the store's crash
// contract, extended from the single torn-tail case.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"veritas/internal/engine"
)

// segmentPaths returns the store's segment files in segment order.
func segmentPaths(t *testing.T, dir string) []string {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix))
	if err != nil {
		t.Fatal(err)
	}
	return segs
}

func sidecarPaths(t *testing.T, dir string) []string {
	t.Helper()
	idx, err := filepath.Glob(filepath.Join(dir, segPrefix+"*"+sidecarSuffix))
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

func TestSidecarFastReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, Options{SegmentBytes: 2 << 10})
	if err != nil {
		t.Fatal(err)
	}
	rows := fillStore(t, s, 40, "lte")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	segs := segmentPaths(t, dir)
	if len(segs) < 3 {
		t.Fatalf("test needs >= 3 segments, got %d", len(segs))
	}
	if got := len(sidecarPaths(t, dir)); got != len(segs) {
		t.Fatalf("clean close left %d sidecars for %d segments", got, len(segs))
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	fromSidecar, scanned := s2.SidecarStats()
	if scanned != 0 || fromSidecar != len(segs) {
		t.Errorf("clean reopen scanned %d segments (sidecar-loaded %d), want a scan-free open", scanned, fromSidecar)
	}
	if s2.Len() != 40 {
		t.Fatalf("sidecar reopen Len = %d, want 40", s2.Len())
	}
	for _, want := range rows {
		got, ok, err := s2.Get(want.ID)
		if err != nil || !ok || !reflect.DeepEqual(got, want) {
			t.Fatalf("sidecar-indexed Get(%s) diverged: ok=%v err=%v", want.ID, ok, err)
		}
	}
}

// TestSidecarFallbackAndHeal: deleting every sidecar degrades Open to
// the full scan (the pre-sidecar path — old stores still open), and a
// writable open heals the sealed segments' sidecars so the open after
// next is scan-free again.
func TestSidecarFallbackAndHeal(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, Options{SegmentBytes: 2 << 10})
	if err != nil {
		t.Fatal(err)
	}
	fillStore(t, s, 40, "lte")
	s.Close()
	for _, p := range sidecarPaths(t, dir) {
		if err := os.Remove(p); err != nil {
			t.Fatal(err)
		}
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fromSidecar, scanned := s2.SidecarStats()
	if fromSidecar != 0 || scanned != len(segmentPaths(t, dir)) {
		t.Errorf("sidecar-less open: fromSidecar=%d scanned=%d", fromSidecar, scanned)
	}
	if s2.Len() != 40 {
		t.Fatalf("sidecar-less open Len = %d, want 40", s2.Len())
	}
	s2.Close()

	s3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if _, scanned := s3.SidecarStats(); scanned != 0 {
		t.Errorf("healed store still scanned %d segments", scanned)
	}
}

// refScanKeys independently parses a segment file the way recovery
// does — intact frames from the start, stopping at the first torn or
// corrupt one — and returns the surviving keys in frame order. It is
// the test's own reader, so the recovery assertions do not depend on
// the code under test.
func refScanKeys(t *testing.T, path string) []string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < len(segMagic) || string(data[:len(segMagic)]) != segMagic {
		return nil
	}
	var keys []string
	off := len(segMagic)
	for off+frameHdrLen <= len(data) {
		keyLen := int(binary.LittleEndian.Uint32(data[off : off+4]))
		payloadLen := int(binary.LittleEndian.Uint32(data[off+4 : off+8]))
		sum := binary.LittleEndian.Uint32(data[off+8 : off+12])
		if keyLen == 0 || keyLen > maxKeyLen || payloadLen > maxPayloadLen {
			break
		}
		start, end := off+frameHdrLen, off+frameHdrLen+keyLen+payloadLen
		if end > len(data) {
			break
		}
		if crc32.ChecksumIEEE(data[start:end]) != sum {
			break
		}
		keys = append(keys, string(data[start:start+keyLen]))
		off = end
	}
	return keys
}

// lastFrameSpan returns the byte range of a segment's final intact
// frame, ok=false when the segment holds no frames.
func lastFrameSpan(t *testing.T, path string) (start, end int64, ok bool) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < len(segMagic) || string(data[:len(segMagic)]) != segMagic {
		return 0, 0, false
	}
	off := len(segMagic)
	for off+frameHdrLen <= len(data) {
		keyLen := int(binary.LittleEndian.Uint32(data[off : off+4]))
		payloadLen := int(binary.LittleEndian.Uint32(data[off+4 : off+8]))
		if keyLen == 0 || keyLen > maxKeyLen || payloadLen > maxPayloadLen {
			break
		}
		frameEnd := off + frameHdrLen + keyLen + payloadLen
		if frameEnd > len(data) {
			break
		}
		start, end, ok = int64(off), int64(frameEnd), true
		off = frameEnd
	}
	return start, end, ok
}

// copyStoreFiles clones a store directory's data files (segments and
// sidecars, not the LOCK) — a crash image taken while the writer still
// holds the directory.
func copyStoreFiles(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, segPrefix) {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, name))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

func flipByte(t *testing.T, path string, off int64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	b := make([]byte, 1)
	if _, err := f.ReadAt(b, off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x41
	if _, err := f.WriteAt(b, off); err != nil {
		t.Fatal(err)
	}
}

// TestStoreCrashFuzz is the randomized crash contract: whatever
// combination of unclean shutdown, torn or bit-flipped segment tail,
// and missing, truncated or bit-flipped sidecar a store suffers,
// reopening recovers exactly the committed frame prefix — every intact
// record readable and byte-identical, every damaged one dropped — and
// the store stays appendable and cleanly reopenable afterwards.
func TestStoreCrashFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 30; iter++ {
		iter := iter
		t.Run(fmt.Sprintf("iter%02d", iter), func(t *testing.T) {
			dir := t.TempDir()
			s, err := Create(dir, Options{SegmentBytes: 1 << 10})
			if err != nil {
				t.Fatal(err)
			}
			n := 4 + rng.Intn(12)
			rows := fillStore(t, s, n, "fcc")
			byID := make(map[string]engine.SessionRow, n)
			for _, r := range rows {
				byID[r.ID] = r
			}
			if err := s.Sync(); err != nil {
				t.Fatal(err)
			}
			// Half the iterations crash (the image is taken before Close,
			// so the active segment has no sidecar); half shut down
			// cleanly and get corrupted at rest.
			target := dir
			if crash := rng.Intn(2) == 0; crash {
				target = copyStoreFiles(t, dir)
			}
			s.Close()

			segs := segmentPaths(t, target)
			last := segs[len(segs)-1]
			switch rng.Intn(6) {
			case 0: // torn tail: truncate the last segment anywhere
				fi, err := os.Stat(last)
				if err != nil {
					t.Fatal(err)
				}
				if fi.Size() > 1 {
					if err := os.Truncate(last, fi.Size()-int64(1+rng.Intn(int(fi.Size()-1)))); err != nil {
						t.Fatal(err)
					}
				}
			case 1: // bit-flip inside the last frame of the last segment
				if start, end, ok := lastFrameSpan(t, last); ok {
					flipByte(t, last, start+rng.Int63n(end-start))
				}
			case 2, 3, 4: // sidecar damage: delete, truncate, or bit-flip
				if idx := sidecarPaths(t, target); len(idx) > 0 {
					victim := idx[rng.Intn(len(idx))]
					switch fi, err := os.Stat(victim); {
					case err != nil:
						t.Fatal(err)
					case rng.Intn(3) == 0:
						if err := os.Remove(victim); err != nil {
							t.Fatal(err)
						}
					case rng.Intn(2) == 0:
						if err := os.Truncate(victim, rng.Int63n(fi.Size())); err != nil {
							t.Fatal(err)
						}
					default:
						flipByte(t, victim, rng.Int63n(fi.Size()))
					}
				}
			case 5: // control: no corruption at all
			}

			// The committed prefix, computed by the test's own reader
			// over the damaged files.
			expect := make(map[string]bool)
			for _, seg := range segs {
				if _, err := os.Stat(seg); err != nil {
					continue
				}
				for _, k := range refScanKeys(t, seg) {
					expect[k] = true
				}
			}

			s2, err := Open(target, Options{})
			if err != nil {
				t.Fatalf("reopen after corruption: %v", err)
			}
			if s2.Len() != len(expect) {
				t.Fatalf("recovered %d sessions, want the %d-frame committed prefix", s2.Len(), len(expect))
			}
			for _, r := range rows {
				got, ok, err := s2.Get(r.ID)
				if err != nil {
					t.Fatalf("Get(%s): %v", r.ID, err)
				}
				if ok != expect[r.ID] {
					t.Fatalf("Get(%s) ok=%v, want %v", r.ID, ok, expect[r.ID])
				}
				if ok && !reflect.DeepEqual(got, byID[r.ID]) {
					t.Fatalf("recovered row %s diverged from what was appended", r.ID)
				}
			}
			// Recovery leaves a working store: appends land and a further
			// reopen is clean.
			extra := testRow(1000+iter, "fcc")
			if err := s2.Append(extra); err != nil {
				t.Fatal(err)
			}
			if err := s2.Close(); err != nil {
				t.Fatal(err)
			}
			s3, err := Open(target, Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer s3.Close()
			if s3.Recovered() != 0 {
				t.Errorf("second reopen still recovering %d bytes", s3.Recovered())
			}
			if got, ok, err := s3.Get(extra.ID); err != nil || !ok || !reflect.DeepEqual(got, extra) {
				t.Errorf("row appended after recovery lost: ok=%v err=%v", ok, err)
			}
		})
	}
}
