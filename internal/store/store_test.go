package store

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"veritas/internal/engine"
	"veritas/internal/player"
)

// testRow synthesizes a plausible session row without running any
// inference.
func testRow(i int, scenario string) engine.SessionRow {
	m := player.Metrics{AvgSSIM: 0.9 + float64(i)*1e-3, RebufRatio: 0.01 * float64(i%5), AvgBitrateMbps: 2 + float64(i%7), NumChunks: 30}
	return engine.SessionRow{
		Index:     i,
		ID:        fmt.Sprintf("%s-%03d", scenario, i),
		Scenario:  scenario,
		Simulated: true,
		SettingA:  m,
		Arms: []engine.ArmOutcome{{
			Name:     "bba-5s",
			Baseline: m,
			Samples:  []player.Metrics{m, m, m},
			Truth:    m,
			HasTruth: true,
		}},
		Predictions: []float64{1.5, float64(i)},
		CacheHits:   uint64(i * 10),
		CacheMisses: uint64(i),
	}
}

func fillStore(t *testing.T, s *Store, n int, scenario string) []engine.SessionRow {
	t.Helper()
	rows := make([]engine.SessionRow, n)
	for i := 0; i < n; i++ {
		rows[i] = testRow(i, scenario)
		if err := s.Append(rows[i]); err != nil {
			t.Fatal(err)
		}
	}
	return rows
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rows := fillStore(t, s, 10, "fcc")
	if s.Len() != 10 {
		t.Fatalf("Len = %d, want 10", s.Len())
	}
	for _, want := range rows {
		got, ok, err := s.Get(want.ID)
		if err != nil || !ok {
			t.Fatalf("Get(%s): ok=%v err=%v", want.ID, ok, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Get(%s) = %+v, want %+v", want.ID, got, want)
		}
	}
	if _, ok, _ := s.Get("nope"); ok {
		t.Error("Get of unknown key reported ok")
	}
	keys := s.Keys()
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("Keys not sorted: %v", keys)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: everything still there, and appends continue.
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 10 || s2.Recovered() != 0 {
		t.Fatalf("reopen: Len=%d Recovered=%d", s2.Len(), s2.Recovered())
	}
	if err := s2.Append(testRow(10, "fcc")); err != nil {
		t.Fatal(err)
	}
	if !s2.Has("fcc-010") {
		t.Error("appended row not visible after reopen")
	}
}

func TestStoreSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, Options{SegmentBytes: 2 << 10})
	if err != nil {
		t.Fatal(err)
	}
	rows := fillStore(t, s, 40, "lte")
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.vseg"))
	if len(segs) < 3 {
		t.Fatalf("expected rotation to produce >= 3 segments, got %d", len(segs))
	}
	for _, want := range rows {
		got, ok, err := s.Get(want.ID)
		if err != nil || !ok || got.ID != want.ID {
			t.Fatalf("Get(%s) across segments failed: ok=%v err=%v", want.ID, ok, err)
		}
	}
	s.Close()

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 40 {
		t.Fatalf("reopened rotated store Len = %d, want 40", s2.Len())
	}
}

func TestStoreDuplicateKeyLastWins(t *testing.T) {
	s, err := Create(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	first := testRow(1, "wifi")
	second := first
	second.SettingA.AvgSSIM = 0.123
	if err := s.Append(first); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(second); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d after duplicate append, want 1", s.Len())
	}
	got, _, err := s.Get(first.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.SettingA.AvgSSIM != 0.123 {
		t.Errorf("duplicate key: got SSIM %v, want the later record", got.SettingA.AvgSSIM)
	}
}

// lastSegment returns the path of the newest segment file.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.vseg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments in %s (err=%v)", dir, err)
	}
	return segs[len(segs)-1]
}

// TestStoreCrashRecovery is the torn-tail contract: a segment cut
// mid-record reopens cleanly with exactly the intact records, and the
// resume skip set reflects the lost session.
func TestStoreCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fillStore(t, s, 6, "fcc")
	s.Close()

	// Simulate a crash mid-append: chop bytes off the newest segment so
	// its final frame is torn.
	seg := lastSegment(t, dir)
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, fi.Size()-7); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	if s2.Len() != 5 {
		t.Fatalf("recovered Len = %d, want 5 (one torn record dropped)", s2.Len())
	}
	if s2.Recovered() == 0 {
		t.Error("Recovered() = 0 after truncating a record")
	}
	if s2.Has("fcc-005") {
		t.Error("torn record still visible")
	}
	for i := 0; i < 5; i++ {
		id := fmt.Sprintf("fcc-%03d", i)
		if _, ok, err := s2.Get(id); !ok || err != nil {
			t.Errorf("intact record %s lost in recovery: ok=%v err=%v", id, ok, err)
		}
	}
	// The torn tail was truncated away: appends and a further clean
	// reopen both work.
	if err := s2.Append(testRow(5, "fcc")); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if s3.Len() != 6 || s3.Recovered() != 0 {
		t.Errorf("after re-append: Len=%d Recovered=%d, want 6, 0", s3.Len(), s3.Recovered())
	}
}

func TestStoreCorruptMiddleSegmentFailsOpen(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, Options{SegmentBytes: 2 << 10})
	if err != nil {
		t.Fatal(err)
	}
	fillStore(t, s, 40, "lte")
	s.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.vseg"))
	if len(segs) < 2 {
		t.Fatal("test needs >= 2 segments")
	}
	fi, err := os.Stat(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(segs[0], fi.Size()-3); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("corrupt middle segment should fail Open")
	}
}

func TestStoreReadOnly(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fillStore(t, s, 3, "square")
	s.Close()
	seg := lastSegment(t, dir)
	fi, _ := os.Stat(seg)
	if err := os.Truncate(seg, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	ro, err := Open(dir, Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	if ro.Len() != 2 {
		t.Fatalf("read-only Len = %d, want 2", ro.Len())
	}
	if err := ro.Append(testRow(9, "square")); err != ErrReadOnly {
		t.Errorf("Append on read-only store: err = %v, want ErrReadOnly", err)
	}
	// Read-only recovery must not touch the file.
	after, _ := os.Stat(seg)
	if after.Size() != fi.Size()-5 {
		t.Errorf("read-only open changed the segment size: %d -> %d", fi.Size()-5, after.Size())
	}
}

func TestMerge(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	a, err := Create(dirA, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fillStore(t, a, 5, "fcc")
	a.Close()

	b, err := Create(dirB, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fillStore(t, b, 5, "lte")
	// Overlap: b re-ran fcc-002 with a different outcome; the later
	// source must win.
	rerun := testRow(2, "fcc")
	rerun.SettingA.AvgSSIM = 0.5
	if err := b.Append(rerun); err != nil {
		t.Fatal(err)
	}
	b.Close()

	dst := filepath.Join(t.TempDir(), "merged")
	n, err := Merge(dst, Options{}, dirA, dirB)
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("Merge folded %d sessions, want 10 (5+5, one superseded)", n)
	}
	m, err := Open(dst, Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	got, _, err := m.Get("fcc-002")
	if err != nil {
		t.Fatal(err)
	}
	if got.SettingA.AvgSSIM != 0.5 {
		t.Errorf("merge kept the earlier record for fcc-002 (SSIM %v)", got.SettingA.AvgSSIM)
	}
	scens := m.Scenarios()
	if len(scens) != 2 || scens[0].Scenario != "fcc" || scens[0].Sessions != 5 || scens[1].Sessions != 5 {
		t.Errorf("merged scenarios = %+v", scens)
	}
	if _, err := Merge(filepath.Join(t.TempDir(), "again"), Options{}); err == nil {
		t.Error("Merge with no sources should error")
	}
}

// fleetCorpus builds a small real corpus + one arm for the end-to-end
// store tests.
func fleetCorpus(t testing.TB) ([]engine.SessionSpec, []engine.Arm) {
	t.Helper()
	ccfg := engine.CorpusConfig{SessionsPer: 1, NumChunks: 25, Seed: 3}
	corpus, err := engine.BuildCorpus(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	arms, err := engine.BuildMatrix(ccfg, []string{"bba"}, []float64{5})
	if err != nil {
		t.Fatal(err)
	}
	return corpus, arms
}

// TestStreamingStoreDeterminism pins the acceptance contract: the
// aggregate report built by re-reading a store that results were
// streamed into is byte-identical to the in-RAM aggregator's report,
// for every worker count.
func TestStreamingStoreDeterminism(t *testing.T) {
	corpus, arms := fleetCorpus(t)
	var want []byte
	for _, workers := range []int{1, 2, 7} {
		ram, err := engine.Run(context.Background(), engine.Config{Workers: workers, Samples: 2, Seed: 1}, corpus, arms)
		if err != nil {
			t.Fatal(err)
		}
		ramJSON, err := json.Marshal(ram.Agg.Report())
		if err != nil {
			t.Fatal(err)
		}

		dir := t.TempDir()
		st, err := Create(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		cfg := engine.Config{Workers: workers, Samples: 2, Seed: 1, Sink: st}
		if _, err := engine.Run(context.Background(), cfg, corpus, arms); err != nil {
			t.Fatal(err)
		}
		st.Close()

		ro, err := Open(dir, Options{ReadOnly: true})
		if err != nil {
			t.Fatal(err)
		}
		agg, err := ro.Aggregate()
		if err != nil {
			t.Fatal(err)
		}
		storeJSON, err := json.Marshal(agg.Report())
		ro.Close()
		if err != nil {
			t.Fatal(err)
		}

		if !bytes.Equal(ramJSON, storeJSON) {
			t.Fatalf("workers=%d: store-path report differs from in-RAM report\nram:   %s\nstore: %s",
				workers, ramJSON, storeJSON)
		}
		if want == nil {
			want = ramJSON
		} else if !bytes.Equal(want, ramJSON) {
			t.Fatalf("workers=%d: report differs across worker counts", workers)
		}
	}
}

// TestResumeSkipsStoredSessions covers the interrupted-campaign
// workflow: a partial run persists some sessions; the resumed run skips
// exactly those, recomputes only the remainder, and the final store
// aggregate is byte-identical to an uninterrupted campaign's.
func TestResumeSkipsStoredSessions(t *testing.T) {
	corpus, arms := fleetCorpus(t)

	// The uninterrupted reference campaign.
	full, err := engine.Run(context.Background(), engine.Config{Workers: 2, Samples: 2, Seed: 1}, corpus, arms)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(full.Agg.Report())
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: the "interrupted" run persists only the first half.
	dir := t.TempDir()
	st, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	half := corpus[:len(corpus)/2]
	if _, err := engine.Run(context.Background(), engine.Config{Workers: 2, Samples: 2, Seed: 1, Sink: st}, half, arms); err != nil {
		t.Fatal(err)
	}

	// Phase 2: resume over the FULL corpus with the store's keys as the
	// skip set. Skipped sessions must not be recomputed, and the
	// remainder must keep their corpus-index-derived seeds.
	skip := make(map[string]bool)
	for _, k := range st.Keys() {
		skip[k] = true
	}
	if len(skip) != len(half) {
		t.Fatalf("skip set has %d sessions, want %d", len(skip), len(half))
	}
	var (
		reranMu sync.Mutex
		reran   []string
	)
	cfg := engine.Config{
		Workers: 2, Samples: 2, Seed: 1, Sink: st, Skip: skip,
		OnResult: func(r engine.SessionResult) {
			reranMu.Lock()
			defer reranMu.Unlock()
			reran = append(reran, r.ID)
		},
	}
	res, err := engine.Run(context.Background(), cfg, corpus, arms)
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	if res.Executed != len(corpus)-len(half) {
		t.Errorf("resumed run executed %d sessions, want %d", res.Executed, len(corpus)-len(half))
	}
	for _, id := range reran {
		if skip[id] {
			t.Errorf("resume recomputed stored session %s", id)
		}
	}

	ro, err := Open(dir, Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	if ro.Len() != len(corpus) {
		t.Fatalf("store holds %d sessions after resume, want %d", ro.Len(), len(corpus))
	}
	agg, err := ro.Aggregate()
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := json.Marshal(agg.Report())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Fatalf("resumed campaign's aggregate differs from the uninterrupted one\nwant: %s\ngot:  %s", wantJSON, gotJSON)
	}
}

func TestOpenReadOnlyFailsFastOnMissingStore(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "nope"), Options{ReadOnly: true}); err == nil {
		t.Error("read-only open of a missing directory should error")
	}
	if _, err := Open(t.TempDir(), Options{ReadOnly: true}); err == nil {
		t.Error("read-only open of an empty directory should error")
	}
}

// TestStoreRecoversTornMagic covers the crash window between segment
// creation and the magic header landing on disk: recovery must rewrite
// the header so records appended afterwards survive the next reopen.
func TestStoreRecoversTornMagic(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	seg := lastSegment(t, dir)
	if err := os.Truncate(seg, 3); err != nil { // torn mid-magic
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open over torn magic: %v", err)
	}
	if s2.Recovered() == 0 {
		t.Error("torn magic not counted as recovered bytes")
	}
	fillStore(t, s2, 2, "fcc")
	s2.Close()

	s3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if s3.Len() != 2 || s3.Recovered() != 0 {
		t.Fatalf("rows appended after magic recovery were lost: Len=%d Recovered=%d, want 2, 0",
			s3.Len(), s3.Recovered())
	}
}

func TestSingleWriterLock(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Error("second writable open of a locked store should fail")
	}
	fillStore(t, s, 1, "fcc")
	// Readers are never blocked by the writer lock.
	ro, err := Open(dir, Options{ReadOnly: true})
	if err != nil {
		t.Errorf("read-only open blocked by writer lock: %v", err)
	} else {
		ro.Close()
	}
	s.Close()
	// The lock dies with the handle.
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	s2.Close()
}
