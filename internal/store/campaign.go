package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
)

// CampaignMetaFile is the name of the fingerprint file OpenCampaign
// maintains inside a store directory.
const CampaignMetaFile = "campaign.json"

// ErrCampaignMismatch is wrapped by OpenCampaign when the store was
// written under a different campaign fingerprint.
var ErrCampaignMismatch = errors.New("store: campaign fingerprint mismatch")

// OpenCampaign opens (or creates) a campaign store: a store directory
// carrying a JSON fingerprint of every setting that shapes results.
// On a fresh directory the fingerprint is recorded (write-then-rename,
// so a crash mid-write cannot leave a torn file that blocks every later
// resume); on an existing one it must match, or OpenCampaign fails
// wrapping ErrCampaignMismatch — mixing rows computed under different
// settings into one "coherent" aggregate must never happen silently.
//
// fingerprint must be valid JSON; equality is structural, so formatting
// differences do not matter. A nil fingerprint degrades to a plain
// Open with no campaign discipline.
func OpenCampaign(dir string, opt Options, fingerprint []byte) (*Store, error) {
	s, err := Open(dir, opt)
	if err != nil {
		return nil, err
	}
	if fingerprint == nil {
		return s, nil
	}
	if err := checkFingerprint(dir, fingerprint, opt.ReadOnly); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

func checkFingerprint(dir string, want []byte, readOnly bool) error {
	var wantVal any
	if err := json.Unmarshal(want, &wantVal); err != nil {
		return fmt.Errorf("store: campaign fingerprint is not valid JSON: %w", err)
	}
	path := filepath.Join(dir, CampaignMetaFile)
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		if readOnly {
			return fmt.Errorf("store: %s carries no %s to verify against (not a campaign store?)", dir, CampaignMetaFile)
		}
		if err := writeFileAtomic(path, want); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	var haveVal any
	if err := json.Unmarshal(data, &haveVal); err != nil {
		return fmt.Errorf("store: %s: %w", path, err)
	}
	if !reflect.DeepEqual(haveVal, wantVal) {
		return fmt.Errorf("%w: %s holds a campaign run with different settings (see %s); repeat them exactly or use a fresh store",
			ErrCampaignMismatch, dir, path)
	}
	return nil
}
