//lint:file-ignore SA1019 This file deliberately pins the deprecated
// serve-construction surface so it keeps compiling at its original
// signature.

package store

// serve.New (veritas/internal/serve) replaced the ServeOptions +
// NewHandler pair; both must keep compiling unchanged for existing
// callers until a deliberate removal. This file fails to build if
// either is renamed or changes shape.

import "net/http"

var _ func(*Store, ServeOptions) http.Handler = NewHandler

var _ = ServeOptions{
	CacheEntries: 0,
	Telemetry:    nil,
	Tracer:       nil,
	TraceSource:  nil,
}
