package store

// Folding sharded campaigns. A campaign sharded across processes (or
// machines) appends each shard's sessions to its own store; Fold
// compacts the per-shard stores back into one queryable corpus. It is
// Merge plus the shard discipline:
//
//   - Sources are ordered by their recorded shard index (shard.json),
//     not by the order the caller (or a directory walk) happened to
//     list them, so duplicate session keys resolve last-write-wins by
//     shard index — deterministically, however the shards were
//     enumerated. Sources without shard metadata keep caller order,
//     which is how pre-shard stores keep folding the way Merge always
//     did.
//   - The campaign fingerprint (campaign.json) is propagated into the
//     folded store when every source that carries one agrees; sources
//     with conflicting fingerprints refuse to fold — mixing rows
//     computed under different settings must never happen silently.
//   - Shard metadata itself is NOT propagated: the folded store is the
//     whole campaign, not a shard of one.

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
)

// DiscoverShards returns the shard store directories directly under
// parent — subdirectories carrying a shard.json — sorted by recorded
// shard index (ties broken by name; Fold revalidates and reorders
// anyway). It returns an empty slice, not an error, when parent holds
// none: the caller decides whether "no shards here" is a problem. A
// child whose shard.json is unreadable or impossible is an error —
// skipping it would let a fold quietly miss a shard.
func DiscoverShards(parent string) ([]string, error) {
	entries, err := os.ReadDir(parent)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	type kid struct {
		dir  string
		meta ShardMeta
	}
	var kids []kid
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(parent, e.Name())
		m, ok, err := ReadShardMeta(dir)
		if err != nil {
			return nil, err
		}
		if ok {
			kids = append(kids, kid{dir: dir, meta: m})
		}
	}
	sort.Slice(kids, func(i, j int) bool {
		if kids[i].meta.Index != kids[j].meta.Index {
			return kids[i].meta.Index < kids[j].meta.Index
		}
		return kids[i].dir < kids[j].dir
	})
	out := make([]string, len(kids))
	for i, k := range kids {
		out[i] = k.dir
	}
	return out, nil
}

// expandSources resolves Fold's source spellings: a directory that is
// itself a shard store (or any plain store) stands for itself, while a
// directory that carries no shard.json but contains shard stores
// expands to them — so callers can hand Fold the parent directory a
// dispatcher laid its shard stores out in, instead of enumerating
// every shard by hand.
func expandSources(srcs []string) ([]string, error) {
	out := make([]string, 0, len(srcs))
	for _, dir := range srcs {
		_, ok, err := ReadShardMeta(dir)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, dir)
			continue
		}
		if _, rdErr := os.ReadDir(dir); rdErr != nil {
			// Not an enumerable directory: keep it and let Merge fail
			// (or fold it) with its real error.
			out = append(out, dir)
			continue
		}
		kids, err := DiscoverShards(dir)
		if err != nil {
			// A child's shard.json is broken; skipping it here would
			// let the fold quietly miss a shard.
			return nil, err
		}
		if len(kids) == 0 {
			// A plain pre-shard store: folds with Merge semantics.
			out = append(out, dir)
			continue
		}
		out = append(out, kids...)
	}
	return out, nil
}

// ShardMetaFile is the name of the shard metadata file a sharded
// campaign writes into its per-shard store directory.
const ShardMetaFile = "shard.json"

// ShardMeta records which slice of a sharded campaign a store holds:
// shard Index of Count, with sessions partitioned by corpus index
// (corpus index i belongs to shard i mod Count).
type ShardMeta struct {
	Index int
	Count int
}

// WriteShardMeta records dir's shard assignment (write-then-rename, so
// a crash cannot leave a torn file).
func WriteShardMeta(dir string, m ShardMeta) error {
	if m.Count < 1 || m.Index < 0 || m.Index >= m.Count {
		return fmt.Errorf("store: invalid shard %d/%d", m.Index, m.Count)
	}
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := writeFileAtomic(filepath.Join(dir, ShardMetaFile), b); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// ReadShardMeta reads dir's shard assignment; ok is false when the
// store carries none (an unsharded or pre-shard store). A shard.json
// that parses but records an impossible assignment (index outside
// [0, count)) is an error, not background noise: trusting it would let
// Fold's completeness accounting pass with whole shards missing.
func ReadShardMeta(dir string) (m ShardMeta, ok bool, err error) {
	path := filepath.Join(dir, ShardMetaFile)
	b, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return ShardMeta{}, false, nil
	}
	if err != nil {
		return ShardMeta{}, false, fmt.Errorf("store: %w", err)
	}
	if err := json.Unmarshal(b, &m); err != nil {
		return ShardMeta{}, false, fmt.Errorf("store: %s: %w", path, err)
	}
	if m.Count < 1 || m.Index < 0 || m.Index >= m.Count {
		return ShardMeta{}, false, fmt.Errorf("store: %s records impossible shard %d/%d", path, m.Index, m.Count)
	}
	return m, true, nil
}

// Fold compacts per-shard campaign stores into a fresh store at dst.
// Returns the number of sessions in the folded store. Each source may
// be a shard store itself or a parent directory holding shard stores
// (the layout the dispatch supervisor writes), which expands to them.
//
// When every source carries shard metadata, sources are reordered by
// shard index, and the set must be complete: exactly one store per
// shard of the recorded count. Duplicate indices, disagreeing counts
// and missing shards are errors — two stores claiming one shard is a
// deployment mistake silent picking would make nondeterministic, and
// a partial fold would serve an incomplete "campaign" under the full
// campaign fingerprint. Sources without metadata keep caller order.
// Either way the fold itself is Merge: sessions deduplicate by ID,
// last listed source wins.
func Fold(dst string, opt Options, srcs ...string) (n int, err error) {
	if len(srcs) == 0 {
		return 0, errors.New("store: Fold needs at least one source")
	}
	tb := opt.Tracer.Start("fold", dst)
	defer func() {
		tb.SetAttr("sessions", n)
		tb.Finish(err)
	}()
	orderT0 := tb.Now()
	srcs, err = expandSources(srcs)
	if err != nil {
		return 0, err
	}
	ordered, err := orderByShard(srcs)
	if err != nil {
		return 0, err
	}
	fp, err := commonFingerprint(ordered)
	if err != nil {
		return 0, err
	}
	tb.Span("order", orderT0, map[string]any{"sources": len(ordered)})
	mergeT0 := tb.Now()
	n, err = Merge(dst, opt, ordered...)
	if err != nil {
		return 0, err
	}
	tb.Span("merge", mergeT0, nil)
	if fp != nil {
		if err := writeFileAtomic(filepath.Join(dst, CampaignMetaFile), fp); err != nil {
			return 0, fmt.Errorf("store: %w", err)
		}
	}
	return n, nil
}

// orderByShard sorts srcs by recorded shard index when every source
// carries shard metadata, validating that no two sources claim the
// same shard, that all agree on the shard count, and that the shard
// set is complete. When no source carries metadata (pre-shard stores)
// the caller's order is kept; a mix is an error — one metadata-less
// source must not silently disable the shard validation for the rest.
func orderByShard(srcs []string) ([]string, error) {
	type src struct {
		dir  string
		meta ShardMeta
	}
	var (
		withMeta    []src
		withoutMeta []string
	)
	for _, dir := range srcs {
		m, ok, err := ReadShardMeta(dir)
		if err != nil {
			return nil, err
		}
		if !ok {
			withoutMeta = append(withoutMeta, dir)
			continue
		}
		withMeta = append(withMeta, src{dir: dir, meta: m})
	}
	if len(withMeta) == 0 {
		return append([]string(nil), srcs...), nil // pre-shard stores: keep caller order
	}
	if len(withoutMeta) > 0 {
		return nil, fmt.Errorf("store: fold mixes shard stores with store(s) carrying no %s (%v); fold the shards alone, then compact the rest with Merge",
			ShardMetaFile, withoutMeta)
	}
	count := withMeta[0].meta.Count
	seen := make(map[int]string, len(withMeta))
	for _, s := range withMeta {
		if s.meta.Count != count {
			return nil, fmt.Errorf("store: fold sources disagree on shard count (%s says %d, %s says %d)",
				withMeta[0].dir, count, s.dir, s.meta.Count)
		}
		if prev, dup := seen[s.meta.Index]; dup {
			return nil, fmt.Errorf("store: fold sources %s and %s both claim shard %d/%d",
				prev, s.dir, s.meta.Index, s.meta.Count)
		}
		seen[s.meta.Index] = s.dir
	}
	if len(withMeta) != count {
		// A partial fold would carry the full campaign fingerprint
		// while missing whole shards' sessions — it must fail loudly,
		// not serve a silently incomplete "campaign". (MergeStores is
		// the escape hatch for deliberately partial compactions.)
		var missing []int
		for i := 0; i < count; i++ {
			if _, ok := seen[i]; !ok {
				missing = append(missing, i)
			}
		}
		return nil, fmt.Errorf("store: fold has %d of %d shards (missing shard(s) %v)", len(withMeta), count, missing)
	}
	sort.Slice(withMeta, func(i, j int) bool { return withMeta[i].meta.Index < withMeta[j].meta.Index })
	out := make([]string, len(withMeta))
	for i, s := range withMeta {
		out[i] = s.dir
	}
	return out, nil
}

// commonFingerprint returns the campaign.json shared by every source
// that carries one (nil when none do), erroring on a structural
// conflict.
func commonFingerprint(srcs []string) ([]byte, error) {
	var (
		raw     []byte
		rawVal  any
		rawFrom string
	)
	for _, dir := range srcs {
		b, err := os.ReadFile(filepath.Join(dir, CampaignMetaFile))
		if errors.Is(err, os.ErrNotExist) {
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		var v any
		if err := json.Unmarshal(b, &v); err != nil {
			return nil, fmt.Errorf("store: %s: %w", filepath.Join(dir, CampaignMetaFile), err)
		}
		if raw == nil {
			raw, rawVal, rawFrom = b, v, dir
			continue
		}
		if !reflect.DeepEqual(rawVal, v) {
			return nil, fmt.Errorf("%w: fold sources %s and %s were written under different campaign settings",
				ErrCampaignMismatch, rawFrom, dir)
		}
	}
	return raw, nil
}
