// Package store is the persistence layer of the Veritas fleet: a
// segmented, append-only, checksummed record store for per-session
// causal-query results.
//
// On-disk format. A store is a directory of fixed-prefix segment files
// ("seg-00000.vseg", "seg-00001.vseg", …), each beginning with an
// 8-byte magic and holding a sequence of framed records:
//
//	u32  key length
//	u32  payload length
//	u32  CRC-32 (IEEE) over key ‖ payload
//	key      (the session ID, UTF-8)
//	payload  (the engine.SessionRow, JSON)
//
// Appends go to the newest segment and rotate to a fresh one past
// Options.SegmentBytes, so a long campaign never rewrites old data and
// a reader can back up or ship finished segments while the campaign
// runs.
//
// Crash safety. A crash mid-append leaves a torn frame only at the tail
// of the newest segment; Open detects it (short frame or CRC mismatch),
// truncates the segment back to the last intact record, and reports the
// dropped bytes via Recovered. Torn frames anywhere else are corruption
// and fail Open. Records themselves are immutable once written; a
// re-run session is appended again and the newer record wins.
//
// Memory. The resident index holds (key, scenario, index, location)
// per record — tens of bytes — never payloads, so a store of millions
// of sessions serves point lookups in O(log n) by binary search over
// the sorted key index while the rows stay on disk.
//
// Reopen cost. Sealed segments carry sidecar indexes (see sidecar.go)
// so Open rebuilds the resident index in O(segments) instead of
// re-reading every frame; a missing, stale or corrupt sidecar falls
// back to the full scan of that segment, so pre-sidecar stores open
// unchanged.
package store

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"veritas/internal/engine"
	"veritas/internal/telemetry"
	"veritas/internal/tracing"
)

const (
	segMagic      = "VSTORE1\n"
	segPrefix     = "seg-"
	segSuffix     = ".vseg"
	frameHdrLen   = 12
	maxKeyLen     = 1 << 16
	maxPayloadLen = 1 << 30

	// DefaultSegmentBytes is the rotation threshold when
	// Options.SegmentBytes is zero.
	DefaultSegmentBytes = 1 << 20
)

// ErrReadOnly is returned by Append on a store opened with ReadOnly.
var ErrReadOnly = errors.New("store: opened read-only")

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("store: closed")

// Options configures a store.
type Options struct {
	// SegmentBytes caps a segment's size before appends rotate to a
	// fresh file (default DefaultSegmentBytes).
	SegmentBytes int64
	// ReadOnly opens the store for queries only: Append fails, and a
	// torn tail is skipped in memory instead of truncated on disk (the
	// serving layer must not mutate a store a campaign may still own).
	ReadOnly bool
	// Telemetry, when set, receives the store's operational metrics
	// (names veritas_store_*): append/fsync counters and latency
	// histograms, segment rotations, recovery events, sidecar loads
	// versus scans, plus session-count and generation gauges evaluated
	// at snapshot time.
	Telemetry *telemetry.Registry
	// Tracer, when set, records tail-sampled traces of store operations:
	// appends (with a rotate child span when one triggers), fsyncs, and
	// folds. Like Telemetry, a nil tracer means tracing off; nothing
	// recorded feeds back into what is stored.
	Tracer *tracing.Tracer
}

func (o Options) segmentBytes() int64 {
	if o.SegmentBytes > 0 {
		return o.SegmentBytes
	}
	return DefaultSegmentBytes
}

// entry is one record's slot in the resident index.
type entry struct {
	key      string
	scenario string
	index    int   // engine corpus index, for listings
	seg      int   // segment number
	off      int64 // frame start offset within the segment
}

// Store is an open store directory. All methods are safe for concurrent
// use; Append is serialized internally, so a Store works directly as an
// engine.Sink shared by every fleet worker.
type Store struct {
	dir string
	opt Options

	mu            sync.Mutex
	entries       []entry // sorted by key, deduplicated: latest record wins
	staged        []entry // appended since the last index merge, in append order
	readers       map[int]*os.File
	active        *os.File
	lock          *os.File // writer lock on dir/LOCK, nil when read-only
	activeNum     int
	activeLen     int64
	activeEntries []entry // the active segment's frames, in append order
	recovered     int64
	gen           uint64 // bumped on every append, including same-key overwrites
	sidecarLoads  int    // segments whose index came from a sidecar at Open
	sidecarScans  int    // segments that needed a full frame scan at Open
	closed        bool
	met           storeMetrics

	// Incremental aggregation state (see partials.go). partials is nil
	// until the first Partials() call installs it; partialsReady closes
	// when the initial build completes.
	partials      *engine.Partials
	partialsReady chan struct{}

	// Watch mode (see watch.go). watchPos tracks the scanned byte
	// position per segment; watchEpoch bumps on every reset so fold
	// sequence numbers from before a reset never outrank those after.
	watch      bool
	watchPos   map[int]int64
	watchEpoch uint64
}

func segName(n int) string { return fmt.Sprintf("%s%05d%s", segPrefix, n, segSuffix) }

// parseFrameHeader decodes one frame header, reporting ok=false for
// implausible lengths. Every reader of the frame format — the recovery
// scan, point reads, and the sidecar spot-check — parses through here,
// so a format change cannot leave them disagreeing.
func parseFrameHeader(hdr []byte) (keyLen, payloadLen int, sum uint32, ok bool) {
	k := binary.LittleEndian.Uint32(hdr[0:4])
	p := binary.LittleEndian.Uint32(hdr[4:8])
	sum = binary.LittleEndian.Uint32(hdr[8:12])
	if k == 0 || k > maxKeyLen || p > maxPayloadLen {
		return 0, 0, 0, false
	}
	return int(k), int(p), sum, true
}

// Open opens (or, unless ReadOnly, creates) a store directory,
// recovering from a torn tail segment if a previous writer crashed.
func Open(dir string, opt Options) (*Store, error) {
	if opt.ReadOnly {
		// Fail fast on a mistyped path: a read-only open of nothing
		// would otherwise serve a valid-looking empty corpus.
		if fi, err := os.Stat(dir); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		} else if !fi.IsDir() {
			return nil, fmt.Errorf("store: %s is not a directory", dir)
		}
	} else {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	s := &Store{dir: dir, opt: opt, readers: make(map[int]*os.File), met: newStoreMetrics(opt.Telemetry)}
	if !opt.ReadOnly {
		// Single-writer discipline: two campaigns appending to one
		// store would track offsets independently and corrupt each
		// other's view. The flock is released automatically if the
		// process dies, so crash-resume never needs manual cleanup.
		if err := s.acquireLock(); err != nil {
			return nil, err
		}
	}
	opened := false
	defer func() {
		if !opened {
			s.releaseLock()
		}
	}()
	nums, err := s.segmentNumbers()
	if err != nil {
		return nil, err
	}
	if opt.ReadOnly && len(nums) == 0 {
		return nil, fmt.Errorf("store: %s holds no segments", dir)
	}
	byKey := make(map[string]entry)
	var lastEntries []entry
	for i, num := range nums {
		last := i == len(nums)-1
		segEntries, err := s.loadSegment(num, last)
		if err != nil {
			return nil, err
		}
		for _, e := range segEntries { // frame order: later frames win
			byKey[e.key] = e
		}
		if last {
			lastEntries = segEntries
		}
	}
	s.entries = make([]entry, 0, len(byKey))
	for _, e := range byKey {
		s.entries = append(s.entries, e)
	}
	sort.Slice(s.entries, func(i, j int) bool { return s.entries[i].key < s.entries[j].key })

	if !opt.ReadOnly {
		if len(nums) == 0 {
			if err := s.newSegment(0); err != nil {
				return nil, err
			}
		} else {
			if err := s.openActive(nums[len(nums)-1]); err != nil {
				return nil, err
			}
			// The last segment becomes the active one; keep its frame
			// list so Close (and the next rotation) can write a complete
			// sidecar for it.
			s.activeEntries = lastEntries
		}
	}
	segs := len(nums)
	if segs == 0 && !opt.ReadOnly {
		segs = 1 // the fresh segment created above
	}
	s.met.segments.Set(float64(segs))
	if s.recovered > 0 {
		s.met.recoveries.Inc()
		s.met.recoveredB.Add(uint64(s.recovered))
	}
	s.met.scLoads.Add(uint64(s.sidecarLoads))
	s.met.scScans.Add(uint64(s.sidecarScans))
	if reg := opt.Telemetry; reg != nil {
		// Evaluated at snapshot time, outside the registry lock, so
		// taking s.mu inside is safe. Both keep working after Close.
		reg.RegisterFunc("veritas_store_sessions", telemetry.GaugeFunc, func() float64 { return float64(s.Len()) })
		reg.RegisterFunc("veritas_store_generation", telemetry.GaugeFunc, func() float64 { return float64(s.Generation()) })
	}
	opened = true
	return s, nil
}

// loadSegment rebuilds one segment's slice of the index: from its
// sidecar when one verifies, by a full frame scan otherwise. A sealed
// segment that needed a scan gets its sidecar re-written (healed) so
// the next Open is O(segments) again.
func (s *Store) loadSegment(num int, last bool) ([]entry, error) {
	if entries, ok := s.tryLoadSidecar(num); ok {
		s.sidecarLoads++
		return entries, nil
	}
	entries, err := s.scanSegment(num, last)
	if err != nil {
		return nil, err
	}
	s.sidecarScans++
	if !s.opt.ReadOnly && !last {
		// Best-effort: a failed heal just means another scan next time.
		size := int64(len(segMagic))
		if fi, err := os.Stat(filepath.Join(s.dir, segName(num))); err == nil {
			size = fi.Size()
		}
		_ = s.writeSidecar(num, size, entries)
	}
	return entries, nil
}

// SidecarStats reports how Open rebuilt the resident index: segments
// restored from sidecar indexes versus segments that needed a full
// frame scan (no sidecar, a stale or corrupt one, or a torn tail).
func (s *Store) SidecarStats() (fromSidecar, scanned int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sidecarLoads, s.sidecarScans
}

// Create opens a fresh store, failing if dir already holds segments.
func Create(dir string, opt Options) (*Store, error) {
	if opt.ReadOnly {
		return nil, errors.New("store: Create is incompatible with ReadOnly")
	}
	names, err := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if len(names) > 0 {
		return nil, fmt.Errorf("store: %s already holds %d segment(s)", dir, len(names))
	}
	return Open(dir, opt)
}

func (s *Store) segmentNumbers() ([]int, error) {
	names, err := filepath.Glob(filepath.Join(s.dir, segPrefix+"*"+segSuffix))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	nums := make([]int, 0, len(names))
	for _, name := range names {
		base := filepath.Base(name)
		var n int
		if _, err := fmt.Sscanf(base, segPrefix+"%d"+segSuffix, &n); err != nil {
			return nil, fmt.Errorf("store: unrecognized segment file %s", base)
		}
		nums = append(nums, n)
	}
	sort.Ints(nums)
	return nums, nil
}

// scanSegment walks one segment's frames, returning every intact record
// in frame order. A torn tail is recovered (truncated, unless
// read-only) when the segment is the last one, and fatal otherwise.
func (s *Store) scanSegment(num int, last bool) ([]entry, error) {
	path := filepath.Join(s.dir, segName(num))
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}

	var entries []entry
	good := int64(0)
	torn := false
	magic := make([]byte, len(segMagic))
	if _, err := io.ReadFull(f, magic); err != nil || string(magic) != segMagic {
		torn = true // segment created but header never landed, or junk
	} else {
		good = int64(len(segMagic))
		hdr := make([]byte, frameHdrLen)
		var buf []byte
		for good < size {
			if _, err := io.ReadFull(f, hdr); err != nil {
				torn = true
				break
			}
			keyLen, payloadLen, sum, ok := parseFrameHeader(hdr)
			if !ok {
				torn = true
				break
			}
			n := keyLen + payloadLen
			if cap(buf) < n {
				buf = make([]byte, n)
			}
			buf = buf[:n]
			if _, err := io.ReadFull(f, buf); err != nil {
				torn = true
				break
			}
			if crc32.ChecksumIEEE(buf) != sum {
				torn = true
				break
			}
			key := string(buf[:keyLen])
			scen, idx := peekRow(buf[keyLen:])
			entries = append(entries, entry{key: key, scenario: scen, index: idx, seg: num, off: good})
			good += frameHdrLen + int64(n)
		}
	}
	if !torn {
		return entries, nil
	}
	if !last {
		return nil, fmt.Errorf("store: %s: corrupt frame at offset %d (%d bytes follow); only the newest segment may be torn",
			path, good, size-good)
	}
	s.recovered += size - good
	if s.opt.ReadOnly {
		return entries, nil
	}
	if err := os.Truncate(path, good); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if good < int64(len(segMagic)) {
		// The crash landed before the magic header itself was durable.
		// Rewrite it, or the records appended next would sit in a
		// header-less segment and be dropped wholesale on the following
		// Open.
		w, err := os.OpenFile(path, os.O_WRONLY|os.O_TRUNC, 0o644)
		if err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		defer w.Close()
		if _, err := w.Write([]byte(segMagic)); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		if err := w.Sync(); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	return entries, nil
}

// peekRow extracts the index fields from a row payload without keeping
// the decoded row.
func peekRow(payload []byte) (scenario string, index int) {
	var row struct {
		Index    int
		Scenario string
	}
	if json.Unmarshal(payload, &row) == nil {
		return row.Scenario, row.Index
	}
	return "", 0
}

func (s *Store) newSegment(num int) error {
	f, err := os.OpenFile(filepath.Join(s.dir, segName(num)), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := f.Write([]byte(segMagic)); err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	s.active = f
	s.activeNum = num
	s.activeLen = int64(len(segMagic))
	s.activeEntries = nil
	return nil
}

func (s *Store) openActive(num int) error {
	path := filepath.Join(s.dir, segName(num))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	s.active = f
	s.activeNum = num
	s.activeLen = size
	return nil
}

// Append persists one session row; the row's ID is its key. A later
// append with the same key supersedes the earlier record.
func (s *Store) Append(row engine.SessionRow) (err error) {
	if row.ID == "" {
		return errors.New("store: row has empty ID")
	}
	if len(row.ID) > maxKeyLen {
		return fmt.Errorf("store: key %q exceeds %d bytes", row.ID[:32]+"…", maxKeyLen)
	}
	payload, err := json.Marshal(row)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	frame := make([]byte, frameHdrLen+len(row.ID)+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(row.ID)))
	binary.LittleEndian.PutUint32(frame[4:8], uint32(len(payload)))
	copy(frame[frameHdrLen:], row.ID)
	copy(frame[frameHdrLen+len(row.ID):], payload)
	binary.LittleEndian.PutUint32(frame[8:12], crc32.ChecksumIEEE(frame[frameHdrLen:]))

	var t0 time.Time
	if s.met.appendSec != nil {
		t0 = time.Now()
	}
	tb := s.opt.Tracer.Start("append", row.ID)
	defer func() { tb.Finish(err) }()
	tb.SetAttr("bytes", len(frame))
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case s.closed:
		return ErrClosed
	case s.opt.ReadOnly:
		return ErrReadOnly
	}
	if s.activeLen+int64(len(frame)) > s.opt.segmentBytes() && s.activeLen > int64(len(segMagic)) {
		rotT0 := tb.Now()
		if err := s.active.Sync(); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		if err := s.active.Close(); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		// Seal the segment with its sidecar so the next Open skips the
		// frame scan. Best-effort: the frames are the source of truth.
		_ = s.writeSidecar(s.activeNum, s.activeLen, s.activeEntries)
		if err := s.newSegment(s.activeNum + 1); err != nil {
			return err
		}
		s.met.fsyncs.Inc()
		s.met.rotations.Inc()
		s.met.segments.Add(1)
		tb.Span("rotate", rotT0, map[string]any{"segment": s.activeNum})
	}
	off := s.activeLen
	if _, err := s.active.Write(frame); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.activeLen += int64(len(frame))
	s.gen++
	s.met.appends.Inc()
	s.met.appendBytes.Add(uint64(len(frame)))
	s.met.appendSec.Since(t0)
	e := entry{
		key: row.ID, scenario: row.Scenario, index: row.Index,
		seg: s.activeNum, off: off,
	}
	s.staged = append(s.staged, e)
	s.activeEntries = append(s.activeEntries, e)
	if s.partials != nil {
		// Fold the appended row into the live partial aggregates. The
		// sequence number is the frame's location, so a concurrent
		// initial build re-reading an older record for the same session
		// can never clobber this newer one.
		s.partials.FoldRow(row, packSeq(s.watchEpoch, s.activeNum, off))
		s.met.partialFolds.Inc()
	}
	return nil
}

// Generation returns a counter that increases on every append — unlike
// Len, it also moves when an existing session is overwritten, which is
// what serving-layer caches must key on.
func (s *Store) Generation() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gen
}

// Put adapts the store to engine.Sink: each completed session result is
// reduced to its row and appended.
func (s *Store) Put(r engine.SessionResult) error { return s.Append(r.Row()) }

// Sync flushes the active segment to stable storage.
func (s *Store) Sync() (err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.active == nil {
		return nil
	}
	var t0 time.Time
	if s.met.fsyncSec != nil {
		t0 = time.Now()
	}
	tb := s.opt.Tracer.Start("fsync", segName(s.activeNum))
	defer func() { tb.Finish(err) }()
	if err := s.active.Sync(); err != nil {
		return err
	}
	s.met.fsyncs.Inc()
	s.met.fsyncSec.Since(t0)
	return nil
}

// Close syncs and releases every file handle. The store is unusable
// afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	if !s.opt.ReadOnly {
		// Persist the partial aggregates so the next open (or a watch
		// reader) restores them instead of re-reducing every row.
		// Best-effort: the frames are the source of truth.
		_ = s.savePartialsLocked()
	}
	s.closed = true
	var first error
	if s.active != nil {
		if err := s.active.Sync(); err != nil && first == nil {
			first = err
		} else if err == nil {
			s.met.fsyncs.Inc()
		}
		if err := s.active.Close(); err != nil && first == nil {
			first = err
		}
		s.active = nil
		// A clean close seals the active segment too: with every
		// segment carrying a current sidecar, the next Open rebuilds
		// the whole index without scanning a single frame.
		_ = s.writeSidecar(s.activeNum, s.activeLen, s.activeEntries)
	}
	for _, f := range s.readers {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.readers = nil
	s.releaseLock()
	return first
}

// writeFileAtomic writes data to path through a same-directory temp
// file, fsync and rename, so a crash leaves either the old file or the
// complete new one, never a torn mix. Shared by every metadata write
// (campaign.json, shard.json, sidecars).
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	// The rename itself lives in the directory entry: without a
	// directory fsync a power loss can forget the installation even
	// though the file's bytes were synced.
	if d, err := os.Open(filepath.Dir(path)); err == nil {
		// Best-effort: some filesystems refuse directory fsync; the
		// rename is then only as durable as the mount makes it.
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Recovered returns the number of torn-tail bytes dropped during Open.
func (s *Store) Recovered() int64 { return s.recovered }

// mergeIndex folds staged entries into the sorted index. Caller holds mu.
func (s *Store) mergeIndex() {
	if len(s.staged) == 0 {
		return
	}
	byKey := make(map[string]entry, len(s.entries)+len(s.staged))
	for _, e := range s.entries {
		byKey[e.key] = e
	}
	for _, e := range s.staged { // append order: later wins
		byKey[e.key] = e
	}
	s.staged = s.staged[:0]
	s.entries = s.entries[:0]
	for _, e := range byKey {
		s.entries = append(s.entries, e)
	}
	sort.Slice(s.entries, func(i, j int) bool { return s.entries[i].key < s.entries[j].key })
}

// snapshotIndex returns the merged, key-sorted index. The slice must
// not be mutated.
func (s *Store) snapshotIndex() []entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mergeIndex()
	out := make([]entry, len(s.entries))
	copy(out, s.entries)
	return out
}

// Len returns the number of distinct sessions stored.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mergeIndex()
	return len(s.entries)
}

// Has reports whether a session with the given ID is stored.
func (s *Store) Has(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mergeIndex()
	i := sort.Search(len(s.entries), func(i int) bool { return s.entries[i].key >= key })
	return i < len(s.entries) && s.entries[i].key == key
}

// Keys returns every stored session ID in sorted order — the resume
// skip set `cmd/fleet -resume` feeds back into the engine.
func (s *Store) Keys() []string {
	idx := s.snapshotIndex()
	out := make([]string, len(idx))
	for i, e := range idx {
		out[i] = e.key
	}
	return out
}

// SessionInfo is one index row of a listing: enough to enumerate a
// corpus without touching payloads.
type SessionInfo struct {
	ID       string
	Index    int
	Scenario string
}

// Sessions lists the stored sessions (sorted by ID), optionally
// restricted to one scenario.
func (s *Store) Sessions(scenario string) []SessionInfo {
	var out []SessionInfo
	for _, e := range s.snapshotIndex() {
		if scenario != "" && e.scenario != scenario {
			continue
		}
		out = append(out, SessionInfo{ID: e.key, Index: e.index, Scenario: e.scenario})
	}
	return out
}

// Scenarios returns the distinct scenario labels stored with their
// session counts, sorted by label.
func (s *Store) Scenarios() []ScenarioInfo {
	counts := make(map[string]int)
	for _, e := range s.snapshotIndex() {
		counts[e.scenario]++
	}
	out := make([]ScenarioInfo, 0, len(counts))
	for name, n := range counts {
		out = append(out, ScenarioInfo{Scenario: name, Sessions: n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Scenario < out[j].Scenario })
	return out
}

// ScenarioInfo is one scenario's entry in a listing.
type ScenarioInfo struct {
	Scenario string
	Sessions int
}

// Version returns an opaque identifier of the record currently backing
// key — it changes exactly when the session is overwritten, which is
// what per-session read caches key on. ok is false for unknown keys.
func (s *Store) Version(key string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mergeIndex()
	i := sort.Search(len(s.entries), func(i int) bool { return s.entries[i].key >= key })
	if i >= len(s.entries) || s.entries[i].key != key {
		return "", false
	}
	return fmt.Sprintf("%d:%d", s.entries[i].seg, s.entries[i].off), true
}

// Get returns the stored row for a session ID.
func (s *Store) Get(key string) (engine.SessionRow, bool, error) {
	s.mu.Lock()
	s.mergeIndex()
	i := sort.Search(len(s.entries), func(i int) bool { return s.entries[i].key >= key })
	if i >= len(s.entries) || s.entries[i].key != key {
		s.mu.Unlock()
		return engine.SessionRow{}, false, nil
	}
	e := s.entries[i]
	s.mu.Unlock()
	row, err := s.readRow(e)
	if err != nil {
		return engine.SessionRow{}, false, err
	}
	return row, true, nil
}

// reader returns a shared read handle for a segment.
func (s *Store) reader(seg int) (*os.File, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.readerLocked(seg)
}

// readerLocked is reader for callers already holding mu (the watch
// refresh tails segments under the store lock).
func (s *Store) readerLocked(seg int) (*os.File, error) {
	if s.closed {
		return nil, ErrClosed
	}
	if f, ok := s.readers[seg]; ok {
		return f, nil
	}
	f, err := os.Open(filepath.Join(s.dir, segName(seg)))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s.readers[seg] = f
	return f, nil
}

// readRow reads and verifies one frame.
func (s *Store) readRow(e entry) (engine.SessionRow, error) {
	f, err := s.reader(e.seg)
	if err != nil {
		return engine.SessionRow{}, err
	}
	return s.readRowFrom(f, e)
}

// readRowFrom is readRow against an already-resolved segment handle; it
// takes no locks (ReadAt is position-independent), so it serves both
// the unlocked scan path and the watch refresh under mu.
func (s *Store) readRowFrom(f *os.File, e entry) (engine.SessionRow, error) {
	var row engine.SessionRow
	s.met.reads.Inc()
	hdr := make([]byte, frameHdrLen)
	if _, err := f.ReadAt(hdr, e.off); err != nil {
		return row, fmt.Errorf("store: %s@%d: %w", segName(e.seg), e.off, err)
	}
	keyLen, payloadLen, sum, ok := parseFrameHeader(hdr)
	if !ok {
		return row, fmt.Errorf("store: %s@%d: implausible frame header", segName(e.seg), e.off)
	}
	buf := make([]byte, keyLen+payloadLen)
	if _, err := f.ReadAt(buf, e.off+frameHdrLen); err != nil {
		return row, fmt.Errorf("store: %s@%d: %w", segName(e.seg), e.off, err)
	}
	if crc32.ChecksumIEEE(buf) != sum {
		return row, fmt.Errorf("store: %s@%d: checksum mismatch", segName(e.seg), e.off)
	}
	if err := json.Unmarshal(buf[keyLen:], &row); err != nil {
		return row, fmt.Errorf("store: %s@%d: %w", segName(e.seg), e.off, err)
	}
	return row, nil
}

// Scan streams every stored row (latest per key, sorted by key) through
// fn, reading one row at a time — the bounded-memory iteration path
// that aggregation and compaction are built on. fn errors abort the
// scan.
func (s *Store) Scan(fn func(engine.SessionRow) error) error {
	for _, e := range s.snapshotIndex() {
		row, err := s.readRow(e)
		if err != nil {
			return err
		}
		if err := fn(row); err != nil {
			return err
		}
	}
	return nil
}

// Aggregate replays every stored row into a fresh engine aggregator.
// The resulting aggregates — and the Report built from them — are
// byte-identical to the in-RAM aggregation of the campaign(s) that
// produced the store.
func (s *Store) Aggregate() (*engine.Aggregator, error) {
	return s.AggregateScenario("")
}

// AggregateScenario aggregates only the sessions of one scenario
// (empty means all).
func (s *Store) AggregateScenario(scenario string) (*engine.Aggregator, error) {
	agg := engine.NewAggregator(s.Len())
	err := s.Scan(func(row engine.SessionRow) error {
		if scenario == "" || row.Scenario == scenario {
			agg.AddRow(row)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return agg, nil
}

// Merge folds one or more source stores into a fresh store at dst — the
// compaction pass. Sessions are deduplicated by ID last-write-wins in
// srcs order: when two sources hold the same key, the source listed
// later wins, whatever order a directory walk produced the list in —
// the caller's ordering IS the precedence, so equal srcs slices give
// byte-identical merged stores. (Fold derives that ordering from shard
// metadata; Merge itself never reorders.) Superseded and torn records
// are dropped, and the surviving records are written in sorted key
// order, one at a time, so compaction memory is bounded by a single
// row. Returns the number of sessions in the merged store.
func Merge(dst string, opt Options, srcs ...string) (int, error) {
	if len(srcs) == 0 {
		return 0, errors.New("store: Merge needs at least one source")
	}
	opened := make([]*Store, 0, len(srcs))
	defer func() {
		for _, st := range opened {
			st.Close()
		}
	}()
	winner := make(map[string]int) // key -> index into opened
	for i, dir := range srcs {
		st, err := Open(dir, Options{ReadOnly: true})
		if err != nil {
			return 0, fmt.Errorf("store: merge source %s: %w", dir, err)
		}
		opened = append(opened, st)
		for _, k := range st.Keys() {
			winner[k] = i
		}
	}
	keys := make([]string, 0, len(winner))
	for k := range winner {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	out, err := Create(dst, opt)
	if err != nil {
		return 0, err
	}
	defer out.Close()
	for _, k := range keys {
		row, ok, err := opened[winner[k]].Get(k)
		if err != nil {
			return 0, err
		}
		if !ok {
			return 0, fmt.Errorf("store: merge lost key %q", k)
		}
		if err := out.Append(row); err != nil {
			return 0, err
		}
	}
	if err := out.Sync(); err != nil {
		return 0, err
	}
	return len(keys), nil
}
