package tcp

import (
	"math"
	"testing"
)

// The hot path feeds the estimator raw per-chunk log values, so
// zero-byte chunks and degenerate TCP states must never escape as NaN
// or ±Inf into emissions, predictions, or JSON-marshaled store rows.

func TestEstimateThroughputDegenerateInputs(t *testing.T) {
	fresh := Fresh(0.08)
	zeroRTT := fresh
	zeroRTT.MinRTT = 0
	negRTT := fresh
	negRTT.MinRTT = -1
	cases := []struct {
		name string
		gtbw float64
		st   State
		size float64
		want float64
		ok   func(float64) bool
	}{
		{name: "zero size", gtbw: 5, st: fresh, size: 0, want: 0},
		{name: "negative size", gtbw: 5, st: fresh, size: -100, want: 0},
		{name: "zero gtbw", gtbw: 0, st: fresh, size: 1e6, want: 0},
		{name: "negative gtbw", gtbw: -2, st: fresh, size: 1e6, want: 0},
		{name: "zero min rtt is link-limited", gtbw: 5, st: zeroRTT, size: 1e6, want: 5},
		{name: "negative min rtt is link-limited", gtbw: 5, st: negRTT, size: 1e6, want: 5},
		{name: "everything zero", gtbw: 0, st: State{}, size: 0, want: 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := EstimateThroughput(tc.gtbw, tc.st, tc.size)
			if math.IsNaN(got) || math.IsInf(got, 0) {
				t.Fatalf("EstimateThroughput(%v, %+v, %v) = %v, escaped as non-finite",
					tc.gtbw, tc.st, tc.size, got)
			}
			if got != tc.want {
				t.Errorf("EstimateThroughput(%v, ..., %v) = %v, want %v", tc.gtbw, tc.size, got, tc.want)
			}
		})
	}
}

func TestEstimateDownloadTimeDegenerateInputs(t *testing.T) {
	fresh := Fresh(0.08)
	cases := []struct {
		name    string
		gtbw    float64
		st      State
		size    float64
		want    float64
		wantInf bool
	}{
		// A zero-byte chunk takes zero time — before the fix this
		// returned +Inf, which poisons prediction aggregates and fails
		// encoding/json when predictions are persisted.
		{name: "zero size", gtbw: 5, st: fresh, size: 0, want: 0},
		{name: "negative size", gtbw: 5, st: fresh, size: -1, want: 0},
		{name: "zero size on dead link", gtbw: 0, st: fresh, size: 0, want: 0},
		// A positive payload over a dead link genuinely never finishes.
		{name: "positive size on dead link", gtbw: 0, st: fresh, size: 1e6, wantInf: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := EstimateDownloadTime(tc.gtbw, tc.st, tc.size)
			if math.IsNaN(got) {
				t.Fatalf("EstimateDownloadTime = NaN")
			}
			if tc.wantInf {
				if !math.IsInf(got, 1) {
					t.Fatalf("EstimateDownloadTime = %v, want +Inf", got)
				}
				return
			}
			if got != tc.want {
				t.Errorf("EstimateDownloadTime = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestSegmentsDegenerateInputs(t *testing.T) {
	cases := []struct {
		bytes float64
		want  int
	}{{0, 0}, {-5, 0}, {1, 1}, {MSS, 1}, {MSS + 1, 2}}
	for _, tc := range cases {
		if got := Segments(tc.bytes); got != tc.want {
			t.Errorf("Segments(%v) = %d, want %d", tc.bytes, got, tc.want)
		}
	}
}

func TestMbpsDegenerateInputs(t *testing.T) {
	for _, secs := range []float64{0, -1} {
		if got := Mbps(1e6, secs); got != 0 {
			t.Errorf("Mbps(1e6, %v) = %v, want 0", secs, got)
		}
	}
}
