package tcp

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSegments(t *testing.T) {
	cases := []struct {
		bytes float64
		want  int
	}{
		{0, 0}, {-5, 0}, {1, 1}, {MSS, 1}, {MSS + 1, 2}, {10 * MSS, 10},
	}
	for _, c := range cases {
		if got := Segments(c.bytes); got != c.want {
			t.Errorf("Segments(%v) = %d, want %d", c.bytes, got, c.want)
		}
	}
}

func TestBDPSegments(t *testing.T) {
	// 10 Mbps × 80 ms = 100 kB = 69 segments of 1448 B.
	got := BDPSegments(10, 0.080)
	bdpBytes := 10e6 / 8 * 0.080
	want := int(bdpBytes / MSS)
	if got != want {
		t.Errorf("BDPSegments = %d, want %d", got, want)
	}
	// Tiny rates floor at one segment.
	if got := BDPSegments(0.001, 0.01); got != 1 {
		t.Errorf("BDPSegments floor = %d, want 1", got)
	}
}

func TestRTOFor(t *testing.T) {
	if got := RTOFor(0.010); got != 0.2 {
		t.Errorf("RTOFor(10ms) = %v, want 0.2 floor", got)
	}
	if got := RTOFor(0.5); got != 1.0 {
		t.Errorf("RTOFor(500ms) = %v, want 1.0", got)
	}
}

func TestFreshValid(t *testing.T) {
	s := Fresh(0.080)
	if err := s.Validate(); err != nil {
		t.Errorf("Fresh state invalid: %v", err)
	}
	if s.CWND != InitCWND {
		t.Errorf("Fresh cwnd = %v, want %v", s.CWND, float64(InitCWND))
	}
}

func TestValidateCatchesBadFields(t *testing.T) {
	good := Fresh(0.08)
	mutations := []func(*State){
		func(s *State) { s.CWND = 0 },
		func(s *State) { s.SSThresh = 0 },
		func(s *State) { s.MinRTT = 0 },
		func(s *State) { s.RTO = -1 },
		func(s *State) { s.LastSendGap = -1 },
	}
	for i, mut := range mutations {
		s := good
		mut(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("mutation %d not caught by Validate", i)
		}
	}
}

func TestSSRNoopWhenNotIdle(t *testing.T) {
	s := Fresh(0.08)
	s.CWND = 100
	s.LastSendGap = 0.05 // below RTO
	got := ApplySlowStartRestart(s)
	if got.CWND != 100 {
		t.Errorf("SSR should not fire below RTO: cwnd %v", got.CWND)
	}
}

func TestSSRHalvesPerRTO(t *testing.T) {
	s := Fresh(0.08)
	s.CWND = 80
	s.SSThresh = 10
	s.RTO = 0.2
	s.LastSendGap = 0.5 // two full RTOs of idle -> two halvings
	got := ApplySlowStartRestart(s)
	if got.CWND != 20 {
		t.Errorf("cwnd after 2 halvings = %v, want 20", got.CWND)
	}
	// ssthresh raised to 3/4 of pre-decay cwnd.
	if got.SSThresh != 60 {
		t.Errorf("ssthresh = %v, want 60", got.SSThresh)
	}
}

func TestSSRFloorsAtInitCWND(t *testing.T) {
	s := Fresh(0.08)
	s.CWND = 64
	s.LastSendGap = 100 // very long idle
	got := ApplySlowStartRestart(s)
	if got.CWND != InitCWND {
		t.Errorf("cwnd floor = %v, want %v", got.CWND, float64(InitCWND))
	}
}

func TestEstimateThroughputZeroInputs(t *testing.T) {
	s := Fresh(0.08)
	if got := EstimateThroughput(5, s, 0); got != 0 {
		t.Errorf("zero size should give 0, got %v", got)
	}
	if got := EstimateThroughput(0, s, 1e6); got != 0 {
		t.Errorf("zero bandwidth should give 0, got %v", got)
	}
}

func TestEstimateThroughputLargeTransferSteadyState(t *testing.T) {
	// A hot connection (cwnd above BDP) downloading far more than the
	// BDP observes the full link rate.
	s := Fresh(0.08)
	s.CWND = 1000
	s.SSThresh = 1000
	got := EstimateThroughput(10, s, 50e6)
	if got != 10 {
		t.Errorf("steady-state throughput = %v, want 10", got)
	}
}

func TestEstimateThroughputSingleFlight(t *testing.T) {
	// A payload that fits in one window on a hot connection takes one
	// RTT: throughput = size / minRTT.
	s := Fresh(0.08)
	s.CWND = 1000
	size := 5 * float64(MSS)
	got := EstimateThroughput(10, s, size)
	want := size * 8 / 1e6 / s.MinRTT
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("single-flight throughput = %v, want %v", got, want)
	}
}

func TestEstimateThroughputSlowStartPenalty(t *testing.T) {
	// A cold connection needs multiple doubling rounds: observed
	// throughput is well below the link rate for mid-size payloads.
	cold := Fresh(0.08) // cwnd = 10
	size := 500e3       // ~345 segments, BDP at 18 Mbps/80 ms = ~124 segs
	got := EstimateThroughput(18, cold, size)
	if got >= 18 {
		t.Errorf("cold connection should see < link rate, got %v", got)
	}
	if got <= 0 {
		t.Errorf("throughput should be positive, got %v", got)
	}
}

func TestEstimateThroughputNeverExceedsGTBW(t *testing.T) {
	f := func(cwndRaw, sizeRaw uint16, gtbwRaw uint8) bool {
		s := Fresh(0.08)
		s.CWND = float64(cwndRaw%200) + 1
		s.SSThresh = 50
		size := float64(sizeRaw)*1000 + 1000
		gtbw := float64(gtbwRaw%20) + 0.5
		got := EstimateThroughput(gtbw, s, size)
		return got <= gtbw+1e-9 && got >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEstimateThroughputMonotoneInGTBWForLargePayload(t *testing.T) {
	// For payloads well above the BDP the estimate should track GTBW.
	s := Fresh(0.08)
	s.CWND = 2000
	s.SSThresh = 2000
	prev := 0.0
	for gtbw := 1.0; gtbw <= 10; gtbw += 1 {
		got := EstimateThroughput(gtbw, s, 100e6)
		if got < prev {
			t.Errorf("estimate decreased: %v -> %v at gtbw %v", prev, got, gtbw)
		}
		prev = got
	}
}

func TestEstimateThroughputSSRReducesThroughput(t *testing.T) {
	// Same connection, same payload: a long idle gap (triggering SSR)
	// must not increase estimated throughput.
	hot := Fresh(0.08)
	hot.CWND = 200
	hot.SSThresh = 10
	hot.LastSendGap = 0.01

	idle := hot
	idle.LastSendGap = 5

	size := 300e3
	tputHot := EstimateThroughput(8, hot, size)
	tputIdle := EstimateThroughput(8, idle, size)
	if tputIdle > tputHot+1e-9 {
		t.Errorf("SSR increased throughput: idle %v > hot %v", tputIdle, tputHot)
	}
	if tputIdle >= tputHot {
		t.Logf("note: SSR made no difference (hot %v, idle %v)", tputHot, tputIdle)
	}
}

func TestEstimateDownloadTimeConsistency(t *testing.T) {
	s := Fresh(0.08)
	size := 2e6
	tput := EstimateThroughput(5, s, size)
	dt := EstimateDownloadTime(5, s, size)
	want := size * 8 / (tput * 1e6)
	if math.Abs(dt-want) > 1e-9 {
		t.Errorf("EstimateDownloadTime = %v, want %v", dt, want)
	}
}

func TestEstimateDownloadTimeZeroBandwidth(t *testing.T) {
	s := Fresh(0.08)
	if got := EstimateDownloadTime(0, s, 1e6); !math.IsInf(got, 1) {
		t.Errorf("zero bandwidth download time = %v, want +Inf", got)
	}
}

func TestMbps(t *testing.T) {
	// 1 MB in 1 s = 8 Mbps.
	if got := Mbps(1e6, 1); got != 8 {
		t.Errorf("Mbps = %v, want 8", got)
	}
	if got := Mbps(1e6, 0); got != 0 {
		t.Errorf("Mbps with zero time = %v, want 0", got)
	}
}
