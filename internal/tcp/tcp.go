// Package tcp models the transport-level control variables Veritas
// conditions on: the TCP state observed at the start of each chunk
// download (the fields of Linux's tcp_info that the paper logs) and the
// throughput estimator f (paper Algorithm 4) that predicts the throughput
// a download of a given size would observe for a candidate ground-truth
// bandwidth.
package tcp

import (
	"fmt"
	"math"
)

const (
	// MSS is the maximum segment size in bytes (1500 MTU minus headers),
	// the unit in which cwnd and ssthresh are counted.
	MSS = 1448

	// InitCWND is the Linux default initial congestion window in
	// segments (RFC 6928).
	InitCWND = 10

	// DefaultSSThresh mirrors Linux's effectively-unbounded initial slow
	// start threshold.
	DefaultSSThresh = 1 << 20
)

// State is the TCP state at the start of a chunk download — the control
// variables W_sn of the paper (cwnd, ssthresh, rto, RTT estimates, and
// the gap since the last send, which determines slow-start restart).
type State struct {
	CWND        float64 // congestion window, in segments
	SSThresh    float64 // slow start threshold, in segments
	MinRTT      float64 // minimum observed round-trip time, seconds
	RTT         float64 // smoothed round-trip time, seconds
	RTO         float64 // retransmission timeout, seconds
	LastSendGap float64 // seconds since data was last transmitted
}

// Fresh returns the state of a brand-new connection with the given
// round-trip time.
func Fresh(rtt float64) State {
	return State{
		CWND:        InitCWND,
		SSThresh:    DefaultSSThresh,
		MinRTT:      rtt,
		RTT:         rtt,
		RTO:         RTOFor(rtt),
		LastSendGap: 0,
	}
}

// RTOFor returns the retransmission timeout Linux would derive from a
// smoothed RTT with negligible variance: max(200ms, 2*rtt) approximates
// srtt + 4*rttvar with the kernel's 200 ms floor on the variance term.
func RTOFor(rtt float64) float64 {
	rto := 2 * rtt
	if rto < 0.2 {
		rto = 0.2
	}
	return rto
}

// Validate reports the first invalid field, if any.
func (s State) Validate() error {
	switch {
	case s.CWND < 1:
		return fmt.Errorf("tcp: cwnd %v < 1 segment", s.CWND)
	case s.SSThresh < 1:
		return fmt.Errorf("tcp: ssthresh %v < 1 segment", s.SSThresh)
	case s.MinRTT <= 0:
		return fmt.Errorf("tcp: min rtt %v <= 0", s.MinRTT)
	case s.RTO <= 0:
		return fmt.Errorf("tcp: rto %v <= 0", s.RTO)
	case s.LastSendGap < 0:
		return fmt.Errorf("tcp: last send gap %v < 0", s.LastSendGap)
	}
	return nil
}

// Segments returns the number of MSS-sized segments needed for a payload
// of the given size in bytes (at least 1 for any positive size).
func Segments(bytes float64) int {
	if bytes <= 0 {
		return 0
	}
	return int(math.Ceil(bytes / MSS))
}

// BDPSegments returns the bandwidth-delay product of a link running at
// gtbw Mbps with the given RTT, expressed in segments (at least 1 so that
// transmission always makes progress).
func BDPSegments(gtbwMbps, rtt float64) int {
	bytes := gtbwMbps * 1e6 / 8 * rtt
	seg := int(bytes / MSS)
	if seg < 1 {
		seg = 1
	}
	return seg
}

// ApplySlowStartRestart returns the state after Linux's congestion-window
// validation (RFC 2861): when the connection has been idle longer than
// the RTO, cwnd is halved once per elapsed RTO down to the initial
// window, and ssthresh is raised to 3/4 of the pre-decay cwnd.
//
// Note: the paper's Algorithm 4 as printed grows cwnd during restart
// ("cwnd << 2"), which contradicts the Linux behaviour it cites; we
// implement the kernel's tcp_cwnd_restart semantics (see DESIGN.md §3).
func ApplySlowStartRestart(s State) State {
	if s.LastSendGap <= s.RTO {
		return s
	}
	// ssthresh = max(ssthresh, 3/4 cwnd) — matches the paper's
	// (cwnd>>1)+(cwnd>>2) update.
	restartThresh := 0.75 * s.CWND
	if restartThresh > s.SSThresh {
		s.SSThresh = restartThresh
	}
	idle := s.LastSendGap
	for idle > s.RTO && s.CWND > InitCWND {
		idle -= s.RTO
		s.CWND /= 2
	}
	if s.CWND < InitCWND {
		s.CWND = InitCWND
	}
	return s
}

// EstimateThroughput is the paper's estimator f (Algorithm 4): the
// throughput in Mbps that a download of sizeBytes would observe on a link
// whose ground-truth bandwidth is gtbwMbps, starting from TCP state s.
//
// The model: after applying slow-start restart, transmission proceeds in
// rounds of one MinRTT each; a round carries min(cwnd, BDP) segments;
// cwnd doubles below ssthresh and grows by one segment per round above
// it. Losses are not modeled. If the first window already covers the
// whole payload the transfer takes a single RTT.
func EstimateThroughput(gtbwMbps float64, s State, sizeBytes float64) float64 {
	if sizeBytes <= 0 {
		return 0
	}
	if gtbwMbps <= 0 {
		return 0
	}
	if s.MinRTT <= 0 {
		// Degenerate state (never valid per Validate, but reachable from
		// raw logs): with no round-trip time the transfer is purely
		// link-limited. Returning gtbwMbps keeps the estimator finite
		// instead of dividing size by a zero RTT below.
		return gtbwMbps
	}
	s = ApplySlowStartRestart(s)

	dataSeg := Segments(sizeBytes)
	bdpSeg := BDPSegments(gtbwMbps, s.MinRTT)

	if int(s.CWND) >= bdpSeg {
		// The window is no constraint: either the transfer is long enough
		// to observe the full link rate, or it fits in one flight and the
		// observed throughput is size over one RTT.
		if dataSeg > bdpSeg {
			return gtbwMbps
		}
		return bytesPerSecToMbps(sizeBytes / s.MinRTT)
	}

	rounds := 0
	sent := 0
	cwnd := s.CWND
	for sent < dataSeg {
		flight := math.Min(cwnd, float64(bdpSeg))
		sent += int(flight)
		if flight < 1 {
			sent++ // defensive: guarantee progress
		}
		if cwnd < s.SSThresh {
			cwnd *= 2
		} else {
			cwnd++
		}
		rounds++
	}
	est := bytesPerSecToMbps(sizeBytes / (float64(rounds) * s.MinRTT))
	return math.Min(est, gtbwMbps)
}

// EstimateDownloadTime converts EstimateThroughput into a predicted
// download duration in seconds for the given chunk size. A zero-byte
// chunk downloads in zero time (the estimator's zero throughput for it
// means "no data", not "stalled link"); only a positive payload over a
// dead link predicts +Inf.
func EstimateDownloadTime(gtbwMbps float64, s State, sizeBytes float64) float64 {
	if sizeBytes <= 0 {
		return 0
	}
	tput := EstimateThroughput(gtbwMbps, s, sizeBytes)
	if tput <= 0 {
		return math.Inf(1)
	}
	return sizeBytes * 8 / (tput * 1e6)
}

func bytesPerSecToMbps(bps float64) float64 { return bps * 8 / 1e6 }

// Mbps converts a (bytes, seconds) observation into the throughput in
// Mbps, the Y_n = S_n/D_n observable of the paper.
func Mbps(bytes, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return bytes * 8 / 1e6 / seconds
}
