package fleetd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"

	"veritas/internal/dispatch"
	"veritas/internal/serve"
	"veritas/internal/store"
	"veritas/internal/telemetry"
	"veritas/internal/tracing"
)

// Config parameterizes a fleet dispatcher.
type Config struct {
	// Shards is the campaign's shard count — the unit of leasing.
	Shards int
	// Dir is the parent directory accepted shard stores land under,
	// laid out exactly like a local dispatch (dispatch.ShardDir), so
	// FoldShards and `fleet -fold` work on it unchanged. Created if
	// missing. Verified shard stores already present are counted done
	// (a previous interrupted fleet run resumes).
	Dir string
	// FoldInto, when non-empty, is the store directory the shard
	// stores are folded into once every shard's upload is accepted.
	FoldInto string
	// Fingerprints are the acceptable campaign.json forms; uploads are
	// verified against them before acceptance, and the fold target's
	// replaceability check uses them exactly as a local dispatch does.
	Fingerprints [][]byte
	// Spec is the opaque worker spec template each lease carries to
	// its agent (the facade's workerSpec without shard assignment; the
	// agent fills shard/of/store and hands it to the worker process
	// via the environment). The dispatcher never interprets it.
	Spec json.RawMessage
	// LeaseTTL is the heartbeat deadline (default DefaultLeaseTTL). An
	// agent that goes LeaseTTL without renewing loses its shard.
	LeaseTTL time.Duration
	// MaxLease, when positive, is the hard straggler deadline: a lease
	// older than this is revoked even if its agent still heartbeats,
	// so one slow machine cannot hold the campaign's tail hostage.
	// Heartbeats renew the TTL, never the deadline.
	MaxLease time.Duration
	// MaxGrants caps leases per shard before the campaign fails
	// (default DefaultMaxGrants).
	MaxGrants int
	// OnEvent, when set, receives the dispatcher's serialized event
	// stream: lease grants, steals, relayed progress, accepted
	// uploads, the fold.
	OnEvent func(dispatch.Event)
	// Telemetry and Tracer observe the dispatcher itself; worker
	// telemetry and traces arriving in heartbeats are merged into the
	// same views with per-agent labels. Both may be nil.
	Telemetry *telemetry.Registry
	Tracer    *tracing.Tracer

	// now is the clock (tests); nil means time.Now.
	now func() time.Time
}

func (c Config) leaseTTL() time.Duration {
	if c.LeaseTTL <= 0 {
		return DefaultLeaseTTL
	}
	return c.LeaseTTL
}

// Result summarizes a completed fleet dispatch.
type Result struct {
	// ShardDirs are the accepted per-shard store directories, in shard
	// order.
	ShardDirs []string
	// Steals counts lease revocations (work stealing) across shards.
	Steals int
	// Folded is the session count of the folded store (0 when folding
	// was disabled).
	Folded int
	// Agents are the IDs of every agent that registered, sorted.
	Agents []string
	// Elapsed is wall-clock time from New to fold completion.
	Elapsed time.Duration
}

// agentInfo is the dispatcher's registry row for one agent.
type agentInfo struct {
	lastSeen  time.Time
	completed int
	lost      bool // a lease it held was revoked, nothing seen since
}

// Dispatcher is the fleet control plane: the lease table, the agent
// registry, the upload acceptor, and the HTTP surface agents and
// operators talk to. Create with New, serve Handler, and Wait for the
// campaign to complete.
type Dispatcher struct {
	cfg    Config
	tab    *table
	status *dispatch.Status
	start  time.Time
	dirs   []string

	emitMu sync.Mutex

	mu     sync.Mutex
	agents map[string]*agentInfo
	seq    int

	// reportMu guards the post-fold serving state.
	reportMu sync.Mutex
	reportH  http.Handler
	folded   *store.Store

	// live serves /v1/live/* over the accepted (and still-uploading)
	// shard stores while the campaign runs — the incremental view;
	// /v1/report stays 503 until the fold, as always.
	live *store.LiveHandler
}

// New builds a dispatcher: lays out (or adopts) the shard directory,
// pre-accepts verified shard stores a previous run left, and arms the
// lease table.
func New(cfg Config) (*Dispatcher, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("fleetd: shard count %d must be at least 1", cfg.Shards)
	}
	if cfg.Dir == "" {
		return nil, errors.New("fleetd: Config.Dir is required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("fleetd: %w", err)
	}
	dirs := make([]string, cfg.Shards)
	for i := range dirs {
		dirs[i] = dispatch.ShardDir(cfg.Dir, i)
	}
	d := &Dispatcher{
		cfg:    cfg,
		tab:    newTable(cfg.Shards, cfg.LeaseTTL, cfg.MaxLease, cfg.MaxGrants, cfg.now),
		status: dispatch.NewStatus(cfg.Shards, cfg.Telemetry, cfg.Tracer),
		start:  time.Now(),
		dirs:   dirs,
		agents: make(map[string]*agentInfo),
		live:   store.NewLiveHandler(cfg.Dir, store.ServeOptions{WatchInterval: 250 * time.Millisecond}),
	}
	d.status.SetAgentSource(d.agentRows)
	// Adopt shard stores a previous fleet run completed: anything that
	// verifies as shard i/n of this campaign is done work we must not
	// recompute — and anything that *doesn't* verify is refused now,
	// not at fold time.
	found, err := store.DiscoverShards(cfg.Dir)
	if err != nil {
		return nil, err
	}
	for _, dir := range found {
		m, ok, err := store.ReadShardMeta(dir)
		if err != nil {
			return nil, err
		}
		if !ok {
			// An unstampped directory under Dir is debris from a crashed
			// receive; it was never accepted, so clear it.
			if err := os.RemoveAll(dir); err != nil {
				return nil, fmt.Errorf("fleetd: clearing %s: %w", dir, err)
			}
			continue
		}
		if m.Count != cfg.Shards || dispatch.ShardDir(cfg.Dir, m.Index) != dir {
			return nil, fmt.Errorf("fleetd: %s holds shard %d/%d of another layout, not 1 of %d; fold or remove it first",
				dir, m.Index, m.Count, cfg.Shards)
		}
		n, err := store.VerifyShard(dir, m.Index, m.Count, cfg.Fingerprints)
		if err != nil {
			return nil, fmt.Errorf("fleetd: adopting previous shard store: %w", err)
		}
		d.tab.markDone(m.Index)
		d.emit(dispatch.Event{Type: dispatch.EventUpload, Shard: m.Index, Done: n})
	}
	return d, nil
}

// emit serializes the event stream into the status tracker and the
// caller's OnEvent.
func (d *Dispatcher) emit(e dispatch.Event) {
	d.emitMu.Lock()
	defer d.emitMu.Unlock()
	d.status.Handle(e)
	if d.cfg.OnEvent != nil {
		d.cfg.OnEvent(e)
	}
}

// touch updates an agent's last-seen time.
func (d *Dispatcher) touch(agent string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if a, ok := d.agents[agent]; ok {
		a.lastSeen = time.Now()
		a.lost = false
	}
}

// agentRows renders the registry for /v1/status.
func (d *Dispatcher) agentRows() []dispatch.AgentStatus {
	d.mu.Lock()
	names := make([]string, 0, len(d.agents))
	for name := range d.agents {
		names = append(names, name)
	}
	sort.Strings(names)
	now := time.Now()
	rows := make([]dispatch.AgentStatus, 0, len(names))
	for _, name := range names {
		a := d.agents[name]
		row := dispatch.AgentStatus{
			Agent:           name,
			Completed:       a.completed,
			LastSeenSeconds: now.Sub(a.lastSeen).Seconds(),
		}
		switch {
		case a.lost:
			row.State = "lost"
		default:
			row.State = "idle"
		}
		rows = append(rows, row)
	}
	d.mu.Unlock()
	for i := range rows {
		if shards := d.tab.holderOf(rows[i].Agent); len(shards) > 0 {
			rows[i].Shards = shards
			if rows[i].State == "idle" {
				rows[i].State = "alive"
			}
		}
	}
	return rows
}

// markLost flags the agent a steal was taken from.
func (d *Dispatcher) markLost(agent string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if a, ok := d.agents[agent]; ok {
		a.lost = true
	}
}

// Sweep revokes expired leases, emitting a steal event per revocation.
// Wait runs it on a timer; the lease handler runs it before granting,
// so a single surviving agent steals promptly even between ticks.
func (d *Dispatcher) Sweep() {
	for _, s := range d.tab.sweep() {
		d.markLost(s.agent)
		d.emit(dispatch.Event{
			Type: dispatch.EventSteal, Shard: s.shard, Agent: s.agent, Epoch: s.epoch,
			Err: errors.New(s.reason),
		})
	}
}

// Wait blocks until the campaign completes (every shard's store
// accepted), then folds and returns the result; or until ctx is
// cancelled or the lease table turns fatal. It owns the sweep timer.
func (d *Dispatcher) Wait(ctx context.Context) (*Result, error) {
	interval := d.cfg.leaseTTL() / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-d.tab.completeCh:
			if err := d.tab.err(); err != nil {
				return nil, err
			}
			return d.finish()
		case <-tick.C:
			d.Sweep()
		}
	}
}

// finish folds the accepted shard stores and arms the report handler.
func (d *Dispatcher) finish() (*Result, error) {
	res := &Result{
		ShardDirs: append([]string(nil), d.dirs...),
		Steals:    d.tab.stealCount(),
	}
	d.mu.Lock()
	for name := range d.agents {
		res.Agents = append(res.Agents, name)
	}
	d.mu.Unlock()
	sort.Strings(res.Agents)
	if d.cfg.FoldInto != "" {
		n, err := dispatch.FoldStores(d.cfg.FoldInto, d.dirs, d.cfg.Fingerprints, d.cfg.Tracer)
		if err != nil {
			return nil, err
		}
		res.Folded = n
		d.emit(dispatch.Event{Type: dispatch.EventFold, Done: n})
		// Serve the folded corpus from the fleet port: /v1/report (and
		// the rest of the store query surface) answers 503 until the
		// fold, then byte-identically to any other serving of this
		// campaign.
		st, err := store.Open(d.cfg.FoldInto, store.Options{ReadOnly: true})
		if err != nil {
			return nil, err
		}
		h := serve.New(st, serve.WithTelemetry(d.cfg.Telemetry), serve.WithTracer(d.cfg.Tracer))
		d.reportMu.Lock()
		d.folded, d.reportH = st, h
		d.reportMu.Unlock()
	}
	res.Elapsed = time.Since(d.start)
	return res, nil
}

// Close releases the folded store handle, if serving began, and the
// live tier's tailed shard stores.
func (d *Dispatcher) Close() error {
	liveErr := d.live.Close()
	d.reportMu.Lock()
	defer d.reportMu.Unlock()
	if d.folded != nil {
		err := d.folded.Close()
		d.folded, d.reportH = nil, nil
		if err != nil {
			return err
		}
	}
	return liveErr
}

// WorkerTraces exposes the status tracker's per-shard streamed trace
// sets (the facade stashes them after the dispatch).
func (d *Dispatcher) WorkerTraces() [][]tracing.Trace {
	return d.status.WorkerTraces()
}

// Handler serves the fleet control plane:
//
//	POST /v1/agents     agent registration
//	POST /v1/lease      lease requests
//	POST /v1/heartbeat  lease renewal + progress/telemetry/trace relay
//	POST /v1/release    agent-initiated lease return
//	POST /v1/upload     shipped shard store acceptance
//	GET  /v1/status     shard + agent rows, merged telemetry (JSON)
//	GET  /metrics       merged fleet registry, per-agent labels
//	GET  /v1/trace      merged fleet traces (Chrome trace-event JSON)
//	GET  /healthz       liveness
//	GET  /v1/live/...   incremental aggregates over the shard stores
//	GET  /v1/report     503 until the fold; then the folded corpus
func (d *Dispatcher) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/agents", d.handleRegister)
	mux.HandleFunc("POST /v1/lease", d.handleLease)
	mux.HandleFunc("POST /v1/heartbeat", d.handleHeartbeat)
	mux.HandleFunc("POST /v1/release", d.handleRelease)
	mux.HandleFunc("POST /v1/upload", d.handleUpload)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	statusH := d.status.Handler()
	mux.Handle("GET /v1/status", statusH)
	mux.Handle("GET /metrics", statusH)
	mux.Handle("GET /v1/trace", statusH)
	// The live tier answers while the campaign runs; it never takes
	// over /v1/report, which stays "the folded corpus or 503" so that
	// pollers can use it as the completion signal.
	mux.Handle("GET /v1/live/", d.live)
	// Everything else — /v1/report, /v1/sessions, /v1/scenarios — is
	// the folded corpus, available once the fold completed.
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		d.reportMu.Lock()
		h := d.reportH
		d.reportMu.Unlock()
		if h == nil {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "campaign incomplete: the folded corpus is not served yet", http.StatusServiceUnavailable)
			return
		}
		h.ServeHTTP(w, r)
	})
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(body)
}

func writeLeaseError(w http.ResponseWriter, err error) {
	code := http.StatusConflict
	if errors.Is(err, ErrShardDone) {
		code = http.StatusGone
	}
	writeJSON(w, code, errorResponse{Error: err.Error()})
}

func (d *Dispatcher) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	d.mu.Lock()
	d.seq++
	id := req.Name
	if id == "" {
		id = fmt.Sprintf("agent-%d", d.seq)
	}
	if _, taken := d.agents[id]; taken {
		id = fmt.Sprintf("%s-%d", id, d.seq)
	}
	d.agents[id] = &agentInfo{lastSeen: time.Now()}
	d.mu.Unlock()
	ttl := d.cfg.leaseTTL()
	writeJSON(w, http.StatusOK, registerResponse{
		Agent:       id,
		Shards:      d.cfg.Shards,
		LeaseTTLMs:  ttl.Milliseconds(),
		HeartbeatMs: (ttl / 3).Milliseconds(),
	})
}

func (d *Dispatcher) handleLease(w http.ResponseWriter, r *http.Request) {
	var req leaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Agent == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "lease request needs an agent id"})
		return
	}
	d.touch(req.Agent)
	// Sweep before granting: a dead agent's expired lease becomes this
	// agent's work right now, not at the next timer tick.
	d.Sweep()
	if err := d.tab.err(); err != nil {
		writeJSON(w, http.StatusConflict, errorResponse{Error: err.Error()})
		return
	}
	if d.tab.isComplete() {
		writeJSON(w, http.StatusOK, leaseResponse{Status: "done"})
		return
	}
	shard, epoch, ok := d.tab.acquire(req.Agent)
	if !ok {
		if err := d.tab.err(); err != nil {
			writeJSON(w, http.StatusConflict, errorResponse{Error: err.Error()})
			return
		}
		if d.tab.isComplete() {
			writeJSON(w, http.StatusOK, leaseResponse{Status: "done"})
			return
		}
		retry := d.cfg.leaseTTL() / 2
		if retry < 50*time.Millisecond {
			retry = 50 * time.Millisecond
		}
		writeJSON(w, http.StatusOK, leaseResponse{Status: "wait", RetryMs: retry.Milliseconds()})
		return
	}
	d.emit(dispatch.Event{Type: dispatch.EventLease, Shard: shard, Agent: req.Agent, Epoch: epoch})
	writeJSON(w, http.StatusOK, leaseResponse{
		Status: "lease",
		Shard:  shard,
		Of:     d.cfg.Shards,
		Epoch:  epoch,
		TTLMs:  d.cfg.leaseTTL().Milliseconds(),
		Spec:   d.cfg.Spec,
	})
}

func (d *Dispatcher) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req heartbeatRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	d.touch(req.Agent)
	if err := d.tab.heartbeat(req.Shard, req.Agent, req.Epoch); err != nil {
		writeLeaseError(w, err)
		return
	}
	// Relay the worker's observability into the fleet view with agent
	// provenance: progress as-is, telemetry relabeled per agent so
	// identical series from different machines stay distinct, traces
	// stamped with shard and agent.
	if req.Total > 0 || req.Done > 0 {
		d.emit(dispatch.Event{
			Type: dispatch.EventProgress, Shard: req.Shard, Agent: req.Agent, Epoch: req.Epoch,
			Done: req.Done, Total: req.Total,
		})
	}
	if req.Snapshot != nil {
		snap := req.Snapshot.Relabel("agent", req.Agent)
		d.emit(dispatch.Event{
			Type: dispatch.EventTelemetry, Shard: req.Shard, Agent: req.Agent, Epoch: req.Epoch,
			Telemetry: &snap,
		})
	}
	if len(req.Traces) > 0 {
		traces := append([]tracing.Trace(nil), req.Traces...)
		for i := range traces {
			traces[i].Shard = req.Shard
			traces[i].Agent = req.Agent
		}
		d.emit(dispatch.Event{
			Type: dispatch.EventTraces, Shard: req.Shard, Agent: req.Agent, Epoch: req.Epoch,
			Traces: traces,
		})
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (d *Dispatcher) handleRelease(w http.ResponseWriter, r *http.Request) {
	var req releaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	d.touch(req.Agent)
	if err := d.tab.release(req.Shard, req.Agent, req.Epoch); err != nil {
		writeLeaseError(w, err)
		return
	}
	d.emit(dispatch.Event{
		Type: dispatch.EventExit, Shard: req.Shard, Agent: req.Agent, Epoch: req.Epoch,
		Err: fmt.Errorf("released by agent: %s", req.Error),
	})
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

// handleUpload accepts a shipped shard store: fence, receive into a
// lease-scoped staging directory, verify (CRC framing at receive;
// shard assignment, campaign fingerprint and every segment frame in
// VerifyShard), then re-fence and move into the fold set. The second
// fence closes the verification window: a lease that expired mid-
// upload loses, its staging directory is discarded, and the re-leased
// agent's upload is the one accepted.
func (d *Dispatcher) handleUpload(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	agent := q.Get("agent")
	shard, err1 := strconv.Atoi(q.Get("shard"))
	epoch, err2 := strconv.Atoi(q.Get("epoch"))
	if agent == "" || err1 != nil || err2 != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "upload needs agent, shard and epoch"})
		return
	}
	d.touch(agent)
	// Cheap pre-check before streaming megabytes from a ghost.
	if err := d.tab.heartbeat(shard, agent, epoch); err != nil {
		writeLeaseError(w, err)
		return
	}
	staging := fmt.Sprintf("%s.incoming-e%d", dispatch.ShardDir(d.cfg.Dir, shard), epoch)
	if err := os.RemoveAll(staging); err != nil {
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	if _, err := store.Receive(r.Body, staging); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	sessions, err := store.VerifyShard(staging, shard, d.cfg.Shards, d.cfg.Fingerprints)
	if err != nil {
		os.RemoveAll(staging)
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	// The store is proven; now win (or lose) the race for the slot.
	if err := d.tab.complete(shard, agent, epoch); err != nil {
		os.RemoveAll(staging)
		writeLeaseError(w, err)
		return
	}
	dst := d.dirs[shard]
	if err := os.RemoveAll(dst); err == nil {
		err = os.Rename(staging, dst)
	}
	if err != nil {
		// The table says done but the disk move failed: unrecoverable
		// for this campaign — fail loudly rather than fold a hole.
		d.tab.fail(fmt.Errorf("fleetd: accepting shard %d: %w", shard, err))
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	d.mu.Lock()
	if a, ok := d.agents[agent]; ok {
		a.completed++
	}
	d.mu.Unlock()
	d.emit(dispatch.Event{Type: dispatch.EventUpload, Shard: shard, Agent: agent, Epoch: epoch, Done: sessions})
	writeJSON(w, http.StatusOK, uploadResponse{Sessions: sessions})
}
