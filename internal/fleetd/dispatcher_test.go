package fleetd

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"veritas/internal/dispatch"
	"veritas/internal/engine"
	"veritas/internal/player"
	"veritas/internal/store"
	"veritas/internal/telemetry"
	"veritas/internal/tracing"
)

var testFingerprint = []byte(`{"seed": 7, "sessions": 4}`)

func testRow(i int) engine.SessionRow {
	m := player.Metrics{AvgSSIM: 0.9 + float64(i)*1e-3, RebufRatio: 0.01, AvgBitrateMbps: 2, NumChunks: 30}
	return engine.SessionRow{
		Index:    i,
		ID:       fmt.Sprintf("fcc-%03d", i),
		Scenario: "fcc",
		SettingA: m,
		Arms: []engine.ArmOutcome{{
			Name: "bba-5s", Baseline: m, Samples: []player.Metrics{m, m}, Truth: m, HasTruth: true,
		}},
	}
}

// buildShardStore writes a closed, verifiable shard store for shard
// index/count at dir, holding the campaign-partition rows (index mod
// count), and returns its session count.
func buildShardStore(t *testing.T, dir string, index, count int) int {
	t.Helper()
	s, err := store.Create(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for i := 0; i < 4; i++ {
		if i%count != index {
			continue
		}
		if err := s.Append(testRow(i)); err != nil {
			t.Fatal(err)
		}
		n++
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := store.WriteShardMeta(dir, store.ShardMeta{Index: index, Count: count}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, store.CampaignMetaFile), testFingerprint, 0o644); err != nil {
		t.Fatal(err)
	}
	return n
}

// eventLog captures the dispatcher's serialized event stream.
type eventLog struct {
	mu     sync.Mutex
	events []dispatch.Event
}

func (l *eventLog) add(e dispatch.Event) {
	l.mu.Lock()
	l.events = append(l.events, e)
	l.mu.Unlock()
}

func (l *eventLog) types() []dispatch.EventType {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]dispatch.EventType, len(l.events))
	for i, e := range l.events {
		out[i] = e.Type
	}
	return out
}

func (l *eventLog) count(typ dispatch.EventType) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, e := range l.events {
		if e.Type == typ {
			n++
		}
	}
	return n
}

// testDispatcher builds a dispatcher (with injected clock and event
// log) and serves it over httptest.
func testDispatcher(t *testing.T, shards int, mutate func(*Config)) (*Dispatcher, *httptest.Server, *eventLog, *fakeClock) {
	t.Helper()
	clock := newFakeClock()
	log := &eventLog{}
	cfg := Config{
		Shards:       shards,
		Dir:          filepath.Join(t.TempDir(), "shards"),
		FoldInto:     filepath.Join(t.TempDir(), "folded"),
		Fingerprints: [][]byte{testFingerprint},
		Spec:         json.RawMessage(`{"chunks": 25}`),
		LeaseTTL:     time.Minute,
		OnEvent:      log.add,
		Telemetry:    telemetry.NewRegistry(),
		Tracer:       tracing.New(8),
		now:          clock.now,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(d.Handler())
	t.Cleanup(func() { srv.Close(); d.Close() })
	return d, srv, log, clock
}

// postJSON posts v and decodes the response into out (when non-nil),
// returning the status code.
func postJSON(t *testing.T, url string, v any, out any) int {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// uploadStore ships dir as (agent, shard, epoch) and returns the HTTP
// status code.
func uploadStore(t *testing.T, base, dir, agent string, shard, epoch int) int {
	t.Helper()
	var buf bytes.Buffer
	if _, err := store.Ship(&buf, dir); err != nil {
		t.Fatal(err)
	}
	url := fmt.Sprintf("%s/v1/upload?agent=%s&shard=%d&epoch=%d", base, agent, shard, epoch)
	resp, err := http.Post(url, "application/octet-stream", &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

func TestDispatcherProtocolEndToEnd(t *testing.T) {
	d, srv, log, _ := testDispatcher(t, 2, nil)

	// Wait must be running for the completion fold.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	type waitOut struct {
		res *Result
		err error
	}
	waitCh := make(chan waitOut, 1)
	go func() {
		res, err := d.Wait(ctx)
		waitCh <- waitOut{res, err}
	}()

	// Register.
	var reg registerResponse
	if code := postJSON(t, srv.URL+"/v1/agents", registerRequest{Name: "alpha"}, &reg); code != 200 {
		t.Fatalf("register: HTTP %d", code)
	}
	if reg.Agent != "alpha" || reg.Shards != 2 || reg.LeaseTTLMs != 60_000 {
		t.Fatalf("register response = %+v", reg)
	}

	// Lease shard 0; the lease carries the opaque worker spec.
	var lease leaseResponse
	if code := postJSON(t, srv.URL+"/v1/lease", leaseRequest{Agent: "alpha"}, &lease); code != 200 {
		t.Fatalf("lease: HTTP %d", code)
	}
	if lease.Status != "lease" || lease.Shard != 0 || lease.Epoch != 1 || string(lease.Spec) != `{"chunks":25}` {
		t.Fatalf("lease = %+v (spec %s)", lease, lease.Spec)
	}

	// Heartbeat with progress, telemetry and a trace: everything lands
	// in the fleet view with agent provenance.
	hb := heartbeatRequest{
		Agent: "alpha", Shard: 0, Epoch: 1, Done: 1, Total: 2,
		Snapshot: &telemetry.Snapshot{Counters: map[string]uint64{"veritas_sessions_total": 1}},
		Traces:   []tracing.Trace{{ID: "fcc-000", Kind: "session", Dur: 1.5}},
	}
	if code := postJSON(t, srv.URL+"/v1/heartbeat", hb, nil); code != 200 {
		t.Fatalf("heartbeat: HTTP %d", code)
	}

	statusBody, _ := get(t, srv.URL+"/v1/status")
	var status struct {
		Shards []struct {
			State string `json:"state"`
			Agent string `json:"agent"`
			Epoch int    `json:"epoch"`
		} `json:"shards"`
		Agents []struct {
			Agent  string `json:"agent"`
			State  string `json:"state"`
			Shards []int  `json:"shards"`
		} `json:"agents"`
	}
	if err := json.Unmarshal(statusBody, &status); err != nil {
		t.Fatal(err)
	}
	if len(status.Shards) != 2 || status.Shards[0].Agent != "alpha" || status.Shards[0].Epoch != 1 || status.Shards[0].State != "running" {
		t.Errorf("shard rows = %+v", status.Shards)
	}
	if len(status.Agents) != 1 || status.Agents[0].Agent != "alpha" || status.Agents[0].State != "alive" ||
		len(status.Agents[0].Shards) != 1 || status.Agents[0].Shards[0] != 0 {
		t.Errorf("agent rows = %+v", status.Agents)
	}
	metrics, _ := get(t, srv.URL+"/metrics")
	if !strings.Contains(string(metrics), `veritas_sessions_total{agent="alpha"} 1`) {
		t.Errorf("metrics lack the per-agent-labeled worker counter:\n%s", metrics)
	}
	traceBody, _ := get(t, srv.URL+"/v1/trace")
	if !strings.Contains(string(traceBody), `@alpha`) {
		t.Errorf("trace export lacks the agent-suffixed thread name:\n%.400s", traceBody)
	}

	// The report is a 503 until the fold.
	if _, code := getCode(t, srv.URL+"/v1/report"); code != http.StatusServiceUnavailable {
		t.Errorf("/v1/report before fold: HTTP %d, want 503", code)
	}

	// Upload shard 0, then a duplicate: the second is a 410.
	shard0 := filepath.Join(t.TempDir(), "local-0")
	buildShardStore(t, shard0, 0, 2)
	if code := uploadStore(t, srv.URL, shard0, "alpha", 0, 1); code != 200 {
		t.Fatalf("upload shard 0: HTTP %d", code)
	}
	if code := uploadStore(t, srv.URL, shard0, "alpha", 0, 1); code != http.StatusGone {
		t.Errorf("duplicate upload: HTTP %d, want 410", code)
	}

	// A corrupt upload for shard 1 is refused and leaves the lease
	// intact for a clean retry.
	if code := postJSON(t, srv.URL+"/v1/lease", leaseRequest{Agent: "alpha"}, &lease); code != 200 || lease.Shard != 1 {
		t.Fatalf("lease shard 1: HTTP %d, %+v", code, lease)
	}
	shard1 := filepath.Join(t.TempDir(), "local-1")
	buildShardStore(t, shard1, 1, 2)
	resp, err := http.Post(fmt.Sprintf("%s/v1/upload?agent=alpha&shard=1&epoch=%d", srv.URL, lease.Epoch),
		"application/octet-stream", strings.NewReader("not a shipped store"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("corrupt upload: HTTP %d, want 400", resp.StatusCode)
	}
	if code := uploadStore(t, srv.URL, shard1, "alpha", 1, lease.Epoch); code != 200 {
		t.Fatalf("upload shard 1 after refused corrupt attempt: HTTP %d", code)
	}

	// Campaign complete: lease answers done, Wait folds, the report
	// serves.
	if code := postJSON(t, srv.URL+"/v1/lease", leaseRequest{Agent: "alpha"}, &lease); code != 200 || lease.Status != "done" {
		t.Fatalf("post-completion lease: HTTP %d, %+v", code, lease)
	}
	out := <-waitCh
	if out.err != nil {
		t.Fatal(out.err)
	}
	if out.res.Folded != 4 || out.res.Steals != 0 || len(out.res.Agents) != 1 || out.res.Agents[0] != "alpha" {
		t.Errorf("result = %+v", out.res)
	}
	report, code := getCode(t, srv.URL+"/v1/report")
	if code != 200 || !strings.Contains(string(report), `"Sessions":4`) {
		t.Errorf("/v1/report after fold: HTTP %d, %.200s", code, report)
	}

	// The event stream told the whole story in order.
	wantOrder := []dispatch.EventType{dispatch.EventLease, dispatch.EventProgress, dispatch.EventTelemetry,
		dispatch.EventTraces, dispatch.EventUpload, dispatch.EventLease, dispatch.EventUpload, dispatch.EventFold}
	got := log.types()
	if len(got) != len(wantOrder) {
		t.Fatalf("event stream = %v, want %v", got, wantOrder)
	}
	for i := range wantOrder {
		if got[i] != wantOrder[i] {
			t.Fatalf("event[%d] = %s, want %s (full stream %v)", i, got[i], wantOrder[i], got)
		}
	}
}

// TestDispatcherStealFencing drives the work-stealing path over HTTP:
// a dead agent's lease expires, the next lease request sweeps and
// re-grants the shard, and the ghost's late heartbeat and upload are
// fenced by epoch.
func TestDispatcherStealFencing(t *testing.T) {
	d, srv, log, clock := testDispatcher(t, 1, nil)
	_ = d

	for _, name := range []string{"ghost", "heir"} {
		if code := postJSON(t, srv.URL+"/v1/agents", registerRequest{Name: name}, nil); code != 200 {
			t.Fatalf("register %s: HTTP %d", name, code)
		}
	}
	var lease leaseResponse
	if code := postJSON(t, srv.URL+"/v1/lease", leaseRequest{Agent: "ghost"}, &lease); code != 200 || lease.Shard != 0 || lease.Epoch != 1 {
		t.Fatalf("ghost lease: HTTP %d, %+v", code, lease)
	}

	// The ghost dies. Its lease outlives it by the TTL, during which
	// the heir waits.
	if code := postJSON(t, srv.URL+"/v1/lease", leaseRequest{Agent: "heir"}, &lease); code != 200 || lease.Status != "wait" {
		t.Fatalf("heir lease while ghost alive: HTTP %d, %+v", code, lease)
	}
	clock.advance(2 * time.Minute)

	// The heir's next ask sweeps the expired lease and wins the shard
	// at the next epoch.
	if code := postJSON(t, srv.URL+"/v1/lease", leaseRequest{Agent: "heir"}, &lease); code != 200 || lease.Status != "lease" || lease.Shard != 0 || lease.Epoch != 2 {
		t.Fatalf("heir lease after expiry: HTTP %d, %+v", code, lease)
	}
	if log.count(dispatch.EventSteal) != 1 {
		t.Errorf("steal events = %d, want 1", log.count(dispatch.EventSteal))
	}

	// The ghost comes back: every verb it knew is fenced.
	if code := postJSON(t, srv.URL+"/v1/heartbeat", heartbeatRequest{Agent: "ghost", Shard: 0, Epoch: 1}, nil); code != http.StatusConflict {
		t.Errorf("ghost heartbeat after re-lease: HTTP %d, want 409", code)
	}
	ghostStore := filepath.Join(t.TempDir(), "ghost-0")
	buildShardStore(t, ghostStore, 0, 1)
	if code := uploadStore(t, srv.URL, ghostStore, "ghost", 0, 1); code != http.StatusConflict {
		t.Errorf("ghost upload after re-lease: HTTP %d, want 409", code)
	}

	// Status reflects the theft: the fleet stole once, the ghost shows
	// lost, the shard belongs to the heir.
	statusBody, _ := get(t, srv.URL+"/v1/status")
	var status struct {
		Steals int `json:"steals"`
		Shards []struct {
			Agent  string `json:"agent"`
			Steals int    `json:"steals"`
		} `json:"shards"`
		Agents []struct {
			Agent string `json:"agent"`
			State string `json:"state"`
		} `json:"agents"`
	}
	if err := json.Unmarshal(statusBody, &status); err != nil {
		t.Fatal(err)
	}
	if status.Steals != 1 || status.Shards[0].Agent != "heir" || status.Shards[0].Steals != 1 {
		t.Errorf("status after steal = %s", statusBody)
	}
	states := map[string]string{}
	for _, a := range status.Agents {
		states[a.Agent] = a.State
	}
	if states["heir"] != "alive" {
		t.Errorf("heir state = %q, want alive", states["heir"])
	}

	// The heir's upload is the one accepted.
	heirStore := filepath.Join(t.TempDir(), "heir-0")
	buildShardStore(t, heirStore, 0, 1)
	if code := uploadStore(t, srv.URL, heirStore, "heir", 0, 2); code != 200 {
		t.Fatalf("heir upload: HTTP %d", code)
	}
}

// TestDispatcherLeaseBudgetFailsCampaign: a shard that burns every
// lease turns the campaign fatal, and both the lease handler and Wait
// report it.
func TestDispatcherLeaseBudgetFailsCampaign(t *testing.T) {
	d, srv, _, clock := testDispatcher(t, 1, func(c *Config) { c.MaxGrants = 2 })

	postJSON(t, srv.URL+"/v1/agents", registerRequest{Name: "crashy"}, nil)
	for i := 0; i < 2; i++ {
		var lease leaseResponse
		if code := postJSON(t, srv.URL+"/v1/lease", leaseRequest{Agent: "crashy"}, &lease); code != 200 || lease.Status != "lease" {
			t.Fatalf("lease %d: HTTP %d, %+v", i, code, lease)
		}
		clock.advance(2 * time.Minute) // let it expire rather than release
	}
	if code := postJSON(t, srv.URL+"/v1/lease", leaseRequest{Agent: "crashy"}, nil); code != http.StatusConflict {
		t.Fatalf("lease past the budget: HTTP %d, want 409", code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := d.Wait(ctx); err == nil || !strings.Contains(err.Error(), "lease budget") {
		t.Fatalf("Wait = %v, want the lease-budget failure", err)
	}
}

// TestDispatcherAdoptsPreviousShards: verified shard stores already
// under Dir when the dispatcher starts are done work; only the missing
// shards are leased out.
func TestDispatcherAdoptsPreviousShards(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "shards")
	buildShardStore(t, dispatch.ShardDir(dir, 0), 0, 2)
	d, srv, log, _ := testDispatcher(t, 2, func(c *Config) { c.Dir = dir })
	_ = d

	if log.count(dispatch.EventUpload) != 1 {
		t.Fatalf("adoption emitted %d upload events, want 1", log.count(dispatch.EventUpload))
	}
	postJSON(t, srv.URL+"/v1/agents", registerRequest{Name: "late"}, nil)
	var lease leaseResponse
	if code := postJSON(t, srv.URL+"/v1/lease", leaseRequest{Agent: "late"}, &lease); code != 200 || lease.Shard != 1 {
		t.Fatalf("lease = HTTP %d, %+v; want shard 1 (shard 0 was adopted)", code, lease)
	}
}

// TestAgentWorksLeasesEndToEnd runs a real Agent against a real
// dispatcher over HTTP, with a stub worker command (cp of a pre-built
// shard store) standing in for the veritas re-exec: the agent leases
// both shards, "computes" them, ships both stores, and the dispatcher
// folds a complete campaign.
func TestAgentWorksLeasesEndToEnd(t *testing.T) {
	if _, err := exec.LookPath("cp"); err != nil {
		t.Skip("no cp on PATH")
	}
	d, srv, _, _ := testDispatcher(t, 2, nil)

	prebuilt := make([]string, 2)
	for i := range prebuilt {
		prebuilt[i] = filepath.Join(t.TempDir(), fmt.Sprintf("prebuilt-%d", i))
		buildShardStore(t, prebuilt[i], i, 2)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	type waitOut struct {
		res *Result
		err error
	}
	waitCh := make(chan waitOut, 1)
	go func() {
		res, err := d.Wait(ctx)
		waitCh <- waitOut{res, err}
	}()

	res, err := RunAgent(ctx, AgentConfig{
		Dispatcher: srv.URL,
		Name:       "solo",
		Dir:        filepath.Join(t.TempDir(), "agent"),
		Logf:       t.Logf,
		OnEvent: func(e dispatch.Event) {
			if e.Err != nil {
				t.Logf("agent event %s shard %d: %v", e.Type, e.Shard, e.Err)
			}
			if e.Type == dispatch.EventLine {
				t.Logf("worker line [%s]: %s", e.Stream, e.Line)
			}
		},
		Command: func(spec json.RawMessage, shard, of int, storeDir string) (*exec.Cmd, error) {
			if string(spec) != `{"chunks":25}` {
				return nil, fmt.Errorf("lease spec not relayed: %s", spec)
			}
			return exec.Command("cp", "-r", prebuilt[shard], storeDir), nil
		},
	})
	if err != nil {
		t.Fatalf("RunAgent: %v", err)
	}
	if res.Agent != "solo" || res.Leases != 2 || res.Completed != 2 || res.Lost != 0 || res.Released != 0 {
		t.Errorf("agent result = %+v", res)
	}
	out := <-waitCh
	if out.err != nil {
		t.Fatal(out.err)
	}
	if out.res.Folded != 4 {
		t.Errorf("folded %d sessions, want 4", out.res.Folded)
	}
}

func get(t *testing.T, url string) ([]byte, int) {
	t.Helper()
	body, code := getCode(t, url)
	if code != http.StatusOK {
		t.Fatalf("GET %s: HTTP %d", url, code)
	}
	return body, code
}

func getCode(t *testing.T, url string) ([]byte, int) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return buf.Bytes(), resp.StatusCode
}

// TestAgentTreatsLeaseNotFoundAsDispatcherGone pins the post-campaign
// rebind path: after the fold the dispatcher's port serves the plain
// corpus handler, where the fleet verbs answer 404. An agent polling
// for more work then must conclude the dispatcher is gone — a normal
// end of campaign — not die with a protocol error.
func TestAgentTreatsLeaseNotFoundAsDispatcherGone(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/agents", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(registerResponse{Agent: "late", LeaseTTLMs: 1000, HeartbeatMs: 50})
	})
	srv := httptest.NewServer(mux) // every other path: 404
	defer srv.Close()

	res, err := RunAgent(context.Background(), AgentConfig{
		Dispatcher: srv.URL,
		Dir:        t.TempDir(),
		Command: func(spec json.RawMessage, shard, of int, storeDir string) (*exec.Cmd, error) {
			return nil, fmt.Errorf("no lease should ever be granted here")
		},
	})
	if !errors.Is(err, ErrDispatcherGone) {
		t.Fatalf("lease 404: err = %v, want ErrDispatcherGone", err)
	}
	if res == nil || res.Agent != "late" {
		t.Fatalf("result = %+v, want a registered agent named late", res)
	}
}
