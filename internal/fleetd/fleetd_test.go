package fleetd

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock is an injectable table clock, so lease expiry tests never
// sleep.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func completed(t *table) bool {
	select {
	case <-t.completeCh:
		return true
	default:
		return false
	}
}

func TestTableLeaseLifecycle(t *testing.T) {
	clock := newFakeClock()
	tab := newTable(2, time.Second, 0, 0, clock.now)

	shard, epoch, ok := tab.acquire("a")
	if !ok || shard != 0 || epoch != 1 {
		t.Fatalf("first acquire = (%d, %d, %v), want (0, 1, true)", shard, epoch, ok)
	}
	shard2, epoch2, ok := tab.acquire("b")
	if !ok || shard2 != 1 || epoch2 != 1 {
		t.Fatalf("second acquire = (%d, %d, %v), want (1, 1, true)", shard2, epoch2, ok)
	}
	if _, _, ok := tab.acquire("c"); ok {
		t.Fatal("third acquire granted with nothing pending")
	}

	// Heartbeats within the TTL keep the lease alive across sweeps.
	clock.advance(800 * time.Millisecond)
	if err := tab.heartbeat(0, "a", 1); err != nil {
		t.Fatalf("heartbeat: %v", err)
	}
	clock.advance(800 * time.Millisecond) // 1.6s absolute; shard 0 renewed at 0.8s
	if steals := tab.sweep(); len(steals) != 1 || steals[0].shard != 1 {
		t.Fatalf("sweep = %+v, want exactly shard 1 (never renewed)", steals)
	}

	if err := tab.complete(0, "a", 1); err != nil {
		t.Fatalf("complete: %v", err)
	}
	if completed(tab) {
		t.Fatal("table complete with shard 1 still pending")
	}
	shard, epoch, ok = tab.acquire("a")
	if !ok || shard != 1 || epoch != 2 {
		t.Fatalf("re-acquire after steal = (%d, %d, %v), want (1, 2, true)", shard, epoch, ok)
	}
	if err := tab.complete(1, "a", 2); err != nil {
		t.Fatalf("complete stolen shard: %v", err)
	}
	if !completed(tab) || !tab.isComplete() {
		t.Fatal("table not complete after every shard finished")
	}
	if got := tab.stealCount(); got != 1 {
		t.Errorf("stealCount = %d, want 1", got)
	}
}

// TestTableEpochFencing pins the stale-agent fence: a heartbeat (or
// completion) arriving after the shard was re-leased carries the old
// epoch and must be rejected, so a presumed-dead agent coming back
// cannot corrupt a shard its successor now owns.
func TestTableEpochFencing(t *testing.T) {
	clock := newFakeClock()
	tab := newTable(1, time.Second, 0, 0, clock.now)

	if _, epoch, ok := tab.acquire("ghost"); !ok || epoch != 1 {
		t.Fatalf("acquire epoch = %d, want 1", epoch)
	}
	clock.advance(2 * time.Second)
	if steals := tab.sweep(); len(steals) != 1 || steals[0].agent != "ghost" || steals[0].epoch != 1 {
		t.Fatalf("sweep = %+v, want ghost@1 revoked", steals)
	}
	shard, epoch, ok := tab.acquire("heir")
	if !ok || shard != 0 || epoch != 2 {
		t.Fatalf("re-lease = (%d, %d, %v), want (0, 2, true)", shard, epoch, ok)
	}

	// The ghost's stale epoch is fenced on every verb.
	if err := tab.heartbeat(0, "ghost", 1); !errors.Is(err, ErrStaleLease) {
		t.Errorf("stale heartbeat: err = %v, want ErrStaleLease", err)
	}
	if err := tab.complete(0, "ghost", 1); !errors.Is(err, ErrStaleLease) {
		t.Errorf("stale complete: err = %v, want ErrStaleLease", err)
	}
	if err := tab.release(0, "ghost", 1); !errors.Is(err, ErrStaleLease) {
		t.Errorf("stale release: err = %v, want ErrStaleLease", err)
	}
	// So is the right agent with the wrong epoch, and vice versa.
	if err := tab.heartbeat(0, "heir", 1); !errors.Is(err, ErrStaleLease) {
		t.Errorf("heir with stale epoch: err = %v, want ErrStaleLease", err)
	}
	if err := tab.heartbeat(0, "ghost", 2); !errors.Is(err, ErrStaleLease) {
		t.Errorf("ghost with current epoch: err = %v, want ErrStaleLease", err)
	}
	// The heir's lease is untouched by all that fencing.
	if err := tab.heartbeat(0, "heir", 2); err != nil {
		t.Errorf("heir heartbeat: %v", err)
	}
	if err := tab.complete(0, "heir", 2); err != nil {
		t.Errorf("heir complete: %v", err)
	}
}

// TestTableDoneShardRejectsEverything pins the duplicate-upload fence:
// once a shard's store is accepted, any further lease verb on it —
// notably a second upload completing — answers ErrShardDone.
func TestTableDoneShardRejectsEverything(t *testing.T) {
	clock := newFakeClock()
	tab := newTable(1, time.Second, 0, 0, clock.now)
	if _, _, ok := tab.acquire("a"); !ok {
		t.Fatal("acquire failed")
	}
	if err := tab.complete(0, "a", 1); err != nil {
		t.Fatal(err)
	}
	for name, err := range map[string]error{
		"duplicate complete": tab.complete(0, "a", 1),
		"heartbeat":          tab.heartbeat(0, "a", 1),
		"release":            tab.release(0, "a", 1),
	} {
		if !errors.Is(err, ErrShardDone) {
			t.Errorf("%s on a done shard: err = %v, want ErrShardDone", name, err)
		}
	}
	if _, _, ok := tab.acquire("b"); ok {
		t.Error("done shard re-leased")
	}
}

// TestTableSweepAfterCompleteIsNoop pins the expiry-during-fold edge:
// once every shard is done nothing is leased, so a sweep racing the
// fold (the Wait timer fires while FoldStores runs) revokes nothing
// and the completion state is untouched.
func TestTableSweepAfterCompleteIsNoop(t *testing.T) {
	clock := newFakeClock()
	tab := newTable(2, time.Second, 0, 0, clock.now)
	for i := 0; i < 2; i++ {
		shard, epoch, ok := tab.acquire("a")
		if !ok {
			t.Fatal("acquire failed")
		}
		if err := tab.complete(shard, "a", epoch); err != nil {
			t.Fatal(err)
		}
	}
	if !tab.isComplete() {
		t.Fatal("table not complete")
	}
	clock.advance(time.Hour)
	if steals := tab.sweep(); len(steals) != 0 {
		t.Fatalf("sweep after completion stole %+v", steals)
	}
	if !tab.isComplete() || tab.stealCount() != 0 {
		t.Error("sweep after completion changed table state")
	}
}

// TestTableStragglerDeadline: heartbeats renew the TTL but never the
// hard MaxLease deadline, so a straggler is eventually stolen from no
// matter how diligently it heartbeats.
func TestTableStragglerDeadline(t *testing.T) {
	clock := newFakeClock()
	tab := newTable(1, time.Second, 3*time.Second, 0, clock.now)
	if _, _, ok := tab.acquire("slow"); !ok {
		t.Fatal("acquire failed")
	}
	for i := 0; i < 4; i++ {
		clock.advance(700 * time.Millisecond) // up to 2.8s, inside the deadline
		if steals := tab.sweep(); len(steals) != 0 {
			t.Fatalf("stolen at %v despite live heartbeats: %+v", time.Duration(i+1)*700*time.Millisecond, steals)
		}
		if err := tab.heartbeat(0, "slow", 1); err != nil {
			t.Fatalf("heartbeat %d: %v", i, err)
		}
	}
	// 3.5s > the 3s deadline: the next sweep takes the shard even
	// though the last heartbeat was only 0.7s ago.
	clock.advance(700 * time.Millisecond)
	steals := tab.sweep()
	if len(steals) != 1 || !strings.Contains(steals[0].reason, "straggler") {
		t.Fatalf("sweep = %+v, want a straggler steal", steals)
	}
}

// TestTableGrantCapTurnsFatal: a shard that eats every lease it is
// granted eventually fails the campaign instead of looping forever.
func TestTableGrantCapTurnsFatal(t *testing.T) {
	clock := newFakeClock()
	tab := newTable(1, time.Second, 0, 2, clock.now)
	for i := 0; i < 2; i++ {
		if _, _, ok := tab.acquire("crashy"); !ok {
			t.Fatalf("acquire %d refused", i)
		}
		if err := tab.release(0, "crashy", i+1); err != nil {
			t.Fatalf("release %d: %v", i, err)
		}
	}
	if _, _, ok := tab.acquire("crashy"); ok {
		t.Fatal("third grant exceeded the cap")
	}
	err := tab.err()
	if err == nil || !strings.Contains(err.Error(), "lease budget") {
		t.Fatalf("table error = %v, want a lease-budget failure", err)
	}
	if !completed(tab) {
		t.Error("fatal table did not close the completion channel")
	}
	if tab.isComplete() {
		t.Error("fatal table claims completion")
	}
}

// TestTableReleaseRequeuesWithoutSteal: an agent handing a lease back
// is not a steal, and the shard is immediately grantable again.
func TestTableReleaseRequeuesWithoutSteal(t *testing.T) {
	clock := newFakeClock()
	tab := newTable(1, time.Second, 0, 0, clock.now)
	if _, _, ok := tab.acquire("a"); !ok {
		t.Fatal("acquire failed")
	}
	if err := tab.release(0, "a", 1); err != nil {
		t.Fatal(err)
	}
	if got := tab.stealCount(); got != 0 {
		t.Errorf("release counted as steal (%d)", got)
	}
	shard, epoch, ok := tab.acquire("b")
	if !ok || shard != 0 || epoch != 2 {
		t.Fatalf("acquire after release = (%d, %d, %v), want (0, 2, true)", shard, epoch, ok)
	}
}
