package fleetd

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"time"

	"veritas/internal/dispatch"
	"veritas/internal/store"
	"veritas/internal/telemetry"
	"veritas/internal/tracing"
)

// ErrDispatcherGone reports an agent that lost its dispatcher: the
// campaign may have completed and torn the listener down, or the
// network died. Either way there is no more work to get here.
var ErrDispatcherGone = errors.New("fleetd: dispatcher unreachable")

// AgentConfig parameterizes one fleet agent.
type AgentConfig struct {
	// Dispatcher is the dispatcher's base URL ("http://host:port";
	// a bare "host:port" gets "http://" prepended).
	Dispatcher string
	// Name is the agent's requested id; the dispatcher may suffix it
	// for uniqueness. Empty means dispatcher-assigned.
	Name string
	// Dir is the parent directory the agent's local shard stores live
	// under, laid out like a dispatch directory so a re-leased shard
	// resumes from whatever this agent already computed for it.
	Dir string
	// Command builds the worker process for one leased shard: spec is
	// the lease's opaque worker spec template, and the command must
	// run shard/of resuming into storeDir (the veritas facade wires
	// this to the VERITAS_DISPATCH_WORKER re-exec machinery). The
	// worker's stdout/stderr are owned by the agent. Required.
	Command func(spec json.RawMessage, shard, of int, storeDir string) (*exec.Cmd, error)
	// MaxRestarts is the local crash-restart budget per lease
	// (negative means dispatch.DefaultMaxRestarts; see
	// dispatch.Config.MaxRestarts). When the budget is exhausted the
	// agent releases the lease back to the dispatcher.
	MaxRestarts int
	// Backoff and Grace mirror dispatch.Config.
	Backoff time.Duration
	Grace   time.Duration
	// OnEvent, when set, receives the agent's local worker lifecycle
	// events (starts, progress, lines, exits, restarts), serialized.
	OnEvent func(dispatch.Event)
	// Client is the HTTP client (nil: a default with sane timeouts on
	// everything except the upload, which streams).
	Client *http.Client
	// Logf, when set, receives one line per agent-level decision:
	// registration, leases, steals observed, uploads, releases.
	Logf func(format string, args ...any)
}

// AgentResult summarizes an agent's run.
type AgentResult struct {
	// Agent is the dispatcher-assigned id.
	Agent string
	// Leases counts shards leased to this agent; Completed counts
	// uploads accepted; Lost counts leases revoked under us (observed
	// as a 409/410 on heartbeat or upload); Released counts leases
	// returned after local failure; Restarts counts local worker
	// crash-restarts.
	Leases, Completed, Lost, Released, Restarts int
}

// Agent runs the lease-work-upload loop against a dispatcher.
type Agent struct {
	cfg    AgentConfig
	client *http.Client
	base   string
	id     string
	ttl    time.Duration
	hbEach time.Duration
	res    AgentResult
}

// RunAgent registers with the dispatcher and works leases until the
// campaign completes ("done"), ctx is cancelled, or the dispatcher
// disappears (ErrDispatcherGone). The returned result is non-nil
// whenever registration succeeded, even alongside an error.
func RunAgent(ctx context.Context, cfg AgentConfig) (*AgentResult, error) {
	if cfg.Dispatcher == "" {
		return nil, errors.New("fleetd: AgentConfig.Dispatcher is required")
	}
	if cfg.Dir == "" {
		return nil, errors.New("fleetd: AgentConfig.Dir is required")
	}
	if cfg.Command == nil {
		return nil, errors.New("fleetd: AgentConfig.Command is required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("fleetd: %w", err)
	}
	base := cfg.Dispatcher
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	a := &Agent{cfg: cfg, client: client, base: base}
	if err := a.register(ctx); err != nil {
		return nil, err
	}
	err := a.loop(ctx)
	return &a.res, err
}

func (a *Agent) logf(format string, args ...any) {
	if a.cfg.Logf != nil {
		a.cfg.Logf(format, args...)
	}
}

// post sends a JSON request and decodes the JSON response; codes not
// in accept become errors carrying the server's error body.
func (a *Agent) post(ctx context.Context, path string, req, resp any, accept ...int) (int, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return 0, err
	}
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost, a.base+path, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	hr.Header.Set("Content-Type", "application/json")
	res, err := a.client.Do(hr)
	if err != nil {
		return 0, err
	}
	defer res.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(res.Body, 16<<20))
	if err != nil {
		return res.StatusCode, err
	}
	for _, code := range accept {
		if res.StatusCode == code {
			if resp != nil {
				if err := json.Unmarshal(raw, resp); err != nil {
					return res.StatusCode, fmt.Errorf("fleetd: decoding %s response: %w", path, err)
				}
			}
			return res.StatusCode, nil
		}
	}
	var eresp errorResponse
	if json.Unmarshal(raw, &eresp) == nil && eresp.Error != "" {
		return res.StatusCode, fmt.Errorf("fleetd: %s: %s (HTTP %d)", path, eresp.Error, res.StatusCode)
	}
	return res.StatusCode, fmt.Errorf("fleetd: %s: HTTP %d", path, res.StatusCode)
}

// register joins the dispatcher, retrying while it comes up (agents
// are routinely started before or alongside their dispatcher).
func (a *Agent) register(ctx context.Context) error {
	deadline := time.Now().Add(15 * time.Second)
	for {
		var resp registerResponse
		_, err := a.post(ctx, "/v1/agents", registerRequest{Name: a.cfg.Name}, &resp, http.StatusOK)
		if err == nil {
			a.id = resp.Agent
			a.res.Agent = resp.Agent
			a.ttl = time.Duration(resp.LeaseTTLMs) * time.Millisecond
			a.hbEach = time.Duration(resp.HeartbeatMs) * time.Millisecond
			if a.hbEach <= 0 {
				a.hbEach = a.ttl / 3
			}
			if a.hbEach <= 0 {
				a.hbEach = time.Second
			}
			a.logf("registered as %s (lease TTL %v)", a.id, a.ttl)
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("%w: registration failed: %v", ErrDispatcherGone, err)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(200 * time.Millisecond):
		}
	}
}

// loop is the agent's life: lease, work, upload, repeat.
func (a *Agent) loop(ctx context.Context) error {
	misses := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var resp leaseResponse
		code, err := a.post(ctx, "/v1/lease", leaseRequest{Agent: a.id}, &resp, http.StatusOK)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if code == http.StatusNotFound || code == http.StatusMethodNotAllowed {
				// The address answers HTTP but no longer speaks the
				// fleet protocol: the dispatcher folded and rebound its
				// port to plain corpus serving. The campaign is over.
				return fmt.Errorf("%w: %v", ErrDispatcherGone, err)
			}
			if code != 0 {
				// The dispatcher answered with an error: the campaign
				// failed (lease budget exhausted) or we are unknown.
				return err
			}
			if misses++; misses >= 10 {
				return fmt.Errorf("%w: %v", ErrDispatcherGone, err)
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(300 * time.Millisecond):
			}
			continue
		}
		misses = 0
		switch resp.Status {
		case "done":
			a.logf("campaign complete; exiting")
			return nil
		case "wait":
			retry := time.Duration(resp.RetryMs) * time.Millisecond
			if retry <= 0 {
				retry = 500 * time.Millisecond
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(retry):
			}
		case "lease":
			a.res.Leases++
			a.workLease(ctx, resp)
		default:
			return fmt.Errorf("fleetd: unknown lease response status %q", resp.Status)
		}
	}
}

// leaseProgress accumulates the worker's latest streamed state under a
// lock the heartbeat sender shares with the event relay.
type leaseProgress struct {
	mu     sync.Mutex
	done   int
	total  int
	snap   *telemetry.Snapshot
	traces []tracing.Trace
}

// workLease runs one leased shard to its conclusion: worker success →
// upload; local failure → release; lease lost (heartbeat fencing) →
// kill the worker and move on. Failures never kill the agent — the
// dispatcher owns campaign-level policy.
func (a *Agent) workLease(ctx context.Context, l leaseResponse) {
	storeDir := dispatch.ShardDir(a.cfg.Dir, l.Shard)
	a.logf("leased shard %d/%d (epoch %d) -> %s", l.Shard, l.Of, l.Epoch, storeDir)

	var prog leaseProgress
	workCtx, cancelWork := context.WithCancel(ctx)
	defer cancelWork()
	var leaseLost bool
	var lostMu sync.Mutex
	markLost := func() {
		lostMu.Lock()
		if !leaseLost {
			leaseLost = true
			a.res.Lost++
		}
		lostMu.Unlock()
		cancelWork()
	}
	isLost := func() bool {
		lostMu.Lock()
		defer lostMu.Unlock()
		return leaseLost
	}

	// Heartbeats: renew the lease and relay the worker's cumulative
	// observability. A fencing response (409/410) means the shard was
	// stolen or already completed — stop the worker, it computes for
	// nobody. Repeated transport errors mean the dispatcher is gone;
	// stop too (the worker's store persists for a future lease).
	beat := func(beatCtx context.Context) (int, error) {
		prog.mu.Lock()
		req := heartbeatRequest{
			Agent: a.id, Shard: l.Shard, Epoch: l.Epoch,
			Done: prog.done, Total: prog.total,
			Snapshot: prog.snap, Traces: prog.traces,
		}
		prog.mu.Unlock()
		return a.post(beatCtx, "/v1/heartbeat", req, nil, http.StatusOK)
	}
	hbDone := make(chan struct{})
	var hbWg sync.WaitGroup
	hbWg.Add(1)
	go func() {
		defer hbWg.Done()
		tick := time.NewTicker(a.hbEach)
		defer tick.Stop()
		errs := 0
		for {
			select {
			case <-hbDone:
				return
			case <-workCtx.Done():
				return
			case <-tick.C:
				code, err := beat(workCtx)
				switch {
				case err == nil:
					errs = 0
				case code == http.StatusConflict || code == http.StatusGone:
					a.logf("shard %d lease lost (%v); stopping its worker", l.Shard, err)
					markLost()
					return
				default:
					if errs++; errs >= 5 {
						a.logf("dispatcher unreachable mid-lease (%v); stopping shard %d", err, l.Shard)
						cancelWork()
						return
					}
				}
			}
		}
	}()

	// The worker itself: the exact machinery of a local dispatch, for
	// one shard, with the worker kept in our process group so the
	// whole agent tree dies together (work stealing handles the rest).
	cfg := dispatch.Config{
		Shards:           l.Of,
		MaxRestarts:      a.cfg.MaxRestarts,
		Backoff:          a.cfg.Backoff,
		Grace:            a.cfg.Grace,
		KeepProcessGroup: true,
		Command: func(w dispatch.Worker) (*exec.Cmd, error) {
			return a.cfg.Command(l.Spec, w.Shard, w.Shards, w.StoreDir)
		},
		OnEvent: func(e dispatch.Event) {
			e.Agent = a.id
			e.Epoch = l.Epoch
			switch e.Type {
			case dispatch.EventProgress:
				prog.mu.Lock()
				prog.done, prog.total = e.Done, e.Total
				prog.mu.Unlock()
			case dispatch.EventTelemetry:
				prog.mu.Lock()
				prog.snap = e.Telemetry
				prog.mu.Unlock()
			case dispatch.EventTraces:
				prog.mu.Lock()
				prog.traces = e.Traces
				prog.mu.Unlock()
			}
			if a.cfg.OnEvent != nil {
				a.cfg.OnEvent(e)
			}
		},
	}
	restarts, err := dispatch.RunShard(workCtx, cfg, l.Shard, storeDir)
	a.res.Restarts += restarts
	close(hbDone)
	hbWg.Wait()

	if isLost() {
		return
	}
	if ctx.Err() != nil {
		return
	}
	if err != nil {
		// Local failure: hand the shard back so it re-queues now
		// instead of after the TTL. Best-effort — if the release
		// fails, expiry reclaims it.
		a.res.Released++
		a.logf("shard %d failed locally (%v); releasing the lease", l.Shard, err)
		a.post(ctx, "/v1/release", releaseRequest{
			Agent: a.id, Shard: l.Shard, Epoch: l.Epoch, Error: err.Error(),
		}, nil, http.StatusOK)
		return
	}

	// Success: one final synchronous heartbeat flushes the worker's
	// exit-time telemetry and traces (the ticker may not have fired
	// since), then the store ships. Fencing on either step means the
	// shard was stolen while we finished — the dispatcher's pick wins.
	if code, err := beat(ctx); err != nil {
		if code == http.StatusConflict || code == http.StatusGone {
			a.logf("shard %d was stolen before upload (%v)", l.Shard, err)
			markLost()
			return
		}
		// Transport trouble; still attempt the upload.
	}
	if err := a.upload(ctx, l, storeDir); err != nil {
		a.logf("shard %d upload rejected: %v", l.Shard, err)
		markLost()
		return
	}
	a.res.Completed++
	a.logf("shard %d uploaded and accepted", l.Shard)
}

// upload ships the completed shard store.
func (a *Agent) upload(ctx context.Context, l leaseResponse, dir string) error {
	pr, pw := io.Pipe()
	go func() {
		_, err := store.Ship(pw, dir)
		pw.CloseWithError(err)
	}()
	q := url.Values{}
	q.Set("agent", a.id)
	q.Set("shard", strconv.Itoa(l.Shard))
	q.Set("epoch", strconv.Itoa(l.Epoch))
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost, a.base+"/v1/upload?"+q.Encode(), pr)
	if err != nil {
		return err
	}
	hr.Header.Set("Content-Type", "application/octet-stream")
	// Uploads stream an arbitrary-size store; the default client's
	// whole-request timeout would sever large ones, so use a transport
	// without one for this call.
	client := &http.Client{Transport: a.client.Transport}
	res, err := client.Do(hr)
	if err != nil {
		return err
	}
	defer res.Body.Close()
	raw, _ := io.ReadAll(io.LimitReader(res.Body, 1<<20))
	if res.StatusCode != http.StatusOK {
		var eresp errorResponse
		if json.Unmarshal(raw, &eresp) == nil && eresp.Error != "" {
			return fmt.Errorf("fleetd: upload: %s (HTTP %d)", eresp.Error, res.StatusCode)
		}
		return fmt.Errorf("fleetd: upload: HTTP %d", res.StatusCode)
	}
	return nil
}
