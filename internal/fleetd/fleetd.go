// Package fleetd turns the local shard dispatcher into a multi-machine
// control plane: a Dispatcher that owns the campaign's shard partition
// and hands out TTL'd shard leases over HTTP, and an Agent that joins
// from any machine, runs leased shards with the exact same re-exec'd
// worker machinery a local dispatch uses, and ships its completed
// shard stores back.
//
// The protocol, in one lifecycle:
//
//	agent                                   dispatcher
//	  POST /v1/agents {name}          →       register, assign id
//	  POST /v1/lease {agent}          →       lease shard i (epoch e, TTL t)
//	  ...spawn worker (VERITAS_DISPATCH_WORKER spec from the lease)...
//	  POST /v1/heartbeat {i,e,done,   →       renew lease; relay progress,
//	       telemetry,traces}                  per-agent-labeled telemetry
//	                                          and traces into the fleet view
//	  POST /v1/upload?shard=i&epoch=e →       receive CRC-framed store,
//	       (shipped store stream)             verify shard.json + campaign
//	                                          fingerprint + every segment
//	                                          frame, then accept; shard done
//	  POST /v1/lease {agent}          →       next shard, or {done}
//
// Work stealing is lease expiry: an agent that stops heartbeating (it
// crashed, its machine died, its network partitioned) or a straggler
// that outlives the hard MaxLease deadline has its lease revoked and
// the shard returns to the pending queue for the next agent that asks.
// Lease epochs fence the ghosts: every grant increments the shard's
// epoch, and a heartbeat or upload carrying a stale epoch is rejected
// (409), so a presumed-dead agent that comes back cannot corrupt a
// shard another agent now owns. Because workers compute shards
// deterministically and resume from their stores, a stolen shard
// recomputed elsewhere produces a byte-identical shard store — the
// folded campaign report is the same no matter which agents ran what,
// or how many times leases moved.
//
// The event vocabulary is the local dispatcher's (package dispatch)
// plus three fleet verbs — EventLease, EventSteal, EventUpload — so
// one Status tracker renders both planes: /v1/status shows shard rows
// with their lease holders plus live agent rows, /metrics carries
// per-agent-labeled worker telemetry next to the dispatcher's own
// gauges, and /v1/trace merges agent-stamped traces into the
// fleet-wide slowest-sessions view.
package fleetd

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"veritas/internal/telemetry"
	"veritas/internal/tracing"
)

// Defaults for the lease policy.
const (
	// DefaultLeaseTTL is the heartbeat deadline: a lease not renewed
	// for this long is revoked and its shard re-leased.
	DefaultLeaseTTL = 10 * time.Second
	// DefaultMaxGrants caps how many times one shard may be leased
	// before the dispatcher declares the campaign failed — the
	// backstop against a shard that crashes every agent it lands on.
	DefaultMaxGrants = 5
)

// Lease errors, surfaced as HTTP 409/410 by the dispatcher.
var (
	// ErrStaleLease fences a ghost: the caller's (agent, epoch) no
	// longer holds the shard — the lease expired and was re-granted,
	// or never belonged to the caller.
	ErrStaleLease = errors.New("fleetd: stale lease")
	// ErrShardDone rejects work on a completed shard — notably a
	// duplicate store upload for a shard whose store was already
	// accepted.
	ErrShardDone = errors.New("fleetd: shard already complete")
)

// Wire types. Everything crossing the HTTP boundary is plain JSON.

// registerRequest / registerResponse: POST /v1/agents.
type registerRequest struct {
	Name string `json:"name,omitempty"`
}

type registerResponse struct {
	Agent       string `json:"agent"`
	Shards      int    `json:"shards"`
	LeaseTTLMs  int64  `json:"leaseTTLMs"`
	HeartbeatMs int64  `json:"heartbeatMs"`
}

// leaseRequest / leaseResponse: POST /v1/lease. Status is "lease"
// (Shard/Of/Epoch/TTLMs/Spec set), "wait" (nothing pending right now;
// retry after RetryMs — stealing happens when some lease expires), or
// "done" (the campaign is complete; the agent should exit).
type leaseRequest struct {
	Agent string `json:"agent"`
}

type leaseResponse struct {
	Status  string          `json:"status"`
	Shard   int             `json:"shard,omitempty"`
	Of      int             `json:"of,omitempty"`
	Epoch   int             `json:"epoch,omitempty"`
	TTLMs   int64           `json:"ttlMs,omitempty"`
	RetryMs int64           `json:"retryMs,omitempty"`
	Spec    json.RawMessage `json:"spec,omitempty"`
}

// heartbeatRequest: POST /v1/heartbeat. Progress counts are the
// worker's rebased done/total; Snapshot and Traces are the cumulative
// observability the worker streamed up the NDJSON protocol, relayed
// verbatim (the dispatcher stamps agent provenance on arrival).
type heartbeatRequest struct {
	Agent    string              `json:"agent"`
	Shard    int                 `json:"shard"`
	Epoch    int                 `json:"epoch"`
	Done     int                 `json:"done"`
	Total    int                 `json:"total"`
	Snapshot *telemetry.Snapshot `json:"snapshot,omitempty"`
	Traces   []tracing.Trace     `json:"traces,omitempty"`
}

// releaseRequest: POST /v1/release — an agent returning a lease it
// cannot finish (its local restart budget is exhausted), so the shard
// re-queues immediately instead of waiting out the TTL.
type releaseRequest struct {
	Agent string `json:"agent"`
	Shard int    `json:"shard"`
	Epoch int    `json:"epoch"`
	Error string `json:"error,omitempty"`
}

// errorResponse carries an error across the wire.
type errorResponse struct {
	Error string `json:"error"`
}

// uploadResponse: POST /v1/upload acceptance.
type uploadResponse struct {
	Sessions int `json:"sessions"`
}

// leaseState tracks one shard through the table.
type leaseState int

const (
	statePending leaseState = iota
	stateLeased
	stateDone
)

// lease is one shard's slot in the table.
type lease struct {
	state leaseState
	// agent/epoch identify the current holder (stateLeased) or the
	// last one (after expiry/steal). Epoch increments on every grant
	// and never resets — the fencing token.
	agent string
	epoch int
	// expires is the heartbeat deadline; deadline is the optional hard
	// straggler bound set at grant time (zero when MaxLease is off).
	expires  time.Time
	deadline time.Time
	// grants counts how many times this shard was leased; steals how
	// many of those leases were revoked.
	grants int
	steals int
}

// steal records one revocation, for event emission.
type steal struct {
	shard  int
	agent  string
	epoch  int
	reason string
}

// table is the lease table: the dispatcher's single source of truth
// for who owns which shard. All methods are safe for concurrent use.
type table struct {
	mu        sync.Mutex
	now       func() time.Time
	ttl       time.Duration
	maxLease  time.Duration // zero: no straggler deadline
	maxGrants int
	leases    []lease
	done      int
	fatal     error
	// completeCh closes exactly once, when every shard is done or the
	// table turns fatal.
	completeCh chan struct{}
	steals     int
}

func newTable(shards int, ttl, maxLease time.Duration, maxGrants int, now func() time.Time) *table {
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	if maxGrants <= 0 {
		maxGrants = DefaultMaxGrants
	}
	if now == nil {
		now = time.Now
	}
	return &table{
		now:        now,
		ttl:        ttl,
		maxLease:   maxLease,
		maxGrants:  maxGrants,
		leases:     make([]lease, shards),
		completeCh: make(chan struct{}),
	}
}

// acquire leases the lowest-indexed pending shard to agent. ok is
// false when nothing is pending (everything leased or done — the
// caller answers "wait" or "done"). Exceeding the per-shard grant cap
// turns the table fatal.
func (t *table) acquire(agent string) (shard, epoch int, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.fatal != nil {
		return 0, 0, false
	}
	for i := range t.leases {
		l := &t.leases[i]
		if l.state != statePending {
			continue
		}
		if l.grants >= t.maxGrants {
			t.failLocked(fmt.Errorf("fleetd: shard %d exhausted its lease budget (%d grants); campaign failed", i, l.grants))
			return 0, 0, false
		}
		l.state = stateLeased
		l.agent = agent
		l.epoch++
		l.grants++
		now := t.now()
		l.expires = now.Add(t.ttl)
		if t.maxLease > 0 {
			l.deadline = now.Add(t.maxLease)
		} else {
			l.deadline = time.Time{}
		}
		return i, l.epoch, true
	}
	return 0, 0, false
}

// check validates that (agent, epoch) currently holds shard, mapping
// the failure modes onto the two fencing errors.
func (t *table) checkLocked(shard int, agent string, epoch int) (*lease, error) {
	if shard < 0 || shard >= len(t.leases) {
		return nil, fmt.Errorf("fleetd: shard %d out of range", shard)
	}
	l := &t.leases[shard]
	if l.state == stateDone {
		return nil, ErrShardDone
	}
	if l.state != stateLeased || l.agent != agent || l.epoch != epoch {
		return nil, fmt.Errorf("%w: shard %d epoch %d is not held by %s@%d", ErrStaleLease, shard, l.epoch, agent, epoch)
	}
	return l, nil
}

// heartbeat renews the lease's TTL. The straggler deadline, when set,
// is not extended — that is the point of a hard deadline.
func (t *table) heartbeat(shard int, agent string, epoch int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	l, err := t.checkLocked(shard, agent, epoch)
	if err != nil {
		return err
	}
	l.expires = t.now().Add(t.ttl)
	return nil
}

// complete marks the shard done on behalf of its current holder. The
// caller performs upload verification *before* complete; a lease that
// expired during that verification fails here, and the already
// verified store is discarded — fencing beats salvage, because the
// shard's re-lease may already be computing into the accepted slot.
func (t *table) complete(shard int, agent string, epoch int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	l, err := t.checkLocked(shard, agent, epoch)
	if err != nil {
		return err
	}
	l.state = stateDone
	t.done++
	if t.done == len(t.leases) {
		t.closeCompleteLocked()
	}
	return nil
}

// markDone pre-completes a shard outside any lease: a verified shard
// store already on disk when the dispatcher starts (a previous
// interrupted fleet run left it).
func (t *table) markDone(shard int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	l := &t.leases[shard]
	if l.state == stateDone {
		return
	}
	l.state = stateDone
	t.done++
	if t.done == len(t.leases) {
		t.closeCompleteLocked()
	}
}

// release returns a leased shard to the pending queue at the holder's
// request (worker failed locally). Not counted as a steal.
func (t *table) release(shard int, agent string, epoch int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	l, err := t.checkLocked(shard, agent, epoch)
	if err != nil {
		return err
	}
	l.state = statePending
	return nil
}

// sweep revokes expired leases — missed heartbeats, or stragglers past
// the hard deadline — returning their shards to the pending queue.
// Once the table is complete there is nothing leased, so a sweep
// racing the fold is a no-op by construction.
func (t *table) sweep() []steal {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	var out []steal
	for i := range t.leases {
		l := &t.leases[i]
		if l.state != stateLeased {
			continue
		}
		reason := ""
		switch {
		case now.After(l.expires):
			reason = fmt.Sprintf("missed heartbeats (lease TTL %v)", t.ttl)
		case !l.deadline.IsZero() && now.After(l.deadline):
			reason = fmt.Sprintf("straggler exceeded the hard lease deadline (%v)", t.maxLease)
		default:
			continue
		}
		l.state = statePending
		l.steals++
		t.steals++
		out = append(out, steal{shard: i, agent: l.agent, epoch: l.epoch, reason: reason})
	}
	return out
}

// fail turns the table fatal: complete closes, Wait returns the error.
func (t *table) fail(err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.failLocked(err)
}

func (t *table) failLocked(err error) {
	if t.fatal == nil {
		t.fatal = err
		t.closeCompleteLocked()
	}
}

func (t *table) closeCompleteLocked() {
	select {
	case <-t.completeCh:
	default:
		close(t.completeCh)
	}
}

// complete reports the completion channel (closed when all shards are
// done or the table turned fatal) and err the fatal error, if any.
func (t *table) err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.fatal
}

func (t *table) isComplete() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.fatal == nil && t.done == len(t.leases)
}

// holderOf reports the shards agent currently holds.
func (t *table) holderOf(agent string) []int {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []int
	for i := range t.leases {
		if t.leases[i].state == stateLeased && t.leases[i].agent == agent {
			out = append(out, i)
		}
	}
	return out
}

// stealCount reports total revocations so far.
func (t *table) stealCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.steals
}
