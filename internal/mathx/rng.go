package mathx

import "math/rand"

// SampleCategorical draws an index from the (not necessarily normalized)
// non-negative weight vector w using rng. If all weights are zero it
// falls back to a uniform draw so callers never receive an invalid index.
func SampleCategorical(rng *rand.Rand, w []float64) int {
	if len(w) == 0 {
		panic("mathx: SampleCategorical on empty weights")
	}
	var total float64
	for _, v := range w {
		if v > 0 {
			total += v
		}
	}
	if total <= 0 {
		return rng.Intn(len(w))
	}
	u := rng.Float64() * total
	var acc float64
	for i, v := range w {
		if v <= 0 {
			continue
		}
		acc += v
		if u < acc {
			return i
		}
	}
	return len(w) - 1
}

// SampleUniformRange draws a float uniformly from [lo, hi).
func SampleUniformRange(rng *rand.Rand, lo, hi float64) float64 {
	return lo + rng.Float64()*(hi-lo)
}
