package mathx

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestIdentity(t *testing.T) {
	m := Identity(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if m.At(i, j) != want {
				t.Errorf("Identity(3)[%d][%d] = %v, want %v", i, j, m.At(i, j), want)
			}
		}
	}
}

func TestFromRowsValid(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatalf("FromRows: %v", err)
	}
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Errorf("FromRows produced wrong layout: %v", m.Data)
	}
}

func TestFromRowsRagged(t *testing.T) {
	if _, err := FromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("FromRows accepted ragged rows")
	}
}

func TestFromRowsEmpty(t *testing.T) {
	if _, err := FromRows(nil); err == nil {
		t.Error("FromRows accepted empty input")
	}
}

func TestMul(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{5, 6}, {7, 8}})
	c := a.Mul(b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Errorf("Mul[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMulDimensionPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Mul with mismatched dims did not panic")
		}
	}()
	NewMatrix(2, 3).Mul(NewMatrix(2, 3))
}

func TestMulVec(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	got := a.MulVec([]float64{1, 1})
	if got[0] != 3 || got[1] != 7 {
		t.Errorf("MulVec = %v, want [3 7]", got)
	}
}

func TestVecMul(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	got := a.VecMul([]float64{1, 1})
	if got[0] != 4 || got[1] != 6 {
		t.Errorf("VecMul = %v, want [4 6]", got)
	}
}

func TestPowZeroIsIdentity(t *testing.T) {
	a, _ := FromRows([][]float64{{0.5, 0.5}, {0.25, 0.75}})
	p := a.Pow(0)
	id := Identity(2)
	for i := range p.Data {
		if p.Data[i] != id.Data[i] {
			t.Fatalf("Pow(0) != I: %v", p.Data)
		}
	}
}

func TestPowMatchesRepeatedMul(t *testing.T) {
	a, _ := FromRows([][]float64{{0.9, 0.1}, {0.2, 0.8}})
	direct := a.Clone()
	for k := 2; k <= 6; k++ {
		direct = direct.Mul(a)
		pow := a.Pow(k)
		for i := range pow.Data {
			if math.Abs(pow.Data[i]-direct.Data[i]) > 1e-12 {
				t.Fatalf("Pow(%d) differs from repeated Mul at %d: %v vs %v",
					k, i, pow.Data[i], direct.Data[i])
			}
		}
	}
}

func TestPowPreservesStochastic(t *testing.T) {
	a, _ := FromRows([][]float64{{0.7, 0.3, 0}, {0.15, 0.7, 0.15}, {0, 0.3, 0.7}})
	for k := 0; k < 20; k++ {
		if !a.Pow(k).IsRowStochastic(1e-9) {
			t.Fatalf("A^%d is not row-stochastic", k)
		}
	}
}

func TestPowerCacheMatchesPow(t *testing.T) {
	a, _ := FromRows([][]float64{{0.7, 0.3}, {0.4, 0.6}})
	c := NewPowerCache(a)
	for _, k := range []int{0, 1, 5, 3, 17, 2, 17} {
		got := c.Pow(k)
		want := a.Pow(k)
		for i := range got.Data {
			if math.Abs(got.Data[i]-want.Data[i]) > 1e-12 {
				t.Fatalf("PowerCache.Pow(%d) mismatch at %d", k, i)
			}
		}
	}
}

func TestPowerCacheIsolatedFromBaseMutation(t *testing.T) {
	a, _ := FromRows([][]float64{{0.7, 0.3}, {0.4, 0.6}})
	c := NewPowerCache(a)
	a.Set(0, 0, 99)
	got := c.Pow(2).At(0, 0)
	want := 0.7*0.7 + 0.3*0.4
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("PowerCache affected by base mutation: got %v want %v", got, want)
	}
}

func TestNormalizeRows(t *testing.T) {
	m, _ := FromRows([][]float64{{2, 2}, {0, 0}})
	m.NormalizeRows()
	if m.At(0, 0) != 0.5 || m.At(0, 1) != 0.5 {
		t.Errorf("row 0 not normalized: %v", m.Row(0))
	}
	if m.At(1, 0) != 0.5 || m.At(1, 1) != 0.5 {
		t.Errorf("zero row should become uniform: %v", m.Row(1))
	}
}

func TestQuickStochasticPowers(t *testing.T) {
	// Property: any row-normalized positive matrix stays row-stochastic
	// under powers.
	f := func(a, b, c, d uint8) bool {
		m, _ := FromRows([][]float64{
			{float64(a) + 1, float64(b) + 1},
			{float64(c) + 1, float64(d) + 1},
		})
		m.NormalizeRows()
		return m.Pow(7).IsRowStochastic(1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMatrixString(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	s := m.String()
	if len(s) == 0 {
		t.Fatal("empty String()")
	}
	if lines := len([]rune(s)) > 0 && s[len(s)-1] == '\n'; !lines {
		t.Error("String should end with newline")
	}
}

func TestPowerCacheBase(t *testing.T) {
	a, _ := FromRows([][]float64{{0.9, 0.1}, {0.2, 0.8}})
	c := NewPowerCache(a)
	b := c.Base()
	if b.At(0, 0) != 0.9 {
		t.Error("Base() returned wrong matrix")
	}
	b.Set(0, 0, 99) // mutating the copy must not corrupt the cache
	if c.Pow(1).At(0, 0) != 0.9 {
		t.Error("Base() copy aliased the cache")
	}
}

func TestNewMatrixPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewMatrix(0, 3) should panic")
		}
	}()
	NewMatrix(0, 3)
}

func TestFingerprintAndEqual(t *testing.T) {
	a, _ := FromRows([][]float64{{0.7, 0.3}, {0.4, 0.6}})
	b, _ := FromRows([][]float64{{0.7, 0.3}, {0.4, 0.6}})
	c, _ := FromRows([][]float64{{0.7, 0.3}, {0.4, 0.6000001}})
	if !a.Equal(b) || a.Fingerprint() != b.Fingerprint() {
		t.Error("equal matrices must share a fingerprint")
	}
	if a.Equal(c) || a.Fingerprint() == c.Fingerprint() {
		t.Error("different matrices should differ in fingerprint")
	}
	d, _ := FromRows([][]float64{{0.7, 0.3, 0.4, 0.6}}) // same data, other shape
	if a.Equal(d) || a.Fingerprint() == d.Fingerprint() {
		t.Error("shape must be part of the fingerprint")
	}
}

func TestSharedPowersReusesCaches(t *testing.T) {
	// A base unique to this test so the process-wide registry stats are
	// attributable.
	base, _ := FromRows([][]float64{{0.8125, 0.1875}, {0.34375, 0.65625}})
	h0, m0 := SharedPowerStats()
	c1 := SharedPowers(base)
	c2 := SharedPowers(base.Clone())
	h1, m1 := SharedPowerStats()
	if c1 != c2 {
		t.Fatal("identical matrices got distinct shared caches")
	}
	if h1-h0 != 1 || m1-m0 != 1 {
		t.Errorf("stats delta = %d hits %d misses, want 1 and 1", h1-h0, m1-m0)
	}
	// Shared caches serve the same powers a private cache computes.
	private := NewPowerCache(base)
	for _, k := range []int{3, 1, 9} {
		got, want := c1.Pow(k), private.Pow(k)
		if !got.Equal(want) {
			t.Fatalf("shared Pow(%d) differs from private", k)
		}
	}
}

func TestSharedPowersConcurrent(t *testing.T) {
	base, _ := FromRows([][]float64{{0.84375, 0.15625}, {0.21875, 0.78125}})
	want := NewPowerCache(base)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := SharedPowers(base)
			for k := 0; k < 40; k++ {
				got := c.Pow((k*7 + w) % 23)
				if !got.Equal(want.Pow((k*7 + w) % 23)) {
					t.Errorf("concurrent shared Pow mismatch at k=%d", (k*7+w)%23)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
