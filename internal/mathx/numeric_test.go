package mathx

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLogSumExpBasic(t *testing.T) {
	got := LogSumExp([]float64{math.Log(1), math.Log(2), math.Log(3)})
	want := math.Log(6)
	if !AlmostEqual(got, want, 1e-12) {
		t.Errorf("LogSumExp = %v, want %v", got, want)
	}
}

func TestLogSumExpEmpty(t *testing.T) {
	if !math.IsInf(LogSumExp(nil), -1) {
		t.Error("LogSumExp(nil) should be -Inf")
	}
}

func TestLogSumExpAllNegInf(t *testing.T) {
	if !math.IsInf(LogSumExp([]float64{NegInf, NegInf}), -1) {
		t.Error("LogSumExp of -Infs should be -Inf")
	}
}

func TestLogSumExpExtreme(t *testing.T) {
	// Would overflow naive exp.
	got := LogSumExp([]float64{1000, 1000})
	want := 1000 + math.Log(2)
	if !AlmostEqual(got, want, 1e-9) {
		t.Errorf("LogSumExp extreme = %v, want %v", got, want)
	}
}

func TestLogAddMatchesLogSumExp(t *testing.T) {
	f := func(a, b float64) bool {
		a = math.Mod(a, 50)
		b = math.Mod(b, 50)
		return AlmostEqual(LogAdd(a, b), LogSumExp([]float64{a, b}), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalLogPDFPeak(t *testing.T) {
	// Density at the mean of a standard normal.
	got := math.Exp(NormalLogPDF(0, 0, 1))
	want := 1 / math.Sqrt(2*math.Pi)
	if !AlmostEqual(got, want, 1e-12) {
		t.Errorf("pdf(0;0,1) = %v, want %v", got, want)
	}
}

func TestNormalLogPDFSymmetry(t *testing.T) {
	a := NormalLogPDF(2, 5, 1.5)
	b := NormalLogPDF(8, 5, 1.5)
	if !AlmostEqual(a, b, 1e-12) {
		t.Errorf("normal pdf not symmetric: %v vs %v", a, b)
	}
}

func TestNormalLogPDFBadSigma(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NormalLogPDF with sigma <= 0 did not panic")
		}
	}()
	NormalLogPDF(0, 0, 0)
}

func TestClamp(t *testing.T) {
	cases := []struct{ v, lo, hi, want float64 }{
		{5, 0, 10, 5},
		{-1, 0, 10, 0},
		{11, 0, 10, 10},
	}
	for _, c := range cases {
		if got := Clamp(c.v, c.lo, c.hi); got != c.want {
			t.Errorf("Clamp(%v,%v,%v) = %v, want %v", c.v, c.lo, c.hi, got, c.want)
		}
	}
}

func TestNormalize(t *testing.T) {
	xs := []float64{1, 3}
	Normalize(xs)
	if xs[0] != 0.25 || xs[1] != 0.75 {
		t.Errorf("Normalize = %v", xs)
	}
	zeros := []float64{0, 0, 0, 0}
	Normalize(zeros)
	for _, v := range zeros {
		if v != 0.25 {
			t.Errorf("Normalize zeros -> %v, want uniform", zeros)
		}
	}
}

func TestArgMax(t *testing.T) {
	i, v := ArgMax([]float64{3, 9, 2, 9})
	if i != 1 || v != 9 {
		t.Errorf("ArgMax = (%d, %v), want (1, 9) with first-tie rule", i, v)
	}
}

func TestSampleCategoricalDeterministicExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		if got := SampleCategorical(rng, []float64{0, 0, 1, 0}); got != 2 {
			t.Fatalf("SampleCategorical point mass drew %d", got)
		}
	}
}

func TestSampleCategoricalFrequencies(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	w := []float64{1, 3}
	counts := [2]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[SampleCategorical(rng, w)]++
	}
	frac := float64(counts[1]) / n
	if math.Abs(frac-0.75) > 0.02 {
		t.Errorf("weight-3 arm frequency %v, want ~0.75", frac)
	}
}

func TestSampleCategoricalAllZeroFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		seen[SampleCategorical(rng, []float64{0, 0, 0})] = true
	}
	if len(seen) < 2 {
		t.Error("all-zero weights should fall back to uniform, but draws were degenerate")
	}
}

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
}

func TestNormalPDFIntegratesToOne(t *testing.T) {
	// Trapezoid integration over ±6σ.
	var area float64
	const dx = 0.01
	for x := -6.0; x < 6; x += dx {
		area += NormalPDF(x, 0, 1) * dx
	}
	if math.Abs(area-1) > 1e-3 {
		t.Errorf("pdf integrates to %v", area)
	}
}

func TestLerp(t *testing.T) {
	if Lerp(2, 4, 0) != 2 || Lerp(2, 4, 1) != 4 || Lerp(2, 4, 0.5) != 3 {
		t.Error("Lerp wrong")
	}
}

func TestSum(t *testing.T) {
	if Sum([]float64{1, 2, 3.5}) != 6.5 {
		t.Error("Sum wrong")
	}
	if Sum(nil) != 0 {
		t.Error("Sum(nil) should be 0")
	}
}

func TestAlmostEqualInfinities(t *testing.T) {
	inf := math.Inf(1)
	if !AlmostEqual(inf, inf, 0.1) {
		t.Error("equal infinities should compare equal")
	}
	if AlmostEqual(inf, -inf, 0.1) {
		t.Error("opposite infinities should not compare equal")
	}
	if AlmostEqual(inf, 5, 1e18) {
		t.Error("inf vs finite should not compare equal")
	}
}

func TestSampleUniformRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		v := SampleUniformRange(rng, 2, 5)
		if v < 2 || v >= 5 {
			t.Fatalf("sample %v outside [2, 5)", v)
		}
	}
}
