package mathx

import (
	"math"
	"testing"
)

// Allocation and retention regression tests for the scratch-arena hot
// path: the in-place kernels must stay allocation-free, and the power
// cache's retention cap must bound memory however large the requested
// exponent is — without changing any returned value.

func TestMulIntoDoesNotAllocate(t *testing.T) {
	a, _ := FromRows([][]float64{{0.7, 0.3}, {0.4, 0.6}})
	b, _ := FromRows([][]float64{{0.9, 0.1}, {0.2, 0.8}})
	dst := NewMatrix(2, 2)
	if n := testing.AllocsPerRun(100, func() { a.MulInto(dst, b) }); n != 0 {
		t.Errorf("MulInto allocates %v per run, want 0", n)
	}
}

func TestMulVecIntoDoesNotAllocate(t *testing.T) {
	a, _ := FromRows([][]float64{{0.7, 0.3}, {0.4, 0.6}})
	v := []float64{0.5, 0.5}
	dst := make([]float64, 2)
	if n := testing.AllocsPerRun(100, func() { a.MulVecInto(dst, v) }); n != 0 {
		t.Errorf("MulVecInto allocates %v per run, want 0", n)
	}
}

func TestVecMulIntoDoesNotAllocate(t *testing.T) {
	a, _ := FromRows([][]float64{{0.7, 0.3}, {0.4, 0.6}})
	v := []float64{0.5, 0.5}
	dst := make([]float64, 2)
	if n := testing.AllocsPerRun(100, func() { a.VecMulInto(dst, v) }); n != 0 {
		t.Errorf("VecMulInto allocates %v per run, want 0", n)
	}
}

// TestInPlaceKernelsBitIdentical pins the determinism contract the hmm
// layer relies on: the Into variants reproduce the allocating ones bit
// for bit (same accumulation order, zero-then-accumulate).
func TestInPlaceKernelsBitIdentical(t *testing.T) {
	a, _ := FromRows([][]float64{
		{0.17, 0.33, 0.5},
		{0.61, 0.09, 0.3},
		{0.25, 0.5, 0.25},
	})
	b := a.Pow(3)
	v := []float64{0.123456789, 0.987654321, 1.0 / 3.0}

	m := a.Mul(b)
	mi := NewMatrix(3, 3)
	// Dirty dst: the kernel must fully overwrite it.
	for i := range mi.Data {
		mi.Data[i] = math.NaN()
	}
	a.MulInto(mi, b)
	if !m.Equal(mi) {
		t.Error("MulInto differs from Mul")
	}

	mv := a.MulVec(v)
	mvi := []float64{math.NaN(), math.NaN(), math.NaN()}
	a.MulVecInto(mvi, v)
	for i := range mv {
		if mv[i] != mvi[i] {
			t.Errorf("MulVecInto[%d] = %v, MulVec = %v", i, mvi[i], mv[i])
		}
	}

	vm := a.VecMul(v)
	vmi := []float64{math.NaN(), math.NaN(), math.NaN()}
	a.VecMulInto(vmi, v)
	for i := range vm {
		if vm[i] != vmi[i] {
			t.Errorf("VecMulInto[%d] = %v, VecMul = %v", i, vmi[i], vm[i])
		}
	}
}

// TestPowerCacheRetentionBounded is the memory-growth regression test
// for the retention cap: one pathological huge-Δn query must pin
// O(powRetainCap) matrices, not O(Δn) — and capping retention must not
// change a single returned value.
func TestPowerCacheRetentionBounded(t *testing.T) {
	a, _ := FromRows([][]float64{{0.95, 0.05}, {0.03, 0.97}})
	c := NewPowerCache(a)

	const huge = 5 * powRetainCap
	got := c.Pow(huge)

	powers, logs := c.Retained()
	if powers > powRetainCap {
		t.Errorf("cache retains %d powers after Pow(%d), cap is %d", powers, huge, powRetainCap)
	}
	if logs > powRetainCap {
		t.Errorf("cache retains %d log powers, cap is %d", logs, powRetainCap)
	}

	// The capped walk returns the canonical power: compare against the
	// plain sequential walk at a few checkpoints (including one past the
	// dense-retention region and the huge target itself).
	ref := Identity(2)
	checks := map[int]*Matrix{}
	for p := 1; p <= huge; p++ {
		ref = ref.Mul(a)
		switch p {
		case 7, powDenseRetain + 3, powRetainCap + 11, huge:
			checks[p] = ref
		}
	}
	for k, want := range checks {
		g := c.Pow(k)
		if !g.Equal(want) {
			t.Errorf("capped Pow(%d) differs from sequential walk", k)
		}
	}
	if !got.Equal(checks[huge]) {
		t.Errorf("Pow(%d) differs from sequential walk", huge)
	}

	// Retention must stay bounded under continued traffic.
	for k := 0; k < 3*powRetainCap; k += 7 {
		c.Pow(k)
		c.PowLog(k % (powRetainCap * 2))
	}
	powers, logs = c.Retained()
	if powers > powRetainCap || logs > powRetainCap {
		t.Errorf("retention grew past cap under traffic: %d powers, %d logs", powers, logs)
	}
}

// TestPowLogMatchesLogOfPow pins PowLog as a pure element-wise
// transform of the canonical power, with zeros mapping to -Inf.
func TestPowLogMatchesLogOfPow(t *testing.T) {
	a, _ := FromRows([][]float64{{0.8, 0.2, 0}, {0.1, 0.8, 0.1}, {0, 0.2, 0.8}})
	c := NewPowerCache(a)
	for _, k := range []int{0, 1, 2, 9} {
		p := c.Pow(k)
		lg := c.PowLog(k)
		// Memoized: a second call returns the identical matrix.
		if c.PowLog(k) != lg {
			t.Errorf("PowLog(%d) not memoized", k)
		}
		for i, v := range p.Data {
			want := NegInf
			if v > 0 {
				want = math.Log(v)
			}
			if lg.Data[i] != want {
				t.Errorf("PowLog(%d)[%d] = %v, want %v", k, i, lg.Data[i], want)
			}
		}
	}
}

// TestSharedPowersMissSplit drives each miss cause — cold insert and
// fingerprint collision — through matrices unique to this test and
// checks the per-cause counters move (capacity misses would need a full
// registry, so only the invariant Misses() == Σ causes is pinned there).
func TestSharedPowersMissSplit(t *testing.T) {
	base, _ := FromRows([][]float64{{0.8671875, 0.1328125}, {0.2421875, 0.7578125}})
	d0 := SharedPowersDetail()
	SharedPowers(base)
	SharedPowers(base.Clone())
	d1 := SharedPowersDetail().Sub(d0)
	if d1.ColdMisses != 1 {
		t.Errorf("cold misses = %d, want 1 (first sight inserts)", d1.ColdMisses)
	}
	if d1.Hits != 1 {
		t.Errorf("hits = %d, want 1 (identical matrix reuses)", d1.Hits)
	}
	if d1.Misses() != d1.ColdMisses+d1.CollisionMisses+d1.CapacityMisses {
		t.Error("Misses() != sum of causes")
	}
	h, m := SharedPowerStats()
	dd := SharedPowersDetail()
	if h != dd.Hits || m != dd.Misses() {
		t.Error("legacy SharedPowerStats disagrees with SharedPowersDetail")
	}
}
