package mathx

import "math"

// NegInf is the log-domain zero.
var NegInf = math.Inf(-1)

// LogSumExp returns log(Σ exp(xs[i])) computed stably. An empty input or
// an input of all -Inf returns -Inf.
func LogSumExp(xs []float64) float64 {
	if len(xs) == 0 {
		return NegInf
	}
	max := NegInf
	for _, x := range xs {
		if x > max {
			max = x
		}
	}
	if math.IsInf(max, -1) {
		return NegInf
	}
	var s float64
	for _, x := range xs {
		s += math.Exp(x - max)
	}
	return max + math.Log(s)
}

// LogAdd returns log(exp(a) + exp(b)) stably.
func LogAdd(a, b float64) float64 {
	if math.IsInf(a, -1) {
		return b
	}
	if math.IsInf(b, -1) {
		return a
	}
	if a < b {
		a, b = b, a
	}
	return a + math.Log1p(math.Exp(b-a))
}

// NormalLogPDF returns the log density of Normal(mean, sigma²) at x.
// sigma must be positive.
func NormalLogPDF(x, mean, sigma float64) float64 {
	if sigma <= 0 {
		panic("mathx: NormalLogPDF requires sigma > 0")
	}
	z := (x - mean) / sigma
	return -0.5*z*z - math.Log(sigma) - 0.5*math.Log(2*math.Pi)
}

// NormalPDF returns the density of Normal(mean, sigma²) at x.
func NormalPDF(x, mean, sigma float64) float64 {
	return math.Exp(NormalLogPDF(x, mean, sigma))
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Lerp linearly interpolates between a and b by t ∈ [0, 1].
func Lerp(a, b, t float64) float64 { return a + (b-a)*t }

// Normalize scales xs in place to sum to 1 and returns the original sum.
// If the sum is zero the vector becomes uniform.
func Normalize(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	if s == 0 {
		u := 1 / float64(len(xs))
		for i := range xs {
			xs[i] = u
		}
		return 0
	}
	for i := range xs {
		xs[i] /= s
	}
	return s
}

// ArgMax returns the index of the maximum element (first on ties) and the
// maximum value. Panics on empty input.
func ArgMax(xs []float64) (int, float64) {
	if len(xs) == 0 {
		panic("mathx: ArgMax on empty slice")
	}
	bi, bv := 0, xs[0]
	for i, x := range xs {
		if x > bv {
			bi, bv = i, x
		}
	}
	return bi, bv
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("mathx: Dot length mismatch")
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// AlmostEqual reports |a-b| <= tol, treating equal infinities as equal.
func AlmostEqual(a, b, tol float64) bool {
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return a == b
	}
	return math.Abs(a-b) <= tol
}
