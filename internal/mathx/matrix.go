// Package mathx provides the small dense-matrix and numerical routines
// that the Veritas EHMM needs: row-stochastic matrices, cached matrix
// powers, log-domain helpers and Gaussian densities.
//
// All matrices are dense, row-major float64. Dimensions in Veritas are
// tiny (the GTBW state space is typically 20-40 states), so clarity wins
// over cache tricks.
package mathx

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"strings"
	"sync"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix returns a zero matrix with the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("mathx: invalid matrix shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Identity returns the n-by-n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, errors.New("mathx: FromRows needs at least one non-empty row")
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("mathx: ragged rows: row %d has %d cols, want %d", i, len(r), cols)
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i (not a copy).
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Mul returns m × b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("mathx: dimension mismatch %dx%d × %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		mrow := m.Row(i)
		orow := out.Row(i)
		for k, mv := range mrow {
			if mv == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += mv * bv
			}
		}
	}
	return out
}

// MulVec returns m × v as a new vector.
func (m *Matrix) MulVec(v []float64) []float64 {
	if m.Cols != len(v) {
		panic(fmt.Sprintf("mathx: dimension mismatch %dx%d × vec(%d)", m.Rows, m.Cols, len(v)))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var s float64
		for j, rv := range row {
			s += rv * v[j]
		}
		out[i] = s
	}
	return out
}

// VecMul returns vᵀ × m as a new vector (useful for forward recursions of
// row-stochastic chains).
func (m *Matrix) VecMul(v []float64) []float64 {
	if m.Rows != len(v) {
		panic(fmt.Sprintf("mathx: dimension mismatch vec(%d) × %dx%d", len(v), m.Rows, m.Cols))
	}
	out := make([]float64, m.Cols)
	for i, vi := range v {
		if vi == 0 {
			continue
		}
		row := m.Row(i)
		for j, rv := range row {
			out[j] += vi * rv
		}
	}
	return out
}

// Pow returns m^k for k ≥ 0 using exponentiation by squaring.
// m must be square; m^0 is the identity.
func (m *Matrix) Pow(k int) *Matrix {
	if m.Rows != m.Cols {
		panic("mathx: Pow requires a square matrix")
	}
	if k < 0 {
		panic("mathx: Pow requires k >= 0")
	}
	result := Identity(m.Rows)
	base := m.Clone()
	for k > 0 {
		if k&1 == 1 {
			result = result.Mul(base)
		}
		base = base.Mul(base)
		k >>= 1
	}
	return result
}

// IsRowStochastic reports whether every row sums to 1 within tol and all
// entries are non-negative.
func (m *Matrix) IsRowStochastic(tol float64) bool {
	for i := 0; i < m.Rows; i++ {
		var s float64
		for _, v := range m.Row(i) {
			if v < -tol {
				return false
			}
			s += v
		}
		if math.Abs(s-1) > tol {
			return false
		}
	}
	return true
}

// NormalizeRows scales each row to sum to 1. Rows that sum to zero become
// uniform distributions.
func (m *Matrix) NormalizeRows() {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var s float64
		for _, v := range row {
			s += v
		}
		if s == 0 {
			u := 1 / float64(len(row))
			for j := range row {
				row[j] = u
			}
			continue
		}
		for j := range row {
			row[j] /= s
		}
	}
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%8.4f", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Equal reports whether m and b have the same shape and bit-identical
// elements.
func (m *Matrix) Equal(b *Matrix) bool {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		return false
	}
	for i, v := range m.Data {
		if v != b.Data[i] {
			return false
		}
	}
	return true
}

// Fingerprint returns a 64-bit FNV-1a hash of the matrix shape and the
// raw bits of its elements — the key the shared power cache uses to
// recognize identical transition matrices across sessions.
func (m *Matrix) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(m.Rows)<<32|uint64(uint32(m.Cols)))
	h.Write(buf[:])
	for _, v := range m.Data {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	return h.Sum64()
}

// PowerCache memoizes powers of a fixed square matrix. The EHMM takes
// powers A^Δn for the (small, repeating) set of inter-chunk gaps Δn, so a
// map cache eliminates almost all of the multiplication work.
//
// The cache is safe for concurrent use: caches obtained from
// SharedPowers are read and grown by many fleet workers at once.
// Powers are always built by the same sequential walk (left-
// multiplying the base), so a shared, pre-warmed cache returns
// bit-identical matrices to a private one.
type PowerCache struct {
	mu     sync.RWMutex
	base   *Matrix
	powers map[int]*Matrix
}

// NewPowerCache returns a cache over base. The base matrix is cloned, so
// later mutation of the argument does not corrupt cached results.
func NewPowerCache(base *Matrix) *PowerCache {
	if base.Rows != base.Cols {
		panic("mathx: PowerCache requires a square matrix")
	}
	b := base.Clone()
	return &PowerCache{
		base:   b,
		powers: map[int]*Matrix{0: Identity(b.Rows), 1: b},
	}
}

// Pow returns base^k, computing and caching intermediate powers.
func (c *PowerCache) Pow(k int) *Matrix {
	if k < 0 {
		panic("mathx: PowerCache.Pow requires k >= 0")
	}
	c.mu.RLock()
	m, ok := c.powers[k]
	c.mu.RUnlock()
	if ok {
		return m
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if m, ok := c.powers[k]; ok {
		return m
	}
	// Build from the largest cached power below k; gaps in Veritas are
	// small integers, so the simple walk is fine and keeps every
	// intermediate power cached for future queries.
	best := 0
	for p := range c.powers {
		if p <= k && p > best {
			best = p
		}
	}
	m = c.powers[best]
	for p := best; p < k; p++ {
		m = m.Mul(c.base)
		c.powers[p+1] = m
	}
	return c.powers[k]
}

// Base returns a copy of the cached base matrix.
func (c *PowerCache) Base() *Matrix { return c.base.Clone() }

// sharedPowers is the process-wide transition-power registry: fleets of
// sessions whose models use identical transition matrices (equal
// capacity grids) share one PowerCache instead of recomputing A^Δn per
// session. Keyed by Matrix.Fingerprint with an equality check against
// collisions; bounded so adversarial matrix diversity cannot grow it
// without limit.
var sharedPowers = struct {
	mu           sync.Mutex
	caches       map[uint64]*PowerCache
	hits, misses uint64
}{caches: make(map[uint64]*PowerCache)}

// sharedPowersCap bounds the registry. Grids in a fleet are few (one
// per distinct MaxMbps after quantization); past the cap new matrices
// get private caches and are still counted as misses.
const sharedPowersCap = 256

// SharedPowers returns a process-wide PowerCache for base: sessions
// with bit-identical matrices get the same cache, so transition powers
// are computed once per grid rather than once per session. On a
// fingerprint collision (hash equal, matrix different) or when the
// registry is full, a private cache is returned.
func SharedPowers(base *Matrix) *PowerCache {
	fp := base.Fingerprint()
	sharedPowers.mu.Lock()
	defer sharedPowers.mu.Unlock()
	if c, ok := sharedPowers.caches[fp]; ok && c.base.Equal(base) {
		sharedPowers.hits++
		return c
	}
	sharedPowers.misses++
	c := NewPowerCache(base)
	if _, collided := sharedPowers.caches[fp]; !collided && len(sharedPowers.caches) < sharedPowersCap {
		sharedPowers.caches[fp] = c
	}
	return c
}

// SharedPowerStats returns the cumulative hit/miss counts of
// SharedPowers lookups since process start.
func SharedPowerStats() (hits, misses uint64) {
	sharedPowers.mu.Lock()
	defer sharedPowers.mu.Unlock()
	return sharedPowers.hits, sharedPowers.misses
}
