// Package mathx provides the small dense-matrix and numerical routines
// that the Veritas EHMM needs: row-stochastic matrices, cached matrix
// powers, log-domain helpers and Gaussian densities.
//
// All matrices are dense, row-major float64. Dimensions in Veritas are
// tiny (the GTBW state space is typically 20-40 states), so clarity wins
// over cache tricks.
package mathx

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"strings"
	"sync"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix returns a zero matrix with the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("mathx: invalid matrix shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Identity returns the n-by-n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, errors.New("mathx: FromRows needs at least one non-empty row")
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("mathx: ragged rows: row %d has %d cols, want %d", i, len(r), cols)
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i (not a copy).
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Mul returns m × b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("mathx: dimension mismatch %dx%d × %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Rows, b.Cols)
	m.MulInto(out, b)
	return out
}

// MulInto computes m × b into dst, which must be m.Rows × b.Cols and must
// not alias m or b. The accumulation order is identical to Mul's, so the
// in-place variant is bit-identical to the allocating one.
func (m *Matrix) MulInto(dst, b *Matrix) {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("mathx: dimension mismatch %dx%d × %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != m.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("mathx: MulInto dst is %dx%d, want %dx%d", dst.Rows, dst.Cols, m.Rows, b.Cols))
	}
	for i := range dst.Data {
		dst.Data[i] = 0
	}
	for i := 0; i < m.Rows; i++ {
		mrow := m.Row(i)
		orow := dst.Row(i)
		for k, mv := range mrow {
			if mv == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += mv * bv
			}
		}
	}
}

// MulVec returns m × v as a new vector.
func (m *Matrix) MulVec(v []float64) []float64 {
	out := make([]float64, m.Rows)
	m.MulVecInto(out, v)
	return out
}

// MulVecInto computes m × v into dst (length m.Rows), which must not
// alias v. Same op order as MulVec, so results are bit-identical.
func (m *Matrix) MulVecInto(dst, v []float64) {
	if m.Cols != len(v) {
		panic(fmt.Sprintf("mathx: dimension mismatch %dx%d × vec(%d)", m.Rows, m.Cols, len(v)))
	}
	if len(dst) != m.Rows {
		panic(fmt.Sprintf("mathx: MulVecInto dst length %d, want %d", len(dst), m.Rows))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var s float64
		for j, rv := range row {
			s += rv * v[j]
		}
		dst[i] = s
	}
}

// VecMul returns vᵀ × m as a new vector (useful for forward recursions of
// row-stochastic chains).
func (m *Matrix) VecMul(v []float64) []float64 {
	out := make([]float64, m.Cols)
	m.VecMulInto(out, v)
	return out
}

// VecMulInto computes vᵀ × m into dst (length m.Cols), which must not
// alias v. Same accumulation order as VecMul, so results are
// bit-identical.
func (m *Matrix) VecMulInto(dst, v []float64) {
	if m.Rows != len(v) {
		panic(fmt.Sprintf("mathx: dimension mismatch vec(%d) × %dx%d", len(v), m.Rows, m.Cols))
	}
	if len(dst) != m.Cols {
		panic(fmt.Sprintf("mathx: VecMulInto dst length %d, want %d", len(dst), m.Cols))
	}
	for j := range dst {
		dst[j] = 0
	}
	for i, vi := range v {
		if vi == 0 {
			continue
		}
		row := m.Row(i)
		for j, rv := range row {
			dst[j] += vi * rv
		}
	}
}

// Pow returns m^k for k ≥ 0 using exponentiation by squaring.
// m must be square; m^0 is the identity.
func (m *Matrix) Pow(k int) *Matrix {
	if m.Rows != m.Cols {
		panic("mathx: Pow requires a square matrix")
	}
	if k < 0 {
		panic("mathx: Pow requires k >= 0")
	}
	result := Identity(m.Rows)
	base := m.Clone()
	for k > 0 {
		if k&1 == 1 {
			result = result.Mul(base)
		}
		base = base.Mul(base)
		k >>= 1
	}
	return result
}

// IsRowStochastic reports whether every row sums to 1 within tol and all
// entries are non-negative.
func (m *Matrix) IsRowStochastic(tol float64) bool {
	for i := 0; i < m.Rows; i++ {
		var s float64
		for _, v := range m.Row(i) {
			if v < -tol {
				return false
			}
			s += v
		}
		if math.Abs(s-1) > tol {
			return false
		}
	}
	return true
}

// NormalizeRows scales each row to sum to 1. Rows that sum to zero become
// uniform distributions.
func (m *Matrix) NormalizeRows() {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var s float64
		for _, v := range row {
			s += v
		}
		if s == 0 {
			u := 1 / float64(len(row))
			for j := range row {
				row[j] = u
			}
			continue
		}
		for j := range row {
			row[j] /= s
		}
	}
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%8.4f", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Equal reports whether m and b have the same shape and bit-identical
// elements.
func (m *Matrix) Equal(b *Matrix) bool {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		return false
	}
	for i, v := range m.Data {
		if v != b.Data[i] {
			return false
		}
	}
	return true
}

// Fingerprint returns a 64-bit FNV-1a hash of the matrix shape and the
// raw bits of its elements — the key the shared power cache uses to
// recognize identical transition matrices across sessions.
func (m *Matrix) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(m.Rows)<<32|uint64(uint32(m.Cols)))
	h.Write(buf[:])
	for _, v := range m.Data {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	return h.Sum64()
}

// PowerCache memoizes powers of a fixed square matrix. The EHMM takes
// powers A^Δn for the (small, repeating) set of inter-chunk gaps Δn, so a
// map cache eliminates almost all of the multiplication work.
//
// The cache is safe for concurrent use: caches obtained from
// SharedPowers are read and grown by many fleet workers at once.
// Powers are always built by the same sequential walk (left-
// multiplying the base), so a shared, pre-warmed cache returns
// bit-identical matrices to a private one.
type PowerCache struct {
	mu     sync.RWMutex
	base   *Matrix
	powers map[int]*Matrix
	logs   map[int]*Matrix // element-wise log of cached powers
}

// Retention policy for the sequential power walk. Small gaps — the
// normal Veritas regime — cache every intermediate exactly as before;
// past powDenseRetain cached entries the walk only checkpoints every
// powStride-th power (plus the requested power itself), and past
// powRetainCap nothing new is retained at all. One pathological query
// with a huge Δn therefore pins O(powRetainCap) matrices instead of
// O(Δn). Every cached matrix is still produced by the same sequential
// left-multiply walk, so which subset is retained can never change a
// returned value: A^j from any retained anchor is the canonical A^j,
// and (A^j)·A is exactly the multiplication the full walk would do.
const (
	powDenseRetain = 256
	powStride      = 16
	powRetainCap   = 1024
)

// NewPowerCache returns a cache over base. The base matrix is cloned, so
// later mutation of the argument does not corrupt cached results.
func NewPowerCache(base *Matrix) *PowerCache {
	if base.Rows != base.Cols {
		panic("mathx: PowerCache requires a square matrix")
	}
	b := base.Clone()
	return &PowerCache{
		base:   b,
		powers: map[int]*Matrix{0: Identity(b.Rows), 1: b},
	}
}

// Pow returns base^k, computing — and, within the retention cap,
// caching — intermediate powers along the sequential walk.
func (c *PowerCache) Pow(k int) *Matrix {
	if k < 0 {
		panic("mathx: PowerCache.Pow requires k >= 0")
	}
	c.mu.RLock()
	m, ok := c.powers[k]
	c.mu.RUnlock()
	if ok {
		return m
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.powLocked(k)
}

func (c *PowerCache) powLocked(k int) *Matrix {
	if m, ok := c.powers[k]; ok {
		return m
	}
	// Build from the largest cached power below k. The walk always
	// left-multiplies the base one step at a time — the same sequence of
	// float operations whatever the anchor — so results are bit-identical
	// to an uncached walk from 1.
	best := 0
	for p := range c.powers {
		if p <= k && p > best {
			best = p
		}
	}
	m := c.powers[best]
	for p := best; p < k; p++ {
		m = m.Mul(c.base)
		if c.retain(p+1, k) {
			c.powers[p+1] = m
		}
	}
	return m
}

// retain decides whether the walk keeps power p on the way to target k.
func (c *PowerCache) retain(p, k int) bool {
	if len(c.powers) >= powRetainCap {
		return false
	}
	return p == k || len(c.powers) < powDenseRetain || p%powStride == 0
}

// PowLog returns the element-wise log of base^k (zero entries mapping to
// -Inf), memoized alongside the powers. Each element is transformed
// independently from the canonical A^k, so the result is deterministic
// however many sessions share the cache.
func (c *PowerCache) PowLog(k int) *Matrix {
	if k < 0 {
		panic("mathx: PowerCache.PowLog requires k >= 0")
	}
	c.mu.RLock()
	lm, ok := c.logs[k]
	c.mu.RUnlock()
	if ok {
		return lm
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if lm, ok := c.logs[k]; ok {
		return lm
	}
	a := c.powLocked(k)
	lm = NewMatrix(a.Rows, a.Cols)
	for idx, v := range a.Data {
		if v <= 0 {
			lm.Data[idx] = NegInf
		} else {
			lm.Data[idx] = math.Log(v)
		}
	}
	if c.logs == nil {
		c.logs = make(map[int]*Matrix)
	}
	if len(c.logs) < powRetainCap {
		c.logs[k] = lm
	}
	return lm
}

// Retained reports how many powers (and log powers) the cache currently
// pins — the quantity the retention cap bounds.
func (c *PowerCache) Retained() (powers, logs int) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.powers), len(c.logs)
}

// Base returns a copy of the cached base matrix.
func (c *PowerCache) Base() *Matrix { return c.base.Clone() }

// sharedPowers is the process-wide transition-power registry: fleets of
// sessions whose models use identical transition matrices (equal
// capacity grids) share one PowerCache instead of recomputing A^Δn per
// session. Keyed by Matrix.Fingerprint with an equality check against
// collisions; bounded so adversarial matrix diversity cannot grow it
// without limit.
var sharedPowers = struct {
	mu     sync.Mutex
	caches map[uint64]*PowerCache
	stats  SharedPowersStats
}{caches: make(map[uint64]*PowerCache)}

// sharedPowersCap bounds the registry. Grids in a fleet are few (one
// per distinct MaxMbps after quantization); past the cap new matrices
// get private caches and are still counted as misses.
const sharedPowersCap = 256

// SharedPowersStats breaks SharedPowers lookup traffic down by cause.
// A "miss" is any lookup that did not find a reusable cache, and the
// three causes behave very differently: cold misses are the expected
// one-per-grid warmup, collision misses mean two distinct matrices hash
// to one fingerprint (the colliding matrix gets a private cache on
// every lookup), and capacity misses mean the registry is full and the
// grid diversity exceeds sharedPowersCap (also a private cache per
// lookup). A telemetry gauge built from the sum alone cannot tell a
// healthy warmup from a permanently-thrashing fleet.
type SharedPowersStats struct {
	Hits uint64
	// ColdMisses counts first-sight matrices that were inserted into
	// the registry.
	ColdMisses uint64
	// CollisionMisses counts lookups that found a fingerprint match
	// with a different matrix (FNV-1a collision); such matrices are
	// never inserted and miss on every lookup.
	CollisionMisses uint64
	// CapacityMisses counts lookups rejected because the registry held
	// sharedPowersCap entries; they also miss on every lookup.
	CapacityMisses uint64
}

// Misses returns the total miss count across all three causes — the
// value the legacy two-counter SharedPowerStats reports.
func (s SharedPowersStats) Misses() uint64 {
	return s.ColdMisses + s.CollisionMisses + s.CapacityMisses
}

// Sub returns s minus t, counter by counter — for computing per-run
// deltas of the process-wide totals.
func (s SharedPowersStats) Sub(t SharedPowersStats) SharedPowersStats {
	return SharedPowersStats{
		Hits:            s.Hits - t.Hits,
		ColdMisses:      s.ColdMisses - t.ColdMisses,
		CollisionMisses: s.CollisionMisses - t.CollisionMisses,
		CapacityMisses:  s.CapacityMisses - t.CapacityMisses,
	}
}

// SharedPowers returns a process-wide PowerCache for base: sessions
// with bit-identical matrices get the same cache, so transition powers
// are computed once per grid rather than once per session. On a
// fingerprint collision (hash equal, matrix different) or when the
// registry is full, a private cache is returned.
func SharedPowers(base *Matrix) *PowerCache {
	fp := base.Fingerprint()
	sharedPowers.mu.Lock()
	defer sharedPowers.mu.Unlock()
	existing, collided := sharedPowers.caches[fp]
	if collided && existing.base.Equal(base) {
		sharedPowers.stats.Hits++
		return existing
	}
	c := NewPowerCache(base)
	switch {
	case collided:
		sharedPowers.stats.CollisionMisses++
	case len(sharedPowers.caches) >= sharedPowersCap:
		sharedPowers.stats.CapacityMisses++
	default:
		sharedPowers.stats.ColdMisses++
		sharedPowers.caches[fp] = c
	}
	return c
}

// SharedPowerStats returns the cumulative hit/miss counts of
// SharedPowers lookups since process start. The miss count folds cold,
// collision and capacity misses together; SharedPowersDetail splits
// them.
func SharedPowerStats() (hits, misses uint64) {
	d := SharedPowersDetail()
	return d.Hits, d.Misses()
}

// SharedPowersDetail returns the cumulative per-cause lookup counters
// of the shared power registry since process start.
func SharedPowersDetail() SharedPowersStats {
	sharedPowers.mu.Lock()
	defer sharedPowers.mu.Unlock()
	return sharedPowers.stats
}
