package telemetry

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestSummaryFlattensSnapshot(t *testing.T) {
	snap := Snapshot{
		Counters: map[string]uint64{"veritas_engine_sessions_completed_total": 12},
		Gauges:   map[string]float64{"veritas_store_segment_bytes": 4096},
		Histograms: map[string]HistogramSnapshot{
			"veritas_engine_stage_seconds": {Count: 3, Sum: 0.75, Bounds: []float64{1}, Counts: []uint64{3, 0}},
		},
	}
	sum := snap.Summary()
	want := map[string]float64{
		"veritas_engine_sessions_completed_total": 12,
		"veritas_store_segment_bytes":             4096,
		"veritas_engine_stage_seconds_count":      3,
		"veritas_engine_stage_seconds_sum":        0.75,
	}
	if len(sum) != len(want) {
		t.Fatalf("summary has %d keys, want %d: %v", len(sum), len(want), sum)
	}
	for k, v := range want {
		if sum[k] != v {
			t.Errorf("summary[%q] = %v, want %v", k, sum[k], v)
		}
	}
}

func TestSummaryMarshalsToOneDeterministicLine(t *testing.T) {
	snap := Snapshot{
		Counters: map[string]uint64{"b_total": 2, "a_total": 1},
		Histograms: map[string]HistogramSnapshot{
			"lat_seconds": {Count: 1, Sum: 0.5},
		},
	}
	b1, err := json.Marshal(snap.Summary())
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := json.Marshal(snap.Summary())
	if string(b1) != string(b2) {
		t.Errorf("summary marshal not deterministic:\n%s\n%s", b1, b2)
	}
	if strings.Contains(string(b1), "\n") {
		t.Errorf("summary marshals across lines: %q", b1)
	}
	if string(b1) != `{"a_total":1,"b_total":2,"lat_seconds_count":1,"lat_seconds_sum":0.5}` {
		t.Errorf("summary line = %s", b1)
	}
}

func TestSummaryEmptySnapshot(t *testing.T) {
	if sum := (Snapshot{}).Summary(); len(sum) != 0 {
		t.Errorf("empty snapshot summary = %v, want empty", sum)
	}
}
