package telemetry

// Summary flattens a snapshot into one compact map suitable for a
// single-line JSON digest (what cmd/fleet and cmd/serve flush to
// stderr on clean shutdown): counters and gauges keep their names and
// values, histograms flatten to "<name>_count" and "<name>_sum" —
// enough to reconstruct throughput and mean latency without shipping
// every bucket. encoding/json sorts map keys, so the marshaled line is
// deterministic for a given snapshot.
func (s Snapshot) Summary() map[string]float64 {
	out := make(map[string]float64, len(s.Counters)+len(s.Gauges)+2*len(s.Histograms))
	for k, v := range s.Counters {
		out[k] = float64(v)
	}
	for k, v := range s.Gauges {
		out[k] = v
	}
	for k, h := range s.Histograms {
		out[k+"_count"] = float64(h.Count)
		out[k+"_sum"] = h.Sum
	}
	return out
}
