package telemetry

import (
	"strings"
	"testing"
	"time"
)

// TestWritePrometheusGolden pins the exposition format byte for byte:
// sorted names, one # TYPE per base name shared across label variants,
// cumulative buckets with a +Inf edge, and label splicing for the
// histogram's le label.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter(`veritas_engine_sessions_completed_total`).Add(12)
	r.Counter(`veritas_dispatch_worker_exits_total{shard="0",outcome="ok"}`).Inc()
	r.Counter(`veritas_dispatch_worker_exits_total{shard="1",outcome="crash"}`).Inc()
	r.Gauge(`veritas_store_segments`).Set(3)
	h := r.HistogramBuckets(`veritas_engine_stage_seconds{stage="abduct"}`, []float64{0.01, 0.1})
	h.Observe(5 * time.Millisecond)
	h.Observe(50 * time.Millisecond)
	h.Observe(500 * time.Millisecond)
	plain := r.HistogramBuckets(`veritas_store_fsync_seconds`, []float64{0.001})
	plain.Observe(500 * time.Microsecond)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE veritas_dispatch_worker_exits_total counter
veritas_dispatch_worker_exits_total{shard="0",outcome="ok"} 1
veritas_dispatch_worker_exits_total{shard="1",outcome="crash"} 1
# TYPE veritas_engine_sessions_completed_total counter
veritas_engine_sessions_completed_total 12
# TYPE veritas_store_segments gauge
veritas_store_segments 3
# TYPE veritas_engine_stage_seconds histogram
veritas_engine_stage_seconds_bucket{stage="abduct",le="0.01"} 1
veritas_engine_stage_seconds_bucket{stage="abduct",le="0.1"} 2
veritas_engine_stage_seconds_bucket{stage="abduct",le="+Inf"} 3
veritas_engine_stage_seconds_sum{stage="abduct"} 0.555
veritas_engine_stage_seconds_count{stage="abduct"} 3
# TYPE veritas_store_fsync_seconds histogram
veritas_store_fsync_seconds_bucket{le="0.001"} 1
veritas_store_fsync_seconds_bucket{le="+Inf"} 1
veritas_store_fsync_seconds_sum 0.0005
veritas_store_fsync_seconds_count 1
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestSplitName(t *testing.T) {
	cases := []struct{ in, base, labels string }{
		{"plain_total", "plain_total", ""},
		{`x_total{a="b"}`, "x_total", `a="b",`},
		{`x_total{a="b",c="d"}`, "x_total", `a="b",c="d",`},
		{"empty{}", "empty", ""},
	}
	for _, c := range cases {
		base, labels := splitName(c.in)
		if base != c.base || labels != c.labels {
			t.Errorf("splitName(%q) = (%q, %q), want (%q, %q)", c.in, base, labels, c.base, c.labels)
		}
	}
}
