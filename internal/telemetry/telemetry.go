// Package telemetry is the observability plane of the Veritas fleet: a
// dependency-free metrics registry — counters, gauges, and bucketed
// latency histograms — cheap enough to leave on in the hot path of
// every layer (engine workers, the store's append path, the serving
// layer, the dispatch supervisor).
//
// Design constraints, in order:
//
//   - Recording must cost nanoseconds and never take a lock: counters
//     and histogram buckets are single atomic adds; the registry lock
//     is taken only at metric *creation* (once per name, at layer
//     startup) and at snapshot/exposition time.
//   - Telemetry must never perturb results. Nothing here feeds back
//     into computation — determinism tests pin engine reports
//     byte-identical with telemetry on and off — and every type is
//     nil-safe: a nil *Registry hands out nil metrics whose methods
//     are no-ops, so instrumented code needs no "is telemetry on?"
//     branches.
//   - Snapshots must cross process boundaries. A Snapshot is plain
//     JSON (dispatch workers stream theirs up the NDJSON event
//     protocol) and snapshots merge additively, so a supervisor can
//     hold one fleet-wide view summed over its workers.
//
// Metric names follow the Prometheus convention (`veritas_<layer>_...`,
// counters ending in `_total`, durations in `_seconds`) and may carry a
// label set inline: Counter(`x_total{stage="abduct"}`) registers one
// variant per label value, and the exposition writer emits the shared
// `# TYPE` header once per base name. The full string is the registry
// key; nothing parses label values outside exposition.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero value is
// ready to use; a nil Counter is a no-op.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. Values are float64 so
// gauges can carry ratios and byte counts alike; storage is the float's
// bit pattern in an atomic word. A nil Gauge is a no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by d (a compare-and-swap loop; gauges are not
// hot-path metrics).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// DefBuckets are the default latency bucket upper bounds, in seconds:
// sub-millisecond stage work through minute-scale sessions. An implicit
// +Inf bucket catches everything above the last bound.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// Histogram is a bucketed latency histogram: per-bucket atomic
// counters, a total count, and a sum held in integer nanoseconds so the
// hot path is three atomic adds and no compare-and-swap. A nil
// Histogram is a no-op.
type Histogram struct {
	bounds  []float64 // finite upper bounds, seconds, ascending
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumNs   atomic.Int64
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, buckets: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	secs := d.Seconds()
	// Buckets are few (≤ ~20); a linear scan beats binary search on
	// branch prediction and is already ~ns. Bounds are inclusive upper
	// edges, matching the Prometheus `le` convention.
	i := 0
	for i < len(h.bounds) && secs > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumNs.Add(int64(d))
}

// Since records the elapsed time from t0 — the stage-timer form:
//
//	defer h.Since(time.Now())  // or t0 := time.Now(); ...; h.Since(t0)
func (h *Histogram) Since(t0 time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(t0))
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// snapshot captures the histogram's current state.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:  h.count.Load(),
		Sum:    float64(h.sumNs.Load()) / 1e9,
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.buckets)),
	}
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
	}
	return s
}

// FuncKind says how a callback metric is exposed.
type FuncKind int

const (
	// CounterFunc exposes the callback as a monotonic counter —
	// the fold-in path for counters that already live elsewhere
	// (the serving layer's row cache, the shared power cache).
	CounterFunc FuncKind = iota
	// GaugeFunc exposes the callback as a gauge.
	GaugeFunc
)

type funcMetric struct {
	kind FuncKind
	fn   func() float64
}

// Registry is a named collection of metrics. Methods are safe for
// concurrent use; metric handles, once obtained, record lock-free. A
// nil *Registry is fully usable and hands out nil (no-op) metrics, so
// "telemetry off" is spelled by threading a nil registry through.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	funcs    map[string]funcMetric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		funcs:    make(map[string]funcMetric),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram with the default latency
// buckets, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	return r.HistogramBuckets(name, DefBuckets)
}

// HistogramBuckets returns the named histogram, creating it with the
// given ascending finite upper bounds (seconds) on first use. Bounds
// are fixed at creation; later calls return the existing histogram
// whatever bounds they pass.
func (r *Registry) HistogramBuckets(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// RegisterFunc registers (or replaces) a callback metric, evaluated at
// snapshot time — the fold-in path for counters maintained elsewhere.
// fn must be safe for concurrent use.
func (r *Registry) RegisterFunc(name string, kind FuncKind, fn func() float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[name] = funcMetric{kind: kind, fn: fn}
}

// Snapshot captures every metric's current value, evaluating callback
// metrics. The snapshot is plain data: JSON-serializable, mergeable,
// and renderable as Prometheus text.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	funcs := make(map[string]funcMetric, len(r.funcs))
	for k, v := range r.funcs {
		funcs[k] = v
	}
	r.mu.Unlock()

	// Callbacks run outside the registry lock: they may take their
	// owner's locks (a store's, a cache's), and holding ours across
	// them invites lock-order surprises.
	s := Snapshot{}
	if len(counters)+len(funcs) > 0 {
		s.Counters = make(map[string]uint64)
	}
	if len(gauges) > 0 {
		s.Gauges = make(map[string]float64)
	}
	if len(hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot)
	}
	for k, c := range counters {
		s.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		if s.Gauges == nil {
			s.Gauges = make(map[string]float64)
		}
		s.Gauges[k] = g.Value()
	}
	for k, h := range hists {
		s.Histograms[k] = h.snapshot()
	}
	for k, f := range funcs {
		v := f.fn()
		switch f.kind {
		case CounterFunc:
			s.Counters[k] = uint64(v)
		case GaugeFunc:
			if s.Gauges == nil {
				s.Gauges = make(map[string]float64)
			}
			s.Gauges[k] = v
		}
	}
	if len(s.Counters) == 0 {
		s.Counters = nil
	}
	return s
}

// HistogramSnapshot is one histogram's captured state. Counts is
// per-bucket (not cumulative) and one longer than Bounds: the final
// slot is the implicit +Inf bucket.
type HistogramSnapshot struct {
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"` // seconds
	Bounds []float64 `json:"bounds,omitempty"`
	Counts []uint64  `json:"counts,omitempty"`
}

// Snapshot is a point-in-time capture of a registry — plain data that
// serializes to JSON (the dispatch workers' NDJSON telemetry lines) and
// merges additively (the supervisor's fleet view).
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Merge returns the additive union of s and o: counters, gauges and
// histogram buckets sum; a histogram present in both merges per bucket
// when the bounds agree and keeps s's buckets (summing count and sum)
// when they don't. Merging is how a dispatch supervisor folds worker
// snapshots into one fleet view, so "sum" is the right combination for
// every metric the workers emit — sessions, appends, cache traffic.
func (s Snapshot) Merge(o Snapshot) Snapshot {
	out := Snapshot{}
	if len(s.Counters)+len(o.Counters) > 0 {
		out.Counters = make(map[string]uint64, len(s.Counters)+len(o.Counters))
		for k, v := range s.Counters {
			out.Counters[k] = v
		}
		for k, v := range o.Counters {
			out.Counters[k] += v
		}
	}
	if len(s.Gauges)+len(o.Gauges) > 0 {
		out.Gauges = make(map[string]float64, len(s.Gauges)+len(o.Gauges))
		for k, v := range s.Gauges {
			out.Gauges[k] = v
		}
		for k, v := range o.Gauges {
			out.Gauges[k] += v
		}
	}
	if len(s.Histograms)+len(o.Histograms) > 0 {
		out.Histograms = make(map[string]HistogramSnapshot, len(s.Histograms)+len(o.Histograms))
		for k, v := range s.Histograms {
			out.Histograms[k] = cloneHist(v)
		}
		for k, v := range o.Histograms {
			have, ok := out.Histograms[k]
			if !ok {
				out.Histograms[k] = cloneHist(v)
				continue
			}
			have.Count += v.Count
			have.Sum += v.Sum
			if boundsEqual(have.Bounds, v.Bounds) && len(have.Counts) == len(v.Counts) {
				for i := range v.Counts {
					have.Counts[i] += v.Counts[i]
				}
			}
			out.Histograms[k] = have
		}
	}
	return out
}

// Relabel returns a copy of s with label key=value appended to every
// metric name. It is how a fleet dispatcher keeps per-agent provenance:
// an agent's streamed snapshot is relabeled with agent="<id>" before it
// joins the merged fleet view, so identically named series from
// different agents stay distinct columns instead of summing into one.
// A metric that already carries the key keeps its existing value (the
// nearer attribution wins); names with no label set gain one.
func (s Snapshot) Relabel(key, value string) Snapshot {
	out := Snapshot{}
	if len(s.Counters) > 0 {
		out.Counters = make(map[string]uint64, len(s.Counters))
		for k, v := range s.Counters {
			out.Counters[relabelName(k, key, value)] = v
		}
	}
	if len(s.Gauges) > 0 {
		out.Gauges = make(map[string]float64, len(s.Gauges))
		for k, v := range s.Gauges {
			out.Gauges[relabelName(k, key, value)] = v
		}
	}
	if len(s.Histograms) > 0 {
		out.Histograms = make(map[string]HistogramSnapshot, len(s.Histograms))
		for k, v := range s.Histograms {
			out.Histograms[relabelName(k, key, value)] = cloneHist(v)
		}
	}
	return out
}

// relabelName splices label key=value into a metric name that may or
// may not already carry a {...} label set.
func relabelName(name, key, value string) string {
	quoted := fmt.Sprintf("%s=%q", key, value)
	i := strings.IndexByte(name, '{')
	if i < 0 || !strings.HasSuffix(name, "}") {
		return name + "{" + quoted + "}"
	}
	if strings.Contains(name[i:], key+"=") {
		return name
	}
	return name[:len(name)-1] + "," + quoted + "}"
}

func cloneHist(h HistogramSnapshot) HistogramSnapshot {
	h.Bounds = append([]float64(nil), h.Bounds...)
	h.Counts = append([]uint64(nil), h.Counts...)
	return h
}

func boundsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sortedKeys returns m's keys in sorted order (exposition and tests
// need deterministic output).
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
