package telemetry

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus renders a point-in-time capture of the registry in
// the Prometheus text exposition format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.Snapshot().WritePrometheus(w)
}

// WritePrometheus renders the snapshot as Prometheus text. Output is
// deterministic: metrics sort by full name, the `# TYPE` header is
// emitted once per base name (label variants of one metric share it),
// and histogram buckets are cumulative with an explicit `+Inf` edge,
// exactly as scrapers expect.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	typed := make(map[string]bool)
	writeType := func(base, kind string) {
		if !typed[base] {
			typed[base] = true
			fmt.Fprintf(&b, "# TYPE %s %s\n", base, kind)
		}
	}
	for _, name := range sortedKeys(s.Counters) {
		base, _ := splitName(name)
		writeType(base, "counter")
		fmt.Fprintf(&b, "%s %d\n", name, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		base, _ := splitName(name)
		writeType(base, "gauge")
		fmt.Fprintf(&b, "%s %s\n", name, formatFloat(s.Gauges[name]))
	}
	for _, name := range sortedKeys(s.Histograms) {
		base, labels := splitName(name)
		writeType(base, "histogram")
		h := s.Histograms[name]
		cum := uint64(0)
		for i, n := range h.Counts {
			cum += n
			le := "+Inf"
			if i < len(h.Bounds) {
				le = formatFloat(h.Bounds[i])
			}
			fmt.Fprintf(&b, "%s_bucket{%sle=%q} %d\n", base, labels, le, cum)
		}
		if len(h.Counts) == 0 {
			// A histogram merged from mismatched bounds may carry only
			// count and sum; still expose the +Inf edge so the series
			// stays a valid histogram.
			fmt.Fprintf(&b, "%s_bucket{%sle=\"+Inf\"} %d\n", base, labels, h.Count)
		}
		if labels == "" {
			fmt.Fprintf(&b, "%s_sum %s\n", base, formatFloat(h.Sum))
			fmt.Fprintf(&b, "%s_count %d\n", base, h.Count)
		} else {
			fmt.Fprintf(&b, "%s_sum{%s} %s\n", base, strings.TrimSuffix(labels, ","), formatFloat(h.Sum))
			fmt.Fprintf(&b, "%s_count{%s} %d\n", base, strings.TrimSuffix(labels, ","), h.Count)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// splitName splits a registry key into its base metric name and its
// label body. The label body is returned ready for splicing before
// another label: either empty or `k="v",` with a trailing comma.
func splitName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	base = name[:i]
	body := strings.TrimSuffix(name[i+1:], "}")
	if body == "" {
		return base, ""
	}
	return base, body + ","
}

// formatFloat renders a float the way Prometheus text expects: shortest
// round-trip representation, no exponent for typical magnitudes.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
