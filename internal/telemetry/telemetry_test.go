package telemetry

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total")
	g := r.Gauge("x")
	h := r.Histogram("x_seconds")
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil metrics")
	}
	// Every method must be a safe no-op on nil receivers.
	c.Add(3)
	c.Inc()
	g.Set(1)
	g.Add(2)
	h.Observe(time.Second)
	h.Since(time.Time{})
	r.RegisterFunc("f", CounterFunc, func() float64 { return 1 })
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil metrics must read zero")
	}
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", snap)
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("sessions_total")
	c.Add(2)
	c.Inc()
	if c.Value() != 3 {
		t.Errorf("counter = %d, want 3", c.Value())
	}
	if r.Counter("sessions_total") != c {
		t.Error("second lookup must return the same counter")
	}
	g := r.Gauge("backlog")
	g.Set(10)
	g.Add(-2.5)
	if g.Value() != 7.5 {
		t.Errorf("gauge = %v, want 7.5", g.Value())
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramBuckets("stage_seconds", []float64{0.001, 0.01, 0.1})
	// Bounds are inclusive upper edges (Prometheus `le`): exactly 1ms
	// lands in the first bucket, just over it in the second, and
	// anything past the last bound in the implicit +Inf slot.
	h.Observe(1 * time.Millisecond)
	h.Observe(1*time.Millisecond + 1)
	h.Observe(100 * time.Millisecond)
	h.Observe(200 * time.Millisecond)
	s := h.snapshot()
	want := []uint64{1, 1, 1, 1}
	if len(s.Counts) != len(want) {
		t.Fatalf("bucket count = %d, want %d", len(s.Counts), len(want))
	}
	for i, n := range want {
		if s.Counts[i] != n {
			t.Errorf("bucket[%d] = %d, want %d (counts %v)", i, s.Counts[i], n, s.Counts)
		}
	}
	if s.Count != 4 {
		t.Errorf("count = %d, want 4", s.Count)
	}
	wantSum := (0.001 + 0.001 + 0.1 + 0.2) + 1e-9 // the +1ns observation
	if diff := s.Sum - wantSum; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("sum = %v, want %v", s.Sum, wantSum)
	}
}

func TestRegisterFunc(t *testing.T) {
	r := NewRegistry()
	hits := 41.0
	r.RegisterFunc("cache_hits_total", CounterFunc, func() float64 { hits++; return hits })
	r.RegisterFunc("fill_ratio", GaugeFunc, func() float64 { return 0.5 })
	s := r.Snapshot()
	if s.Counters["cache_hits_total"] != 42 {
		t.Errorf("callback counter = %d, want 42", s.Counters["cache_hits_total"])
	}
	if s.Gauges["fill_ratio"] != 0.5 {
		t.Errorf("callback gauge = %v, want 0.5", s.Gauges["fill_ratio"])
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter(`appends_total{shard="1"}`).Add(7)
	r.Gauge("segments").Set(3)
	r.Histogram("fsync_seconds").Observe(2 * time.Millisecond)
	b, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters[`appends_total{shard="1"}`] != 7 || back.Gauges["segments"] != 3 {
		t.Errorf("round trip lost data: %+v", back)
	}
	if h := back.Histograms["fsync_seconds"]; h.Count != 1 || len(h.Counts) != len(DefBuckets)+1 {
		t.Errorf("histogram round trip lost data: %+v", h)
	}
}

func TestSnapshotMerge(t *testing.T) {
	mk := func(counts []uint64) HistogramSnapshot {
		return HistogramSnapshot{
			Count: counts[0] + counts[1] + counts[2], Sum: 1,
			Bounds: []float64{0.1, 1}, Counts: counts,
		}
	}
	a := Snapshot{
		Counters:   map[string]uint64{"x_total": 1, "only_a_total": 5},
		Gauges:     map[string]float64{"done": 2},
		Histograms: map[string]HistogramSnapshot{"h": mk([]uint64{1, 0, 2})},
	}
	b := Snapshot{
		Counters:   map[string]uint64{"x_total": 10},
		Gauges:     map[string]float64{"done": 3},
		Histograms: map[string]HistogramSnapshot{"h": mk([]uint64{0, 4, 0})},
	}
	m := a.Merge(b)
	if m.Counters["x_total"] != 11 || m.Counters["only_a_total"] != 5 {
		t.Errorf("counters merged wrong: %v", m.Counters)
	}
	if m.Gauges["done"] != 5 {
		t.Errorf("gauges merged wrong: %v", m.Gauges)
	}
	h := m.Histograms["h"]
	if h.Count != 7 || h.Sum != 2 {
		t.Errorf("histogram count/sum merged wrong: %+v", h)
	}
	for i, want := range []uint64{1, 4, 2} {
		if h.Counts[i] != want {
			t.Errorf("bucket[%d] = %d, want %d", i, h.Counts[i], want)
		}
	}
	// Merge must not alias the inputs' slices.
	h.Counts[0] = 99
	if a.Histograms["h"].Counts[0] != 1 {
		t.Error("merge aliased an input's bucket slice")
	}
	// Mismatched bounds: count and sum still sum; buckets stay a's.
	c := Snapshot{Histograms: map[string]HistogramSnapshot{
		"h": {Count: 1, Sum: 9, Bounds: []float64{0.5}, Counts: []uint64{1, 0}},
	}}
	hm := a.Merge(c).Histograms["h"]
	if hm.Count != 4 || hm.Sum != 10 || len(hm.Counts) != 3 {
		t.Errorf("mismatched-bounds merge wrong: %+v", hm)
	}
}

// TestConcurrentRecording hammers one registry from many goroutines —
// creation races, recording races, snapshot races — and checks totals.
// Run under -race this is the package's thread-safety proof.
func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("ops_total")
			g := r.Gauge("level")
			h := r.Histogram("lat_seconds")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(time.Duration(i) * time.Microsecond)
				if i%100 == 0 {
					r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counters["ops_total"] != workers*perWorker {
		t.Errorf("counter = %d, want %d", s.Counters["ops_total"], workers*perWorker)
	}
	if s.Gauges["level"] != workers*perWorker {
		t.Errorf("gauge = %v, want %v", s.Gauges["level"], workers*perWorker)
	}
	if h := s.Histograms["lat_seconds"]; h.Count != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", h.Count, workers*perWorker)
	}
}
