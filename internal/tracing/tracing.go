// Package tracing is the per-session lens of the Veritas observability
// plane. Where telemetry answers "how fast is the fleet on average"
// (aggregate histograms), tracing answers "which sessions are slow and
// which pipeline stage inside them stalls": every traced unit of work —
// an engine session, a store append, a served request, a dispatched
// worker's lifetime — becomes a Trace holding timed child Spans with
// attributes (chunk counts, cache hits, byte sizes).
//
// Full tracing at millions of sessions is unaffordable, so the tracer
// **tail-samples**: a trace is built worker-locally (recording a span
// is lock-free — the builder T is owned by one goroutine, the
// per-worker buffer), and only at Finish does the tracer decide, in one
// short critical section, whether the completed trace is notable. It
// keeps the N slowest successful traces plus a bounded ring of every
// errored one; everything else is dropped on the spot, so memory is
// O(N) whatever the corpus size.
//
// Design constraints, shared with the telemetry registry:
//
//   - Nil-safety: a nil *Tracer hands out nil builders whose methods
//     are no-ops, so instrumented code needs no "is tracing on?"
//     branches, and "tracing off" is spelled by threading nil through.
//   - Tracing must never perturb results. Nothing here feeds back into
//     computation — determinism tests pin engine reports byte-identical
//     with tracing on and off.
//   - Traces must cross process boundaries: a Trace is plain JSON
//     (dispatch workers stream their notable sets up the NDJSON event
//     protocol) and sets Merge into one fleet-wide "slowest sessions"
//     view under the same tail-sampling policy.
//
// Notable traces export as Chrome trace-event JSON (chrome.go), loadable
// in Perfetto or chrome://tracing.
package tracing

import (
	"sort"
	"sync"
	"time"
)

// DefaultKeep is the tail sampler's default N: how many of the slowest
// successful traces a tracer retains.
const DefaultKeep = 32

// maxErrored bounds the errored-trace ring: every errored trace is
// notable, but a pathology erroring millions of times must not hold
// millions of traces — the ring keeps the most recent maxErrored.
const maxErrored = 64

// Span is one timed operation inside a trace: a pipeline stage, an arm
// replay, a segment rotation. Offsets are relative to the trace start
// and monotonic-clock derived.
type Span struct {
	Name string `json:"name"`
	// Start is the span's offset from the trace start, in seconds.
	Start float64 `json:"start"`
	// Dur is the span's duration in seconds.
	Dur float64 `json:"dur"`
	// Attrs carry span-scoped context (chunk counts, cache hits, arm
	// names). Values must be JSON-serializable.
	Attrs map[string]any `json:"attrs,omitempty"`
}

// Trace is one completed unit of work: plain data that serializes to
// JSON (the dispatch workers' NDJSON trace lines) and exports as Chrome
// trace events.
type Trace struct {
	// Kind labels the traced unit: "session", "append", "fsync",
	// "request", "worker", "backoff", "fold".
	Kind string `json:"kind"`
	// ID names the unit within its kind: session ID, request path,
	// "shard-2".
	ID string `json:"id"`
	// Shard is the shard index the trace came from, set by dispatch
	// workers so a fleet-wide view keeps provenance.
	Shard int `json:"shard,omitempty"`
	// Agent names the fleet agent the trace came from, stamped by a
	// fleet dispatcher on traces heartbeated over the wire so the merged
	// view says which machine ran what (work stealing can move a shard
	// between agents mid-campaign).
	Agent string `json:"agent,omitempty"`
	// Wall anchors the trace on the wall clock (export timelines align
	// traces from different processes by it); Dur is monotonic-clock
	// elapsed seconds.
	Wall time.Time `json:"wall"`
	Dur  float64   `json:"dur"`
	// Err is the failure message of an errored trace (always retained
	// by the sampler, up to the ring bound).
	Err   string         `json:"err,omitempty"`
	Attrs map[string]any `json:"attrs,omitempty"`
	Spans []Span         `json:"spans,omitempty"`
}

// T builds one in-flight trace. It is owned by a single goroutine (the
// worker running the traced unit) and records spans without locking;
// only Finish touches the tracer. A nil *T is a no-op, so callers never
// branch on "is tracing on?".
type T struct {
	tr   *Tracer
	t0   time.Time
	data Trace
}

// Now returns the span clock: the current time, or the zero time on a
// nil builder so untraced runs pay no clock reads. The zero time is
// never observed — every Span call that could see it is a no-op.
func (t *T) Now() time.Time {
	if t == nil {
		return time.Time{}
	}
	return time.Now()
}

// Span records one completed child span from start (a T.Now value) to
// now. attrs may be nil; ownership transfers to the trace.
func (t *T) Span(name string, start time.Time, attrs map[string]any) {
	if t == nil {
		return
	}
	t.data.Spans = append(t.data.Spans, Span{
		Name:  name,
		Start: start.Sub(t.t0).Seconds(),
		Dur:   time.Since(start).Seconds(),
		Attrs: attrs,
	})
}

// SetAttr attaches one trace-scoped attribute.
func (t *T) SetAttr(key string, v any) {
	if t == nil {
		return
	}
	if t.data.Attrs == nil {
		t.data.Attrs = make(map[string]any)
	}
	t.data.Attrs[key] = v
}

// Finish completes the trace and hands it to the tracer's tail sampler:
// errored traces are always kept (ring-bounded), successful ones only
// if they are among the N slowest seen so far. Finish must be called
// exactly once; the builder must not be used afterwards.
func (t *T) Finish(err error) {
	if t == nil {
		return
	}
	t.data.Dur = time.Since(t.t0).Seconds()
	if err != nil {
		t.data.Err = err.Error()
	}
	t.tr.finish(t.data)
}

// Tracer is a tail-sampling trace collector. Methods are safe for
// concurrent use; a nil *Tracer is fully usable and hands out nil
// (no-op) builders, so "tracing off" is spelled by threading nil
// through, exactly like a nil telemetry registry.
type Tracer struct {
	keep int

	mu sync.Mutex
	// slow holds the retained successful traces sorted ascending by
	// duration, so slot 0 is the eviction candidate.
	slow []Trace
	// errs is the ring of errored traces; errNext is the overwrite
	// cursor once the ring is full.
	errs    []Trace
	errNext int
	// seen counts every finished trace — with the retained sets it makes
	// the sampling rate observable without keeping what was dropped.
	seen uint64
}

// New returns a tracer retaining the keep slowest successful traces
// (DefaultKeep when keep <= 0) plus a bounded ring of errored ones.
func New(keep int) *Tracer {
	if keep <= 0 {
		keep = DefaultKeep
	}
	return &Tracer{keep: keep}
}

// Keep returns the tracer's tail-sample size (DefaultKeep on nil).
func (tr *Tracer) Keep() int {
	if tr == nil {
		return DefaultKeep
	}
	return tr.keep
}

// Start begins a trace of one unit of work. On a nil tracer it returns
// a nil builder, whose methods are all no-ops.
func (tr *Tracer) Start(kind, id string) *T {
	if tr == nil {
		return nil
	}
	now := time.Now()
	return &T{tr: tr, t0: now, data: Trace{Kind: kind, ID: id, Wall: now}}
}

// finish is the tail-sampling decision: one lock, one comparison
// against the current minimum, per completed trace.
func (tr *Tracer) finish(t Trace) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	tr.seen++
	if t.Err != "" {
		if len(tr.errs) < maxErrored {
			tr.errs = append(tr.errs, t)
		} else {
			tr.errs[tr.errNext] = t
			tr.errNext = (tr.errNext + 1) % maxErrored
		}
		return
	}
	if len(tr.slow) >= tr.keep {
		if t.Dur <= tr.slow[0].Dur {
			return // faster than everything retained: sampled out
		}
		copy(tr.slow, tr.slow[1:])
		tr.slow = tr.slow[:len(tr.slow)-1]
	}
	i := sort.Search(len(tr.slow), func(i int) bool { return tr.slow[i].Dur >= t.Dur })
	tr.slow = append(tr.slow, Trace{})
	copy(tr.slow[i+1:], tr.slow[i:])
	tr.slow[i] = t
}

// Stats reports how many traces finished and how many the sampler
// currently retains (both 0 on nil).
func (tr *Tracer) Stats() (seen, kept uint64) {
	if tr == nil {
		return 0, 0
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.seen, uint64(len(tr.slow) + len(tr.errs))
}

// Traces snapshots the notable set: every retained trace, slowest
// first (errored traces sort by duration like the rest, but are always
// present). Nil tracers return nil.
func (tr *Tracer) Traces() []Trace {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	out := make([]Trace, 0, len(tr.slow)+len(tr.errs))
	out = append(out, tr.slow...)
	out = append(out, tr.errs...)
	tr.mu.Unlock()
	sortTraces(out)
	return out
}

// Merge folds several notable sets — a supervisor's own and the sets
// its workers streamed up — into one fleet-wide view under the same
// tail-sampling policy: every errored trace (ring-bounded), plus the
// keep slowest successful ones across all sets, slowest first.
func Merge(keep int, sets ...[]Trace) []Trace {
	if keep <= 0 {
		keep = DefaultKeep
	}
	var ok, errored []Trace
	for _, set := range sets {
		for _, t := range set {
			if t.Err != "" {
				errored = append(errored, t)
			} else {
				ok = append(ok, t)
			}
		}
	}
	sortTraces(ok)
	if len(ok) > keep {
		ok = ok[:keep]
	}
	sortTraces(errored)
	if len(errored) > maxErrored {
		errored = errored[:maxErrored]
	}
	out := append(ok, errored...)
	sortTraces(out)
	return out
}

// sortTraces orders a set slowest-first with a deterministic tie-break,
// so exports and merges are stable.
func sortTraces(ts []Trace) {
	sort.SliceStable(ts, func(i, j int) bool {
		if ts[i].Dur != ts[j].Dur {
			return ts[i].Dur > ts[j].Dur
		}
		if ts[i].Kind != ts[j].Kind {
			return ts[i].Kind < ts[j].Kind
		}
		return ts[i].ID < ts[j].ID
	})
}
