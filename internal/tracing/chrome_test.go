package tracing

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// fixedTraces is the golden-test input: fully synthetic, fixed wall
// clocks, covering both shards, attrs, errors, and zero-duration spans.
func fixedTraces() []Trace {
	wall := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	return []Trace{
		{
			Kind: "session", ID: "lte-04", Shard: 1,
			Wall: wall, Dur: 0.25,
			Attrs: map[string]any{"scenario": "lte", "arms": 2},
			Spans: []Span{
				{Name: "simulate", Start: 0, Dur: 0.05, Attrs: map[string]any{"chunks": 30}},
				{Name: "abduct", Start: 0.05, Dur: 0.15, Attrs: map[string]any{"cacheHits": 12, "cacheMisses": 18}},
				{Name: "replay", Start: 0.2, Dur: 0.05, Attrs: map[string]any{"arm": "bba-120s"}},
			},
		},
		{
			Kind: "worker", ID: "shard-0", Shard: 0,
			Wall: wall.Add(100 * time.Millisecond), Dur: 0.1,
			Err:   "exit status 137",
			Attrs: map[string]any{"attempt": 1},
			Spans: []Span{{Name: "spawn", Start: 0, Dur: 0}},
		},
	}
}

// goldenChrome pins the export byte-for-byte: field order, metadata
// events, timestamp anchoring, and dur always present on ph:"X" events
// (even at 0µs). If this changes, the export format changed — update
// deliberately.
const goldenChrome = `{"traceEvents":[` +
	`{"name":"thread_name","ph":"M","ts":0,"pid":1,"tid":1,"args":{"name":"session lte-04"}},` +
	`{"name":"lte-04","cat":"session","ph":"X","ts":0,"dur":250000,"pid":1,"tid":1,"args":{"arms":2,"scenario":"lte"}},` +
	`{"name":"simulate","cat":"session","ph":"X","ts":0,"dur":50000,"pid":1,"tid":1,"args":{"chunks":30}},` +
	`{"name":"abduct","cat":"session","ph":"X","ts":50000,"dur":150000,"pid":1,"tid":1,"args":{"cacheHits":12,"cacheMisses":18}},` +
	`{"name":"replay","cat":"session","ph":"X","ts":200000,"dur":50000,"pid":1,"tid":1,"args":{"arm":"bba-120s"}},` +
	`{"name":"thread_name","ph":"M","ts":0,"pid":0,"tid":2,"args":{"name":"worker shard-0"}},` +
	`{"name":"shard-0","cat":"worker","ph":"X","ts":100000,"dur":100000,"pid":0,"tid":2,"args":{"attempt":1,"err":"exit status 137"}},` +
	`{"name":"spawn","cat":"worker","ph":"X","ts":100000,"dur":0,"pid":0,"tid":2}` +
	`],"displayTimeUnit":"ms"}` + "\n"

func TestChromeExportGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, fixedTraces()); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != goldenChrome {
		t.Fatalf("chrome export drifted from golden.\n got: %s\nwant: %s", got, goldenChrome)
	}
}

func TestChromeExportIsValidTraceEventJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, fixedTraces()); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("export is not valid JSON: %s", buf.String())
	}
	var file struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   int64          `json:"ts"`
			Dur  *int64         `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatal(err)
	}
	if len(file.TraceEvents) == 0 {
		t.Fatal("no events")
	}
	// Every event must be ph:"X" (complete, with dur) or ph:"M"
	// (metadata); X spans must nest inside their trace's X event.
	type key struct{ pid, tid int }
	outer := map[key][2]int64{}
	for _, ev := range file.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name != "thread_name" {
				t.Fatalf("unexpected metadata event %q", ev.Name)
			}
		case "X":
			if ev.Dur == nil {
				t.Fatalf("ph:X event %q missing dur", ev.Name)
			}
			k := key{ev.Pid, ev.Tid}
			if span, seen := outer[k]; !seen {
				outer[k] = [2]int64{ev.Ts, ev.Ts + *ev.Dur}
			} else if ev.Ts < span[0] || ev.Ts+*ev.Dur > span[1] {
				t.Fatalf("span %q [%d,%d] escapes trace window [%d,%d]",
					ev.Name, ev.Ts, ev.Ts+*ev.Dur, span[0], span[1])
			}
		default:
			t.Fatalf("unexpected ph %q", ev.Ph)
		}
	}
}

func TestChromeExportEmptyAndNil(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, nil); err != nil {
		t.Fatal(err)
	}
	want := `{"traceEvents":[],"displayTimeUnit":"ms"}` + "\n"
	if buf.String() != want {
		t.Fatalf("empty export = %s, want %s", buf.String(), want)
	}
	buf.Reset()
	var tr *Tracer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != want {
		t.Fatalf("nil tracer export = %s, want %s", buf.String(), want)
	}
}

func TestChromeExportDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := WriteChrome(&a, fixedTraces()); err != nil {
		t.Fatal(err)
	}
	if err := WriteChrome(&b, fixedTraces()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two exports of the same set differ")
	}
	if strings.Count(a.String(), "\n") != 1 {
		t.Fatalf("export should be a single JSON line, got %q", a.String())
	}
}
