package tracing

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// finishWith pushes a synthetic trace with a fixed duration through the
// sampler, bypassing the clock.
func finishWith(tr *Tracer, kind, id string, dur float64, err string) {
	tr.finish(Trace{Kind: kind, ID: id, Dur: dur, Err: err})
}

func durs(ts []Trace) []float64 {
	out := make([]float64, len(ts))
	for i, t := range ts {
		out[i] = t.Dur
	}
	return out
}

func TestTailSamplingKeepsSlowest(t *testing.T) {
	tr := New(3)
	for i := 1; i <= 10; i++ {
		finishWith(tr, "session", fmt.Sprintf("s-%d", i), float64(i), "")
	}
	got := tr.Traces()
	if len(got) != 3 {
		t.Fatalf("kept %d traces, want 3: %v", len(got), durs(got))
	}
	want := []float64{10, 9, 8}
	for i, d := range want {
		if got[i].Dur != d {
			t.Fatalf("slot %d: dur %v, want %v (all: %v)", i, got[i].Dur, d, durs(got))
		}
	}
	seen, kept := tr.Stats()
	if seen != 10 || kept != 3 {
		t.Fatalf("stats seen=%d kept=%d, want 10/3", seen, kept)
	}
}

func TestTailSamplingInterleavedEviction(t *testing.T) {
	tr := New(2)
	for _, d := range []float64{5, 1, 7, 3, 9, 2} {
		finishWith(tr, "session", fmt.Sprintf("s-%v", d), d, "")
	}
	got := durs(tr.Traces())
	if len(got) != 2 || got[0] != 9 || got[1] != 7 {
		t.Fatalf("kept %v, want [9 7]", got)
	}
}

func TestErroredTracesAlwaysKept(t *testing.T) {
	tr := New(2)
	for i := 1; i <= 5; i++ {
		finishWith(tr, "session", fmt.Sprintf("ok-%d", i), float64(i), "")
	}
	finishWith(tr, "session", "bad", 0.001, "boom")
	got := tr.Traces()
	if len(got) != 3 {
		t.Fatalf("kept %d traces, want 2 slow + 1 errored: %+v", len(got), got)
	}
	var found bool
	for _, tc := range got {
		if tc.Err == "boom" {
			found = true
		}
	}
	if !found {
		t.Fatalf("errored trace missing from %+v", got)
	}
}

func TestErroredRingBounded(t *testing.T) {
	tr := New(2)
	for i := 0; i < maxErrored+10; i++ {
		finishWith(tr, "session", fmt.Sprintf("bad-%d", i), 1, "err")
	}
	got := tr.Traces()
	if len(got) != maxErrored {
		t.Fatalf("errored ring holds %d, want %d", len(got), maxErrored)
	}
	// The ring overwrites oldest-first: bad-0..bad-9 must be gone.
	for _, tc := range got {
		if tc.ID == "bad-0" {
			t.Fatalf("oldest errored trace not evicted: %+v", tc)
		}
	}
}

func TestBuilderRecordsSpansAndAttrs(t *testing.T) {
	tr := New(4)
	b := tr.Start("session", "s-1")
	s0 := b.Now()
	time.Sleep(time.Millisecond)
	b.Span("simulate", s0, map[string]any{"chunks": 12})
	b.SetAttr("scenario", "lte")
	b.Finish(nil)

	got := tr.Traces()
	if len(got) != 1 {
		t.Fatalf("kept %d traces, want 1", len(got))
	}
	tc := got[0]
	if tc.Kind != "session" || tc.ID != "s-1" {
		t.Fatalf("identity = %s/%s", tc.Kind, tc.ID)
	}
	if tc.Dur <= 0 {
		t.Fatalf("trace duration %v, want > 0", tc.Dur)
	}
	if len(tc.Spans) != 1 || tc.Spans[0].Name != "simulate" {
		t.Fatalf("spans = %+v", tc.Spans)
	}
	sp := tc.Spans[0]
	if sp.Dur <= 0 || sp.Start < 0 || sp.Start+sp.Dur > tc.Dur+0.01 {
		t.Fatalf("span timing start=%v dur=%v trace dur=%v", sp.Start, sp.Dur, tc.Dur)
	}
	if sp.Attrs["chunks"] != 12 {
		t.Fatalf("span attrs = %v", sp.Attrs)
	}
	if tc.Attrs["scenario"] != "lte" {
		t.Fatalf("trace attrs = %v", tc.Attrs)
	}
}

func TestFinishWithError(t *testing.T) {
	tr := New(1)
	b := tr.Start("worker", "shard-0")
	b.Finish(errors.New("exit status 137"))
	got := tr.Traces()
	if len(got) != 1 || got[0].Err != "exit status 137" {
		t.Fatalf("got %+v", got)
	}
}

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	b := tr.Start("session", "s")
	if b != nil {
		t.Fatalf("nil tracer handed out non-nil builder")
	}
	// All builder methods must be callable on nil.
	if !b.Now().IsZero() {
		t.Fatalf("nil builder Now() not zero")
	}
	b.Span("x", time.Time{}, nil)
	b.SetAttr("k", 1)
	b.Finish(errors.New("ignored"))
	if got := tr.Traces(); got != nil {
		t.Fatalf("nil tracer Traces() = %v, want nil", got)
	}
	if seen, kept := tr.Stats(); seen != 0 || kept != 0 {
		t.Fatalf("nil tracer stats %d/%d", seen, kept)
	}
	if tr.Keep() != DefaultKeep {
		t.Fatalf("nil tracer Keep() = %d", tr.Keep())
	}
}

func TestMergeFleetView(t *testing.T) {
	a := []Trace{
		{Kind: "session", ID: "a1", Shard: 0, Dur: 5},
		{Kind: "session", ID: "a2", Shard: 0, Dur: 1},
	}
	b := []Trace{
		{Kind: "session", ID: "b1", Shard: 1, Dur: 7},
		{Kind: "session", ID: "b2", Shard: 1, Dur: 0.1, Err: "crash"},
	}
	got := Merge(2, a, b)
	// Top 2 successful (7, 5) + the errored one.
	if len(got) != 3 {
		t.Fatalf("merged %d traces, want 3: %+v", len(got), got)
	}
	if got[0].ID != "b1" || got[1].ID != "a1" {
		t.Fatalf("order = %s, %s; want b1, a1", got[0].ID, got[1].ID)
	}
	if got[2].Err != "crash" {
		t.Fatalf("errored trace missing: %+v", got)
	}
}

func TestMergeDeterministicTieBreak(t *testing.T) {
	set := []Trace{
		{Kind: "session", ID: "b", Dur: 1},
		{Kind: "session", ID: "a", Dur: 1},
		{Kind: "append", ID: "z", Dur: 1},
	}
	got := Merge(10, set)
	if got[0].Kind != "append" || got[1].ID != "a" || got[2].ID != "b" {
		t.Fatalf("tie-break order wrong: %+v", got)
	}
}

func TestTraceJSONRoundTrip(t *testing.T) {
	in := Trace{
		Kind: "session", ID: "s-1", Shard: 2,
		Wall: time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC),
		Dur:  1.5, Err: "x",
		Attrs: map[string]any{"scenario": "lte"},
		Spans: []Span{{Name: "simulate", Start: 0.1, Dur: 0.2}},
	}
	raw, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Trace
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Kind != in.Kind || out.ID != in.ID || out.Shard != in.Shard ||
		out.Dur != in.Dur || out.Err != in.Err || !out.Wall.Equal(in.Wall) ||
		len(out.Spans) != 1 || out.Spans[0].Name != in.Spans[0].Name ||
		out.Spans[0].Start != in.Spans[0].Start || out.Spans[0].Dur != in.Spans[0].Dur {
		t.Fatalf("round trip mismatch:\n in=%+v\nout=%+v", in, out)
	}
}

func TestTracerConcurrency(t *testing.T) {
	tr := New(8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				b := tr.Start("session", fmt.Sprintf("w%d-%d", w, i))
				s := b.Now()
				b.Span("stage", s, nil)
				if i%17 == 0 {
					b.Finish(errors.New("flaky"))
				} else {
					b.Finish(nil)
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			tr.Traces()
			tr.Stats()
		}
	}()
	wg.Wait()
	<-done
	seen, kept := tr.Stats()
	if seen != 1600 {
		t.Fatalf("seen %d, want 1600", seen)
	}
	if kept == 0 || kept > seen {
		t.Fatalf("kept %d out of %d", kept, seen)
	}
}
