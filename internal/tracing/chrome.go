package tracing

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"time"
)

// Chrome trace-event export: the notable-trace set serialized in the
// Trace Event Format understood by Perfetto (ui.perfetto.dev) and
// chrome://tracing. Each trace becomes one row ("thread"): a ph:"M"
// thread_name metadata event naming it, a ph:"X" complete event
// spanning the whole trace, and one ph:"X" event per child span.
//
// The output is deterministic for a given trace set: events are emitted
// in trace order (Traces/Merge already sort slowest-first), struct
// fields marshal in declaration order, and attribute maps marshal with
// sorted keys — which is what lets a golden test pin the format.

// chromeEvent is one trace-event line. Field order here is the wire
// field order; Dur is a pointer so ph:"M" metadata events omit it while
// ph:"X" events always carry it, even at 0µs.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  *int64         `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeFile is the top-level JSON object Perfetto loads.
type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome serializes a trace set as Chrome trace-event JSON.
// Timestamps are microseconds relative to the earliest trace's wall
// anchor, so multi-process fleets line up on one timeline; each trace
// gets its own tid (1-based, in set order) under pid = shard.
func WriteChrome(w io.Writer, traces []Trace) error {
	var epoch time.Time
	for _, t := range traces {
		if epoch.IsZero() || t.Wall.Before(epoch) {
			epoch = t.Wall
		}
	}
	file := chromeFile{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	for i, t := range traces {
		tid := i + 1
		ts := t.Wall.Sub(epoch).Microseconds()
		// Traces stamped with a fleet agent carry it in the thread name,
		// so a Perfetto timeline says which machine ran what. Unstamped
		// traces keep the exact pre-fleet name (golden-test pinned).
		name := fmt.Sprintf("%s %s", t.Kind, t.ID)
		if t.Agent != "" {
			name = fmt.Sprintf("%s %s @%s", t.Kind, t.ID, t.Agent)
		}
		file.TraceEvents = append(file.TraceEvents, chromeEvent{
			Name: "thread_name",
			Ph:   "M",
			Pid:  t.Shard,
			Tid:  tid,
			Args: map[string]any{"name": name},
		})
		args := make(map[string]any, len(t.Attrs)+1)
		for k, v := range t.Attrs {
			args[k] = v
		}
		if t.Err != "" {
			args["err"] = t.Err
		}
		if len(args) == 0 {
			args = nil
		}
		file.TraceEvents = append(file.TraceEvents, chromeEvent{
			Name: t.ID,
			Cat:  t.Kind,
			Ph:   "X",
			Ts:   ts,
			Dur:  usPtr(t.Dur),
			Pid:  t.Shard,
			Tid:  tid,
			Args: args,
		})
		for _, sp := range t.Spans {
			file.TraceEvents = append(file.TraceEvents, chromeEvent{
				Name: sp.Name,
				Cat:  t.Kind,
				Ph:   "X",
				Ts:   ts + us(sp.Start),
				Dur:  usPtr(sp.Dur),
				Pid:  t.Shard,
				Tid:  tid,
				Args: sp.Attrs,
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(file)
}

// WriteChrome exports the tracer's current notable set; a nil tracer
// writes a valid file with zero events.
func (tr *Tracer) WriteChrome(w io.Writer) error {
	return WriteChrome(w, tr.Traces())
}

// us converts seconds to whole microseconds; rounding (not truncation)
// keeps binary-inexact durations like 0.15s at exactly 150000µs.
func us(seconds float64) int64 {
	return int64(math.Round(seconds * 1e6))
}

// usPtr is us for ph:"X" dur fields, which must be carried even when
// the duration rounds to 0.
func usPtr(seconds float64) *int64 {
	v := us(seconds)
	return &v
}
