package video

import (
	"math"
	"testing"
)

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig(1).Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.ChunkSeconds = 0 },
		func(c *Config) { c.NumChunks = 0 },
		func(c *Config) { c.Ladder = nil },
		func(c *Config) { c.VBRStd = -1 },
		func(c *Config) { c.SSIMStd = -1 },
		func(c *Config) { c.Ladder[2].Mbps = c.Ladder[1].Mbps }, // not ascending
		func(c *Config) { c.Ladder[0].SSIM = 1.5 },
		func(c *Config) { c.Ladder[0].Mbps = -1 },
	}
	for i, mut := range mutations {
		cfg := DefaultConfig(1)
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d not caught", i)
		}
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	a := MustSynthesize(DefaultConfig(5))
	b := MustSynthesize(DefaultConfig(5))
	for n := 0; n < a.NumChunks(); n += 37 {
		for q := 0; q < a.NumQualities(); q++ {
			if a.Size(n, q) != b.Size(n, q) || a.SSIM(n, q) != b.SSIM(n, q) {
				t.Fatalf("same seed differs at chunk %d quality %d", n, q)
			}
		}
	}
}

func TestSizesOrderedByQuality(t *testing.T) {
	// VBR noise is shared across rungs within a chunk, so sizes should
	// almost always ascend with quality. Allow rare inversions from the
	// small independent residual, but only a few.
	v := MustSynthesize(DefaultConfig(2))
	inversions := 0
	for n := 0; n < v.NumChunks(); n++ {
		for q := 1; q < v.NumQualities(); q++ {
			if v.Size(n, q) < v.Size(n, q-1) {
				inversions++
			}
		}
	}
	total := v.NumChunks() * (v.NumQualities() - 1)
	if frac := float64(inversions) / float64(total); frac > 0.02 {
		t.Errorf("%.1f%% size inversions across qualities, want < 2%%", frac*100)
	}
}

func TestMeanBitratesNearNominal(t *testing.T) {
	v := MustSynthesize(DefaultConfig(3))
	for q, rung := range v.Ladder() {
		var sum float64
		for n := 0; n < v.NumChunks(); n++ {
			sum += v.Bitrate(n, q)
		}
		mean := sum / float64(v.NumChunks())
		if math.Abs(mean-rung.Mbps)/rung.Mbps > 0.15 {
			t.Errorf("quality %d mean bitrate %v, nominal %v (>15%% off)", q, mean, rung.Mbps)
		}
	}
}

func TestSSIMAnchorsMatchPaper(t *testing.T) {
	v := MustSynthesize(DefaultConfig(4))
	var lo, hi float64
	for n := 0; n < v.NumChunks(); n++ {
		lo += v.SSIM(n, 0)
		hi += v.SSIM(n, v.NumQualities()-1)
	}
	lo /= float64(v.NumChunks())
	hi /= float64(v.NumChunks())
	if math.Abs(lo-0.908) > 0.01 {
		t.Errorf("lowest-quality mean SSIM %v, paper anchor 0.908", lo)
	}
	if math.Abs(hi-0.986) > 0.01 {
		t.Errorf("highest-quality mean SSIM %v, paper anchor 0.986", hi)
	}
}

func TestDuration(t *testing.T) {
	v := MustSynthesize(DefaultConfig(1))
	if v.DurationSeconds() != 600 {
		t.Errorf("default video duration %v, want 600", v.DurationSeconds())
	}
}

func TestWithLadderPreservesComplexity(t *testing.T) {
	v := MustSynthesize(DefaultConfig(6))
	hv, err := v.WithLadder(HigherLadder())
	if err != nil {
		t.Fatal(err)
	}
	if hv.NumQualities() != len(HigherLadder()) {
		t.Fatalf("ladder height %d", hv.NumQualities())
	}
	if hv.NumChunks() != v.NumChunks() {
		t.Error("chunk count changed")
	}
	// Same seed: relative chunk complexity should correlate across
	// ladders. Check the correlation of per-chunk normalized sizes at
	// each ladder's top rung.
	var a, b []float64
	for n := 0; n < v.NumChunks(); n++ {
		a = append(a, v.Size(n, v.NumQualities()-1))
		b = append(b, hv.Size(n, hv.NumQualities()-1))
	}
	var corrNum, corrA, corrB, meanA, meanB float64
	for i := range a {
		meanA += a[i]
		meanB += b[i]
	}
	meanA /= float64(len(a))
	meanB /= float64(len(b))
	for i := range a {
		corrNum += (a[i] - meanA) * (b[i] - meanB)
		corrA += (a[i] - meanA) * (a[i] - meanA)
		corrB += (b[i] - meanB) * (b[i] - meanB)
	}
	if corr := corrNum / math.Sqrt(corrA*corrB); corr < 0.5 {
		t.Errorf("chunk complexity correlation across ladders %v, want > 0.5", corr)
	}
}

func TestHigherLadderIsHigher(t *testing.T) {
	def, high := DefaultLadder(), HigherLadder()
	if high[0].Mbps <= def[0].Mbps {
		t.Error("higher ladder should drop the lowest rungs")
	}
	if high[len(high)-1].Mbps <= def[len(def)-1].Mbps {
		t.Error("higher ladder should add rungs above the original maximum")
	}
}

func TestSizeFloor(t *testing.T) {
	cfg := DefaultConfig(7)
	cfg.VBRStd = 0.9 // extreme variation
	v := MustSynthesize(cfg)
	for n := 0; n < v.NumChunks(); n++ {
		for q := 0; q < v.NumQualities(); q++ {
			if v.Size(n, q) < 200 {
				t.Fatalf("chunk %d quality %d size %v below floor", n, q, v.Size(n, q))
			}
		}
	}
}
