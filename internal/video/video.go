// Package video provides the synthetic variable-bitrate video that
// sessions stream: per-chunk, per-quality encoded sizes and SSIM values.
// It stands in for the paper's pre-recorded 10-minute clip (bitrates
// 0.1–4 Mbps, average SSIM 0.908 for the lowest quality and 0.986 for
// the highest).
package video

import (
	"fmt"
	"math"
	"math/rand"
)

// Quality is one rung of the encoding ladder.
type Quality struct {
	// Name is a human label such as "480p".
	Name string
	// Mbps is the nominal encoding bitrate.
	Mbps float64
	// SSIM is the mean SSIM index of chunks encoded at this quality.
	SSIM float64
}

// Config describes a synthetic video.
type Config struct {
	ChunkSeconds float64   // playback duration per chunk
	NumChunks    int       // number of chunks
	Ladder       []Quality // encoding ladder, ascending bitrate
	// VBRStd is the relative standard deviation of per-chunk size
	// variation around the nominal bitrate (variable-bitrate encoding).
	VBRStd float64
	// SSIMStd is the absolute standard deviation of per-chunk SSIM
	// variation around the ladder value.
	SSIMStd float64
	Seed    int64
}

// DefaultLadder is the reproduction's stand-in for the paper's ladder:
// bitrates spanning 0.1–4 Mbps with SSIM anchored at 0.908 (lowest
// average) and 0.986 (highest average).
func DefaultLadder() []Quality {
	return []Quality{
		{Name: "144p", Mbps: 0.1, SSIM: 0.908},
		{Name: "240p", Mbps: 0.25, SSIM: 0.931},
		{Name: "360p", Mbps: 0.5, SSIM: 0.950},
		{Name: "480p", Mbps: 1.0, SSIM: 0.964},
		{Name: "720p", Mbps: 1.8, SSIM: 0.974},
		{Name: "900p", Mbps: 2.7, SSIM: 0.980},
		{Name: "1080p", Mbps: 3.5, SSIM: 0.984},
		{Name: "1440p", Mbps: 4.0, SSIM: 0.986},
	}
}

// HigherLadder is the "higher set of video qualities" counterfactual of
// Figure 11: the low rungs are dropped entirely and rungs above the
// original maximum are added, as when a publisher enables higher
// resolutions. The raised floor is what separates the estimators: a
// conservative bandwidth estimate now predicts rebuffering that the
// true network would not produce.
func HigherLadder() []Quality {
	return []Quality{
		{Name: "900p", Mbps: 2.7, SSIM: 0.980},
		{Name: "1080p", Mbps: 3.5, SSIM: 0.984},
		{Name: "1440p", Mbps: 4.5, SSIM: 0.988},
		{Name: "2160p", Mbps: 6.0, SSIM: 0.992},
		{Name: "4320p", Mbps: 8.0, SSIM: 0.994},
	}
}

// DefaultConfig is the 10-minute clip used across the experiments:
// 2-second chunks, default ladder, mild VBR variation.
func DefaultConfig(seed int64) Config {
	return Config{
		ChunkSeconds: 2.0,
		NumChunks:    300, // 10 minutes
		Ladder:       DefaultLadder(),
		VBRStd:       0.15,
		SSIMStd:      0.004,
		Seed:         seed,
	}
}

// Validate reports the first problem with the config, if any.
func (c Config) Validate() error {
	switch {
	case c.ChunkSeconds <= 0:
		return fmt.Errorf("video: ChunkSeconds %v <= 0", c.ChunkSeconds)
	case c.NumChunks <= 0:
		return fmt.Errorf("video: NumChunks %d <= 0", c.NumChunks)
	case len(c.Ladder) == 0:
		return fmt.Errorf("video: empty quality ladder")
	case c.VBRStd < 0 || c.VBRStd > 0.9:
		return fmt.Errorf("video: VBRStd %v outside [0, 0.9]", c.VBRStd)
	case c.SSIMStd < 0:
		return fmt.Errorf("video: SSIMStd %v < 0", c.SSIMStd)
	}
	for i, q := range c.Ladder {
		if q.Mbps <= 0 {
			return fmt.Errorf("video: ladder[%d] bitrate %v <= 0", i, q.Mbps)
		}
		if q.SSIM <= 0 || q.SSIM > 1 {
			return fmt.Errorf("video: ladder[%d] SSIM %v outside (0, 1]", i, q.SSIM)
		}
		if i > 0 && q.Mbps <= c.Ladder[i-1].Mbps {
			return fmt.Errorf("video: ladder bitrates must be ascending (index %d)", i)
		}
	}
	return nil
}

// Video is an encoded clip: immutable per-chunk sizes and SSIMs for every
// quality.
type Video struct {
	cfg   Config
	sizes [][]float64 // [chunk][quality] bytes
	ssims [][]float64 // [chunk][quality]
}

// Synthesize builds a video from the config, deterministically from the
// seed. Per-chunk sizes vary log-normally around the nominal bitrate
// (VBR) with the variation correlated across qualities within a chunk,
// mimicking scene complexity.
func Synthesize(cfg Config) (*Video, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	v := &Video{
		cfg:   cfg,
		sizes: make([][]float64, cfg.NumChunks),
		ssims: make([][]float64, cfg.NumChunks),
	}
	for n := 0; n < cfg.NumChunks; n++ {
		v.sizes[n] = make([]float64, len(cfg.Ladder))
		v.ssims[n] = make([]float64, len(cfg.Ladder))
		// Per-chunk generator derived from (seed, chunk index) so the
		// same seed yields the same scene complexity regardless of the
		// ladder — WithLadder relies on this to model re-encoding the
		// same content.
		rng := rand.New(rand.NewSource(cfg.Seed*1_000_003 + int64(n)))
		// One complexity draw per chunk, shared across qualities.
		complexity := math.Exp(rng.NormFloat64()*cfg.VBRStd - cfg.VBRStd*cfg.VBRStd/2)
		for q, rung := range cfg.Ladder {
			nominal := rung.Mbps * 1e6 / 8 * cfg.ChunkSeconds
			// Small independent residual per rung on top of the shared
			// complexity factor.
			resid := 1 + rng.NormFloat64()*cfg.VBRStd*0.2
			size := nominal * complexity * math.Max(0.3, resid)
			v.sizes[n][q] = math.Max(200, size)
			ss := rung.SSIM + rng.NormFloat64()*cfg.SSIMStd
			v.ssims[n][q] = math.Min(1, math.Max(0, ss))
		}
	}
	return v, nil
}

// MustSynthesize is Synthesize for known-good configs (panics on error).
func MustSynthesize(cfg Config) *Video {
	v, err := Synthesize(cfg)
	if err != nil {
		panic(err)
	}
	return v
}

// NumChunks returns the chunk count.
func (v *Video) NumChunks() int { return v.cfg.NumChunks }

// NumQualities returns the ladder height.
func (v *Video) NumQualities() int { return len(v.cfg.Ladder) }

// ChunkSeconds returns playback seconds per chunk.
func (v *Video) ChunkSeconds() float64 { return v.cfg.ChunkSeconds }

// DurationSeconds returns the total playback duration.
func (v *Video) DurationSeconds() float64 {
	return float64(v.cfg.NumChunks) * v.cfg.ChunkSeconds
}

// Ladder returns a copy of the quality ladder.
func (v *Video) Ladder() []Quality {
	out := make([]Quality, len(v.cfg.Ladder))
	copy(out, v.cfg.Ladder)
	return out
}

// Quality returns rung q of the ladder.
func (v *Video) Quality(q int) Quality { return v.cfg.Ladder[q] }

// Size returns the encoded size in bytes of chunk n at quality q.
func (v *Video) Size(n, q int) float64 { return v.sizes[n][q] }

// SSIM returns the SSIM of chunk n at quality q.
func (v *Video) SSIM(n, q int) float64 { return v.ssims[n][q] }

// Bitrate returns the actual encoded bitrate in Mbps of chunk n at
// quality q (size over chunk duration).
func (v *Video) Bitrate(n, q int) float64 {
	return v.sizes[n][q] * 8 / 1e6 / v.cfg.ChunkSeconds
}

// WithLadder re-synthesizes the same video content on a different
// ladder, reusing the seed so chunk complexity is preserved — the
// operation behind the "change of qualities" counterfactual.
func (v *Video) WithLadder(ladder []Quality) (*Video, error) {
	cfg := v.cfg
	cfg.Ladder = ladder
	return Synthesize(cfg)
}
