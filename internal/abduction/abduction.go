// Package abduction implements the Veritas framework proper (paper §3.2,
// §3.3): turning a session log into a posterior over latent ground-truth
// bandwidth (GTBW) traces, and using those traces to answer causal
// queries.
//
// The pipeline is: SessionLog → Observations (throughput, TCP state,
// size, start interval per chunk) → EHMM inference (Viterbi +
// forward–backward) → K posterior trace samples → counterfactual replay
// in the changed setting, or interventional download-time prediction.
package abduction

import (
	"errors"
	"fmt"
	"math"

	"veritas/internal/hmm"
	"veritas/internal/player"
	"veritas/internal/tcp"
	"veritas/internal/trace"
)

// Config parameterizes abduction. Zero values take the paper's defaults.
type Config struct {
	// HMM configures the EHMM; if HMM.MaxMbps is zero the grid is sized
	// from the largest observed throughput (with headroom, since GTBW
	// is at least the observed throughput).
	HMM hmm.Config
	// NumSamples is K, the number of posterior traces (paper: 5).
	NumSamples int
	// Seed makes sampling deterministic.
	Seed int64
	// IgnoreTCPState ablates the paper's control variables: every
	// chunk's logged TCP state is replaced by a warm steady-state
	// connection, so the emission model no longer knows about slow-start
	// restart. Used by the ablation experiments to demonstrate why
	// conditioning on W_sn matters (paper §3.2's d-separation argument).
	IgnoreTCPState bool
	// FitTransitions, when positive, runs that many Baum–Welch EM
	// iterations on the interval chain to learn the transition matrix
	// from this session before inference (an extension beyond the
	// paper's fixed tridiagonal prior).
	FitTransitions int
	// Scratch, when set, is the reusable inference arena every buffer of
	// the abduction — observations, Viterbi path, posterior slabs,
	// sampled paths — is carved from, making repeat abductions through
	// the same arena allocation-flat. The returned Abduction then aliases
	// the arena and is valid only until the next Abduct with the same
	// Scratch (see hmm.Scratch); leave nil for results that must outlive
	// it. Not safe for concurrent use: one Scratch per goroutine.
	Scratch *hmm.Scratch
}

func (c Config) withDefaults(maxObservedMbps float64) Config {
	if c.HMM.MaxMbps == 0 {
		// Headroom: the latent GTBW can exceed every observation when
		// all chunks were below the BDP. 1.5× the max observation,
		// floored at 10 Mbps, covers the paper's regimes. A caller-set
		// estimator hook survives the default grid sizing.
		max := maxObservedMbps * 1.5
		if max < 10 {
			max = 10
		}
		est := c.HMM.Estimator
		share := c.HMM.SharePowers
		c.HMM = hmm.DefaultConfig(max)
		c.HMM.Estimator = est
		c.HMM.SharePowers = share
	}
	if c.NumSamples == 0 {
		c.NumSamples = 5
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Abduction is the result of inverting a session log: the fitted model,
// the observation sequence, the Viterbi path, the posterior, and K
// sampled GTBW traces.
type Abduction struct {
	Model        *hmm.Model
	Observations []hmm.Observation
	ViterbiPath  []int
	Posterior    *hmm.Posterior
	SampledPaths [][]int

	log *player.SessionLog
	cfg Config
}

// Observations converts a session log into the EHMM's evidence sequence.
// deltaSecs is the GTBW interval length δ.
func Observations(log *player.SessionLog, deltaSecs float64) ([]hmm.Observation, error) {
	return observationsInto(nil, log, deltaSecs)
}

// observationsInto is Observations with an optional arena: with a
// scratch it fills the arena's reusable observation buffer instead of
// allocating.
func observationsInto(sc *hmm.Scratch, log *player.SessionLog, deltaSecs float64) ([]hmm.Observation, error) {
	if log == nil || len(log.Records) == 0 {
		return nil, errors.New("abduction: empty session log")
	}
	if deltaSecs <= 0 {
		return nil, fmt.Errorf("abduction: delta %v <= 0", deltaSecs)
	}
	var obs []hmm.Observation
	if sc != nil {
		obs = sc.Observations(len(log.Records))
	} else {
		obs = make([]hmm.Observation, len(log.Records))
	}
	for i, r := range log.Records {
		obs[i] = hmm.Observation{
			ThroughputMbps: r.ThroughputMbps,
			TCP:            r.TCP,
			SizeBytes:      r.SizeBytes,
			StartInterval:  int(r.Start / deltaSecs),
		}
	}
	return obs, nil
}

// Abduct runs the full abduction: model fit-free inference (the EHMM's
// parameters are the paper's fixed hyperparameters; no EM is needed)
// plus posterior sampling.
func Abduct(log *player.SessionLog, cfg Config) (*Abduction, error) {
	if log == nil || len(log.Records) == 0 {
		return nil, errors.New("abduction: empty session log")
	}
	var maxObs float64
	for _, r := range log.Records {
		if r.ThroughputMbps > maxObs {
			maxObs = r.ThroughputMbps
		}
	}
	cfg = cfg.withDefaults(maxObs)

	model, err := hmm.New(cfg.HMM)
	if err != nil {
		return nil, err
	}
	model.SetScratch(cfg.Scratch)
	obs, err := observationsInto(cfg.Scratch, log, cfg.HMM.DeltaSecs)
	if err != nil {
		return nil, err
	}
	if cfg.IgnoreTCPState {
		for i := range obs {
			warm := tcp.Fresh(obs[i].TCP.MinRTT)
			warm.CWND = tcp.DefaultSSThresh // window never the bottleneck
			warm.LastSendGap = 0            // no slow-start restart
			obs[i].TCP = warm
		}
	}
	if cfg.FitTransitions > 0 {
		fit, err := model.FitTransitions(obs, cfg.FitTransitions, 0.1)
		if err != nil {
			return nil, fmt.Errorf("abduction: transition fit: %w", err)
		}
		model = fit.Model
	}
	// One Infer computes the gap vector and the log-emission table once
	// and shares them across Viterbi, forward–backward and the K
	// samples; running the three entry points separately evaluates the
	// emission table (the dominant estimator work) four times. All are
	// pure functions of (obs, K, seed), so results are bit-identical.
	inf, err := model.Infer(obs, cfg.NumSamples, cfg.Seed)
	if err != nil {
		return nil, err
	}
	return &Abduction{
		Model:        model,
		Observations: obs,
		ViterbiPath:  inf.Path,
		Posterior:    inf.Post,
		SampledPaths: inf.Samples,
		log:          log,
		cfg:          cfg,
	}, nil
}

// Log returns the session log the abduction was built from.
func (a *Abduction) Log() *player.SessionLog { return a.log }

// ConfigUsed returns the (defaulted) configuration.
func (a *Abduction) ConfigUsed() Config { return a.cfg }

// MostLikelyTrace returns the GTBW trace implied by the Viterbi path.
func (a *Abduction) MostLikelyTrace() *trace.Trace {
	return a.pathToTrace(a.ViterbiPath)
}

// SampleTraces returns the K posterior traces, interpolated onto the
// δ grid (paper: "intermediate values are interpolated from sampled
// C_s1:N").
func (a *Abduction) SampleTraces() []*trace.Trace {
	out := make([]*trace.Trace, len(a.SampledPaths))
	for i, p := range a.SampledPaths {
		out[i] = a.pathToTrace(p)
	}
	return out
}

// pathToTrace expands per-chunk states into a per-interval trace:
// intervals carrying one or more chunk starts take (the mean of) those
// chunks' capacities; intervals between chunk starts are linearly
// interpolated and re-quantized to the ε grid; leading/trailing
// intervals hold the nearest inferred value.
func (a *Abduction) pathToTrace(path []int) *trace.Trace {
	delta := a.cfg.HMM.DeltaSecs
	eps := a.cfg.HMM.EpsMbps
	lastInterval := a.Observations[len(a.Observations)-1].StartInterval
	// Pad beyond the final chunk so replays that run longer (e.g. more
	// rebuffering in Setting B) still see defined bandwidth; Trace.At
	// holds the last value beyond the end anyway.
	n := lastInterval + 2
	vals := make([]float64, n)
	known := make([]bool, n)
	counts := make([]int, n)

	for i, o := range a.Observations {
		idx := o.StartInterval
		cap := a.Model.Capacity(path[i])
		if known[idx] {
			// Multiple chunks start in one interval ("zero, one or more
			// observations per hidden state"): average their draws.
			vals[idx] = (vals[idx]*float64(counts[idx]) + cap) / float64(counts[idx]+1)
			counts[idx]++
		} else {
			vals[idx] = cap
			known[idx] = true
			counts[idx] = 1
		}
	}

	// Interpolate gaps between known intervals; extend edges.
	firstKnown, lastKnown := -1, -1
	for i := 0; i < n; i++ {
		if known[i] {
			if firstKnown < 0 {
				firstKnown = i
			}
			lastKnown = i
		}
	}
	for i := 0; i < firstKnown; i++ {
		vals[i] = vals[firstKnown]
	}
	for i := lastKnown + 1; i < n; i++ {
		vals[i] = vals[lastKnown]
	}
	prev := firstKnown
	for i := firstKnown + 1; i <= lastKnown; i++ {
		if !known[i] {
			continue
		}
		if i > prev+1 {
			for j := prev + 1; j < i; j++ {
				t := float64(j-prev) / float64(i-prev)
				v := vals[prev] + (vals[i]-vals[prev])*t
				vals[j] = math.Round(v/eps) * eps
			}
		}
		prev = i
	}

	tr, err := trace.FromSteps(delta, vals)
	if err != nil {
		panic(fmt.Sprintf("abduction: internal trace construction failed: %v", err))
	}
	return tr
}

// PredictDownloadTime answers the interventional query of §4.4: the
// predicted download time for a hypothetical next chunk of the given
// size starting at startSecs with TCP state st. It takes the Viterbi
// state of the last observed chunk, advances it through the transition
// matrix by the elapsed δ-intervals to get the expected GTBW, and runs
// the estimator f.
func (a *Abduction) PredictDownloadTime(startSecs float64, st tcp.State, sizeBytes float64) float64 {
	lastObs := a.Observations[len(a.Observations)-1]
	lastState := a.ViterbiPath[len(a.ViterbiPath)-1]
	gap := int(startSecs/a.cfg.HMM.DeltaSecs) - lastObs.StartInterval
	if gap < 0 {
		gap = 0
	}
	gtbw := a.Model.ExpectedCapacityAfter(lastState, gap)
	return tcp.EstimateDownloadTime(gtbw, st, sizeBytes)
}
