package abduction

import (
	"math"
	"testing"

	"veritas/internal/abr"
	"veritas/internal/hmm"
	"veritas/internal/player"
	"veritas/internal/tcp"
	"veritas/internal/trace"
)

// Degenerate-input coverage for the abduction entry points: empty and
// single-chunk logs must either error cleanly or produce finite
// results — never NaN/Inf escapes from the inference hot path.

func singleChunkLog() *player.SessionLog {
	st := tcp.Fresh(0.080)
	st.CWND = 800
	st.SSThresh = 800
	return &player.SessionLog{
		Records: []player.ChunkRecord{{
			Index:          0,
			SizeBytes:      2e6,
			Start:          0.5,
			End:            3.0,
			TCP:            st,
			ThroughputMbps: 2e6 * 8 / 1e6 / 2.5,
		}},
		BufferCap:    5,
		RTT:          0.080,
		ChunkSeconds: 4,
	}
}

func TestObservationsDegenerateInputs(t *testing.T) {
	good := singleChunkLog()
	cases := []struct {
		name    string
		log     *player.SessionLog
		delta   float64
		wantErr bool
	}{
		{"nil log", nil, 5, true},
		{"empty records", &player.SessionLog{}, 5, true},
		{"zero delta", good, 0, true},
		{"negative delta", good, -1, true},
		{"single chunk", good, 5, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			obs, err := Observations(tc.log, tc.delta)
			if tc.wantErr {
				if err == nil {
					t.Fatal("want error, got nil")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if len(obs) != len(tc.log.Records) {
				t.Fatalf("%d observations for %d records", len(obs), len(tc.log.Records))
			}
		})
	}
}

func TestAbductDegenerateLogs(t *testing.T) {
	for _, tc := range []struct {
		name string
		log  *player.SessionLog
	}{
		{"nil log", nil},
		{"empty records", &player.SessionLog{}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Abduct(tc.log, Config{}); err == nil {
				t.Error("want error, got nil")
			}
		})
	}
}

// TestAbductSingleChunkLog runs the full pipeline on the smallest legal
// session: one chunk means no transitions, a single-row posterior and a
// zero-length pair table — every edge of the slab arithmetic.
func TestAbductSingleChunkLog(t *testing.T) {
	a, err := Abduct(singleChunkLog(), Config{NumSamples: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.ViterbiPath) != 1 {
		t.Fatalf("Viterbi path length %d, want 1", len(a.ViterbiPath))
	}
	if a.Posterior.Len() != 1 {
		t.Fatalf("posterior covers %d chunks, want 1", a.Posterior.Len())
	}
	if math.IsNaN(a.Posterior.LogLikelihood) {
		t.Error("single-chunk log-likelihood is NaN")
	}
	var sum float64
	for _, v := range a.Posterior.Gamma(0) {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("NaN/Inf in single-chunk posterior")
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("single-chunk Gamma sums to %v", sum)
	}
	if len(a.SampledPaths) != 3 {
		t.Fatalf("%d sampled paths, want 3", len(a.SampledPaths))
	}
	for _, p := range a.SampledPaths {
		if len(p) != 1 {
			t.Fatal("sampled path length != 1")
		}
	}
	tr := a.MostLikelyTrace()
	if v := tr.At(0); math.IsNaN(v) || v < 0 {
		t.Errorf("most-likely trace value %v", v)
	}
	// The interventional query must stay finite from one chunk of
	// evidence, including with a degenerate (dead-link) TCP state.
	if d := a.PredictDownloadTime(10, singleChunkLog().Records[0].TCP, 1e6); math.IsNaN(d) || d <= 0 {
		t.Errorf("predicted download time %v", d)
	}
	if d := a.PredictDownloadTime(10, tcp.State{}, 0); math.IsNaN(d) || d != 0 {
		t.Errorf("zero-size prediction %v, want 0", d)
	}
}

// TestAbductScratchReuseMatchesFresh abducts two different sessions
// through one shared arena and checks each result is bit-identical to a
// fresh-arena run — the abduction-layer face of the Scratch contract.
func TestAbductScratchReuseMatchesFresh(t *testing.T) {
	gtA, err := trace.Generate(trace.DefaultFCC(3))
	if err != nil {
		t.Fatal(err)
	}
	logA := runSession(t, gtA, abr.NewMPC())
	logB := logA.Prefix(7) // much smaller second session on the dirty arena

	sc := hmm.NewScratch()
	for _, log := range []*player.SessionLog{logA, logB} {
		shared, err := Abduct(log, Config{NumSamples: 2, Seed: 4, Scratch: sc})
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := Abduct(log, Config{NumSamples: 2, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		if shared.Posterior.LogLikelihood != fresh.Posterior.LogLikelihood {
			t.Error("shared-arena log-likelihood differs from fresh run")
		}
		for i := range fresh.ViterbiPath {
			if shared.ViterbiPath[i] != fresh.ViterbiPath[i] {
				t.Fatalf("Viterbi path differs at chunk %d", i)
			}
		}
		for s := range fresh.SampledPaths {
			for i := range fresh.SampledPaths[s] {
				if shared.SampledPaths[s][i] != fresh.SampledPaths[s][i] {
					t.Fatalf("sample %d differs at chunk %d", s, i)
				}
			}
		}
	}
}
