package abduction

import (
	"errors"
	"fmt"
	"math"

	"veritas/internal/player"
	"veritas/internal/trace"
)

// BaselineTrace builds the paper's Baseline GTBW estimate from a session
// log: the observed throughput of each chunk is assumed to hold over the
// chunk's whole download window, and bandwidth during off-periods (no
// active download) is linearly interpolated between the surrounding
// chunks' throughputs. This is the adjustment-free scheme "commonly used
// in most video streaming evaluations today" that Veritas outperforms.
//
// The result is sampled onto a uniform grid of gridSecs (1 s captures
// the interpolation well below typical off-period lengths).
func BaselineTrace(log *player.SessionLog, gridSecs float64) (*trace.Trace, error) {
	if log == nil || len(log.Records) == 0 {
		return nil, errors.New("abduction: empty session log")
	}
	if gridSecs <= 0 {
		return nil, fmt.Errorf("abduction: grid %v <= 0", gridSecs)
	}
	recs := log.Records
	horizon := recs[len(recs)-1].End + gridSecs
	n := int(math.Ceil(horizon/gridSecs)) + 1
	vals := make([]float64, n)

	valueAt := func(t float64) float64 {
		// Inside a download window: that chunk's observed throughput.
		for _, r := range recs {
			if t >= r.Start && t <= r.End {
				return r.ThroughputMbps
			}
		}
		// Before the first chunk / after the last: hold the edge value.
		if t < recs[0].Start {
			return recs[0].ThroughputMbps
		}
		last := recs[len(recs)-1]
		if t > last.End {
			return last.ThroughputMbps
		}
		// Off-period: linear interpolation between the previous chunk's
		// and next chunk's throughput across the gap.
		for i := 0; i+1 < len(recs); i++ {
			if t > recs[i].End && t < recs[i+1].Start {
				span := recs[i+1].Start - recs[i].End
				if span <= 0 {
					return recs[i+1].ThroughputMbps
				}
				frac := (t - recs[i].End) / span
				return recs[i].ThroughputMbps + frac*(recs[i+1].ThroughputMbps-recs[i].ThroughputMbps)
			}
		}
		return last.ThroughputMbps
	}

	for i := 0; i < n; i++ {
		vals[i] = valueAt(float64(i) * gridSecs)
	}
	return trace.FromSteps(gridSecs, vals)
}
