package abduction

import (
	"errors"
	"sort"

	"veritas/internal/abr"
	"veritas/internal/netem"
	"veritas/internal/player"
	"veritas/internal/trace"
	"veritas/internal/video"
)

// Setting describes the counterfactual "Setting B" a session is replayed
// under: which video (quality ladder), which ABR, which buffer size,
// over which emulated path.
type Setting struct {
	Video *video.Video
	// NewABR constructs a fresh algorithm instance per replay, since
	// algorithms carry per-session state.
	NewABR    func() abr.Algorithm
	BufferCap float64
	Net       netem.Config
}

// Validate reports the first problem with the setting, if any.
func (s Setting) Validate() error {
	if s.Video == nil {
		return errors.New("abduction: setting has nil video")
	}
	if s.NewABR == nil {
		return errors.New("abduction: setting has nil ABR factory")
	}
	return nil
}

// Replay runs a full session under the setting over the given bandwidth
// trace and returns its metrics. This is the "emulate the video session
// in Setting B" step of Figure 6.
func Replay(tr *trace.Trace, s Setting) (player.Metrics, error) {
	if err := s.Validate(); err != nil {
		return player.Metrics{}, err
	}
	_, m, err := player.Run(player.Config{
		Video:     s.Video,
		ABR:       s.NewABR(),
		Trace:     tr,
		Net:       s.Net,
		BufferCap: s.BufferCap,
	})
	return m, err
}

// CounterfactualOutcome collects the replay results for one session and
// one what-if setting, across the estimators the paper compares.
type CounterfactualOutcome struct {
	// Baseline is the replay over the Baseline throughput trace.
	Baseline player.Metrics
	// Samples are the replays over each of Veritas's K posterior traces.
	Samples []player.Metrics
}

// Counterfactual replays the what-if setting over the Baseline trace and
// every Veritas sample trace. (The oracle replay over the true GTBW is
// the caller's job, since only the experiment harness holds the ground
// truth.)
func (a *Abduction) Counterfactual(s Setting) (*CounterfactualOutcome, error) {
	base, err := BaselineTrace(a.log, 1)
	if err != nil {
		return nil, err
	}
	baseM, err := Replay(base, s)
	if err != nil {
		return nil, err
	}
	out := &CounterfactualOutcome{Baseline: baseM}
	for _, tr := range a.SampleTraces() {
		m, err := Replay(tr, s)
		if err != nil {
			return nil, err
		}
		out.Samples = append(out.Samples, m)
	}
	return out, nil
}

// MetricFn extracts one scalar from session metrics (SSIM, rebuffering
// ratio, average bitrate, ...).
type MetricFn func(player.Metrics) float64

// Standard metric extractors for reporting.
var (
	MetricSSIM       MetricFn = func(m player.Metrics) float64 { return m.AvgSSIM }
	MetricRebufRatio MetricFn = func(m player.Metrics) float64 { return m.RebufRatio }
	MetricAvgBitrate MetricFn = func(m player.Metrics) float64 { return m.AvgBitrateMbps }
)

// VeritasRange summarizes the spread of a metric across the K sample
// replays the way the paper reports it: the second-lowest and
// second-highest values ("Veritas (Low)" and "Veritas (High)"). With
// fewer than three samples it degrades to min/max.
func VeritasRange(samples []player.Metrics, f MetricFn) (low, high float64) {
	vals := make([]float64, len(samples))
	for i, m := range samples {
		vals[i] = f(m)
	}
	sort.Float64s(vals)
	switch {
	case len(vals) == 0:
		return 0, 0
	case len(vals) <= 2:
		return vals[0], vals[len(vals)-1]
	default:
		return vals[1], vals[len(vals)-2]
	}
}
