package abduction

import (
	"testing"
	"testing/quick"

	"veritas/internal/abr"
	"veritas/internal/netem"
	"veritas/internal/player"
	"veritas/internal/trace"
	"veritas/internal/video"
)

// shortLog builds a small deterministic session log for property tests.
func shortLog(t *testing.T, bw float64, seed int64) *player.SessionLog {
	t.Helper()
	cfg := video.DefaultConfig(1)
	cfg.NumChunks = 30
	log, _, err := player.Run(player.Config{
		Video:     video.MustSynthesize(cfg),
		ABR:       abr.NewMPC(),
		Trace:     trace.Constant(bw),
		Net:       netem.Config{RTT: 0.160, SlowStartRestart: true, JitterStd: 0.05, Seed: seed},
		BufferCap: 5,
	})
	if err != nil {
		t.Fatalf("session: %v", err)
	}
	return log
}

// TestQuickSampledTracesWithinGrid: every posterior sample stays on the
// model's capacity grid and within its bounds, for random bandwidths
// and seeds.
func TestQuickSampledTracesWithinGrid(t *testing.T) {
	f := func(bwRaw, seedRaw uint8) bool {
		bw := 1 + float64(bwRaw%70)*0.1
		log := shortLog(t, bw, int64(seedRaw))
		abd, err := Abduct(log, Config{NumSamples: 2, Seed: int64(seedRaw) + 1})
		if err != nil {
			return false
		}
		maxCap := abd.ConfigUsed().HMM.MaxMbps
		for _, tr := range abd.SampleTraces() {
			lo, hi := tr.MinMax()
			if lo < 0 || hi > maxCap+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestQuickBaselineNeverExceedsObservedMax: the Baseline trace is built
// from observed throughputs and interpolation, so it can never exceed
// the largest observation.
func TestQuickBaselineNeverExceedsObservedMax(t *testing.T) {
	f := func(bwRaw, seedRaw uint8) bool {
		bw := 1 + float64(bwRaw%70)*0.1
		log := shortLog(t, bw, int64(seedRaw))
		base, err := BaselineTrace(log, 1)
		if err != nil {
			return false
		}
		var maxObs float64
		for _, r := range log.Records {
			if r.ThroughputMbps > maxObs {
				maxObs = r.ThroughputMbps
			}
		}
		_, hi := base.MinMax()
		return hi <= maxObs+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestQuickPredictDownloadTimeMonotoneInSize: for a fixed session and
// state, a bigger hypothetical chunk can never be predicted faster.
func TestQuickPredictDownloadTimeMonotoneInSize(t *testing.T) {
	log := shortLog(t, 5, 3)
	abd, err := Abduct(log, Config{NumSamples: 1})
	if err != nil {
		t.Fatal(err)
	}
	last := log.Records[len(log.Records)-1]
	f := func(aRaw, bRaw uint16) bool {
		a := 1e4 + float64(aRaw)*100
		b := 1e4 + float64(bRaw)*100
		if a > b {
			a, b = b, a
		}
		st := last.TCP
		pa := abd.PredictDownloadTime(last.End+1, st, a)
		pb := abd.PredictDownloadTime(last.End+1, st, b)
		return pa <= pb+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestCounterfactualSampleCountMatchesConfig covers K edge cases.
func TestCounterfactualSampleCountMatchesConfig(t *testing.T) {
	log := shortLog(t, 5, 1)
	for _, k := range []int{1, 2, 7} {
		abd, err := Abduct(log, Config{NumSamples: k})
		if err != nil {
			t.Fatal(err)
		}
		if got := len(abd.SampleTraces()); got != k {
			t.Errorf("K=%d produced %d traces", k, got)
		}
	}
}
