package abduction

import (
	"math"
	"testing"

	"veritas/internal/abr"
	"veritas/internal/netem"
	"veritas/internal/player"
	"veritas/internal/trace"
	"veritas/internal/video"
)

// runSession runs an MPC session over the given GTBW trace with the
// paper's default setting (5 s buffer, 160 ms RTT).
func runSession(t *testing.T, tr *trace.Trace, alg abr.Algorithm) *player.SessionLog {
	t.Helper()
	log, _, err := player.Run(player.Config{
		Video:     video.MustSynthesize(video.DefaultConfig(1)),
		ABR:       alg,
		Trace:     tr,
		Net:       netem.Config{RTT: 0.160, SlowStartRestart: true, JitterStd: 0.02, Seed: 5},
		BufferCap: 5,
	})
	if err != nil {
		t.Fatalf("session: %v", err)
	}
	return log
}

// traceRMSE is the time-weighted root mean squared error between an
// estimate and the ground truth over [0, horizon], sampled at 1 s.
func traceRMSE(est, truth *trace.Trace, horizon float64) float64 {
	var sum float64
	n := 0
	for t := 0.0; t < horizon; t++ {
		d := est.At(t) - truth.At(t)
		sum += d * d
		n++
	}
	return math.Sqrt(sum / float64(n))
}

func TestObservationsConversion(t *testing.T) {
	gt := trace.Constant(5)
	log := runSession(t, gt, abr.NewMPC())
	obs, err := Observations(log, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != len(log.Records) {
		t.Fatalf("%d observations for %d records", len(obs), len(log.Records))
	}
	for i, o := range obs {
		r := log.Records[i]
		if o.ThroughputMbps != r.ThroughputMbps || o.SizeBytes != r.SizeBytes {
			t.Fatalf("observation %d does not match record", i)
		}
		if o.StartInterval != int(r.Start/5) {
			t.Fatalf("observation %d interval %d, want %d", i, o.StartInterval, int(r.Start/5))
		}
	}
	if _, err := Observations(nil, 5); err == nil {
		t.Error("nil log should error")
	}
	if _, err := Observations(log, 0); err == nil {
		t.Error("zero delta should error")
	}
}

func TestAbductRecoversConstantGTBW(t *testing.T) {
	gt := trace.Constant(5)
	log := runSession(t, gt, abr.NewMPC())
	a, err := Abduct(log, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ml := a.MostLikelyTrace()
	horizon := log.Records[len(log.Records)-1].End
	if rmse := traceRMSE(ml, gt, horizon); rmse > 1.0 {
		t.Errorf("most-likely trace RMSE %v Mbps on constant 5 Mbps GTBW", rmse)
	}
}

func TestVeritasBeatsBaseline(t *testing.T) {
	// The paper's core claim (Figure 7): on FCC-like traces with an
	// adaptive ABR, Veritas's inferred traces are much closer to GTBW
	// than the observed-throughput Baseline, which under-estimates
	// whenever the ABR picks small chunks.
	var vBetter, total int
	for seed := int64(1); seed <= 5; seed++ {
		cfg := trace.DefaultFCC(seed)
		gt, err := trace.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		log := runSession(t, gt, abr.NewMPC())
		a, err := Abduct(log, Config{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		base, err := BaselineTrace(log, 1)
		if err != nil {
			t.Fatal(err)
		}
		horizon := log.Records[len(log.Records)-1].End
		vr := traceRMSE(a.MostLikelyTrace(), gt, horizon)
		br := traceRMSE(base, gt, horizon)
		t.Logf("seed %d: Veritas RMSE %.3f, Baseline RMSE %.3f", seed, vr, br)
		total++
		if vr < br {
			vBetter++
		}
	}
	if vBetter < total-1 {
		t.Errorf("Veritas beat Baseline on only %d/%d traces", vBetter, total)
	}
}

func TestBaselineUnderestimates(t *testing.T) {
	// With a 5 s buffer cap the ABR's chunks are often below the BDP,
	// so observed throughput (and hence Baseline) sits below GTBW.
	gt := trace.Constant(6)
	log := runSession(t, gt, abr.NewMPC())
	base, err := BaselineTrace(log, 1)
	if err != nil {
		t.Fatal(err)
	}
	horizon := log.Records[len(log.Records)-1].End
	if m := base.Mean(horizon); m >= 6 {
		t.Errorf("Baseline mean %v should underestimate GTBW 6", m)
	}
}

func TestSampleTracesShapeAndDeterminism(t *testing.T) {
	gt, _ := trace.Generate(trace.DefaultFCC(11))
	log := runSession(t, gt, abr.NewMPC())
	a1, err := Abduct(log, Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Abduct(log, Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	s1, s2 := a1.SampleTraces(), a2.SampleTraces()
	if len(s1) != 5 {
		t.Fatalf("default K = %d, want 5", len(s1))
	}
	for k := range s1 {
		p1, p2 := s1[k].Points(), s2[k].Points()
		if len(p1) != len(p2) {
			t.Fatal("sample lengths differ across identical runs")
		}
		for i := range p1 {
			if p1[i] != p2[i] {
				t.Fatal("same seed produced different samples")
			}
		}
	}
}

func TestSamplesOnQuantizedGrid(t *testing.T) {
	gt, _ := trace.Generate(trace.DefaultFCC(13))
	log := runSession(t, gt, abr.NewMPC())
	a, err := Abduct(log, Config{})
	if err != nil {
		t.Fatal(err)
	}
	eps := a.ConfigUsed().HMM.EpsMbps
	for _, tr := range a.SampleTraces() {
		for _, p := range tr.Points() {
			q := math.Round(p.Mbps/eps) * eps
			if math.Abs(p.Mbps-q) > 1e-9 {
				t.Fatalf("sample value %v not on ε=%v grid", p.Mbps, eps)
			}
		}
	}
}

func TestCounterfactualOutcome(t *testing.T) {
	gt, _ := trace.Generate(trace.DefaultFCC(17))
	log := runSession(t, gt, abr.NewMPC())
	a, err := Abduct(log, Config{NumSamples: 3})
	if err != nil {
		t.Fatal(err)
	}
	setting := Setting{
		Video:     video.MustSynthesize(video.DefaultConfig(1)),
		NewABR:    func() abr.Algorithm { return abr.NewBBA() },
		BufferCap: 5,
		Net:       netem.Config{RTT: 0.080, SlowStartRestart: true},
	}
	out, err := a.Counterfactual(setting)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Samples) != 3 {
		t.Fatalf("%d sample outcomes, want 3", len(out.Samples))
	}
	if out.Baseline.NumChunks != setting.Video.NumChunks() {
		t.Error("baseline replay incomplete")
	}
	low, high := VeritasRange(out.Samples, MetricSSIM)
	if low > high {
		t.Errorf("VeritasRange inverted: %v > %v", low, high)
	}
}

func TestSettingValidation(t *testing.T) {
	s := Setting{}
	if err := s.Validate(); err == nil {
		t.Error("empty setting should be invalid")
	}
	if _, err := Replay(trace.Constant(5), s); err == nil {
		t.Error("replay with invalid setting should fail")
	}
}

func TestVeritasRangeSecondOrderStats(t *testing.T) {
	ms := make([]player.Metrics, 5)
	for i, v := range []float64{5, 1, 4, 2, 3} {
		ms[i] = player.Metrics{AvgSSIM: v}
	}
	low, high := VeritasRange(ms, MetricSSIM)
	if low != 2 || high != 4 {
		t.Errorf("VeritasRange = (%v, %v), want (2, 4): second-lowest/second-highest", low, high)
	}
	low, high = VeritasRange(ms[:2], MetricSSIM)
	if low != 1 || high != 5 {
		t.Errorf("VeritasRange with 2 samples = (%v, %v), want min/max", low, high)
	}
}

func TestPredictDownloadTimeWarmSession(t *testing.T) {
	gt := trace.Constant(5)
	log := runSession(t, gt, abr.NewMPC())
	a, err := Abduct(log, Config{})
	if err != nil {
		t.Fatal(err)
	}
	last := log.Records[len(log.Records)-1]
	// Hypothetical next chunk: 2 MB on a warm connection right after
	// the session. True download time on a 5 Mbps link ≈ 3.2 s plus
	// slow-start overhead.
	st := last.TCP
	st.LastSendGap = 0.05
	got := a.PredictDownloadTime(last.End+1, st, 2e6)
	want := 2e6 * 8 / (5 * 1e6)
	if got < want*0.7 || got > want*2.0 {
		t.Errorf("predicted %v s for a 2 MB chunk on ~5 Mbps, want near %v s", got, want)
	}
}

func TestAbductValidation(t *testing.T) {
	if _, err := Abduct(nil, Config{}); err == nil {
		t.Error("nil log should error")
	}
	if _, err := Abduct(&player.SessionLog{}, Config{}); err == nil {
		t.Error("empty log should error")
	}
}

func TestBaselineTraceValidation(t *testing.T) {
	if _, err := BaselineTrace(nil, 1); err == nil {
		t.Error("nil log should error")
	}
	gt := trace.Constant(5)
	log := runSession(t, gt, abr.NewMPC())
	if _, err := BaselineTrace(log, 0); err == nil {
		t.Error("zero grid should error")
	}
}

func TestBaselineTraceInterpolatesOffPeriods(t *testing.T) {
	// Construct a tiny synthetic log with a long off-period between two
	// chunks and check the ramp.
	log := &player.SessionLog{
		ChunkSeconds: 2,
		BufferCap:    5,
		Records: []player.ChunkRecord{
			{Index: 0, Start: 0, End: 1, SizeBytes: 1e6, ThroughputMbps: 2},
			{Index: 1, Start: 11, End: 12, SizeBytes: 1e6, ThroughputMbps: 6},
		},
	}
	base, err := BaselineTrace(log, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := base.At(0.5); got != 2 {
		t.Errorf("during chunk 0: %v, want 2", got)
	}
	if got := base.At(11.5); got != 6 {
		t.Errorf("during chunk 1: %v, want 6", got)
	}
	mid := base.At(6)
	if mid <= 2 || mid >= 6 {
		t.Errorf("off-period value %v should interpolate between 2 and 6", mid)
	}
}

func TestAbductErrorPaths(t *testing.T) {
	gt := trace.Constant(5)
	log := runSession(t, gt, abr.NewMPC())
	// Invalid HMM config surfaces.
	bad := Config{}
	bad.HMM.EpsMbps = -1
	bad.HMM.MaxMbps = 10
	bad.HMM.DeltaSecs = 5
	bad.HMM.Sigma = 0.5
	bad.HMM.StayProb = 0.8
	if _, err := Abduct(log, bad); err == nil {
		t.Error("invalid HMM config should fail")
	}
	// Transition fitting path runs and produces a usable abduction.
	abd, err := Abduct(log.Prefix(40), Config{FitTransitions: 2, NumSamples: 2})
	if err != nil {
		t.Fatalf("FitTransitions path: %v", err)
	}
	if len(abd.SampleTraces()) != 2 {
		t.Error("fit path lost samples")
	}
}

func TestLogAccessor(t *testing.T) {
	gt := trace.Constant(5)
	log := runSession(t, gt, abr.NewMPC())
	abd, err := Abduct(log, Config{NumSamples: 1})
	if err != nil {
		t.Fatal(err)
	}
	if abd.Log() != log {
		t.Error("Log() should return the abducted session log")
	}
}

func TestIgnoreTCPStateDegradesRecovery(t *testing.T) {
	gt := trace.Constant(6)
	log := runSession(t, gt, abr.NewMPC())
	full, err := Abduct(log, Config{NumSamples: 1})
	if err != nil {
		t.Fatal(err)
	}
	ablated, err := Abduct(log, Config{NumSamples: 1, IgnoreTCPState: true})
	if err != nil {
		t.Fatal(err)
	}
	horizon := log.Records[len(log.Records)-1].End
	fullRMSE := traceRMSE(full.MostLikelyTrace(), gt, horizon)
	ablRMSE := traceRMSE(ablated.MostLikelyTrace(), gt, horizon)
	if fullRMSE >= ablRMSE {
		t.Errorf("TCP-state conditioning should help: with %v vs without %v", fullRMSE, ablRMSE)
	}
}
